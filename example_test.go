package govp_test

import (
	"fmt"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Example shows the shortest path from "I have a virtual prototype"
// to "I know what a fault does to it": build the CAPS runner, describe
// a fault in the textual fault DSL, and classify the outcome.
func Example() {
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), sim.MS(60))
	if err != nil {
		panic(err)
	}
	d, err := fault.ParseDescriptor("short-to-supply @caps.accel0.harness from 10ms")
	if err != nil {
		panic(err)
	}
	outcome := runner.RunScenario(fault.Single(d))
	fmt.Println(outcome.Class)
	// Output: detected-safe
}
