package govp

// End-to-end smoke for the sharded/resumable campaign flow, driving
// the real CLIs exactly as an operator would: run one shard, stop it
// mid-campaign, resume it, run the other shard, merge the journals
// with campmerge and require the merged tally line to match the
// unsharded campaign byte for byte. This is the tier-1 guard for the
// shard → interrupt → resume → merge contract.

import (
	"path/filepath"
	"strings"
	"testing"
)

// tallyLine extracts the "tally:" line from a capsim/campmerge output.
func tallyLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "tally:") {
			return line
		}
	}
	t.Fatalf("no tally line in output:\n%s", out)
	return ""
}

func TestShardResumeMergeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go run several times")
	}
	args := []string{"-campaign", "smoke", "-horizon", "30ms"}
	golden := tallyLine(t, runMain(t, "./cmd/capsim", args...))

	dir := t.TempDir()
	j0 := filepath.Join(dir, "shard0.jsonl")
	j1 := filepath.Join(dir, "shard1.jsonl")

	// Shard 0: interrupt after 3 runs, then resume to completion.
	out := runMain(t, "./cmd/capsim", append(args,
		"-shard", "0/2", "-journal", j0, "-interrupt-after", "3")...)
	if !strings.Contains(out, "halted:") {
		t.Fatalf("interrupted shard did not report halting:\n%s", out)
	}
	out = runMain(t, "./cmd/capsim", append(args,
		"-shard", "0/2", "-journal", j0, "-resume")...)
	if strings.Contains(out, "halted:") {
		t.Fatalf("resumed shard still halted:\n%s", out)
	}

	// Shard 1 runs uninterrupted, in parallel mode for variety.
	runMain(t, "./cmd/capsim", append(args,
		"-shard", "1/2", "-journal", j1, "-workers", "2")...)

	merged := runMain(t, "./cmd/campmerge", "-horizon", "30ms", j0, j1)
	if got := tallyLine(t, merged); got != golden {
		t.Errorf("merged tally diverged from unsharded campaign\ngot:  %s\nwant: %s", got, golden)
	}
}
