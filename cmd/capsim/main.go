// Command capsim runs the CAPS virtual prototype under a user-
// specified fault scenario, written in the textual fault description
// syntax of fault.ParseDescriptor.
//
// Usage:
//
//	capsim -faults "short-to-supply @caps.accel0.harness from 10ms"
//	capsim -world crash -unprotected \
//	       -faults "omission @caps.can.bus from 15ms; open @caps.accel0.harness from 5ms"
//	capsim -sites                  # list injection sites
//	capsim -campaign -workers -1   # exhaustive single-fault campaign, one worker per CPU
//	capsim -campaign e8 -workers -1 -checkpoints   # restore the golden prefix instead of re-simulating it
//	capsim -campaign e8 -checkpoint-tree -early-exit   # fork from retained tree nodes, stop on re-convergence
//	capsim -campaign e8 -progress -metrics m.json -trace-events t.json
//	capsim -campaign e8 -shard 0/4 -journal shard0.jsonl   # one shard of four
//	capsim -campaign e8 -shard 0/4 -journal shard0.jsonl -resume
//	capsim -campaign nv -adaptive -novelty-budget 100 -workers -1   # signature-novelty feedback loop
//
// An optional positional argument after -campaign names the campaign
// (it labels the metrics and trace spans). -metrics writes the final
// metrics snapshot as JSON, -trace-events a Chrome trace-event file
// loadable in chrome://tracing or Perfetto, and -progress streams a
// live progress line to stderr.
//
// -shard i/N runs only the i-th of N deterministic partitions of the
// scenario universe; -journal appends each outcome to a run journal as
// it completes (-journal-codec selects JSONL, the default, or the
// compact binary framing), and -resume picks an interrupted journal
// back up, skipping scenarios already recorded — sniffing and adopting
// whichever encoding the journal already uses. Ctrl-C stops the
// campaign cleanly after the in-flight scenarios finish, leaving the
// journal resumable. Completed shard journals merge with campmerge,
// mixed encodings included.
//
// -adaptive swaps the exhaustive scenario list for the
// signature-novelty feedback loop (DESIGN §16): -novelty-budget
// simulated runs are spent sweeping the universe and then mutating
// whatever produced a never-seen outcome signature, with
// equivalence-duplicate proposals pruned for free. It composes with
// -journal/-resume and -workers (the outcome stream is deterministic
// at any worker count) but rejects the fixed-list knobs (-shard,
// -checkpoints, -dedup, ...).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/campaignd"
	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/mdl"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/symex"
)

// failingJournal is a testing aid: it fails every Append past a
// budget, simulating a journal path that becomes unwritable mid-run
// (full disk, yanked mount). Enabled via CAPSIM_FAIL_JOURNAL_AFTER=N
// so the E2E harness can pin the exit-code contract — a campaign
// whose journal stops persisting must exit non-zero, never report
// success over runs that can't be resumed or merged.
type failingJournal struct {
	w    *journal.Writer
	mu   sync.Mutex
	left int
}

func (f *failingJournal) Append(e journal.Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.left <= 0 {
		return fmt.Errorf("journal: append: injected write failure (CAPSIM_FAIL_JOURNAL_AFTER)")
	}
	f.left--
	return f.w.Append(e)
}

func main() {
	world := flag.String("world", "normal", "environment: normal or crash")
	unprotected := flag.Bool("unprotected", false, "disable the safety mechanisms")
	faults := flag.String("faults", "", "semicolon-separated fault descriptions")
	horizonFlag := flag.String("horizon", "80ms", "simulated duration")
	listSites := flag.Bool("sites", false, "list injection sites and exit")
	campaign := flag.Bool("campaign", false, "run the exhaustive single-fault campaign instead of one scenario")
	workers := flag.Int("workers", 0, "campaign worker-pool size: 0 = sequential, -1 = one per CPU")
	reuseOff := flag.Bool("reuse-off", false, "rebuild the prototype for every scenario instead of reusing pooled kernels")
	checkpoints := flag.Bool("checkpoints", false, "snapshot the golden prefix per worker and restore it instead of re-simulating (implies kernel reuse)")
	checkpointTree := flag.Bool("checkpoint-tree", false, "retain a tree of golden-prefix snapshots and fork each scenario from the deepest shared one (implies -checkpoints)")
	earlyExit := flag.Bool("early-exit", false, "terminate a run the moment its state hash re-converges with the golden trajectory (implies -checkpoints)")
	hashStride := flag.String("hash-stride", "", "golden-trajectory hashing interval for -early-exit (e.g. 5ms; default horizon/16)")
	dedup := flag.Bool("dedup", false, "collapse campaign scenarios with identical fault content into one run")
	adaptive := flag.Bool("adaptive", false, "drive the campaign with the novelty-adaptive strategy (outcome signatures steer scenario generation) instead of the fixed universe")
	noveltyBudget := flag.Int("novelty-budget", 64, "simulated-run budget for -adaptive")
	noveltySeed := flag.Int64("novelty-seed", 1, "RNG seed for the -adaptive strategy")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot (JSON) to this file")
	tracePath := flag.String("trace-events", "", "write Chrome trace-event JSON to this file")
	progress := flag.Bool("progress", false, "stream live campaign progress to stderr")
	shardFlag := flag.String("shard", "", "run one shard i/N of the campaign universe (e.g. 0/4)")
	journalPath := flag.String("journal", "", "append per-scenario outcomes to this run journal")
	journalCodec := flag.String("journal-codec", "jsonl", "encoding for a fresh -journal: jsonl or binary (resume adopts the existing encoding)")
	resume := flag.Bool("resume", false, "resume an interrupted -journal, skipping recorded scenarios")
	scenarioTimeout := flag.Duration("scenario-timeout", 0, "wall-clock budget per scenario (0 = none)")
	interruptAfter := flag.Int("interrupt-after", 0, "stop cleanly after N completed runs (testing aid; journal stays resumable)")
	logFormat := flag.String("log-format", "", "stream structured campaign logs to stderr: text or json (default off)")
	flag.Parse()

	// "-campaign e8" names the campaign. The boolean flag consumes no
	// operand, so the positional name stops flag parsing; pick it up
	// and re-parse the remainder (already-set flags keep their values).
	campaignName := "capsim"
	if *campaign && flag.NArg() > 0 && !strings.HasPrefix(flag.Arg(0), "-") {
		campaignName = flag.Arg(0)
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
	}

	// Structured logging is opt-in: the default stdout/stderr surface
	// stays byte-stable for the goldenfile harness. Validated up front
	// so a bogus format is a usage error before any simulation work.
	var campaignLog *slog.Logger
	if *logFormat != "" {
		l, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		campaignLog = l
	}

	var reg *obs.Registry
	var tr *obs.TraceRecorder
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}
	if *tracePath != "" {
		tr = obs.NewTraceRecorder()
	}
	writeObs := func() {
		if err := obs.WriteMetricsFile(reg, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if err := obs.WriteTraceFile(tr, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	cfg := caps.Protected()
	if *unprotected {
		cfg = caps.Unprotected()
	}
	var w *caps.World
	switch *world {
	case "normal":
		w = caps.NormalDriving()
	case "crash":
		w = caps.CrashAt(sim.MS(20))
	default:
		fmt.Fprintf(os.Stderr, "unknown world %q\n", *world)
		os.Exit(2)
	}
	horizon, err := fault.ParseDuration(*horizonFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runner, err := caps.NewRunner(cfg, w, horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer runner.Close()
	runner.ReuseOff = *reuseOff
	// Attach after NewRunner so the golden run stays out of the data.
	runner.Instrument(reg, tr)
	if *listSites {
		for _, s := range runner.Sites() {
			fmt.Println(s)
		}
		return
	}
	if *campaign {
		var scenarios []fault.Scenario
		for _, d := range runner.Universe(sim.MS(10)) {
			scenarios = append(scenarios, fault.Single(d))
		}
		var shard stressor.Shard
		if *shardFlag != "" {
			if shard, err = stressor.ParseShard(*shardFlag); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if *adaptive {
			runAdaptive(runner, campaignName, adaptiveOpts{
				world: *world, protected: !*unprotected, horizon: horizon,
				workers: *workers, budget: *noveltyBudget, seed: *noveltySeed,
				journalPath: *journalPath, journalCodec: *journalCodec,
				resume: *resume, interruptAfter: *interruptAfter,
				progress: *progress, metrics: reg, log: campaignLog,
				writeObs: writeObs,
				incompatible: map[string]bool{
					"-checkpoints": *checkpoints, "-checkpoint-tree": *checkpointTree,
					"-early-exit": *earlyExit, "-hash-stride": *hashStride != "",
					"-dedup": *dedup, "-shard": *shardFlag != "",
					"-scenario-timeout": *scenarioTimeout != 0,
					"-trace-events":     *tracePath != "",
				},
			})
			return
		}
		c := &stressor.Campaign{
			Name: campaignName, Run: runner.RunFunc(), Workers: *workers,
			Dedup: *dedup, Metrics: reg, Trace: tr,
			Shard: shard, ScenarioTimeout: *scenarioTimeout,
			Log: campaignLog,
		}
		if *checkpointTree || *earlyExit || *hashStride != "" {
			// Tree and early-exit modes build on checkpoint sessions.
			*checkpoints = true
		}
		if *checkpoints {
			if *reuseOff {
				fmt.Fprintln(os.Stderr, "-checkpoints requires kernel reuse; drop -reuse-off")
				os.Exit(2)
			}
			c.Checkpoints = true
			c.Checkpointer = runner
			c.CheckpointTree = *checkpointTree
			c.EarlyExit = *earlyExit
			if *hashStride != "" {
				if !*earlyExit {
					fmt.Fprintln(os.Stderr, "-hash-stride only applies with -early-exit")
					os.Exit(2)
				}
				stride, err := fault.ParseDuration(*hashStride)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				c.HashStride = stride
			}
		}
		if *progress {
			c.Progress = obs.ProgressLine(os.Stderr)
		}
		var jw *journal.Writer
		if *journalPath != "" {
			codec, err := journal.ParseCodec(*journalCodec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			shards := shard.Count
			if shards < 1 {
				shards = 1
			}
			h := journal.Header{
				Campaign: campaignName, Shard: shard.Index, Shards: shards,
				Total: len(scenarios), Universe: stressor.UniverseHash(scenarios),
			}
			if *resume {
				if _, statErr := os.Stat(*journalPath); statErr == nil {
					// Resume sniffs and adopts the journal's own encoding;
					// -journal-codec only shapes fresh journals.
					j, w, err := journal.AppendTo(*journalPath, h)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					c.Resume, jw = j, w
				} else {
					// Nothing to resume yet: start a fresh journal so the
					// same command line works for first run and re-runs.
					if jw, err = journal.CreateCodec(*journalPath, h, codec); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
				}
			} else if jw, err = journal.CreateCodec(*journalPath, h, codec); err != nil {
				fmt.Fprintf(os.Stderr, "%v (use -resume to continue an interrupted journal)\n", err)
				os.Exit(1)
			}
			c.Journal = jw
			if n, err := strconv.Atoi(os.Getenv("CAPSIM_FAIL_JOURNAL_AFTER")); err == nil && n >= 0 {
				c.Journal = &failingJournal{w: jw, left: n}
			}
		} else if *resume {
			fmt.Fprintln(os.Stderr, "-resume requires -journal")
			os.Exit(2)
		}
		// Ctrl-C (and the -interrupt-after testing aid) stop the
		// campaign cleanly between scenarios; with -journal the run is
		// resumable afterwards. The handler is deregistered as soon as
		// Execute returns — not at process exit — so a second interrupt
		// while reports are being written kills the process instead of
		// being swallowed by a stale handler. The Halt hook runs before
		// any dispatch, including the first one after journal replay: an
		// interrupt that lands during replay stops the campaign with
		// zero new runs and the journal stays valid and re-resumable.
		var interrupted, halted atomic.Bool
		stopSignals := func() {}
		if *journalPath != "" || *interruptAfter > 0 {
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range ch {
					interrupted.Store(true)
				}
			}()
			stopSignals = func() {
				signal.Stop(ch)
				close(ch)
				<-done
			}
			limit := *interruptAfter
			c.Halt = func(completed int) bool {
				stop := interrupted.Load() || (limit > 0 && completed >= limit)
				if stop {
					halted.Store(true)
				}
				return stop
			}
		}
		res, err := c.Execute(scenarios)
		stopSignals()
		if jw != nil {
			if cerr := jw.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		writeObs()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The summary block is rendered by the shared campaignd.Summary
		// so the daemon's text result and this CLI stay byte-identical
		// for the same campaign — the goldenfile harness pins that.
		campaignd.Summary{
			World: *world, Protected: !*unprotected,
			Scenarios: len(scenarios), Workers: *workers,
			Shard: shard, Halted: halted.Load(), Result: res,
		}.WriteText(os.Stdout)
		if res.Tally[fault.SafetyCritical] > 0 {
			os.Exit(1)
		}
		return
	}
	if *faults == "" {
		fmt.Fprintln(os.Stderr, "need -faults (or -sites); see fault.ParseDescriptor syntax")
		os.Exit(2)
	}
	sc, err := fault.ParseScenario("cli", *faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	o := runner.RunScenario(sc)
	writeObs()
	fmt.Printf("world:     %s\n", *world)
	fmt.Printf("config:    protected=%v\n", !*unprotected)
	for _, d := range sc.Faults {
		fmt.Printf("fault:     %s\n", d)
	}
	fmt.Printf("outcome:   %s\n", o.Class)
	if o.Detail != "" {
		fmt.Printf("detail:    %s\n", o.Detail)
	}
	if o.Class == fault.SafetyCritical {
		os.Exit(1)
	}
}

// adaptiveOpts carries the flag surface of the -adaptive campaign
// path into runAdaptive.
type adaptiveOpts struct {
	world          string
	protected      bool
	horizon        sim.Time
	workers        int
	budget         int
	seed           int64
	journalPath    string
	journalCodec   string
	resume         bool
	interruptAfter int
	progress       bool
	metrics        *obs.Registry
	log            *slog.Logger
	writeObs       func()
	// incompatible maps flag names to "the user set it": the adaptive
	// engine deliberately does not compose with the fixed-universe
	// optimizations (dedup, sharding, checkpoints, early exit), so
	// setting any of them alongside -adaptive is a usage error rather
	// than a silent no-op.
	incompatible map[string]bool
}

// concolicStarts derives extra mutation start times for the adaptive
// strategy from a concolic exploration of a small MDL guard model:
// symex negates the model's branches to produce a corpus of input
// vectors, and StartsFromCorpus folds those vectors into injection
// times inside the horizon. This is the paper's ATPG link — test
// vectors from symbolic execution seeding the fault campaign.
func concolicStarts(horizon sim.Time) []sim.Time {
	guard := mdl.MustParse(`
func clamp(v) {
  if v > 12 {
    return 12
  }
  return v
}
func guard(a, t) {
  if clamp(a) * 3 - t == 17 {
    return 1
  }
  if a - t > 9 {
    return 2
  }
  return 0
}`)
	ex, err := symex.Explore(guard, "guard", []int64{0, 0}, 32)
	if err != nil {
		return nil
	}
	return scenario.StartsFromCorpus(ex.Corpus, horizon)
}

// runAdaptive is the -adaptive campaign path: a Novelty strategy over
// the runner's fault universe, driven through stressor.AdaptiveCampaign
// with the signed RunFunc so outcome signatures reflect real prototype
// state.
func runAdaptive(runner *caps.Runner, name string, o adaptiveOpts) {
	var set []string
	for f, on := range o.incompatible {
		if on {
			set = append(set, f)
		}
	}
	if len(set) > 0 {
		sort.Strings(set)
		fmt.Fprintf(os.Stderr, "%s cannot be combined with -adaptive\n", strings.Join(set, ", "))
		os.Exit(2)
	}
	if o.budget < 1 {
		fmt.Fprintln(os.Stderr, "-novelty-budget must be >= 1")
		os.Exit(2)
	}

	universe := runner.Universe(sim.MS(10))
	fingerprint := stressor.UniverseHash(fault.Singles(universe))
	src := scenario.NewNovelty(universe, 4*o.budget, rand.New(rand.NewSource(o.seed)))
	src.Mutator().Window = o.horizon
	if starts := concolicStarts(o.horizon); len(starts) > 0 {
		src.Mutator().Starts = starts
	}

	c := &stressor.AdaptiveCampaign{
		Name: name, Run: runner.SignedRunFunc(), Source: src,
		Workers: o.workers, MaxRuns: o.budget, Prune: true,
		Fingerprint: fingerprint, Metrics: o.metrics, Log: o.log,
	}

	var jw *journal.Writer
	if o.journalPath != "" {
		codec, err := journal.ParseCodec(o.journalCodec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		h := journal.Header{
			Campaign: name, Shards: 1,
			Total: o.budget, Universe: fingerprint, Adaptive: true,
		}
		if o.resume {
			if _, statErr := os.Stat(o.journalPath); statErr == nil {
				j, w, err := journal.AppendTo(o.journalPath, h)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				c.Resume, jw = j, w
			} else if jw, err = journal.CreateCodec(o.journalPath, h, codec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if jw, err = journal.CreateCodec(o.journalPath, h, codec); err != nil {
			fmt.Fprintf(os.Stderr, "%v (use -resume to continue an interrupted journal)\n", err)
			os.Exit(1)
		}
		c.Journal = jw
		if n, err := strconv.Atoi(os.Getenv("CAPSIM_FAIL_JOURNAL_AFTER")); err == nil && n >= 0 {
			c.Journal = &failingJournal{w: jw, left: n}
		}
	} else if o.resume {
		fmt.Fprintln(os.Stderr, "-resume requires -journal")
		os.Exit(2)
	}

	// Same clean-interrupt contract as the fixed-universe path: Ctrl-C
	// (or -interrupt-after) stops the loop between proposals and the
	// journal stays resumable.
	var interrupted, halted atomic.Bool
	stopSignals := func() {}
	if o.journalPath != "" || o.interruptAfter > 0 {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range ch {
				interrupted.Store(true)
			}
		}()
		stopSignals = func() {
			signal.Stop(ch)
			close(ch)
			<-done
		}
		limit := o.interruptAfter
		c.Halt = func(completed int) bool {
			stop := interrupted.Load() || (limit > 0 && completed >= limit)
			if stop {
				halted.Store(true)
			}
			return stop
		}
	}
	res, err := c.Execute()
	stopSignals()
	if jw != nil {
		if cerr := jw.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	o.writeObs()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	campaignd.Summary{
		World: o.world, Protected: o.protected,
		Scenarios: res.Proposed, Workers: o.workers,
		Halted: halted.Load(), Result: res.Result(),
	}.WriteText(os.Stdout)
	fmt.Printf("proposed:  %d (%d simulated, %d pruned, %d resumed)\n",
		res.Proposed, res.Simulated, res.PrunedEquiv, res.ResumedSkips)
	fmt.Printf("unique:    %d outcome signatures\n", res.UniqueSignatures)
	if res.Tally[fault.SafetyCritical] > 0 {
		os.Exit(1)
	}
}
