// Command capsim-coord is the distributed-campaign coordinator: it
// partitions one campaign into shard leases, hands them to
// capsim-worker processes over HTTP, journals every flushed outcome,
// reclaims leases from dead or stalled workers, and merges the shard
// journals into the result the unsharded sequential run would have
// produced — byte for byte.
//
// The campaign is described by the same spec JSON that capsimd's
// POST /runs accepts:
//
//	capsim-coord -spec e8.json -shards 8 -data ./coord-data
//	capsim-worker -coord http://127.0.0.1:8859 &   # as many as you like
//
//	curl -s  localhost:8859/status                  # shard/lease table
//	curl -sN localhost:8859/events                  # NDJSON progress stream
//	curl -s  localhost:8859/result                  # merged result (JSON)
//	curl -s 'localhost:8859/result?format=text'     # capsim summary block
//
// -oneshot prints the capsim-identical summary block to stdout when
// the campaign completes and exits; without it the coordinator keeps
// serving results until SIGINT/SIGTERM. Shard journals live under
// -data, so a restarted coordinator (same -data, same spec) adopts
// them and resumes the campaign instead of rerunning it.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaignd"
	"repro/internal/fabric"
	"repro/internal/journal"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8859", "listen address (host:port; port 0 picks a free port)")
	specPath := flag.String("spec", "", "campaign spec JSON file (capsimd POST /runs schema; \"-\" reads stdin)")
	shards := flag.Int("shards", 4, "number of shard leases to partition the campaign into")
	dataDir := flag.String("data", "capsim-coord-data", "shard journal directory")
	codec := flag.String("journal-codec", "binary", "shard journal encoding: binary or jsonl")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "heartbeat deadline before a lease is reclaimed")
	stealAfter := flag.Duration("steal-after", 0, "no-progress window before an idle worker may steal a live lease (default 3x lease-ttl)")
	oneshot := flag.Bool("oneshot", false, "print the campaign summary and exit when the campaign completes")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	quiet := flag.Bool("quiet", false, "suppress per-lease log lines")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *specPath == "" {
		fail(fmt.Errorf("capsim-coord: -spec is required"))
	}
	var raw []byte
	var err error
	if *specPath == "-" {
		raw, err = io.ReadAll(io.LimitReader(os.Stdin, campaignd.MaxSpecBytes+1))
	} else {
		raw, err = os.ReadFile(*specPath)
	}
	if err != nil {
		fail(err)
	}
	cdc, err := journal.ParseCodec(*codec)
	if err != nil {
		fail(err)
	}
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelError
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	spec, runner, scenarios, err := campaignd.MaterializeSpec(raw)
	if err != nil {
		fail(err)
	}
	// The runner exists only to enumerate the universe; workers build
	// their own from the spec.
	runner.Close()

	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		Campaign: spec.Campaign, Spec: raw, Scenarios: scenarios,
		Shards: *shards, Dedup: spec.Dedup, StopOnFirst: spec.StopOnFirst,
		DataDir: *dataDir, Codec: cdc,
		LeaseTTL: *leaseTTL, StealAfter: *stealAfter,
		Text: campaignd.FabricText(spec, len(scenarios)),
		Log:  logger,
	})
	if err != nil {
		fail(err)
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	// The listening line is the readiness handshake: clients (and the
	// E2E harness) parse the actual address from it, which is what
	// makes ":0" usable.
	fmt.Printf("capsim-coord listening on http://%s (campaign %q, %d scenarios, %d shards)\n",
		ln.Addr(), spec.Campaign, len(scenarios), *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fail(err)
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		// Journals flush on every append; whatever is recorded stays
		// resumable by the next coordinator over the same -data.
		srv.Close()
		fmt.Println("capsim-coord stopped; campaign resumes on restart")
		return
	case <-coord.Done():
		if !*oneshot {
			// Keep serving /result, /status, /events until signalled.
			select {
			case s := <-sig:
				logger.Info("shutting down", "signal", s.String())
			case err := <-errCh:
				fail(err)
			}
			srv.Close()
			return
		}
	}
	srv.Close()
	res, _, err := coord.Result()
	if err != nil {
		fail(err)
	}
	fmt.Print(campaignd.FabricText(spec, len(scenarios))(res))
}
