// Command campmerge merges completed shard journals of a capsim
// campaign back into one result, byte-identical to the unsharded run.
//
// Usage:
//
//	campmerge shard0.jsonl shard1.jsonl shard2.jsonl shard3.jsonl
//	campmerge -world crash -unprotected -stop-on-first j0.jsonl j1.jsonl
//
// The world/config/horizon flags must match the capsim invocations
// that produced the journals: campmerge rebuilds the same scenario
// universe and refuses journals whose universe hash disagrees, so a
// merge against the wrong prototype configuration fails loudly
// instead of mislabeling outcomes.
//
// Journal encodings are sniffed per file, so JSONL shards (capsim's
// default) and binary shards (capsim -journal-codec binary, or a
// capsim-coord data directory) merge together freely — one campaign's
// shards need not agree on a spelling.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/stressor"
)

func main() {
	world := flag.String("world", "normal", "environment: normal or crash")
	unprotected := flag.Bool("unprotected", false, "disable the safety mechanisms")
	horizonFlag := flag.String("horizon", "80ms", "simulated duration")
	injectFlag := flag.String("inject", "10ms", "fault activation time of the campaign universe")
	dedup := flag.Bool("dedup", false, "the shards ran with -dedup")
	stopOnFirst := flag.Bool("stop-on-first", false, "the shards ran with stop-on-first semantics")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: campmerge [flags] shard0.jsonl [shard1.jsonl ...]")
		os.Exit(2)
	}

	cfg := caps.Protected()
	if *unprotected {
		cfg = caps.Unprotected()
	}
	var w *caps.World
	switch *world {
	case "normal":
		w = caps.NormalDriving()
	case "crash":
		w = caps.CrashAt(sim.MS(20))
	default:
		fmt.Fprintf(os.Stderr, "unknown world %q\n", *world)
		os.Exit(2)
	}
	horizon, err := fault.ParseDuration(*horizonFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	inject, err := fault.ParseDuration(*injectFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runner, err := caps.NewRunner(cfg, w, horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer runner.Close()
	var scenarios []fault.Scenario
	for _, d := range runner.Universe(inject) {
		scenarios = append(scenarios, fault.Single(d))
	}

	js := make([]*journal.Journal, flag.NArg())
	for i, path := range flag.Args() {
		if js[i], err = journal.Read(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	res, err := stressor.Merge(stressor.MergeSpec{
		StopOnFirst: *stopOnFirst, Dedup: *dedup,
	}, scenarios, js)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("world:     %s\n", *world)
	fmt.Printf("config:    protected=%v\n", !*unprotected)
	fmt.Printf("campaign:  %d single-fault scenarios, %d shards merged\n", len(scenarios), flag.NArg())
	fmt.Printf("tally:     %s\n", res.Tally)
	if res.DedupSavedRuns > 0 {
		fmt.Printf("dedup:     %d duplicate runs skipped\n", res.DedupSavedRuns)
	}
	if o, ok := res.FirstFailure(); ok {
		fmt.Printf("first failure at run %d: %s\n", res.RunsToFirstFailure, o.Scenario.ID)
	}
	if res.Tally[fault.SafetyCritical] > 0 {
		os.Exit(1)
	}
}
