// Command capsim-worker executes shard leases for a capsim-coord
// coordinator: it polls for a lease, materializes the campaign spec
// carried in it (building — and caching — the virtual prototype
// locally), runs its shard of the scenario universe, and streams
// completed outcomes back on a heartbeat cadence. If the worker dies
// or stalls mid-lease, the coordinator reclaims the shard and another
// worker resumes it from the last flushed outcome.
//
//	capsim-worker -coord http://127.0.0.1:8859
//	capsim-worker -coord http://127.0.0.1:8859 -name rig-2 &
//
// The worker exits 0 when the coordinator reports the campaign done.
// Names default to host-pid and only need to be unique per
// coordinator.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/campaignd"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/obs"
)

func main() {
	coord := flag.String("coord", "http://127.0.0.1:8859", "coordinator base URL")
	name := flag.String("name", "", "worker name (default host-pid)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "flush cadence while holding a lease (capped at a third of the lease TTL)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	quiet := flag.Bool("quiet", false, "suppress per-lease log lines")
	flag.Parse()

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelError
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	resolve := campaignd.FabricResolver(logger)
	// CAPSIM_WORKER_STALL_AFTER=N blocks the worker forever inside its
	// N-th scenario (chaos-testing aid, like capsim's
	// CAPSIM_FAIL_JOURNAL_AFTER): the E2E harness SIGKILLs the stalled
	// process to prove a real worker death mid-lease is recovered by the
	// next worker, resuming from the last flushed outcome.
	if n, err := strconv.Atoi(os.Getenv("CAPSIM_WORKER_STALL_AFTER")); err == nil && n > 0 {
		inner := resolve
		var runs atomic.Int32
		resolve = func(raw json.RawMessage) (*fabric.Resolved, error) {
			res, err := inner(raw)
			if err != nil {
				return nil, err
			}
			run := res.Campaign.Run
			res.Campaign.Run = func(sc fault.Scenario) fault.Outcome {
				if int(runs.Add(1)) == n {
					select {} // stall forever; only SIGKILL ends this
				}
				return run(sc)
			}
			return res, nil
		}
	}

	w, err := fabric.NewWorker(fabric.WorkerConfig{
		Name: *name, Coordinator: *coord,
		Resolve:   resolve,
		Heartbeat: *heartbeat,
		Log:       logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the lease loop between flushes; the
	// coordinator reclaims the shard after the TTL and the outcomes
	// flushed so far stay — the next worker resumes, not restarts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("capsim-worker %s polling %s\n", *name, *coord)
	if err := w.Run(ctx); err != nil {
		if ctx.Err() != nil {
			fmt.Println("capsim-worker interrupted; lease will be reclaimed")
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("capsim-worker done")
}
