// Command capsimd is the campaign service daemon: capsim's campaign
// engine behind a long-running HTTP API with a FIFO job queue, a
// durable journal-backed run store, streaming progress, warm
// virtual-prototype runners that persist across runs, and a live
// telemetry plane (Prometheus /metrics, flight recorder, run traces).
//
// Usage:
//
//	capsimd -addr 127.0.0.1:8848 -data ./capsimd-data
//
//	# submit the E8 single-fault campaign
//	curl -s -X POST localhost:8848/runs -d '{
//	  "campaign": "e8",
//	  "universe": {"kind": "caps-single-fault", "horizon": "80ms"},
//	  "workers": -1
//	}'
//	# => {"id":"r000001","state":"queued"}
//
//	curl -s localhost:8848/runs/r000001                 # state
//	curl -sN localhost:8848/runs/r000001/events         # NDJSON stream
//	curl -s localhost:8848/runs/r000001/result          # result JSON
//	curl -s 'localhost:8848/runs/r000001/result?format=text'
//	curl -s localhost:8848/metrics                      # live Prometheus text
//	curl -s localhost:8848/debug/flight                 # flight recorder
//	curl -s localhost:8848/runs/r000001/trace           # Chrome trace ("trace": true specs)
//
// Logs are structured (log/slog); -log-format json emits one JSON
// object per line for CI pipelines. SIGQUIT dumps the flight-recorder
// ring to stderr without stopping the daemon. -debug-addr exposes
// net/http/pprof on a second listener.
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: the in-flight
// campaign stops between scenarios and its journal stays resumable,
// so restarting capsimd with the same -data directory picks every
// pending run back up and completes it to the byte-identical result.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (-debug-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaignd"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8848", "listen address (host:port; port 0 picks a free port)")
	dataDir := flag.String("data", "capsimd-data", "durable run-store directory")
	queueCap := flag.Int("queue-cap", 256, "maximum queued runs")
	cacheCap := flag.Int("runner-cache", 4, "warm prototype configurations kept across runs (LRU)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	slowScenario := flag.Duration("slow-scenario", 0, "flight-record any scenario at or over this wall-clock time (0 disables)")
	debugAddr := flag.String("debug-addr", "", "optional second listener serving net/http/pprof (host:port)")
	quiet := flag.Bool("quiet", false, "suppress per-run log lines")
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelError
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sched, err := campaignd.NewScheduler(campaignd.Config{
		DataDir: *dataDir, QueueCap: *queueCap, RunnerCacheCap: *cacheCap,
		Logger: logger, SlowScenario: *slowScenario, FlightDump: os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sched.Start()
	srv := &http.Server{Handler: campaignd.NewServer(sched)}

	errCh := make(chan error, 2)
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The pprof import registered its handlers on the default mux;
		// serve only that mux here, isolated from the API listener.
		dsrv := &http.Server{Handler: http.DefaultServeMux}
		defer dsrv.Close()
		fmt.Printf("capsimd debug listening on http://%s\n", dln.Addr())
		go func() { errCh <- dsrv.Serve(dln) }()
	}

	// The listening line is the daemon's readiness handshake: clients
	// (and the E2E harness) parse the actual address from it, which is
	// what makes ":0" usable.
	fmt.Printf("capsimd listening on http://%s (data %s)\n", ln.Addr(), *dataDir)

	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
loop:
	for {
		select {
		case err := <-errCh:
			fmt.Fprintln(os.Stderr, err)
			sched.Stop()
			os.Exit(1)
		case s := <-sig:
			if s == syscall.SIGQUIT {
				// Forensic dump, then keep serving: SIGQUIT asks "what is
				// the daemon doing", not "stop".
				sched.DumpFlight("SIGQUIT")
				continue
			}
			logger.Info("shutting down", "signal", s.String())
			break loop
		}
	}
	// Halt the campaign first (it stops between scenarios, leaving the
	// journal resumable), then cut HTTP — long-lived event streams end
	// with the hubs' final "interrupted" events already delivered.
	sched.Stop()
	srv.SetKeepAlivesEnabled(false)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	fmt.Println("capsimd stopped; pending runs resume on restart")
}
