// Command capsimd is the campaign service daemon: capsim's campaign
// engine behind a long-running HTTP API with a FIFO job queue, a
// durable journal-backed run store, streaming progress, and warm
// virtual-prototype runners that persist across runs.
//
// Usage:
//
//	capsimd -addr 127.0.0.1:8848 -data ./capsimd-data
//
//	# submit the E8 single-fault campaign
//	curl -s -X POST localhost:8848/runs -d '{
//	  "campaign": "e8",
//	  "universe": {"kind": "caps-single-fault", "horizon": "80ms"},
//	  "workers": -1
//	}'
//	# => {"id":"r000001","state":"queued"}
//
//	curl -s localhost:8848/runs/r000001                 # state
//	curl -sN localhost:8848/runs/r000001/events         # NDJSON stream
//	curl -s localhost:8848/runs/r000001/result          # result JSON
//	curl -s 'localhost:8848/runs/r000001/result?format=text'
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: the in-flight
// campaign stops between scenarios and its journal stays resumable,
// so restarting capsimd with the same -data directory picks every
// pending run back up and completes it to the byte-identical result.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaignd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8848", "listen address (host:port; port 0 picks a free port)")
	dataDir := flag.String("data", "capsimd-data", "durable run-store directory")
	queueCap := flag.Int("queue-cap", 256, "maximum queued runs")
	cacheCap := flag.Int("runner-cache", 4, "warm prototype configurations kept across runs (LRU)")
	quiet := flag.Bool("quiet", false, "suppress per-run log lines")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	sched, err := campaignd.NewScheduler(campaignd.Config{
		DataDir: *dataDir, QueueCap: *queueCap, RunnerCacheCap: *cacheCap, Logf: logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sched.Start()
	srv := &http.Server{Handler: campaignd.NewServer(sched)}

	// The listening line is the daemon's readiness handshake: clients
	// (and the E2E harness) parse the actual address from it, which is
	// what makes ":0" usable.
	fmt.Printf("capsimd listening on http://%s (data %s)\n", ln.Addr(), *dataDir)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		sched.Stop()
		os.Exit(1)
	case s := <-sig:
		logf("received %v, shutting down", s)
	}
	// Halt the campaign first (it stops between scenarios, leaving the
	// journal resumable), then cut HTTP — long-lived event streams end
	// with the hubs' final "interrupted" events already delivered.
	sched.Stop()
	srv.SetKeepAlivesEnabled(false)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	fmt.Println("capsimd stopped; pending runs resume on restart")
}
