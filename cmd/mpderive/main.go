// Command mpderive runs the Fig. 2 mission-profile pipeline from the
// command line: pick a profile preset, refine it down the supply
// chain, derive formal fault/error descriptions for a set of
// injection sites, and print the stressor-ready descriptor table.
//
// Usage:
//
//	mpderive -profile underhood -component braking-ecu \
//	         -sites "ecu.mem,ecu.reg,sensor.harness,can.bus"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/missionprofile"
	"repro/internal/report"
)

func main() {
	profile := flag.String("profile", "underhood", "profile preset: underhood or cabin")
	component := flag.String("component", "ecu", "component name")
	sitesFlag := flag.String("sites", "sensor.harness,ecu.mem,ecu.reg.pc,can.bus,ecu.supply", "comma-separated injection sites")
	vibFactor := flag.Float64("vibration-factor", 1.0, "mounting-point vibration transfer factor for refinement")
	flag.Parse()

	var oem *missionprofile.Profile
	switch *profile {
	case "underhood":
		oem = missionprofile.VehicleUnderhood("vehicle")
	case "cabin":
		oem = missionprofile.PassengerCabin("vehicle")
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	tier1, err := oem.Refine(*component, []missionprofile.TransferRule{
		{Kind: missionprofile.Vibration, Factor: *vibFactor},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pt := &report.Table{
		Title:   fmt.Sprintf("Mission profile %q refined to %s (%s level)", *profile, *component, tier1.Level),
		Columns: []string{"stress", "min", "max", "unit", "duty cycle"},
	}
	for _, s := range tier1.Stresses {
		pt.AddRow(s.Kind.String(), s.Min, s.Max, s.Kind.Unit(), s.DutyCycle)
	}
	fmt.Println(pt.Render())

	sites := strings.Split(*sitesFlag, ",")
	for i := range sites {
		sites[i] = strings.TrimSpace(sites[i])
	}
	derived, err := missionprofile.Derive(tier1, missionprofile.DefaultRules(), sites)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dt := &report.Table{
		Title:   "Derived formal fault/error descriptions",
		Note:    "feed these to a stressor (see internal/stressor)",
		Columns: []string{"descriptor", "stress", "model", "class", "FIT", "duration"},
	}
	for _, d := range derived {
		dt.AddRow(d.Descriptor.Name, d.Rule.Stress.String(), d.Descriptor.Model.String(),
			d.Descriptor.Class.String(), d.Descriptor.Rate, d.Descriptor.Duration)
	}
	fmt.Println(dt.Render())
	if len(derived) == 0 {
		fmt.Println("(no rules triggered — the environment is too mild for every derivation rule)")
	}
}
