// Command mutate qualifies a testbench against an MDL behavioural
// model via mutation analysis: it generates the mutant set, runs the
// suite against each mutant and reports the mutation score next to
// the structural coverage of the same suite.
//
// Usage:
//
//	mutate -model model.mdl -tests "fire:60,50,1;fire:10,10,1"
//	mutate -demo              # run the built-in airbag-decision demo
//	mutate -demo -workers -1  # one mutant-execution worker per CPU
//
// Test syntax: semicolon-separated "func:arg,arg,..." vectors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/mdl"
	"repro/internal/mutation"
	"repro/internal/obs"
	"repro/internal/report"
)

const demoModel = `
func severity(accel, speed) {
  return accel * 2 + speed
}
func fire(accel, speed, armed) {
  let s = severity(accel, speed)
  if (s > 100) && (accel > 40) && (armed != 0) {
    return 1
  }
  return 0
}
`

const demoTests = "fire:60,50,1;fire:60,50,0;fire:41,20,1;fire:40,120,1;fire:10,10,1;severity:3,4"

func main() {
	modelPath := flag.String("model", "", "MDL model file")
	testsFlag := flag.String("tests", "", "test vectors: func:a,b,...;func:...")
	demo := flag.Bool("demo", false, "run the built-in demo model and suite")
	showSurvivors := flag.Bool("survivors", true, "list surviving mutants")
	workers := flag.Int("workers", 0, "mutant-execution worker-pool size: 0 = sequential, -1 = one per CPU")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot (JSON) to this file")
	tracePath := flag.String("trace-events", "", "write Chrome trace-event JSON to this file")
	progress := flag.Bool("progress", false, "stream live qualification progress to stderr")
	flag.Parse()

	var reg *obs.Registry
	var tr *obs.TraceRecorder
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}
	if *tracePath != "" {
		tr = obs.NewTraceRecorder()
	}

	src, tests := demoModel, demoTests
	if !*demo {
		if *modelPath == "" || *testsFlag == "" {
			fmt.Fprintln(os.Stderr, "need -model and -tests (or -demo)")
			os.Exit(2)
		}
		data, err := os.ReadFile(*modelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src, tests = string(data), *testsFlag
	}

	prog, err := mdl.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	suite, err := parseTests(tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := mutation.Options{Workers: *workers, Metrics: reg, Trace: tr}
	if *progress {
		opts.Progress = obs.ProgressLine(os.Stderr)
	}
	rep, err := mutation.QualifyWith(prog, suite, opts)
	if werr := obs.WriteMetricsFile(reg, *metricsPath); werr != nil {
		fmt.Fprintln(os.Stderr, werr)
	}
	if werr := obs.WriteTraceFile(tr, *tracePath); werr != nil {
		fmt.Fprintln(os.Stderr, werr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	t := &report.Table{
		Title:   "Testbench qualification",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("tests", len(suite))
	t.AddRow("mutants", rep.Total)
	t.AddRow("killed", rep.Killed)
	t.AddRow("mutation score", fmt.Sprintf("%.1f%%", rep.Score*100))
	t.AddRow("statement coverage", fmt.Sprintf("%.1f%%", rep.StatementCoverage*100))
	fmt.Println(t.Render())

	if *showSurvivors {
		survivors := rep.Survivors()
		if len(survivors) == 0 {
			fmt.Println("no survivors — suite kills every mutant")
			return
		}
		st := &report.Table{
			Title:   "Surviving mutants (testbench holes or equivalent mutants)",
			Columns: []string{"id", "operator", "description"},
		}
		for _, m := range survivors {
			st.AddRow(m.ID, m.Operator, m.Description)
		}
		fmt.Println(st.Render())
	}
}

func parseTests(s string) ([]mutation.Test, error) {
	var out []mutation.Test
	for _, chunk := range strings.Split(s, ";") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		fn, argStr, ok := strings.Cut(chunk, ":")
		if !ok {
			return nil, fmt.Errorf("bad test %q (want func:a,b,...)", chunk)
		}
		t := mutation.Test{Fn: strings.TrimSpace(fn)}
		if argStr != "" {
			for _, a := range strings.Split(argStr, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad argument %q in %q", a, chunk)
				}
				t.Args = append(t.Args, v)
			}
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty test suite")
	}
	return out, nil
}
