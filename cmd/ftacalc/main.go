// Command ftacalc evaluates the analytic dependability models of the
// CAPS case study: the G1 fault tree (minimal cut sets, top-event
// probability, importance ranking) and the FMEDA worksheet (SPFM,
// LFM, PMHF, ASIL).
//
// Usage:
//
//	ftacalc            # protected system
//	ftacalc -bare      # unprotected system
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/safety"
)

func main() {
	bare := flag.Bool("bare", false, "evaluate the unprotected system")
	flag.Parse()

	tree := protectedTree()
	modes := protectedModes()
	label := "protected"
	if *bare {
		tree = unprotectedTree()
		modes = unprotectedModes()
		label = "unprotected"
	}

	fmt.Printf("CAPS %s system — analytic models\n\n", label)
	fmt.Println(tree)

	mcs := tree.MinimalCutSets()
	mt := &report.Table{Title: "Minimal cut sets", Columns: []string{"#", "events", "order"}}
	for i, cs := range mcs {
		mt.AddRow(i+1, fmt.Sprint([]string(cs)), len(cs))
	}
	fmt.Println(mt.Render())

	p, err := tree.TopEventProbability()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Top-event probability (per mission): %.6g\n\n", p)

	imp, err := tree.Importance()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	it := &report.Table{Title: "Fussell-Vesely importance (weak spots)", Columns: []string{"event", "importance"}}
	for _, e := range imp {
		it.AddRow(e.Event, fmt.Sprintf("%.3f", e.FussellVesely))
	}
	fmt.Println(it.Render())

	res, err := safety.EvaluateFMEDA(modes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("FMEDA: %s\n", res)
}

// Event probabilities per mission (synthetic but consistent between
// the two variants).
const (
	pSensorShort = 1e-4
	pThresholdSA = 5e-5
	pCalibFlip   = 2e-4
	pBusFault    = 3e-4
)

// unprotectedTree is G1 (inadvertent deployment) for the bare system:
// single faults reach the hazard directly.
func unprotectedTree() *safety.Node {
	return safety.Or("G1-inadvertent-deployment",
		safety.BasicEvent("accel0-short-to-supply", pSensorShort),
		safety.BasicEvent("threshold-stuck-at-0", pThresholdSA),
	)
}

// protectedTree is G1 for the full system: each hazard path needs the
// causal fault AND the failure of its guarding mechanism.
func protectedTree() *safety.Node {
	return safety.Or("G1-inadvertent-deployment",
		safety.And("sensor-path",
			safety.BasicEvent("accel0-short-to-supply", pSensorShort),
			safety.BasicEvent("accel1-short-to-supply", pSensorShort), // defeats plausibility
		),
		safety.And("threshold-path",
			safety.BasicEvent("threshold-stuck-at-0", pThresholdSA),
			safety.BasicEvent("threshold-redundancy-check-fails", 1e-5),
		),
	)
}

func unprotectedModes() []safety.FailureMode {
	return []safety.FailureMode{
		{Component: "accel0", Mode: "short-to-supply", RateFIT: 100, SafeFraction: 0, DiagnosticCoverage: 0},
		{Component: "airbag", Mode: "threshold-sa0", RateFIT: 50, SafeFraction: 0, DiagnosticCoverage: 0},
		{Component: "fusion", Mode: "calib-upset", RateFIT: 200, SafeFraction: 0.5, DiagnosticCoverage: 0},
		{Component: "can", Mode: "corruption", RateFIT: 300, SafeFraction: 0, DiagnosticCoverage: 0.9},
	}
}

func protectedModes() []safety.FailureMode {
	return []safety.FailureMode{
		{Component: "accel0", Mode: "short-to-supply", RateFIT: 100, SafeFraction: 0, DiagnosticCoverage: 0.99, LatentCoverage: 0.9},
		{Component: "airbag", Mode: "threshold-sa0", RateFIT: 50, SafeFraction: 0, DiagnosticCoverage: 0.99, LatentCoverage: 0.9},
		{Component: "fusion", Mode: "calib-upset", RateFIT: 200, SafeFraction: 0.5, DiagnosticCoverage: 0.99, LatentCoverage: 1},
		{Component: "can", Mode: "corruption", RateFIT: 300, SafeFraction: 0, DiagnosticCoverage: 0.999, LatentCoverage: 1},
	}
}
