// Command benchjson runs the module's benchmark suite and emits a
// machine-readable snapshot (name → ns/op, B/op, allocs/op) so perf
// PRs leave a recorded trajectory: each PR commits its BENCH_PR<n>.json
// and later work diffs against it.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regex] [-benchtime 1x] [-o BENCH_PR3.json] [packages...]
//
// Packages default to ./... — every benchmark in the module. The JSON
// is stable (keys sorted, no timestamps), so regenerating on the same
// machine produces a minimal diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra carries benchmark-specific custom metrics reported via
	// b.ReportMetric (e.g. scenarios/op), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the file format.
type Snapshot struct {
	Go        string `json:"go"`
	Benchtime string `json:"benchtime"`
	// Results maps "<package>:<benchmark>" to its measurements; the
	// package is module-relative ("." for the root).
	Results map[string]Result `json:"results"`
}

// benchLine matches one `go test -bench` result row; the -<procs>
// GOMAXPROCS suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	benchRe := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	args := append([]string{"test", "-run=NONE", "-bench=" + *benchRe,
		"-benchmem", "-benchtime=" + *benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	snap := Snapshot{Go: runtime.Version(), Benchtime: *benchtime, Results: map[string]Result{}}
	pkg := "."
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	modPrefix := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // stream progress through
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			if modPrefix == "" {
				modPrefix = rest // first pkg line is the module root
			}
			pkg = strings.TrimPrefix(strings.TrimPrefix(rest, modPrefix), "/")
			if pkg == "" {
				pkg = "."
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
		snap.Results[pkg+":"+m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench failed: %w", err))
	}
	if len(snap.Results) == 0 {
		fatal(fmt.Errorf("no benchmark results matched %q", *benchRe))
	}

	// MarshalIndent sorts map keys, so the file is byte-stable for a
	// given set of measurements.
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(snap.Results), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
