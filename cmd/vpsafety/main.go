// Command vpsafety runs the reproduction experiments: every table and
// figure of the evaluation regenerates from the command line.
//
// Usage:
//
//	vpsafety -list             list experiments
//	vpsafety -exp E8           run one experiment
//	vpsafety -exp all          run everything
//	vpsafety -exp E8 -csv      emit tables as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment ID to run (E1..E9, F2, F3, X1..X3, or 'all')")
	csv := flag.Bool("csv", false, "emit result tables as CSV instead of text")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *exp == "all":
		failed := 0
		for _, e := range experiments.All() {
			if !runOne(e, *csv) {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%d experiment(s) violated their claimed shape\n", failed)
			os.Exit(1)
		}
	case *exp != "":
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if !runOne(e, *csv) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, csv bool) bool {
	res, err := e.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
		return false
	}
	if csv {
		for _, t := range res.Tables {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		}
	} else {
		fmt.Println(res.Render())
	}
	return res.ShapeHolds
}
