// Command vpsafety runs the reproduction experiments: every table and
// figure of the evaluation regenerates from the command line.
//
// Usage:
//
//	vpsafety -list             list experiments
//	vpsafety -exp E8           run one experiment
//	vpsafety -exp all          run everything
//	vpsafety -exp E8 -csv      emit tables as CSV
//	vpsafety -exp all -metrics m.json -trace-events t.json -progress
//
// With -metrics/-trace-events attached, every experiment result gains
// a wall-clock attribution table (where did the time go, per phase)
// and the run's phase spans and campaign activity export as a Chrome
// trace-event file for chrome://tracing or Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment ID to run (E1..E9, F2, F3, X1..X3, or 'all')")
	csv := flag.Bool("csv", false, "emit result tables as CSV instead of text")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot (JSON) to this file")
	tracePath := flag.String("trace-events", "", "write Chrome trace-event JSON to this file")
	progress := flag.Bool("progress", false, "stream live campaign progress to stderr")
	checkpoints := flag.Bool("checkpoints", false, "restore golden-run snapshots in the campaign-heavy experiments (E8, X2) instead of re-simulating the fault-free prefix")
	flag.Parse()

	var reg *obs.Registry
	var tr *obs.TraceRecorder
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}
	if *tracePath != "" {
		tr = obs.NewTraceRecorder()
	}
	experiments.Instrument(reg, tr)
	if *progress {
		experiments.CampaignProgress = obs.ProgressLine(os.Stderr)
	}
	experiments.CampaignCheckpoints = *checkpoints
	writeObs := func() {
		if err := obs.WriteMetricsFile(reg, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if err := obs.WriteTraceFile(tr, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *exp == "all":
		failed := 0
		for _, e := range experiments.All() {
			if !runOne(e, *csv) {
				failed++
			}
		}
		writeObs()
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%d experiment(s) violated their claimed shape\n", failed)
			os.Exit(1)
		}
	case *exp != "":
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ok = runOne(e, *csv)
		writeObs()
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, csv bool) bool {
	res, err := e.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
		return false
	}
	if csv {
		for _, t := range res.Tables {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		}
	} else {
		fmt.Println(res.Render())
	}
	return res.ShapeHolds
}
