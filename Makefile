# govp build/test entry points. `make tier1` is the gate every change
# must pass: build, vet, and the full test suite under the race
# detector — mandatory now that campaigns execute on worker pools.

GO ?= go

.PHONY: all build vet test race tier1 bench bench-smoke bench-campaign bench-json bench-reuse bench-sharded bench-checkpoint bench-tree bench-adaptive bench-daemon bench-obs bench-fabric fuzz-smoke daemon-e2e fabric-e2e

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build vet race

# Full benchmark sweep (regenerates every experiment).
bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark in the module: catches benchmarks
# that rot (compile but crash) without paying for real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Sequential vs parallel campaign engine on the E8 single-fault
# universe; compare the two sub-benchmarks with benchstat.
bench-campaign:
	$(GO) test -run xxx -bench BenchmarkCampaignParallel -benchtime 20x .

# Rebuild-per-run vs kernel-reuse campaign paths (the PR 3 tentpole);
# compare rebuild/* with reuse/* using benchstat.
bench-reuse:
	$(GO) test -run xxx -bench BenchmarkCampaignReuse -benchtime 10x .

# Shard/journal/merge overhead on the E8 universe (the PR 4
# tentpole): shards=1 is the journaled baseline, shards=2/4 add the
# partition + merge machinery.
bench-sharded:
	$(GO) test -run xxx -bench BenchmarkCampaignSharded -benchtime 20x .

# Golden-run checkpointing vs the reuse path at a late injection time
# (the PR 5 tentpole); compare reuse/* with checkpointed/* using
# benchstat, or regenerate the committed BENCH_PR5.json snapshot.
bench-checkpoint:
	$(GO) run ./cmd/benchjson -bench BenchmarkCampaignCheckpointed -benchtime 10x -o BENCH_PR5.json .

# Checkpoint tree + convergence early-exit vs the single-checkpoint
# and reuse paths on the E8 transient sweep (the PR 8 tentpole);
# compare checkpointed/* with tree*/* using benchstat, or regenerate
# the committed BENCH_PR8.json snapshot.
bench-tree:
	$(GO) run ./cmd/benchjson -bench BenchmarkCampaignTree -benchtime 10x -o BENCH_PR8.json .

# Adaptive (signature-novelty) campaign vs blind Monte-Carlo at an
# equal simulated-run budget on the E8-derived CAPS universe (the
# PR 10 tentpole). The bench itself asserts the >=2x unique-outcome
# yield; this target regenerates the committed BENCH_PR10.json.
bench-adaptive:
	$(GO) run ./cmd/benchjson -bench BenchmarkCampaignAdaptive -benchtime 10x -o BENCH_PR10.json .

# Native fuzzing smoke: run each fuzz target for FUZZTIME (~30s total
# at the default). The seed corpora alone run under `go test`; this
# target actually mutates, catching parser/interpreter/journal
# regressions the fixed seeds would miss.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzInterp -fuzztime=$(FUZZTIME) ./internal/mdl
	$(GO) test -run=NONE -fuzz=FuzzDescriptor -fuzztime=$(FUZZTIME) ./internal/fault
	$(GO) test -run=NONE -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run=NONE -fuzz=FuzzJournalBinary -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run=NONE -fuzz=FuzzCampaignSpec -fuzztime=$(FUZZTIME) ./internal/campaignd

# Campaign-service end-to-end: the goldenfile CLI harness plus the
# capsimd daemon lifecycle matrix (kill/restart resume, concurrent
# clients, malformed specs), under the race detector.
daemon-e2e:
	$(GO) test -race -count=1 ./internal/campaignd ./internal/clitest

# Distributed-fabric end-to-end: the coordinator/worker chaos suite
# (kill/stall/steal with byte-identical recovery), the stressortest
# distributed axis on both prototypes, and the coord/worker subprocess
# goldens, all under the race detector.
fabric-e2e:
	$(GO) test -race -count=1 ./internal/fabric ./internal/clitest
	$(GO) test -race -count=1 -run 'Matrix' ./internal/caps ./internal/ecu

# Binary-vs-JSONL journal codec throughput and 1-vs-2-worker fabric
# campaign throughput (the PR 9 tentpole); regenerates the committed
# BENCH_PR9.json snapshot.
bench-fabric:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkJournalCodec|BenchmarkCampaignDistributed' -benchtime 5x -o BENCH_PR9.json ./internal/journal ./internal/fabric

# Daemon submit-to-done turnaround: warm (cached runner + parked
# checkpoint sessions) vs cold (rebuild per run); compare with
# benchstat.
bench-daemon:
	$(GO) test -run xxx -bench BenchmarkDaemonRunTurnaround -benchtime 10x ./internal/campaignd

# Telemetry-plane overhead: Prometheus exposition encode and flight-
# recorder writes, with -benchmem so the zero-allocs/op steady state
# is visible; TestPromEncodeZeroAlloc and
# TestFlightRecorderRecordZeroAlloc gate the same property in tier1.
bench-obs:
	$(GO) test -run xxx -bench 'BenchmarkObsExposition|BenchmarkFlightRecorder' -benchmem ./internal/obs

# Machine-readable benchmark snapshot: the perf trajectory artifact
# committed per perf PR (BENCH_PR<n>.json). Override OUT to target a
# different file, e.g. `make bench-json OUT=BENCH_PR4.json`.
OUT ?= BENCH_PR4.json
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 1x -o $(OUT) ./...
