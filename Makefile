# govp build/test entry points. `make tier1` is the gate every change
# must pass: build, vet, and the full test suite under the race
# detector — mandatory now that campaigns execute on worker pools.

GO ?= go

.PHONY: all build vet test race tier1 bench bench-smoke bench-campaign

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build vet race

# Full benchmark sweep (regenerates every experiment).
bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark in the module: catches benchmarks
# that rot (compile but crash) without paying for real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Sequential vs parallel campaign engine on the E8 single-fault
# universe; compare the two sub-benchmarks with benchstat.
bench-campaign:
	$(GO) test -run xxx -bench BenchmarkCampaignParallel -benchtime 20x .
