package govp

// BenchmarkCampaignAdaptive regenerates the PR's headline claim: at an
// equal simulated-run budget over the E8-derived CAPS universe, the
// adaptive campaign — Novelty strategy steered by real state
// signatures, concolic-derived injection times, equivalence pruning —
// uncovers at least twice the unique outcome signatures of blind
// Monte-Carlo sampling. Monte-Carlo wastes budget re-drawing
// signature-equivalent cells of the universe; the adaptive loop prunes
// those for free and spends the saved runs mutating around the
// scenarios that produced novel behavior.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/mdl"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/symex"
)

// adaptiveBenchStarts derives mutation start times from a concolic
// exploration of a small MDL guard model — the same ATPG link capsim
// -adaptive wires up.
func adaptiveBenchStarts(horizon sim.Time) []sim.Time {
	guard := mdl.MustParse(`
func clamp(v) {
  if v > 12 {
    return 12
  }
  return v
}
func guard(a, t) {
  if clamp(a) * 3 - t == 17 {
    return 1
  }
  if a - t > 9 {
    return 2
  }
  return 0
}`)
	ex, err := symex.Explore(guard, "guard", []int64{0, 0}, 32)
	if err != nil {
		return nil
	}
	return scenario.StartsFromCorpus(ex.Corpus, horizon)
}

func BenchmarkCampaignAdaptive(b *testing.B) {
	const budget = 100
	horizon := sim.MS(30)
	newRunner := func() *caps.Runner {
		r, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	universe := func(r *caps.Runner) []fault.Descriptor { return r.Universe(sim.MS(10)) }
	starts := adaptiveBenchStarts(horizon)
	if len(starts) == 0 {
		b.Fatal("concolic exploration produced no start-time corpus")
	}

	// uniqueSigs runs one budgeted campaign with the given source and
	// counts distinct outcome signatures.
	uniqueSigs := func(r *caps.Runner, src stressor.ScenarioSource, prune bool) int {
		c := &stressor.AdaptiveCampaign{
			Name: "bench-adaptive", Run: r.SignedRunFunc(), Source: src,
			Workers: stressor.WorkersAuto, MaxRuns: budget, Prune: prune,
		}
		res, err := c.Execute()
		if err != nil {
			b.Fatal(err)
		}
		return res.UniqueSignatures
	}

	modes := []struct {
		name string
		run  func(r *caps.Runner, seed int64) int
	}{
		{"montecarlo", func(r *caps.Runner, seed int64) int {
			mc := scenario.NewMonteCarlo(universe(r), budget, rand.New(rand.NewSource(seed)))
			mc.Window = horizon
			return uniqueSigs(r, mc, false)
		}},
		{"adaptive", func(r *caps.Runner, seed int64) int {
			nv := scenario.NewNovelty(universe(r), 4*budget, rand.New(rand.NewSource(seed)))
			nv.Mutator().Window = horizon
			nv.Mutator().Starts = starts
			return uniqueSigs(r, nv, true)
		}},
	}
	yield := map[string]int{}
	for _, m := range modes {
		b.Run(fmt.Sprintf("%s/budget=%d", m.name, budget), func(b *testing.B) {
			r := newRunner()
			defer r.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var sigs int
			for i := 0; i < b.N; i++ {
				sigs = m.run(r, 1)
			}
			b.StopTimer()
			yield[m.name] = sigs
			b.ReportMetric(float64(sigs), "unique_sigs")
			b.ReportMetric(float64(budget), "runs")
		})
	}
	if mc, ad := yield["montecarlo"], yield["adaptive"]; ad < 2*mc {
		b.Fatalf("adaptive yield %d unique signatures < 2x monte-carlo %d at budget %d", ad, mc, budget)
	}
}
