package govp

// Smoke tests for every command and example binary: each main is
// built and run via `go run` and must exit 0 while printing a
// sentinel line of its expected output. Before these tests the
// cmd/ and examples/ trees compiled but never executed under
// `go test ./...`, so a crash at startup would have shipped silently.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runMain executes `go run <pkg> <args...>` from the module root (the
// test working directory) and returns the combined output.
func runMain(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %s: %v\n%s", pkg, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCommandSmoke(t *testing.T) {
	cases := []struct {
		name     string
		pkg      string
		args     []string
		sentinel string
	}{
		{"capsim-sites", "./cmd/capsim", []string{"-sites"}, "caps."},
		{"capsim-scenario", "./cmd/capsim",
			[]string{"-faults", "open @caps.accel0.harness from 5ms"}, "outcome:"},
		{"capsim-campaign", "./cmd/capsim", []string{"-campaign", "-workers", "-1"}, "tally:"},
		{"mutate-demo", "./cmd/mutate", []string{"-demo", "-workers", "4"}, "mutation score"},
		{"ftacalc", "./cmd/ftacalc", nil, "Minimal cut sets"},
		{"mpderive", "./cmd/mpderive", nil, "Derived formal fault/error descriptions"},
		{"vpsafety-list", "./cmd/vpsafety", []string{"-list"}, "E8"},
		{"vpsafety-e8", "./cmd/vpsafety", []string{"-exp", "E8"}, "Shape HOLDS"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runMain(t, tc.pkg, tc.args...)
			if !strings.Contains(out, tc.sentinel) {
				t.Errorf("output of %s %v lacks %q:\n%s", tc.pkg, tc.args, tc.sentinel, out)
			}
		})
	}
}

// TestCapsimObservabilitySmoke runs the instrumented campaign end to
// end and validates both export files: the metrics snapshot must be
// valid JSON carrying per-class outcome counters and the scenario-
// duration histogram, and the trace file must be a spec-conformant
// Chrome trace-event document (a traceEvents array of events with
// name/ph/ts fields).
func TestCapsimObservabilitySmoke(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.json")
	tPath := filepath.Join(dir, "t.json")
	out := runMain(t, "./cmd/capsim",
		"-campaign", "e8", "-metrics", mPath, "-trace-events", tPath, "-workers", "-1", "-progress")
	if !strings.Contains(out, "tally:") {
		t.Fatalf("campaign output lacks tally:\n%s", out)
	}
	if !strings.Contains(out, "e8:") {
		t.Errorf("progress stream lacks the campaign name:\n%s", out)
	}

	var m struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Count uint64 `json:"count"`
			Sum   uint64 `json:"sum"`
		} `json:"histograms"`
	}
	mraw, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mraw, &m); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	outcomeClasses := 0
	for k := range m.Counters {
		if strings.HasPrefix(k, "campaign.outcomes{campaign=e8,") {
			outcomeClasses++
		}
	}
	if outcomeClasses == 0 {
		t.Errorf("no per-class outcome counters in %v", m.Counters)
	}
	runs := m.Counters["campaign.runs{campaign=e8}"]
	if runs == 0 {
		t.Error("campaign.runs counter missing or zero")
	}
	h, ok := m.Histograms["campaign.scenario_duration_ns{campaign=e8}"]
	if !ok || h.Count != runs || h.Sum == 0 {
		t.Errorf("scenario-duration histogram = %+v (ok=%v), want count=%d", h, ok, runs)
	}

	var tj struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	traw, err := os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(traw, &tj); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tj.TraceEvents) < int(runs) {
		t.Errorf("trace has %d events, want at least one per run (%d)", len(tj.TraceEvents), runs)
	}
	for i, ev := range tj.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("trace event %d incomplete: %+v", i, ev)
		}
	}
}

func TestExampleSmoke(t *testing.T) {
	cases := []struct {
		pkg      string
		sentinel string
	}{
		{"./examples/quickstart", "fault detected by the scoreboard"},
		{"./examples/virtual_ecu", "lockstep divergence"},
		{"./examples/caps_airbag", "crash check (G2)"},
		{"./examples/fta_fmeda", "top-event probability"},
		{"./examples/full_evaluation", "full safety evaluation"},
		{"./examples/mission_profile", "fault/error descriptions"},
		{"./examples/mutation_qualification", "mutation score"},
	}
	for _, tc := range cases {
		t.Run(strings.TrimPrefix(tc.pkg, "./examples/"), func(t *testing.T) {
			out := runMain(t, tc.pkg)
			if !strings.Contains(out, tc.sentinel) {
				t.Errorf("output of %s lacks %q:\n%s", tc.pkg, tc.sentinel, out)
			}
		})
	}
}
