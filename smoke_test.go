package govp

// Smoke tests for every command and example binary: each main is
// built and run via `go run` and must exit 0 while printing a
// sentinel line of its expected output. Before these tests the
// cmd/ and examples/ trees compiled but never executed under
// `go test ./...`, so a crash at startup would have shipped silently.

import (
	"os/exec"
	"strings"
	"testing"
)

// runMain executes `go run <pkg> <args...>` from the module root (the
// test working directory) and returns the combined output.
func runMain(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %s: %v\n%s", pkg, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCommandSmoke(t *testing.T) {
	cases := []struct {
		name     string
		pkg      string
		args     []string
		sentinel string
	}{
		{"capsim-sites", "./cmd/capsim", []string{"-sites"}, "caps."},
		{"capsim-scenario", "./cmd/capsim",
			[]string{"-faults", "open @caps.accel0.harness from 5ms"}, "outcome:"},
		{"capsim-campaign", "./cmd/capsim", []string{"-campaign", "-workers", "-1"}, "tally:"},
		{"mutate-demo", "./cmd/mutate", []string{"-demo", "-workers", "4"}, "mutation score"},
		{"ftacalc", "./cmd/ftacalc", nil, "Minimal cut sets"},
		{"mpderive", "./cmd/mpderive", nil, "Derived formal fault/error descriptions"},
		{"vpsafety-list", "./cmd/vpsafety", []string{"-list"}, "E8"},
		{"vpsafety-e8", "./cmd/vpsafety", []string{"-exp", "E8"}, "Shape HOLDS"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runMain(t, tc.pkg, tc.args...)
			if !strings.Contains(out, tc.sentinel) {
				t.Errorf("output of %s %v lacks %q:\n%s", tc.pkg, tc.args, tc.sentinel, out)
			}
		})
	}
}

func TestExampleSmoke(t *testing.T) {
	cases := []struct {
		pkg      string
		sentinel string
	}{
		{"./examples/quickstart", "fault detected by the scoreboard"},
		{"./examples/virtual_ecu", "lockstep divergence"},
		{"./examples/caps_airbag", "crash check (G2)"},
		{"./examples/fta_fmeda", "top-event probability"},
		{"./examples/full_evaluation", "full safety evaluation"},
		{"./examples/mission_profile", "fault/error descriptions"},
		{"./examples/mutation_qualification", "mutation score"},
	}
	for _, tc := range cases {
		t.Run(strings.TrimPrefix(tc.pkg, "./examples/"), func(t *testing.T) {
			out := runMain(t, tc.pkg)
			if !strings.Contains(out, tc.sentinel) {
				t.Errorf("output of %s lacks %q:\n%s", tc.pkg, tc.sentinel, out)
			}
		})
	}
}
