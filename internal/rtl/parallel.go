package rtl

import (
	"fmt"
)

// ParallelEvaluator is a two-valued, bit-parallel evaluator: each net
// holds a 64-bit word carrying 64 independent stimulus patterns, so
// one pass over the netlist simulates 64 vectors (the classic PPSFP —
// parallel-pattern single-fault propagation — acceleration).
//
// The paper's Sec. 2.2 notes that "simulation at the gate and RTL is
// usually too slow, so that acceleration techniques are required" and
// lists FPGA emulation and abstraction raising; bit-parallel fault
// simulation is the software-only member of that family and serves as
// this repository's substitute for emulation hardware (see DESIGN.md).
// Restriction: combinational circuits and known (0/1) values only —
// exactly the setting of stuck-at fault grading.
type ParallelEvaluator struct {
	c     *Circuit
	val   []uint64
	order []int

	faultNet Net
	faultSA1 bool
	active   bool

	evals uint64
}

// NewParallelEvaluator compiles the circuit; it rejects netlists with
// flip-flops (fault grading targets combinational cones).
func NewParallelEvaluator(c *Circuit) (*ParallelEvaluator, error) {
	base, err := NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	if base.NumState() > 0 {
		return nil, fmt.Errorf("rtl: ParallelEvaluator requires a combinational circuit (%d flip-flops present)", base.NumState())
	}
	return &ParallelEvaluator{c: c, val: make([]uint64, c.numNets), order: base.order}, nil
}

// SetInputPatterns drives a primary input with 64 patterns (bit i of
// w is the value in pattern i).
func (e *ParallelEvaluator) SetInputPatterns(n Net, w uint64) {
	e.val[n] = w
}

// SetFault installs a single stuck-at fault for subsequent Eval calls.
func (e *ParallelEvaluator) SetFault(n Net, sa1 bool) {
	e.faultNet = n
	e.faultSA1 = sa1
	e.active = true
}

// ClearFault removes the fault overlay.
func (e *ParallelEvaluator) ClearFault() { e.active = false }

// overlay applies the stuck-at fault to a computed word.
func (e *ParallelEvaluator) overlay(n Net, w uint64) uint64 {
	if !e.active || n != e.faultNet {
		return w
	}
	if e.faultSA1 {
		return ^uint64(0)
	}
	return 0
}

// Eval settles the combinational cloud for all 64 patterns at once.
func (e *ParallelEvaluator) Eval() {
	// Apply the overlay to inputs too.
	if e.active {
		e.val[e.faultNet] = e.overlay(e.faultNet, e.val[e.faultNet])
	}
	for _, gi := range e.order {
		g := &e.c.gates[gi]
		var w uint64
		switch g.Kind {
		case GateBuf:
			w = e.val[g.In[0]]
		case GateNot:
			w = ^e.val[g.In[0]]
		case GateAnd, GateNand:
			w = ^uint64(0)
			for _, in := range g.In {
				w &= e.val[in]
			}
			if g.Kind == GateNand {
				w = ^w
			}
		case GateOr, GateNor:
			w = 0
			for _, in := range g.In {
				w |= e.val[in]
			}
			if g.Kind == GateNor {
				w = ^w
			}
		case GateXor, GateXnor:
			w = 0
			for _, in := range g.In {
				w ^= e.val[in]
			}
			if g.Kind == GateXnor {
				w = ^w
			}
		case GateMux:
			sel := e.val[g.In[0]]
			w = e.val[g.In[1]]&^sel | e.val[g.In[2]]&sel
		case GateConst:
			if g.Const == L1 {
				w = ^uint64(0)
			}
		}
		e.val[g.Out] = e.overlay(g.Out, w)
		e.evals++
	}
}

// Value reads a net's 64-pattern word.
func (e *ParallelEvaluator) Value(n Net) uint64 { return e.val[n] }

// GateEvals reports cumulative gate evaluations (64 patterns each).
func (e *ParallelEvaluator) GateEvals() uint64 { return e.evals }

// FaultGradeResult summarizes a stuck-at fault-grading run.
type FaultGradeResult struct {
	// Faults is the number of faults simulated (2 per candidate net).
	Faults int
	// Detected is how many faults at least one pattern detected (a
	// primary-output difference from the golden response).
	Detected int
	// GateEvals is the total gate-evaluation count (cost metric).
	GateEvals uint64
}

// Coverage is the stuck-at fault coverage of the pattern set.
func (r FaultGradeResult) Coverage() float64 {
	if r.Faults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Faults)
}

// FaultGrade grades a pattern set against all stuck-at-0/1 faults on
// the given nets: for each fault, the circuit is re-simulated with the
// overlay and compared to the golden primary outputs across all 64
// patterns in parallel.
func (e *ParallelEvaluator) FaultGrade(nets []Net, patterns map[Net]uint64) FaultGradeResult {
	for n, w := range patterns {
		e.SetInputPatterns(n, w)
	}
	e.ClearFault()
	e.Eval()
	golden := make([]uint64, len(e.c.outputs))
	for i, o := range e.c.outputs {
		golden[i] = e.val[o]
	}
	res := FaultGradeResult{}
	for _, n := range nets {
		for _, sa1 := range []bool{false, true} {
			for pn, w := range patterns {
				e.SetInputPatterns(pn, w)
			}
			e.SetFault(n, sa1)
			e.Eval()
			res.Faults++
			for i, o := range e.c.outputs {
				if e.val[o] != golden[i] {
					res.Detected++
					break
				}
			}
		}
	}
	e.ClearFault()
	res.GateEvals = e.evals
	return res
}

// SerialFaultGrade is the reference implementation on the four-state
// evaluator, one pattern at a time — the baseline the acceleration is
// measured against.
func SerialFaultGrade(c *Circuit, nets []Net, patterns []map[Net]Logic) (FaultGradeResult, error) {
	ev, err := NewEvaluator(c)
	if err != nil {
		return FaultGradeResult{}, err
	}
	// Golden responses per pattern.
	golden := make([][]Logic, len(patterns))
	for pi, pat := range patterns {
		for n, v := range pat {
			ev.SetInputNet(n, v)
		}
		ev.Eval()
		row := make([]Logic, len(c.outputs))
		for i, o := range c.outputs {
			row[i] = ev.Value(o)
		}
		golden[pi] = row
	}
	res := FaultGradeResult{}
	for _, n := range nets {
		for _, kind := range []FaultKind{FaultStuckAt0, FaultStuckAt1} {
			res.Faults++
			detected := false
			for pi, pat := range patterns {
				ev.ClearFaults()
				ev.InjectFault(n, kind)
				for in, v := range pat {
					ev.SetInputNet(in, v)
				}
				ev.Eval()
				for i, o := range c.outputs {
					if ev.Value(o) != golden[pi][i] {
						detected = true
						break
					}
				}
				if detected {
					break
				}
			}
			if detected {
				res.Detected++
			}
		}
	}
	ev.ClearFaults()
	res.GateEvals = ev.GateEvals()
	return res, nil
}
