// Package rtl implements a gate-level / register-transfer-level logic
// simulation substrate: structural netlists of primitive gates and
// flip-flops over four-state logic, a fast levelized evaluator with
// stuck-at and bit-flip fault overlays, a library of synthesizable
// circuits (adders, comparators, TMR voters, CRC, a small ALU), and an
// adapter that runs a netlist as processes on the event-driven kernel.
//
// This is the "RTL and gate-level analysis" substrate of Sec. 2.2 of
// the paper: errors are injected "as bit value flips in memory cells or
// registers during logic simulation at the gate or register transfer
// level", and it provides the low level for the cross-layer
// injection-divergence experiment E2 and the bottom rung of the
// abstraction-ladder experiment E1.
package rtl

// Logic is a four-state logic value.
type Logic uint8

const (
	// L0 is logic low.
	L0 Logic = iota
	// L1 is logic high.
	L1
	// LX is unknown (uninitialized or conflicting).
	LX
	// LZ is high impedance; gates treat it as unknown.
	LZ
)

// String renders the value as 0/1/x/z.
func (l Logic) String() string {
	switch l {
	case L0:
		return "0"
	case L1:
		return "1"
	case LZ:
		return "z"
	default:
		return "x"
	}
}

// Bool converts a known value; ok is false for x/z.
func (l Logic) Bool() (v, ok bool) {
	switch l {
	case L0:
		return false, true
	case L1:
		return true, true
	default:
		return false, false
	}
}

// FromBool converts a Go bool to L0/L1.
func FromBool(b bool) Logic {
	if b {
		return L1
	}
	return L0
}

// Known reports whether the value is 0 or 1.
func (l Logic) Known() bool { return l == L0 || l == L1 }

// Not returns the four-state negation.
func (l Logic) Not() Logic {
	switch l {
	case L0:
		return L1
	case L1:
		return L0
	default:
		return LX
	}
}

// And returns the four-state conjunction: 0 dominates x.
func (a Logic) And(b Logic) Logic {
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return LX
}

// Or returns the four-state disjunction: 1 dominates x.
func (a Logic) Or(b Logic) Logic {
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return LX
}

// Xor returns the four-state exclusive or; any unknown poisons it.
func (a Logic) Xor(b Logic) Logic {
	if !a.Known() || !b.Known() {
		return LX
	}
	if a != b {
		return L1
	}
	return L0
}

// Mux returns a when sel=0, b when sel=1; an unknown select yields x
// unless both branches agree.
func Mux(sel, a, b Logic) Logic {
	switch sel {
	case L0:
		return a
	case L1:
		return b
	default:
		if a == b && a.Known() {
			return a
		}
		return LX
	}
}
