package rtl

import (
	"fmt"
	"strconv"
)

// Net identifies one wire in a circuit.
type Net int32

// GateKind enumerates the primitive cell library.
type GateKind uint8

const (
	// GateBuf copies its input.
	GateBuf GateKind = iota
	// GateNot inverts its input.
	GateNot
	// GateAnd is an n-input conjunction.
	GateAnd
	// GateOr is an n-input disjunction.
	GateOr
	// GateNand is an inverted conjunction.
	GateNand
	// GateNor is an inverted disjunction.
	GateNor
	// GateXor is an n-input parity.
	GateXor
	// GateXnor is inverted parity.
	GateXnor
	// GateMux selects In[1] (sel=0) or In[2] (sel=1) by In[0].
	GateMux
	// GateConst drives a constant (stored in Const).
	GateConst
	// GateDFF is a rising-edge D flip-flop (state element; clocked by
	// the evaluator's Tick, not by a net).
	GateDFF
)

var gateKindNames = map[GateKind]string{
	GateBuf: "buf", GateNot: "not", GateAnd: "and", GateOr: "or",
	GateNand: "nand", GateNor: "nor", GateXor: "xor", GateXnor: "xnor",
	GateMux: "mux", GateConst: "const", GateDFF: "dff",
}

// String names the gate kind.
func (k GateKind) String() string {
	if s, ok := gateKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("GateKind(%d)", uint8(k))
}

// Gate is one primitive cell instance.
type Gate struct {
	Kind  GateKind
	In    []Net
	Out   Net
	Const Logic // for GateConst; initial state for GateDFF
}

// Circuit is a structural netlist under construction. Build it with
// the Input/And/Or/.../DFF methods, mark observable nets with Output,
// then compile it into an Evaluator.
type Circuit struct {
	name    string
	numNets int
	gates   []Gate

	inputs      []Net
	inputNames  []string
	outputs     []Net
	outputNames []string

	netName map[Net]string
	byName  map[string]Net
}

// NewCircuit creates an empty netlist.
func NewCircuit(name string) *Circuit {
	return &Circuit{name: name, netName: make(map[Net]string), byName: make(map[string]Net)}
}

// Name reports the circuit name.
func (c *Circuit) Name() string { return c.name }

// NumNets reports the number of wires.
func (c *Circuit) NumNets() int { return c.numNets }

// NumGates reports the number of cells (including flip-flops).
func (c *Circuit) NumGates() int { return len(c.gates) }

// Gates exposes the cell list (read-only use).
func (c *Circuit) Gates() []Gate { return c.gates }

// newNet allocates a wire.
func (c *Circuit) newNet() Net {
	n := Net(c.numNets)
	c.numNets++
	return n
}

// nameNet attaches a diagnostic name to a net.
func (c *Circuit) nameNet(n Net, name string) {
	if name == "" {
		return
	}
	c.netName[n] = name
	c.byName[name] = n
}

// NetName reports the name of a net ("n<id>" when unnamed).
func (c *Circuit) NetName(n Net) string {
	if s, ok := c.netName[n]; ok {
		return s
	}
	return "n" + strconv.Itoa(int(n))
}

// NetByName resolves a named net; ok is false when unknown.
func (c *Circuit) NetByName(name string) (Net, bool) {
	n, ok := c.byName[name]
	return n, ok
}

// Input declares a primary input wire.
func (c *Circuit) Input(name string) Net {
	n := c.newNet()
	c.nameNet(n, name)
	c.inputs = append(c.inputs, n)
	c.inputNames = append(c.inputNames, name)
	return n
}

// InputBus declares width input wires named name0..name<width-1>,
// least-significant first.
func (c *Circuit) InputBus(name string, width int) []Net {
	bus := make([]Net, width)
	for i := range bus {
		bus[i] = c.Input(fmt.Sprintf("%s%d", name, i))
	}
	return bus
}

// Output marks a net as a primary (observed) output.
func (c *Circuit) Output(name string, n Net) {
	c.nameNet(n, name)
	c.outputs = append(c.outputs, n)
	c.outputNames = append(c.outputNames, name)
}

// OutputBus marks width nets as outputs named name0.., LSB first.
func (c *Circuit) OutputBus(name string, bus []Net) {
	for i, n := range bus {
		c.Output(fmt.Sprintf("%s%d", name, i), n)
	}
}

// Inputs reports the primary input nets in declaration order.
func (c *Circuit) Inputs() []Net { return c.inputs }

// Outputs reports the primary output nets in declaration order.
func (c *Circuit) Outputs() []Net { return c.outputs }

// addGate appends a cell and returns its output net.
func (c *Circuit) addGate(kind GateKind, in ...Net) Net {
	out := c.newNet()
	c.gates = append(c.gates, Gate{Kind: kind, In: in, Out: out})
	return out
}

// Buf inserts a buffer (useful as a named observation/injection point).
func (c *Circuit) Buf(a Net) Net { return c.addGate(GateBuf, a) }

// Not inserts an inverter.
func (c *Circuit) Not(a Net) Net { return c.addGate(GateNot, a) }

// And inserts an n-input AND.
func (c *Circuit) And(in ...Net) Net { return c.addGate(GateAnd, in...) }

// Or inserts an n-input OR.
func (c *Circuit) Or(in ...Net) Net { return c.addGate(GateOr, in...) }

// Nand inserts an n-input NAND.
func (c *Circuit) Nand(in ...Net) Net { return c.addGate(GateNand, in...) }

// Nor inserts an n-input NOR.
func (c *Circuit) Nor(in ...Net) Net { return c.addGate(GateNor, in...) }

// Xor inserts an n-input XOR (parity).
func (c *Circuit) Xor(in ...Net) Net { return c.addGate(GateXor, in...) }

// Xnor inserts an n-input XNOR.
func (c *Circuit) Xnor(in ...Net) Net { return c.addGate(GateXnor, in...) }

// Mux2 inserts a 2:1 multiplexer: out = sel ? b : a.
func (c *Circuit) Mux2(sel, a, b Net) Net { return c.addGate(GateMux, sel, a, b) }

// Const drives a constant logic value.
func (c *Circuit) Const(v Logic) Net {
	out := c.newNet()
	c.gates = append(c.gates, Gate{Kind: GateConst, Out: out, Const: v})
	return out
}

// DFF inserts a rising-edge flip-flop with initial state init; it
// returns the Q net. All flip-flops share the evaluator's single clock.
func (c *Circuit) DFF(d Net, init Logic) Net {
	out := c.newNet()
	c.gates = append(c.gates, Gate{Kind: GateDFF, In: []Net{d}, Out: out, Const: init})
	return out
}

// evalGate computes a combinational cell's output from input values.
func evalGate(g *Gate, val []Logic) Logic {
	switch g.Kind {
	case GateBuf:
		return val[g.In[0]]
	case GateNot:
		return val[g.In[0]].Not()
	case GateAnd, GateNand:
		acc := L1
		for _, in := range g.In {
			acc = acc.And(val[in])
		}
		if g.Kind == GateNand {
			return acc.Not()
		}
		return acc
	case GateOr, GateNor:
		acc := L0
		for _, in := range g.In {
			acc = acc.Or(val[in])
		}
		if g.Kind == GateNor {
			return acc.Not()
		}
		return acc
	case GateXor, GateXnor:
		acc := L0
		for _, in := range g.In {
			acc = acc.Xor(val[in])
		}
		if g.Kind == GateXnor {
			return acc.Not()
		}
		return acc
	case GateMux:
		return Mux(val[g.In[0]], val[g.In[1]], val[g.In[2]])
	case GateConst:
		return g.Const
	default:
		panic(fmt.Sprintf("rtl: evalGate on %s", g.Kind))
	}
}
