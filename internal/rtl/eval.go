package rtl

import (
	"fmt"
)

// FaultKind enumerates net-level fault overlays.
type FaultKind uint8

const (
	// FaultStuckAt0 forces a net to 0 (e.g. short to ground — the
	// paper's wiring-fault example in Sec. 3.2).
	FaultStuckAt0 FaultKind = iota
	// FaultStuckAt1 forces a net to 1 (short to supply).
	FaultStuckAt1
	// FaultOpen models a disconnected wire: the net floats and reads
	// as unknown ("disconnected wires between two subcomponents of an
	// ASIC", Sec. 1).
	FaultOpen
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultStuckAt0:
		return "stuck-at-0"
	case FaultStuckAt1:
		return "stuck-at-1"
	case FaultOpen:
		return "open"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// overlay returns the faulty value of a net.
func (k FaultKind) overlay() Logic {
	switch k {
	case FaultStuckAt0:
		return L0
	case FaultStuckAt1:
		return L1
	default:
		return LX
	}
}

// Evaluator executes a compiled netlist: levelized evaluation of the
// combinational cloud plus a Tick operation that clocks every
// flip-flop. Net-level faults overlay evaluation results without
// modifying the netlist — the "design should not be changed" injection
// requirement of Sec. 3.3.
type Evaluator struct {
	c     *Circuit
	val   []Logic
	order []int // combinational gate indices in topological order
	dffs  []int // DFF gate indices

	faults map[Net]FaultKind
	// evals counts gate evaluations, the cost metric for experiment E1.
	evals uint64
	ticks uint64
}

// NewEvaluator compiles the circuit; it fails on combinational loops.
func NewEvaluator(c *Circuit) (*Evaluator, error) {
	e := &Evaluator{
		c:      c,
		val:    make([]Logic, c.numNets),
		faults: make(map[Net]FaultKind),
	}
	for i := range e.val {
		e.val[i] = LX
	}

	// Kahn topological sort over combinational gates. DFF outputs act
	// as sources (their value is state), DFF inputs as sinks.
	consumers := make([][]int, c.numNets) // net -> combinational gates reading it
	indeg := make([]int, len(c.gates))
	for gi := range c.gates {
		g := &c.gates[gi]
		if g.Kind == GateDFF {
			e.dffs = append(e.dffs, gi)
			e.val[g.Out] = g.Const
			continue
		}
		if g.Kind == GateConst {
			continue // no inputs
		}
		for _, in := range g.In {
			consumers[in] = append(consumers[in], gi)
		}
	}
	// A combinational gate depends on the gates driving its inputs.
	driver := make([]int, c.numNets)
	for i := range driver {
		driver[i] = -1
	}
	for gi := range c.gates {
		driver[c.gates[gi].Out] = gi
	}
	for gi := range c.gates {
		g := &c.gates[gi]
		if g.Kind == GateDFF || g.Kind == GateConst {
			continue
		}
		for _, in := range g.In {
			if d := driver[in]; d >= 0 && c.gates[d].Kind != GateDFF {
				indeg[gi]++
			}
		}
	}
	var queue []int
	for gi := range c.gates {
		g := &c.gates[gi]
		if g.Kind == GateDFF {
			continue
		}
		if indeg[gi] == 0 {
			queue = append(queue, gi)
		}
	}
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		e.order = append(e.order, gi)
		for _, next := range consumers[c.gates[gi].Out] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	combCount := 0
	for gi := range c.gates {
		if c.gates[gi].Kind != GateDFF {
			combCount++
		}
	}
	if len(e.order) != combCount {
		return nil, fmt.Errorf("rtl: circuit %q has a combinational loop", c.name)
	}
	return e, nil
}

// Circuit reports the compiled netlist.
func (e *Evaluator) Circuit() *Circuit { return e.c }

// SetInput drives a primary input by name.
func (e *Evaluator) SetInput(name string, v Logic) error {
	n, ok := e.c.byName[name]
	if !ok {
		return fmt.Errorf("rtl: no net %q in %s", name, e.c.name)
	}
	e.val[n] = e.faulted(n, v)
	return nil
}

// SetInputNet drives a primary input net directly.
func (e *Evaluator) SetInputNet(n Net, v Logic) {
	e.val[n] = e.faulted(n, v)
}

// SetBus drives an input bus (created with InputBus) from an integer,
// LSB first.
func (e *Evaluator) SetBus(bus []Net, v uint64) {
	for i, n := range bus {
		e.SetInputNet(n, FromBool(v>>uint(i)&1 == 1))
	}
}

// Value reads the current value of any net (post-fault-overlay).
func (e *Evaluator) Value(n Net) Logic { return e.val[n] }

// ValueByName reads a named net.
func (e *Evaluator) ValueByName(name string) (Logic, error) {
	n, ok := e.c.byName[name]
	if !ok {
		return LX, fmt.Errorf("rtl: no net %q in %s", name, e.c.name)
	}
	return e.val[n], nil
}

// BusValue reads a bus as an integer; ok is false when any bit is
// unknown.
func (e *Evaluator) BusValue(bus []Net) (v uint64, ok bool) {
	ok = true
	for i, n := range bus {
		b, known := e.val[n].Bool()
		if !known {
			ok = false
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v, ok
}

// faulted applies a net's fault overlay, if any.
func (e *Evaluator) faulted(n Net, v Logic) Logic {
	if len(e.faults) == 0 {
		return v
	}
	if f, ok := e.faults[n]; ok {
		return f.overlay()
	}
	return v
}

// Eval settles the combinational cloud given current inputs and state.
func (e *Evaluator) Eval() {
	for _, gi := range e.order {
		g := &e.c.gates[gi]
		e.val[g.Out] = e.faulted(g.Out, evalGate(g, e.val))
		e.evals++
	}
}

// Tick runs one clock cycle: settle combinational logic, capture every
// flip-flop's D input, then settle again so outputs reflect new state.
func (e *Evaluator) Tick() {
	e.Eval()
	next := make([]Logic, len(e.dffs))
	for i, gi := range e.dffs {
		next[i] = e.val[e.c.gates[gi].In[0]]
	}
	for i, gi := range e.dffs {
		g := &e.c.gates[gi]
		e.val[g.Out] = e.faulted(g.Out, next[i])
	}
	e.ticks++
	e.Eval()
}

// Reset restores every flip-flop to its initial state and clears nets
// to unknown (inputs must be re-driven).
func (e *Evaluator) Reset() {
	for i := range e.val {
		e.val[i] = LX
	}
	for _, gi := range e.dffs {
		g := &e.c.gates[gi]
		e.val[g.Out] = g.Const
	}
}

// InjectFault overlays a fault on a net until ClearFaults. Injection
// takes effect at the next Eval/Tick.
func (e *Evaluator) InjectFault(n Net, kind FaultKind) {
	e.faults[n] = kind
}

// InjectFaultByName overlays a fault on a named net.
func (e *Evaluator) InjectFaultByName(name string, kind FaultKind) error {
	n, ok := e.c.byName[name]
	if !ok {
		return fmt.Errorf("rtl: no net %q in %s", name, e.c.name)
	}
	e.InjectFault(n, kind)
	return nil
}

// FlipState inverts the current value of flip-flop i (an SEU in a
// register bit). Unknown state flips to unknown.
func (e *Evaluator) FlipState(i int) {
	gi := e.dffs[i]
	out := e.c.gates[gi].Out
	e.val[out] = e.val[out].Not()
}

// NumState reports the number of flip-flops.
func (e *Evaluator) NumState() int { return len(e.dffs) }

// StateNet reports the Q net of flip-flop i (an injection site).
func (e *Evaluator) StateNet(i int) Net { return e.c.gates[e.dffs[i]].Out }

// ClearFaults removes all fault overlays; values refresh on next Eval.
func (e *Evaluator) ClearFaults() {
	clear(e.faults)
}

// GateEvals reports the cumulative number of gate evaluations.
func (e *Evaluator) GateEvals() uint64 { return e.evals }

// Ticks reports the cumulative number of clock cycles.
func (e *Evaluator) Ticks() uint64 { return e.ticks }
