package rtl

import (
	"repro/internal/sim"
)

// KernelCircuit runs a netlist as event-driven processes on the
// simulation kernel: one method process per combinational gate,
// sensitive to its input nets' value-changed events, and one clock
// process for the flip-flops. This is the classic (and deliberately
// expensive) gate-level event simulation, the bottom rung of the
// abstraction ladder measured by experiment E1. For fault campaigns
// use the levelized Evaluator instead; for cost comparison use this.
type KernelCircuit struct {
	k    *sim.Kernel
	c    *Circuit
	sigs []*sim.Signal[Logic]
	clk  *sim.Event
}

// BindKernel elaborates the circuit onto the kernel.
func BindKernel(k *sim.Kernel, c *Circuit) *KernelCircuit {
	kc := &KernelCircuit{k: k, c: c, clk: k.NewEvent(c.name + ".clk")}
	kc.sigs = make([]*sim.Signal[Logic], c.numNets)
	for n := 0; n < c.numNets; n++ {
		kc.sigs[n] = sim.NewSignal(k, c.NetName(Net(n)), LX)
	}
	scratch := make([]Logic, c.numNets) // shared: method bodies run sequentially
	for gi := range c.gates {
		g := &c.gates[gi]
		switch g.Kind {
		case GateDFF:
			d := kc.sigs[g.In[0]]
			q := kc.sigs[g.Out]
			// Initialize state; the write commits in the first delta.
			q.Write(g.Const)
			k.MethodNoInit(c.name+".dff", func() {
				q.Write(d.Read())
			}, kc.clk)
		case GateConst:
			out := kc.sigs[g.Out]
			v := g.Const
			k.Method(c.name+".const", func() { out.Write(v) })
		default:
			gate := g
			out := kc.sigs[g.Out]
			sens := make([]*sim.Event, len(g.In))
			for i, in := range g.In {
				sens[i] = kc.sigs[in].Changed()
			}
			k.Method(c.name+"."+g.Kind.String(), func() {
				for _, in := range gate.In {
					scratch[in] = kc.sigs[in].Read()
				}
				out.Write(evalGate(gate, scratch))
			}, sens...)
		}
	}
	return kc
}

// Drive writes a value onto a net's signal (primary inputs).
func (kc *KernelCircuit) Drive(n Net, v Logic) { kc.sigs[n].Write(v) }

// DriveBus writes an integer onto a bus, LSB first.
func (kc *KernelCircuit) DriveBus(bus []Net, v uint64) {
	for i, n := range bus {
		kc.Drive(n, FromBool(v>>uint(i)&1 == 1))
	}
}

// Read samples a net's current signal value.
func (kc *KernelCircuit) Read(n Net) Logic { return kc.sigs[n].Read() }

// ReadBus samples a bus as an integer; ok is false when any bit is
// unknown.
func (kc *KernelCircuit) ReadBus(bus []Net) (v uint64, ok bool) {
	ok = true
	for i, n := range bus {
		b, known := kc.Read(n).Bool()
		if !known {
			ok = false
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v, ok
}

// Signal exposes a net's underlying signal (for Force-based saboteur
// injection).
func (kc *KernelCircuit) Signal(n Net) *sim.Signal[Logic] { return kc.sigs[n] }

// Clk returns the shared flip-flop clock event.
func (kc *KernelCircuit) Clk() *sim.Event { return kc.clk }

// Step advances one clock cycle from a thread process: it lets the
// combinational cloud settle, fires the clock, and settles again.
func (kc *KernelCircuit) Step(ctx *sim.ThreadCtx, period sim.Time) {
	ctx.WaitTime(period / 2)
	kc.clk.Notify(0)
	ctx.WaitTime(period - period/2)
}
