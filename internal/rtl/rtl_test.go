package rtl

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLogicTables(t *testing.T) {
	if L0.Not() != L1 || L1.Not() != L0 || LX.Not() != LX || LZ.Not() != LX {
		t.Error("Not table wrong")
	}
	if L0.And(LX) != L0 || L1.And(LX) != LX || L1.And(L1) != L1 {
		t.Error("And table wrong")
	}
	if L1.Or(LX) != L1 || L0.Or(LX) != LX || L0.Or(L0) != L0 {
		t.Error("Or table wrong")
	}
	if L1.Xor(L0) != L1 || L1.Xor(L1) != L0 || L1.Xor(LX) != LX {
		t.Error("Xor table wrong")
	}
	if Mux(L0, L1, L0) != L1 || Mux(L1, L1, L0) != L0 {
		t.Error("Mux select wrong")
	}
	if Mux(LX, L1, L1) != L1 || Mux(LX, L1, L0) != LX {
		t.Error("Mux x-select wrong")
	}
	if L0.String() != "0" || L1.String() != "1" || LX.String() != "x" || LZ.String() != "z" {
		t.Error("strings wrong")
	}
	if v, ok := L1.Bool(); !v || !ok {
		t.Error("Bool(L1)")
	}
	if _, ok := LX.Bool(); ok {
		t.Error("Bool(LX) ok")
	}
	if FromBool(true) != L1 || FromBool(false) != L0 {
		t.Error("FromBool")
	}
}

func mustEval(t *testing.T, c *Circuit) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBasicGates(t *testing.T) {
	c := NewCircuit("gates")
	a := c.Input("a")
	b := c.Input("b")
	c.Output("and", c.And(a, b))
	c.Output("or", c.Or(a, b))
	c.Output("nand", c.Nand(a, b))
	c.Output("nor", c.Nor(a, b))
	c.Output("xor", c.Xor(a, b))
	c.Output("xnor", c.Xnor(a, b))
	c.Output("not", c.Not(a))
	c.Output("buf", c.Buf(a))
	e := mustEval(t, c)

	truth := []struct {
		a, b                                   Logic
		and, or, nand, nor, xor, xnor, not, bf Logic
	}{
		{L0, L0, L0, L0, L1, L1, L0, L1, L1, L0},
		{L0, L1, L0, L1, L1, L0, L1, L0, L1, L0},
		{L1, L0, L0, L1, L1, L0, L1, L0, L0, L1},
		{L1, L1, L1, L1, L0, L0, L0, L1, L0, L1},
	}
	for _, row := range truth {
		e.SetInputNet(a, row.a)
		e.SetInputNet(b, row.b)
		e.Eval()
		check := func(name string, want Logic) {
			got, err := e.ValueByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s(%s,%s) = %s, want %s", name, row.a, row.b, got, want)
			}
		}
		check("and", row.and)
		check("or", row.or)
		check("nand", row.nand)
		check("nor", row.nor)
		check("xor", row.xor)
		check("xnor", row.xnor)
		check("not", row.not)
		check("buf", row.bf)
	}
}

func TestRippleAdderExhaustive(t *testing.T) {
	c := NewCircuit("add4")
	a := c.InputBus("a", 4)
	b := c.InputBus("b", 4)
	sum, cout := RippleAdder(c, a, b, c.Const(L0))
	c.OutputBus("s", sum)
	c.Output("cout", cout)
	e := mustEval(t, c)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			e.SetBus(a, x)
			e.SetBus(b, y)
			e.Eval()
			got, ok := e.BusValue(sum)
			if !ok {
				t.Fatalf("unknown sum bits for %d+%d", x, y)
			}
			co, _ := e.Value(cout).Bool()
			want := x + y
			if got != want&0xf || co != (want > 15) {
				t.Errorf("%d+%d = %d carry %v, want %d carry %v", x, y, got, co, want&0xf, want > 15)
			}
		}
	}
}

func TestSubtractor(t *testing.T) {
	c := NewCircuit("sub4")
	a := c.InputBus("a", 4)
	b := c.InputBus("b", 4)
	diff, noBorrow := RippleSubtractor(c, a, b)
	c.OutputBus("d", diff)
	c.Output("nb", noBorrow)
	e := mustEval(t, c)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			e.SetBus(a, x)
			e.SetBus(b, y)
			e.Eval()
			got, _ := e.BusValue(diff)
			nb, _ := e.Value(noBorrow).Bool()
			if got != (x-y)&0xf || nb != (x >= y) {
				t.Errorf("%d-%d = %d nb=%v", x, y, got, nb)
			}
		}
	}
}

func TestEqComparator(t *testing.T) {
	c := NewCircuit("eq")
	a := c.InputBus("a", 5)
	b := c.InputBus("b", 5)
	eq := EqComparator(c, a, b)
	c.Output("eq", eq)
	e := mustEval(t, c)
	for x := uint64(0); x < 32; x += 3 {
		for y := uint64(0); y < 32; y += 5 {
			e.SetBus(a, x)
			e.SetBus(b, y)
			e.Eval()
			got, _ := e.Value(eq).Bool()
			if got != (x == y) {
				t.Errorf("eq(%d,%d) = %v", x, y, got)
			}
		}
	}
}

func TestMajorityAndTMR(t *testing.T) {
	c := NewCircuit("tmr")
	a := c.InputBus("a", 3)
	b := c.InputBus("b", 3)
	d := c.InputBus("c", 3)
	v := TMRVoter(c, a, b, d)
	c.OutputBus("v", v)
	e := mustEval(t, c)
	// Two agreeing lanes always win.
	e.SetBus(a, 0b101)
	e.SetBus(b, 0b101)
	e.SetBus(d, 0b010) // fully corrupted third lane
	e.Eval()
	got, _ := e.BusValue(v)
	if got != 0b101 {
		t.Errorf("TMR vote = %03b, want 101", got)
	}
}

func TestCRC8MatchesGolden(t *testing.T) {
	c := NewCircuit("crc")
	init := make([]Net, 8)
	for i := range init {
		init[i] = c.Const(L0)
	}
	d0 := c.InputBus("d0", 8)
	d1 := c.InputBus("d1", 8)
	crc := CRC8Step(c, init, d0)
	crc = CRC8Step(c, crc, d1)
	c.OutputBus("crc", crc)
	e := mustEval(t, c)
	for _, data := range [][]byte{{0x00, 0x00}, {0x12, 0x34}, {0xff, 0xff}, {0xc2, 0x01}} {
		e.SetBus(d0, uint64(data[0]))
		e.SetBus(d1, uint64(data[1]))
		e.Eval()
		got, ok := e.BusValue(crc)
		if !ok {
			t.Fatal("unknown CRC bits")
		}
		if byte(got) != CRC8(data) {
			t.Errorf("CRC8(%x) gate=%#02x golden=%#02x", data, got, CRC8(data))
		}
	}
}

func TestALUMatchesGolden(t *testing.T) {
	alu := NewALU(8)
	e := mustEval(t, alu.Circuit)
	vals := []uint64{0, 1, 0x55, 0xaa, 0x7f, 0x80, 0xff, 0x13}
	for op := ALUAdd; op <= ALUNot; op++ {
		for _, x := range vals {
			for _, y := range vals {
				e.SetBus(alu.A, x)
				e.SetBus(alu.B, y)
				e.SetBus(alu.Op, uint64(op))
				e.Eval()
				gy, ok := e.BusValue(alu.Y)
				if !ok {
					t.Fatalf("op %d: unknown Y bits", op)
				}
				gc, _ := e.Value(alu.Carry).Bool()
				gz, _ := e.Value(alu.Zero).Bool()
				wy, wc, wz := ALUGolden(op, x, y, 8)
				if gy != wy || gc != wc || gz != wz {
					t.Errorf("op%d(%#x,%#x): gate=(%#x,%v,%v) golden=(%#x,%v,%v)",
						op, x, y, gy, gc, gz, wy, wc, wz)
				}
			}
		}
	}
}

func TestDFFAndTick(t *testing.T) {
	// 2-bit counter: q = q + 1 every tick.
	c := NewCircuit("cnt")
	one := c.Const(L1)
	zero := c.Const(L0)
	// Build with feedback: declare DFFs on placeholder nets via two-pass.
	// q0 toggles; q1 toggles when q0=1.
	// Feedback requires creating DFF whose input is computed from its
	// own output: allocate DFF with a temporary buf chain.
	// Simpler: d0 = not q0; d1 = q1 xor q0.
	// Create inputs as DFF outputs first using a trick: DFF takes d net
	// created later is impossible, so use explicit wiring:
	_ = zero
	// Pass 1: create placeholder input nets.
	d0 := c.Input("_d0") // will be driven by copy-back below
	d1 := c.Input("_d1")
	q0 := c.DFF(d0, L0)
	q1 := c.DFF(d1, L0)
	c.Output("q0", q0)
	c.Output("q1", q1)
	nd0 := c.Not(q0)
	nd1 := c.Xor(q1, q0)
	_ = one
	e := mustEval(t, c)
	// Manually close the feedback each cycle (test-only wiring).
	want := []uint64{1, 2, 3, 0, 1}
	for i, w := range want {
		e.Eval()
		v0 := e.Value(nd0)
		v1 := e.Value(nd1)
		e.SetInputNet(d0, v0)
		e.SetInputNet(d1, v1)
		e.Tick()
		b0, _ := e.Value(q0).Bool()
		b1, _ := e.Value(q1).Bool()
		got := uint64(0)
		if b0 {
			got |= 1
		}
		if b1 {
			got |= 2
		}
		if got != w {
			t.Errorf("cycle %d: counter = %d, want %d", i, got, w)
		}
	}
	if e.NumState() != 2 {
		t.Errorf("NumState = %d", e.NumState())
	}
}

func TestStuckAtInjection(t *testing.T) {
	c := NewCircuit("inj")
	a := c.Input("a")
	b := c.Input("b")
	mid := c.And(a, b)
	out := c.Or(mid, c.Const(L0))
	c.Output("out", out)
	e := mustEval(t, c)
	e.SetInputNet(a, L1)
	e.SetInputNet(b, L1)
	e.Eval()
	if v, _ := e.Value(out).Bool(); !v {
		t.Fatal("fault-free output wrong")
	}
	e.InjectFault(mid, FaultStuckAt0)
	e.Eval()
	if v, _ := e.Value(out).Bool(); v {
		t.Error("stuck-at-0 on mid not observable")
	}
	e.ClearFaults()
	e.Eval()
	if v, _ := e.Value(out).Bool(); !v {
		t.Error("ClearFaults did not restore")
	}
	// Open fault poisons downstream to X.
	e.InjectFault(mid, FaultOpen)
	e.Eval()
	if e.Value(out) != LX {
		t.Errorf("open fault: out = %s, want x", e.Value(out))
	}
}

func TestInjectFaultByName(t *testing.T) {
	c := NewCircuit("inj2")
	a := c.Input("a")
	c.Output("y", c.Buf(a))
	e := mustEval(t, c)
	if err := e.InjectFaultByName("y", FaultStuckAt1); err != nil {
		t.Fatal(err)
	}
	e.SetInputNet(a, L0)
	e.Eval()
	v, err := e.ValueByName("y")
	if err != nil || v != L1 {
		t.Errorf("y = %v, %v", v, err)
	}
	if err := e.InjectFaultByName("nosuch", FaultStuckAt0); err == nil {
		t.Error("unknown net accepted")
	}
}

func TestInputFaultOverlay(t *testing.T) {
	c := NewCircuit("inj3")
	a := c.Input("a")
	c.Output("y", c.Buf(a))
	e := mustEval(t, c)
	e.InjectFault(a, FaultStuckAt1)
	e.SetInputNet(a, L0) // stuck input ignores driven value
	e.Eval()
	if v, _ := e.ValueByName("y"); v != L1 {
		t.Errorf("y = %s, want 1 (input stuck)", v)
	}
}

func TestFlipState(t *testing.T) {
	c := NewCircuit("ff")
	d := c.Input("d")
	q := c.DFF(d, L0)
	c.Output("q", q)
	e := mustEval(t, c)
	e.SetInputNet(d, L0)
	e.Tick()
	if v, _ := e.Value(q).Bool(); v {
		t.Fatal("q should be 0")
	}
	e.FlipState(0) // SEU
	if v, _ := e.Value(q).Bool(); !v {
		t.Error("FlipState did not invert q")
	}
	if e.StateNet(0) != q {
		t.Error("StateNet mismatch")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	c := NewCircuit("loop")
	a := c.Input("a")
	// Manual loop: create gate whose input is its own (later) output.
	x := c.And(a, a)
	// Rewire: make the and-gate read its own output.
	c.gates[0].In[1] = x
	if _, err := NewEvaluator(c); err == nil {
		t.Error("combinational loop not detected")
	}
}

func TestResetRestoresState(t *testing.T) {
	c := NewCircuit("rst")
	d := c.Input("d")
	q := c.DFF(d, L1)
	c.Output("q", q)
	e := mustEval(t, c)
	e.SetInputNet(d, L0)
	e.Tick()
	if v, _ := e.Value(q).Bool(); v {
		t.Fatal("q should have captured 0")
	}
	e.Reset()
	if v, _ := e.Value(q).Bool(); !v {
		t.Error("Reset did not restore initial state 1")
	}
}

func TestNetNames(t *testing.T) {
	c := NewCircuit("n")
	a := c.Input("alpha")
	if c.NetName(a) != "alpha" {
		t.Errorf("NetName = %q", c.NetName(a))
	}
	n, ok := c.NetByName("alpha")
	if !ok || n != a {
		t.Error("NetByName failed")
	}
	b := c.Buf(a)
	if c.NetName(b) != "n1" {
		t.Errorf("unnamed NetName = %q", c.NetName(b))
	}
	if c.NumGates() != 1 || c.NumNets() != 2 {
		t.Errorf("counts: %d gates, %d nets", c.NumGates(), c.NumNets())
	}
}

func TestKernelCircuitMatchesEvaluator(t *testing.T) {
	alu := NewALU(4)
	k := sim.NewKernel()
	kc := BindKernel(k, alu.Circuit)
	e := mustEval(t, alu.Circuit)

	type vec struct{ a, b, op uint64 }
	vecs := []vec{{3, 5, 0}, {9, 4, 1}, {0xa, 0x6, 2}, {0xa, 0x6, 4}, {1, 0, 5}, {8, 0, 6}, {0xf, 0, 7}}
	var mismatches int
	k.Thread("tb", func(ctx *sim.ThreadCtx) {
		for _, v := range vecs {
			kc.DriveBus(alu.A, v.a)
			kc.DriveBus(alu.B, v.b)
			kc.DriveBus(alu.Op, v.op)
			ctx.WaitTime(sim.NS(10)) // settle delta chain

			e.SetBus(alu.A, v.a)
			e.SetBus(alu.B, v.b)
			e.SetBus(alu.Op, v.op)
			e.Eval()

			kv, kok := kc.ReadBus(alu.Y)
			ev, eok := e.BusValue(alu.Y)
			if !kok || !eok || kv != ev {
				mismatches++
				t.Errorf("vec %+v: kernel=%#x(%v) evaluator=%#x(%v)", v, kv, kok, ev, eok)
			}
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if mismatches != 0 {
		t.Fatalf("%d mismatches between kernel and levelized evaluation", mismatches)
	}
}

func TestKernelCircuitDFF(t *testing.T) {
	c := NewCircuit("shift")
	d := c.Input("d")
	q1 := c.DFF(d, L0)
	q2 := c.DFF(q1, L0)
	c.Output("q2", q2)
	k := sim.NewKernel()
	kc := BindKernel(k, c)
	var got []Logic
	k.Thread("tb", func(ctx *sim.ThreadCtx) {
		kc.Drive(d, L1)
		for i := 0; i < 3; i++ {
			kc.Step(ctx, sim.NS(10))
			got = append(got, kc.Read(q2))
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	want := []Logic{L0, L1, L1} // two-stage shift of constant 1
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cycle %d: q2 = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKernelCircuitForceInjection(t *testing.T) {
	c := NewCircuit("f")
	a := c.Input("a")
	b := c.Input("b")
	mid := c.And(a, b)
	out := c.Buf(mid)
	c.Output("out", out)
	k := sim.NewKernel()
	kc := BindKernel(k, c)
	var before, during, after Logic
	k.Thread("tb", func(ctx *sim.ThreadCtx) {
		kc.Drive(a, L1)
		kc.Drive(b, L1)
		ctx.WaitTime(sim.NS(5))
		before = kc.Read(out)
		kc.Signal(mid).Force(L0) // saboteur holds the net low
		ctx.WaitTime(sim.NS(5))
		during = kc.Read(out)
		kc.Signal(mid).Release()
		ctx.WaitTime(sim.NS(5))
		after = kc.Read(out)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if before != L1 || during != L0 || after != L1 {
		t.Errorf("force sequence = %s/%s/%s, want 1/0/1", before, during, after)
	}
}

// Property: for random vectors, the gate-level ALU always matches its
// behavioural golden model (the fault-free premise of experiment E2).
func TestPropertyALUEquivalence(t *testing.T) {
	alu := NewALU(8)
	e, err := NewEvaluator(alu.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8, op uint8) bool {
		o := ALUOp(op % 8)
		e.SetBus(alu.A, uint64(a))
		e.SetBus(alu.B, uint64(b))
		e.SetBus(alu.Op, uint64(o))
		e.Eval()
		gy, ok := e.BusValue(alu.Y)
		gc, _ := e.Value(alu.Carry).Bool()
		gz, _ := e.Value(alu.Zero).Bool()
		wy, wc, wz := ALUGolden(o, uint64(a), uint64(b), 8)
		return ok && gy == wy && gc == wc && gz == wz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stuck-at fault on any single net never violates the
// overlay contract — reading that net always yields the stuck value
// after Eval.
func TestPropertyStuckAtOverlay(t *testing.T) {
	alu := NewALU(4)
	e, err := NewEvaluator(alu.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	f := func(netIdx uint16, sa1 bool, a, b uint8) bool {
		n := Net(int(netIdx) % alu.Circuit.NumNets())
		kind := FaultStuckAt0
		want := L0
		if sa1 {
			kind = FaultStuckAt1
			want = L1
		}
		e.ClearFaults()
		e.InjectFault(n, kind)
		e.SetBus(alu.A, uint64(a&0xf))
		e.SetBus(alu.B, uint64(b&0xf))
		e.SetBus(alu.Op, 0)
		e.Eval()
		return e.Value(n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEvaluatorALU(b *testing.B) {
	alu := NewALU(16)
	e, err := NewEvaluator(alu.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SetBus(alu.A, uint64(i))
		e.SetBus(alu.B, uint64(i*7))
		e.SetBus(alu.Op, uint64(i%8))
		e.Eval()
	}
}

func BenchmarkKernelALU(b *testing.B) {
	alu := NewALU(16)
	k := sim.NewKernel()
	kc := BindKernel(k, alu.Circuit)
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kc.DriveBus(alu.A, uint64(i))
		kc.DriveBus(alu.B, uint64(i*7))
		kc.DriveBus(alu.Op, uint64(i%8))
		if err := k.Run(sim.NS(10)); err != nil {
			b.Fatal(err)
		}
	}
}
