package rtl

import (
	"testing"
	"testing/quick"
)

func TestParallelMatchesSerialEvaluation(t *testing.T) {
	alu := NewALU(8)
	pe, err := NewParallelEvaluator(alu.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewEvaluator(alu.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// 64 patterns at once.
	patterns := map[Net]uint64{}
	type vec struct{ a, b, op uint64 }
	var vecs []vec
	for i := 0; i < 64; i++ {
		vecs = append(vecs, vec{uint64(i*7+1) & 0xff, uint64(i*13+5) & 0xff, uint64(i) % 8})
	}
	setBit := func(n Net, pat int, bit bool) {
		if bit {
			patterns[n] |= 1 << uint(pat)
		}
	}
	for pi, v := range vecs {
		for b, n := range alu.A {
			setBit(n, pi, v.a>>uint(b)&1 == 1)
		}
		for b, n := range alu.B {
			setBit(n, pi, v.b>>uint(b)&1 == 1)
		}
		for b, n := range alu.Op {
			setBit(n, pi, v.op>>uint(b)&1 == 1)
		}
	}
	for n, w := range patterns {
		pe.SetInputPatterns(n, w)
	}
	pe.Eval()
	for pi, v := range vecs {
		se.SetBus(alu.A, v.a)
		se.SetBus(alu.B, v.b)
		se.SetBus(alu.Op, v.op)
		se.Eval()
		for b, n := range alu.Y {
			sBit, _ := se.Value(n).Bool()
			pBit := pe.Value(n)>>uint(pi)&1 == 1
			if sBit != pBit {
				t.Fatalf("pattern %d output bit %d: serial %v, parallel %v", pi, b, sBit, pBit)
			}
		}
	}
}

func TestParallelRejectsSequential(t *testing.T) {
	c := NewCircuit("seq")
	d := c.Input("d")
	c.Output("q", c.DFF(d, L0))
	if _, err := NewParallelEvaluator(c); err == nil {
		t.Error("sequential circuit accepted")
	}
}

// gradeFixture builds matched pattern sets for both engines.
func gradeFixture(t testing.TB) (*ALU, map[Net]uint64, []map[Net]Logic, []Net) {
	t.Helper()
	alu := NewALU(4)
	parallel := map[Net]uint64{}
	var serial []map[Net]Logic
	for pi := 0; pi < 64; pi++ {
		a := uint64(pi*5+3) & 0xf
		b := uint64(pi*11+1) & 0xf
		op := uint64(pi) % 8
		pat := map[Net]Logic{}
		fill := func(bus []Net, v uint64) {
			for bit, n := range bus {
				on := v>>uint(bit)&1 == 1
				pat[n] = FromBool(on)
				if on {
					parallel[n] |= 1 << uint(pi)
				}
			}
		}
		fill(alu.A, a)
		fill(alu.B, b)
		fill(alu.Op, op)
		serial = append(serial, pat)
	}
	var nets []Net
	for n := 0; n < alu.Circuit.NumNets(); n += 5 {
		nets = append(nets, Net(n))
	}
	return alu, parallel, serial, nets
}

func TestFaultGradeMatchesSerial(t *testing.T) {
	alu, parallel, serial, nets := gradeFixture(t)
	pe, err := NewParallelEvaluator(alu.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	pRes := pe.FaultGrade(nets, parallel)
	sRes, err := SerialFaultGrade(alu.Circuit, nets, serial)
	if err != nil {
		t.Fatal(err)
	}
	if pRes.Faults != sRes.Faults {
		t.Fatalf("fault counts differ: %d vs %d", pRes.Faults, sRes.Faults)
	}
	if pRes.Detected != sRes.Detected {
		t.Errorf("detection differs: parallel %d, serial %d", pRes.Detected, sRes.Detected)
	}
	if pRes.Coverage() <= 0 || pRes.Coverage() > 1 {
		t.Errorf("coverage = %v", pRes.Coverage())
	}
	// The acceleration claim: far fewer gate evaluations.
	if pRes.GateEvals*10 > sRes.GateEvals {
		t.Errorf("parallel evals %d not ≫ faster than serial %d", pRes.GateEvals, sRes.GateEvals)
	}
	t.Logf("fault grading: %d faults, coverage %.0f%%, gate evals serial %d vs parallel %d (%.0fx)",
		pRes.Faults, pRes.Coverage()*100, sRes.GateEvals, pRes.GateEvals,
		float64(sRes.GateEvals)/float64(pRes.GateEvals))
}

// Property: for random single patterns, the parallel evaluator's
// pattern-0 lane always agrees with the four-state evaluator.
func TestPropertyParallelLaneZero(t *testing.T) {
	alu := NewALU(4)
	pe, err := NewParallelEvaluator(alu.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewEvaluator(alu.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, op uint8) bool {
		av, bv, opv := uint64(a&0xf), uint64(b&0xf), uint64(op%8)
		for bit, n := range alu.A {
			pe.SetInputPatterns(n, av>>uint(bit)&1)
		}
		for bit, n := range alu.B {
			pe.SetInputPatterns(n, bv>>uint(bit)&1)
		}
		for bit, n := range alu.Op {
			pe.SetInputPatterns(n, opv>>uint(bit)&1)
		}
		pe.Eval()
		se.SetBus(alu.A, av)
		se.SetBus(alu.B, bv)
		se.SetBus(alu.Op, opv)
		se.Eval()
		for _, n := range alu.Y {
			sBit, _ := se.Value(n).Bool()
			if (pe.Value(n)&1 == 1) != sBit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSerialFaultGrade(b *testing.B) {
	alu, _, serial, nets := gradeFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SerialFaultGrade(alu.Circuit, nets, serial); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelFaultGrade(b *testing.B) {
	alu, parallel, _, nets := gradeFixture(b)
	pe, err := NewParallelEvaluator(alu.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.FaultGrade(nets, parallel)
	}
}
