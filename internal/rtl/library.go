package rtl

// This file is the synthesizable circuit library: the structural
// building blocks the experiments inject faults into. Everything is
// built from the primitive cells in netlist.go, so every internal net
// is a valid stuck-at/open fault site.

// FullAdder inserts a one-bit full adder and returns (sum, carryOut).
func FullAdder(c *Circuit, a, b, cin Net) (sum, cout Net) {
	axb := c.Xor(a, b)
	sum = c.Xor(axb, cin)
	cout = c.Or(c.And(a, b), c.And(axb, cin))
	return sum, cout
}

// RippleAdder inserts a width-|a| ripple-carry adder; a and b must have
// equal width. It returns the sum bus (LSB first) and the carry out.
func RippleAdder(c *Circuit, a, b []Net, cin Net) (sum []Net, cout Net) {
	if len(a) != len(b) {
		panic("rtl: RippleAdder width mismatch")
	}
	sum = make([]Net, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = FullAdder(c, a[i], b[i], carry)
	}
	return sum, carry
}

// RippleSubtractor inserts a two's-complement subtractor a-b; it
// returns the difference bus and the borrow-free flag (carry out; 1
// means no borrow, i.e. a >= b for unsigned operands).
func RippleSubtractor(c *Circuit, a, b []Net) (diff []Net, noBorrow Net) {
	nb := make([]Net, len(b))
	for i := range b {
		nb[i] = c.Not(b[i])
	}
	return RippleAdder(c, a, nb, c.Const(L1))
}

// EqComparator inserts an equality comparator over two buses.
func EqComparator(c *Circuit, a, b []Net) Net {
	if len(a) != len(b) {
		panic("rtl: EqComparator width mismatch")
	}
	bits := make([]Net, len(a))
	for i := range a {
		bits[i] = c.Xnor(a[i], b[i])
	}
	return c.And(bits...)
}

// Majority3 inserts a one-bit 2-of-3 majority voter.
func Majority3(c *Circuit, a, b, d Net) Net {
	return c.Or(c.And(a, b), c.And(a, d), c.And(b, d))
}

// TMRVoter inserts a bitwise 2-of-3 majority voter over three buses —
// the classic triple-modular-redundancy safety mechanism. All buses
// must have equal width.
func TMRVoter(c *Circuit, a, b, d []Net) []Net {
	if len(a) != len(b) || len(b) != len(d) {
		panic("rtl: TMRVoter width mismatch")
	}
	out := make([]Net, len(a))
	for i := range a {
		out[i] = Majority3(c, a[i], b[i], d[i])
	}
	return out
}

// Parity inserts an even-parity generator over a bus.
func Parity(c *Circuit, bus []Net) Net {
	return c.Xor(bus...)
}

// CRC8Step inserts one byte-wide step of CRC-8 (polynomial 0x07,
// MSB-first): given the current CRC register bus and a data byte bus
// (both 8 bits, LSB first), it returns the next CRC bus. Chaining
// steps yields a combinational multi-byte CRC — the end-to-end
// protection code used by the CAPS communication experiments.
func CRC8Step(c *Circuit, crc, data []Net) []Net {
	if len(crc) != 8 || len(data) != 8 {
		panic("rtl: CRC8Step requires 8-bit buses")
	}
	cur := make([]Net, 8)
	for i := 0; i < 8; i++ {
		cur[i] = c.Xor(crc[i], data[i])
	}
	// Process 8 bit-shifts MSB-first: out = (cur<<1) ^ (msb ? 0x07 : 0).
	for step := 0; step < 8; step++ {
		msb := cur[7]
		next := make([]Net, 8)
		next[0] = c.Mux2(msb, c.Const(L0), c.Const(L1)) // bit0 ^= msb&1
		next[1] = c.Mux2(msb, cur[0], c.Not(cur[0]))    // bit1 ^= msb&1
		next[2] = c.Mux2(msb, cur[1], c.Not(cur[1]))    // bit2 ^= msb&1
		for i := 3; i < 8; i++ {
			next[i] = cur[i-1]
		}
		cur = next
	}
	return cur
}

// ALUOp selects an ALU operation (3-bit op bus encoding).
type ALUOp uint8

const (
	// ALUAdd computes a + b.
	ALUAdd ALUOp = iota
	// ALUSub computes a - b.
	ALUSub
	// ALUAnd computes a & b.
	ALUAnd
	// ALUOr computes a | b.
	ALUOr
	// ALUXor computes a ^ b.
	ALUXor
	// ALUShl computes a << 1.
	ALUShl
	// ALUShr computes a >> 1 (logical).
	ALUShr
	// ALUNot computes ^a.
	ALUNot
)

// ALU is a compiled structural ALU plus handles to its port buses —
// the gate-level DUT of the cross-layer experiment E2.
type ALU struct {
	Circuit *Circuit
	A, B    []Net
	Op      []Net
	Y       []Net
	Carry   Net
	Zero    Net
	Width   int
}

// NewALU builds a width-bit structural ALU with operations selected by
// a 3-bit op bus, producing a result bus plus carry and zero flags.
func NewALU(width int) *ALU {
	c := NewCircuit("alu")
	a := c.InputBus("a", width)
	b := c.InputBus("b", width)
	op := c.InputBus("op", 3)

	sum, sumC := RippleAdder(c, a, b, c.Const(L0))
	diff, diffC := RippleSubtractor(c, a, b)
	andB := make([]Net, width)
	orB := make([]Net, width)
	xorB := make([]Net, width)
	notB := make([]Net, width)
	shlB := make([]Net, width)
	shrB := make([]Net, width)
	for i := 0; i < width; i++ {
		andB[i] = c.And(a[i], b[i])
		orB[i] = c.Or(a[i], b[i])
		xorB[i] = c.Xor(a[i], b[i])
		notB[i] = c.Not(a[i])
		if i == 0 {
			shlB[i] = c.Const(L0)
		} else {
			shlB[i] = c.Buf(a[i-1])
		}
		if i == width-1 {
			shrB[i] = c.Const(L0)
		} else {
			shrB[i] = c.Buf(a[i+1])
		}
	}

	// 8:1 result mux per bit from the 3-bit op code.
	y := make([]Net, width)
	for i := 0; i < width; i++ {
		m0 := c.Mux2(op[0], sum[i], diff[i])  // op 0,1
		m1 := c.Mux2(op[0], andB[i], orB[i])  // op 2,3
		m2 := c.Mux2(op[0], xorB[i], shlB[i]) // op 4,5
		m3 := c.Mux2(op[0], shrB[i], notB[i]) // op 6,7
		lo := c.Mux2(op[1], m0, m1)
		hi := c.Mux2(op[1], m2, m3)
		y[i] = c.Mux2(op[2], lo, hi)
	}
	// Carry: valid for add/sub, 0 otherwise.
	carryAS := c.Mux2(op[0], sumC, diffC)
	isAddSub := c.Nor(op[1], op[2])
	carry := c.And(carryAS, isAddSub)
	zero := c.Nor(y...)

	c.OutputBus("y", y)
	c.Output("carry", carry)
	c.Output("zero", zero)
	return &ALU{Circuit: c, A: a, B: b, Op: op, Y: y, Carry: carry, Zero: zero, Width: width}
}

// ALUGolden is the behavioural (TLM-level) reference model of the
// structural ALU: same operations computed directly on integers. The
// cross-layer experiment E2 injects matched faults into both models
// and compares outcome classifications.
func ALUGolden(op ALUOp, a, b uint64, width int) (y uint64, carry, zero bool) {
	mask := uint64(1)<<uint(width) - 1
	a &= mask
	b &= mask
	switch op {
	case ALUAdd:
		full := a + b
		y = full & mask
		carry = full > mask
	case ALUSub:
		y = (a - b) & mask
		carry = a >= b // no borrow
	case ALUAnd:
		y = a & b
	case ALUOr:
		y = a | b
	case ALUXor:
		y = a ^ b
	case ALUShl:
		y = a << 1 & mask
	case ALUShr:
		y = a >> 1
	case ALUNot:
		y = ^a & mask
	}
	return y, carry, y == 0
}

// CRC8 computes the software reference CRC-8 (poly 0x07, init 0x00)
// matching CRC8Step chains.
func CRC8(data []byte) byte {
	var crc byte
	for _, d := range data {
		crc ^= d
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
