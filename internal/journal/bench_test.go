package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// benchJournal builds an n-entry journal shaped like real campaign
// output (short classifier strings, occasional details).
func benchJournal(n int) (Header, []Entry) {
	h := Header{
		FormatMarker: Format, Campaign: "bench", Shard: 0, Shards: 1,
		Total: n, Universe: "deadbeefdeadbeef",
	}
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Index: i, ID: fmt.Sprintf("seu/reg%03d@t%d", i%64, i), Class: "masked"}
		if i%7 == 0 {
			entries[i].Class = "detected-safe"
			entries[i].Detail = "plausibility inhibit latched at 12ms"
		}
	}
	return h, entries
}

func encodeJSONL(h Header, entries []Entry) []byte {
	var buf bytes.Buffer
	line, _ := json.Marshal(h)
	buf.Write(append(line, '\n'))
	for _, e := range entries {
		line, _ := json.Marshal(e)
		buf.Write(append(line, '\n'))
	}
	return buf.Bytes()
}

func encodeBinary(h Header, entries []Entry) []byte {
	data, _ := encodeBinaryHeader(h)
	for _, e := range entries {
		data = appendFrame(data, appendEntryPayload(nil, e))
	}
	return data
}

// BenchmarkJournalCodec pins the binary codec's encode+decode
// throughput advantage over JSONL — the reason the fabric coordinator
// defaults its shard journals to binary. Reported bytes/op is the
// encoded size, so ns/op comparisons are per full 4096-entry journal.
func BenchmarkJournalCodec(b *testing.B) {
	const n = 4096
	h, entries := benchJournal(n)
	codecs := []struct {
		name   string
		encode func(Header, []Entry) []byte
	}{
		{"jsonl", encodeJSONL},
		{"binary", encodeBinary},
	}
	for _, c := range codecs {
		data := c.encode(h, entries)
		b.Run(c.name+"/encode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if out := c.encode(h, entries); len(out) != len(data) {
					b.Fatal("unstable encode")
				}
			}
		})
		b.Run(c.name+"/decode", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				j, err := DecodeBytes(data)
				if err != nil || len(j.Entries) != n {
					b.Fatalf("decode: %v (%d entries)", err, len(j.Entries))
				}
			}
		})
	}
}
