package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"unicode/utf8"
)

// Codec selects a journal's on-disk encoding. JSONL is the original
// human-readable line format and stays the interoperability default;
// Binary is the compact length-prefixed frame format campaigns at
// millions of entries want (BenchmarkJournalCodec pins the delta).
// Readers never need to be told which one a file uses: DecodeBytes
// sniffs the binary magic and the two formats are unambiguous (a JSONL
// journal always starts with '{').
type Codec string

const (
	// JSONL encodes one JSON object per newline-terminated line.
	JSONL Codec = "jsonl"
	// Binary encodes length-prefixed frames with a CRC32 trailer.
	Binary Codec = "binary"
)

// ParseCodec parses the command-line codec syntax.
func ParseCodec(s string) (Codec, error) {
	switch Codec(s) {
	case JSONL, Binary:
		return Codec(s), nil
	}
	return "", fmt.Errorf("journal: unknown codec %q (want jsonl or binary)", s)
}

// The binary layout:
//
//	magic   8 bytes "govpbj1\n"
//	frame*  u32le payloadLen | payload | u32le crc32-IEEE(payload)
//
// The first frame's payload is 'H' followed by the JSON-encoded Header
// (headers are one per file, so compactness buys nothing and the JSON
// keeps them greppable with `strings`); every later frame is 'E'
// followed by the compact entry encoding:
//
//	uvarint index
//	uvarint len(id)     | id bytes
//	uvarint len(class)  | class bytes
//	uvarint len(detail) | detail bytes
//	flags byte          (bit 0: panicked, bit 1: signature follows)
//	uvarint signature   (present iff flags bit 1; always non-zero)
//
// The CRC failing on a frame that runs to end-of-file is the footprint
// of an append cut short by a crash: the frame is dropped and the
// journal reports Truncated, exactly like JSONL's unterminated final
// line. A CRC failure (or oversized length) anywhere else is
// corruption — a hard error, never silently merged.

// binaryMagic identifies a binary journal. The trailing newline keeps
// `head -c8` output clean; the format marker inside the header frame
// still carries the real version.
var binaryMagic = []byte("govpbj1\n")

// maxFrameLen bounds a single frame's payload. Entries are tiny and
// the header is small; anything past this is a corrupt length word,
// not a real frame.
const maxFrameLen = 1 << 20

const (
	frameHeader = 'H'
	frameEntry  = 'E'
)

var crcIEEE = crc32.IEEETable

// appendFrame appends one length+payload+CRC frame to dst.
func appendFrame(dst, payload []byte) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	dst = append(dst, n[:]...)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(n[:], crc32.Checksum(payload, crcIEEE))
	return append(dst, n[:]...)
}

// appendUvarint / appendString are the entry payload primitives.
func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	return append(dst, b[:binary.PutUvarint(b[:], v)]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendEntryPayload encodes e as an 'E' frame payload.
func appendEntryPayload(dst []byte, e Entry) []byte {
	dst = append(dst, frameEntry)
	dst = appendUvarint(dst, uint64(e.Index))
	dst = appendString(dst, e.ID)
	dst = appendString(dst, e.Class)
	dst = appendString(dst, e.Detail)
	var flags byte
	if e.Panicked {
		flags |= 1
	}
	if e.Sig != 0 {
		flags |= 2
	}
	dst = append(dst, flags)
	if e.Sig != 0 {
		dst = appendUvarint(dst, e.Sig)
	}
	return dst
}

// binReader walks an entry payload.
type binReader struct {
	p []byte
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		return 0, fmt.Errorf("journal: bad varint in entry frame")
	}
	r.p = r.p[n:]
	return v, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.p)) {
		return "", fmt.Errorf("journal: string length %d exceeds frame", n)
	}
	s := string(r.p[:n])
	r.p = r.p[n:]
	// JSONL cannot represent invalid UTF-8, so the binary codec refuses
	// it too: the two codecs are one format with two spellings, and a
	// journal must decode identically through either.
	if !utf8.ValidString(s) {
		return "", fmt.Errorf("journal: entry string is not valid UTF-8")
	}
	return s, nil
}

// decodeEntryPayload parses an 'E' frame payload (kind byte already
// consumed).
func decodeEntryPayload(p []byte) (Entry, error) {
	r := &binReader{p: p}
	var e Entry
	idx, err := r.uvarint()
	if err != nil {
		return e, err
	}
	if idx > 1<<31 {
		return e, fmt.Errorf("journal: entry index %d overflows", idx)
	}
	e.Index = int(idx)
	if e.ID, err = r.str(); err != nil {
		return e, err
	}
	if e.Class, err = r.str(); err != nil {
		return e, err
	}
	if e.Detail, err = r.str(); err != nil {
		return e, err
	}
	if len(r.p) < 1 {
		return e, fmt.Errorf("journal: entry frame missing flags byte")
	}
	flags := r.p[0]
	r.p = r.p[1:]
	if flags > 3 {
		return e, fmt.Errorf("journal: unknown entry flags %#x", flags)
	}
	e.Panicked = flags&1 != 0
	if flags&2 != 0 {
		sig, err := r.uvarint()
		if err != nil {
			return e, err
		}
		if sig == 0 {
			// A signature flag over a zero value would re-encode without
			// the flag — refuse the non-canonical spelling so accepted
			// frames always round-trip bit-exact.
			return e, fmt.Errorf("journal: entry signature flag with zero signature")
		}
		e.Sig = sig
	}
	if len(r.p) != 0 {
		return e, fmt.Errorf("journal: entry frame has %d trailing bytes", len(r.p))
	}
	return e, nil
}

// encodeBinaryHeader renders the magic plus the header frame.
func encodeBinaryHeader(h Header) ([]byte, error) {
	hj, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	out := append([]byte{}, binaryMagic...)
	return appendFrame(out, append([]byte{frameHeader}, hj...)), nil
}

// decodeBinary parses a binary journal (data starts with binaryMagic).
// An incomplete or CRC-failing frame at end-of-file is the truncation
// footprint: everything before it is kept and Truncated is set. The
// same damage anywhere else — more frames follow — is corruption and
// refuses to decode, as does any malformed frame content.
func decodeBinary(data []byte) (*Journal, error) {
	j := &Journal{Codec: Binary}
	rest := data[len(binaryMagic):]
	off := int64(len(binaryMagic))
	headerDone := false
	for len(rest) > 0 {
		payload, frameLen, complete, err := nextFrame(rest)
		if !complete {
			// The frame does not fit in the remaining bytes (or its CRC
			// fails right at end-of-file): an append cut short by a crash.
			// Without a decoded header the file is unidentifiable and
			// refused; with one it is resumable after trimming.
			if err != nil {
				return nil, err
			}
			if !headerDone {
				return nil, fmt.Errorf("journal: truncated before a complete header")
			}
			j.Truncated = true
			break
		}
		if err != nil {
			return nil, err
		}
		rest = rest[frameLen:]
		if len(payload) == 0 {
			return nil, fmt.Errorf("journal: empty frame after %d bytes", off)
		}
		kind, body := payload[0], payload[1:]
		if !headerDone {
			if kind != frameHeader {
				return nil, fmt.Errorf("journal: first frame kind %q, want header", kind)
			}
			var h Header
			if err := json.Unmarshal(body, &h); err != nil {
				return nil, fmt.Errorf("journal: bad header frame: %w", err)
			}
			if err := h.Validate(); err != nil {
				return nil, err
			}
			j.Header = h
			headerDone = true
			off += frameLen
			continue
		}
		if kind != frameEntry {
			return nil, fmt.Errorf("journal: unknown frame kind %q after %d bytes", kind, off)
		}
		e, err := decodeEntryPayload(body)
		if err != nil {
			return nil, err
		}
		if err := e.validate(j.Header); err != nil {
			return nil, err
		}
		j.Entries = append(j.Entries, e)
		off += frameLen
	}
	if !headerDone {
		return nil, fmt.Errorf("journal: truncated before a complete header")
	}
	j.ValidBytes = off
	return j, nil
}

// nextFrame inspects the frame at the start of rest. complete reports
// whether a whole, CRC-valid frame is present; when it is, payload
// aliases rest and frameLen is the total encoded size. err is non-nil
// only for damage that cannot be truncation: an oversized length word,
// or a CRC failure with more data following the frame.
func nextFrame(rest []byte) (payload []byte, frameLen int64, complete bool, err error) {
	if len(rest) < 4 {
		return nil, 0, false, nil
	}
	n := binary.LittleEndian.Uint32(rest)
	if n > maxFrameLen {
		return nil, 0, false, fmt.Errorf("journal: frame length %d exceeds %d — corrupt length word", n, maxFrameLen)
	}
	total := int64(4) + int64(n) + 4
	if int64(len(rest)) < total {
		return nil, 0, false, nil
	}
	payload = rest[4 : 4+n]
	want := binary.LittleEndian.Uint32(rest[4+n:])
	if crc32.Checksum(payload, crcIEEE) != want {
		if int64(len(rest)) == total {
			// Damaged final frame: torn write, recover as truncation.
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("journal: frame CRC mismatch with %d bytes following — corruption, not truncation", int64(len(rest))-total)
	}
	return payload, total, true, nil
}

// SniffCodec reports which codec encoded data (defaulting to JSONL for
// anything without the binary magic — the decoder will report precise
// errors for garbage).
func SniffCodec(data []byte) Codec {
	if bytes.HasPrefix(data, binaryMagic) {
		return Binary
	}
	return JSONL
}
