package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testHeader() Header {
	return Header{
		FormatMarker: Format, Campaign: "t", Shard: 0, Shards: 2,
		Total: 10, Universe: "deadbeefdeadbeef",
	}
}

func testEntries() []Entry {
	return []Entry{
		{Index: 0, ID: "s0", Class: "masked", Detail: "ran s0"},
		{Index: 2, ID: "s2", Class: "sdc", Detail: `quoted "detail" with
newline`},
		{Index: 4, ID: "s4", Class: "detected-safe", Panicked: true},
	}
}

// writeJournal creates a journal with the test header and entries and
// returns its path and raw bytes.
func writeJournal(t *testing.T, entries []Entry) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Appends() != len(entries) {
		t.Fatalf("Appends() = %d, want %d", w.Appends(), len(entries))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestJournalRoundTrip(t *testing.T) {
	entries := testEntries()
	path, _ := writeJournal(t, entries)
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Header != testHeader() {
		t.Errorf("header = %+v", j.Header)
	}
	if !reflect.DeepEqual(j.Entries, entries) {
		t.Errorf("entries = %+v, want %+v", j.Entries, entries)
	}
	if j.Truncated {
		t.Error("clean journal reported truncated")
	}
	fi, _ := os.Stat(path)
	if j.ValidBytes != fi.Size() {
		t.Errorf("ValidBytes = %d, file size %d", j.ValidBytes, fi.Size())
	}
	m := j.ByIndex()
	if len(m) != len(entries) || m[2].Class != "sdc" {
		t.Errorf("ByIndex = %v", m)
	}
}

func TestJournalCreateRefusesExisting(t *testing.T) {
	path, _ := writeJournal(t, nil)
	if _, err := Create(path, testHeader()); err == nil {
		t.Fatal("Create overwrote an existing journal")
	}
}

// TestJournalTruncationAtEveryByte is the crash-recovery property: for
// every prefix of a valid journal, decoding either fails (cut inside
// the header) or yields exactly the complete-line prefix of the
// entries, with Truncated set iff a partial line was dropped. No
// prefix may ever decode to entries that were not in the original.
func TestJournalTruncationAtEveryByte(t *testing.T) {
	entries := testEntries()
	_, raw := writeJournal(t, entries)
	full, err := DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(raw); n++ {
		j, err := DecodeBytes(raw[:n])
		if err != nil {
			continue // cut inside the header: unusable, and says so
		}
		if len(j.Entries) > len(entries) {
			t.Fatalf("prefix %d: %d entries from a %d-entry journal", n, len(j.Entries), len(entries))
		}
		for i, e := range j.Entries {
			if e != entries[i] {
				t.Fatalf("prefix %d: entry %d = %+v, want %+v", n, i, e, entries[i])
			}
		}
		// Truncated must be set exactly when bytes beyond the valid
		// prefix were present.
		if j.Truncated != (int64(n) > j.ValidBytes) {
			t.Fatalf("prefix %d: Truncated=%v with ValidBytes=%d", n, j.Truncated, j.ValidBytes)
		}
		if j.ValidBytes > int64(n) {
			t.Fatalf("prefix %d: ValidBytes=%d beyond input", n, j.ValidBytes)
		}
	}
	if full.Truncated || len(full.Entries) != len(entries) {
		t.Fatalf("full decode: truncated=%v entries=%d", full.Truncated, len(full.Entries))
	}
}

// TestJournalAppendToTrimsPartialTail: resuming a journal whose last
// append was cut mid-line trims the tail and continues cleanly.
func TestJournalAppendToTrimsPartialTail(t *testing.T) {
	entries := testEntries()
	path, raw := writeJournal(t, entries)
	// Chop the file mid-way through the final line.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	j, w, err := AppendTo(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if !j.Truncated || len(j.Entries) != len(entries)-1 {
		t.Fatalf("resumed journal: truncated=%v entries=%d", j.Truncated, len(j.Entries))
	}
	// Re-append the lost entry plus a new one.
	for _, e := range []Entry{entries[len(entries)-1], {Index: 6, ID: "s6", Class: "masked"}} {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Truncated || len(j2.Entries) != len(entries)+1 {
		t.Fatalf("after resume: truncated=%v entries=%d, want %d", j2.Truncated, len(j2.Entries), len(entries)+1)
	}
}

// TestJournalZeroEntryRecovery covers the two header-boundary crash
// footprints: a file ending exactly at the header line (zero entries,
// clean) and a file whose only line is the header with its newline
// never flushed. Both must resume from index 0 — the second after
// AppendTo rewrites the header it trimmed.
func TestJournalZeroEntryRecovery(t *testing.T) {
	t.Run("header with newline", func(t *testing.T) {
		path, raw := writeJournal(t, nil)
		j, err := DecodeBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(j.Entries) != 0 || j.Truncated || j.ValidBytes != int64(len(raw)) {
			t.Fatalf("decode = %+v", j)
		}
		j2, w, err := AppendTo(path, testHeader())
		if err != nil {
			t.Fatal(err)
		}
		if len(j2.Entries) != 0 {
			t.Fatalf("resume found %d entries", len(j2.Entries))
		}
		if err := w.Append(Entry{Index: 0, ID: "s0", Class: "masked"}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		j3, err := Read(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(j3.Entries) != 1 || j3.Truncated {
			t.Fatalf("after resume: %+v", j3)
		}
	})
	t.Run("header without newline", func(t *testing.T) {
		path, raw := writeJournal(t, nil)
		if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := DecodeBytes(raw[:len(raw)-1])
		if err != nil {
			t.Fatalf("complete-but-unterminated header refused: %v", err)
		}
		if !j.Truncated || j.ValidBytes != 0 || len(j.Entries) != 0 || j.Header != testHeader() {
			t.Fatalf("decode = %+v", j)
		}
		j2, w, err := AppendTo(path, testHeader())
		if err != nil {
			t.Fatal(err)
		}
		if !j2.Truncated || len(j2.Entries) != 0 {
			t.Fatalf("resume = %+v", j2)
		}
		if err := w.Append(Entry{Index: 0, ID: "s0", Class: "masked"}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// The rewritten file must be a well-formed one-entry journal.
		j3, err := Read(path)
		if err != nil {
			t.Fatal(err)
		}
		if j3.Truncated || j3.Header != testHeader() || len(j3.Entries) != 1 {
			t.Fatalf("after resume: %+v", j3)
		}
	})
	// A header cut mid-way is unidentifiable and must stay a hard error.
	_, raw := writeJournal(t, nil)
	if _, err := DecodeBytes(raw[:len(raw)/2]); err == nil {
		t.Fatal("half a header accepted")
	}
}

// TestJournalGarbageAfterValidTail: a partially-flushed final line
// consisting of a valid JSON object followed by garbage (two appends
// interleaved by a crash) has no terminating newline — it must be
// dropped as the truncated tail, never parsed as an entry, and the
// journal resumes from the last complete line.
func TestJournalGarbageAfterValidTail(t *testing.T) {
	entries := testEntries()
	path, raw := writeJournal(t, entries)
	tail := []byte("{\"i\":6,\"id\":\"s6\",\"class\":\"masked\"}{\"i\":7,\"id")
	if err := os.WriteFile(path, append(raw, tail...), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Truncated || j.ValidBytes != int64(len(raw)) || len(j.Entries) != len(entries) {
		t.Fatalf("decode = truncated=%v validBytes=%d entries=%d, want %d/%d",
			j.Truncated, j.ValidBytes, len(j.Entries), len(raw), len(entries))
	}
	for _, e := range j.Entries {
		if e.Index == 6 {
			t.Fatal("unterminated tail parsed as an entry")
		}
	}
	j2, w, err := AppendTo(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Entries) != len(entries) {
		t.Fatalf("resume found %d entries, want %d", len(j2.Entries), len(entries))
	}
	if err := w.Append(Entry{Index: 6, ID: "s6", Class: "masked"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Truncated || len(j3.Entries) != len(entries)+1 {
		t.Fatalf("after resume: truncated=%v entries=%d", j3.Truncated, len(j3.Entries))
	}
}

func TestJournalAppendToRejectsHeaderMismatch(t *testing.T) {
	path, _ := writeJournal(t, testEntries())
	h := testHeader()
	h.Universe = "0000000000000000"
	if _, _, err := AppendTo(path, h); err == nil {
		t.Fatal("AppendTo accepted a journal from a different universe")
	}
	h = testHeader()
	h.Shard = 1
	if _, _, err := AppendTo(path, h); err == nil {
		t.Fatal("AppendTo accepted a journal from a different shard")
	}
}

func TestJournalDecodeRejectsCorruption(t *testing.T) {
	_, raw := writeJournal(t, testEntries())
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no header", []byte("{\"i\":0,\"id\":\"s0\",\"class\":\"masked\"}\n")},
		{"wrong marker", []byte("{\"journal\":\"other/9\",\"campaign\":\"t\",\"shard\":0,\"shards\":1,\"total\":1,\"universe\":\"x\"}\n")},
		{"garbage interior line", []byte(strings.Replace(string(raw), "\"id\":\"s2\"", "\x00\x01", 1))},
		{"entry out of range", []byte(strings.Replace(string(raw), "{\"i\":2,", "{\"i\":99,", 1))},
		{"entry without class", []byte(strings.Replace(string(raw), "\"class\":\"sdc\",", "", 1))},
		{"shard out of range", []byte(strings.Replace(string(raw), "\"shard\":0", "\"shard\":7", 1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBytes(tc.data); err == nil {
				t.Errorf("corruption accepted: %q", tc.data)
			}
		})
	}
}
