package journal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fuzzSeedJournal builds a small valid journal for the seed corpus.
func fuzzSeedJournal() []byte {
	var buf bytes.Buffer
	h := Header{FormatMarker: Format, Campaign: "fz", Shard: 1, Shards: 4, Total: 8, Universe: "cafe0000cafe0000"}
	line, _ := json.Marshal(h)
	buf.Write(append(line, '\n'))
	for _, e := range []Entry{
		{Index: 1, ID: "a", Class: "masked"},
		{Index: 5, ID: "b", Class: "sdc", Detail: "x\ny", Panicked: true},
	} {
		line, _ := json.Marshal(e)
		buf.Write(append(line, '\n'))
	}
	return buf.Bytes()
}

// FuzzJournalReplay is the crash/corruption contract of the journal
// layer: DecodeBytes must never panic, must never fabricate entries a
// re-encode would not reproduce, and must never report more valid
// bytes than it was given. Truncated and corrupt inputs are detected —
// a journal that decodes cleanly round-trips bit-exact through
// re-encoding, so nothing corrupt can ever be silently merged.
// fuzzSeedBinaryJournal builds a small valid binary journal for the
// FuzzJournalBinary seed corpus.
func fuzzSeedBinaryJournal() []byte {
	h := Header{FormatMarker: Format, Campaign: "fz", Shard: 1, Shards: 4, Total: 8, Universe: "cafe0000cafe0000"}
	data, _ := encodeBinaryHeader(h)
	for _, e := range []Entry{
		{Index: 1, ID: "a", Class: "masked"},
		{Index: 5, ID: "b", Class: "sdc", Detail: "x\ny", Panicked: true},
	} {
		data = appendFrame(data, appendEntryPayload(nil, e))
	}
	return data
}

// fuzzSeedAdaptiveBinaryJournal is the adaptive-campaign spelling:
// gappy proposal-sequence indices past Total, signature uvarints
// behind flags bit 1.
func fuzzSeedAdaptiveBinaryJournal() []byte {
	h := Header{FormatMarker: Format, Campaign: "fz-ad", Shard: 0, Shards: 1, Total: 4, Universe: "feed0000feed0000", Adaptive: true}
	data, _ := encodeBinaryHeader(h)
	for _, e := range []Entry{
		{Index: 0, ID: "p0", Class: "masked", Sig: 0xdeadbeefcafe},
		{Index: 3, ID: "p3", Class: "sdc", Sig: 1},
		{Index: 9, ID: "p9", Class: "no-effect", Panicked: true, Sig: 1<<63 + 7},
	} {
		data = appendFrame(data, appendEntryPayload(nil, e))
	}
	return data
}

// FuzzJournalBinary extends the FuzzJournalReplay contract to the
// binary codec: DecodeBytes must never panic on arbitrary bytes
// carrying the binary magic, truncation/bit-flip recovery must obey
// the same ValidBytes/Truncated invariants, and anything accepted must
// round-trip bit-exact through a binary re-encode AND decode to the
// same journal through a JSONL re-encode — the two codecs are one
// format with two spellings.
func FuzzJournalBinary(f *testing.F) {
	valid := fuzzSeedBinaryJournal()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])     // truncated mid-frame
	f.Add(valid[:len(binaryMagic)]) // magic only
	f.Add(valid[:len(binaryMagic)+6])
	f.Add(append([]byte{}, binaryMagic...))
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	torn := append([]byte{}, valid...)
	torn[len(torn)-1] ^= 0xff
	f.Add(torn)
	// Oversized length word after a valid header.
	hdr := fuzzSeedBinaryJournal()[:len(binaryMagic)]
	f.Add(append(append([]byte{}, hdr...), 0xff, 0xff, 0xff, 0x7f))
	// Adaptive journal: signature uvarints, indices past Total.
	adaptive := fuzzSeedAdaptiveBinaryJournal()
	f.Add(adaptive)
	f.Add(adaptive[:len(adaptive)-3]) // truncated mid-signature
	f.Fuzz(func(t *testing.T, data []byte) {
		// Force the binary decode path: graft the magic onto arbitrary
		// fuzz bytes so mutation explores frames, not JSONL.
		if SniffCodec(data) != Binary {
			data = append(append([]byte{}, binaryMagic...), data...)
		}
		j, err := DecodeBytes(data)
		if err != nil {
			return // detected: corrupt input refused
		}
		if j.Codec != Binary {
			t.Fatalf("sniffed codec %q for magic-prefixed input", j.Codec)
		}
		if j.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d > input %d", j.ValidBytes, len(data))
		}
		if j.Truncated != (j.ValidBytes < int64(len(data))) {
			t.Fatalf("Truncated=%v but ValidBytes=%d of %d", j.Truncated, j.ValidBytes, len(data))
		}
		if err := j.Header.Validate(); err != nil {
			t.Fatalf("accepted invalid header: %v", err)
		}
		for _, e := range j.Entries {
			if err := e.validate(j.Header); err != nil {
				t.Fatalf("accepted invalid entry: %v", err)
			}
		}
		// Binary re-encode: the accepted prefix must reproduce exactly.
		re, err := encodeBinaryHeader(j.Header)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range j.Entries {
			re = appendFrame(re, appendEntryPayload(nil, e))
		}
		j2, err := DecodeBytes(re)
		if err != nil {
			t.Fatalf("binary re-encode does not decode: %v", err)
		}
		if j2.Header != j.Header || len(j2.Entries) != len(j.Entries) || j2.Truncated {
			t.Fatalf("binary re-encode changed the journal: %+v vs %+v", j2, j)
		}
		for i := range j.Entries {
			if j2.Entries[i] != j.Entries[i] {
				t.Fatalf("entry %d changed across binary re-encode: %+v vs %+v", i, j2.Entries[i], j.Entries[i])
			}
		}
		// Cross-codec: the same content spelled as JSONL decodes to the
		// same journal (Merge/resume semantics cannot depend on codec).
		var buf bytes.Buffer
		line, _ := json.Marshal(j.Header)
		buf.Write(append(line, '\n'))
		for _, e := range j.Entries {
			line, _ := json.Marshal(e)
			buf.Write(append(line, '\n'))
		}
		j3, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("JSONL re-spelling does not decode: %v", err)
		}
		if j3.Header != j.Header || len(j3.Entries) != len(j.Entries) {
			t.Fatalf("JSONL re-spelling changed the journal")
		}
		for i := range j.Entries {
			if j3.Entries[i] != j.Entries[i] {
				t.Fatalf("entry %d differs across codecs: %+v vs %+v", i, j3.Entries[i], j.Entries[i])
			}
		}
	})
}

func FuzzJournalReplay(f *testing.F) {
	valid := fuzzSeedJournal()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])                                     // truncated tail
	f.Add(valid[:bytes.IndexByte(valid, '\n')/2])                   // truncated header
	f.Add(bytes.Replace(valid, []byte(`"class"`), []byte("��"), 1)) // corrupt entry
	f.Add([]byte("{}\n"))
	f.Add([]byte("null\n{\"i\":0}\n"))
	f.Add([]byte{})
	f.Add(valid[:bytes.IndexByte(valid, '\n')+1]) // exactly the header, zero entries
	f.Add(valid[:bytes.IndexByte(valid, '\n')])   // complete header, newline never flushed
	// Unterminated tail that is a valid JSON object plus garbage — two
	// appends interleaved by a crash; must drop as truncated, not parse.
	f.Add(append(append([]byte{}, valid...), []byte(`{"i":3,"id":"c","class":"masked"}{"i":4,"id`)...))
	// Adaptive JSONL journal: sig fields, indices past Total.
	f.Add([]byte(`{"journal":"govp-campaign-journal/1","campaign":"ad","shard":0,"shards":1,"total":2,"universe":"feedfeed","adaptive":true}` + "\n" +
		`{"i":0,"id":"p0","class":"masked","sig":7}` + "\n" +
		`{"i":5,"id":"p5","class":"sdc","sig":18446744073709551615}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeBytes(data)
		if err != nil {
			return // detected: corrupt input refused
		}
		if j.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d > input %d", j.ValidBytes, len(data))
		}
		if j.Truncated != (j.ValidBytes < int64(len(data))) {
			t.Fatalf("Truncated=%v but ValidBytes=%d of %d", j.Truncated, j.ValidBytes, len(data))
		}
		if err := j.Header.Validate(); err != nil {
			t.Fatalf("accepted invalid header: %v", err)
		}
		for _, e := range j.Entries {
			if err := e.validate(j.Header); err != nil {
				t.Fatalf("accepted invalid entry: %v", err)
			}
		}
		// Re-encode the decoded journal and decode again: the accepted
		// content must survive a write/read cycle unchanged.
		var buf bytes.Buffer
		line, _ := json.Marshal(j.Header)
		buf.Write(append(line, '\n'))
		for _, e := range j.Entries {
			line, _ := json.Marshal(e)
			buf.Write(append(line, '\n'))
		}
		j2, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded journal does not decode: %v", err)
		}
		if j2.Header != j.Header || len(j2.Entries) != len(j.Entries) || j2.Truncated {
			t.Fatalf("re-encode changed the journal: %+v vs %+v", j2, j)
		}
		for i := range j.Entries {
			if j2.Entries[i] != j.Entries[i] {
				t.Fatalf("entry %d changed across re-encode: %+v vs %+v", i, j2.Entries[i], j.Entries[i])
			}
		}
	})
}
