// Package journal implements the append-only JSONL run journal that
// makes fault-injection campaigns interruptible and shardable: every
// completed scenario run is recorded as one line, so a campaign killed
// mid-flight (SIGINT, timeout, crash) resumes by replaying the journal
// and skipping what is already recorded, and the journals of a
// completed shard set merge into the unsharded result.
//
// The format is one JSON object per line. The first line is the
// Header (self-identifying via the "journal" format marker); every
// later line is an Entry. Appends are line-atomic in practice — a
// crash can only lose the line being written — and the decoder
// distinguishes a partial trailing line (Truncated, safe to resume
// from after trimming) from corruption anywhere else (a hard error,
// never silently merged).
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Format is the header marker identifying journal files. Bump the
// suffix on incompatible layout changes.
const Format = "govp-campaign-journal/1"

// Header is the first line of a journal: which campaign and shard the
// file belongs to, and a fingerprint of the scenario universe so a
// journal can never be resumed or merged against the wrong campaign.
type Header struct {
	// FormatMarker must equal Format.
	FormatMarker string `json:"journal"`
	// Campaign is the campaign name.
	Campaign string `json:"campaign"`
	// Shard and Shards identify the partition this journal covers
	// (0/1 for an unsharded campaign).
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Total is the number of scenarios in the full (unsharded,
	// pre-dedup) universe.
	Total int `json:"total"`
	// Universe fingerprints the scenario universe (stressor.UniverseHash).
	Universe string `json:"universe"`
	// Adaptive marks journals written by an adaptive campaign: entry
	// indices are strategy proposal sequence numbers (gappy where
	// equivalence pruning skipped a simulation), not positions in a
	// pre-enumerated universe, so they may exceed Total — Total then
	// records the simulated-run budget, and Universe fingerprints the
	// strategy configuration instead of a scenario list.
	Adaptive bool `json:"adaptive,omitempty"`
}

// Validate reports structural problems with the header.
func (h Header) Validate() error {
	switch {
	case h.FormatMarker != Format:
		return fmt.Errorf("journal: bad format marker %q (want %q)", h.FormatMarker, Format)
	case h.Shards < 1:
		return fmt.Errorf("journal: shards = %d, want >= 1", h.Shards)
	case h.Shard < 0 || h.Shard >= h.Shards:
		return fmt.Errorf("journal: shard %d out of range 0..%d", h.Shard, h.Shards-1)
	case h.Total < 0:
		return fmt.Errorf("journal: negative scenario total %d", h.Total)
	case h.Universe == "":
		return fmt.Errorf("journal: empty universe hash")
	}
	return nil
}

// Entry records one completed scenario run.
type Entry struct {
	// Index is the scenario's index in the full (pre-dedup) universe.
	// Under dedup only representative runs are journaled; duplicates
	// are reconstructed at merge/resume time.
	Index int `json:"i"`
	// ID is the scenario ID, cross-checked against the universe on
	// replay so a stale journal cannot silently poison a campaign.
	ID string `json:"id"`
	// Class is the outcome classification name (fault.Classification.String).
	Class string `json:"class"`
	// Detail is the outcome's human-readable detail.
	Detail string `json:"detail,omitempty"`
	// Panicked marks runs whose RunFunc panicked and was recovered.
	Panicked bool `json:"panicked,omitempty"`
	// Sig is the outcome's equivalence-class signature
	// (fault.Outcome.Signature); 0 when the run had none. Adaptive
	// campaigns persist it so a resumed run can rebuild its strategy's
	// novelty state from the journal alone.
	Sig uint64 `json:"sig,omitempty"`
}

// validate checks an entry against its journal's header.
func (e Entry) validate(h Header) error {
	switch {
	case e.Index < 0 || (!h.Adaptive && e.Index >= h.Total):
		return fmt.Errorf("journal: entry index %d out of range 0..%d", e.Index, h.Total-1)
	case e.ID == "":
		return fmt.Errorf("journal: entry %d without scenario ID", e.Index)
	case e.Class == "":
		return fmt.Errorf("journal: entry %d (%s) without class", e.Index, e.ID)
	}
	return nil
}

// Journal is a decoded journal file.
type Journal struct {
	Header  Header
	Entries []Entry
	// Codec is the encoding the file used (sniffed by DecodeBytes).
	// AppendTo keeps appending in the same codec.
	Codec Codec
	// Truncated reports that a partial trailing line (an append cut
	// short by a crash) was dropped. A truncated journal is valid to
	// resume from — AppendTo trims the tail first — but refuses to
	// merge.
	Truncated bool
	// ValidBytes is the length of the complete-line prefix; AppendTo
	// truncates the file to this length before appending.
	ValidBytes int64
}

// ByIndex maps entries by scenario index. Duplicate indices (possible
// only in hand-edited journals) keep the first occurrence.
func (j *Journal) ByIndex() map[int]Entry {
	m := make(map[int]Entry, len(j.Entries))
	for _, e := range j.Entries {
		if _, ok := m[e.Index]; !ok {
			m[e.Index] = e
		}
	}
	return m
}

// DecodeBytes parses journal bytes, sniffing the codec: data starting
// with the binary magic decodes as length-prefixed frames, everything
// else as JSONL lines.
//
// For JSONL, every complete line ends in '\n'; an unterminated final
// line — the footprint of an append cut short by a crash — sets
// Truncated and is dropped, even if it happens to parse (a later
// append must never concatenate onto it). A malformed terminated line,
// a missing or invalid header, or a structurally invalid entry is an
// error: corruption is detected, never merged. The binary decoder
// applies the same policy to frames (see decodeBinary).
func DecodeBytes(data []byte) (*Journal, error) {
	if SniffCodec(data) == Binary {
		return decodeBinary(data)
	}
	j := &Journal{Codec: JSONL}
	headerDone := false
	off := int64(0)
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			// Partial trailing append: resumable after trimming, but
			// unusable without its newline.
			if !headerDone {
				// A crash can cut even the very first write short. When
				// the unterminated bytes are exactly a complete, valid
				// header the file is identifiable — a resumable
				// zero-entry journal whose header AppendTo rewrites after
				// trimming. Anything less is unidentifiable and refused.
				var h Header
				if err := json.Unmarshal(data, &h); err != nil || h.Validate() != nil {
					return nil, fmt.Errorf("journal: truncated before a complete header")
				}
				j.Header = h
				headerDone = true
			}
			j.Truncated = true
			break
		}
		line := data[:i]
		data = data[i+1:]
		lineLen := int64(len(line)) + 1
		if !headerDone {
			var h Header
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("journal: bad header line: %w", err)
			}
			if err := h.Validate(); err != nil {
				return nil, err
			}
			j.Header = h
			headerDone = true
			off += lineLen
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("journal: corrupt entry line after %d bytes: %w", off, err)
		}
		if err := e.validate(j.Header); err != nil {
			return nil, err
		}
		j.Entries = append(j.Entries, e)
		off += lineLen
	}
	if !headerDone {
		return nil, fmt.Errorf("journal: empty or missing header")
	}
	j.ValidBytes = off
	return j, nil
}

// Read decodes the journal file at path.
func Read(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	j, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return j, nil
}

// Writer appends entries to a journal file in a fixed codec. It is
// safe for concurrent use by the workers of a parallel campaign.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	codec   Codec
	appends int
}

// Create starts a new JSONL journal at path, writing the header. It
// refuses to overwrite an existing file: journals are resumable state,
// so a stale one must be resumed (AppendTo) or deleted explicitly.
func Create(path string, h Header) (*Writer, error) {
	return CreateCodec(path, h, JSONL)
}

// CreateCodec is Create with an explicit on-disk encoding.
func CreateCodec(path string, h Header, codec Codec) (*Writer, error) {
	h.FormatMarker = Format
	if err := h.Validate(); err != nil {
		return nil, err
	}
	var head []byte
	switch codec {
	case JSONL:
		line, err := json.Marshal(h)
		if err != nil {
			return nil, err
		}
		head = append(line, '\n')
	case Binary:
		var err error
		if head, err = encodeBinaryHeader(h); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("journal: unknown codec %q", codec)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w (resume an existing journal with AppendTo, or delete it)", err)
	}
	if _, err := f.Write(head); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, codec: codec}, nil
}

// AppendTo reopens an existing journal for appending, adopting
// whatever codec the file already uses. The on-disk header must match
// h exactly (same campaign, shard layout and universe); a partial
// trailing line or frame left by a crash is trimmed first. It returns
// the decoded journal alongside the writer so the caller can replay
// the recorded entries.
func AppendTo(path string, h Header) (*Journal, *Writer, error) {
	h.FormatMarker = Format
	if err := h.Validate(); err != nil {
		return nil, nil, err
	}
	j, err := Read(path)
	if err != nil {
		return nil, nil, err
	}
	if j.Header != h {
		return nil, nil, fmt.Errorf("journal: %s header %+v does not match campaign %+v", path, j.Header, h)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if j.Truncated {
		if err := f.Truncate(j.ValidBytes); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: trimming partial tail of %s: %w", path, err)
		}
		if j.ValidBytes == 0 {
			// The partial line was the header itself (JSONL only — a
			// binary journal is unidentifiable without a complete header
			// frame): rewrite it so the trimmed file is a well-formed
			// zero-entry journal again.
			line, err := json.Marshal(h)
			if err == nil {
				_, err = f.Write(append(line, '\n'))
			}
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal: rewriting header of %s: %w", path, err)
			}
		}
	}
	return j, &Writer{f: f, codec: j.Codec}, nil
}

// Append writes one entry as a single line (JSONL) or frame (binary).
func (w *Writer) Append(e Entry) error {
	var rec []byte
	if w.codec == Binary {
		rec = appendFrame(nil, appendEntryPayload(nil, e))
	} else {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		rec = append(line, '\n')
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	w.appends++
	return nil
}

// Appends reports how many entries this writer has appended.
func (w *Writer) Appends() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Close syncs the journal to stable storage and closes the file. The
// sync is what surfaces write-back failures — an unwritable path
// (quota, ENOSPC, a yanked network mount) discovered after the kernel
// buffered the appends — so a campaign CLI can exit non-zero instead
// of reporting success over a journal that never reached disk.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	serr := w.f.Sync()
	cerr := w.f.Close()
	if serr != nil {
		return fmt.Errorf("journal: sync: %w", serr)
	}
	return cerr
}
