package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// encodeBinaryJournal renders a complete binary journal in memory.
func encodeBinaryJournal(t testing.TB, h Header, entries []Entry) []byte {
	t.Helper()
	data, err := encodeBinaryHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data = appendFrame(data, appendEntryPayload(nil, e))
	}
	return data
}

// writeBinaryJournal creates a binary journal file via the Writer path.
func writeBinaryJournal(t *testing.T, entries []Entry) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.bin")
	w, err := CreateCodec(path, testHeader(), Binary)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestBinaryRoundTrip(t *testing.T) {
	entries := testEntries()
	path, raw := writeBinaryJournal(t, entries)
	if SniffCodec(raw) != Binary {
		t.Fatalf("SniffCodec = %q, want binary", SniffCodec(raw))
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Codec != Binary {
		t.Errorf("Codec = %q, want binary", j.Codec)
	}
	if j.Header != testHeader() {
		t.Errorf("header = %+v", j.Header)
	}
	if !reflect.DeepEqual(j.Entries, entries) {
		t.Errorf("entries = %+v, want %+v", j.Entries, entries)
	}
	if j.Truncated {
		t.Error("clean journal reported truncated")
	}
	if j.ValidBytes != int64(len(raw)) {
		t.Errorf("ValidBytes = %d, file size %d", j.ValidBytes, len(raw))
	}
	// The Writer path and the in-memory encoder must agree byte for byte.
	if mem := encodeBinaryJournal(t, testHeader(), entries); string(mem) != string(raw) {
		t.Error("Writer output differs from in-memory encoding")
	}
}

// TestBinaryMatchesJSONLSemantics decodes the same header+entries from
// both codecs and requires identical decoded journals (modulo Codec and
// ValidBytes, which are representation facts).
func TestBinaryMatchesJSONLSemantics(t *testing.T) {
	entries := testEntries()
	_, jsonlRaw := writeJournal(t, entries)
	_, binRaw := writeBinaryJournal(t, entries)
	ja, err := DecodeBytes(jsonlRaw)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := DecodeBytes(binRaw)
	if err != nil {
		t.Fatal(err)
	}
	if ja.Header != jb.Header || !reflect.DeepEqual(ja.Entries, jb.Entries) {
		t.Fatalf("codecs disagree:\njsonl %+v\nbinary %+v", ja, jb)
	}
}

// TestBinaryTruncationAtEveryByte is the binary twin of the JSONL
// truncation sweep: cutting the file at any byte must either decode
// with Truncated set (entries a strict prefix, ValidBytes at a frame
// boundary) or be refused — never panic, never fabricate entries.
func TestBinaryTruncationAtEveryByte(t *testing.T) {
	entries := testEntries()
	_, raw := writeBinaryJournal(t, entries)
	headerLen := len(encodeBinaryJournal(t, testHeader(), nil))
	for cut := 0; cut <= len(raw); cut++ {
		j, err := DecodeBytes(raw[:cut])
		if cut < headerLen {
			if err == nil {
				t.Fatalf("cut %d (inside header): accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if j.ValidBytes > int64(cut) {
			t.Fatalf("cut %d: ValidBytes %d", cut, j.ValidBytes)
		}
		// Exact frame boundaries decode clean; everywhere else the
		// partial trailing frame is dropped as truncation.
		if j.Truncated != (j.ValidBytes < int64(cut)) {
			t.Fatalf("cut %d: Truncated=%v ValidBytes=%d", cut, j.Truncated, j.ValidBytes)
		}
		if len(j.Entries) > len(entries) {
			t.Fatalf("cut %d: fabricated entries %+v", cut, j.Entries)
		}
		for i, e := range j.Entries {
			if e != entries[i] {
				t.Fatalf("cut %d: entry %d = %+v, want %+v", cut, i, e, entries[i])
			}
		}
	}
}

// TestBinaryTornFinalFrame damages the CRC of the last frame: that is
// the torn-write footprint and must recover as truncation at the
// previous frame boundary.
func TestBinaryTornFinalFrame(t *testing.T) {
	entries := testEntries()
	_, raw := writeBinaryJournal(t, entries)
	damaged := append([]byte{}, raw...)
	damaged[len(damaged)-1] ^= 0xff
	j, err := DecodeBytes(damaged)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Truncated {
		t.Fatal("torn final frame not reported truncated")
	}
	if len(j.Entries) != len(entries)-1 {
		t.Fatalf("entries = %d, want %d", len(j.Entries), len(entries)-1)
	}
	withoutLast := encodeBinaryJournal(t, testHeader(), entries[:len(entries)-1])
	if j.ValidBytes != int64(len(withoutLast)) {
		t.Fatalf("ValidBytes = %d, want %d", j.ValidBytes, len(withoutLast))
	}
}

// TestBinaryMidFileCorruptionRefused flips a byte in a non-final frame:
// with complete frames following, that cannot be truncation and the
// decode must hard-fail rather than resume over silent damage.
func TestBinaryMidFileCorruptionRefused(t *testing.T) {
	entries := testEntries()
	_, raw := writeBinaryJournal(t, entries)
	headerLen := len(encodeBinaryJournal(t, testHeader(), nil))
	damaged := append([]byte{}, raw...)
	damaged[headerLen+6] ^= 0x40 // inside the first entry frame's payload
	if _, err := DecodeBytes(damaged); err == nil {
		t.Fatal("mid-file corruption decoded cleanly")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not identify corruption", err)
	}
}

// TestBinaryOversizedLengthRefused writes an absurd frame length word.
func TestBinaryOversizedLengthRefused(t *testing.T) {
	raw := encodeBinaryJournal(t, testHeader(), nil)
	raw = append(raw, 0xff, 0xff, 0xff, 0xff)
	if _, err := DecodeBytes(raw); err == nil {
		t.Fatal("oversized length word accepted")
	}
}

// TestBinaryAppendToResumesAndAdoptsCodec truncates a binary journal
// mid-frame, reopens it with AppendTo, and appends more entries: the
// tail must be trimmed and the new appends must stay binary.
func TestBinaryAppendToResumesAndAdoptsCodec(t *testing.T) {
	entries := testEntries()
	path, raw := writeBinaryJournal(t, entries)
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	j, w, err := AppendTo(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Entries) != len(entries)-1 {
		t.Fatalf("resumed with %d entries, want %d", len(j.Entries), len(entries)-1)
	}
	if err := w.Append(entries[len(entries)-1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Codec != Binary || j2.Truncated {
		t.Fatalf("resumed journal codec=%q truncated=%v", j2.Codec, j2.Truncated)
	}
	if !reflect.DeepEqual(j2.Entries, entries) {
		t.Fatalf("entries after resume = %+v, want %+v", j2.Entries, entries)
	}
	got, _ := os.ReadFile(path)
	if string(got) != string(raw) {
		t.Error("trim+append did not reproduce the original bytes")
	}
}

// TestBinaryHeaderOnlyTruncationRefused cuts inside the header frame:
// unlike JSONL's unterminated-header special case, a binary file
// without a complete header frame is unidentifiable and refused.
func TestBinaryHeaderOnlyTruncationRefused(t *testing.T) {
	raw := encodeBinaryJournal(t, testHeader(), nil)
	for _, cut := range []int{len(binaryMagic), len(binaryMagic) + 4, len(raw) - 1} {
		if _, err := DecodeBytes(raw[:cut]); err == nil {
			t.Fatalf("cut %d inside header accepted", cut)
		}
	}
}

func TestParseCodec(t *testing.T) {
	for _, s := range []string{"jsonl", "binary"} {
		c, err := ParseCodec(s)
		if err != nil || string(c) != s {
			t.Fatalf("ParseCodec(%q) = %q, %v", s, c, err)
		}
	}
	if _, err := ParseCodec("cbor"); err == nil {
		t.Fatal("ParseCodec accepted unknown codec")
	}
	if _, err := CreateCodec(filepath.Join(t.TempDir(), "x"), testHeader(), Codec("cbor")); err == nil {
		t.Fatal("CreateCodec accepted unknown codec")
	}
}

// TestBinaryEntryFrameValidation feeds malformed entry frames.
func TestBinaryEntryFrameValidation(t *testing.T) {
	base := encodeBinaryJournal(t, testHeader(), nil)
	badFlags := appendEntryPayload(nil, Entry{Index: 1, ID: "x", Class: "c"})
	badFlags[len(badFlags)-1] = 0x02
	cases := map[string][]byte{
		"empty frame":        appendFrame(append([]byte{}, base...), nil),
		"unknown kind":       appendFrame(append([]byte{}, base...), []byte{'Z', 1, 2}),
		"bad flags":          appendFrame(append([]byte{}, base...), badFlags),
		"out-of-range index": appendFrame(append([]byte{}, base...), appendEntryPayload(nil, Entry{Index: 99, ID: "x", Class: "c"})),
		"second header":      appendFrame(append([]byte{}, base...), append([]byte{frameHeader}, []byte(`{}`)...)),
	}
	for name, data := range cases {
		if _, err := DecodeBytes(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
