package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// logAttrsKey carries []slog.Attr through a context; see WithLogAttrs.
type logAttrsKey struct{}

// WithLogAttrs returns a context that stamps the given attrs onto every
// record logged through a logger built by NewLogger. The campaign
// daemon uses it to thread run-ID and shard identity through the
// engine without passing loggers down every call.
func WithLogAttrs(ctx context.Context, attrs ...slog.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	if prev, ok := ctx.Value(logAttrsKey{}).([]slog.Attr); ok {
		merged := make([]slog.Attr, 0, len(prev)+len(attrs))
		merged = append(merged, prev...)
		merged = append(merged, attrs...)
		attrs = merged
	}
	return context.WithValue(ctx, logAttrsKey{}, attrs)
}

// ctxAttrHandler decorates a slog.Handler with the attrs carried by the
// record's context (WithLogAttrs).
type ctxAttrHandler struct {
	inner slog.Handler
}

func (h ctxAttrHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h ctxAttrHandler) Handle(ctx context.Context, rec slog.Record) error {
	if attrs, ok := ctx.Value(logAttrsKey{}).([]slog.Attr); ok {
		rec = rec.Clone()
		rec.AddAttrs(attrs...)
	}
	return h.inner.Handle(ctx, rec)
}

func (h ctxAttrHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxAttrHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxAttrHandler) WithGroup(name string) slog.Handler {
	return ctxAttrHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the shared structured logger of the CLIs and the
// campaign daemon: format is "text" (slog text handler) or "json"
// (slog JSON handler, one object per line for CI log pipelines).
// Records pick up any context attrs installed via WithLogAttrs.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	switch format {
	case "", "text":
		inner = slog.NewTextHandler(w, opts)
	case "json":
		inner = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(ctxAttrHandler{inner: inner}), nil
}
