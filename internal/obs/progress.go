package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressUpdate is one live snapshot of a long-running campaign,
// streamed to a ProgressFunc while runs complete.
type ProgressUpdate struct {
	// Name labels the campaign or qualification run.
	Name string
	// Completed and Total count finished runs out of the planned list.
	Completed int
	Total     int
	// Failures counts completed runs that ended in an unhandled
	// failure (or killed mutants, for mutation qualification).
	Failures int
	// Elapsed is the wall-clock time since the meter was created.
	Elapsed time.Duration
	// RunsPerSec is the lifetime-mean completion rate: total completed
	// over total elapsed. Stable, but on long campaigns with slow
	// warmup it lags the true current rate badly.
	RunsPerSec float64
	// WindowRunsPerSec is the completion rate over the recent sample
	// window (the last progressWindow steps), which tracks the current
	// throughput. Zero until the window has at least two samples.
	WindowRunsPerSec float64
	// ETA estimates the remaining wall-clock time, preferring the
	// window rate over the lifetime mean (0 when no rate is known).
	ETA time.Duration
	// Final marks the last update of the run.
	Final bool
}

// ProgressFunc receives rate-limited progress updates. It is called
// from whichever goroutine completed a run, but never concurrently
// with itself — the meter serializes calls.
type ProgressFunc func(ProgressUpdate)

// progressWindow is the number of recent completion samples the
// sliding-rate window retains.
const progressWindow = 64

// progressSample records the wall clock at one completion count.
type progressSample struct {
	when      time.Time
	completed int
}

// ProgressMeter tracks completions and streams rate-limited updates to
// a callback. All methods are goroutine-safe; a nil meter is a no-op,
// so campaign code can call Step/Finish unconditionally.
type ProgressMeter struct {
	mu        sync.Mutex
	name      string
	total     int
	interval  time.Duration
	fn        ProgressFunc
	now       func() time.Time // injectable clock for rate tests
	start     time.Time
	lastEmit  time.Time
	completed int
	failures  int
	finished  bool
	// window is a ring of the most recent completion samples; head is
	// the index of the next slot to overwrite, n the filled count.
	window [progressWindow]progressSample
	head   int
	n      int
}

// DefaultProgressInterval is the rate limit applied when a meter is
// created with interval 0.
const DefaultProgressInterval = 250 * time.Millisecond

// NewProgressMeter creates a meter over total runs that emits at most
// one update per interval (plus the final one). A nil fn yields a nil
// meter, keeping uninstrumented campaigns free of bookkeeping. An
// interval < 0 disables rate limiting (every Step emits — used by
// tests); interval 0 selects DefaultProgressInterval.
func NewProgressMeter(name string, total int, interval time.Duration, fn ProgressFunc) *ProgressMeter {
	if fn == nil {
		return nil
	}
	if interval == 0 {
		interval = DefaultProgressInterval
	}
	m := &ProgressMeter{
		name: name, total: total, interval: interval, fn: fn,
		now: time.Now,
	}
	m.start = m.now()
	// Seed the window with the start instant so the first window rate
	// spans "since start of the recent activity", not a single point.
	m.window[0] = progressSample{when: m.start}
	m.head, m.n = 1, 1
	return m
}

// Step records one completed run (failed marks an unhandled failure)
// and emits an update if the rate limit allows.
func (m *ProgressMeter) Step(failed bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	if failed {
		m.failures++
	}
	now := m.now()
	m.window[m.head] = progressSample{when: now, completed: m.completed}
	m.head = (m.head + 1) % progressWindow
	if m.n < progressWindow {
		m.n++
	}
	if m.interval > 0 && !m.lastEmit.IsZero() && now.Sub(m.lastEmit) < m.interval {
		return
	}
	m.emit(now, false)
}

// Finish emits the final update; further Steps are ignored.
func (m *ProgressMeter) Finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.finished {
		return
	}
	m.finished = true
	m.emit(m.now(), true)
}

// windowRate computes the completion rate across the retained sample
// window; caller holds m.mu.
func (m *ProgressMeter) windowRate() float64 {
	if m.n < 2 {
		return 0
	}
	oldest := m.window[(m.head-m.n+progressWindow)%progressWindow]
	newest := m.window[(m.head-1+progressWindow)%progressWindow]
	dt := newest.when.Sub(oldest.when)
	if dt <= 0 || newest.completed <= oldest.completed {
		return 0
	}
	return float64(newest.completed-oldest.completed) / dt.Seconds()
}

// emit builds and delivers one update; the caller holds m.mu, which
// also serializes the callback.
func (m *ProgressMeter) emit(now time.Time, final bool) {
	m.lastEmit = now
	u := ProgressUpdate{
		Name:      m.name,
		Completed: m.completed,
		Total:     m.total,
		Failures:  m.failures,
		Elapsed:   now.Sub(m.start),
		Final:     final,
	}
	if u.Elapsed > 0 && m.completed > 0 {
		u.RunsPerSec = float64(m.completed) / u.Elapsed.Seconds()
	}
	u.WindowRunsPerSec = m.windowRate()
	// The window rate reflects current throughput; the lifetime mean
	// drags warmup along forever. Prefer the window for ETA.
	rate := u.WindowRunsPerSec
	if rate == 0 {
		rate = u.RunsPerSec
	}
	if remaining := m.total - m.completed; remaining > 0 && rate > 0 {
		u.ETA = time.Duration(float64(remaining) / rate * float64(time.Second))
	}
	m.fn(u)
}

// ProgressLine renders updates as a single live status line on w
// (carriage-return overwrite, newline on the final update) — the
// -progress stderr view of the campaign CLIs.
func ProgressLine(w io.Writer) ProgressFunc {
	return func(u ProgressUpdate) {
		pct := 0.0
		if u.Total > 0 {
			pct = 100 * float64(u.Completed) / float64(u.Total)
		}
		fmt.Fprintf(w, "\r%s: %d/%d (%.1f%%) failures=%d %.1f runs/s eta=%s ",
			u.Name, u.Completed, u.Total, pct, u.Failures,
			u.RunsPerSec, u.ETA.Round(time.Second))
		if u.Final {
			fmt.Fprintln(w)
		}
	}
}
