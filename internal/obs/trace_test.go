package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestTraceJSONShape checks the export against the trace-event spec:
// an object with a traceEvents array whose entries carry ph/ts/pid/tid
// and, for complete events, a duration.
func TestTraceJSONShape(t *testing.T) {
	r := NewTraceRecorder()
	sp := r.Begin("campaign", "scenario-1", 3)
	time.Sleep(time.Millisecond)
	sp.Arg("class", "sdc").End()
	r.Instant("campaign", "stop-on-first", 0, map[string]any{"index": 5})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(parsed.TraceEvents))
	}
	x := parsed.TraceEvents[0]
	if x.Ph != "X" || x.Name != "scenario-1" || x.TID != 3 || x.Dur <= 0 {
		t.Errorf("complete event = %+v", x)
	}
	if x.Args["class"] != "sdc" {
		t.Errorf("args = %v", x.Args)
	}
	i := parsed.TraceEvents[1]
	if i.Ph != "i" || i.Name != "stop-on-first" {
		t.Errorf("instant event = %+v", i)
	}
}

// TestTraceEmptyExport: an empty recorder must still emit a
// spec-conformant array, not null.
func TestTraceEmptyExport(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTraceRecorder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Errorf("empty trace export: %s", buf.String())
	}
}

// TestTraceNilSafety: every method on a nil recorder or span is a
// no-op so instrumented code needs no guards.
func TestTraceNilSafety(t *testing.T) {
	var r *TraceRecorder
	sp := r.Begin("c", "n", 0)
	sp.Arg("k", "v").End()
	r.Instant("c", "n", 0, nil)
	if r.Len() != 0 {
		t.Error("nil recorder has events")
	}
	if err := WriteTraceFile(r, "/nonexistent/dir/t.json"); err != nil {
		t.Errorf("nil recorder dump errored: %v", err)
	}
}

// TestTraceConcurrentSpans: spans from many goroutines must not race
// (the campaign workers share one recorder).
func TestTraceConcurrentSpans(t *testing.T) {
	r := NewTraceRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Begin("t", "s", w).End()
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("events = %d, want 800", r.Len())
	}
}
