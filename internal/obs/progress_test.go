package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestProgressUnlimited: with rate limiting disabled every Step emits,
// and the final update carries the totals.
func TestProgressUnlimited(t *testing.T) {
	var got []ProgressUpdate
	m := NewProgressMeter("camp", 4, -1, func(u ProgressUpdate) { got = append(got, u) })
	m.Step(false)
	m.Step(true)
	m.Step(false)
	m.Step(false)
	m.Finish()
	if len(got) != 5 {
		t.Fatalf("%d updates, want 5", len(got))
	}
	last := got[len(got)-1]
	if !last.Final || last.Completed != 4 || last.Total != 4 || last.Failures != 1 {
		t.Errorf("final update = %+v", last)
	}
	if got[0].Final {
		t.Error("first update marked final")
	}
}

// TestProgressRateLimited: a long interval suppresses intermediate
// updates (only the first Step and the final Finish emit).
func TestProgressRateLimited(t *testing.T) {
	count := 0
	m := NewProgressMeter("camp", 100, time.Hour, func(ProgressUpdate) { count++ })
	for i := 0; i < 100; i++ {
		m.Step(false)
	}
	m.Finish()
	if count != 2 {
		t.Errorf("%d updates, want 2 (first + final)", count)
	}
}

// TestProgressNilMeter: nil callback yields a nil, no-op meter.
func TestProgressNilMeter(t *testing.T) {
	m := NewProgressMeter("x", 10, 0, nil)
	if m != nil {
		t.Fatal("nil fn should yield nil meter")
	}
	m.Step(false) // must not panic
	m.Finish()
}

// TestProgressConcurrent: Steps from many goroutines must serialize
// cleanly (run with -race).
func TestProgressConcurrent(t *testing.T) {
	var mu sync.Mutex
	var last ProgressUpdate
	m := NewProgressMeter("camp", 800, -1, func(u ProgressUpdate) {
		mu.Lock()
		last = u
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Step(i%10 == 0)
			}
		}()
	}
	wg.Wait()
	m.Finish()
	if !last.Final || last.Completed != 800 || last.Failures != 80 {
		t.Errorf("final update = %+v", last)
	}
}

// TestProgressLine renders a live stderr-style line.
func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	fn := ProgressLine(&buf)
	fn(ProgressUpdate{Name: "e8", Completed: 50, Total: 200, Failures: 2,
		RunsPerSec: 10, ETA: 15 * time.Second})
	fn(ProgressUpdate{Name: "e8", Completed: 200, Total: 200, Final: true})
	out := buf.String()
	if !strings.Contains(out, "e8: 50/200 (25.0%)") || !strings.Contains(out, "failures=2") {
		t.Errorf("progress line = %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("final update did not terminate the line")
	}
}
