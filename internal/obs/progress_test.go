package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestProgressUnlimited: with rate limiting disabled every Step emits,
// and the final update carries the totals.
func TestProgressUnlimited(t *testing.T) {
	var got []ProgressUpdate
	m := NewProgressMeter("camp", 4, -1, func(u ProgressUpdate) { got = append(got, u) })
	m.Step(false)
	m.Step(true)
	m.Step(false)
	m.Step(false)
	m.Finish()
	if len(got) != 5 {
		t.Fatalf("%d updates, want 5", len(got))
	}
	last := got[len(got)-1]
	if !last.Final || last.Completed != 4 || last.Total != 4 || last.Failures != 1 {
		t.Errorf("final update = %+v", last)
	}
	if got[0].Final {
		t.Error("first update marked final")
	}
}

// TestProgressRateLimited: a long interval suppresses intermediate
// updates (only the first Step and the final Finish emit).
func TestProgressRateLimited(t *testing.T) {
	count := 0
	m := NewProgressMeter("camp", 100, time.Hour, func(ProgressUpdate) { count++ })
	for i := 0; i < 100; i++ {
		m.Step(false)
	}
	m.Finish()
	if count != 2 {
		t.Errorf("%d updates, want 2 (first + final)", count)
	}
}

// TestProgressNilMeter: nil callback yields a nil, no-op meter.
func TestProgressNilMeter(t *testing.T) {
	m := NewProgressMeter("x", 10, 0, nil)
	if m != nil {
		t.Fatal("nil fn should yield nil meter")
	}
	m.Step(false) // must not panic
	m.Finish()
}

// TestProgressConcurrent: Steps from many goroutines must serialize
// cleanly (run with -race).
func TestProgressConcurrent(t *testing.T) {
	var mu sync.Mutex
	var last ProgressUpdate
	m := NewProgressMeter("camp", 800, -1, func(u ProgressUpdate) {
		mu.Lock()
		last = u
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Step(i%10 == 0)
			}
		}()
	}
	wg.Wait()
	m.Finish()
	if !last.Final || last.Completed != 800 || last.Failures != 80 {
		t.Errorf("final update = %+v", last)
	}
}

// TestProgressWindowRate pins the ISSUE-7 rate fix: a campaign with a
// slow warmup used to report a lifetime-mean RunsPerSec that dragged
// the ETA far too high forever. The sliding window must report the
// current (fast) rate while the lifetime mean still remembers the
// warmup, and the ETA must follow the window.
func TestProgressWindowRate(t *testing.T) {
	var got []ProgressUpdate
	m := NewProgressMeter("camp", 1000, -1, func(u ProgressUpdate) { got = append(got, u) })

	// Deterministic clock: warmup does 1 run/s for 100s, steady state
	// then does 100 runs/s.
	now := m.start
	m.now = func() time.Time { return now }
	m.window[0] = progressSample{when: now} // re-seed with the fake clock

	for i := 0; i < 100; i++ { // warmup: 1 run/s
		now = now.Add(time.Second)
		m.Step(false)
	}
	for i := 0; i < 200; i++ { // steady state: 100 runs/s
		now = now.Add(10 * time.Millisecond)
		m.Step(false)
	}

	last := got[len(got)-1]
	// Lifetime mean: 300 runs in 102s ≈ 2.94 runs/s — the misleading
	// number the meter used to report exclusively.
	if last.RunsPerSec < 2.5 || last.RunsPerSec > 3.5 {
		t.Errorf("lifetime RunsPerSec = %v, want ~2.94", last.RunsPerSec)
	}
	// Window rate: the last 64 samples are all steady-state, 100 runs/s.
	if last.WindowRunsPerSec < 95 || last.WindowRunsPerSec > 105 {
		t.Errorf("WindowRunsPerSec = %v, want ~100", last.WindowRunsPerSec)
	}
	// ETA must use the window rate: 700 remaining at 100/s = 7s, not
	// the ~240s the lifetime mean would predict.
	if last.ETA < 6*time.Second || last.ETA > 8*time.Second {
		t.Errorf("ETA = %v, want ~7s (window-rate based)", last.ETA)
	}
}

// TestProgressWindowRateEarly: before two samples exist the window
// rate is 0 and ETA falls back to the lifetime mean.
func TestProgressWindowRateEarly(t *testing.T) {
	var got []ProgressUpdate
	m := NewProgressMeter("camp", 10, -1, func(u ProgressUpdate) { got = append(got, u) })
	now := m.start
	m.now = func() time.Time { return now }
	m.window[0] = progressSample{when: now}

	now = now.Add(time.Second)
	m.Step(false)
	u := got[0]
	if u.RunsPerSec != 1 {
		t.Errorf("lifetime rate = %v, want 1", u.RunsPerSec)
	}
	// Window has the seed + one step: rate is computable and equals 1.
	if u.WindowRunsPerSec != 1 {
		t.Errorf("window rate = %v, want 1", u.WindowRunsPerSec)
	}
	if u.ETA != 9*time.Second {
		t.Errorf("ETA = %v, want 9s", u.ETA)
	}
}

// TestProgressLine renders a live stderr-style line.
func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	fn := ProgressLine(&buf)
	fn(ProgressUpdate{Name: "e8", Completed: 50, Total: 200, Failures: 2,
		RunsPerSec: 10, ETA: 15 * time.Second})
	fn(ProgressUpdate{Name: "e8", Completed: 200, Total: 200, Final: true})
	out := buf.String()
	if !strings.Contains(out, "e8: 50/200 (25.0%)") || !strings.Contains(out, "failures=2") {
		t.Errorf("progress line = %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("final update did not terminate the line")
	}
}
