package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TraceRecorder collects spans and instant events and exports them in
// the Chrome trace-event JSON format, loadable in chrome://tracing and
// Perfetto. It complements the VCD signal tracer (internal/sim.Tracer)
// with a wall-clock timeline of the *host*: kernel run phases,
// campaign scenarios per worker, experiment phases.
//
// A nil *TraceRecorder is valid everywhere: Begin returns a nil *Span
// whose methods are no-ops, so instrumented code needs no nil checks.
type TraceRecorder struct {
	mu     sync.Mutex
	epoch  time.Time
	events []traceEvent
}

// traceEvent is one entry of the traceEvents array; field names follow
// the Trace Event Format spec (ph "X" = complete, "i" = instant).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceRecorder creates a recorder whose timestamps are relative to
// now.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{epoch: time.Now()}
}

// micros converts a wall-clock instant to spec microseconds.
func (r *TraceRecorder) micros(t time.Time) float64 {
	return float64(t.Sub(r.epoch)) / float64(time.Microsecond)
}

// Span is one in-flight duration event; call End exactly once.
type Span struct {
	r     *TraceRecorder
	cat   string
	name  string
	tid   int
	start time.Time
	args  map[string]any
}

// Begin opens a span in category cat on virtual thread tid. Distinct
// tids render as separate timeline rows, so concurrent work (campaign
// workers, per-scenario kernels) should use distinct tids.
func (r *TraceRecorder) Begin(cat, name string, tid int) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, cat: cat, name: name, tid: tid, start: time.Now()}
}

// Arg attaches one key/value argument shown in the viewer's detail
// pane. It returns the span for chaining and is a no-op on nil spans.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
	return s
}

// End closes the span, recording a complete ("X") event.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	dur := float64(end.Sub(s.start)) / float64(time.Microsecond)
	r.events = append(r.events, traceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: r.micros(s.start), Dur: &dur,
		PID: 1, TID: s.tid, Args: s.args,
	})
}

// Instant records a zero-duration marker event on tid.
func (r *TraceRecorder) Instant(cat, name string, tid int, args map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, traceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS: r.micros(time.Now()), PID: 1, TID: tid, Args: args,
	})
}

// Len reports the number of recorded events.
func (r *TraceRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSON exports the trace as the JSON-object form of the format:
// {"traceEvents": [...], "displayTimeUnit": "ms"}.
func (r *TraceRecorder) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	events := make([]traceEvent, len(r.events))
	copy(events, r.events)
	r.mu.Unlock()
	type dump struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if events == nil {
		events = []traceEvent{} // spec wants an array, not null
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dump{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteTraceFile dumps the trace to path. A nil recorder is a no-op,
// so CLIs can call it unconditionally.
func WriteTraceFile(r *TraceRecorder, path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close %s: %w", path, err)
	}
	return nil
}
