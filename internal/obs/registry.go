// Package obs is the repository's observability layer: a race-safe
// metrics registry (counters, gauges and fixed-exponential-bucket
// histograms, optionally labeled), a span recorder that exports the
// Chrome trace-event JSON format (viewable in chrome://tracing or
// Perfetto), and a rate-limited progress meter for long campaigns.
//
// The paper's central scaling challenge (Sec. 4) — making error-effect
// simulation campaigns tractable — starts with knowing where simulation
// time goes. This package provides the measurement substrate: the
// simulation kernel, the campaign engine, mutation qualification and
// the experiment harness all report into it, and every consumer is a
// nil-check away so an uninstrumented run pays nothing.
//
// Everything here is standard library only and safe for concurrent use
// (campaign worker pools hammer the same registry).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension attached to a metric, e.g. the
// outcome class on a campaign counter.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// fullName renders name plus sorted labels into the canonical metric
// key: "campaign.outcomes{campaign=e8,class=sdc}".
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 (worker utilization, queue levels).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds the metric families of one process (or one campaign).
// Metric constructors are get-or-create: asking twice for the same
// name+labels returns the same instance, so call sites need no
// coordination.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meta       map[string]metricMeta // full name -> parsed name/labels
}

type metricMeta struct {
	name   string
	labels []Label
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		meta:       map[string]metricMeta{},
	}
}

func (r *Registry) remember(full, name string, labels []Label) {
	if _, ok := r.meta[full]; ok {
		return
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	r.meta[full] = metricMeta{name: name, labels: ls}
}

// Counter returns the counter with the given name and labels, creating
// it on first use. Safe to call from any goroutine; nil receivers
// return a usable throwaway counter so call sites can stay unguarded.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	full := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[full]
	if !ok {
		c = &Counter{}
		r.counters[full] = c
		r.remember(full, name, labels)
	}
	return c
}

// Gauge returns the gauge with the given name and labels, creating it
// on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	full := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[full]
	if !ok {
		g = &Gauge{}
		r.gauges[full] = g
		r.remember(full, name, labels)
	}
	return g
}

// Histogram returns the histogram with the given name and labels,
// creating it on first use. All histograms share the fixed
// power-of-two exponential bucket layout (see Histogram).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	full := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[full]
	if !ok {
		h = &Histogram{}
		r.histograms[full] = h
		r.remember(full, name, labels)
	}
	return h
}

// Metric is one snapshot entry. Counters and gauges fill Value;
// histograms fill Count/Sum/Min/Max/Mean and Buckets.
type Metric struct {
	Kind    string  // "counter", "gauge" or "histogram"
	Name    string  // base name without labels
	Full    string  // canonical name{labels} key
	Labels  []Label // sorted by key
	Value   float64 // counter or gauge reading
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Mean    float64
	Buckets []Bucket // non-empty histogram buckets, ascending
}

// Label returns the value of the label with the given key, or "".
func (m Metric) Label(key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Quantile estimates the q-quantile of a histogram Metric from its
// snapshot buckets, with the same interpolate-and-clamp scheme as
// Histogram.Quantile. Non-histogram metrics and empty histograms
// return 0.
func (m Metric) Quantile(q float64) uint64 {
	if m.Count == 0 || len(m.Buckets) == 0 {
		return 0
	}
	if q <= 0 {
		return m.Min
	}
	if q >= 1 {
		return m.Max
	}
	rank := uint64(q * float64(m.Count))
	if float64(rank) < q*float64(m.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > m.Count {
		rank = m.Count
	}
	var cum uint64
	for _, b := range m.Buckets {
		if cum+b.Count >= rank {
			// The power-of-two layout fixes a bucket's true range from its
			// upper bound alone: Le = 2^i - 1 covers [2^(i-1), 2^i - 1].
			lo, le := uint64(0), b.Le
			switch {
			case le == 0:
				// zero-only bucket
			case le == ^uint64(0):
				lo, le = 1<<63, 1<<63
			default:
				lo = (le + 1) / 2
			}
			frac := (float64(rank-cum) - 0.5) / float64(b.Count)
			v := float64(lo) + frac*float64(le-lo)
			est := uint64(v)
			if est < m.Min {
				est = m.Min
			}
			if est > m.Max {
				est = m.Max
			}
			return est
		}
		cum += b.Count
	}
	return m.Max
}

// Snapshot returns a point-in-time copy of every metric, sorted by
// canonical name. Concurrent writers may land between individual
// reads; each single metric is read atomically.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for full, c := range r.counters {
		m := r.meta[full]
		out = append(out, Metric{Kind: "counter", Name: m.name, Full: full,
			Labels: m.labels, Value: float64(c.Value())})
	}
	for full, g := range r.gauges {
		m := r.meta[full]
		out = append(out, Metric{Kind: "gauge", Name: m.name, Full: full,
			Labels: m.labels, Value: g.Value()})
	}
	for full, h := range r.histograms {
		m := r.meta[full]
		snap := h.snapshot()
		snap.Kind, snap.Name, snap.Full, snap.Labels = "histogram", m.name, full, m.labels
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Full < out[j].Full })
	return out
}

// jsonHistogram is the wire form of one histogram.
type jsonHistogram struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets"`
}

// WriteJSON dumps the registry as one JSON object with "counters",
// "gauges" and "histograms" maps keyed by canonical metric name. Keys
// are emitted in sorted order (encoding/json sorts map keys), so two
// dumps of identical metric values are byte-identical.
func (r *Registry) WriteJSON(w io.Writer) error {
	type dump struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}
	d := dump{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]jsonHistogram{},
	}
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "counter":
			d.Counters[m.Full] = uint64(m.Value)
		case "gauge":
			d.Gauges[m.Full] = m.Value
		case "histogram":
			d.Histograms[m.Full] = jsonHistogram{Count: m.Count, Sum: m.Sum,
				Min: m.Min, Max: m.Max, Mean: m.Mean, Buckets: m.Buckets}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteMetricsFile dumps the registry to path as JSON. A nil registry
// is a no-op, so CLIs can call it unconditionally.
func WriteMetricsFile(r *Registry, path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close %s: %w", path, err)
	}
	return nil
}
