package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// promDoc is a parsed exposition document: TYPE by family name, value
// by full sample key (name{labels}).
type promDoc struct {
	types   map[string]string
	samples map[string]float64
	order   []string // sample keys in document order
}

// parseProm is a strict parser for the subset of the Prometheus text
// format the encoder emits. It fails the test on any malformed line,
// on duplicate samples, and on samples appearing before their family's
// TYPE line — the round-trip validity check of the acceptance criteria.
func parseProm(t *testing.T, text string) promDoc {
	t.Helper()
	doc := promDoc{types: map[string]string{}, samples: map[string]float64{}}
	curFamily := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, kind := parts[2], parts[3]
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, kind)
			}
			if _, dup := doc.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for family %q", ln+1, name)
			}
			doc.types[name] = kind
			curFamily = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label block %q", ln+1, key)
			}
			name = key[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && doc.types[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := doc.types[base]; !ok {
			t.Fatalf("line %d: sample %q before any TYPE line for %q", ln+1, key, base)
		}
		if base != curFamily {
			t.Fatalf("line %d: sample %q is not contiguous with its family %q (current family %q)",
				ln+1, key, base, curFamily)
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' && i > 0 || c == '_' || c == ':') {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		if _, dup := doc.samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		doc.samples[key] = val
		doc.order = append(doc.order, key)
	}
	return doc
}

func TestPromEncodeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.runs", L("campaign", "e8")).Add(42)
	r.Counter("campaign.runs", L("campaign", "tiny")).Add(3)
	r.Gauge("campaignd.queue_depth").Set(7)
	r.Gauge("campaign.worker_utilization", L("campaign", "e8")).Set(0.625)
	h := r.Histogram("campaign.run_duration_ns", L("campaign", "e8"))
	h.Observe(0)
	h.Observe(1)
	h.Observe(900)
	h.Observe(1 << 20)

	var buf bytes.Buffer
	if err := WriteProm(&buf, r); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, buf.String())

	if doc.types["campaign_runs"] != "counter" {
		t.Errorf("campaign_runs type = %q", doc.types["campaign_runs"])
	}
	if doc.types["campaignd_queue_depth"] != "gauge" {
		t.Errorf("queue_depth type = %q", doc.types["campaignd_queue_depth"])
	}
	if doc.types["campaign_run_duration_ns"] != "histogram" {
		t.Errorf("run_duration type = %q", doc.types["campaign_run_duration_ns"])
	}
	if got := doc.samples[`campaign_runs{campaign="e8"}`]; got != 42 {
		t.Errorf(`campaign_runs{e8} = %v, want 42`, got)
	}
	if got := doc.samples[`campaign_runs{campaign="tiny"}`]; got != 3 {
		t.Errorf(`campaign_runs{tiny} = %v, want 3`, got)
	}
	if got := doc.samples[`campaign_worker_utilization{campaign="e8"}`]; got != 0.625 {
		t.Errorf("utilization = %v", got)
	}

	// Histogram conventions: cumulative buckets, +Inf == _count, _sum.
	if got := doc.samples[`campaign_run_duration_ns_count{campaign="e8"}`]; got != 4 {
		t.Errorf("_count = %v, want 4", got)
	}
	if got := doc.samples[`campaign_run_duration_ns_sum{campaign="e8"}`]; got != float64(0+1+900+1<<20) {
		t.Errorf("_sum = %v", got)
	}
	if got := doc.samples[`campaign_run_duration_ns_bucket{campaign="e8",le="+Inf"}`]; got != 4 {
		t.Errorf("+Inf bucket = %v, want 4", got)
	}
	// le="0" holds the zero observation; le="1023" has accumulated 0, 1
	// and 900.
	if got := doc.samples[`campaign_run_duration_ns_bucket{campaign="e8",le="0"}`]; got != 1 {
		t.Errorf(`bucket le=0 = %v, want 1`, got)
	}
	if got := doc.samples[`campaign_run_duration_ns_bucket{campaign="e8",le="1023"}`]; got != 3 {
		t.Errorf(`bucket le=1023 = %v, want 3`, got)
	}
	// Cumulative counts never decrease across the bucket series.
	prev := -1.0
	for _, key := range doc.order {
		if strings.HasPrefix(key, "campaign_run_duration_ns_bucket{") {
			if v := doc.samples[key]; v < prev {
				t.Fatalf("bucket series not cumulative at %s: %v < %v", key, v, prev)
			} else {
				prev = v
			}
		}
	}
}

// TestPromEncodeMergesRegistries: the daemon serves its aggregate
// registry plus every live per-run registry in one document; families
// with the same name must merge under a single TYPE line.
func TestPromEncodeMergesRegistries(t *testing.T) {
	agg, run1, run2 := NewRegistry(), NewRegistry(), NewRegistry()
	agg.Gauge("campaignd.queue_depth").Set(1)
	run1.Counter("campaign.runs", L("campaign", "a")).Add(5)
	run2.Counter("campaign.runs", L("campaign", "b")).Add(9)

	var buf bytes.Buffer
	if err := WriteProm(&buf, agg, nil, run1, run2); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, buf.String()) // contiguity enforced by the parser
	if doc.samples[`campaign_runs{campaign="a"}`] != 5 || doc.samples[`campaign_runs{campaign="b"}`] != 9 {
		t.Errorf("merged samples = %v", doc.samples)
	}
	if strings.Count(buf.String(), "# TYPE campaign_runs ") != 1 {
		t.Errorf("family emitted more than one TYPE line:\n%s", buf.String())
	}
}

func TestPromEncodeDeterministic(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter("c", L("i", fmt.Sprintf("%02d", i))).Add(uint64(i))
	}
	r.Histogram("h").Observe(5)
	var a, b bytes.Buffer
	enc := NewPromEncoder()
	if err := enc.Encode(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&b, r); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two encodes of the same registry differ")
	}
}

func TestPromSanitizeAndEscape(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.weird-name", L("path", `C:\tmp "x"`+"\n")).Inc()
	var buf bytes.Buffer
	if err := WriteProm(&buf, r); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, buf.String())
	want := `campaign_weird_name{path="C:\\tmp \"x\"\n"}`
	if _, ok := doc.samples[want]; !ok {
		t.Errorf("escaped sample %q missing; got %v", want, doc.samples)
	}

	cases := map[string]string{
		"a.b-c":   "a_b_c",
		"ok_name": "ok_name",
		"9lives":  "_9lives",
		"x:y":     "x:y",
	}
	for in, want := range cases {
		if got := promSanitize(in); got != want {
			t.Errorf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromEncodeZeroAlloc pins the acceptance criterion directly:
// after the first encode warms the series cache, the hot path must not
// allocate.
func TestPromEncodeZeroAlloc(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter("campaign.outcomes", L("class", fmt.Sprintf("c%d", i))).Add(uint64(i))
	}
	r.Gauge("campaignd.queue_depth").Set(3)
	h := r.Histogram("campaignd.queue_wait_ns")
	for i := uint64(1); i < 1<<20; i <<= 1 {
		h.Observe(i)
	}
	enc := NewPromEncoder()
	var sink bytes.Buffer
	if err := enc.Encode(&sink, r); err != nil { // warm caches
		t.Fatal(err)
	}
	sink.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		sink.Reset()
		if err := enc.Encode(&sink, r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Encode allocates %v times per call, want 0", allocs)
	}
}
