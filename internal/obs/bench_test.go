package obs

import (
	"fmt"
	"io"
	"testing"
)

// benchRegistry builds a registry shaped like a busy daemon: labeled
// counters, gauges, and a pair of histograms with spread-out buckets.
func benchRegistry() *Registry {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter("campaign.outcomes", L("campaign", "e8"), L("class", fmt.Sprintf("c%02d", i))).Add(uint64(i * 7))
	}
	r.Counter("campaignd.events_dropped").Add(3)
	r.Gauge("campaignd.queue_depth").Set(5)
	r.Gauge("campaign.worker_utilization", L("campaign", "e8")).Set(0.83)
	for _, name := range []string{"campaignd.queue_wait_ns", "campaign.run_duration_ns"} {
		h := r.Histogram(name, L("campaign", "e8"))
		for v := uint64(1); v != 0 && v < 1<<40; v <<= 2 {
			h.Observe(v)
		}
	}
	return r
}

// BenchmarkObsExposition pins the /metrics hot path: steady-state
// encoding of a warm PromEncoder must report 0 allocs/op.
func BenchmarkObsExposition(b *testing.B) {
	r := benchRegistry()
	enc := NewPromEncoder()
	if err := enc.Encode(io.Discard, r); err != nil { // warm series cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlightRecorder pins the per-event recording overhead on the
// executor's hot path (static strings: 0 allocs/op).
func BenchmarkFlightRecorder(b *testing.B) {
	f := NewFlightRecorder(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Record("run.progress", "r000001", "completed")
	}
}

// BenchmarkFlightRecorderSnapshot measures the cost of the /debug/flight
// read path against a full ring.
func BenchmarkFlightRecorderSnapshot(b *testing.B) {
	f := NewFlightRecorder(256)
	for i := 0; i < 512; i++ {
		f.Record("tick", "r", "d")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.Snapshot()) != 256 {
			b.Fatal("bad snapshot")
		}
	}
}
