package obs

import (
	"io"
	"slices"
	"strconv"
	"strings"
	"sync"
)

// PromEncoder renders registries in the Prometheus text exposition
// format (version 0.0.4) — the live scrape surface of the campaign
// daemon. Counters and gauges emit one sample per label set;
// histograms emit the conventional cumulative series: one
// <name>_bucket{le="..."} sample per power-of-two bucket (every
// bucket, so the family shape is deterministic and goldenfile-able),
// an le="+Inf" bucket, plus <name>_sum and <name>_count.
//
// The encoder is built for a daemon's /metrics hot path: rendered
// metric names and label blocks are cached per series, sample values
// are formatted with strconv.Append* into one reused buffer, and the
// row scratch is reused across calls — once every series has been
// seen, Encode performs zero allocations (BenchmarkObsExposition pins
// this). An encoder is safe for concurrent use; calls serialize.
type PromEncoder struct {
	mu    sync.Mutex
	buf   []byte
	rows  []promRow
	cache map[string]*promSeries
}

// promSeries caches the per-series rendering work: the sanitized
// family name and the label block body (`campaign="e8"`, no braces).
type promSeries struct {
	name   string
	labels []byte
}

// promRow is one series scheduled for emission in the current Encode.
type promRow struct {
	kind byte // 'c', 'g', 'h' — also the family sort tiebreak
	s    *promSeries
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// NewPromEncoder creates an empty encoder.
func NewPromEncoder() *PromEncoder {
	return &PromEncoder{cache: map[string]*promSeries{}}
}

// promLe holds the pre-rendered inclusive upper bound of every
// histogram bucket, so the hot path never formats them.
var promLe = func() [histBuckets]string {
	var out [histBuckets]string
	for i := range out {
		out[i] = strconv.FormatUint(bucketLe(i), 10)
	}
	return out
}()

// promSanitize maps a metric or label name into the Prometheus
// identifier alphabet [a-zA-Z0-9_:], rewriting everything else
// (dots, dashes) to underscores.
func promSanitize(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(c >= '0' && c <= '9' && i > 0) {
			continue
		}
		ok = false
		break
	}
	if ok {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape appends a label value with `\`, `"` and newlines escaped
// per the exposition format.
func promEscape(dst []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// series returns (building and caching on first sight) the rendered
// form of the metric with canonical key full.
func (e *PromEncoder) series(full string, m metricMeta) *promSeries {
	if s, ok := e.cache[full]; ok {
		return s
	}
	s := &promSeries{name: promSanitize(m.name)}
	for i, l := range m.labels {
		if i > 0 {
			s.labels = append(s.labels, ',')
		}
		s.labels = append(s.labels, promSanitize(l.Key)...)
		s.labels = append(s.labels, '=', '"')
		s.labels = promEscape(s.labels, l.Value)
		s.labels = append(s.labels, '"')
	}
	e.cache[full] = s
	return s
}

// collect drains one registry's series into the row scratch.
func (e *PromEncoder) collect(r *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for full, c := range r.counters {
		e.rows = append(e.rows, promRow{kind: 'c', s: e.series(full, r.meta[full]), c: c})
	}
	for full, g := range r.gauges {
		e.rows = append(e.rows, promRow{kind: 'g', s: e.series(full, r.meta[full]), g: g})
	}
	for full, h := range r.histograms {
		e.rows = append(e.rows, promRow{kind: 'h', s: e.series(full, r.meta[full]), h: h})
	}
}

// promRowLess orders rows so each family (name+kind) is contiguous —
// the format requires a family's samples to follow its TYPE line —
// with label sets in a stable order inside the family.
func promRowLess(a, b promRow) int {
	if a.s.name != b.s.name {
		return strings.Compare(a.s.name, b.s.name)
	}
	if a.kind != b.kind {
		return int(a.kind) - int(b.kind)
	}
	return slices.Compare(a.s.labels, b.s.labels)
}

// sample opens one sample line: name, optional label block (with an
// optional extra le label for histogram buckets), trailing space.
func promOpen(buf []byte, name string, suffix string, labels []byte, le string) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if len(labels) > 0 || le != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if le != "" {
			if len(labels) > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `le="`...)
			buf = append(buf, le...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	return append(buf, ' ')
}

// Encode writes every metric of the given registries (nils skipped)
// as one exposition document. Families with the same name merge
// across registries; the daemon encodes its aggregate registry and
// the live per-run registries in one call.
func (e *PromEncoder) Encode(w io.Writer, regs ...*Registry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rows = e.rows[:0]
	for _, r := range regs {
		if r != nil {
			e.collect(r)
		}
	}
	slices.SortFunc(e.rows, promRowLess)

	buf := e.buf[:0]
	prevName, prevKind := "", byte(0)
	for _, row := range e.rows {
		if row.s.name != prevName || row.kind != prevKind {
			prevName, prevKind = row.s.name, row.kind
			buf = append(buf, `# TYPE `...)
			buf = append(buf, row.s.name...)
			switch row.kind {
			case 'c':
				buf = append(buf, " counter\n"...)
			case 'g':
				buf = append(buf, " gauge\n"...)
			case 'h':
				buf = append(buf, " histogram\n"...)
			}
		}
		switch row.kind {
		case 'c':
			buf = promOpen(buf, row.s.name, "", row.s.labels, "")
			buf = strconv.AppendUint(buf, row.c.Value(), 10)
			buf = append(buf, '\n')
		case 'g':
			buf = promOpen(buf, row.s.name, "", row.s.labels, "")
			buf = strconv.AppendFloat(buf, row.g.Value(), 'g', -1, 64)
			buf = append(buf, '\n')
		case 'h':
			// Cumulative buckets. The +Inf bucket and _count reuse the
			// same cumulative total so the document is self-consistent
			// even when observations land mid-encode.
			var cum uint64
			for i := 0; i < histBuckets; i++ {
				cum += row.h.counts[i].Load()
				buf = promOpen(buf, row.s.name, "_bucket", row.s.labels, promLe[i])
				buf = strconv.AppendUint(buf, cum, 10)
				buf = append(buf, '\n')
			}
			buf = promOpen(buf, row.s.name, "_bucket", row.s.labels, "+Inf")
			buf = strconv.AppendUint(buf, cum, 10)
			buf = append(buf, '\n')
			buf = promOpen(buf, row.s.name, "_sum", row.s.labels, "")
			buf = strconv.AppendUint(buf, row.h.Sum(), 10)
			buf = append(buf, '\n')
			buf = promOpen(buf, row.s.name, "_count", row.s.labels, "")
			buf = strconv.AppendUint(buf, cum, 10)
			buf = append(buf, '\n')
		}
	}
	e.buf = buf
	_, err := w.Write(buf)
	return err
}

// WriteProm renders the registries in the Prometheus text format with
// a throwaway encoder — the convenience path for CLIs and tests; a
// serving daemon holds a PromEncoder to stay allocation-free.
func WriteProm(w io.Writer, regs ...*Registry) error {
	return NewPromEncoder().Encode(w, regs...)
}
