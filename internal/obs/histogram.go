package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed exponential bucket count: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i),
// with bucket 0 reserved for v == 0. Powers of two cover the full
// uint64 range — nanosecond durations and queue depths land in the
// same layout without per-histogram configuration.
const histBuckets = 65

// Histogram counts uint64 observations into fixed power-of-two
// exponential buckets, tracking count, sum, min and max exactly.
// All fields are atomics, so concurrent Observe calls from campaign
// workers need no locking; a relative error of at most 2x per bucket
// is the usual exponential-histogram trade-off.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64 // stored as ^v so zero-value means "unset"
	max    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	// min is stored bit-inverted so the zero value means "unset"
	// (effective min = ^0 = MaxUint64); lowering the effective min
	// raises the stored value, making both races simple CAS-max loops.
	for inv := ^v; ; {
		old := h.min.Load()
		if inv <= old || h.min.CompareAndSwap(old, inv) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Min returns the smallest observation (0 before any Observe).
func (h *Histogram) Min() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return ^h.min.Load()
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean (0 before any Observe).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Bucket is one non-empty histogram bucket: Count observations were
// <= Le and greater than the previous bucket's Le.
type Bucket struct {
	Le    uint64 `json:"le"` // inclusive upper bound
	Count uint64 `json:"count"`
}

// bucketLe maps bucket index i to its inclusive upper bound: bucket 0
// holds only zero; bucket i holds [2^(i-1), 2^i - 1].
func bucketLe(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			out = append(out, Bucket{Le: bucketLe(i), Count: n})
		}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) from the power-of-two
// buckets: it walks the cumulative counts to the bucket holding the
// q-th observation and interpolates linearly inside it, clamping the
// result to the exactly-tracked [Min, Max] range so small samples never
// report a value outside what was observed. Returns 0 before any
// Observe. Like every read, it races benignly with concurrent writers.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	// Rank of the target observation, 1-based: ceil(q*n) clamped to [1,n].
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			// Interpolate inside [lo, le]: bucket i covers
			// [2^(i-1), 2^i - 1] (bucket 0 holds only zero).
			le := bucketLe(i)
			var lo uint64
			if i > 0 {
				lo = bucketLe(i-1) + 1
			}
			if le == ^uint64(0) {
				// The open top bucket has no usable width; fall back to
				// its lower bound and let the Max clamp refine it.
				le = lo
			}
			frac := (float64(rank-cum) - 0.5) / float64(c)
			v := float64(lo) + frac*float64(le-lo)
			est := uint64(v)
			if min := h.Min(); est < min {
				est = min
			}
			if max := h.Max(); est > max {
				est = max
			}
			return est
		}
		cum += c
	}
	return h.Max()
}

// snapshot fills the histogram portion of a Metric.
func (h *Histogram) snapshot() Metric {
	return Metric{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Min:     h.Min(),
		Max:     h.Max(),
		Mean:    h.Mean(),
		Buckets: h.Buckets(),
	}
}
