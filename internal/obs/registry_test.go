package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("runs") != c {
		t.Error("Counter not get-or-create")
	}
	g := r.Gauge("util")
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("outcomes", L("class", "sdc"), L("campaign", "e8"))
	b := r.Counter("outcomes", L("campaign", "e8"), L("class", "sdc"))
	if a != b {
		t.Fatal("label order changed metric identity")
	}
	a.Inc()
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	if snap[0].Full != "outcomes{campaign=e8,class=sdc}" {
		t.Errorf("canonical name = %q", snap[0].Full)
	}
	if snap[0].Label("class") != "sdc" || snap[0].Label("missing") != "" {
		t.Errorf("label lookup failed: %+v", snap[0].Labels)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+1000+1<<40 {
		t.Errorf("sum = %d", h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1<<40 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	// Expected buckets: le=0:{0}, le=1:{1}, le=3:{2,3}, le=7:{4},
	// le=1023:{1000}, le=2^41-1:{2^40}.
	want := []Bucket{
		{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 3, Count: 2},
		{Le: 7, Count: 1}, {Le: 1023, Count: 1}, {Le: 1<<41 - 1, Count: 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Errorf("empty histogram not all-zero: min=%d max=%d mean=%v",
			h.Min(), h.Max(), h.Mean())
	}
}

func TestNilRegistryIsUsable(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	if err := WriteMetricsFile(r, "/nonexistent/dir/file.json"); err != nil {
		t.Errorf("nil registry dump errored: %v", err)
	}
}

// TestRegistryConcurrent exercises every metric kind from many
// goroutines; run with -race this is the registry's safety contract.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c", L("w", "shared")).Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c", L("w", "shared")).Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	h := r.Histogram("h")
	if h.Count() != workers*iters || h.Min() != 0 || h.Max() != iters-1 {
		t.Errorf("histogram count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

func TestWriteJSONDeterministicAndValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("outcomes", L("class", "sdc")).Add(3)
	r.Counter("outcomes", L("class", "masked")).Add(7)
	r.Gauge("util").Set(0.9)
	r.Histogram("dur").Observe(123)

	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two dumps of identical registry differ")
	}
	var parsed struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Count   uint64
			Buckets []Bucket
		}
	}
	if err := json.Unmarshal(a.Bytes(), &parsed); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, a.String())
	}
	if parsed.Counters["outcomes{class=sdc}"] != 3 {
		t.Errorf("counters = %v", parsed.Counters)
	}
	if h := parsed.Histograms["dur"]; h.Count != 1 || len(h.Buckets) != 1 {
		t.Errorf("histogram = %+v", h)
	}
}
