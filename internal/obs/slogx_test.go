package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "text", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("run accepted", "run", "r000001")
	if out := buf.String(); !strings.Contains(out, "msg=\"run accepted\"") || !strings.Contains(out, "run=r000001") {
		t.Errorf("text output = %q", out)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("run accepted", "run", "r000001")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json output not one JSON object: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "run accepted" || rec["run"] != "r000001" {
		t.Errorf("json record = %v", rec)
	}

	if _, err := NewLogger(&buf, "xml", slog.LevelInfo); err == nil {
		t.Error("unknown format accepted")
	}
	// "" defaults to text.
	if _, err := NewLogger(&buf, "", slog.LevelInfo); err != nil {
		t.Errorf("empty format rejected: %v", err)
	}
}

func TestNewLoggerLevel(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "text", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("quiet")
	lg.Warn("loud")
	out := buf.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Errorf("level filtering broken: %q", out)
	}
}

// TestWithLogAttrs: context attrs (run ID, shard) stamp every record
// logged through that context, including across nesting.
func TestWithLogAttrs(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithLogAttrs(context.Background(), slog.String("run", "r000007"))
	ctx = WithLogAttrs(ctx, slog.Int("shard", 3))
	lg.InfoContext(ctx, "scenario done")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["run"] != "r000007" || rec["shard"] != float64(3) {
		t.Errorf("context attrs missing: %v", rec)
	}

	// A plain context logs fine without attrs.
	buf.Reset()
	lg.InfoContext(context.Background(), "bare")
	if !strings.Contains(buf.String(), "bare") {
		t.Errorf("bare context record = %q", buf.String())
	}
}

// TestWithLogAttrsThroughWith: handler wrapping survives Logger.With
// and WithGroup.
func TestWithLogAttrsThroughWith(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithLogAttrs(context.Background(), slog.String("run", "r000001"))
	lg.With("component", "sched").WithGroup("exec").InfoContext(ctx, "go", "worker", 2)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "sched" {
		t.Errorf("With attr lost: %v", rec)
	}
	exec, _ := rec["exec"].(map[string]any)
	if exec == nil || exec["worker"] != float64(2) || exec["run"] != "r000001" {
		t.Errorf("grouped attrs = %v", rec)
	}
}
