package obs

import (
	"math/rand"
	"testing"
)

func TestQuantileEmptyAndEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(100)
	if got := h.Quantile(0); got != 100 {
		t.Errorf("q=0 -> %d, want Min", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q=1 -> %d, want Max", got)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("single-sample median = %d, want 100 (clamped to [Min,Max])", got)
	}
}

// TestQuantileUniform: on a uniform sample the power-of-two estimate
// must land within one bucket width (2x relative error) of the truth.
func TestQuantileUniform(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 10000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0.5, 5000}, {0.9, 9000}, {0.99, 9900}} {
		got := h.Quantile(tc.q)
		// Power-of-two buckets guarantee at most 2x relative error.
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("Quantile(%v) = %d, want within 2x of %d", tc.q, got, tc.want)
		}
	}
}

// TestQuantileMonotone: quantiles never decrease in q and always stay
// inside [Min, Max].
func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		h.Observe(uint64(rng.Int63n(1 << 30)))
	}
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%v) = %d outside [%d, %d]", q, v, h.Min(), h.Max())
		}
		prev = v
	}
}

// TestQuantileTopBucket: values in the open top bucket (>= 2^63) must
// not overflow the estimator.
func TestQuantileTopBucket(t *testing.T) {
	var h Histogram
	h.Observe(^uint64(0))
	h.Observe(^uint64(0) - 5)
	if got := h.Quantile(0.99); got < 1<<63 {
		t.Errorf("top-bucket quantile = %d, want >= 2^63", got)
	}
}

// TestMetricQuantileMatchesHistogram: the snapshot-side estimator
// agrees with the live one (both interpolate the same fixed layout).
func TestMetricQuantileMatchesHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur")
	for v := uint64(1); v <= 3000; v++ {
		h.Observe(v)
	}
	var m Metric
	for _, s := range r.Snapshot() {
		if s.Name == "dur" {
			m = s
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if live, snap := h.Quantile(q), m.Quantile(q); live != snap {
			t.Errorf("q=%v: live %d != snapshot %d", q, live, snap)
		}
	}
	var empty Metric
	if empty.Quantile(0.5) != 0 {
		t.Error("empty Metric quantile != 0")
	}
}
