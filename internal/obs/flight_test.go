package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderBasics(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("run.start", "r000001", "queued->running")
	f.Record("run.done", "r000001", "")
	evs := f.Snapshot()
	if len(evs) != 2 || f.Total() != 2 {
		t.Fatalf("snapshot = %d events, total %d", len(evs), f.Total())
	}
	if evs[0].Seq != 1 || evs[0].Kind != "run.start" || evs[0].Run != "r000001" {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Seq != 2 {
		t.Errorf("second event seq = %d", evs[1].Seq)
	}
	if evs[0].Time.IsZero() {
		t.Error("event time not stamped")
	}
}

// TestFlightRecorderWrap: overflowing the ring keeps exactly the last
// size events, oldest first, with continuous sequence numbers.
func TestFlightRecorderWrap(t *testing.T) {
	const size, total = 4, 11
	f := NewFlightRecorder(size)
	for i := 0; i < total; i++ {
		f.Recordf("tick", "", "n=%d", i)
	}
	evs := f.Snapshot()
	if len(evs) != size {
		t.Fatalf("retained %d events, want %d", len(evs), size)
	}
	if f.Total() != total {
		t.Errorf("total = %d, want %d", f.Total(), total)
	}
	for i, e := range evs {
		wantSeq := uint64(total - size + 1 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, wantSeq)
		}
	}
	if evs[len(evs)-1].Detail != "n=10" {
		t.Errorf("newest retained detail = %q", evs[len(evs)-1].Detail)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record("x", "", "") // must not panic
	f.Recordf("x", "", "%d", 1)
	if f.Snapshot() != nil || f.Total() != 0 {
		t.Error("nil recorder not empty")
	}
}

// TestFlightRecorderConcurrent is the -race contract: many writers,
// concurrent snapshots, no torn events (every retained event keeps its
// seq/kind pairing intact).
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record("tick", "r", "static")
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, e := range f.Snapshot() {
				if e.Kind != "tick" || e.Run != "r" {
					t.Errorf("torn event: %+v", e)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if f.Total() != 8*500 {
		t.Errorf("total = %d, want %d", f.Total(), 8*500)
	}
	evs := f.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Errorf("sequence gap: %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestFlightRecorderRecordZeroAlloc pins the allocation bound of the
// hot path: recording static strings must not allocate.
func TestFlightRecorderRecordZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(32)
	allocs := testing.AllocsPerRun(200, func() {
		f.Record("run.progress", "r000001", "completed=5")
	})
	if allocs != 0 {
		t.Errorf("Record allocates %v times per call, want 0", allocs)
	}
}

func TestFlightRecorderWriteText(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("run.start", "r000001", "queued->running")
	f.Record("panic.recovered", "r000002", "scenario s0001: boom")
	var buf bytes.Buffer
	if err := f.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "flight recorder (2 of 2 events retained)") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "run.start") || !strings.Contains(out, "panic.recovered") ||
		!strings.Contains(out, "scenario s0001: boom") {
		t.Errorf("events missing:\n%s", out)
	}
}
