package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightEvent is one entry of the flight recorder: a structured
// operational event with a monotonically increasing sequence number.
type FlightEvent struct {
	// Seq numbers every recorded event from 1; gaps never occur, so a
	// reader can tell how much history the ring has already shed.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock instant the event was recorded.
	Time time.Time `json:"time"`
	// Kind classifies the event ("run.start", "scenario.timeout", ...).
	Kind string `json:"kind"`
	// Run names the run or campaign the event belongs to ("" for
	// daemon-wide events).
	Run string `json:"run,omitempty"`
	// Detail carries free-form context.
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-size ring buffer of recent structured
// events — the daemon's black box. Recording is allocation-free (the
// ring is preallocated and entries are plain struct stores), so it is
// safe to leave enabled on every hot path; when a daemon wedges, is
// SIGQUIT'd, or panics, the ring holds the last N events of forensic
// context. A nil recorder is valid everywhere and records nothing.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEvent
	next uint64 // total events ever recorded
}

// DefaultFlightCap is the ring size used when NewFlightRecorder is
// asked for a non-positive capacity.
const DefaultFlightCap = 256

// NewFlightRecorder creates a recorder keeping the last size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightCap
	}
	return &FlightRecorder{ring: make([]FlightEvent, size)}
}

// Record appends one event, overwriting the oldest when the ring is
// full. The strings are stored as passed — callers on hot paths pass
// preformatted or static strings, keeping Record allocation-free.
func (f *FlightRecorder) Record(kind, run, detail string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.next++
	f.ring[int((f.next-1)%uint64(len(f.ring)))] = FlightEvent{
		Seq: f.next, Time: time.Now(), Kind: kind, Run: run, Detail: detail,
	}
	f.mu.Unlock()
}

// Recordf is Record with fmt formatting for the detail — for cold
// paths where context is worth an allocation.
func (f *FlightRecorder) Recordf(kind, run, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(kind, run, fmt.Sprintf(format, args...))
}

// Total reports how many events were ever recorded (including ones
// the ring has already dropped).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Snapshot returns the retained events, oldest first.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	cap64 := uint64(len(f.ring))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]FlightEvent, 0, n-start)
	for seq := start + 1; seq <= n; seq++ {
		out = append(out, f.ring[int((seq-1)%cap64)])
	}
	return out
}

// WriteText dumps the retained events as one human-readable block —
// the SIGQUIT / panic forensic format.
func (f *FlightRecorder) WriteText(w io.Writer) error {
	events := f.Snapshot()
	total := f.Total()
	if _, err := fmt.Fprintf(w, "== flight recorder (%d of %d events retained) ==\n", len(events), total); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%6d  %s  %-18s run=%-8s %s\n",
			e.Seq, e.Time.Format(time.RFC3339Nano), e.Kind, e.Run, e.Detail); err != nil {
			return err
		}
	}
	return nil
}
