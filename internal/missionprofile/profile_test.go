package missionprofile

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestPresetProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{VehicleUnderhood("airbag-ecu"), PassengerCabin("infotainment")} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Component, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []*Profile{
		{MissionHours: 100},               // no component
		{Component: "x", MissionHours: 0}, // no hours
		{Component: "x", MissionHours: 1, // bad stress range
			Stresses: []EnvironmentalStress{{Kind: Temperature, Min: 50, Max: 10}}},
		{Component: "x", MissionHours: 1, // duty cycle out of range
			Stresses: []EnvironmentalStress{{Kind: Vibration, Min: 0, Max: 5, DutyCycle: 1.5}}},
		{Component: "x", MissionHours: 1, // fractions don't sum to 1
			States: []OperatingState{{Name: "a", Fraction: 0.5}}},
		{Component: "x", MissionHours: 1, // negative fraction
			States: []OperatingState{{Name: "a", Fraction: -0.2}, {Name: "b", Fraction: 1.2}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStressLookup(t *testing.T) {
	p := VehicleUnderhood("e")
	s, ok := p.Stress(Temperature)
	if !ok || s.Max != 125 {
		t.Errorf("Stress(Temperature) = %+v, %v", s, ok)
	}
	if _, ok := p.Stress(ChemicalExposure); ok {
		t.Error("absent stress found")
	}
}

func TestRefineAppliesTransferRules(t *testing.T) {
	oem := VehicleUnderhood("braking-system")
	t1, err := oem.Refine("wheel-speed-sensor", []TransferRule{
		{Kind: Vibration, Factor: 2.0},              // wheel-mounted: more vibration
		{Kind: Temperature, Factor: 1, Offset: -20}, // away from engine
	})
	if err != nil {
		t.Fatal(err)
	}
	if t1.Level != Tier1 {
		t.Errorf("level = %v", t1.Level)
	}
	v, _ := t1.Stress(Vibration)
	if v.Max != 20 {
		t.Errorf("refined vibration max = %g, want 20", v.Max)
	}
	tp, _ := t1.Stress(Temperature)
	if tp.Max != 105 || tp.Min != -60 {
		t.Errorf("refined temperature = %+v", tp)
	}
	// One more level down.
	semi, err := t1.Refine("asic", nil)
	if err != nil {
		t.Fatal(err)
	}
	if semi.Level != Semiconductor {
		t.Errorf("level = %v", semi.Level)
	}
	// Below semiconductor is the end of the chain.
	if _, err := semi.Refine("die", nil); err == nil {
		t.Error("refined below semiconductor level")
	}
}

func TestLevelStrings(t *testing.T) {
	if OEM.String() != "OEM" || Tier1.String() != "Tier-1" || Semiconductor.String() != "semiconductor" {
		t.Error("level strings")
	}
	if Temperature.Unit() != "degC" || Vibration.Unit() != "g" {
		t.Error("units")
	}
	if Vibration.String() != "vibration" {
		t.Error("kind string")
	}
}

func TestDeriveVibrationToWiringFaults(t *testing.T) {
	// The paper's canonical example: vibration load at the mounting
	// point yields open-load and short-to-ground wiring faults.
	p := VehicleUnderhood("sensor-cluster")
	sites := []string{"caps.accel0.harness", "caps.accel1.harness", "ecu.mem", "ecu.reg.pc", "can.bus"}
	derived, err := Derive(p, DefaultRules(), sites)
	if err != nil {
		t.Fatal(err)
	}
	var opens, shorts, flips, corruptions int
	for _, d := range derived {
		if err := d.Descriptor.Validate(); err != nil {
			t.Errorf("derived descriptor invalid: %v", err)
		}
		switch d.Descriptor.Model {
		case fault.Open:
			opens++
			if !strings.Contains(d.Descriptor.Target, "harness") {
				t.Errorf("open fault on non-harness site %s", d.Descriptor.Target)
			}
		case fault.ShortToGround:
			shorts++
		case fault.BitFlip:
			flips++
		case fault.Corruption:
			corruptions++
		}
	}
	if opens != 2 || shorts != 2 {
		t.Errorf("opens = %d, shorts = %d, want 2 each (two harness sites)", opens, shorts)
	}
	if flips != 1 {
		t.Errorf("flips = %d, want 1 (mem site, 125degC > 85 threshold)", flips)
	}
	if corruptions != 1 {
		t.Errorf("corruptions = %d, want 1 (bus site, 100 V/m > 50)", corruptions)
	}
}

func TestDeriveRespectsThreshold(t *testing.T) {
	// The milder cabin profile must not trigger the high-vibration
	// short-to-ground rule (threshold 5 g > cabin max 3 g).
	p := PassengerCabin("radio")
	derived, err := Derive(p, DefaultRules(), []string{"radio.harness"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range derived {
		if d.Descriptor.Model == fault.ShortToGround {
			t.Errorf("short-to-ground derived from cabin profile (max vibration 3 g)")
		}
	}
}

func TestDeriveFITScaling(t *testing.T) {
	p := VehicleUnderhood("x")
	derived, err := Derive(p, []DerivationRule{{
		Stress: Vibration, Threshold: 2, Model: fault.Open, Class: fault.Transient,
		SitePattern: "*", BaseFIT: 10, PerUnitFIT: 25, Duration: sim.US(1),
	}}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) != 1 {
		t.Fatalf("derived = %d", len(derived))
	}
	// Max vibration 10 g, threshold 2: FIT = 10 + 8*25 = 210.
	if got := derived[0].Descriptor.Rate; got != 210 {
		t.Errorf("FIT = %g, want 210", got)
	}
}

func TestScheduleDistributesOverStates(t *testing.T) {
	p := VehicleUnderhood("x")
	derived := make([]Derived, 2000)
	for i := range derived {
		derived[i] = Derived{Descriptor: fault.Descriptor{
			Name: "f", Model: fault.BitFlip, Class: fault.Permanent, Target: "t",
		}}
	}
	horizon := sim.MS(100)
	rng := rand.New(rand.NewSource(42))
	scenarios := Schedule(p, derived, horizon, rng)
	if len(scenarios) != 2000 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	stateCount := map[string]int{}
	for _, sc := range scenarios {
		d := sc.Faults[0]
		if d.Start >= horizon {
			t.Errorf("start %v beyond horizon", d.Start)
		}
		idx := strings.LastIndex(sc.ID, "@")
		stateCount[sc.ID[idx+1:]]++
	}
	// Special states are overweighted by load scale: high-load has
	// fraction .04 but weight .04*3=.12 vs off .55*1=.55; normal
	// .40*2=.80. All non-off states must appear; off (load 0) appears
	// least per unit fraction.
	if stateCount["normal-drive"] == 0 || stateCount["high-load"] == 0 {
		t.Errorf("stateCount = %v", stateCount)
	}
	// Weighting check: normal-drive weight (0.8) > off weight (0.55).
	if stateCount["normal-drive"] <= stateCount["off"] {
		t.Errorf("weighting not applied: %v", stateCount)
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	p := VehicleUnderhood("x")
	derived := []Derived{{Descriptor: fault.Descriptor{Name: "f", Target: "t"}}}
	a := Schedule(p, derived, sim.MS(10), rand.New(rand.NewSource(7)))
	b := Schedule(p, derived, sim.MS(10), rand.New(rand.NewSource(7)))
	if a[0].Faults[0].Start != b[0].Faults[0].Start || a[0].ID != b[0].ID {
		t.Error("schedule not reproducible for equal seeds")
	}
}

func TestSiteMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*harness*", "caps.accel0.harness", true},
		{"*harness*", "caps.harness.left", true},
		{"*harness*", "ecu.mem", false},
		{"*mem", "ecu.mem", true},
		{"ecu.?em", "ecu.mem", true},
		{"*", "", true},
	}
	for _, c := range cases {
		if got := siteMatch(c.pat, c.s); got != c.want {
			t.Errorf("siteMatch(%q, %q) = %v", c.pat, c.s, got)
		}
	}
}

// Property: Refine preserves mission hours and state fractions, and
// never produces an invalid profile from a valid one with finite
// positive factors.
func TestPropertyRefineValid(t *testing.T) {
	f := func(factor uint8) bool {
		oem := VehicleUnderhood("sys")
		fac := float64(factor%50)/10 + 0.1
		child, err := oem.Refine("part", []TransferRule{{Kind: Vibration, Factor: fac}})
		if err != nil {
			return false
		}
		return child.MissionHours == oem.MissionHours &&
			len(child.States) == len(oem.States) &&
			child.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every derived descriptor validates and carries a positive
// failure rate.
func TestPropertyDeriveValid(t *testing.T) {
	f := func(siteSeed []uint8) bool {
		sites := []string{"a.harness", "b.mem", "c.reg", "d.bus", "e.supply"}
		if len(siteSeed) > 0 {
			sites = sites[:int(siteSeed[0])%len(sites)+1]
		}
		derived, err := Derive(VehicleUnderhood("x"), DefaultRules(), sites)
		if err != nil {
			return false
		}
		for _, d := range derived {
			if d.Descriptor.Validate() != nil || d.Descriptor.Rate <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
