package missionprofile

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
)

// DerivationRule maps an environmental stress onto a fault model at
// matching injection sites — the step the paper calls "a very
// challenging task and currently not yet solved" (Sec. 3.2), here
// realized as an explicit, auditable rule base. The canonical example
// from the paper: "Based on this vibration load, a probability of
// errors due to wiring, such as open load or short to ground, should
// be derived."
type DerivationRule struct {
	// Stress this rule responds to.
	Stress StressKind
	// Threshold below which (at Max level) the rule stays inactive.
	Threshold float64
	// Model is the fault model to emit.
	Model fault.Model
	// Class is the persistence of the derived faults.
	Class fault.Class
	// Domain tags the derived faults.
	Domain fault.Domain
	// SitePattern selects injection sites by glob over site names
	// ('*' spans any run, '?' one character).
	SitePattern string
	// BaseFIT is the failure rate at the threshold; PerUnitFIT is
	// added per unit of stress above the threshold.
	BaseFIT, PerUnitFIT float64
	// Duration/Period parameterize transient/intermittent faults.
	Duration, Period sim.Time
}

// DefaultRules is a representative rule base connecting the classic
// automotive stresses to wiring/silicon fault models.
func DefaultRules() []DerivationRule {
	return []DerivationRule{
		{Stress: Vibration, Threshold: 2, Model: fault.Open, Class: fault.Intermittent,
			Domain: fault.AnalogHW, SitePattern: "*harness*",
			BaseFIT: 10, PerUnitFIT: 25, Duration: sim.US(50), Period: sim.MS(1)},
		{Stress: Vibration, Threshold: 5, Model: fault.ShortToGround, Class: fault.Transient,
			Domain: fault.AnalogHW, SitePattern: "*harness*",
			BaseFIT: 2, PerUnitFIT: 10, Duration: sim.US(200)},
		{Stress: Temperature, Threshold: 100, Model: fault.StuckAt1, Class: fault.Permanent,
			Domain: fault.DigitalHW, SitePattern: "*reg*",
			BaseFIT: 1, PerUnitFIT: 0.5},
		{Stress: Temperature, Threshold: 85, Model: fault.BitFlip, Class: fault.Transient,
			Domain: fault.DigitalHW, SitePattern: "*mem*",
			BaseFIT: 5, PerUnitFIT: 1, Duration: sim.US(1)},
		{Stress: EMI, Threshold: 50, Model: fault.Corruption, Class: fault.Transient,
			Domain: fault.Communication, SitePattern: "*bus*",
			BaseFIT: 3, PerUnitFIT: 2, Duration: sim.US(10)},
		{Stress: SupplyVoltage, Threshold: 14, Model: fault.ShortToSupply, Class: fault.Transient,
			Domain: fault.AnalogHW, SitePattern: "*supply*",
			BaseFIT: 1, PerUnitFIT: 5, Duration: sim.US(100)},
	}
}

// Derived is the output of the derivation: a descriptor plus which
// rule and stress produced it (for traceability in reports).
type Derived struct {
	Descriptor fault.Descriptor
	Rule       DerivationRule
	StressMax  float64
}

// Derive applies the rule base to a profile over the given injection
// sites and returns the fault/error descriptions with failure rates.
// Derived descriptors have no Start time yet; Schedule assigns times
// across operating states.
func Derive(p *Profile, rules []DerivationRule, sites []string) ([]Derived, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []Derived
	for _, r := range rules {
		s, ok := p.Stress(r.Stress)
		if !ok || s.Max < r.Threshold {
			continue
		}
		fit := r.BaseFIT + (s.Max-r.Threshold)*r.PerUnitFIT
		for _, site := range sites {
			if !siteMatch(r.SitePattern, site) {
				continue
			}
			d := fault.Descriptor{
				Name:     fmt.Sprintf("%s/%s/%s", p.Component, r.Stress, site),
				Model:    r.Model,
				Class:    r.Class,
				Domain:   r.Domain,
				Target:   site,
				Rate:     fit,
				Duration: r.Duration,
				Period:   r.Period,
			}
			if d.Class == fault.Intermittent && d.Period <= d.Duration {
				d.Period = d.Duration * 10
			}
			out = append(out, Derived{Descriptor: d, Rule: r, StressMax: s.Max})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Descriptor.Name < out[j].Descriptor.Name })
	return out, nil
}

// Schedule assigns start times to derived descriptors by distributing
// them over the profile's operating states proportionally to state
// fraction × load scale (stressful states attract more activations),
// within a simulated window of length horizon. The rng makes
// placement reproducible per seed.
func Schedule(p *Profile, derived []Derived, horizon sim.Time, rng *rand.Rand) []fault.Scenario {
	type window struct {
		start, end sim.Time
		state      OperatingState
	}
	var windows []window
	var t sim.Time
	for _, st := range p.States {
		w := sim.Time(float64(horizon) * st.Fraction)
		windows = append(windows, window{start: t, end: t + w, state: st})
		t += w
	}
	if len(windows) == 0 {
		windows = []window{{start: 0, end: horizon, state: OperatingState{Name: "default", Fraction: 1, LoadScale: 1}}}
	}
	// Weight per window: fraction * (1 + loadScale).
	weights := make([]float64, len(windows))
	total := 0.0
	for i, w := range windows {
		weights[i] = w.state.Fraction * (1 + w.state.LoadScale)
		total += weights[i]
	}
	var scenarios []fault.Scenario
	for _, dv := range derived {
		// Pick a window by weight.
		x := rng.Float64() * total
		idx := 0
		for i, wgt := range weights {
			if x < wgt {
				idx = i
				break
			}
			x -= wgt
			idx = i
		}
		w := windows[idx]
		span := w.end - w.start
		d := dv.Descriptor
		if span > 0 {
			d.Start = w.start + sim.Time(rng.Int63n(int64(span)))
		} else {
			d.Start = w.start
		}
		d.Name = fmt.Sprintf("%s@%s", d.Name, w.state.Name)
		scenarios = append(scenarios, fault.Scenario{
			ID:     d.Name,
			Faults: []fault.Descriptor{d},
		})
	}
	return scenarios
}

// siteMatch is the same glob dialect as the UVM config DB: '*' spans
// any run, '?' one character.
func siteMatch(pattern, s string) bool {
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}
