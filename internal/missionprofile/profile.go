// Package missionprofile models Mission Profiles (Sec. 3.2 of the
// paper, after ZVEI's Robustness Validation handbook): the
// application-specific context of a component expressed as
// environmental stresses, functional loads and operating states, plus
// the two operations the paper's Fig. 2 flow needs — refinement down
// the supply chain (OEM → Tier-1 → semiconductor) and derivation of
// formal fault/error descriptions that parameterize a stressor.
package missionprofile

import (
	"fmt"
	"math"
)

// StressKind enumerates environmental stress categories.
type StressKind uint8

const (
	// Temperature in °C (ambient at the mounting point).
	Temperature StressKind = iota
	// Vibration in g RMS (mounting-point acceleration).
	Vibration
	// Humidity in %RH.
	Humidity
	// EMI in V/m field strength.
	EMI
	// SupplyVoltage in V (including transients).
	SupplyVoltage
	// ChemicalExposure as a unitless severity index.
	ChemicalExposure
)

// String names the stress kind.
func (k StressKind) String() string {
	switch k {
	case Temperature:
		return "temperature"
	case Vibration:
		return "vibration"
	case Humidity:
		return "humidity"
	case EMI:
		return "emi"
	case SupplyVoltage:
		return "supply-voltage"
	case ChemicalExposure:
		return "chemical"
	default:
		return fmt.Sprintf("StressKind(%d)", uint8(k))
	}
}

// Unit reports the customary unit for the stress kind.
func (k StressKind) Unit() string {
	switch k {
	case Temperature:
		return "degC"
	case Vibration:
		return "g"
	case Humidity:
		return "%RH"
	case EMI:
		return "V/m"
	case SupplyVoltage:
		return "V"
	default:
		return ""
	}
}

// EnvironmentalStress is one stress the component sees over its
// mission.
type EnvironmentalStress struct {
	Kind StressKind
	// Min and Max bound the stress level over the mission.
	Min, Max float64
	// DutyCycle is the fraction of mission time spent near Max.
	DutyCycle float64
}

// Validate checks level ordering and duty cycle range.
func (s EnvironmentalStress) Validate() error {
	if s.Max < s.Min {
		return fmt.Errorf("missionprofile: %s stress max %g < min %g", s.Kind, s.Max, s.Min)
	}
	if s.DutyCycle < 0 || s.DutyCycle > 1 {
		return fmt.Errorf("missionprofile: %s stress duty cycle %g outside [0,1]", s.Kind, s.DutyCycle)
	}
	return nil
}

// FunctionalLoad is an application load on the component (actuations,
// switching cycles, torque).
type FunctionalLoad struct {
	Name string
	// Level is the load magnitude in Unit.
	Level float64
	Unit  string
	// CyclesPerHour is the activation frequency.
	CyclesPerHour float64
}

// OperatingState is one named system state with its share of mission
// time. Special states describe "a possible malfunction or a special
// use case, for instance the high load for the servo motor when
// steering against a curbstone".
type OperatingState struct {
	Name string
	// Fraction of total mission time spent in this state.
	Fraction float64
	// Special marks malfunction / extreme-use states.
	Special bool
	// LoadScale multiplies functional loads while in this state.
	LoadScale float64
}

// Level is a supply-chain level in the Fig. 2 refinement flow.
type Level uint8

const (
	// OEM is the vehicle manufacturer's system view.
	OEM Level = iota
	// Tier1 is the module/ECU supplier view.
	Tier1
	// Semiconductor is the component manufacturer view.
	Semiconductor
)

// String names the level.
func (l Level) String() string {
	switch l {
	case OEM:
		return "OEM"
	case Tier1:
		return "Tier-1"
	case Semiconductor:
		return "semiconductor"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Profile is a formalized Mission Profile for one component.
type Profile struct {
	// Component names what the profile applies to.
	Component string
	// Level is the supply-chain level the profile is expressed at.
	Level Level
	// MissionHours is the total service life.
	MissionHours float64
	Stresses     []EnvironmentalStress
	Loads        []FunctionalLoad
	States       []OperatingState
}

// Validate formalizes the profile: stress ranges must be sane and
// state fractions must cover the mission (sum to 1 within tolerance).
func (p *Profile) Validate() error {
	if p.Component == "" {
		return fmt.Errorf("missionprofile: profile without component")
	}
	if p.MissionHours <= 0 {
		return fmt.Errorf("missionprofile: %s: non-positive mission hours", p.Component)
	}
	for _, s := range p.Stresses {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	sum := 0.0
	for _, st := range p.States {
		if st.Fraction < 0 {
			return fmt.Errorf("missionprofile: %s: state %s negative fraction", p.Component, st.Name)
		}
		sum += st.Fraction
	}
	if len(p.States) > 0 && math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("missionprofile: %s: state fractions sum to %g, want 1", p.Component, sum)
	}
	return nil
}

// Stress returns the stress entry of the given kind, if present.
func (p *Profile) Stress(kind StressKind) (EnvironmentalStress, bool) {
	for _, s := range p.Stresses {
		if s.Kind == kind {
			return s, true
		}
	}
	return EnvironmentalStress{}, false
}

// TransferRule scales one stress kind when refining a profile to a
// sub-component: the mounting point changes what the part experiences
// (e.g. vibration amplified on the engine block, attenuated in the
// cabin).
type TransferRule struct {
	Kind   StressKind
	Factor float64
	Offset float64
}

// Refine derives a sub-component profile one supply-chain level down,
// applying stress transfer rules for the sub-component's mounting
// point. Loads and states are inherited unchanged unless the caller
// edits them afterwards.
func (p *Profile) Refine(component string, rules []TransferRule) (*Profile, error) {
	if p.Level == Semiconductor {
		return nil, fmt.Errorf("missionprofile: cannot refine below semiconductor level")
	}
	child := &Profile{
		Component:    component,
		Level:        p.Level + 1,
		MissionHours: p.MissionHours,
		Loads:        append([]FunctionalLoad(nil), p.Loads...),
		States:       append([]OperatingState(nil), p.States...),
	}
	for _, s := range p.Stresses {
		rs := s
		for _, r := range rules {
			if r.Kind == s.Kind {
				rs.Min = s.Min*r.Factor + r.Offset
				rs.Max = s.Max*r.Factor + r.Offset
			}
		}
		child.Stresses = append(child.Stresses, rs)
	}
	if err := child.Validate(); err != nil {
		return nil, err
	}
	return child, nil
}

// VehicleUnderhood is a representative OEM-level mission profile for
// an engine-compartment ECU (values in the range of the ZVEI
// handbook's examples; synthetic, see DESIGN.md substitutions).
func VehicleUnderhood(component string) *Profile {
	return &Profile{
		Component:    component,
		Level:        OEM,
		MissionHours: 8000, // 15 years, ~1.5 h/day
		Stresses: []EnvironmentalStress{
			{Kind: Temperature, Min: -40, Max: 125, DutyCycle: 0.2},
			{Kind: Vibration, Min: 0, Max: 10, DutyCycle: 0.3},
			{Kind: Humidity, Min: 5, Max: 95, DutyCycle: 0.15},
			{Kind: EMI, Min: 0, Max: 100, DutyCycle: 0.05},
			{Kind: SupplyVoltage, Min: 6, Max: 16, DutyCycle: 0.02},
		},
		Loads: []FunctionalLoad{
			{Name: "actuation", Level: 1.0, Unit: "duty", CyclesPerHour: 3600},
		},
		States: []OperatingState{
			{Name: "off", Fraction: 0.55, LoadScale: 0},
			{Name: "normal-drive", Fraction: 0.40, LoadScale: 1},
			{Name: "high-load", Fraction: 0.04, Special: true, LoadScale: 2},
			{Name: "crash-maneuver", Fraction: 0.01, Special: true, LoadScale: 3},
		},
	}
}

// PassengerCabin is a representative OEM-level profile for a cabin-
// mounted ECU (milder environment).
func PassengerCabin(component string) *Profile {
	p := VehicleUnderhood(component)
	p.Stresses = []EnvironmentalStress{
		{Kind: Temperature, Min: -30, Max: 85, DutyCycle: 0.1},
		{Kind: Vibration, Min: 0, Max: 3, DutyCycle: 0.2},
		{Kind: Humidity, Min: 10, Max: 80, DutyCycle: 0.1},
		{Kind: EMI, Min: 0, Max: 30, DutyCycle: 0.02},
		{Kind: SupplyVoltage, Min: 9, Max: 16, DutyCycle: 0.01},
	}
	return p
}
