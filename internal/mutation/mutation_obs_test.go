package mutation

import (
	"reflect"
	"testing"

	"repro/internal/mdl"
	"repro/internal/obs"
)

const obsModel = `
func clamp(v, lo, hi) {
  if v < lo { return lo }
  if v > hi { return hi }
  return v
}
func scale(v) {
  return clamp(v * 2 + 1, 0, 100)
}
`

var obsTests = []Test{
	{Fn: "scale", Args: []int64{5}},
	{Fn: "scale", Args: []int64{60}},
	{Fn: "scale", Args: []int64{-10}},
	{Fn: "clamp", Args: []int64{7, 0, 10}},
}

// TestQualifyInstrumentedDeterminism: attaching Metrics, Trace and
// Progress must not change the Report, for sequential and parallel
// mutant execution alike.
func TestQualifyInstrumentedDeterminism(t *testing.T) {
	prog, err := mdl.Parse(obsModel)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Qualify(prog, obsTests)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		got, err := QualifyWith(prog, obsTests, Options{
			Workers:          workers,
			Metrics:          obs.NewRegistry(),
			Trace:            obs.NewTraceRecorder(),
			Progress:         func(obs.ProgressUpdate) {},
			ProgressInterval: -1,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Errorf("workers=%d: instrumented report diverged", workers)
		}
	}
}

// TestQualifyMetricsContent: verdict counters match the report, every
// mutant lands in the duration histogram, and the trace carries the
// golden-run/generate phases plus one span per mutant.
func TestQualifyMetricsContent(t *testing.T) {
	prog, err := mdl.Parse(obsModel)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTraceRecorder()
	var final obs.ProgressUpdate
	rep, err := QualifyWith(prog, obsTests, Options{
		Workers: 4, Metrics: reg, Trace: tr,
		Progress: func(u obs.ProgressUpdate) {
			if u.Final {
				final = u
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mutation.mutants").Value(); got != uint64(rep.Total) {
		t.Errorf("mutation.mutants = %d, want %d", got, rep.Total)
	}
	byVerdict := map[Verdict]int{}
	for _, r := range rep.Results {
		byVerdict[r.Verdict]++
	}
	for v, want := range byVerdict {
		got := reg.Counter("mutation.verdicts", obs.L("verdict", v.String())).Value()
		if got != uint64(want) {
			t.Errorf("verdicts{%s} = %d, want %d", v, got, want)
		}
	}
	if h := reg.Histogram("mutation.mutant_duration_ns"); h.Count() != uint64(rep.Total) {
		t.Errorf("duration histogram count = %d, want %d", h.Count(), rep.Total)
	}
	if tr.Len() != rep.Total+2 {
		t.Errorf("trace has %d events, want %d (mutants + golden + generate)", tr.Len(), rep.Total+2)
	}
	if !final.Final || final.Completed != rep.Total || final.Failures != rep.Killed {
		t.Errorf("final progress = %+v (killed=%d)", final, rep.Killed)
	}
}
