// Package mutation implements mutation analysis for testbench
// qualification (Sec. 2.4 of the paper): DeMillo-style syntactic
// mutation operators are applied to an MDL behavioural model, a test
// suite runs against every mutant, and the mutation score — the
// fraction of mutants killed — measures the testbench's ability to
// reveal faults ("an advanced metric to assess a testbench's quality
// compared with coverage based metrics", reproduced by experiment E3).
//
// Mutants execute through mutation schemata (one parsed program, the
// active mutant selected at run time); GenerateThenReparse provides
// the naive rebuild-per-mutant baseline that experiment E9 benchmarks
// schemata against.
package mutation

import (
	"fmt"
	"time"

	"repro/internal/mdl"
	"repro/internal/obs"
	"repro/internal/par"
)

// Mutant is one seeded syntactic fault.
type Mutant struct {
	ID          int
	Mut         mdl.SchemataMut
	Operator    string // operator class: AOR, ROR, LCR, CRP, NC, SDL
	Description string
}

// arithmeticAlternatives maps each arithmetic operator to its AOR
// replacements.
var arithmeticAlternatives = map[mdl.TokKind][]mdl.TokKind{
	mdl.TokPlus:    {mdl.TokMinus, mdl.TokStar},
	mdl.TokMinus:   {mdl.TokPlus, mdl.TokStar},
	mdl.TokStar:    {mdl.TokPlus, mdl.TokSlash},
	mdl.TokSlash:   {mdl.TokStar, mdl.TokPercent},
	mdl.TokPercent: {mdl.TokSlash, mdl.TokStar},
}

// relationalAlternatives maps each relational operator to its ROR
// replacements (the adjacent and inverted forms).
var relationalAlternatives = map[mdl.TokKind][]mdl.TokKind{
	mdl.TokLT: {mdl.TokLE, mdl.TokGE},
	mdl.TokLE: {mdl.TokLT, mdl.TokGT},
	mdl.TokGT: {mdl.TokGE, mdl.TokLE},
	mdl.TokGE: {mdl.TokGT, mdl.TokLT},
	mdl.TokEQ: {mdl.TokNE},
	mdl.TokNE: {mdl.TokEQ},
}

// logicalAlternatives maps && <-> || (LCR).
var logicalAlternatives = map[mdl.TokKind][]mdl.TokKind{
	mdl.TokAndAnd: {mdl.TokOrOr},
	mdl.TokOrOr:   {mdl.TokAndAnd},
}

// Generate enumerates every mutant of the program under the classic
// operator set: AOR (arithmetic operator replacement), ROR (relational
// operator replacement), LCR (logical connector replacement), CRP
// (constant replacement), NC (condition negation) and SDL (statement
// deletion).
func Generate(p *mdl.Program) []Mutant {
	var out []Mutant
	add := func(m mdl.SchemataMut, op, desc string) {
		out = append(out, Mutant{ID: len(out), Mut: m, Operator: op, Description: desc})
	}
	mdl.Walk(p, func(n any) {
		switch node := n.(type) {
		case *mdl.Binary:
			var class string
			var alts []mdl.TokKind
			switch {
			case arithmeticAlternatives[node.Op] != nil:
				class, alts = "AOR", arithmeticAlternatives[node.Op]
			case relationalAlternatives[node.Op] != nil:
				class, alts = "ROR", relationalAlternatives[node.Op]
			case logicalAlternatives[node.Op] != nil:
				class, alts = "LCR", logicalAlternatives[node.Op]
			}
			for _, alt := range alts {
				add(mdl.SchemataMut{Node: node.ID(), Op: mdl.MutReplaceBinOp, NewTok: alt},
					class, fmt.Sprintf("node %d: %s -> %s", node.ID(), node.Op, alt))
			}
		case *mdl.IntLit:
			for _, nv := range []int64{node.Val + 1, node.Val - 1, 0} {
				if nv == node.Val {
					continue
				}
				add(mdl.SchemataMut{Node: node.ID(), Op: mdl.MutReplaceConst, NewVal: nv},
					"CRP", fmt.Sprintf("node %d: const %d -> %d", node.ID(), node.Val, nv))
			}
		case *mdl.If:
			add(mdl.SchemataMut{Node: node.ID(), Op: mdl.MutNegateCond},
				"NC", fmt.Sprintf("node %d: negate if-condition", node.ID()))
		case *mdl.While:
			add(mdl.SchemataMut{Node: node.ID(), Op: mdl.MutNegateCond},
				"NC", fmt.Sprintf("node %d: negate while-condition", node.ID()))
		case *mdl.Assign:
			add(mdl.SchemataMut{Node: node.ID(), Op: mdl.MutDeleteStmt},
				"SDL", fmt.Sprintf("node %d: delete assignment", node.ID()))
		case *mdl.Let:
			add(mdl.SchemataMut{Node: node.ID(), Op: mdl.MutDeleteStmt},
				"SDL", fmt.Sprintf("node %d: delete let", node.ID()))
		}
	})
	return out
}

// Test is one testbench vector: invoke Fn with Args; the expected
// result is taken from the un-mutated (golden) model, so a test kills
// a mutant when the mutant's observable behaviour differs.
type Test struct {
	Fn   string
	Args []int64
}

// Verdict is the fate of one mutant under the suite.
type Verdict uint8

const (
	// Survived means no test distinguished the mutant.
	Survived Verdict = iota
	// KilledByValue means a test produced a different result.
	KilledByValue
	// KilledByError means the mutant crashed or timed out where the
	// golden model did not.
	KilledByError
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Survived:
		return "survived"
	case KilledByValue:
		return "killed-value"
	case KilledByError:
		return "killed-error"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// MutantResult pairs a mutant with its fate.
type MutantResult struct {
	Mutant  Mutant
	Verdict Verdict
	// KillingTest is the index of the first killing test (-1 if
	// survived).
	KillingTest int
}

// Report is the outcome of qualifying one testbench against one model.
type Report struct {
	Total   int
	Killed  int
	Results []MutantResult
	// Score is Killed/Total — the mutation score.
	Score float64
	// StatementCoverage is the golden-run structural coverage of the
	// same suite, for the E3 coverage-vs-mutation comparison.
	StatementCoverage float64
}

// Survivors lists mutants no test killed (candidate testbench holes or
// equivalent mutants).
func (r *Report) Survivors() []Mutant {
	var out []Mutant
	for _, res := range r.Results {
		if res.Verdict == Survived {
			out = append(out, res.Mutant)
		}
	}
	return out
}

// WorkersAuto asks QualifyWith for one worker per available CPU.
const WorkersAuto = par.Auto

// Options configure a qualification run.
type Options struct {
	// Reparse re-parses the model source for every mutant before
	// execution — the naive rebuild-per-mutant baseline of E9.
	Reparse bool
	// Workers selects mutant-execution parallelism: 0 runs mutants
	// sequentially, N > 0 uses a pool of N goroutines, WorkersAuto
	// sizes the pool to GOMAXPROCS. Every mutant executes in its own
	// interpreter against a read-only program, so the Report is
	// identical for every setting.
	Workers int

	// Metrics, when non-nil, receives qualification telemetry: a
	// mutation.mutant_duration_ns histogram, mutation.verdicts
	// counters per verdict and a mutation.mutants counter. The Report
	// is identical with or without it.
	Metrics *obs.Registry
	// Trace, when non-nil, records golden-run/generate phases and one
	// span per mutant on the executing worker's trace row.
	Trace *obs.TraceRecorder
	// Progress, when non-nil, receives rate-limited live updates
	// while mutants execute (Failures counts killed mutants).
	Progress obs.ProgressFunc
	// ProgressInterval overrides the update rate limit (0 selects
	// obs.DefaultProgressInterval, negative disables limiting).
	ProgressInterval time.Duration
}

// Qualify runs the full analysis using mutation schemata: the program
// is parsed once; each mutant is selected by flag.
func Qualify(p *mdl.Program, tests []Test) (*Report, error) {
	return QualifyWith(p, tests, Options{})
}

// QualifyReparse is the naive baseline: the model source is re-parsed
// for every mutant before execution (standing in for rebuild-per-
// mutant flows). Results are identical to Qualify; only cost differs.
func QualifyReparse(p *mdl.Program, tests []Test) (*Report, error) {
	return QualifyWith(p, tests, Options{Reparse: true})
}

// QualifyWith runs the analysis under explicit options. Mutant fates
// are independent of each other, so parallel execution reassembles
// the exact sequential Report (result order, kill counts, score),
// and attaching Metrics/Trace/Progress never changes it.
func QualifyWith(p *mdl.Program, tests []Test, opts Options) (*Report, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("mutation: empty test suite")
	}
	// Golden run: expected values + structural coverage.
	goldenSpan := opts.Trace.Begin("mutation", "golden-run", 0)
	golden := mdl.NewInterp(p)
	expected := make([]int64, len(tests))
	for i, t := range tests {
		v, err := golden.Call(t.Fn, t.Args...)
		if err != nil {
			return nil, fmt.Errorf("mutation: golden run of test %d failed: %w", i, err)
		}
		expected[i] = v
	}
	cov := golden.CoverageFraction()
	goldenSpan.End()

	genSpan := opts.Trace.Begin("mutation", "generate", 0)
	mutants := Generate(p)
	genSpan.End()

	var durHist *obs.Histogram
	if opts.Metrics != nil {
		durHist = opts.Metrics.Histogram("mutation.mutant_duration_ns")
	}
	meter := obs.NewProgressMeter("mutation", len(mutants), opts.ProgressInterval, opts.Progress)

	type fate struct {
		res MutantResult
		err error
	}
	// One interpreter per pool worker, reused across that worker's
	// mutants (SetMutation swaps the active mutant; the program itself
	// is read-only) — the same slot-per-worker shape as the campaign
	// runners. Reparse mode rebuilds per mutant by definition, so it
	// takes no slot.
	nslots := par.Resolve(opts.Workers)
	if nslots < 1 {
		nslots = 1
	}
	slots := make([]*mdl.Interp, nslots)
	fates := par.MapIndexed(opts.Workers, len(mutants), func(worker, i int) fate {
		sp := opts.Trace.Begin("mutation", fmt.Sprintf("mutant-%d", mutants[i].ID), worker)
		var t0 time.Time
		if durHist != nil {
			t0 = time.Now()
		}
		var in *mdl.Interp
		if !opts.Reparse {
			if slots[worker] == nil {
				slots[worker] = mdl.NewInterp(p)
			}
			in = slots[worker]
		}
		res, err := runMutant(p, in, mutants[i], tests, expected, opts.Reparse)
		if durHist != nil {
			durHist.Observe(uint64(time.Since(t0)))
		}
		sp.Arg("operator", mutants[i].Operator).Arg("verdict", res.Verdict.String()).End()
		meter.Step(res.Verdict != Survived)
		return fate{res: res, err: err}
	})
	meter.Finish()

	rep := &Report{Total: len(mutants), StatementCoverage: cov}
	for _, f := range fates {
		if f.err != nil {
			return nil, f.err
		}
		if f.res.Verdict != Survived {
			rep.Killed++
		}
		rep.Results = append(rep.Results, f.res)
	}
	if rep.Total > 0 {
		rep.Score = float64(rep.Killed) / float64(rep.Total)
	}
	if opts.Metrics != nil {
		// Counters derive from the assembled report, so recorded
		// values are deterministic across worker counts.
		opts.Metrics.Counter("mutation.mutants").Add(uint64(rep.Total))
		for _, r := range rep.Results {
			opts.Metrics.Counter("mutation.verdicts", obs.L("verdict", r.Verdict.String())).Inc()
		}
	}
	return rep, nil
}

// runMutant executes one mutant against the suite and reports its
// fate. A non-nil interpreter is reused (its mutation is swapped in
// and cleared afterwards); with reparse, the source is re-parsed into
// a private program first. Concurrent calls are safe as long as each
// worker owns its interpreter.
func runMutant(p *mdl.Program, in *mdl.Interp, m Mutant, tests []Test, expected []int64, reparse bool) (MutantResult, error) {
	if reparse {
		prog, err := mdl.Parse(p.Source)
		if err != nil {
			return MutantResult{}, fmt.Errorf("mutation: reparse failed: %w", err)
		}
		in = mdl.NewInterp(prog)
	} else if in == nil {
		in = mdl.NewInterp(p)
	}
	mut := m.Mut
	in.SetMutation(&mut)
	defer in.SetMutation(nil)
	res := MutantResult{Mutant: m, Verdict: Survived, KillingTest: -1}
	for i, t := range tests {
		v, err := in.Call(t.Fn, t.Args...)
		if err != nil {
			res.Verdict = KilledByError
			res.KillingTest = i
			break
		}
		if v != expected[i] {
			res.Verdict = KilledByValue
			res.KillingTest = i
			break
		}
	}
	return res, nil
}
