package mutation

import (
	"testing"

	"repro/internal/mdl"
)

const modelSrc = `
func clamp(x, lo, hi) {
  if x < lo {
    return lo
  }
  if x > hi {
    return hi
  }
  return x
}

func controller(sensor, threshold) {
  let cmd = 0
  if sensor > threshold {
    cmd = sensor - threshold
  }
  return clamp(cmd, 0, 100)
}
`

func prog(t *testing.T) *mdl.Program {
	t.Helper()
	p, err := mdl.Parse(modelSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateOperatorClasses(t *testing.T) {
	mutants := Generate(prog(t))
	byClass := map[string]int{}
	for _, m := range mutants {
		byClass[m.Operator]++
	}
	for _, class := range []string{"AOR", "ROR", "CRP", "NC", "SDL"} {
		if byClass[class] == 0 {
			t.Errorf("no %s mutants generated (have %v)", class, byClass)
		}
	}
	// IDs are dense.
	for i, m := range mutants {
		if m.ID != i {
			t.Errorf("mutant ID %d at index %d", m.ID, i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(prog(t))
	b := Generate(prog(t))
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Description != b[i].Description {
			t.Fatalf("mutant %d differs: %s vs %s", i, a[i].Description, b[i].Description)
		}
	}
}

// strongSuite exercises boundaries and both branches everywhere.
func strongSuite() []Test {
	var tests []Test
	for _, v := range []int64{0, 1, 49, 50, 51, 99, 100, 149, 150, 151, 200, 300} {
		tests = append(tests, Test{Fn: "controller", Args: []int64{v, 50}})
	}
	for _, args := range [][]int64{{-5, 0, 100}, {0, 0, 100}, {50, 0, 100}, {100, 0, 100}, {105, 0, 100}} {
		tests = append(tests, Test{Fn: "clamp", Args: args})
	}
	return tests
}

// weakSuite touches every statement once but checks no boundaries.
func weakSuite() []Test {
	return []Test{
		{Fn: "controller", Args: []int64{500, 50}}, // hits both if-branches & clamp hi
		{Fn: "controller", Args: []int64{10, 50}},  // sensor below threshold
		{Fn: "clamp", Args: []int64{-10, 0, 100}},  // lo branch
	}
}

func TestQualifyStrongVsWeak(t *testing.T) {
	p := prog(t)
	strong, err := Qualify(p, strongSuite())
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Qualify(p, weakSuite())
	if err != nil {
		t.Fatal(err)
	}
	if strong.Total != weak.Total || strong.Total == 0 {
		t.Fatalf("totals: strong %d, weak %d", strong.Total, weak.Total)
	}
	if strong.Score <= weak.Score {
		t.Errorf("strong score %.2f <= weak score %.2f — mutation analysis not discriminating",
			strong.Score, weak.Score)
	}
	// The weak suite still has near-full statement coverage: this is
	// the paper's point (coverage saturates, mutation score does not).
	if weak.StatementCoverage < 0.9 {
		t.Errorf("weak suite statement coverage = %.2f, want >= 0.9", weak.StatementCoverage)
	}
	// The model has exactly 6 equivalent mutants (e.g. "x < lo" ->
	// "x <= lo" inside clamp is behaviour-preserving), so the best
	// achievable score is (Total-6)/Total = 0.70. A strong suite must
	// reach it.
	maxAchievable := float64(strong.Total-6) / float64(strong.Total)
	if strong.Score < maxAchievable {
		t.Errorf("strong suite mutation score = %.2f, want %.2f (all non-equivalent mutants killed)",
			strong.Score, maxAchievable)
	}
	t.Logf("strong: score=%.2f cov=%.2f; weak: score=%.2f cov=%.2f",
		strong.Score, strong.StatementCoverage, weak.Score, weak.StatementCoverage)
}

func TestSurvivorsListed(t *testing.T) {
	p := prog(t)
	rep, err := Qualify(p, weakSuite())
	if err != nil {
		t.Fatal(err)
	}
	survivors := rep.Survivors()
	if len(survivors) != rep.Total-rep.Killed {
		t.Errorf("survivors %d, want %d", len(survivors), rep.Total-rep.Killed)
	}
	if len(survivors) == 0 {
		t.Error("weak suite should leave survivors")
	}
}

func TestKilledByErrorVerdict(t *testing.T) {
	// A model where a CRP mutant creates division by zero.
	p, err := mdl.Parse(`func f(x) { return x / 2 }`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Qualify(p, []Test{{Fn: "f", Args: []int64{10}}})
	if err != nil {
		t.Fatal(err)
	}
	hasErrKill := false
	for _, r := range rep.Results {
		if r.Verdict == KilledByError {
			hasErrKill = true
			if r.KillingTest != 0 {
				t.Errorf("killing test = %d", r.KillingTest)
			}
		}
	}
	if !hasErrKill {
		t.Error("no killed-by-error mutant (const 2 -> 0 should divide by zero)")
	}
}

func TestKilledByTimeout(t *testing.T) {
	// Negating the while condition makes the loop infinite; the step
	// budget must kill it.
	p, err := mdl.Parse(`
func f(n) {
  let i = 0
  let acc = 0
  while i < n {
    acc = acc + i
    i = i + 1
  }
  return acc
}`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Qualify(p, []Test{{Fn: "f", Args: []int64{5}}, {Fn: "f", Args: []int64{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score < 0.5 {
		t.Errorf("score = %.2f; loop mutants should mostly die", rep.Score)
	}
}

func TestQualifyReparseAgrees(t *testing.T) {
	p := prog(t)
	a, err := Qualify(p, strongSuite())
	if err != nil {
		t.Fatal(err)
	}
	b, err := QualifyReparse(p, strongSuite())
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Killed != b.Killed {
		t.Errorf("schemata (%d/%d) and reparse (%d/%d) disagree",
			a.Killed, a.Total, b.Killed, b.Total)
	}
	for i := range a.Results {
		if a.Results[i].Verdict != b.Results[i].Verdict {
			t.Errorf("mutant %d: %s vs %s", i, a.Results[i].Verdict, b.Results[i].Verdict)
		}
	}
}

func TestQualifyRejectsEmptySuite(t *testing.T) {
	if _, err := Qualify(prog(t), nil); err == nil {
		t.Error("empty suite accepted")
	}
}

func TestQualifyRejectsBrokenGolden(t *testing.T) {
	p, err := mdl.Parse(`func f(x) { return 1 / x }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Qualify(p, []Test{{Fn: "f", Args: []int64{0}}}); err == nil {
		t.Error("golden-run failure not reported")
	}
}

func TestVerdictStrings(t *testing.T) {
	if Survived.String() != "survived" || KilledByValue.String() != "killed-value" ||
		KilledByError.String() != "killed-error" {
		t.Error("verdict strings")
	}
}

func BenchmarkQualifySchemata(b *testing.B) {
	p, err := mdl.Parse(modelSrc)
	if err != nil {
		b.Fatal(err)
	}
	suite := strongSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Qualify(p, suite); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQualifyReparse(b *testing.B) {
	p, err := mdl.Parse(modelSrc)
	if err != nil {
		b.Fatal(err)
	}
	suite := strongSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QualifyReparse(p, suite); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQualifyWithWorkersDeterministic is the parallel-qualification
// contract: any worker count reassembles the exact sequential Report
// (result order, per-mutant verdicts, kill count, score), in both
// schemata and reparse modes.
func TestQualifyWithWorkersDeterministic(t *testing.T) {
	p := prog(t)
	suite := strongSuite()
	for _, reparse := range []bool{false, true} {
		baseline, err := QualifyWith(p, suite, Options{Reparse: reparse})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 4, 8, WorkersAuto} {
			got, err := QualifyWith(p, suite, Options{Reparse: reparse, Workers: workers})
			if err != nil {
				t.Fatalf("reparse=%v workers=%d: %v", reparse, workers, err)
			}
			if got.Total != baseline.Total || got.Killed != baseline.Killed || got.Score != baseline.Score {
				t.Fatalf("reparse=%v workers=%d: report %d/%d (%.2f) diverged from %d/%d (%.2f)",
					reparse, workers, got.Killed, got.Total, got.Score,
					baseline.Killed, baseline.Total, baseline.Score)
			}
			for i := range baseline.Results {
				if got.Results[i].Mutant.ID != baseline.Results[i].Mutant.ID ||
					got.Results[i].Verdict != baseline.Results[i].Verdict ||
					got.Results[i].KillingTest != baseline.Results[i].KillingTest {
					t.Fatalf("reparse=%v workers=%d: result %d = %+v, want %+v",
						reparse, workers, i, got.Results[i], baseline.Results[i])
				}
			}
		}
	}
}
