package safety

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFTAValidate(t *testing.T) {
	good := Or("top", BasicEvent("a", 0.1), And("g", BasicEvent("b", 0.2), BasicEvent("c", 0.3)))
	if err := good.Validate(); err != nil {
		t.Errorf("good tree rejected: %v", err)
	}
	bad := []*Node{
		BasicEvent("a", -0.1),
		BasicEvent("a", 1.5),
		Or("empty"),
		KofN("k", 0, BasicEvent("a", 0.1)),
		KofN("k", 3, BasicEvent("a", 0.1), BasicEvent("b", 0.1)),
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad tree %d accepted", i)
		}
	}
}

func TestMinimalCutSetsSimple(t *testing.T) {
	// top = a OR (b AND c)
	tree := Or("top", BasicEvent("a", 0.1), And("g", BasicEvent("b", 0.2), BasicEvent("c", 0.3)))
	mcs := tree.MinimalCutSets()
	if len(mcs) != 2 {
		t.Fatalf("mcs = %v", mcs)
	}
	if mcs[0].key() != "a" {
		t.Errorf("mcs[0] = %v", mcs[0])
	}
	if len(mcs[1]) != 2 || mcs[1][0] != "b" || mcs[1][1] != "c" {
		t.Errorf("mcs[1] = %v", mcs[1])
	}
}

func TestMinimalCutSetsAbsorption(t *testing.T) {
	// top = a OR (a AND b): the {a,b} set is absorbed by {a}.
	a := BasicEvent("a", 0.1)
	tree := Or("top", a, And("g", BasicEvent("a", 0.1), BasicEvent("b", 0.2)))
	mcs := tree.MinimalCutSets()
	if len(mcs) != 1 || mcs[0].key() != "a" {
		t.Errorf("absorption failed: %v", mcs)
	}
}

func TestKofNCutSets(t *testing.T) {
	// 2-of-3 voter: cut sets are all pairs.
	tree := KofN("vote", 2, BasicEvent("a", 0.1), BasicEvent("b", 0.1), BasicEvent("c", 0.1))
	mcs := tree.MinimalCutSets()
	if len(mcs) != 3 {
		t.Fatalf("mcs = %v", mcs)
	}
	for _, cs := range mcs {
		if len(cs) != 2 {
			t.Errorf("cut set %v not a pair", cs)
		}
	}
}

func TestTopEventProbabilityExact(t *testing.T) {
	// P(a or (b and c)) with independent events:
	// = Pa + Pb*Pc - Pa*Pb*Pc = 0.1 + 0.06 - 0.006 = 0.154
	tree := Or("top", BasicEvent("a", 0.1), And("g", BasicEvent("b", 0.2), BasicEvent("c", 0.3)))
	p, err := tree.TopEventProbability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.154) > 1e-12 {
		t.Errorf("P(top) = %v, want 0.154", p)
	}
}

func TestTopEventProbabilitySharedEvent(t *testing.T) {
	// top = (a AND b) OR (a AND c): P = Pa*Pb + Pa*Pc - Pa*Pb*Pc.
	tree := Or("top",
		And("g1", BasicEvent("a", 0.5), BasicEvent("b", 0.4)),
		And("g2", BasicEvent("a", 0.5), BasicEvent("c", 0.2)))
	p, err := tree.TopEventProbability()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*0.4 + 0.5*0.2 - 0.5*0.4*0.2
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("P(top) = %v, want %v", p, want)
	}
}

func TestConflictingProbabilitiesRejected(t *testing.T) {
	tree := Or("top", BasicEvent("a", 0.1), BasicEvent("a", 0.2))
	if _, err := tree.TopEventProbability(); err == nil {
		t.Error("conflicting basic-event probabilities accepted")
	}
}

func TestKofNProbabilityMatchesBinomial(t *testing.T) {
	// 2-of-3 with p=0.1 each: 3*p^2*(1-p) + p^3 = 0.028.
	tree := KofN("vote", 2, BasicEvent("a", 0.1), BasicEvent("b", 0.1), BasicEvent("c", 0.1))
	p, err := tree.TopEventProbability()
	if err != nil {
		t.Fatal(err)
	}
	want := 3*0.01*0.9 + 0.001
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("P = %v, want %v", p, want)
	}
}

func TestImportanceRanking(t *testing.T) {
	// Event "a" is in the singleton cut set; it must dominate.
	tree := Or("top", BasicEvent("a", 0.01), And("g", BasicEvent("b", 0.01), BasicEvent("c", 0.01)))
	imp, err := tree.Importance()
	if err != nil {
		t.Fatal(err)
	}
	if imp[0].Event != "a" || imp[0].FussellVesely < 0.9 {
		t.Errorf("importance = %+v", imp)
	}
	if len(imp) != 3 {
		t.Errorf("entries = %d", len(imp))
	}
}

func TestTreeString(t *testing.T) {
	tree := Or("top", BasicEvent("a", 0.1), KofN("v", 2, BasicEvent("b", 0.1), BasicEvent("c", 0.1), BasicEvent("d", 0.1)))
	s := tree.String()
	for _, want := range []string{"top [OR]", "a p=0.1", "v [2-of-3]"} {
		if !strings.Contains(s, want) {
			t.Errorf("tree string missing %q:\n%s", want, s)
		}
	}
}

func TestFMEDAPerfectCoverage(t *testing.T) {
	res, err := EvaluateFMEDA([]FailureMode{
		{Component: "cpu", Mode: "seu", RateFIT: 100, SafeFraction: 0.5, DiagnosticCoverage: 1, LatentCoverage: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DangerousUndetectedFIT != 0 || res.SPFM != 1 || res.LFM != 1 {
		t.Errorf("res = %+v", res)
	}
	if res.ASIL() != ASILD {
		t.Errorf("ASIL = %v, want D", res.ASIL())
	}
}

func TestFMEDANoCoverage(t *testing.T) {
	res, err := EvaluateFMEDA([]FailureMode{
		{Component: "cpu", Mode: "seu", RateFIT: 1000, SafeFraction: 0, DiagnosticCoverage: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SPFM != 0 {
		t.Errorf("SPFM = %v, want 0", res.SPFM)
	}
	// 1000 FIT undetected = 1e-6/h: misses even ASIL-A.
	if res.ASIL() != QM {
		t.Errorf("ASIL = %v, want QM", res.ASIL())
	}
}

func TestFMEDAMetricsArithmetic(t *testing.T) {
	res, err := EvaluateFMEDA([]FailureMode{
		{Component: "a", Mode: "m1", RateFIT: 100, SafeFraction: 0.2, DiagnosticCoverage: 0.9, LatentCoverage: 0.5},
		{Component: "b", Mode: "m2", RateFIT: 50, SafeFraction: 0.0, DiagnosticCoverage: 0.99, LatentCoverage: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// a: safe 20, dangerous 80, DD 72, DU 8, latent 36.
	// b: dangerous 50, DD 49.5, DU 0.5, latent 0.
	if math.Abs(res.TotalFIT-150) > 1e-9 ||
		math.Abs(res.DangerousUndetectedFIT-8.5) > 1e-9 ||
		math.Abs(res.LatentFIT-36) > 1e-9 {
		t.Errorf("res = %+v", res)
	}
	wantSPFM := 1 - 8.5/150
	if math.Abs(res.SPFM-wantSPFM) > 1e-12 {
		t.Errorf("SPFM = %v, want %v", res.SPFM, wantSPFM)
	}
	wantLFM := 1 - 36/(150-8.5)
	if math.Abs(res.LFM-wantLFM) > 1e-12 {
		t.Errorf("LFM = %v, want %v", res.LFM, wantLFM)
	}
	if math.Abs(res.PMHF-8.5e-9) > 1e-15 {
		t.Errorf("PMHF = %v", res.PMHF)
	}
	if !strings.Contains(res.String(), "SPFM") {
		t.Error("String missing metrics")
	}
}

func TestFMEDAValidation(t *testing.T) {
	bad := []FailureMode{
		{Component: "x", Mode: "m", RateFIT: -1},
		{Component: "x", Mode: "m", RateFIT: 1, SafeFraction: 1.2},
		{Component: "x", Mode: "m", RateFIT: 1, DiagnosticCoverage: -0.1},
		{Component: "x", Mode: "m", RateFIT: 1, LatentCoverage: 2},
	}
	for i, m := range bad {
		if _, err := EvaluateFMEDA([]FailureMode{m}); err == nil {
			t.Errorf("bad mode %d accepted", i)
		}
	}
}

func TestWorksheetByComponent(t *testing.T) {
	var w Worksheet
	w.Add(FailureMode{Component: "sensor", Mode: "drift", RateFIT: 200, DiagnosticCoverage: 0.5})
	w.Add(FailureMode{Component: "cpu", Mode: "seu", RateFIT: 100, DiagnosticCoverage: 0.99})
	w.Add(FailureMode{Component: "sensor", Mode: "open", RateFIT: 50, DiagnosticCoverage: 0.9})
	rows := w.ByComponent()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// sensor DU = 100 + 5 = 105; cpu DU = 1. Sensor is the weak spot.
	if rows[0].Component != "sensor" || math.Abs(rows[0].DangerousUndetectedFIT-105) > 1e-9 {
		t.Errorf("rows[0] = %+v", rows[0])
	}
}

func TestASILStrings(t *testing.T) {
	if QM.String() != "QM" || ASILD.String() != "ASIL-D" {
		t.Error("ASIL strings")
	}
	if GateAnd.String() != "AND" || GateKofN.String() != "K-of-N" {
		t.Error("gate strings")
	}
}

func buildFPTCChain(t *testing.T) *System {
	t.Helper()
	s := NewSystem()
	// sensor -> filter -> actuator
	if err := s.Add(&Component{
		Name: "sensor", Outputs: []string{"out"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Component{
		Name: "filter", Inputs: []string{"in"}, Outputs: []string{"out"},
		Rules: []Rule{
			{In: []FailureType{ValueF}, Out: []FailureType{NoFailure}}, // filter masks value errors
			{In: []FailureType{Var}, Out: []FailureType{Var}},          // everything else propagates
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Component{
		Name: "actuator", Inputs: []string{"in"}, Outputs: []string{"out"},
		Rules: []Rule{
			{In: []FailureType{LateF}, Out: []FailureType{OmissionF}}, // late input -> omitted actuation
			{In: []FailureType{Var}, Out: []FailureType{Var}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("sensor", "out", "filter", "in"); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("filter", "out", "actuator", "in"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFPTCMasking(t *testing.T) {
	s := buildFPTCChain(t)
	res, err := s.Propagate(map[string][]FailureType{"sensor.out": {ValueF}})
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := res["actuator.out"]; bad {
		t.Errorf("value failure not masked by filter: %v", res)
	}
	if got := res["sensor.out"]; len(got) != 1 || got[0] != ValueF {
		t.Errorf("sensor.out = %v", got)
	}
}

func TestFPTCTransformation(t *testing.T) {
	s := buildFPTCChain(t)
	res, err := s.Propagate(map[string][]FailureType{"sensor.out": {LateF}})
	if err != nil {
		t.Fatal(err)
	}
	got := res["actuator.out"]
	if len(got) != 1 || got[0] != OmissionF {
		t.Errorf("late not transformed to omission: %v", res)
	}
}

func TestFPTCDefaultPropagation(t *testing.T) {
	s := NewSystem()
	if err := s.Add(&Component{Name: "src", Outputs: []string{"o"}}); err != nil {
		t.Fatal(err)
	}
	// No rules at all: default is propagate.
	if err := s.Add(&Component{Name: "pipe", Inputs: []string{"i"}, Outputs: []string{"o"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("src", "o", "pipe", "i"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Propagate(map[string][]FailureType{"src.o": {OmissionF}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res["pipe.o"]; len(got) != 1 || got[0] != OmissionF {
		t.Errorf("default propagation failed: %v", res)
	}
}

func TestFPTCErrors(t *testing.T) {
	s := NewSystem()
	if err := s.Add(&Component{Name: "a", Outputs: []string{"o"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Component{Name: "a", Outputs: []string{"o"}}); err == nil {
		t.Error("duplicate component accepted")
	}
	if err := s.Add(&Component{Name: "bad", Inputs: []string{"i"}, Outputs: []string{"o"},
		Rules: []Rule{{In: []FailureType{Var, Var}, Out: []FailureType{Var}}}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := s.Connect("a", "o", "nosuch", "i"); err == nil {
		t.Error("connect to unknown component accepted")
	}
	if err := s.Connect("a", "nosuch", "a", "o"); err == nil {
		t.Error("connect from unknown port accepted")
	}
	if _, err := s.Propagate(map[string][]FailureType{"nodot": {ValueF}}); err == nil {
		t.Error("bad injection key accepted")
	}
	if _, err := s.Propagate(map[string][]FailureType{"a.nosuch": {ValueF}}); err == nil {
		t.Error("unknown injection port accepted")
	}
}

func TestFPTCTwoInputVoter(t *testing.T) {
	// A 2-input comparator that masks a single value failure but
	// passes simultaneous value failures.
	s := NewSystem()
	for _, n := range []string{"lane0", "lane1"} {
		if err := s.Add(&Component{Name: n, Outputs: []string{"o"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add(&Component{
		Name: "voter", Inputs: []string{"a", "b"}, Outputs: []string{"o"},
		Rules: []Rule{
			{In: []FailureType{ValueF, ValueF}, Out: []FailureType{ValueF}},
			{In: []FailureType{ValueF, NoFailure}, Out: []FailureType{NoFailure}},
			{In: []FailureType{NoFailure, ValueF}, Out: []FailureType{NoFailure}},
			{In: []FailureType{Any, Any}, Out: []FailureType{NoFailure}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("lane0", "o", "voter", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("lane1", "o", "voter", "b"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Propagate(map[string][]FailureType{"lane0.o": {ValueF}})
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := res["voter.o"]; bad {
		t.Errorf("single lane failure not masked: %v", res)
	}
	res, err = s.Propagate(map[string][]FailureType{"lane0.o": {ValueF}, "lane1.o": {ValueF}})
	if err != nil {
		t.Fatal(err)
	}
	got := res["voter.o"]
	if len(got) != 1 || got[0] != ValueF {
		t.Errorf("double failure masked: %v", res)
	}
}

// Property: the top-event probability always lies in [0,1] and never
// falls below the largest single-cut-set probability.
func TestPropertyTopEventBounds(t *testing.T) {
	f := func(pa, pb, pc uint8) bool {
		a := float64(pa%100) / 100
		b := float64(pb%100) / 100
		c := float64(pc%100) / 100
		tree := Or("top", BasicEvent("a", a), And("g", BasicEvent("b", b), BasicEvent("c", c)))
		p, err := tree.TopEventProbability()
		if err != nil {
			return false
		}
		lower := math.Max(a, b*c)
		return p >= lower-1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FMEDA rates decompose exactly: total = safe + DD + DU.
func TestPropertyFMEDADecomposition(t *testing.T) {
	f := func(rate uint16, sf, dc uint8) bool {
		m := FailureMode{
			Component: "c", Mode: "m",
			RateFIT:            float64(rate),
			SafeFraction:       float64(sf%101) / 100,
			DiagnosticCoverage: float64(dc%101) / 100,
		}
		res, err := EvaluateFMEDA([]FailureMode{m})
		if err != nil {
			return false
		}
		sum := res.SafeFIT + res.DangerousDetectedFIT + res.DangerousUndetectedFIT
		return math.Abs(sum-res.TotalFIT) < 1e-9 &&
			res.SPFM >= -1e-12 && res.SPFM <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FPTC propagation is monotone — injecting more failure
// types never yields fewer failures at any output.
func TestPropertyFPTCMonotone(t *testing.T) {
	f := func(inject1 bool) bool {
		s := buildFPTCChain(t)
		small, err := s.Propagate(map[string][]FailureType{"sensor.out": {LateF}})
		if err != nil {
			return false
		}
		s2 := buildFPTCChain(t)
		big, err := s2.Propagate(map[string][]FailureType{"sensor.out": {LateF, OmissionF}})
		if err != nil {
			return false
		}
		for port, fs := range small {
			have := map[FailureType]bool{}
			for _, f := range big[port] {
				have[f] = true
			}
			for _, f := range fs {
				if !have[f] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the exact inclusion-exclusion top-event probability agrees
// with a deterministic enumeration over the full truth table of basic
// events (exhaustive check on small trees).
func TestPropertyTopEventMatchesEnumeration(t *testing.T) {
	f := func(pa, pb, pc, pd uint8) bool {
		probs := []float64{
			float64(pa%100) / 100, float64(pb%100) / 100,
			float64(pc%100) / 100, float64(pd%100) / 100,
		}
		tree := Or("top",
			And("g1", BasicEvent("a", probs[0]), BasicEvent("b", probs[1])),
			And("g2", BasicEvent("b", probs[1]), BasicEvent("c", probs[2])),
			BasicEvent("d", probs[3]))
		got, err := tree.TopEventProbability()
		if err != nil {
			return false
		}
		// Enumerate all 16 outcomes of (a,b,c,d).
		names := []string{"a", "b", "c", "d"}
		want := 0.0
		for mask := 0; mask < 16; mask++ {
			p := 1.0
			on := map[string]bool{}
			for i, n := range names {
				if mask>>uint(i)&1 == 1 {
					on[n] = true
					p *= probs[i]
				} else {
					p *= 1 - probs[i]
				}
			}
			if (on["a"] && on["b"]) || (on["b"] && on["c"]) || on["d"] {
				want += p
			}
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
