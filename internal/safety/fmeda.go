package safety

import (
	"fmt"
	"sort"
)

// ASIL is an ISO 26262 Automotive Safety Integrity Level.
type ASIL uint8

const (
	// QM means no ASIL target is met (quality management only).
	QM ASIL = iota
	// ASILA is the lowest integrity level.
	ASILA
	// ASILB requires SPFM >= 90%, LFM >= 60%, PMHF < 1e-7/h.
	ASILB
	// ASILC requires SPFM >= 97%, LFM >= 80%, PMHF < 1e-7/h.
	ASILC
	// ASILD requires SPFM >= 99%, LFM >= 90%, PMHF < 1e-8/h.
	ASILD
)

// String names the level.
func (a ASIL) String() string {
	switch a {
	case QM:
		return "QM"
	case ASILA:
		return "ASIL-A"
	case ASILB:
		return "ASIL-B"
	case ASILC:
		return "ASIL-C"
	case ASILD:
		return "ASIL-D"
	default:
		return fmt.Sprintf("ASIL(%d)", uint8(a))
	}
}

// FailureMode is one row of an FMEDA worksheet: a component failure
// mode with its rate and how the architecture handles it.
type FailureMode struct {
	// Component and Mode identify the row.
	Component string
	Mode      string
	// RateFIT is the failure rate in FIT (1 FIT = 1e-9 failures/hour).
	RateFIT float64
	// SafeFraction is the fraction of these failures that cannot
	// violate the safety goal by construction.
	SafeFraction float64
	// DiagnosticCoverage is the fraction of the dangerous remainder
	// that a safety mechanism detects and controls (λ_DD).
	DiagnosticCoverage float64
	// LatentCoverage is the fraction of detected-dangerous faults
	// whose presence is also revealed to the driver/maintenance
	// (multiple-point fault detection), entering the latent metric.
	LatentCoverage float64
}

// Validate checks fractions and rate.
func (m FailureMode) Validate() error {
	if m.RateFIT < 0 {
		return fmt.Errorf("safety: %s/%s negative rate", m.Component, m.Mode)
	}
	for _, f := range []struct {
		v    float64
		name string
	}{
		{m.SafeFraction, "safe fraction"},
		{m.DiagnosticCoverage, "diagnostic coverage"},
		{m.LatentCoverage, "latent coverage"},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("safety: %s/%s %s %g outside [0,1]", m.Component, m.Mode, f.name, f.v)
		}
	}
	return nil
}

// FMEDAResult carries the ISO 26262 hardware architectural metrics.
// Simplifications versus the full standard (documented per DESIGN.md):
// residual faults are the undetected dangerous ones (λ_RF = λ_DU);
// PMHF is approximated by the residual rate; the latent metric counts
// detected-but-unrevealed dangerous faults as latent.
type FMEDAResult struct {
	TotalFIT               float64
	SafeFIT                float64
	DangerousFIT           float64
	DangerousDetectedFIT   float64
	DangerousUndetectedFIT float64
	LatentFIT              float64

	// SPFM is the single-point fault metric:
	// 1 - λ_DU / λ_total.
	SPFM float64
	// LFM is the latent fault metric:
	// 1 - λ_latent / (λ_total - λ_DU).
	LFM float64
	// PMHF is the probabilistic metric for random hardware failures in
	// failures per hour (≈ λ_DU converted from FIT).
	PMHF float64
}

// EvaluateFMEDA folds the worksheet into the architectural metrics.
func EvaluateFMEDA(modes []FailureMode) (*FMEDAResult, error) {
	r := &FMEDAResult{}
	for _, m := range modes {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		r.TotalFIT += m.RateFIT
		safe := m.RateFIT * m.SafeFraction
		dang := m.RateFIT - safe
		dd := dang * m.DiagnosticCoverage
		du := dang - dd
		latent := dd * (1 - m.LatentCoverage)
		r.SafeFIT += safe
		r.DangerousFIT += dang
		r.DangerousDetectedFIT += dd
		r.DangerousUndetectedFIT += du
		r.LatentFIT += latent
	}
	if r.TotalFIT > 0 {
		r.SPFM = 1 - r.DangerousUndetectedFIT/r.TotalFIT
		if denom := r.TotalFIT - r.DangerousUndetectedFIT; denom > 0 {
			r.LFM = 1 - r.LatentFIT/denom
		} else {
			r.LFM = 1
		}
	} else {
		r.SPFM, r.LFM = 1, 1
	}
	r.PMHF = r.DangerousUndetectedFIT * 1e-9
	return r, nil
}

// ASIL determines the highest integrity level whose SPFM/LFM/PMHF
// targets the result meets.
func (r *FMEDAResult) ASIL() ASIL {
	switch {
	case r.SPFM >= 0.99 && r.LFM >= 0.90 && r.PMHF < 1e-8:
		return ASILD
	case r.SPFM >= 0.97 && r.LFM >= 0.80 && r.PMHF < 1e-7:
		return ASILC
	case r.SPFM >= 0.90 && r.LFM >= 0.60 && r.PMHF < 1e-7:
		return ASILB
	case r.PMHF < 1e-6:
		return ASILA
	default:
		return QM
	}
}

// String renders the worksheet summary.
func (r *FMEDAResult) String() string {
	return fmt.Sprintf("total=%.1f FIT safe=%.1f DD=%.1f DU=%.1f latent=%.1f SPFM=%.2f%% LFM=%.2f%% PMHF=%.3g/h -> %s",
		r.TotalFIT, r.SafeFIT, r.DangerousDetectedFIT, r.DangerousUndetectedFIT, r.LatentFIT,
		r.SPFM*100, r.LFM*100, r.PMHF, r.ASIL())
}

// Worksheet is a buildable FMEDA table with per-component grouping.
type Worksheet struct {
	Modes []FailureMode
}

// Add appends a row.
func (w *Worksheet) Add(m FailureMode) { w.Modes = append(w.Modes, m) }

// ByComponent groups rates per component, sorted by descending
// dangerous-undetected contribution — the FMEDA weak-spot list.
func (w *Worksheet) ByComponent() []ComponentContribution {
	agg := map[string]*ComponentContribution{}
	for _, m := range w.Modes {
		c := agg[m.Component]
		if c == nil {
			c = &ComponentContribution{Component: m.Component}
			agg[m.Component] = c
		}
		dang := m.RateFIT * (1 - m.SafeFraction)
		c.TotalFIT += m.RateFIT
		c.DangerousUndetectedFIT += dang * (1 - m.DiagnosticCoverage)
	}
	out := make([]ComponentContribution, 0, len(agg))
	for _, c := range agg {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DangerousUndetectedFIT != out[j].DangerousUndetectedFIT {
			return out[i].DangerousUndetectedFIT > out[j].DangerousUndetectedFIT
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// ComponentContribution is one row of the weak-spot list.
type ComponentContribution struct {
	Component              string
	TotalFIT               float64
	DangerousUndetectedFIT float64
}
