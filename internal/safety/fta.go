// Package safety implements the established system-level dependability
// analyses the paper surveys in Sec. 2.1: Fault Tree Analysis (FTA)
// with minimal cut sets and top-event probability, Failure Mode
// Effects & Diagnostic Analysis (FMEDA) with the ISO 26262 hardware
// architectural metrics (SPFM, LFM, PMHF) and ASIL determination, and
// the Fault Propagation and Transformation Calculus (FPTC) of
// Wallace [4] for component-network failure behaviour.
//
// These are the analytic baselines the error-effect simulation is
// compared against (experiment E7 checks that a fault tree synthesized
// from simulation matches the analytic one built here).
package safety

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GateType is the logic of an intermediate fault-tree node.
type GateType uint8

const (
	// GateBasic marks a leaf (basic event) node.
	GateBasic GateType = iota
	// GateAnd fails when all children fail.
	GateAnd
	// GateOr fails when any child fails.
	GateOr
	// GateKofN fails when at least K children fail.
	GateKofN
)

// String names the gate type.
func (g GateType) String() string {
	switch g {
	case GateBasic:
		return "basic"
	case GateAnd:
		return "AND"
	case GateOr:
		return "OR"
	case GateKofN:
		return "K-of-N"
	default:
		return fmt.Sprintf("GateType(%d)", uint8(g))
	}
}

// Node is one fault-tree node. Basic events carry a probability (per
// mission, or per hour — the tree is unit-agnostic); gates combine
// children. The same basic event (same name) may appear under several
// gates; cut-set analysis handles the repetition correctly.
type Node struct {
	Name     string
	Gate     GateType
	Prob     float64 // basic events only
	K        int     // K-of-N gates only
	Children []*Node
}

// BasicEvent creates a leaf with failure probability p.
func BasicEvent(name string, p float64) *Node {
	return &Node{Name: name, Gate: GateBasic, Prob: p}
}

// And creates an AND gate.
func And(name string, children ...*Node) *Node {
	return &Node{Name: name, Gate: GateAnd, Children: children}
}

// Or creates an OR gate.
func Or(name string, children ...*Node) *Node {
	return &Node{Name: name, Gate: GateOr, Children: children}
}

// KofN creates a voting gate that fails when at least k children fail.
func KofN(name string, k int, children ...*Node) *Node {
	return &Node{Name: name, Gate: GateKofN, K: k, Children: children}
}

// Validate checks structural sanity of the tree.
func (n *Node) Validate() error {
	switch n.Gate {
	case GateBasic:
		if n.Prob < 0 || n.Prob > 1 {
			return fmt.Errorf("safety: basic event %s probability %g outside [0,1]", n.Name, n.Prob)
		}
		if len(n.Children) != 0 {
			return fmt.Errorf("safety: basic event %s has children", n.Name)
		}
	case GateAnd, GateOr:
		if len(n.Children) == 0 {
			return fmt.Errorf("safety: gate %s has no children", n.Name)
		}
	case GateKofN:
		if n.K < 1 || n.K > len(n.Children) {
			return fmt.Errorf("safety: gate %s K=%d outside 1..%d", n.Name, n.K, len(n.Children))
		}
	}
	for _, c := range n.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CutSet is a set of basic-event names whose joint occurrence causes
// the top event. It is stored sorted.
type CutSet []string

// key renders the canonical form for set comparison.
func (c CutSet) key() string { return strings.Join(c, "\x00") }

// contains reports whether c is a superset of other.
func (c CutSet) containsAll(other CutSet) bool {
	i := 0
	for _, want := range other {
		for i < len(c) && c[i] < want {
			i++
		}
		if i >= len(c) || c[i] != want {
			return false
		}
	}
	return true
}

// MinimalCutSets computes the tree's minimal cut sets by downward
// expansion (MOCUS-style) with absorption.
func (n *Node) MinimalCutSets() []CutSet {
	sets := n.cutSets()
	return minimize(sets)
}

// cutSets expands recursively: a basic event is one singleton set; an
// OR gate unions child expansions; an AND gate forms the cross
// product; a K-of-N gate ORs the AND of every K-subset.
func (n *Node) cutSets() []CutSet {
	switch n.Gate {
	case GateBasic:
		return []CutSet{{n.Name}}
	case GateOr:
		var out []CutSet
		for _, c := range n.Children {
			out = append(out, c.cutSets()...)
		}
		return out
	case GateAnd:
		out := []CutSet{{}}
		for _, c := range n.Children {
			out = crossProduct(out, c.cutSets())
		}
		return out
	case GateKofN:
		var out []CutSet
		idx := make([]int, n.K)
		var choose func(start, depth int)
		choose = func(start, depth int) {
			if depth == n.K {
				subset := []CutSet{{}}
				for _, i := range idx {
					subset = crossProduct(subset, n.Children[i].cutSets())
				}
				out = append(out, subset...)
				return
			}
			for i := start; i <= len(n.Children)-(n.K-depth); i++ {
				idx[depth] = i
				choose(i+1, depth+1)
			}
		}
		choose(0, 0)
		return out
	default:
		return nil
	}
}

// crossProduct unions every pair of sets from a and b.
func crossProduct(a, b []CutSet) []CutSet {
	out := make([]CutSet, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			merged := map[string]bool{}
			for _, e := range x {
				merged[e] = true
			}
			for _, e := range y {
				merged[e] = true
			}
			cs := make(CutSet, 0, len(merged))
			for e := range merged {
				cs = append(cs, e)
			}
			sort.Strings(cs)
			out = append(out, cs)
		}
	}
	return out
}

// MinimizeCutSets removes duplicate and superset cut sets from an
// externally gathered list (e.g. failing fault scenarios observed in
// simulation). Each input set must be sorted.
func MinimizeCutSets(sets []CutSet) []CutSet {
	return minimize(sets)
}

// minimize removes duplicates and supersets.
func minimize(sets []CutSet) []CutSet {
	// Dedup.
	seen := map[string]CutSet{}
	for _, s := range sets {
		seen[s.key()] = s
	}
	uniq := make([]CutSet, 0, len(seen))
	for _, s := range seen {
		uniq = append(uniq, s)
	}
	// Sort by size then lexicographically for determinism.
	sort.Slice(uniq, func(i, j int) bool {
		if len(uniq[i]) != len(uniq[j]) {
			return len(uniq[i]) < len(uniq[j])
		}
		return uniq[i].key() < uniq[j].key()
	})
	var out []CutSet
	for _, s := range uniq {
		minimal := true
		for _, m := range out {
			if s.containsAll(m) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

// basicProbs collects probabilities of all basic events by name
// (repeated events must agree).
func (n *Node) basicProbs(into map[string]float64) error {
	if n.Gate == GateBasic {
		if p, ok := into[n.Name]; ok && p != n.Prob {
			return fmt.Errorf("safety: basic event %s has conflicting probabilities %g and %g", n.Name, p, n.Prob)
		}
		into[n.Name] = n.Prob
		return nil
	}
	for _, c := range n.Children {
		if err := c.basicProbs(into); err != nil {
			return err
		}
	}
	return nil
}

// TopEventProbability computes the probability of the top event from
// the minimal cut sets assuming independent basic events. For up to
// 20 cut sets the inclusion-exclusion expansion is exact; beyond that
// the min-cut upper bound 1-Π(1-P(MCS_i)) is returned (exact when cut
// sets are disjoint, conservative otherwise).
func (n *Node) TopEventProbability() (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	probs := map[string]float64{}
	if err := n.basicProbs(probs); err != nil {
		return 0, err
	}
	mcs := n.MinimalCutSets()
	if len(mcs) <= 20 {
		return inclusionExclusion(mcs, probs), nil
	}
	// Upper bound.
	q := 1.0
	for _, cs := range mcs {
		p := 1.0
		for _, e := range cs {
			p *= probs[e]
		}
		q *= 1 - p
	}
	return 1 - q, nil
}

// inclusionExclusion sums P(union of cut sets) exactly.
func inclusionExclusion(mcs []CutSet, probs map[string]float64) float64 {
	total := 0.0
	n := len(mcs)
	for mask := 1; mask < 1<<uint(n); mask++ {
		union := map[string]bool{}
		bits := 0
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				bits++
				for _, e := range mcs[i] {
					union[e] = true
				}
			}
		}
		p := 1.0
		for e := range union {
			p *= probs[e]
		}
		if bits%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	return total
}

// Importance ranks basic events by Fussell-Vesely importance: the
// fraction of top-event probability flowing through cut sets that
// contain the event. It returns events sorted by descending
// importance — the analytic "weak spot" list (Sec. 3.4).
func (n *Node) Importance() ([]EventImportance, error) {
	probs := map[string]float64{}
	if err := n.basicProbs(probs); err != nil {
		return nil, err
	}
	top, err := n.TopEventProbability()
	if err != nil {
		return nil, err
	}
	mcs := n.MinimalCutSets()
	contrib := map[string]float64{}
	for _, cs := range mcs {
		p := 1.0
		for _, e := range cs {
			p *= probs[e]
		}
		for _, e := range cs {
			contrib[e] += p
		}
	}
	out := make([]EventImportance, 0, len(contrib))
	for e, c := range contrib {
		fv := 0.0
		if top > 0 {
			fv = math.Min(1, c/top)
		}
		out = append(out, EventImportance{Event: e, FussellVesely: fv})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FussellVesely != out[j].FussellVesely {
			return out[i].FussellVesely > out[j].FussellVesely
		}
		return out[i].Event < out[j].Event
	})
	return out, nil
}

// EventImportance is one entry of the importance ranking.
type EventImportance struct {
	Event         string
	FussellVesely float64
}

// String renders the tree as an indented listing.
func (n *Node) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		pad := strings.Repeat("  ", depth)
		switch n.Gate {
		case GateBasic:
			fmt.Fprintf(&b, "%s%s p=%g\n", pad, n.Name, n.Prob)
		case GateKofN:
			fmt.Fprintf(&b, "%s%s [%d-of-%d]\n", pad, n.Name, n.K, len(n.Children))
		default:
			fmt.Fprintf(&b, "%s%s [%s]\n", pad, n.Name, n.Gate)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
