package safety

import (
	"fmt"
	"sort"
	"strings"
)

// FailureType is an FPTC failure class flowing along a connection.
// The calculus is open-ended; these are the classic classes plus "*"
// as the rule-pattern wildcard (matches any type including NoFailure)
// and "v" as the rule variable (matches any real failure and carries
// it through).
type FailureType string

// Standard FPTC failure classes.
const (
	// NoFailure is the fault-free token.
	NoFailure FailureType = "none"
	// OmissionF: an expected output is missing.
	OmissionF FailureType = "omission"
	// CommissionF: an unexpected output occurs.
	CommissionF FailureType = "commission"
	// ValueF: the output value is wrong.
	ValueF FailureType = "value"
	// EarlyF: the output is too early.
	EarlyF FailureType = "early"
	// LateF: the output is too late.
	LateF FailureType = "late"
)

// Wildcard and variable tokens for rule patterns.
const (
	// Any matches any failure type, including NoFailure.
	Any FailureType = "*"
	// Var matches any real failure and substitutes it on the output
	// side (propagation without transformation).
	Var FailureType = "v"
)

// Rule is one FPTC clause: if the component's inputs carry failure
// types matching In (positionally), its outputs carry Out. A component
// is a "source" of failures when a rule matches all-none inputs and
// emits a failure, a "sink" when failures map to none, a "propagator"
// via Var, and a "transformer" otherwise.
type Rule struct {
	In  []FailureType
	Out []FailureType
}

// Component is one node of the FPTC network.
type Component struct {
	Name    string
	Inputs  []string
	Outputs []string
	Rules   []Rule
}

// port names one component port.
type port struct {
	comp string
	name string
}

func (p port) String() string { return p.comp + "." + p.name }

// Connection links a component output to a component input.
type Connection struct {
	FromComp, FromPort string
	ToComp, ToPort     string
}

// System is an FPTC component network.
type System struct {
	comps map[string]*Component
	conns []Connection
}

// NewSystem creates an empty network.
func NewSystem() *System {
	return &System{comps: make(map[string]*Component)}
}

// Add registers a component.
func (s *System) Add(c *Component) error {
	if _, dup := s.comps[c.Name]; dup {
		return fmt.Errorf("safety: duplicate FPTC component %q", c.Name)
	}
	for _, r := range c.Rules {
		if len(r.In) != len(c.Inputs) || len(r.Out) != len(c.Outputs) {
			return fmt.Errorf("safety: FPTC component %q rule arity mismatch", c.Name)
		}
	}
	s.comps[c.Name] = c
	return nil
}

// Connect links from.comp/out to to.comp/in.
func (s *System) Connect(fromComp, fromPort, toComp, toPort string) error {
	f, ok := s.comps[fromComp]
	if !ok {
		return fmt.Errorf("safety: FPTC connect: unknown component %q", fromComp)
	}
	t, ok := s.comps[toComp]
	if !ok {
		return fmt.Errorf("safety: FPTC connect: unknown component %q", toComp)
	}
	if !contains(f.Outputs, fromPort) {
		return fmt.Errorf("safety: FPTC connect: %s has no output %q", fromComp, fromPort)
	}
	if !contains(t.Inputs, toPort) {
		return fmt.Errorf("safety: FPTC connect: %s has no input %q", toComp, toPort)
	}
	s.conns = append(s.conns, Connection{fromComp, fromPort, toComp, toPort})
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// tokenSet is the set of failure types seen on a port.
type tokenSet map[FailureType]bool

func (ts tokenSet) add(f FailureType) bool {
	if ts[f] {
		return false
	}
	ts[f] = true
	return true
}

// Propagate runs the FPTC fixpoint: starting from injected failure
// types on component outputs (sources), tokens flow along connections
// and through component rules until no port set grows. It returns the
// failure types present on every output port, keyed "comp.port".
//
// The fixpoint is monotone over sets, so it terminates in at most
// |ports| × |types| iterations.
func (s *System) Propagate(injected map[string][]FailureType) (map[string][]FailureType, error) {
	// Token sets per output port and per input port.
	outTok := map[port]tokenSet{}
	inTok := map[port]tokenSet{}
	for name, c := range s.comps {
		for _, o := range c.Outputs {
			outTok[port{name, o}] = tokenSet{NoFailure: true}
		}
		for _, i := range c.Inputs {
			inTok[port{name, i}] = tokenSet{NoFailure: true}
		}
	}
	for key, fs := range injected {
		idx := strings.LastIndex(key, ".")
		if idx < 0 {
			return nil, fmt.Errorf("safety: FPTC injection key %q not comp.port", key)
		}
		p := port{key[:idx], key[idx+1:]}
		ts, ok := outTok[p]
		if !ok {
			return nil, fmt.Errorf("safety: FPTC injection on unknown output %q", key)
		}
		for _, f := range fs {
			ts.add(f)
		}
	}

	changed := true
	for changed {
		changed = false
		// Flow along connections.
		for _, c := range s.conns {
			src := outTok[port{c.FromComp, c.FromPort}]
			dst := inTok[port{c.ToComp, c.ToPort}]
			for f := range src {
				if dst.add(f) {
					changed = true
				}
			}
		}
		// Apply component rules.
		for name, comp := range s.comps {
			if len(comp.Inputs) == 0 {
				continue
			}
			// Enumerate input combinations present.
			combos := [][]FailureType{{}}
			for _, in := range comp.Inputs {
				ts := inTok[port{name, in}]
				var next [][]FailureType
				for _, prefix := range combos {
					for f := range ts {
						row := append(append([]FailureType{}, prefix...), f)
						next = append(next, row)
					}
				}
				combos = next
			}
			for _, combo := range combos {
				outs := comp.apply(combo)
				for i, o := range comp.Outputs {
					if outTok[port{name, o}].add(outs[i]) {
						changed = true
					}
				}
			}
		}
	}

	result := map[string][]FailureType{}
	for p, ts := range outTok {
		var fs []FailureType
		for f := range ts {
			if f != NoFailure {
				fs = append(fs, f)
			}
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		if len(fs) > 0 {
			result[p.String()] = fs
		}
	}
	return result, nil
}

// apply finds the first rule matching the input combination and
// returns the output types; the default behaviour with no matching
// rule is all-propagation of the worst input (Var semantics), or
// NoFailure when inputs are clean.
func (c *Component) apply(in []FailureType) []FailureType {
	for _, r := range c.Rules {
		binding, ok := matchRule(r.In, in)
		if !ok {
			continue
		}
		out := make([]FailureType, len(r.Out))
		for i, o := range r.Out {
			if o == Var {
				out[i] = binding
			} else {
				out[i] = o
			}
		}
		return out
	}
	// Default: propagate the first real failure to all outputs.
	def := NoFailure
	for _, f := range in {
		if f != NoFailure {
			def = f
			break
		}
	}
	out := make([]FailureType, len(c.Outputs))
	for i := range out {
		out[i] = def
	}
	return out
}

// matchRule matches a rule pattern against concrete inputs and
// returns the Var binding (first variable match) when used.
func matchRule(pattern, in []FailureType) (binding FailureType, ok bool) {
	binding = NoFailure
	for i, p := range pattern {
		switch p {
		case Any:
			// matches anything
		case Var:
			if in[i] == NoFailure {
				return NoFailure, false
			}
			if binding == NoFailure {
				binding = in[i]
			}
		default:
			if in[i] != p {
				return NoFailure, false
			}
		}
	}
	return binding, true
}
