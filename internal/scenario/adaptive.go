// Adaptive exploration: the outcome-signature novelty strategy the
// adaptive campaign engine (stressor.AdaptiveCampaign) drives. Every
// simulated run carries a 64-bit equivalence-class signature (final
// model state folded with the classification — sim.StateSignature /
// sim.MixSignature); a signature never seen before means the run ended
// somewhere new in behavior space, and the strategy reacts by mutating
// the scenario that got there — retimed injections, neighboring sites,
// neighboring models, and fault-pair escalation — instead of spending
// budget re-discovering outcomes it already has. This is the feedback
// arc of the paper's Fig. 3 loop made concrete: the error-effect
// simulation's observations steer the next injections.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/sim"
)

// SignatureIndex tracks the distinct outcome signatures a campaign has
// produced. The zero signature means "not computed" and is never
// novel. Not safe for concurrent use — the adaptive engine serializes
// Observe delivery, which is what makes novelty deterministic.
type SignatureIndex struct {
	seen map[uint64]struct{}
}

// NewSignatureIndex returns an empty index.
func NewSignatureIndex() *SignatureIndex {
	return &SignatureIndex{seen: make(map[uint64]struct{})}
}

// Note records sig and reports whether it was novel (first occurrence
// of a non-zero signature).
func (x *SignatureIndex) Note(sig uint64) bool {
	if sig == 0 {
		return false
	}
	if _, ok := x.seen[sig]; ok {
		return false
	}
	x.seen[sig] = struct{}{}
	return true
}

// Unique reports how many distinct non-zero signatures were noted.
func (x *SignatureIndex) Unique() int { return len(x.seen) }

// Mutator derives neighbor descriptors from a parent, navigating the
// valid (target, model) lattice of a fault universe rather than a free
// cross-product — a universe only enumerates combinations its runner
// can actually inject, and a mutant outside it would just die as a
// campaign error. Five moves, all content-preserving except for the
// mutated dimension:
//
//   - retime: same fault, new start instant (the one dimension not
//     bounded by the universe — drawn from Starts when provided, e.g.
//     ATPG-derived activation corners, else uniformly from [0, Window))
//   - remodel: another universe descriptor at the same target
//   - retarget: another universe descriptor with the same model
//   - rebit: same target and model, another bit position (bit-level
//     fault models only; bits 0-7, the range every injector accepts —
//     byte-addressed TLM memories reject anything higher)
//   - reparam: same target and model, the analog parameter scaled by a
//     random factor (parameterized models only — drift magnitudes the
//     finite universe cannot enumerate)
//
// The bit and parameter moves are what let the adaptive loop out-yield
// blind sampling: they explore fault dimensions the fixed universe
// quantizes to a single representative value.
type Mutator struct {
	universe []fault.Descriptor
	byTarget map[string][]int
	byModel  map[fault.Model][]int
	rng      *rand.Rand
	serial   int
	// prov maps a mutant name to the (parent model, move) arm that
	// created it until the outcome comes back and Credit resolves it
	// into trials/wins.
	prov map[string]creditKey
	// trials/wins drive the novelty-credit move selection: each
	// observed mutant counts a trial for its (model, move) arm, each
	// novel one a win, and chooseMove draws moves weighted by
	// Laplace-smoothed success rate. The arm is model-conditioned
	// because move value is model-dependent: retiming a permanent
	// stuck-at converges to the same absorbing state (the arm fades),
	// while retiming a timed bus fault or rescaling an analog drift
	// keeps finding new behavior (those arms take over the budget).
	trials, wins map[creditKey]int

	// Window bounds retime draws when Starts is empty; zero disables
	// retiming entirely.
	Window sim.Time
	// Starts, when non-empty, is the retime candidate pool (ATPG
	// corners, coverage-hole instants). Draws are uniform over it.
	Starts []sim.Time
}

// NewMutator indexes a universe for mutation. The rng is the sole
// source of randomness, so a fixed seed makes the mutation stream
// deterministic.
func NewMutator(universe []fault.Descriptor, rng *rand.Rand) *Mutator {
	m := &Mutator{
		universe: universe,
		byTarget: make(map[string][]int),
		byModel:  make(map[fault.Model][]int),
		rng:      rng,
		prov:     make(map[string]creditKey),
		trials:   make(map[creditKey]int),
		wins:     make(map[creditKey]int),
	}
	for i, d := range universe {
		m.byTarget[d.Target] = append(m.byTarget[d.Target], i)
		m.byModel[d.Model] = append(m.byModel[d.Model], i)
	}
	return m
}

// retime returns a fresh start instant, or d.Start when retiming is
// disabled.
func (m *Mutator) retime(d fault.Descriptor) sim.Time {
	if len(m.Starts) > 0 {
		return m.Starts[m.rng.Intn(len(m.Starts))]
	}
	if m.Window > 0 {
		return sim.Time(m.rng.Int63n(int64(m.Window)))
	}
	return d.Start
}

// pick draws a universe descriptor from idxs that differs from parent
// in target or model, returning ok=false when none exists.
func (m *Mutator) pick(idxs []int, parent fault.Descriptor) (fault.Descriptor, bool) {
	if len(idxs) == 0 {
		return fault.Descriptor{}, false
	}
	for retry := 0; retry < 4; retry++ {
		d := m.universe[idxs[m.rng.Intn(len(idxs))]]
		if d.Target != parent.Target || d.Model != parent.Model {
			return d, true
		}
	}
	return fault.Descriptor{}, false
}

// Mutation moves.
const (
	moveRetime = iota
	moveRemodel
	moveRetarget
	moveRebit
	moveReparam
	numMoves
)

// creditKey identifies one bandit arm: a mutation move applied to a
// parent of a given fault model.
type creditKey struct {
	md fault.Model
	mv int
}

// bitAddressed reports whether the model interprets Descriptor.Bit.
func bitAddressed(md fault.Model) bool {
	switch md {
	case fault.BitFlip, fault.StuckAt0, fault.StuckAt1:
		return true
	}
	return false
}

// chooseMove draws one move applicable to parent, weighted by the
// (parent model, move) arm's observed novelty yield
// ((wins+0.5)/(trials+1) — optimistic for unexplored arms, sharply
// suppressed after repeated failures). ok=false when no move applies.
func (m *Mutator) chooseMove(parent fault.Descriptor) (int, bool) {
	var moves []int
	var weights []float64
	add := func(mv int) {
		k := creditKey{parent.Model, mv}
		moves = append(moves, mv)
		weights = append(weights, (float64(m.wins[k])+0.5)/(float64(m.trials[k])+1))
	}
	if len(m.Starts) > 0 || m.Window > 0 {
		add(moveRetime)
	}
	if len(m.byTarget[parent.Target]) > 1 {
		add(moveRemodel)
	}
	if len(m.byModel[parent.Model]) > 1 {
		add(moveRetarget)
	}
	if bitAddressed(parent.Model) {
		add(moveRebit)
	}
	if parent.Param != 0 {
		add(moveReparam)
	}
	if len(moves) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	r := m.rng.Float64() * sum
	for i, w := range weights {
		if r < w {
			return moves[i], true
		}
		r -= w
	}
	return moves[len(moves)-1], true
}

// Credit resolves a mutant's outcome into its move's trial/win record
// (no-op for non-mutant names). Novelty calls this for every observed
// fault, novel or not — that asymmetry is the learning signal.
func (m *Mutator) Credit(name string, novel bool) {
	k, ok := m.prov[name]
	if !ok {
		return
	}
	delete(m.prov, name)
	m.trials[k]++
	if novel {
		m.wins[k]++
	}
}

// Mutate derives up to n neighbors of parent, drawing moves by their
// novelty credit. Fewer than n come back when the lattice offers no
// neighbor for a drawn move (single-model universe, no window,
// non-bit non-parameterized model).
func (m *Mutator) Mutate(parent fault.Descriptor, n int) []fault.Descriptor {
	var out []fault.Descriptor
	for i := 0; i < n; i++ {
		mv, any := m.chooseMove(parent)
		if !any {
			break
		}
		var d fault.Descriptor
		ok := false
		switch mv {
		case moveRetime: // same fault, new start instant
			d, ok = parent, true
			d.Start = m.retime(parent)
		case moveRemodel: // same target, different universe entry
			if d, ok = m.pick(m.byTarget[parent.Target], parent); ok {
				d.Start = m.retime(d)
			}
		case moveRetarget: // same model, different site
			if d, ok = m.pick(m.byModel[parent.Model], parent); ok {
				d.Start = m.retime(d)
			}
		case moveRebit: // same cell, another bit position
			d, ok = parent, true
			d.Bit = uint(m.rng.Intn(8))
			if d.Bit == parent.Bit {
				d.Bit = (d.Bit + 1) % 8
			}
			d.Start = m.retime(d)
		case moveReparam: // same cell, scaled analog parameter
			d, ok = parent, true
			d.Param = parent.Param * (0.25 + 3.75*m.rng.Float64())
			d.Start = m.retime(d)
		}
		if !ok {
			continue
		}
		m.serial++
		d.Name = fmt.Sprintf("%s~m%d", parent.Name, m.serial)
		m.prov[d.Name] = creditKey{parent.Model, mv}
		out = append(out, d)
	}
	return out
}

// Novelty is the adaptive strategy: seed the whole universe first
// (exhaustive single-fault coverage is the floor — it is what Monte
// Carlo squanders budget failing to reach), then spend the remaining
// budget on descendants of runs whose signatures were novel. Novel
// outcomes trigger mutation (via the Mutator lattice moves) and pair
// escalation — the novel descriptor combined with an earlier novel one,
// probing dual-point interactions outside the single-fault universe.
// When the mutation queue runs dry before the budget does (pipeline
// lag, barren region), Next falls back to mutating the novel pool
// round-robin so the scenario stream never stalls.
//
// Determinism: all randomness flows from the constructor's rng, and
// the adaptive engine delivers Observe calls in proposal order, so a
// fixed seed yields one canonical scenario stream regardless of worker
// count.
type Novelty struct {
	universe []fault.Descriptor
	budget   int
	produced int
	seedNext int
	queue    []fault.Scenario
	sigs     *SignatureIndex
	mut      *Mutator
	novel    []fault.Descriptor
	rrNovel  int // fallback round-robin cursor
	pairRot  int // pair-escalation partner cursor

	// MutantsPerNovel is how many lattice mutants each novel outcome
	// enqueues (default 3, one per move kind).
	MutantsPerNovel int
	// MaxQueue bounds the pending-scenario queue so a novelty burst
	// cannot grow memory without bound; excess descendants are dropped
	// oldest-parent-first (default 1024).
	MaxQueue int
}

// NewNovelty creates the strategy over a universe with a total
// proposal budget. The rng seeds both mutation and retiming; Window
// and Starts configure the mutator's retime move.
func NewNovelty(universe []fault.Descriptor, budget int, rng *rand.Rand) *Novelty {
	return &Novelty{
		universe:        universe,
		budget:          budget,
		sigs:            NewSignatureIndex(),
		mut:             NewMutator(universe, rng),
		MutantsPerNovel: 3,
		MaxQueue:        1024,
	}
}

// Mutator exposes the strategy's mutator for retime configuration
// (Window, Starts).
func (n *Novelty) Mutator() *Mutator { return n.mut }

// UniqueSignatures reports how many distinct outcome signatures the
// strategy has observed.
func (n *Novelty) UniqueSignatures() int { return n.sigs.Unique() }

// Next implements Strategy.
func (n *Novelty) Next() (fault.Scenario, bool) {
	if n.produced >= n.budget {
		return fault.Scenario{}, false
	}
	n.produced++
	// Phase 1: the universe itself, in order.
	if n.seedNext < len(n.universe) {
		d := n.universe[n.seedNext]
		n.seedNext++
		return fault.Single(d), true
	}
	// Phase 2: novelty-directed descendants, newest first — a novel
	// outcome's own descendants are probed before older, staler ones
	// (depth-first novelty chasing, the schedule coverage-guided
	// fuzzers converge on).
	if len(n.queue) > 0 {
		sc := n.queue[len(n.queue)-1]
		n.queue = n.queue[:len(n.queue)-1]
		sc.ID = fmt.Sprintf("nv-%d", n.produced)
		return sc, true
	}
	// Fallback: the queue drained (Observe feedback lags the proposal
	// window, or mutation went barren) — keep probing around the novel
	// pool, or failing that the universe, round-robin.
	pool := n.novel
	if len(pool) == 0 {
		pool = n.universe
	}
	if len(pool) == 0 {
		n.produced--
		return fault.Scenario{}, false
	}
	parent := pool[n.rrNovel%len(pool)]
	n.rrNovel++
	for _, d := range n.mut.Mutate(parent, 1) {
		return fault.Scenario{ID: fmt.Sprintf("nv-%d", n.produced), Faults: []fault.Descriptor{d}}, true
	}
	// Mutation-disabled corner (no window, single-cell universe):
	// re-propose the parent itself rather than stalling the stream.
	return fault.Scenario{ID: fmt.Sprintf("nv-%d", n.produced), Faults: []fault.Descriptor{parent}}, true
}

// enqueue appends a descendant scenario, honoring MaxQueue.
func (n *Novelty) enqueue(sc fault.Scenario) {
	if n.MaxQueue > 0 && len(n.queue) >= n.MaxQueue {
		return
	}
	n.queue = append(n.queue, sc)
}

// Observe implements Strategy: every outcome credits the mutation
// move that produced it (the bandit's learning signal); novel
// signatures additionally spawn descendants.
func (n *Novelty) Observe(o fault.Outcome) {
	novel := n.sigs.Note(o.Signature)
	for _, d := range o.Scenario.Faults {
		n.mut.Credit(d.Name, novel)
	}
	if !novel {
		return
	}
	for _, d := range o.Scenario.Faults {
		// Lattice mutants of the descriptor that reached a new outcome.
		for _, m := range n.mut.Mutate(d, n.MutantsPerNovel) {
			n.enqueue(fault.Scenario{Faults: []fault.Descriptor{m}})
		}
		// Pair escalation: combine with an earlier novel descriptor —
		// dual-point scenarios reach behavior the single-fault universe
		// cannot, which is where unique-outcome yield past the
		// exhaustive floor comes from.
		if len(n.novel) > 0 {
			p := n.novel[n.pairRot%len(n.novel)]
			n.pairRot++
			if p.Target != d.Target || p.Model != d.Model || p.Start != d.Start {
				a, b := d, p
				a.Name += "+0"
				b.Name += "+1"
				n.enqueue(fault.Scenario{Faults: []fault.Descriptor{a, b}})
			}
		}
		n.novel = append(n.novel, d)
	}
}

// HolesFirst reorders a universe so descriptors covering uninjected
// (site, model) cells of a fault-space coverage model come first —
// coverage-closure work before re-injection. The order is stable
// within each partition, so a nil/empty fault space is the identity.
func HolesFirst(universe []fault.Descriptor, fs *coverage.FaultSpace) []fault.Descriptor {
	if fs == nil {
		return universe
	}
	holes := make(map[coverage.SiteModelKey]bool)
	for _, k := range fs.Holes() {
		holes[k] = true
	}
	if len(holes) == 0 {
		return universe
	}
	out := make([]fault.Descriptor, 0, len(universe))
	var rest []fault.Descriptor
	for _, d := range universe {
		if holes[coverage.SiteModelKey{Site: d.Target, Model: d.Model.String()}] {
			out = append(out, d)
		} else {
			rest = append(rest, d)
		}
	}
	return append(out, rest...)
}

// StartsFromCorpus maps concolic-exploration input vectors (e.g.
// symex.Exploration.Corpus) to injection instants inside [0, window):
// corpus values are scaled proportionally over the window (value v of
// observed maximum mx lands at window*v/(mx+1)), so the corners the
// solver found spread across the whole horizon instead of clustering
// in the first few ticks. The result is deduplicated and sorted, so
// equal corpora yield equal retime pools — this is how ATPG-style
// activation analysis seeds the adaptive mutator without the scenario
// package importing the symbolic engine.
func StartsFromCorpus(corpus [][]int64, window sim.Time) []sim.Time {
	if window <= 0 {
		return nil
	}
	var mx int64
	for _, vec := range corpus {
		for _, v := range vec {
			if v < 0 {
				v = -v
			}
			if v > mx {
				mx = v
			}
		}
	}
	seen := make(map[sim.Time]bool)
	var out []sim.Time
	for _, vec := range corpus {
		for _, v := range vec {
			if v < 0 {
				v = -v
			}
			t := sim.Time(float64(window) * float64(v) / float64(mx+1))
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
