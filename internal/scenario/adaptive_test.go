package scenario

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/sim"
)

func TestSignatureIndex(t *testing.T) {
	x := NewSignatureIndex()
	if x.Note(0) {
		t.Error("zero signature must never be novel")
	}
	if !x.Note(7) || x.Note(7) {
		t.Error("first occurrence novel, second not")
	}
	if !x.Note(9) {
		t.Error("distinct signature must be novel")
	}
	if x.Unique() != 2 {
		t.Errorf("Unique = %d, want 2", x.Unique())
	}
}

// TestMutatorStaysOnLattice: every mutant's (target, model) pair must
// exist in the universe — mutation navigates valid combinations, it
// does not invent injectable sites.
func TestMutatorStaysOnLattice(t *testing.T) {
	u := universe(4)
	valid := map[string]bool{}
	for _, d := range u {
		valid[d.Target+"/"+d.Model.String()] = true
	}
	m := NewMutator(u, rand.New(rand.NewSource(5)))
	m.Window = sim.MS(2)
	for _, parent := range u {
		for _, mut := range m.Mutate(parent, 9) {
			if !valid[mut.Target+"/"+mut.Model.String()] {
				t.Fatalf("mutant %s/%s off the universe lattice", mut.Target, mut.Model)
			}
			if mut.Start >= sim.MS(2) {
				t.Fatalf("mutant start %v outside window", mut.Start)
			}
			if mut.Name == parent.Name {
				t.Fatalf("mutant kept parent name %q", mut.Name)
			}
		}
	}
}

func TestMutatorUsesStartsPool(t *testing.T) {
	u := universe(2)
	m := NewMutator(u, rand.New(rand.NewSource(6)))
	m.Starts = []sim.Time{sim.US(3), sim.US(17)}
	ok := map[sim.Time]bool{sim.US(3): true, sim.US(17): true}
	for _, mut := range m.Mutate(u[0], 12) {
		if !ok[mut.Start] {
			t.Fatalf("mutant start %v not drawn from the Starts pool", mut.Start)
		}
	}
}

// driveNovelty runs a Novelty strategy against a synthetic run
// function whose signature is a content hash — deterministic feedback.
func driveNovelty(n *Novelty) []fault.Scenario {
	var out []fault.Scenario
	for {
		sc, ok := n.Next()
		if !ok {
			return out
		}
		out = append(out, sc)
		sig := uint64(0)
		for _, d := range sc.Faults {
			sig = sim.MixSignature(sig, uint64(len(d.Target)), uint64(d.Model), uint64(d.Start))
		}
		n.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked, Signature: sig})
	}
}

func TestNoveltySeedsUniverseFirstThenBudget(t *testing.T) {
	u := universe(3)
	budget := len(u) + 10
	n := NewNovelty(u, budget, rand.New(rand.NewSource(7)))
	n.Mutator().Window = sim.MS(1)
	got := driveNovelty(n)
	if len(got) != budget {
		t.Fatalf("produced %d, want budget %d", len(got), budget)
	}
	for i, d := range u {
		if got[i].ID != d.Name {
			t.Errorf("proposal %d = %s, want universe seed %s", i, got[i].ID, d.Name)
		}
	}
	if _, ok := n.Next(); ok {
		t.Fatal("Next after budget must return false")
	}
}

func TestNoveltyDeterministicPerSeed(t *testing.T) {
	u := universe(4)
	mk := func() []fault.Scenario {
		n := NewNovelty(u, 40, rand.New(rand.NewSource(11)))
		n.Mutator().Window = sim.MS(1)
		return driveNovelty(n)
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("same seed must yield an identical scenario stream")
	}
}

// TestNoveltyFallbackWithoutFeedback: when no run ever reports a
// signature (plain RunFuncs), the stream must still fill the budget —
// pipeline lag or missing signatures must not stall the campaign.
func TestNoveltyFallbackWithoutFeedback(t *testing.T) {
	u := universe(2)
	budget := len(u) + 8
	n := NewNovelty(u, budget, rand.New(rand.NewSource(12)))
	n.Mutator().Window = sim.MS(1)
	count := 0
	for {
		sc, ok := n.Next()
		if !ok {
			break
		}
		count++
		n.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked}) // Signature 0
	}
	if count != budget {
		t.Fatalf("produced %d, want %d", count, budget)
	}
}

// TestNoveltyPairEscalation: with every outcome novel, the strategy
// must escalate to dual-fault scenarios beyond the universe.
func TestNoveltyPairEscalation(t *testing.T) {
	u := universe(3)
	n := NewNovelty(u, len(u)+20, rand.New(rand.NewSource(13)))
	n.Mutator().Window = sim.MS(1)
	pairs := 0
	for _, sc := range driveNovelty(n) {
		if len(sc.Faults) == 2 {
			pairs++
			if err := sc.Validate(); err != nil {
				t.Fatalf("pair scenario invalid: %v", err)
			}
		}
	}
	if pairs == 0 {
		t.Fatal("novel outcomes never escalated to fault pairs")
	}
}

func TestHolesFirst(t *testing.T) {
	u := universe(3) // sites a,b,c
	fs := coverage.NewFaultSpace([]string{"a", "b", "c"}, []string{
		fault.StuckAt0.String(), fault.StuckAt1.String(),
	})
	// Everything injected except site b.
	for _, d := range u {
		if d.Target != "b" {
			fs.Record(d.Target, d.Model.String(), 0)
		}
	}
	got := HolesFirst(u, fs)
	if len(got) != len(u) {
		t.Fatalf("length changed: %d != %d", len(got), len(u))
	}
	for i := 0; i < 2; i++ {
		if got[i].Target != "b" {
			t.Errorf("position %d targets %s, want hole site b first", i, got[i].Target)
		}
	}
	if !reflect.DeepEqual(HolesFirst(u, nil), u) {
		t.Error("nil fault space must be the identity")
	}
}

func TestStartsFromCorpus(t *testing.T) {
	w := sim.Time(100)
	got := StartsFromCorpus([][]int64{{5, 205}, {-7, 5}}, w)
	// mx = 205, so v scales to w*v/206: 5→2, 7→3, 205→99.
	want := []sim.Time{2, 3, 99}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("starts = %v, want %v (deduped, sorted, scaled over window)", got, want)
	}
	if StartsFromCorpus([][]int64{{1}}, 0) != nil {
		t.Error("zero window must yield no starts")
	}
}
