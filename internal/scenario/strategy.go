// Package scenario implements injection-space exploration strategies
// for error-effect simulation campaigns: exhaustive enumeration,
// Monte-Carlo sampling, and the weak-spot-guided systematic search the
// paper argues for in Sec. 3.4 ("Standard Monte-Carlo techniques may
// fail to identify the critical error effects ... a systematic
// approach is required that stresses the system at its possible weak
// spots"). Experiment E4 compares these strategies head to head.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Strategy produces fault scenarios one at a time and learns from
// outcomes. Next returns false when the strategy is exhausted (or has
// reached its budget).
type Strategy interface {
	// Next proposes the next scenario to simulate.
	Next() (fault.Scenario, bool)
	// Observe feeds back the outcome of a proposed scenario.
	Observe(o fault.Outcome)
}

// Exhaustive walks a fixed fault universe in order — complete but
// O(|universe|); the baseline for single-point ISO analysis (E8).
type Exhaustive struct {
	universe []fault.Descriptor
	next     int
}

// NewExhaustive creates the strategy over a universe.
func NewExhaustive(universe []fault.Descriptor) *Exhaustive {
	return &Exhaustive{universe: universe}
}

// Next implements Strategy.
func (e *Exhaustive) Next() (fault.Scenario, bool) {
	if e.next >= len(e.universe) {
		return fault.Scenario{}, false
	}
	d := e.universe[e.next]
	e.next++
	return fault.Single(d), true
}

// Observe implements Strategy (exhaustive search does not adapt).
func (e *Exhaustive) Observe(fault.Outcome) {}

// MonteCarlo samples the universe uniformly with random start times —
// the standard technique whose rare-event blindness E4 demonstrates.
type MonteCarlo struct {
	universe []fault.Descriptor
	rng      *rand.Rand
	budget   int
	produced int
	// Window randomizes each fault's start within [0, Window).
	Window sim.Time
	// MultiFault > 1 samples that many simultaneous faults per
	// scenario.
	MultiFault int
}

// NewMonteCarlo creates the strategy with a run budget.
func NewMonteCarlo(universe []fault.Descriptor, budget int, rng *rand.Rand) *MonteCarlo {
	return &MonteCarlo{universe: universe, budget: budget, rng: rng, MultiFault: 1}
}

// mcResampleRetries bounds how often MonteCarlo redraws a fault that
// duplicates one already in the scenario under construction. On a tiny
// universe every draw may collide; after the retries run out the
// duplicate is kept so Next stays total.
const mcResampleRetries = 8

// Next implements Strategy.
func (m *MonteCarlo) Next() (fault.Scenario, bool) {
	if m.produced >= m.budget || len(m.universe) == 0 {
		return fault.Scenario{}, false
	}
	m.produced++
	n := m.MultiFault
	if n < 1 {
		n = 1
	}
	sc := fault.Scenario{ID: fmt.Sprintf("mc-%d", m.produced)}
	sample := func() fault.Descriptor {
		d := m.universe[m.rng.Intn(len(m.universe))]
		if m.Window > 0 {
			d.Start = sim.Time(m.rng.Int63n(int64(m.Window)))
		}
		return d
	}
	dup := func(d fault.Descriptor) bool {
		for _, have := range sc.Faults {
			if have.Target == d.Target && have.Model == d.Model && have.Start == d.Start {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		d := sample()
		// A multi-fault scenario injecting the same (target, model,
		// start) twice is just the single fault with extra bookkeeping —
		// redraw, bounded.
		for retry := 0; retry < mcResampleRetries && dup(d); retry++ {
			d = sample()
		}
		if n > 1 {
			// Disambiguate names only when a scenario really carries
			// several faults; a single-fault sample keeps its universe
			// name so outcomes map back to the fault list directly.
			d.Name = fmt.Sprintf("%s#%d", d.Name, i)
		}
		sc.Faults = append(sc.Faults, d)
	}
	return sc, true
}

// Observe implements Strategy (Monte Carlo does not adapt).
func (m *MonteCarlo) Observe(fault.Outcome) {}

// Guided is the systematic weak-spot strategy: phase 1 sweeps every
// single fault once (establishing per-site severity); phase 2
// escalates to pair scenarios concentrated on the sites with the worst
// observed outcomes, where protection mechanisms are most likely to be
// bypassed by a second fault. This mirrors the paper's prescription to
// identify weak spots "by analysis of error propagation, error
// masking, and error recovery by protection mechanisms".
type Guided struct {
	universe []fault.Descriptor
	budget   int
	produced int

	bySite   map[string][]fault.Descriptor
	severity map[string]int
	lastSc   fault.Scenario
	phase1   int // index into universe
	pairs    []pairIdx
	pairsGen bool
	// TopSites bounds how many weak sites phase 2 combines.
	TopSites int
}

type pairIdx struct{ a, b fault.Descriptor }

// NewGuided creates the strategy with a total run budget.
func NewGuided(universe []fault.Descriptor, budget int) *Guided {
	g := &Guided{
		universe: universe,
		budget:   budget,
		bySite:   make(map[string][]fault.Descriptor),
		severity: make(map[string]int),
		TopSites: 4,
	}
	for _, d := range universe {
		g.bySite[d.Target] = append(g.bySite[d.Target], d)
	}
	return g
}

// Next implements Strategy.
func (g *Guided) Next() (fault.Scenario, bool) {
	if g.produced >= g.budget {
		return fault.Scenario{}, false
	}
	// Phase 1: one run per universe entry.
	if g.phase1 < len(g.universe) {
		d := g.universe[g.phase1]
		g.phase1++
		g.produced++
		g.lastSc = fault.Single(d)
		return g.lastSc, true
	}
	// Phase 2: pair scenarios on the worst sites.
	if !g.pairsGen {
		g.generatePairs()
	}
	if len(g.pairs) == 0 {
		return fault.Scenario{}, false
	}
	p := g.pairs[0]
	g.pairs = g.pairs[1:]
	g.produced++
	a, b := p.a, p.b
	a.Name += "+0"
	b.Name += "+1"
	g.lastSc = fault.Scenario{
		ID:     fmt.Sprintf("guided-pair-%d", g.produced),
		Faults: []fault.Descriptor{a, b},
	}
	return g.lastSc, true
}

// generatePairs ranks sites by observed severity and emits all fault
// pairs across the top sites.
func (g *Guided) generatePairs() {
	g.pairsGen = true
	type siteSev struct {
		site string
		sev  int
	}
	ranked := make([]siteSev, 0, len(g.bySite))
	for s := range g.bySite {
		ranked = append(ranked, siteSev{s, g.severity[s]})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].sev != ranked[j].sev {
			return ranked[i].sev > ranked[j].sev
		}
		return ranked[i].site < ranked[j].site
	})
	top := ranked
	if len(top) > g.TopSites {
		top = top[:g.TopSites]
	}
	for i := 0; i < len(top); i++ {
		for j := i; j < len(top); j++ {
			da, db := g.bySite[top[i].site], g.bySite[top[j].site]
			for ai, a := range da {
				for bi, b := range db {
					if i == j && bi <= ai {
						// Same-site pairs are unordered — {a,b} injects the
						// same fault set as {b,a} — so emit only the upper
						// triangle (bi > ai also skips the a==a diagonal).
						continue
					}
					if a.Target == b.Target && a.Model == b.Model {
						continue
					}
					g.pairs = append(g.pairs, pairIdx{a, b})
				}
			}
		}
	}
}

// Observe implements Strategy: track worst severity per site.
func (g *Guided) Observe(o fault.Outcome) {
	sev := o.Class.Severity()
	for _, d := range o.Scenario.Faults {
		if sev > g.severity[d.Target] {
			g.severity[d.Target] = sev
		}
	}
}

// Drive runs a strategy against a campaign run function until the
// strategy is exhausted, returning all outcomes. It is the generic
// closed loop of Fig. 3 (strategy ⇄ error effect simulation).
func Drive(s Strategy, run func(fault.Scenario) fault.Outcome) []fault.Outcome {
	var out []fault.Outcome
	for {
		sc, ok := s.Next()
		if !ok {
			return out
		}
		o := run(sc)
		s.Observe(o)
		out = append(out, o)
	}
}

// FirstFailureIndex reports the 1-based index of the first unhandled
// failure in a campaign trace, or 0 when none occurred — the E4
// comparison metric.
func FirstFailureIndex(outcomes []fault.Outcome) int {
	for i, o := range outcomes {
		if o.Class.IsFailure() {
			return i + 1
		}
	}
	return 0
}
