package scenario

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/sim"
)

func universe(sites int) []fault.Descriptor {
	var u []fault.Descriptor
	for i := 0; i < sites; i++ {
		site := string(rune('a' + i))
		for _, m := range []fault.Model{fault.StuckAt0, fault.StuckAt1} {
			u = append(u, fault.Descriptor{
				Name: site + "/" + m.String(), Model: m, Class: fault.Permanent, Target: site,
			})
		}
	}
	return u
}

func TestExhaustiveWalksAll(t *testing.T) {
	u := universe(3)
	e := NewExhaustive(u)
	var got []string
	for {
		sc, ok := e.Next()
		if !ok {
			break
		}
		if len(sc.Faults) != 1 {
			t.Fatalf("scenario = %+v", sc)
		}
		got = append(got, sc.Faults[0].Name)
		e.Observe(fault.Outcome{Scenario: sc})
	}
	if len(got) != len(u) {
		t.Fatalf("walked %d of %d", len(got), len(u))
	}
	for i, d := range u {
		if got[i] != d.Name {
			t.Errorf("order[%d] = %s, want %s", i, got[i], d.Name)
		}
	}
}

func TestMonteCarloBudgetAndWindow(t *testing.T) {
	u := universe(4)
	m := NewMonteCarlo(u, 50, rand.New(rand.NewSource(1)))
	m.Window = sim.MS(1)
	n := 0
	for {
		sc, ok := m.Next()
		if !ok {
			break
		}
		n++
		if sc.Faults[0].Start >= sim.MS(1) {
			t.Errorf("start %v outside window", sc.Faults[0].Start)
		}
	}
	if n != 50 {
		t.Errorf("produced %d, want 50", n)
	}
}

func TestMonteCarloMultiFault(t *testing.T) {
	u := universe(4)
	m := NewMonteCarlo(u, 10, rand.New(rand.NewSource(2)))
	m.MultiFault = 3
	sc, ok := m.Next()
	if !ok || len(sc.Faults) != 3 {
		t.Fatalf("scenario = %+v", sc)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("multi-fault scenario invalid: %v", err)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	u := universe(4)
	m1 := NewMonteCarlo(u, 5, rand.New(rand.NewSource(9)))
	m2 := NewMonteCarlo(u, 5, rand.New(rand.NewSource(9)))
	for {
		a, ok1 := m1.Next()
		b, ok2 := m2.Next()
		if ok1 != ok2 {
			t.Fatal("length mismatch")
		}
		if !ok1 {
			break
		}
		if a.Faults[0].Name != b.Faults[0].Name || a.Faults[0].Start != b.Faults[0].Start {
			t.Fatal("not reproducible")
		}
	}
}

func TestGuidedPhase1ThenPairs(t *testing.T) {
	u := universe(3) // 6 descriptors over sites a,b,c
	g := NewGuided(u, 1000)
	var singles, pairs int
	for {
		sc, ok := g.Next()
		if !ok {
			break
		}
		switch len(sc.Faults) {
		case 1:
			singles++
			// Report site "b" as the weak spot.
			class := fault.Masked
			if sc.Faults[0].Target == "b" {
				class = fault.DetectedSafe
			}
			g.Observe(fault.Outcome{Scenario: sc, Class: class})
		case 2:
			pairs++
			g.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
		}
	}
	if singles != len(u) {
		t.Errorf("singles = %d, want %d", singles, len(u))
	}
	if pairs == 0 {
		t.Error("no pair scenarios generated")
	}
}

func TestGuidedPrefersWeakSites(t *testing.T) {
	u := universe(6)
	g := NewGuided(u, 10000)
	g.TopSites = 2
	// Phase 1: mark site "e" and "f" as severe.
	for {
		sc, ok := g.Next()
		if !ok {
			break
		}
		if len(sc.Faults) == 1 {
			class := fault.Masked
			if sc.Faults[0].Target == "e" || sc.Faults[0].Target == "f" {
				class = fault.SDC
			}
			g.Observe(fault.Outcome{Scenario: sc, Class: class})
			continue
		}
		// Phase 2 pairs must only involve the two weak sites.
		for _, d := range sc.Faults {
			if d.Target != "e" && d.Target != "f" {
				t.Errorf("pair includes non-weak site %s", d.Target)
			}
		}
		g.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
	}
}

func TestGuidedBudget(t *testing.T) {
	u := universe(5)
	g := NewGuided(u, 7)
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Errorf("produced %d, want budget 7", n)
	}
}

func TestDriveAndFirstFailure(t *testing.T) {
	u := universe(2)
	e := NewExhaustive(u)
	i := 0
	outcomes := Drive(e, func(sc fault.Scenario) fault.Outcome {
		i++
		class := fault.Masked
		if i == 3 {
			class = fault.SafetyCritical
		}
		return fault.Outcome{Scenario: sc, Class: class}
	})
	if len(outcomes) != len(u) {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	if got := FirstFailureIndex(outcomes); got != 3 {
		t.Errorf("FirstFailureIndex = %d, want 3", got)
	}
	if FirstFailureIndex(outcomes[:2]) != 0 {
		t.Error("no-failure index should be 0")
	}
}

// Property: every strategy respects its budget and produces valid
// scenarios.
func TestPropertyStrategiesProduceValidScenarios(t *testing.T) {
	f := func(seed int64, nSites, budget uint8) bool {
		u := universe(int(nSites%5) + 1)
		b := int(budget%40) + 1
		strategies := []Strategy{
			NewExhaustive(u),
			NewMonteCarlo(u, b, rand.New(rand.NewSource(seed))),
			NewGuided(u, b),
		}
		for _, s := range strategies {
			count := 0
			for {
				sc, ok := s.Next()
				if !ok {
					break
				}
				count++
				if sc.Validate() != nil {
					return false
				}
				s.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
				if count > len(u)*len(u)*4+b {
					return false // runaway
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Regression: same-site pairs are unordered — {a,b} and {b,a} inject
// the identical fault set, so generatePairs must emit each set once.
func TestGuidedPairsDedupeUnordered(t *testing.T) {
	u := universe(2) // sites a,b × models stuck-at-0/1 = 4 descriptors
	g := NewGuided(u, 1000)
	seen := map[string]int{}
	pairs := 0
	for {
		sc, ok := g.Next()
		if !ok {
			break
		}
		if len(sc.Faults) == 1 {
			g.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
			continue
		}
		pairs++
		// Canonical unordered fault-set key (names carry +0/+1 suffixes,
		// so key on target+model).
		a := sc.Faults[0].Target + "/" + sc.Faults[0].Model.String()
		b := sc.Faults[1].Target + "/" + sc.Faults[1].Model.String()
		if b < a {
			a, b = b, a
		}
		seen[a+"|"+b]++
		g.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("fault set {%s} emitted %d times", k, n)
		}
	}
	// 2 same-site sets (one per site: the two models paired) + 4
	// cross-site sets (2×2 between a and b).
	if pairs != 6 {
		t.Errorf("pairs = %d, want 6 unique fault sets", pairs)
	}
}

// Regression: a single-fault Monte-Carlo sample must keep its universe
// name (no "#0" mangling) so outcomes map back to the fault list.
func TestMonteCarloSingleFaultKeepsName(t *testing.T) {
	u := universe(4)
	names := map[string]bool{}
	for _, d := range u {
		names[d.Name] = true
	}
	m := NewMonteCarlo(u, 30, rand.New(rand.NewSource(3)))
	for {
		sc, ok := m.Next()
		if !ok {
			break
		}
		if !names[sc.Faults[0].Name] {
			t.Fatalf("sampled name %q not in universe", sc.Faults[0].Name)
		}
	}
}

// Regression: a multi-fault scenario must not inject the same
// (target, model, start) twice — duplicates are resampled.
func TestMonteCarloMultiFaultResamplesDuplicates(t *testing.T) {
	u := universe(6)
	m := NewMonteCarlo(u, 100, rand.New(rand.NewSource(4)))
	m.MultiFault = 3
	for {
		sc, ok := m.Next()
		if !ok {
			break
		}
		type key struct {
			t string
			m fault.Model
			s sim.Time
		}
		seen := map[key]bool{}
		for _, d := range sc.Faults {
			k := key{d.Target, d.Model, d.Start}
			if seen[k] {
				t.Fatalf("scenario %s injects %s/%s@%v twice", sc.ID, d.Target, d.Model, d.Start)
			}
			seen[k] = true
		}
		// Multi-fault names still disambiguate per slot.
		for i, d := range sc.Faults {
			if want := "#" + string(rune('0'+i)); len(d.Name) < 2 || d.Name[len(d.Name)-2:] != want {
				t.Fatalf("fault %d name %q lacks %q suffix", i, d.Name, want)
			}
		}
	}
}

// TestGuidedTopSitesTable drives the severity ranking through the
// TopSites edge cases: 0 (no phase 2), 1 (worst site only), and a
// bound past the site count (everything pairs).
func TestGuidedTopSitesTable(t *testing.T) {
	cases := []struct {
		name      string
		topSites  int
		wantPairs int
		onlySite  string // non-empty: every pair fault must hit this site
	}{
		// Site "c" is reported SDC below; 2 models per site.
		{"zero", 0, 0, ""},
		{"one", 1, 1, "c"}, // the two models of site c paired once
		// 3 sites, all included: 3 same-site sets + 3 site pairs × 4 = 15.
		{"past-count", 10, 15, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := universe(3)
			g := NewGuided(u, 1000)
			g.TopSites = tc.topSites
			pairs := 0
			for {
				sc, ok := g.Next()
				if !ok {
					break
				}
				if len(sc.Faults) == 1 {
					class := fault.Masked
					if sc.Faults[0].Target == "c" {
						class = fault.SDC
					}
					g.Observe(fault.Outcome{Scenario: sc, Class: class})
					continue
				}
				pairs++
				if tc.onlySite != "" {
					for _, d := range sc.Faults {
						if d.Target != tc.onlySite {
							t.Errorf("pair fault on %s, want only %s", d.Target, tc.onlySite)
						}
					}
				}
				g.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
			}
			if pairs != tc.wantPairs {
				t.Errorf("pairs = %d, want %d", pairs, tc.wantPairs)
			}
		})
	}
}

// TestGuidedBudgetExhaustsMidPhase2 pins clean termination when the
// budget runs out between pair proposals.
func TestGuidedBudgetExhaustsMidPhase2(t *testing.T) {
	u := universe(3)
	budget := len(u) + 2 // phase 1 plus two pairs
	g := NewGuided(u, budget)
	n := 0
	for {
		sc, ok := g.Next()
		if !ok {
			break
		}
		n++
		g.Observe(fault.Outcome{Scenario: sc, Class: fault.SDC})
	}
	if n != budget {
		t.Fatalf("produced %d, want %d", n, budget)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("Next after exhaustion must keep returning false")
	}
}
