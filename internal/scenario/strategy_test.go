package scenario

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/sim"
)

func universe(sites int) []fault.Descriptor {
	var u []fault.Descriptor
	for i := 0; i < sites; i++ {
		site := string(rune('a' + i))
		for _, m := range []fault.Model{fault.StuckAt0, fault.StuckAt1} {
			u = append(u, fault.Descriptor{
				Name: site + "/" + m.String(), Model: m, Class: fault.Permanent, Target: site,
			})
		}
	}
	return u
}

func TestExhaustiveWalksAll(t *testing.T) {
	u := universe(3)
	e := NewExhaustive(u)
	var got []string
	for {
		sc, ok := e.Next()
		if !ok {
			break
		}
		if len(sc.Faults) != 1 {
			t.Fatalf("scenario = %+v", sc)
		}
		got = append(got, sc.Faults[0].Name)
		e.Observe(fault.Outcome{Scenario: sc})
	}
	if len(got) != len(u) {
		t.Fatalf("walked %d of %d", len(got), len(u))
	}
	for i, d := range u {
		if got[i] != d.Name {
			t.Errorf("order[%d] = %s, want %s", i, got[i], d.Name)
		}
	}
}

func TestMonteCarloBudgetAndWindow(t *testing.T) {
	u := universe(4)
	m := NewMonteCarlo(u, 50, rand.New(rand.NewSource(1)))
	m.Window = sim.MS(1)
	n := 0
	for {
		sc, ok := m.Next()
		if !ok {
			break
		}
		n++
		if sc.Faults[0].Start >= sim.MS(1) {
			t.Errorf("start %v outside window", sc.Faults[0].Start)
		}
	}
	if n != 50 {
		t.Errorf("produced %d, want 50", n)
	}
}

func TestMonteCarloMultiFault(t *testing.T) {
	u := universe(4)
	m := NewMonteCarlo(u, 10, rand.New(rand.NewSource(2)))
	m.MultiFault = 3
	sc, ok := m.Next()
	if !ok || len(sc.Faults) != 3 {
		t.Fatalf("scenario = %+v", sc)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("multi-fault scenario invalid: %v", err)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	u := universe(4)
	m1 := NewMonteCarlo(u, 5, rand.New(rand.NewSource(9)))
	m2 := NewMonteCarlo(u, 5, rand.New(rand.NewSource(9)))
	for {
		a, ok1 := m1.Next()
		b, ok2 := m2.Next()
		if ok1 != ok2 {
			t.Fatal("length mismatch")
		}
		if !ok1 {
			break
		}
		if a.Faults[0].Name != b.Faults[0].Name || a.Faults[0].Start != b.Faults[0].Start {
			t.Fatal("not reproducible")
		}
	}
}

func TestGuidedPhase1ThenPairs(t *testing.T) {
	u := universe(3) // 6 descriptors over sites a,b,c
	g := NewGuided(u, 1000)
	var singles, pairs int
	for {
		sc, ok := g.Next()
		if !ok {
			break
		}
		switch len(sc.Faults) {
		case 1:
			singles++
			// Report site "b" as the weak spot.
			class := fault.Masked
			if sc.Faults[0].Target == "b" {
				class = fault.DetectedSafe
			}
			g.Observe(fault.Outcome{Scenario: sc, Class: class})
		case 2:
			pairs++
			g.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
		}
	}
	if singles != len(u) {
		t.Errorf("singles = %d, want %d", singles, len(u))
	}
	if pairs == 0 {
		t.Error("no pair scenarios generated")
	}
}

func TestGuidedPrefersWeakSites(t *testing.T) {
	u := universe(6)
	g := NewGuided(u, 10000)
	g.TopSites = 2
	// Phase 1: mark site "e" and "f" as severe.
	for {
		sc, ok := g.Next()
		if !ok {
			break
		}
		if len(sc.Faults) == 1 {
			class := fault.Masked
			if sc.Faults[0].Target == "e" || sc.Faults[0].Target == "f" {
				class = fault.SDC
			}
			g.Observe(fault.Outcome{Scenario: sc, Class: class})
			continue
		}
		// Phase 2 pairs must only involve the two weak sites.
		for _, d := range sc.Faults {
			if d.Target != "e" && d.Target != "f" {
				t.Errorf("pair includes non-weak site %s", d.Target)
			}
		}
		g.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
	}
}

func TestGuidedBudget(t *testing.T) {
	u := universe(5)
	g := NewGuided(u, 7)
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Errorf("produced %d, want budget 7", n)
	}
}

func TestDriveAndFirstFailure(t *testing.T) {
	u := universe(2)
	e := NewExhaustive(u)
	i := 0
	outcomes := Drive(e, func(sc fault.Scenario) fault.Outcome {
		i++
		class := fault.Masked
		if i == 3 {
			class = fault.SafetyCritical
		}
		return fault.Outcome{Scenario: sc, Class: class}
	})
	if len(outcomes) != len(u) {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	if got := FirstFailureIndex(outcomes); got != 3 {
		t.Errorf("FirstFailureIndex = %d, want 3", got)
	}
	if FirstFailureIndex(outcomes[:2]) != 0 {
		t.Error("no-failure index should be 0")
	}
}

// Property: every strategy respects its budget and produces valid
// scenarios.
func TestPropertyStrategiesProduceValidScenarios(t *testing.T) {
	f := func(seed int64, nSites, budget uint8) bool {
		u := universe(int(nSites%5) + 1)
		b := int(budget%40) + 1
		strategies := []Strategy{
			NewExhaustive(u),
			NewMonteCarlo(u, b, rand.New(rand.NewSource(seed))),
			NewGuided(u, b),
		}
		for _, s := range strategies {
			count := 0
			for {
				sc, ok := s.Next()
				if !ok {
					break
				}
				count++
				if sc.Validate() != nil {
					return false
				}
				s.Observe(fault.Outcome{Scenario: sc, Class: fault.Masked})
				if count > len(u)*len(u)*4+b {
					return false // runaway
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
