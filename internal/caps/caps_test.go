package caps

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/stressor/stressortest"
)

var horizon = sim.MS(100)

func TestWorldProfiles(t *testing.T) {
	n := NormalDriving()
	for _, ti := range []sim.Time{0, sim.MS(10), sim.MS(50)} {
		if g := n.Accel(ti); g < 0 || g > 2 {
			t.Errorf("normal accel at %v = %g, want sub-2 g", ti, g)
		}
	}
	c := CrashAt(sim.MS(20))
	if g := c.Accel(sim.MS(10)); g > 2 {
		t.Errorf("pre-crash accel = %g", g)
	}
	if g := c.Accel(sim.MS(30)); g < 70 {
		t.Errorf("plateau accel = %g, want ~80 g", g)
	}
	if g := c.Accel(sim.MS(60)); g > 2 {
		t.Errorf("post-crash accel = %g", g)
	}
}

func TestSensorSampling(t *testing.T) {
	w := NormalDriving()
	s := NewSensor("a", w)
	v := s.Sample(sim.MS(1))
	if v <= 0 || v > 0.2 {
		t.Errorf("normal sample = %g V", v)
	}
	s.SetDisturbance(0.5, 0)
	if s.Sample(sim.MS(1)) != 0 {
		t.Error("override 0 not applied")
	}
	s.SetDisturbance(0, mathInf())
	if s.Sample(sim.MS(1)) != 0 {
		t.Error("open line should read 0 V")
	}
	if !s.Faulted() {
		t.Error("Faulted false under disturbance")
	}
}

func mathInf() float64 { return math.Inf(1) }

func TestGoldenNormalRunDoesNotFire(t *testing.T) {
	r, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Golden()
	if g.GoalViolated || g.Detected {
		t.Errorf("golden = %+v", g)
	}
	if g.Outputs["fired"] != "false" {
		t.Error("golden run fired")
	}
}

func TestGoldenCrashRunFiresOnTime(t *testing.T) {
	world := CrashAt(sim.MS(20))
	r, err := NewRunner(Protected(), world, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if r.Golden().Outputs["fired"] != "true" {
		t.Fatal("crash run did not deploy")
	}
	if r.Golden().DeadlineMissed {
		t.Error("crash deployment missed deadline")
	}
}

func TestUnprotectedShortToSupplyFires(t *testing.T) {
	r, err := NewRunner(Unprotected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	o := r.RunScenario(fault.Single(fault.Descriptor{
		Name: "sts", Model: fault.ShortToSupply, Class: fault.Permanent,
		Target: "caps.accel0.harness", Start: sim.MS(10),
	}))
	if o.Class != fault.SafetyCritical {
		t.Errorf("class = %s (%s), want safety-critical", o.Class, o.Detail)
	}
	if !strings.Contains(o.Detail, "inadvertent") {
		t.Errorf("detail = %q", o.Detail)
	}
}

func TestProtectedShortToSupplyDetected(t *testing.T) {
	r, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	o := r.RunScenario(fault.Single(fault.Descriptor{
		Name: "sts", Model: fault.ShortToSupply, Class: fault.Permanent,
		Target: "caps.accel0.harness", Start: sim.MS(10),
	}))
	if o.Class != fault.DetectedSafe {
		t.Errorf("class = %s (%s), want detected-safe (plausibility)", o.Class, o.Detail)
	}
	if !strings.Contains(o.Detail, "plausibility") {
		t.Errorf("detail = %q", o.Detail)
	}
}

func TestThresholdStuckAtZero(t *testing.T) {
	d := fault.Descriptor{
		Name: "thr0", Model: fault.StuckAt0, Class: fault.Permanent,
		Target: "caps.airbag.threshold", Start: sim.MS(10),
	}
	ru, err := NewRunner(Unprotected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if o := ru.RunScenario(fault.Single(d)); o.Class != fault.SafetyCritical {
		t.Errorf("unprotected class = %s (%s)", o.Class, o.Detail)
	}
	rp, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if o := rp.RunScenario(fault.Single(d)); o.Class != fault.DetectedSafe {
		t.Errorf("protected class = %s (%s)", o.Class, o.Detail)
	}
}

func TestBabblingIdiot(t *testing.T) {
	d := fault.Descriptor{
		Name: "babble", Model: fault.Babbling, Class: fault.Permanent,
		Target: "caps.can.bus", Start: sim.MS(10),
	}
	rp, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if o := rp.RunScenario(fault.Single(d)); o.Class != fault.DetectedSafe {
		t.Errorf("protected class = %s (%s), want detected-safe (frame watchdog)", o.Class, o.Detail)
	}
	// In a crash, a babbling bus without watchdog means no deployment.
	ru, err := NewRunner(Unprotected(), CrashAt(sim.MS(20)), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if o := ru.RunScenario(fault.Single(d)); o.Class != fault.SafetyCritical {
		t.Errorf("unprotected crash class = %s (%s), want safety-critical (G2)", o.Class, o.Detail)
	}
}

func TestCalibBitFlip(t *testing.T) {
	d := fault.Descriptor{
		Name: "calib", Model: fault.BitFlip, Class: fault.Permanent,
		Target: "caps.fusion.calib", Address: calibScaleAddr, Bit: 5, Start: sim.MS(10),
	}
	rp, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if o := rp.RunScenario(fault.Single(d)); o.Class != fault.DetectedSafe {
		t.Errorf("protected class = %s (%s), want detected-safe (calib CRC)", o.Class, o.Detail)
	}
	ru, err := NewRunner(Unprotected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	o := ru.RunScenario(fault.Single(d))
	if o.Class != fault.SDC && o.Class != fault.SafetyCritical {
		t.Errorf("unprotected class = %s (%s), want sdc or worse", o.Class, o.Detail)
	}
}

func TestOpenHarnessProtected(t *testing.T) {
	r, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	o := r.RunScenario(fault.Single(fault.Descriptor{
		Name: "open", Model: fault.Open, Class: fault.Permanent,
		Target: "caps.accel1.harness", Start: sim.MS(10),
	}))
	// Sensor reads 0 V; golden normal readings are tiny, so the
	// disagreement may stay under tolerance — acceptable outcomes are
	// detected-safe (plausibility) or latent (dormant wiring defect).
	if o.Class != fault.DetectedSafe && o.Class != fault.Latent && o.Class != fault.SDC {
		t.Errorf("class = %s (%s)", o.Class, o.Detail)
	}
}

func TestExhaustiveCampaignProtectedHasNoG1Violations(t *testing.T) {
	r, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	var scenarios []fault.Scenario
	for _, d := range r.Universe(sim.MS(10)) {
		scenarios = append(scenarios, fault.Single(d))
	}
	c := &stressor.Campaign{Name: "protected", Run: r.RunFunc()}
	res, err := c.Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Tally[fault.SafetyCritical]; n != 0 {
		for _, o := range res.ByClass(fault.SafetyCritical) {
			t.Logf("violation: %s -> %s", o.Scenario.ID, o.Detail)
		}
		t.Errorf("%d single faults trigger the airbag despite mechanisms (tally %s)", n, res.Tally)
	}
}

func TestExhaustiveCampaignUnprotectedHasViolations(t *testing.T) {
	r, err := NewRunner(Unprotected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	var scenarios []fault.Scenario
	for _, d := range r.Universe(sim.MS(10)) {
		scenarios = append(scenarios, fault.Single(d))
	}
	c := &stressor.Campaign{Name: "unprotected", Run: r.RunFunc()}
	res, err := c.Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally[fault.SafetyCritical] == 0 {
		t.Errorf("no G1 violations without mechanisms (tally %s) — the mechanisms are not load-bearing", res.Tally)
	}
}

func TestSitesEnumerated(t *testing.T) {
	r, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	sites := r.Sites()
	want := []string{"caps.accel0.harness", "caps.accel1.harness", "caps.airbag.threshold", "caps.can.bus", "caps.fusion.calib"}
	if len(sites) != len(want) {
		t.Fatalf("sites = %v", sites)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Errorf("sites[%d] = %s, want %s", i, sites[i], want[i])
		}
	}
}

func TestPropagationTrace(t *testing.T) {
	// Unprotected: the disturbed sensor value propagates all the way
	// to deployment, and the trace shows the path.
	ru, err := NewRunner(Unprotected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	o, tr := ru.RunScenarioTraced(fault.Single(fault.Descriptor{
		Name: "sts", Model: fault.ShortToSupply, Class: fault.Permanent,
		Target: "caps.accel0.harness", Start: sim.MS(10),
	}))
	if o.Class != fault.SafetyCritical {
		t.Fatalf("class = %s", o.Class)
	}
	sites := tr.SitesVisited()
	want := []string{"caps.accel0", "caps.airbag"}
	if len(sites) < 2 || sites[0] != want[0] || sites[1] != want[1] {
		t.Errorf("propagation path = %v, want prefix %v", sites, want)
	}
	deployed := false
	for _, h := range tr.Hops() {
		if h.Site == "caps.airbag" && h.Detail == "deployment" {
			deployed = true
		}
	}
	if !deployed {
		t.Errorf("trace missing the deployment hop: %s", tr)
	}

	// Protected: the path ends at the plausibility barrier instead.
	rp, err := NewRunner(Protected(), NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	o, tr = rp.RunScenarioTraced(fault.Single(fault.Descriptor{
		Name: "sts", Model: fault.ShortToSupply, Class: fault.Permanent,
		Target: "caps.accel0.harness", Start: sim.MS(10),
	}))
	if o.Class != fault.DetectedSafe {
		t.Fatalf("protected class = %s", o.Class)
	}
	foundBarrier := false
	for _, h := range tr.Hops() {
		if h.Site == "caps.airbag" && h.Detail == "deployment" {
			t.Error("protected trace reaches deployment")
		}
		if h.Site == "caps.fusion" {
			foundBarrier = true
		}
	}
	if !foundBarrier {
		t.Errorf("trace missing the fusion barrier hop: %s", tr)
	}
}

// TestCampaignDeterminismMatrix runs the real E8 single-fault campaign
// through the shared cross-mode matrix: {sequential, parallel} ×
// {rebuild, reuse} × {unsharded, 2-shard merged, 4-shard merged} ×
// {fresh, resumed-after-interrupt} must all be byte-identical to the
// rebuild/sequential baseline. Beyond determinism, under `go test
// -race` this is the concurrency audit of the whole prototype stack:
// several sim kernels, CAPS systems and fault registries live at once,
// and any package-level mutable state shared between them would trip
// the detector.
func TestCampaignDeterminismMatrix(t *testing.T) {
	runner, err := NewRunner(Protected(), NormalDriving(), sim.MS(30))
	if err != nil {
		t.Fatal(err)
	}
	scenarios := fault.Singles(withTransients(runner.Universe(sim.MS(5))))
	runner.Close()
	stressortest.Run(t, stressortest.Config{
		Name:      "caps-e8",
		Scenarios: scenarios,
		NewRun: func(t *testing.T, reuseOff bool) (stressor.RunFunc, stressor.Checkpointer, func()) {
			r, err := NewRunner(Protected(), NormalDriving(), sim.MS(30))
			if err != nil {
				t.Fatal(err)
			}
			r.ReuseOff = reuseOff
			return r.RunFunc(), r, r.Close
		},
		Dedup: true,
	})
}

// withTransients appends a transient variant of every descriptor (2 ms
// active window) to the universe. Transient runs whose disturbance
// decays are the ones convergence early-exit can terminate early, so
// the determinism matrix's tree+ee and ee cells exercise both the
// converged and the ran-to-horizon path.
func withTransients(u []fault.Descriptor) []fault.Descriptor {
	out := append([]fault.Descriptor(nil), u...)
	for _, d := range u {
		d.Name += "+t2ms"
		d.Class = fault.Transient
		d.Duration = sim.MS(2)
		out = append(out, d)
	}
	return out
}

// TestRunnerNewCampaignShard: the runner's campaign constructor wires
// the shard through — two half campaigns partition exactly the
// unsharded outcome list.
func TestRunnerNewCampaignShard(t *testing.T) {
	runner, err := NewRunner(Protected(), NormalDriving(), sim.MS(30))
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	scs := fault.Singles(runner.Universe(sim.MS(5)))
	full, err := runner.NewCampaign("nc", stressor.Shard{}).Execute(scs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]fault.Outcome{}
	total := 0
	for s := 0; s < 2; s++ {
		res, err := runner.NewCampaign("nc", stressor.Shard{Index: s, Count: 2}).Execute(scs)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			byID[o.Scenario.ID] = o
		}
		total += len(res.Outcomes)
	}
	if total != len(full.Outcomes) {
		t.Fatalf("shards produced %d outcomes, full campaign %d", total, len(full.Outcomes))
	}
	for _, want := range full.Outcomes {
		got, ok := byID[want.Scenario.ID]
		if !ok || got.Class != want.Class || got.Detail != want.Detail {
			t.Fatalf("scenario %s: shard outcome %+v, full %+v", want.Scenario.ID, got, want)
		}
	}
}

// TestCampaignAdaptiveDeterminismMatrix runs the closed adaptive loop
// — Novelty strategy feeding on real CAPS state signatures — through
// the shared adaptive matrix: {sequential, 4 workers} × {rebuild,
// reuse} × {fresh, interrupted+resumed} must all reproduce the
// sequential reference exactly. This pins the engine's ordered-
// delivery guarantee against a real prototype, where run latencies
// genuinely vary.
func TestCampaignAdaptiveDeterminismMatrix(t *testing.T) {
	r, err := NewRunner(Protected(), NormalDriving(), sim.MS(30))
	if err != nil {
		t.Fatal(err)
	}
	universe := r.Universe(sim.MS(5))
	r.Close()
	stressortest.RunAdaptive(t, stressortest.AdaptiveConfig{
		Name:     "caps-e8-adaptive",
		Universe: universe,
		NewRun: func(t *testing.T, reuseOff bool) (stressor.RunFunc, func()) {
			r, err := NewRunner(Protected(), NormalDriving(), sim.MS(30))
			if err != nil {
				t.Fatal(err)
			}
			r.ReuseOff = reuseOff
			return r.SignedRunFunc(), r.Close
		},
	})
}
