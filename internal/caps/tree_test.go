package caps

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// transientUniverse is a universe where a meaningful fraction of runs
// re-converge with the golden trajectory after the fault window closes:
// every E8 descriptor plus a 2 ms transient variant of each.
func transientUniverse(t *testing.T, r *Runner) []fault.Scenario {
	t.Helper()
	return fault.Singles(withTransients(r.Universe(sim.MS(5))))
}

// TestTreeEarlyExitMatchesPlain is the non-vacuity guard behind the
// determinism matrix: a tree+early-exit campaign over the transient
// universe must (a) classify byte-identically to the plain engine and
// (b) actually early-exit some runs and fork from retained tree nodes
// — otherwise the byte-identity cells of the matrix would pass without
// ever exercising the new machinery.
func TestTreeEarlyExitMatchesPlain(t *testing.T) {
	runner, err := NewRunner(Protected(), NormalDriving(), sim.MS(30))
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	scenarios := transientUniverse(t, runner)

	plain, err := (&stressor.Campaign{Name: "caps-plain", Run: runner.RunFunc()}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tree, err := (&stressor.Campaign{
		Name: "caps-tree", Run: runner.RunFunc(),
		Checkpoints: true, Checkpointer: runner,
		CheckpointTree: true, EarlyExit: true,
		Metrics: reg,
	}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree.Outcomes, plain.Outcomes) {
		t.Errorf("tree+ee outcomes diverge from plain engine:\ngot:  %+v\nwant: %+v", tree.Outcomes, plain.Outcomes)
	}

	lbl := obs.L("campaign", "caps-tree")
	exits := reg.Counter("campaign.early_exits", lbl).Value()
	hits := reg.Counter("campaign.tree_hits", lbl).Value()
	extends := reg.Counter("campaign.tree_extends", lbl).Value()
	saved := reg.Counter("campaign.early_exit_saved_sim_ns", lbl).Value()
	if exits == 0 {
		t.Error("no run early-exited — transient universe should re-converge")
	}
	if hits+extends == 0 {
		t.Error("no run forked from a retained tree node")
	}
	if exits > 0 && saved == 0 {
		t.Error("early exits recorded but no saved simulated time")
	}
	t.Logf("early_exits=%d tree_hits=%d tree_extends=%d saved_sim_ns=%d", exits, hits, extends, saved)
}

// TestSnapshotCapturePooled pins the pooled snapshot-capture path of
// checkpoint sessions: once warm, re-capturing kernel and model state
// into the held buffers allocates nothing.
func TestSnapshotCapturePooled(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	sys, _ := Build(k, Protected(), NormalDriving())
	if err := k.Run(sim.MS(10)); err != nil {
		t.Fatal(err)
	}
	var cp sim.Checkpoint
	if err := k.SnapshotInto(&cp); err != nil {
		t.Fatal(err)
	}
	mst := sim.SnapshotModelState(sys, nil)
	allocs := testing.AllocsPerRun(50, func() {
		if err := k.SnapshotInto(&cp); err != nil {
			panic(err)
		}
		mst = sim.SnapshotModelState(sys, mst)
	})
	if allocs != 0 {
		t.Errorf("warm snapshot capture allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTreeEstablishSteadyStateAllocs pins the tree session's steady
// state: once nodes for a set of forks are retained, re-establishing
// those forks (restore from node, mark dirty, restore again) is
// allocation-free.
func TestTreeEstablishSteadyStateAllocs(t *testing.T) {
	runner, err := NewRunner(Protected(), NormalDriving(), sim.MS(30))
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	s := runner.NewTreeSession(stressor.TreeConfig{}).(*capsTreeSession)
	defer s.Close()
	u := runner.Universe(sim.MS(5))
	sc := fault.Single(u[0])
	// Warm: build nodes at two forks, then run each once more so every
	// pooled buffer has reached its steady-state capacity.
	for i := 0; i < 2; i++ {
		s.Run(sc, sim.MS(5))
		s.Run(sc, sim.MS(7))
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.core.Establish(sim.MS(5)); err != nil {
			panic(err)
		}
		s.core.MarkDirty()
		if err := s.core.Establish(sim.MS(7)); err != nil {
			panic(err)
		}
		s.core.MarkDirty()
	})
	if allocs != 0 {
		t.Errorf("steady-state tree establish allocates %.1f allocs/op, want 0", allocs)
	}
}
