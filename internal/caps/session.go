package caps

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// Golden-run checkpointing for the CAPS prototype: the Runner
// implements stressor.Checkpointer, so a Campaign with Checkpoints set
// simulates the fault-free prefix once per worker session, snapshots
// kernel + model state just before the injection instant, and restores
// instead of re-simulating for every scenario forked at that instant.

// ForkTime implements stressor.Checkpointer. A scenario forks at its
// earliest injection instant; scenarios with no faults (nothing to
// fork), an instant of zero (no prefix to amortize) or an instant past
// the horizon (never injects) fall back to the plain path, as does the
// whole runner when ReuseOff disables the reuse machinery.
func (r *Runner) ForkTime(sc fault.Scenario) (sim.Time, bool) {
	if r.ReuseOff || len(sc.Faults) == 0 {
		return 0, false
	}
	fork := stressor.ForkTime(sc)
	if fork == 0 || fork > r.horizon {
		return 0, false
	}
	return fork, true
}

// NewSession implements stressor.Checkpointer. Sessions own a private
// kernel+prototype (not taken from the slot pool: an abandoned session
// must be safe to drop without Close, and a session's golden state
// must never leak back into the pool).
func (r *Runner) NewSession() stressor.CheckpointSession {
	return &capsSession{r: r}
}

// capsSession is one worker's golden-run session. The checkpoint is
// taken at fork-1: restoring there and elaborating the stressor gives
// the stressor's initial activation one instant before the injection,
// which reproduces a full run's scheduling at the injection instant
// exactly (the stressor process id is the highest in both cases, so it
// evaluates last within a shared instant).
type capsSession struct {
	r   *Runner
	k   *sim.Kernel
	sys *System
	reg *fault.Registry
	st  stressor.Stressor

	cp     sim.Checkpoint
	cpOK   bool
	cpFork sim.Time
	mst    any
	dirty  bool
}

// Run implements stressor.CheckpointSession, producing the exact
// outcome Runner.RunScenario yields for the same scenario.
func (s *capsSession) Run(sc fault.Scenario, fork sim.Time) fault.Outcome {
	ob, err := s.execute(sc, fork)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}
	}
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(s.r.golden, ob)
	return fault.Outcome{Scenario: sc, Class: class, Detail: analysis.Describe(ob)}
}

// Close implements stressor.CheckpointSession. Method-only kernels
// hold no goroutines, so Shutdown is bookkeeping, not cleanup — which
// is what lets the campaign abandon a session without closing it.
func (s *capsSession) Close() {
	if s.k != nil {
		s.k.Shutdown()
	}
}

func (s *capsSession) execute(sc fault.Scenario, fork sim.Time) (analysis.Observation, error) {
	if err := s.establish(fork); err != nil {
		return analysis.Observation{}, err
	}
	s.dirty = true
	s.st.Respawn(s.k, s.reg, sc, s.r.horizon)
	if err := s.k.RunUntil(s.r.horizon); err != nil {
		return analysis.Observation{}, err
	}
	if errs := s.st.InjectionErrors(); len(errs) > 0 {
		return analysis.Observation{}, fmt.Errorf("caps: scenario %s: %v", sc.ID, errs[0])
	}
	return s.r.observe(s.sys), nil
}

// establish leaves the session's kernel at simulated time fork-1 in
// the golden (fault-free) state, with a matching checkpoint held for
// the next scenario at the same instant. Three cases, cheapest first:
// the held checkpoint matches (restore, or nothing if the kernel is
// still pristine there), the requested fork is later (restore, extend
// the golden run forward, re-snapshot), or earlier (rebuild the prefix
// from time zero — only possible when the campaign dispatches forks
// out of order, e.g. under StopOnFirst).
func (s *capsSession) establish(fork sim.Time) error {
	if s.k == nil {
		s.k = sim.NewKernel()
		if s.r.metrics != nil || s.r.trace != nil {
			s.k.SetInstrument(&sim.Instrument{Metrics: s.r.metrics, Trace: s.r.trace})
		}
		s.sys, s.reg = Build(s.k, s.r.cfg, s.r.world)
	}
	if s.cpOK && fork == s.cpFork {
		if !s.dirty {
			return nil
		}
		return s.restore()
	}
	if s.cpOK && fork > s.cpFork {
		if s.dirty {
			if err := s.restore(); err != nil {
				return err
			}
		}
	} else {
		// No checkpoint yet, or the fork precedes it: rebuild the golden
		// prefix from scratch. A fresh kernel is already pristine at
		// time zero; a used one re-arms through the PR 3 reuse path.
		if s.cpOK || s.dirty {
			s.k.Reset()
			s.sys.Rearm(s.k)
		}
	}
	if err := s.k.RunUntil(fork - 1); err != nil {
		return err
	}
	if err := s.k.SnapshotInto(&s.cp); err != nil {
		return err
	}
	// Pooled capture: reuse the previous snapshot's buffers — it is
	// superseded by this one, and steady-state re-snapshotting at a new
	// fork must not allocate.
	s.mst = sim.SnapshotModelState(s.sys, s.mst)
	s.cpOK = true
	s.cpFork = fork
	s.dirty = false
	return nil
}

// restore rewinds kernel and model to the held checkpoint.
func (s *capsSession) restore() error {
	if err := s.k.Restore(&s.cp); err != nil {
		return err
	}
	s.sys.RestoreState(s.mst)
	s.dirty = false
	return nil
}
