package caps

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/can"
	"repro/internal/fault"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/tlm"
)

// Config selects the safety mechanisms of the prototype — the knob
// experiment E8 turns to show their effect on the FMEDA metrics.
type Config struct {
	// Redundant uses two accelerometers instead of one.
	Redundant bool
	// Plausibility cross-checks the redundant sensors and inhibits on
	// disagreement.
	Plausibility bool
	// CalibCRC protects the calibration memory with a CRC-8 and falls
	// back to defaults on mismatch.
	CalibCRC bool
	// ThresholdRedundant stores the firing threshold twice (inverted)
	// and inhibits on mismatch.
	ThresholdRedundant bool
	// FrameWatchdog inhibits when sensor frames stop arriving.
	FrameWatchdog bool
	// Debounce is the number of consecutive over-threshold frames
	// required to fire (minimum 1).
	Debounce int

	// FireThreshold is the severity needed to deploy.
	FireThreshold byte
	// PlausTolerance is the allowed sensor disagreement in g.
	PlausTolerance float64
	// SamplePeriod is the fusion cycle time.
	SamplePeriod sim.Time
	// FrameTimeout is the airbag-side reception watchdog window.
	FrameTimeout sim.Time
	// DeployDeadline is the allowed crash-to-deployment latency (G2).
	DeployDeadline sim.Time
}

// Protected is the full-mechanism configuration.
func Protected() Config {
	return Config{
		Redundant: true, Plausibility: true, CalibCRC: true,
		ThresholdRedundant: true, FrameWatchdog: true, Debounce: 2,
		FireThreshold: 60, PlausTolerance: 5,
		SamplePeriod: sim.MS(1), FrameTimeout: sim.MS(5), DeployDeadline: sim.MS(30),
	}
}

// Unprotected disables every optional mechanism (single sensor, no
// checks, single-frame trigger).
func Unprotected() Config {
	c := Protected()
	c.Redundant = false
	c.Plausibility = false
	c.CalibCRC = false
	c.ThresholdRedundant = false
	c.FrameWatchdog = false
	c.Debounce = 1
	return c
}

// frameID is the CAN identifier of severity frames.
const frameID = 0x120

// calibScaleAddr is where the fusion calibration word (gain ×1000)
// lives in the calibration memory; calibCRCAddr holds its CRC-8.
const (
	calibScaleAddr uint64 = 0
	calibCRCAddr   uint64 = 4
)

// System is the elaborated CAPS virtual prototype.
type System struct {
	cfg   Config
	world *World
	k     *sim.Kernel

	// bound process bodies, created once in Build: Rearm re-registers
	// them without paying method-value allocation per run.
	fusionFn  func()
	framewdFn func()
	// cycleEv drives the fusion method process: it re-notifies itself
	// every SamplePeriod. Modelled as an SC_METHOD rather than an
	// SC_THREAD because the fusion cycle is the prototype's hottest
	// process — a method activation is a plain call, a thread wake costs
	// two goroutine switches. wdEv drives the frame watchdog the same
	// way; both processes being methods (no goroutine stack) is what
	// keeps the elaborated kernel snapshottable for checkpointed
	// campaigns.
	cycleEv *sim.Event
	wdEv    *sim.Event

	sensors  []*Sensor
	calib    *tlm.Memory
	bus      *can.Bus
	fusionTx *can.Node
	airbagRx *can.Node
	babbler  *can.Node

	// airbag state
	threshold     byte
	thresholdInv  byte // redundant inverted copy
	debounceCount int
	inhibited     bool
	lastFrameAt   sim.Time
	gotFrame      bool

	// results
	Fired      bool
	FiredAt    sim.Time
	Detections []string
	Severities []byte // reported severity stream (observable output)
	// Trace records error propagation through the prototype: every
	// place a disturbed value passes adds a hop ("track the error
	// propagation", Sec. 1 of the paper).
	Trace analysis.Trace
}

// Build wires the prototype onto the kernel and returns it with its
// injection-site registry populated.
func Build(k *sim.Kernel, cfg Config, world *World) (*System, *fault.Registry) {
	if cfg.Debounce < 1 {
		cfg.Debounce = 1
	}
	s := &System{cfg: cfg, world: world, k: k, threshold: cfg.FireThreshold, thresholdInv: ^cfg.FireThreshold}

	s.sensors = append(s.sensors, NewSensor("accel0", world))
	if cfg.Redundant {
		s.sensors = append(s.sensors, NewSensor("accel1", world))
	}

	// Calibration memory: gain x1000 (= 50 for 0.05 V/g) plus CRC-8.
	s.calib = tlm.NewMemory("fusion.calib", 0, 64)
	s.writeCalib(50)

	s.bus = can.NewBus(k, "caps.can")
	s.fusionTx = s.bus.Attach("fusion")
	s.airbagRx = s.bus.Attach("airbag")
	s.babbler = s.bus.Attach("babbler")
	s.airbagRx.OnReceive = s.onFrame

	s.fusionFn = s.fusionCycle
	s.framewdFn = s.frameWatchdog
	s.elaborate(k)

	reg := fault.NewRegistry()
	for i, sensor := range s.sensors {
		reg.MustRegister(fault.AnalogInjector(
			fmt.Sprintf("caps.accel%d.harness", i), sensor, 0, sensor.Rail))
	}
	reg.MustRegister(fault.MemoryInjector("caps.fusion.calib", s.calib))
	reg.MustRegister(&fault.FuncInjector{
		SiteName: "caps.can.bus",
		Models:   []fault.Model{fault.Corruption, fault.Omission, fault.Babbling},
		InjectFn: func(d fault.Descriptor) error {
			switch d.Model {
			case fault.Corruption:
				s.bus.CorruptNextFrames(3)
			case fault.Omission:
				s.bus.DropNextFrames(3)
			case fault.Babbling:
				s.babbler.Babbling = true
			}
			return nil
		},
		RevertFn: func(d fault.Descriptor) error {
			if d.Model == fault.Babbling {
				s.babbler.Babbling = false
			}
			return nil
		},
	})
	reg.MustRegister(&fault.FuncInjector{
		SiteName: "caps.airbag.threshold",
		Models:   []fault.Model{fault.BitFlip, fault.StuckAt0, fault.StuckAt1},
		InjectFn: func(d fault.Descriptor) error {
			switch d.Model {
			case fault.BitFlip:
				s.threshold ^= 1 << (d.Bit % 8)
			case fault.StuckAt0:
				s.threshold = 0
			case fault.StuckAt1:
				s.threshold = 0xff
			}
			return nil
		},
	})
	return s, reg
}

// Rearm implements the sim.Rearmable convention: after k.Reset() it
// re-elaborates the prototype's processes and events on the kernel and
// re-seeds every piece of mutable state to its exact post-Build value,
// so a reused system behaves identically to a freshly built one. The
// elaboration order mirrors Build — bus (wake event + arbitrate
// method) first, then the fusion thread, then the optional frame
// watchdog — because process ids are assigned in creation order and
// the schedule depends on them.
func (s *System) Rearm(k *sim.Kernel) {
	s.k = k
	s.bus.Rearm(k)
	for _, sen := range s.sensors {
		sen.SetDisturbance(0, math.NaN())
	}
	s.calib.Wipe()
	s.writeCalib(50)
	s.threshold = s.cfg.FireThreshold
	s.thresholdInv = ^s.cfg.FireThreshold
	s.debounceCount = 0
	s.inhibited = false
	s.lastFrameAt = 0
	s.gotFrame = false
	s.Fired = false
	s.FiredAt = 0
	// Detections is handed out by reference in observations; start a
	// fresh slice rather than truncating the old one.
	s.Detections = nil
	s.Severities = s.Severities[:0]
	s.Trace.Reset()
	s.elaborate(k)
}

// elaborate registers the fusion and watchdog processes, in the fixed
// order both Build and Rearm rely on, and kicks off the fusion cycle.
func (s *System) elaborate(k *sim.Kernel) {
	s.cycleEv = k.NewEvent("caps.fusion.cycle")
	k.MethodNoInit("caps.fusion", s.fusionFn, s.cycleEv)
	s.cycleEv.Notify(s.cfg.SamplePeriod)
	if s.cfg.FrameWatchdog {
		s.wdEv = k.NewEvent("caps.framewd.timer")
		k.MethodNoInit("caps.framewd", s.framewdFn, s.wdEv)
		s.wdEv.Notify(s.cfg.FrameTimeout)
	}
}

// writeCalib stores the gain and its CRC.
func (s *System) writeCalib(scale uint32) {
	s.calib.Poke(calibScaleAddr, []byte{byte(scale), byte(scale >> 8), byte(scale >> 16), byte(scale >> 24)})
	s.calib.Poke(calibCRCAddr, []byte{rtl.CRC8([]byte{byte(scale), byte(scale >> 8), byte(scale >> 16), byte(scale >> 24)})})
}

// readCalib loads the gain, applying the CRC mechanism when enabled.
func (s *System) readCalib() (scale float64) {
	// Stack-allocated payloads: this runs every fusion cycle and must
	// stay off the heap (tlm.NewRead would allocate payload + buffer).
	var d sim.Time
	var raw [4]byte
	p := tlm.Payload{Command: tlm.CmdRead, Address: calibScaleAddr, Data: raw[:]}
	s.calib.BTransport(&p, &d)
	val := uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24
	if s.cfg.CalibCRC {
		var crc [1]byte
		q := tlm.Payload{Command: tlm.CmdRead, Address: calibCRCAddr, Data: crc[:]}
		s.calib.BTransport(&q, &d)
		if rtl.CRC8(raw[:]) != crc[0] {
			s.detect("calib-crc")
			return 0.05 // safe default gain
		}
	}
	return float64(val) / 1000
}

// detect records a safety-mechanism activation (deduplicated).
func (s *System) detect(which string) {
	for _, d := range s.Detections {
		if d == which {
			return
		}
	}
	s.Detections = append(s.Detections, which)
}

// fusionCycle samples sensors once per cycle, plausibility-checks,
// computes severity, sends it on the bus and re-arms itself for the
// next SamplePeriod.
func (s *System) fusionCycle() {
	now := s.k.Now()
	scale := s.readCalib()
	for i, sen := range s.sensors {
		if sen.Faulted() {
			s.Trace.Record(now, fmt.Sprintf("caps.accel%d", i), "disturbed sample")
		}
	}
	g0 := s.sensors[0].Sample(now) / scale
	g := g0
	status := byte(0)
	if s.cfg.Redundant {
		g1 := s.sensors[1].Sample(now) / scale
		if s.cfg.Plausibility && math.Abs(g0-g1) > s.cfg.PlausTolerance {
			s.detect("plausibility")
			s.Trace.Record(now, "caps.fusion", "plausibility check stopped disagreeing sensors")
			status = 1 // invalid
		}
		g = (g0 + g1) / 2
	}
	sev := g * 0.77 // severity scaling: 80 g crash ~ 62 > threshold 60
	if sev < 0 {
		sev = 0
	}
	if sev > 255 {
		sev = 255
	}
	_ = s.fusionTx.Send(can.Frame{ID: frameID, Data: []byte{byte(sev), status}})
	s.cycleEv.Notify(s.cfg.SamplePeriod)
}

// onFrame is the airbag ECU's reception handler.
func (s *System) onFrame(f can.Frame, at sim.Time) {
	if f.ID != frameID || len(f.Data) < 2 {
		return
	}
	s.gotFrame = true
	s.lastFrameAt = at
	sev, status := f.Data[0], f.Data[1]
	s.Severities = append(s.Severities, sev)
	if status != 0 {
		s.inhibited = true
		return
	}
	if s.cfg.ThresholdRedundant && s.threshold != ^s.thresholdInv {
		s.detect("threshold-redundancy")
		s.inhibited = true
		return
	}
	if sev >= s.threshold {
		s.debounceCount++
		s.Trace.Record(at, "caps.airbag", fmt.Sprintf("over-threshold frame (sev %d >= %d)", sev, s.threshold))
	} else {
		s.debounceCount = 0
	}
	if s.debounceCount >= s.cfg.Debounce && !s.inhibited && !s.Fired {
		s.Fired = true
		s.FiredAt = at
		s.Trace.Record(at, "caps.airbag", "deployment")
	}
}

// frameWatchdog inhibits deployment when the severity stream stalls.
// It is a self-renotifying method process waking every FrameTimeout —
// the same instants the old thread form woke at, with the same
// process-id ordering against the bus delivery at a shared instant.
func (s *System) frameWatchdog() {
	now := s.k.Now()
	if now >= s.cfg.FrameTimeout {
		if !s.gotFrame || now-s.lastFrameAt > s.cfg.FrameTimeout {
			s.detect("frame-timeout")
			s.inhibited = true
		}
	}
	s.wdEv.Notify(s.cfg.FrameTimeout)
}

// Inhibited reports whether a mechanism latched the safe state.
func (s *System) Inhibited() bool { return s.inhibited }

// sensorState is one sensor's installed disturbance.
type sensorState struct{ offset, override float64 }

// systemState is the opaque deep copy of the prototype's mutable state
// returned by SnapshotState: airbag-side latches, observable outputs,
// the propagation trace, the calibration memory, the CAN bus and the
// sensor disturbances. The kernel checkpoint carries the scheduler
// side (fusion/watchdog timers, in-flight bus notifications).
type systemState struct {
	threshold     byte
	thresholdInv  byte
	debounceCount int
	inhibited     bool
	lastFrameAt   sim.Time
	gotFrame      bool
	fired         bool
	firedAt       sim.Time
	detections    []string
	severities    []byte
	trace         analysis.Trace
	calib         any
	bus           any
	sensors       []sensorState
}

// SnapshotState implements sim.Snapshottable.
func (s *System) SnapshotState() any {
	st := &systemState{
		threshold:     s.threshold,
		thresholdInv:  s.thresholdInv,
		debounceCount: s.debounceCount,
		inhibited:     s.inhibited,
		lastFrameAt:   s.lastFrameAt,
		gotFrame:      s.gotFrame,
		fired:         s.Fired,
		firedAt:       s.FiredAt,
		severities:    append([]byte(nil), s.Severities...),
		calib:         s.calib.SnapshotState(),
		bus:           s.bus.SnapshotState(),
		sensors:       make([]sensorState, len(s.sensors)),
	}
	if s.Detections != nil {
		st.detections = append([]string(nil), s.Detections...)
	}
	st.trace.CopyFrom(&s.Trace)
	for i, sen := range s.sensors {
		st.sensors[i] = sensorState{offset: sen.offset, override: sen.override}
	}
	return st
}

// SnapshotStateInto implements sim.StatePooler: SnapshotState reusing
// a previous capture's buffers so checkpoint-tree forking stays
// allocation-free in steady state.
func (s *System) SnapshotStateInto(prev any) any {
	st, _ := prev.(*systemState)
	if st == nil {
		return s.SnapshotState()
	}
	st.threshold = s.threshold
	st.thresholdInv = s.thresholdInv
	st.debounceCount = s.debounceCount
	st.inhibited = s.inhibited
	st.lastFrameAt = s.lastFrameAt
	st.gotFrame = s.gotFrame
	st.fired = s.Fired
	st.firedAt = s.FiredAt
	if s.Detections == nil {
		st.detections = nil
	} else {
		st.detections = append(st.detections[:0], s.Detections...)
	}
	st.severities = append(st.severities[:0], s.Severities...)
	st.trace.CopyFrom(&s.Trace)
	st.calib = s.calib.SnapshotStateInto(st.calib)
	st.bus = s.bus.SnapshotStateInto(st.bus)
	if len(st.sensors) != len(s.sensors) {
		st.sensors = make([]sensorState, len(s.sensors))
	}
	for i, sen := range s.sensors {
		st.sensors[i] = sensorState{offset: sen.offset, override: sen.override}
	}
	return st
}

// HashState implements sim.Hashable, covering exactly the mutable
// state that drives FUTURE evolution: the airbag latches
// (Fired/FiredAt, inhibited, debounce), the threshold registers, the
// calibration memory, the behavioral bus state and the installed
// sensor disturbances. Two runs with equal dynamic state at time t
// evolve identically from t on.
//
// Deliberately excluded, in two classes:
//
//   - Accumulated observation history (Detections, Severities): an
//     append-only record of the past that nothing feeds back into the
//     dynamics. A converged run's final history is its live prefix
//     plus the golden suffix — composeObservation splices it at
//     early-exit, replicating detect()'s dedup, so excluding it here
//     is what lets detected/SDC transients early-exit at all. (detect
//     does read Detections, but only to dedup appends — and a run
//     whose dynamics match fault-free golden makes no further detect
//     calls, since golden makes none.)
//   - Pure diagnostics (the propagation Trace): a transient fault
//     that leaves only a trace residue has, by definition, no
//     remaining effect.
func (s *System) HashState(h *sim.StateHash) {
	h.Byte(s.threshold)
	h.Byte(s.thresholdInv)
	h.Int(s.debounceCount)
	h.Bool(s.inhibited)
	h.Time(s.lastFrameAt)
	h.Bool(s.gotFrame)
	h.Bool(s.Fired)
	h.Time(s.FiredAt)
	s.calib.HashState(h)
	s.bus.HashState(h)
	for _, sen := range s.sensors {
		h.F64(sen.offset)
		// override uses NaN as its not-installed sentinel; fold a
		// presence bit so NaN payload bits never enter the digest.
		if math.IsNaN(sen.override) {
			h.Bool(false)
		} else {
			h.Bool(true)
			h.F64(sen.override)
		}
	}
}

// RestoreState implements sim.Snapshottable. Detections is rebuilt as
// a fresh slice on every restore because observations hand it out by
// reference — a run after one restore must not corrupt the last run's
// observation (mirroring Rearm).
func (s *System) RestoreState(state any) {
	st := state.(*systemState)
	s.threshold = st.threshold
	s.thresholdInv = st.thresholdInv
	s.debounceCount = st.debounceCount
	s.inhibited = st.inhibited
	s.lastFrameAt = st.lastFrameAt
	s.gotFrame = st.gotFrame
	s.Fired = st.fired
	s.FiredAt = st.firedAt
	s.Detections = nil
	if st.detections != nil {
		s.Detections = append([]string(nil), st.detections...)
	}
	s.Severities = append(s.Severities[:0], st.severities...)
	s.Trace.CopyFrom(&st.trace)
	s.calib.RestoreState(st.calib)
	s.bus.RestoreState(st.bus)
	for i, sen := range s.sensors {
		sen.offset = st.sensors[i].offset
		sen.override = st.sensors[i].override
	}
}
