// Package caps implements the paper's motivating case study (Fig. 1):
// a Combined Active and Passive Safety system as a virtual prototype —
// environment (crash/no-crash acceleration profiles), redundant
// acceleration sensors with analog fault hooks, a sensor-fusion ECU
// with CRC-protected calibration and plausibility checking, a CAN
// link, and an airbag control ECU with debounce, redundant-threshold
// checking and a frame watchdog.
//
// The system's safety goal G1 is the paper's own sentence: "it must
// be absolutely guaranteed that the failure of any system component
// does not trigger the airbag in normal operation". G2 is the dual:
// in a real crash the airbag must deploy within its deadline.
// Experiment E8 runs the exhaustive single-fault campaign over this
// prototype with mechanisms enabled and disabled.
package caps

import (
	"math"

	"repro/internal/sim"
)

// World is the deterministic environment model: the true acceleration
// at the sensor cluster over time. Determinism matters — golden and
// faulty runs must see identical physics.
type World struct {
	// Crash schedules a crash pulse.
	Crash bool
	// CrashStart is when the pulse begins.
	CrashStart sim.Time
	// PeakG is the pulse peak amplitude.
	PeakG float64
}

// NormalDriving is a calm world: sub-2g road noise.
func NormalDriving() *World {
	return &World{}
}

// CrashAt schedules an 80 g frontal-crash pulse.
func CrashAt(start sim.Time) *World {
	return &World{Crash: true, CrashStart: start, PeakG: 80}
}

// Accel reports the true acceleration (g) at time t: a small
// deterministic road-noise waveform, plus the crash pulse when
// scheduled (5 ms linear onset, 10 ms plateau, 10 ms linear decay).
func (w *World) Accel(t sim.Time) float64 {
	sec := t.Seconds()
	base := 0.8 + 0.4*math.Sin(2*math.Pi*7*sec) + 0.2*math.Sin(2*math.Pi*23*sec)
	if !w.Crash || t < w.CrashStart {
		return base
	}
	dt := (t - w.CrashStart).Seconds()
	const onset, plateau, decay = 0.005, 0.010, 0.010
	switch {
	case dt < onset:
		return base + w.PeakG*dt/onset
	case dt < onset+plateau:
		return base + w.PeakG
	case dt < onset+plateau+decay:
		return base + w.PeakG*(1-(dt-onset-plateau)/decay)
	default:
		return base
	}
}

// Sensor is an analog accelerometer with a wiring-harness fault hook:
// it converts true acceleration to a voltage (Scale V/g, clipped to
// the rails) and applies the installed disturbance. It implements
// fault.AnalogValue, so fault.AnalogInjector drives it directly.
type Sensor struct {
	Name  string
	World *World
	// Scale is the conversion gain in volts per g.
	Scale float64
	// Rail is the supply voltage (clipping level).
	Rail float64

	offset   float64
	override float64 // NaN = none; +Inf = open line (reads as 0 V)
}

// NewSensor creates a 0.05 V/g sensor on a 5 V rail.
func NewSensor(name string, w *World) *Sensor {
	return &Sensor{Name: name, World: w, Scale: 0.05, Rail: 5.0, override: math.NaN()}
}

// SetDisturbance implements fault.AnalogValue.
func (s *Sensor) SetDisturbance(offset, override float64) {
	s.offset = offset
	s.override = override
}

// Faulted reports whether a disturbance is installed.
func (s *Sensor) Faulted() bool {
	return s.offset != 0 || !math.IsNaN(s.override)
}

// Sample reads the sensor output voltage at time t.
func (s *Sensor) Sample(t sim.Time) float64 {
	if !math.IsNaN(s.override) {
		if math.IsInf(s.override, 1) {
			return 0 // open line with pull-down
		}
		return s.override
	}
	v := s.World.Accel(t)*s.Scale + s.offset
	return math.Max(0, math.Min(s.Rail, v))
}

// Gs converts a sampled voltage back to acceleration using the
// nominal gain (what the fusion ECU computes with its calibration).
func (s *Sensor) Gs(volts float64) float64 { return volts / s.Scale }
