package caps

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/safety"
	"repro/internal/sim"
)

// TestFPTCPredictionMatchesSimulation cross-validates the analytic
// FPTC model of the protected CAPS architecture against the error-
// effect simulation: the calculus predicts which failure classes reach
// the airbag, and the virtual prototype must agree.
func TestFPTCPredictionMatchesSimulation(t *testing.T) {
	// FPTC network of the protected architecture: two sensor lanes
	// into a fusion stage whose plausibility check masks single-lane
	// value failures but passes coincident ones; the bus propagates;
	// the airbag transforms incoming value failures into commission
	// (inadvertent deployment).
	s := safety.NewSystem()
	for _, lane := range []string{"accel0", "accel1"} {
		if err := s.Add(&safety.Component{Name: lane, Outputs: []string{"out"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add(&safety.Component{
		Name: "fusion", Inputs: []string{"a", "b"}, Outputs: []string{"frame"},
		Rules: []safety.Rule{
			{In: []safety.FailureType{safety.ValueF, safety.ValueF}, Out: []safety.FailureType{safety.ValueF}},
			{In: []safety.FailureType{safety.ValueF, safety.NoFailure}, Out: []safety.FailureType{safety.NoFailure}},
			{In: []safety.FailureType{safety.NoFailure, safety.ValueF}, Out: []safety.FailureType{safety.NoFailure}},
			{In: []safety.FailureType{safety.Var, safety.Any}, Out: []safety.FailureType{safety.Var}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&safety.Component{
		Name: "airbag", Inputs: []string{"frame"}, Outputs: []string{"squib"},
		Rules: []safety.Rule{
			{In: []safety.FailureType{safety.ValueF}, Out: []safety.FailureType{safety.CommissionF}},
			{In: []safety.FailureType{safety.Var}, Out: []safety.FailureType{safety.Var}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for _, conn := range [][4]string{
		{"accel0", "out", "fusion", "a"},
		{"accel1", "out", "fusion", "b"},
		{"fusion", "frame", "airbag", "frame"},
	} {
		if err := s.Connect(conn[0], conn[1], conn[2], conn[3]); err != nil {
			t.Fatal(err)
		}
	}

	// FPTC prediction 1: single-lane value failure never reaches the
	// squib.
	res, err := s.Propagate(map[string][]safety.FailureType{"accel0.out": {safety.ValueF}})
	if err != nil {
		t.Fatal(err)
	}
	_, singleReaches := res["airbag.squib"]

	// FPTC prediction 2: coincident value failures on both lanes
	// produce a commission failure at the squib.
	res, err = s.Propagate(map[string][]safety.FailureType{
		"accel0.out": {safety.ValueF},
		"accel1.out": {safety.ValueF},
	})
	if err != nil {
		t.Fatal(err)
	}
	dualTypes := res["airbag.squib"]
	dualCommission := false
	for _, f := range dualTypes {
		if f == safety.CommissionF {
			dualCommission = true
		}
	}

	if singleReaches {
		t.Fatal("FPTC model broken: single-lane failure reaches the squib")
	}
	if !dualCommission {
		t.Fatal("FPTC model broken: dual-lane failure does not reach the squib")
	}

	// Simulation must agree on both predictions.
	runner, err := NewRunner(Protected(), NormalDriving(), sim.MS(60))
	if err != nil {
		t.Fatal(err)
	}
	single := runner.RunScenario(fault.Single(fault.Descriptor{
		Name: "sts0", Model: fault.ShortToSupply, Class: fault.Permanent,
		Target: "caps.accel0.harness", Start: sim.MS(5),
	}))
	if single.Class == fault.SafetyCritical {
		t.Errorf("simulation contradicts FPTC: single-lane failure fired the airbag")
	}
	dual := runner.RunScenario(fault.Scenario{ID: "dual", Faults: []fault.Descriptor{
		{Name: "sts0", Model: fault.ShortToSupply, Class: fault.Permanent, Target: "caps.accel0.harness", Start: sim.MS(5)},
		{Name: "sts1", Model: fault.ShortToSupply, Class: fault.Permanent, Target: "caps.accel1.harness", Start: sim.MS(5)},
	}})
	if dual.Class != fault.SafetyCritical {
		t.Errorf("simulation contradicts FPTC: dual-lane failure classified %s, want safety-critical", dual.Class)
	}
}
