package caps

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/tlm"
)

// Runner executes fault-injection campaigns on the CAPS prototype: one
// golden run is cached, then each scenario runs to the horizon and its
// outcome is classified against the golden observation.
//
// By default the runner keeps a pool of kernel+system slots and re-arms
// one per scenario (Kernel.Reset + System.Rearm) instead of rebuilding
// the prototype from scratch: each concurrent RunFunc call checks out
// its own slot, so the pool grows to the campaign's peak worker count
// and every run still owns its kernel exclusively. Results are
// byte-identical to the rebuild-per-run path, which remains available
// behind ReuseOff.
type Runner struct {
	cfg     Config
	world   *World
	horizon sim.Time
	golden  analysis.Observation

	// ReuseOff disables kernel+system reuse: every scenario rebuilds
	// the prototype from scratch, as campaigns did before the reuse
	// engine. Useful to rule the reuse machinery out when debugging and
	// as the baseline in BenchmarkCampaignReuse.
	ReuseOff bool

	metrics *obs.Registry
	trace   *obs.TraceRecorder

	sites []string

	mu    sync.Mutex
	slots []*runnerSlot

	// checkpoint-tree shared state: the runner-wide node free list
	// (buffers survive session abandonment and cross-campaign reuse)
	// and the golden-trajectory cache keyed by normalized hash stride.
	nodePool stressor.NodePool
	trajMu   sync.Mutex
	trajs    map[sim.Time]*capsTrajectory
}

// runnerSlot is one reusable kernel+prototype pair with its
// injection-site registry (the registry's injectors close over the
// persistent system objects, so it stays valid across re-arms).
type runnerSlot struct {
	k   *sim.Kernel
	sys *System
	reg *fault.Registry
	// st is the slot's stressor, Respawned per scenario so its record
	// and timeline buffers are reused across the campaign.
	st *stressor.Stressor

	// sinks the slot's instrument was last built with, to detect
	// Instrument() changes between runs.
	metrics *obs.Registry
	trace   *obs.TraceRecorder
}

// NewRunner builds the runner, caches the injection-site list and
// performs the golden run.
func NewRunner(cfg Config, world *World, horizon sim.Time) (*Runner, error) {
	r := &Runner{cfg: cfg, world: world, horizon: horizon}
	s := r.acquireSlot()
	r.sites = s.reg.Sites()
	r.releaseSlot(s)
	ob, _, err := r.execute(fault.Scenario{ID: "golden"})
	if err != nil {
		return nil, err
	}
	r.golden = ob
	if r.golden.GoalViolated {
		return nil, fmt.Errorf("caps: golden run violates the safety goal: %s", r.golden.GoalDetail)
	}
	return r, nil
}

// Golden exposes the cached golden observation.
func (r *Runner) Golden() analysis.Observation { return r.golden }

// Instrument attaches observability sinks: every subsequent scenario
// kernel publishes its statistics to reg and its run spans to tr.
// Both sinks are race-safe, so instrumented runners work unchanged
// inside parallel campaigns. Pass nils to detach. Call between
// campaigns, not concurrently with runs.
func (r *Runner) Instrument(reg *obs.Registry, tr *obs.TraceRecorder) {
	r.metrics = reg
	r.trace = tr
}

// Close shuts down the thread goroutines parked in the slot pool. The
// runner must not be used afterwards. Calling it is optional — pooled
// goroutines are parked, not spinning — but keeps goroutine-leak
// checkers quiet in tests.
func (r *Runner) Close() {
	r.mu.Lock()
	slots := r.slots
	r.slots = nil
	r.mu.Unlock()
	for _, s := range slots {
		s.k.Shutdown()
	}
}

// acquireSlot checks a slot out of the pool, re-arming it for a fresh
// run, or builds a new one when every slot is in use.
func (r *Runner) acquireSlot() *runnerSlot {
	r.mu.Lock()
	var s *runnerSlot
	if n := len(r.slots); n > 0 {
		s = r.slots[n-1]
		r.slots[n-1] = nil
		r.slots = r.slots[:n-1]
	}
	r.mu.Unlock()
	if s == nil {
		k := sim.NewKernel()
		sys, reg := Build(k, r.cfg, r.world)
		s = &runnerSlot{k: k, sys: sys, reg: reg}
	} else {
		s.k.Reset()
		s.sys.Rearm(s.k)
	}
	if s.metrics != r.metrics || s.trace != r.trace {
		s.metrics, s.trace = r.metrics, r.trace
		if s.metrics != nil || s.trace != nil {
			// One Instrument per kernel: the struct carries per-kernel
			// delta state and must not be shared across kernels.
			s.k.SetInstrument(&sim.Instrument{Metrics: s.metrics, Trace: s.trace})
		} else {
			s.k.SetInstrument(nil)
		}
	}
	return s
}

func (r *Runner) releaseSlot(s *runnerSlot) {
	r.mu.Lock()
	r.slots = append(r.slots, s)
	r.mu.Unlock()
}

// Sites lists the prototype's injection sites (cached at NewRunner).
func (r *Runner) Sites() []string {
	return append([]string(nil), r.sites...)
}

// Universe enumerates the exhaustive single-fault space of the
// prototype at the given activation time — the E8 fault list.
func (r *Runner) Universe(start sim.Time) []fault.Descriptor {
	var reg *fault.Registry
	if r.ReuseOff {
		k := sim.NewKernel()
		defer k.Shutdown()
		_, reg = Build(k, r.cfg, r.world)
	} else {
		s := r.acquireSlot()
		defer r.releaseSlot(s)
		reg = s.reg
	}
	models := []fault.Model{
		fault.StuckAt0, fault.StuckAt1, fault.BitFlip, fault.Open,
		fault.ShortToGround, fault.ShortToSupply, fault.ValueOffset,
		fault.Corruption, fault.Omission, fault.Babbling,
	}
	u := reg.Universe(models, fault.Permanent, start, 0, 0)
	for i := range u {
		// Give analog offsets a meaningful drift and memory faults a
		// target cell.
		switch u[i].Model {
		case fault.ValueOffset:
			u[i].Param = 0.5 // +10 g equivalent
		case fault.BitFlip, fault.StuckAt0, fault.StuckAt1:
			u[i].Address = calibScaleAddr
			u[i].Bit = 5
		}
	}
	return u
}

// execute runs one scenario to the horizon on a pooled (or, with
// ReuseOff, freshly built) prototype and returns the observation plus
// an independent copy of the propagation trace.
func (r *Runner) execute(sc fault.Scenario) (analysis.Observation, *analysis.Trace, error) {
	if r.ReuseOff {
		k := sim.NewKernel()
		defer k.Shutdown()
		if r.metrics != nil || r.trace != nil {
			k.SetInstrument(&sim.Instrument{Metrics: r.metrics, Trace: r.trace})
		}
		sys, reg := Build(k, r.cfg, r.world)
		return r.runOn(k, sys, reg, nil, sc)
	}
	s := r.acquireSlot()
	defer r.releaseSlot(s)
	return r.runOn(s.k, s.sys, s.reg, s, sc)
}

// runOn executes one scenario on an elaborated prototype. slot is nil
// on the rebuild path; when set, the slot's pooled stressor drives the
// scenario instead of a freshly allocated one.
func (r *Runner) runOn(k *sim.Kernel, sys *System, reg *fault.Registry, slot *runnerSlot, sc fault.Scenario) (analysis.Observation, *analysis.Trace, error) {
	var st *stressor.Stressor
	if len(sc.Faults) > 0 {
		if slot != nil {
			if slot.st == nil {
				slot.st = &stressor.Stressor{}
			}
			st = slot.st
			st.Respawn(k, reg, sc, r.horizon)
		} else {
			st = stressor.SpawnThread(k, reg, sc, r.horizon)
		}
	}
	if err := k.Run(r.horizon); err != nil {
		return analysis.Observation{}, nil, err
	}
	if st != nil {
		if errs := st.InjectionErrors(); len(errs) > 0 {
			return analysis.Observation{}, nil, fmt.Errorf("caps: scenario %s: %v", sc.ID, errs[0])
		}
	}
	// Clone the trace: the system's own trace buffer is re-armed for
	// the slot's next run.
	return r.observe(sys), sys.Trace.Clone(), nil
}

// formatSeverities renders the severity stream exactly as
// fmt.Sprint([]byte) would ("[1 2 3]") without fmt's reflection cost —
// observe runs once per campaign scenario.
func formatSeverities(sev []byte) string {
	buf := make([]byte, 0, 2+4*len(sev))
	buf = append(buf, '[')
	for i, v := range sev {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendUint(buf, uint64(v), 10)
	}
	buf = append(buf, ']')
	return string(buf)
}

// observe extracts the run observation.
func (r *Runner) observe(s *System) analysis.Observation {
	ob := analysis.Observation{
		Outputs: map[string]string{
			"fired": strconv.FormatBool(s.Fired),
			"sev":   formatSeverities(s.Severities),
		},
		Detected:   len(s.Detections) > 0,
		DetectedBy: s.Detections,
	}
	if r.world.Crash {
		deadline := r.world.CrashStart + r.cfg.DeployDeadline
		switch {
		case !s.Fired:
			ob.GoalViolated = true
			ob.GoalDetail = "no deployment in crash (G2)"
		case s.FiredAt > deadline:
			ob.DeadlineMissed = true
		}
	} else if s.Fired {
		ob.GoalViolated = true
		ob.GoalDetail = "inadvertent deployment in normal operation (G1)"
	}
	ob.LatentState = r.stateCorrupted(s)
	return ob
}

// stateCorrupted compares persistent state against the design values.
func (r *Runner) stateCorrupted(s *System) bool {
	if s.threshold != s.cfg.FireThreshold {
		return true
	}
	var d sim.Time
	var raw [4]byte
	p := tlm.Payload{Command: tlm.CmdRead, Address: calibScaleAddr, Data: raw[:]}
	s.calib.BTransport(&p, &d)
	val := uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24
	if val != 50 {
		return true
	}
	for _, sen := range s.sensors {
		if sen.Faulted() {
			return true
		}
	}
	return false
}

// RunScenario executes and classifies one fault scenario.
func (r *Runner) RunScenario(sc fault.Scenario) fault.Outcome {
	o, _ := r.RunScenarioTraced(sc)
	return o
}

// RunScenarioTraced is RunScenario plus the error-propagation trace
// recorded by the prototype (fault → sensor → fusion → airbag hops).
func (r *Runner) RunScenarioTraced(sc fault.Scenario) (fault.Outcome, *analysis.Trace) {
	ob, tr, err := r.execute(sc)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}, &analysis.Trace{}
	}
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(r.golden, ob)
	return fault.Outcome{Scenario: sc, Class: class, Detail: analysis.Describe(ob)}, tr
}

// RunFunc adapts the runner to the campaign engine.
func (r *Runner) RunFunc() stressor.RunFunc {
	return func(sc fault.Scenario) fault.Outcome { return r.RunScenario(sc) }
}

// RunScenarioSigned is RunScenario plus the outcome's equivalence
// signature: the prototype's final-state digest (System.HashState —
// the same digest convergence early-exit trusts) folded with the
// classification. Two runs with equal signatures ended behaviorally
// indistinguishable; adaptive campaigns prune and explore on exactly
// this. A run that errors out carries no signature (the engine
// substitutes its class+detail fallback).
func (r *Runner) RunScenarioSigned(sc fault.Scenario) fault.Outcome {
	if r.ReuseOff {
		k := sim.NewKernel()
		defer k.Shutdown()
		if r.metrics != nil || r.trace != nil {
			k.SetInstrument(&sim.Instrument{Metrics: r.metrics, Trace: r.trace})
		}
		sys, reg := Build(k, r.cfg, r.world)
		ob, _, err := r.runOn(k, sys, reg, nil, sc)
		return r.classifySigned(sc, ob, sys, err)
	}
	s := r.acquireSlot()
	defer r.releaseSlot(s)
	ob, _, err := r.runOn(s.k, s.sys, s.reg, s, sc)
	return r.classifySigned(sc, ob, s.sys, err)
}

// classifySigned folds an observation into a signed outcome while the
// run's system is still checked out (the state digest must be taken
// before the slot re-arms for another scenario).
func (r *Runner) classifySigned(sc fault.Scenario, ob analysis.Observation, sys *System, err error) fault.Outcome {
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}
	}
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(r.golden, ob)
	return fault.Outcome{
		Scenario: sc, Class: class, Detail: analysis.Describe(ob),
		Signature: sim.MixSignature(sim.StateSignature(sys), uint64(class)),
	}
}

// SignedRunFunc adapts the signed path to the adaptive campaign
// engine. Outcomes are identical to RunFunc's except for Signature, so
// plain campaigns keep byte-stable results by using RunFunc.
func (r *Runner) SignedRunFunc() stressor.RunFunc {
	return func(sc fault.Scenario) fault.Outcome { return r.RunScenarioSigned(sc) }
}

// NewCampaign builds a campaign over this runner for one shard of the
// scenario universe (pass the zero Shard for an unsharded campaign).
// The caller layers on workers, journaling, StopOnFirst and
// observability; the runner's own instrumentation rides along.
func (r *Runner) NewCampaign(name string, shard stressor.Shard) *stressor.Campaign {
	return &stressor.Campaign{
		Name: name, Run: r.RunFunc(), Shard: shard,
		Checkpointer: r,
		Metrics:      r.metrics, Trace: r.trace,
	}
}
