package caps

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/tlm"
)

// Runner executes fault-injection campaigns on the CAPS prototype:
// one golden run is cached, then each scenario rebuilds a fresh
// system, schedules the stressor and classifies the outcome against
// the golden observation.
type Runner struct {
	cfg     Config
	world   *World
	horizon sim.Time
	golden  analysis.Observation

	metrics *obs.Registry
	trace   *obs.TraceRecorder
}

// NewRunner builds the runner and performs the golden run.
func NewRunner(cfg Config, world *World, horizon sim.Time) (*Runner, error) {
	r := &Runner{cfg: cfg, world: world, horizon: horizon}
	sys, err := r.execute(fault.Scenario{ID: "golden"})
	if err != nil {
		return nil, err
	}
	r.golden = r.observe(sys)
	if r.golden.GoalViolated {
		return nil, fmt.Errorf("caps: golden run violates the safety goal: %s", r.golden.GoalDetail)
	}
	return r, nil
}

// Golden exposes the cached golden observation.
func (r *Runner) Golden() analysis.Observation { return r.golden }

// Instrument attaches observability sinks: every subsequent scenario
// kernel publishes its statistics to reg and its run spans to tr.
// Both sinks are race-safe, so instrumented runners work unchanged
// inside parallel campaigns. Pass nils to detach.
func (r *Runner) Instrument(reg *obs.Registry, tr *obs.TraceRecorder) {
	r.metrics = reg
	r.trace = tr
}

// Sites lists the prototype's injection sites.
func (r *Runner) Sites() []string {
	k := sim.NewKernel()
	defer k.Shutdown()
	_, reg := Build(k, r.cfg, r.world)
	return reg.Sites()
}

// Universe enumerates the exhaustive single-fault space of the
// prototype at the given activation time — the E8 fault list.
func (r *Runner) Universe(start sim.Time) []fault.Descriptor {
	k := sim.NewKernel()
	defer k.Shutdown()
	_, reg := Build(k, r.cfg, r.world)
	models := []fault.Model{
		fault.StuckAt0, fault.StuckAt1, fault.BitFlip, fault.Open,
		fault.ShortToGround, fault.ShortToSupply, fault.ValueOffset,
		fault.Corruption, fault.Omission, fault.Babbling,
	}
	u := reg.Universe(models, fault.Permanent, start, 0, 0)
	for i := range u {
		// Give analog offsets a meaningful drift and memory faults a
		// target cell.
		switch u[i].Model {
		case fault.ValueOffset:
			u[i].Param = 0.5 // +10 g equivalent
		case fault.BitFlip, fault.StuckAt0, fault.StuckAt1:
			u[i].Address = calibScaleAddr
			u[i].Bit = 5
		}
	}
	return u
}

// execute runs one scenario to the horizon and returns the system.
func (r *Runner) execute(sc fault.Scenario) (*System, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	if r.metrics != nil || r.trace != nil {
		// One Instrument per kernel: the struct carries per-kernel
		// delta state and must not be shared across scenarios.
		k.SetInstrument(&sim.Instrument{Metrics: r.metrics, Trace: r.trace})
	}
	sys, reg := Build(k, r.cfg, r.world)
	var st *stressor.Stressor
	if len(sc.Faults) > 0 {
		st = stressor.SpawnThread(k, reg, sc, r.horizon)
	}
	if err := k.Run(r.horizon); err != nil {
		return nil, err
	}
	if st != nil {
		if errs := st.InjectionErrors(); len(errs) > 0 {
			return nil, fmt.Errorf("caps: scenario %s: %v", sc.ID, errs[0])
		}
	}
	return sys, nil
}

// observe extracts the run observation.
func (r *Runner) observe(s *System) analysis.Observation {
	ob := analysis.Observation{
		Outputs: map[string]string{
			"fired": fmt.Sprint(s.Fired),
			"sev":   fmt.Sprint(s.Severities),
		},
		Detected:   len(s.Detections) > 0,
		DetectedBy: s.Detections,
	}
	if r.world.Crash {
		deadline := r.world.CrashStart + r.cfg.DeployDeadline
		switch {
		case !s.Fired:
			ob.GoalViolated = true
			ob.GoalDetail = "no deployment in crash (G2)"
		case s.FiredAt > deadline:
			ob.DeadlineMissed = true
		}
	} else if s.Fired {
		ob.GoalViolated = true
		ob.GoalDetail = "inadvertent deployment in normal operation (G1)"
	}
	ob.LatentState = r.stateCorrupted(s)
	return ob
}

// stateCorrupted compares persistent state against the design values.
func (r *Runner) stateCorrupted(s *System) bool {
	if s.threshold != s.cfg.FireThreshold {
		return true
	}
	var d sim.Time
	p := tlm.NewRead(calibScaleAddr, 4)
	s.calib.BTransport(p, &d)
	val := uint32(p.Data[0]) | uint32(p.Data[1])<<8 | uint32(p.Data[2])<<16 | uint32(p.Data[3])<<24
	if val != 50 {
		return true
	}
	for _, sen := range s.sensors {
		if sen.Faulted() {
			return true
		}
	}
	return false
}

// RunScenario executes and classifies one fault scenario.
func (r *Runner) RunScenario(sc fault.Scenario) fault.Outcome {
	o, _ := r.RunScenarioTraced(sc)
	return o
}

// RunScenarioTraced is RunScenario plus the error-propagation trace
// recorded by the prototype (fault → sensor → fusion → airbag hops).
func (r *Runner) RunScenarioTraced(sc fault.Scenario) (fault.Outcome, *analysis.Trace) {
	sys, err := r.execute(sc)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}, &analysis.Trace{}
	}
	ob := r.observe(sys)
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(r.golden, ob)
	return fault.Outcome{Scenario: sc, Class: class, Detail: analysis.Describe(ob)}, &sys.Trace
}

// RunFunc adapts the runner to the campaign engine.
func (r *Runner) RunFunc() stressor.RunFunc {
	return func(sc fault.Scenario) fault.Outcome { return r.RunScenario(sc) }
}
