package caps

import (
	"fmt"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// Checkpoint-tree session for the CAPS prototype: the plain session of
// session.go generalized over stressor.TreeCore (a budget of retained
// golden-prefix nodes instead of one checkpoint) with optional
// convergence early-exit against the runner's golden trajectory.

// NewTreeSession implements stressor.TreeCheckpointer. Like
// NewSession, the returned session owns a private kernel+prototype —
// never a pooled slot — so abandoning it without Close is safe; its
// retained tree nodes come from the runner-wide pool and are reclaimed
// through Recycle.
func (r *Runner) NewTreeSession(cfg stressor.TreeConfig) stressor.CheckpointSession {
	return &capsTreeSession{r: r, cfg: cfg}
}

// capsTrajectory is the golden trajectory plus the CAPS-specific
// sidecar an early-exited run composes its final observation from:
// the golden output history (severity stream, detections) with its
// per-stride lengths, and the golden final dynamic-derived facts
// (firing, latent corruption). The digest itself covers only dynamic
// state — see System.HashState — so the sidecar is what turns "the
// dynamics re-joined golden at t" into the byte-identical full-horizon
// observation.
type capsTrajectory struct {
	tr *stressor.GoldenTrajectory
	// sevCount[i]/detCount[i] are the golden history lengths at stride
	// instant (i+1)*stride: the splice points for a run converging there.
	sevCount []int
	detCount []int
	// sev/det are the golden full-horizon output histories.
	sev []byte
	det []string
	// fired/firedAt/latent are the golden final dynamic-derived facts.
	fired   bool
	firedAt sim.Time
	latent  bool
}

// trajectory returns the golden trajectory for the given hash stride,
// recording it on first use (one dedicated golden run per distinct
// stride, shared by every session of the runner).
func (r *Runner) trajectory(stride sim.Time) (*capsTrajectory, error) {
	stride = stressor.NormalizeStride(stride, r.horizon)
	r.trajMu.Lock()
	defer r.trajMu.Unlock()
	if tj, ok := r.trajs[stride]; ok {
		return tj, nil
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	sys, _ := Build(k, r.cfg, r.world)
	tj := &capsTrajectory{}
	tr, err := stressor.RecordTrajectoryFunc(k, sys, stride, r.horizon, func(i int, t sim.Time) {
		tj.sevCount = append(tj.sevCount, len(sys.Severities))
		tj.detCount = append(tj.detCount, len(sys.Detections))
	})
	if err != nil {
		return nil, err
	}
	if err := k.RunUntil(r.horizon); err != nil {
		return nil, err
	}
	tj.tr = tr
	tj.sev = append([]byte(nil), sys.Severities...)
	tj.det = append([]string(nil), sys.Detections...)
	tj.fired, tj.firedAt = sys.Fired, sys.FiredAt
	tj.latent = r.stateCorrupted(sys)
	if r.trajs == nil {
		r.trajs = make(map[sim.Time]*capsTrajectory)
	}
	r.trajs[stride] = tj
	return tj, nil
}

// capsTreeSession is one worker's tree session: a private
// kernel+prototype plus the shared TreeCore machinery.
type capsTreeSession struct {
	r    *Runner
	cfg  stressor.TreeConfig
	core stressor.TreeCore
	st   stressor.Stressor
	sys  *System
	reg  *fault.Registry
	traj *capsTrajectory
}

// init lazily builds the session's kernel, prototype and (with
// early-exit on) trajectory, mirroring capsSession.establish's lazy
// construction.
func (s *capsTreeSession) init() error {
	if s.core.K != nil {
		return nil
	}
	k := sim.NewKernel()
	if s.r.metrics != nil || s.r.trace != nil {
		k.SetInstrument(&sim.Instrument{Metrics: s.r.metrics, Trace: s.r.trace})
	}
	s.sys, s.reg = Build(k, s.r.cfg, s.r.world)
	s.core = stressor.TreeCore{
		Cfg: s.cfg, K: k, Model: s.sys, Pool: &s.r.nodePool,
		Rebuild: func() { k.Reset(); s.sys.Rearm(k) },
	}
	s.core.Init()
	if s.cfg.EarlyExit {
		tr, err := s.r.trajectory(s.cfg.HashStride)
		if err != nil {
			return err
		}
		s.traj = tr
	}
	return nil
}

// Run implements stressor.CheckpointSession, producing the exact
// outcome Runner.RunScenario yields for the same scenario — for
// early-exited runs via the composite observation (live history prefix
// + golden suffix), which observe would have produced at full horizon.
func (s *capsTreeSession) Run(sc fault.Scenario, fork sim.Time) fault.Outcome {
	ob, err := s.execute(sc, fork)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}
	}
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(s.r.golden, ob)
	return fault.Outcome{Scenario: sc, Class: class, Detail: analysis.Describe(ob)}
}

// Close implements stressor.CheckpointSession, returning the retained
// nodes to the runner pool before shutting the kernel down.
func (s *capsTreeSession) Close() {
	s.core.Recycle()
	if s.core.K != nil {
		s.core.K.Shutdown()
	}
}

// Recycle implements stressor.RecyclableSession: the campaign reclaims
// an abandoned session's nodes once the runaway run has finished.
func (s *capsTreeSession) Recycle() { s.core.Recycle() }

func (s *capsTreeSession) execute(sc fault.Scenario, fork sim.Time) (analysis.Observation, error) {
	if err := s.init(); err != nil {
		return analysis.Observation{}, err
	}
	if err := s.core.Establish(fork); err != nil {
		return analysis.Observation{}, err
	}
	s.core.MarkDirty()
	s.st.Respawn(s.core.K, s.reg, sc, s.r.horizon)
	if s.traj != nil {
		converged, at, err := s.traj.tr.RunToHorizon(s.core.K, s.sys, &s.st)
		if err != nil {
			return analysis.Observation{}, err
		}
		if converged {
			if errs := s.st.InjectionErrors(); len(errs) > 0 {
				return analysis.Observation{}, fmt.Errorf("caps: scenario %s: %v", sc.ID, errs[0])
			}
			s.core.NoteEarlyExit(s.r.horizon - at)
			return s.composeObservation(at), nil
		}
	} else if err := s.core.K.RunUntil(s.r.horizon); err != nil {
		return analysis.Observation{}, err
	}
	if errs := s.st.InjectionErrors(); len(errs) > 0 {
		return analysis.Observation{}, fmt.Errorf("caps: scenario %s: %v", sc.ID, errs[0])
	}
	return s.r.observe(s.sys), nil
}

// composeObservation builds the full-horizon observation of a run
// whose dynamic state re-joined the golden trajectory at stride
// instant `at`: live accumulated history up to `at`, golden history
// after it. Soundness rests on two facts. First, equal dynamic state
// at `at` means the run evolves identically to golden from `at` on, so
// its remaining output history IS the golden suffix — spliced at
// GOLDEN's per-stride lengths, since the live prefix may be shorter
// (an omission fault drops severity appends without diverging the
// dynamics for long). Second, the golden run is fault-free and records
// zero detections, so the spliced detection suffix is empty in
// practice; the dedup guard below still mirrors detect()'s
// already-recorded check byte-for-byte should that ever change.
func (s *capsTreeSession) composeObservation(at sim.Time) analysis.Observation {
	tj := s.traj
	i := int(at/tj.tr.Stride) - 1
	sev := append(append([]byte(nil), s.sys.Severities...), tj.sev[tj.sevCount[i]:]...)
	det := append([]string(nil), s.sys.Detections...)
tail:
	for _, d := range tj.det[tj.detCount[i]:] {
		for _, have := range det {
			if have == d {
				continue tail
			}
		}
		det = append(det, d)
	}
	ob := analysis.Observation{
		Outputs: map[string]string{
			"fired": strconv.FormatBool(tj.fired),
			"sev":   formatSeverities(sev),
		},
		Detected:   len(det) > 0,
		DetectedBy: det,
	}
	if s.r.world.Crash {
		deadline := s.r.world.CrashStart + s.r.cfg.DeployDeadline
		switch {
		case !tj.fired:
			ob.GoalViolated = true
			ob.GoalDetail = "no deployment in crash (G2)"
		case tj.firedAt > deadline:
			ob.DeadlineMissed = true
		}
	} else if tj.fired {
		ob.GoalViolated = true
		ob.GoalDetail = "inadvertent deployment in normal operation (G1)"
	}
	ob.LatentState = tj.latent
	return ob
}
