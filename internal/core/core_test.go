package core

import (
	"strings"
	"testing"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/missionprofile"
	"repro/internal/sim"
)

func capsEvaluation(t *testing.T, cfg caps.Config) *Evaluation {
	t.Helper()
	horizon := sim.MS(60)
	runner, err := caps.NewRunner(cfg, caps.NormalDriving(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := missionprofile.VehicleUnderhood("vehicle").Refine("caps", []missionprofile.TransferRule{
		{Kind: missionprofile.Vibration, Factor: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Evaluation{
		Profile:   profile,
		Sites:     runner.Sites(),
		Run:       runner.RunFunc(),
		Horizon:   horizon - sim.MS(5),
		Seed:      1,
		Replicate: 3,
	}
}

func TestEvaluationEndToEnd(t *testing.T) {
	ev := capsEvaluation(t, caps.Protected())
	s, err := ev.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if s.Derived == 0 || s.Scenarios != s.Derived*3 {
		t.Errorf("derived %d, scenarios %d", s.Derived, s.Scenarios)
	}
	if s.Tally.Total() != s.Scenarios {
		t.Errorf("tally total %d != scenarios %d", s.Tally.Total(), s.Scenarios)
	}
	if s.Coverage <= 0 || s.Coverage > 1 {
		t.Errorf("coverage = %v", s.Coverage)
	}
	if len(s.WeakSpots) == 0 {
		t.Error("no weak-spot ranking")
	}
	// Protected system under profile-derived single faults: no hazard.
	if s.Tally[fault.SafetyCritical] != 0 {
		t.Errorf("protected system failed: %s", s.Tally)
	}
	if s.TopEventProbability != 0 {
		t.Errorf("P(hazard) = %v, want 0 for a clean campaign", s.TopEventProbability)
	}
	if !strings.Contains(s.String(), "coverage") {
		t.Errorf("summary = %s", s)
	}
}

func TestEvaluationValidation(t *testing.T) {
	if _, err := (&Evaluation{}).Execute(); err == nil {
		t.Error("empty evaluation accepted")
	}
	ev := capsEvaluation(t, caps.Protected())
	ev.Horizon = 0
	if _, err := ev.Execute(); err == nil {
		t.Error("zero horizon accepted")
	}
	ev = capsEvaluation(t, caps.Protected())
	ev.Sites = []string{"nothing.matches"}
	if _, err := ev.Execute(); err == nil {
		t.Error("site set deriving no faults accepted")
	}
}

func TestEvaluationDeterministicPerSeed(t *testing.T) {
	a, err := capsEvaluation(t, caps.Protected()).Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := capsEvaluation(t, caps.Protected()).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different summaries:\n%s\n%s", a, b)
	}
}
