// Package core is the framework façade: it wires the paper's three
// pillars — (i) Mission Profiles, (ii) UVM-style testbenches with
// fault injectors, (iii) error-effect simulation — into one
// end-to-end safety evaluation (Sec. 3.1 of the paper).
//
// An Evaluation takes a mission profile, a derivation rule base and a
// virtual prototype (as a campaign RunFunc plus its injection sites),
// and produces the quantitative artifacts the methodology promises:
// the outcome tally, fault-space coverage, the weak-spot ranking, and
// a fault tree synthesized from the observed failures.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/missionprofile"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// Evaluation is one configured safety evaluation.
type Evaluation struct {
	// Profile is the (already refined) mission profile of the
	// component under evaluation.
	Profile *missionprofile.Profile
	// Rules derive fault descriptions from the profile's stresses;
	// nil selects missionprofile.DefaultRules.
	Rules []missionprofile.DerivationRule
	// Sites are the prototype's injection sites.
	Sites []string
	// Run executes one fault scenario on the prototype.
	Run stressor.RunFunc
	// Horizon is the simulated duration per run.
	Horizon sim.Time
	// Seed makes scenario scheduling reproducible.
	Seed int64
	// Replicate multiplies the derived fault set to grow the campaign
	// (minimum 1).
	Replicate int
	// EventProb is the per-mission basic-event probability used in
	// the synthesized fault tree.
	EventProb float64
}

// Summary is the evaluation outcome.
type Summary struct {
	// Derived is the number of fault descriptions the profile yielded.
	Derived int
	// Scenarios is the number of executed stress tests.
	Scenarios int
	// Tally is the outcome classification histogram.
	Tally fault.Tally
	// Coverage is the fault-space coverage reached ([0,1]).
	Coverage float64
	// WeakSpots ranks sites by worst observed severity.
	WeakSpots []coverage.SiteSeverity
	// FaultTree is synthesized from the failing scenarios (a basic
	// event with probability 0 when none failed).
	FaultTree *safety.Node
	// TopEventProbability evaluates the synthesized tree.
	TopEventProbability float64
}

// Execute runs the full pipeline: derive → schedule → inject →
// classify → aggregate.
func (e *Evaluation) Execute() (*Summary, error) {
	if e.Profile == nil || e.Run == nil || len(e.Sites) == 0 {
		return nil, fmt.Errorf("core: evaluation needs a profile, a run function and injection sites")
	}
	if e.Horizon == 0 {
		return nil, fmt.Errorf("core: evaluation needs a horizon")
	}
	rules := e.Rules
	if rules == nil {
		rules = missionprofile.DefaultRules()
	}
	derived, err := missionprofile.Derive(e.Profile, rules, e.Sites)
	if err != nil {
		return nil, err
	}
	if len(derived) == 0 {
		return nil, fmt.Errorf("core: profile %q derives no faults over the given sites", e.Profile.Component)
	}
	rep := e.Replicate
	if rep < 1 {
		rep = 1
	}
	pool := make([]missionprofile.Derived, 0, len(derived)*rep)
	for i := 0; i < rep; i++ {
		pool = append(pool, derived...)
	}
	scenarios := missionprofile.Schedule(e.Profile, pool, e.Horizon, rand.New(rand.NewSource(e.Seed)))

	fs := coverage.NewFaultSpace(nil, nil)
	for _, d := range derived {
		fs.Declare(d.Descriptor.Target, d.Descriptor.Model.String())
	}
	tally := make(fault.Tally)
	var outcomes []fault.Outcome
	for _, sc := range scenarios {
		o := e.Run(sc)
		outcomes = append(outcomes, o)
		tally.Add(o)
		for _, d := range sc.Faults {
			fs.Record(d.Target, d.Model.String(), o.Class.Severity())
		}
	}

	prob := e.EventProb
	if prob == 0 {
		prob = 1e-3
	}
	tree := analysis.SynthesizeFaultTree(e.Profile.Component+"-hazard", outcomes,
		func(c fault.Classification) bool { return c.IsFailure() }, nil, prob)
	top, err := tree.TopEventProbability()
	if err != nil {
		return nil, err
	}

	return &Summary{
		Derived:             len(derived),
		Scenarios:           len(scenarios),
		Tally:               tally,
		Coverage:            fs.Coverage(),
		WeakSpots:           fs.WorstBySite(),
		FaultTree:           tree,
		TopEventProbability: top,
	}, nil
}

// String renders a one-paragraph summary.
func (s *Summary) String() string {
	return fmt.Sprintf("derived %d faults, ran %d scenarios, coverage %.0f%%, tally [%s], P(hazard)=%.3g",
		s.Derived, s.Scenarios, s.Coverage*100, s.Tally, s.TopEventProbability)
}
