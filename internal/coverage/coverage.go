// Package coverage implements the "intelligent coverage models"
// requirement of Sec. 3.4 and Fig. 3: functional covergroups with
// bins and crosses (measuring how much of the stimulus space a
// testbench exercised), and a fault-space coverage model over
// (injection site × fault model) pairs that measures "the completeness
// of the error effect simulation" and exposes the holes that the next
// error-injection scenarios should target (coverage closure).
package coverage

import (
	"fmt"
	"math"
	"sort"
)

// Bin is one value range of a coverpoint — [Lo, Hi] inclusive by
// default, [Lo, Hi) when ExclusiveHi is set.
type Bin struct {
	Name   string
	Lo, Hi float64
	// ExclusiveHi makes the upper edge exclusive. UniformBins sets it
	// on every interior bin so a sample landing exactly on a shared
	// edge counts in one bin, not two; hand-declared bins keep the
	// historical inclusive-both-ends behavior.
	ExclusiveHi bool
}

// Contains reports whether v falls into the bin.
func (b Bin) Contains(v float64) bool {
	if b.ExclusiveHi {
		return v >= b.Lo && v < b.Hi
	}
	return v >= b.Lo && v <= b.Hi
}

// Coverpoint tracks hit counts over its bins.
type Coverpoint struct {
	name string
	bins []Bin
	hits []uint64
	// misses counts samples outside every bin (a modeling smell).
	misses uint64
}

// NewCoverpoint creates a coverpoint with explicit bins.
func NewCoverpoint(name string, bins ...Bin) *Coverpoint {
	return &Coverpoint{name: name, bins: bins, hits: make([]uint64, len(bins))}
}

// UniformBins builds n equal-width bins spanning [lo, hi]. Interior
// edges are half-open — bin i covers [lo+i·w, lo+(i+1)·w) and only the
// last bin closes at hi — so a sample landing exactly on a shared edge
// is counted once instead of inflating two adjacent bins' hit counts.
func UniformBins(n int, lo, hi float64) []Bin {
	bins := make([]Bin, n)
	w := (hi - lo) / float64(n)
	for i := range bins {
		bLo := lo + float64(i)*w
		bHi := bLo + w
		last := i == n-1
		if last {
			bHi = hi
		}
		bins[i] = Bin{Name: fmt.Sprintf("bin%d", i), Lo: bLo, Hi: bHi, ExclusiveHi: !last}
	}
	return bins
}

// Name reports the coverpoint name.
func (cp *Coverpoint) Name() string { return cp.name }

// Sample records a value; every containing bin counts a hit.
func (cp *Coverpoint) Sample(v float64) {
	hit := false
	for i, b := range cp.bins {
		if b.Contains(v) {
			cp.hits[i]++
			hit = true
		}
	}
	if !hit {
		cp.misses++
	}
}

// Coverage reports the fraction of bins with at least one hit.
func (cp *Coverpoint) Coverage() float64 {
	if len(cp.bins) == 0 {
		return 1
	}
	n := 0
	for _, h := range cp.hits {
		if h > 0 {
			n++
		}
	}
	return float64(n) / float64(len(cp.bins))
}

// Holes lists bins never hit.
func (cp *Coverpoint) Holes() []string {
	var out []string
	for i, h := range cp.hits {
		if h == 0 {
			out = append(out, cp.bins[i].Name)
		}
	}
	return out
}

// Misses reports out-of-range samples.
func (cp *Coverpoint) Misses() uint64 { return cp.misses }

// Cross tracks joint coverage of two coverpoints: a cross bin is hit
// when one Sample2 call lands in both component bins.
type Cross struct {
	name  string
	a, b  *Coverpoint
	hits  map[[2]int]uint64
	abins int
	bbins int
}

// NewCross creates a cross over two coverpoints.
func NewCross(name string, a, b *Coverpoint) *Cross {
	return &Cross{name: name, a: a, b: b, hits: make(map[[2]int]uint64), abins: len(a.bins), bbins: len(b.bins)}
}

// Sample2 records a joint sample (also sampling both coverpoints).
func (x *Cross) Sample2(va, vb float64) {
	x.a.Sample(va)
	x.b.Sample(vb)
	for i, ba := range x.a.bins {
		if !ba.Contains(va) {
			continue
		}
		for j, bb := range x.b.bins {
			if bb.Contains(vb) {
				x.hits[[2]int{i, j}]++
			}
		}
	}
}

// Coverage reports the fraction of cross bins hit.
func (x *Cross) Coverage() float64 {
	total := x.abins * x.bbins
	if total == 0 {
		return 1
	}
	return float64(len(x.hits)) / float64(total)
}

// Covergroup aggregates coverpoints and crosses.
type Covergroup struct {
	name    string
	points  []*Coverpoint
	crosses []*Cross
}

// NewCovergroup creates an empty group.
func NewCovergroup(name string) *Covergroup {
	return &Covergroup{name: name}
}

// AddPoint registers a coverpoint and returns it.
func (cg *Covergroup) AddPoint(cp *Coverpoint) *Coverpoint {
	cg.points = append(cg.points, cp)
	return cp
}

// AddCross registers a cross and returns it.
func (cg *Covergroup) AddCross(x *Cross) *Cross {
	cg.crosses = append(cg.crosses, x)
	return x
}

// Coverage is the arithmetic mean over all points and crosses.
func (cg *Covergroup) Coverage() float64 {
	n := len(cg.points) + len(cg.crosses)
	if n == 0 {
		return 1
	}
	sum := 0.0
	for _, p := range cg.points {
		sum += p.Coverage()
	}
	for _, x := range cg.crosses {
		sum += x.Coverage()
	}
	return sum / float64(n)
}

// Report renders per-point coverage.
func (cg *Covergroup) Report() string {
	out := fmt.Sprintf("covergroup %s: %.1f%%\n", cg.name, cg.Coverage()*100)
	for _, p := range cg.points {
		out += fmt.Sprintf("  %s: %.1f%% (%d holes, %d misses)\n", p.name, p.Coverage()*100, len(p.Holes()), p.misses)
	}
	for _, x := range cg.crosses {
		out += fmt.Sprintf("  %s (cross): %.1f%%\n", x.name, x.Coverage()*100)
	}
	return out
}

// RoundPct rounds a coverage fraction to whole percent (report
// stability helper).
func RoundPct(f float64) int { return int(math.Round(f * 100)) }

// SiteModelKey identifies one cell of the fault-space coverage model.
type SiteModelKey struct {
	Site  string
	Model string
}

// FaultSpace is the fault-space coverage model of the Fig. 3 loop: it
// tracks which (site, model) combinations have been injected and the
// worst outcome class observed per combination. Coverage closure means
// Holes() is empty.
type FaultSpace struct {
	cells    map[SiteModelKey]bool // declared space
	injected map[SiteModelKey]int  // injection counts
	worst    map[SiteModelKey]int  // worst observed severity
}

// NewFaultSpace declares the space from site and model name lists.
func NewFaultSpace(sites, models []string) *FaultSpace {
	fs := &FaultSpace{
		cells:    make(map[SiteModelKey]bool),
		injected: make(map[SiteModelKey]int),
		worst:    make(map[SiteModelKey]int),
	}
	for _, s := range sites {
		for _, m := range models {
			fs.cells[SiteModelKey{s, m}] = true
		}
	}
	return fs
}

// Declare adds one cell to the space (for heterogeneous sites that
// support different models).
func (fs *FaultSpace) Declare(site, model string) {
	fs.cells[SiteModelKey{site, model}] = true
}

// Record notes an injection and its outcome severity (use
// fault.Classification.Severity()). Unknown cells are auto-declared.
func (fs *FaultSpace) Record(site, model string, severity int) {
	k := SiteModelKey{site, model}
	fs.cells[k] = true
	fs.injected[k]++
	if severity > fs.worst[k] {
		fs.worst[k] = severity
	}
}

// Coverage is the fraction of declared cells injected at least once.
func (fs *FaultSpace) Coverage() float64 {
	if len(fs.cells) == 0 {
		return 1
	}
	return float64(len(fs.injected)) / float64(len(fs.cells))
}

// Holes lists uninjected cells, sorted — the closure work list.
func (fs *FaultSpace) Holes() []SiteModelKey {
	var out []SiteModelKey
	for k := range fs.cells {
		if fs.injected[k] == 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Model < out[j].Model
	})
	return out
}

// WorstBySite aggregates the worst severity observed per site,
// descending — the simulated weak-spot ranking that guided injection
// feeds on.
func (fs *FaultSpace) WorstBySite() []SiteSeverity {
	agg := map[string]int{}
	for k, sev := range fs.worst {
		if sev > agg[k.Site] {
			agg[k.Site] = sev
		}
	}
	out := make([]SiteSeverity, 0, len(agg))
	for s, sev := range agg {
		out = append(out, SiteSeverity{Site: s, Severity: sev})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// SiteSeverity is one row of the weak-spot ranking.
type SiteSeverity struct {
	Site     string
	Severity int
}

// Injections reports the total number of recorded injections.
func (fs *FaultSpace) Injections() int {
	n := 0
	for _, c := range fs.injected {
		n += c
	}
	return n
}
