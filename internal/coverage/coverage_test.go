package coverage

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBinContains(t *testing.T) {
	b := Bin{Name: "mid", Lo: 10, Hi: 20}
	if !b.Contains(10) || !b.Contains(20) || !b.Contains(15) {
		t.Error("inclusive bounds wrong")
	}
	if b.Contains(9.999) || b.Contains(20.001) {
		t.Error("out of range contained")
	}
}

func TestUniformBins(t *testing.T) {
	bins := UniformBins(4, 0, 100)
	if len(bins) != 4 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0].Lo != 0 || bins[3].Hi != 100 {
		t.Errorf("span wrong: %v", bins)
	}
	if bins[1].Lo != 25 || bins[1].Hi != 50 {
		t.Errorf("bin1 = %+v", bins[1])
	}
}

func TestCoverpointSampleAndHoles(t *testing.T) {
	cp := NewCoverpoint("speed", UniformBins(4, 0, 100)...)
	if cp.Coverage() != 0 {
		t.Error("fresh coverage nonzero")
	}
	cp.Sample(10)
	cp.Sample(60)
	if got := cp.Coverage(); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	holes := cp.Holes()
	if len(holes) != 2 || holes[0] != "bin1" || holes[1] != "bin3" {
		t.Errorf("holes = %v", holes)
	}
	cp.Sample(-5)
	if cp.Misses() != 1 {
		t.Errorf("misses = %d", cp.Misses())
	}
}

func TestCrossCoverage(t *testing.T) {
	a := NewCoverpoint("a", UniformBins(2, 0, 10)...)
	b := NewCoverpoint("b", UniformBins(2, 0, 10)...)
	x := NewCross("axb", a, b)
	x.Sample2(1, 1) // (0,0)
	x.Sample2(9, 9) // (1,1)
	if got := x.Coverage(); got != 0.5 {
		t.Errorf("cross coverage = %v, want 0.5 (2 of 4)", got)
	}
	// Component points sampled too.
	if a.Coverage() != 1 || b.Coverage() != 1 {
		t.Error("component coverpoints not sampled")
	}
}

func TestCovergroupAggregate(t *testing.T) {
	cg := NewCovergroup("g")
	p1 := cg.AddPoint(NewCoverpoint("p1", UniformBins(2, 0, 10)...))
	p2 := cg.AddPoint(NewCoverpoint("p2", UniformBins(2, 0, 10)...))
	p1.Sample(1)
	p1.Sample(9)
	p2.Sample(1)
	// p1 = 1.0, p2 = 0.5 -> mean 0.75.
	if got := cg.Coverage(); got != 0.75 {
		t.Errorf("group coverage = %v", got)
	}
	rep := cg.Report()
	if !strings.Contains(rep, "75.0%") || !strings.Contains(rep, "p2") {
		t.Errorf("report:\n%s", rep)
	}
	if RoundPct(0.754) != 75 {
		t.Error("RoundPct")
	}
}

func TestEmptyCovergroup(t *testing.T) {
	if NewCovergroup("e").Coverage() != 1 {
		t.Error("empty group should be 100%")
	}
	if NewCoverpoint("e").Coverage() != 1 {
		t.Error("empty point should be 100%")
	}
}

func TestFaultSpaceCoverageAndHoles(t *testing.T) {
	fs := NewFaultSpace([]string{"s1", "s2"}, []string{"sa0", "sa1"})
	if fs.Coverage() != 0 {
		t.Error("fresh coverage nonzero")
	}
	fs.Record("s1", "sa0", 1)
	fs.Record("s1", "sa1", 4)
	if got := fs.Coverage(); got != 0.5 {
		t.Errorf("coverage = %v", got)
	}
	holes := fs.Holes()
	if len(holes) != 2 || holes[0].Site != "s2" {
		t.Errorf("holes = %v", holes)
	}
	fs.Record("s2", "sa0", 0)
	fs.Record("s2", "sa1", 6)
	if fs.Coverage() != 1 || len(fs.Holes()) != 0 {
		t.Error("closure not reached")
	}
	if fs.Injections() != 4 {
		t.Errorf("injections = %d", fs.Injections())
	}
}

func TestFaultSpaceWeakSpots(t *testing.T) {
	fs := NewFaultSpace([]string{"a", "b", "c"}, []string{"m"})
	fs.Record("a", "m", 2)
	fs.Record("b", "m", 6)
	fs.Record("c", "m", 4)
	ws := fs.WorstBySite()
	if len(ws) != 3 || ws[0].Site != "b" || ws[1].Site != "c" || ws[2].Site != "a" {
		t.Errorf("weak spots = %v", ws)
	}
}

func TestFaultSpaceAutoDeclare(t *testing.T) {
	fs := NewFaultSpace(nil, nil)
	fs.Record("new", "model", 1)
	if fs.Coverage() != 1 {
		t.Error("auto-declared cell not covered")
	}
	fs.Declare("other", "model")
	if fs.Coverage() != 0.5 {
		t.Errorf("coverage = %v", fs.Coverage())
	}
}

// Property: coverage is monotone in samples and bounded by [0,1].
func TestPropertyCoverageMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		cp := NewCoverpoint("p", UniformBins(8, 0, 256)...)
		prev := 0.0
		for _, v := range vals {
			cp.Sample(float64(v))
			c := cp.Coverage()
			if c < prev || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fault space over n sites and m models reaches exactly
// closure after recording every combination.
func TestPropertyFaultSpaceClosure(t *testing.T) {
	f := func(n, m uint8) bool {
		ns := int(n%5) + 1
		nm := int(m%4) + 1
		sites := make([]string, ns)
		models := make([]string, nm)
		for i := range sites {
			sites[i] = string(rune('a' + i))
		}
		for i := range models {
			models[i] = string(rune('x' + i))
		}
		fs := NewFaultSpace(sites, models)
		for _, s := range sites {
			for _, mo := range models {
				fs.Record(s, mo, 0)
			}
		}
		return fs.Coverage() == 1 && len(fs.Holes()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression: adjacent uniform bins share an edge value; an edge
// sample must land in exactly one bin (the upper neighbor), not
// double-count, and hi itself stays in the closed last bin.
func TestUniformBinsEdgeSamplesCountOnce(t *testing.T) {
	bins := UniformBins(4, 0, 100)
	for _, edge := range []float64{0, 25, 50, 75, 100} {
		n := 0
		for _, b := range bins {
			if b.Contains(edge) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("edge sample %v contained by %d bins, want exactly 1", edge, n)
		}
	}
	cp := NewCoverpoint("edges", UniformBins(4, 0, 100)...)
	cp.Sample(25) // exactly the bin0/bin1 edge
	if cp.Coverage() != 0.25 {
		t.Errorf("one edge sample covered %v of bins, want 0.25", cp.Coverage())
	}
	cp.Sample(100) // hi belongs to the last bin
	if cp.Misses() != 0 {
		t.Errorf("hi sample missed: %d", cp.Misses())
	}
	// Hand-declared bins keep inclusive-both-ends semantics.
	if b := (Bin{Lo: 10, Hi: 20}); !b.Contains(20) {
		t.Error("explicit bin lost its inclusive upper bound")
	}
}
