package tlm

import "repro/internal/sim"

// QuantumKeeper implements temporal decoupling for loosely-timed
// initiators: a process accumulates consumed time in a local offset and
// only synchronizes with the kernel when the offset exceeds the global
// quantum. This trades timing fidelity for speed — the trade-off the
// paper flags in Sec. 3.4 ("approaches are required that increase
// simulation performance ... e.g., by temporal decoupling") and that
// experiment E6 sweeps.
type QuantumKeeper struct {
	ctx     *sim.ThreadCtx
	quantum sim.Time
	local   sim.Time
	syncs   uint64
}

// NewQuantumKeeper creates a keeper for the given thread context. A
// zero quantum means "synchronize on every Inc" (fully coupled).
func NewQuantumKeeper(ctx *sim.ThreadCtx, quantum sim.Time) *QuantumKeeper {
	return &QuantumKeeper{ctx: ctx, quantum: quantum}
}

// SetQuantum changes the quantum.
func (q *QuantumKeeper) SetQuantum(t sim.Time) { q.quantum = t }

// Quantum reports the configured quantum.
func (q *QuantumKeeper) Quantum() sim.Time { return q.quantum }

// Inc adds consumed local time.
func (q *QuantumKeeper) Inc(d sim.Time) { q.local += d }

// LocalTime reports the unsynchronized local offset.
func (q *QuantumKeeper) LocalTime() sim.Time { return q.local }

// CurrentTime reports kernel time plus local offset — the initiator's
// notion of "now".
func (q *QuantumKeeper) CurrentTime() sim.Time { return q.ctx.Now() + q.local }

// NeedSync reports whether the local offset has exceeded the quantum.
func (q *QuantumKeeper) NeedSync() bool { return q.local > q.quantum }

// Sync yields to the kernel for the accumulated local offset and
// resets it.
func (q *QuantumKeeper) Sync() {
	if q.local == 0 {
		return
	}
	d := q.local
	q.local = 0
	q.syncs++
	q.ctx.WaitTime(d)
}

// SyncIfNeeded synchronizes only when the quantum is exceeded; returns
// whether a sync happened.
func (q *QuantumKeeper) SyncIfNeeded() bool {
	if !q.NeedSync() {
		return false
	}
	q.Sync()
	return true
}

// Syncs reports how many kernel synchronizations have occurred; the
// E1/E6 benchmarks use it to attribute speed-up to avoided syncs.
func (q *QuantumKeeper) Syncs() uint64 { return q.syncs }
