package tlm

import (
	"fmt"

	"repro/internal/sim"
)

// Phase is the four-phase approximately-timed handshake state.
type Phase uint8

const (
	// PhaseBeginReq starts a request (initiator -> target).
	PhaseBeginReq Phase = iota
	// PhaseEndReq acknowledges the request (target -> initiator).
	PhaseEndReq
	// PhaseBeginResp starts the response (target -> initiator).
	PhaseBeginResp
	// PhaseEndResp completes the transaction (initiator -> target).
	PhaseEndResp
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseBeginReq:
		return "BEGIN_REQ"
	case PhaseEndReq:
		return "END_REQ"
	case PhaseBeginResp:
		return "BEGIN_RESP"
	case PhaseEndResp:
		return "END_RESP"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Sync is the return status of a non-blocking transport call.
type Sync uint8

const (
	// SyncAccepted means the callee noted the phase; the caller owns
	// the transaction and must await a backward call.
	SyncAccepted Sync = iota
	// SyncUpdated means the callee advanced the phase in place.
	SyncUpdated
	// SyncCompleted means the transaction finished within the call.
	SyncCompleted
)

// NBTarget receives forward-path non-blocking transport calls.
type NBTarget interface {
	NBTransportFw(p *Payload, ph *Phase, delay *sim.Time) Sync
}

// NBInitiator receives backward-path non-blocking transport calls.
type NBInitiator interface {
	NBTransportBw(p *Payload, ph *Phase, delay *sim.Time) Sync
}

// ATTarget adapts a blocking Target to the approximately-timed
// protocol: BEGIN_REQ is accepted immediately, the wrapped target's
// annotated latency is spent as real scheduled kernel time, then
// BEGIN_RESP travels the backward path. Each transaction therefore
// costs kernel events — the scheduling overhead that makes AT slower
// than LT in the experiment E1 abstraction ladder.
type ATTarget struct {
	k     *sim.Kernel
	name  string
	inner Target
	bw    NBInitiator
	// AcceptLatency models the request-channel occupancy before the
	// target starts processing.
	AcceptLatency sim.Time

	busy  bool
	queue []*Payload
}

// NewATTarget wraps inner; backward calls go to bw.
func NewATTarget(k *sim.Kernel, name string, inner Target, bw NBInitiator) *ATTarget {
	return &ATTarget{k: k, name: name, inner: inner, bw: bw}
}

// NBTransportFw implements NBTarget.
func (t *ATTarget) NBTransportFw(p *Payload, ph *Phase, delay *sim.Time) Sync {
	switch *ph {
	case PhaseBeginReq:
		t.queue = append(t.queue, p)
		if !t.busy {
			t.busy = true
			t.scheduleNext(*delay + t.AcceptLatency)
		}
		*ph = PhaseEndReq
		return SyncUpdated
	case PhaseEndResp:
		return SyncCompleted
	default:
		panic(fmt.Sprintf("tlm: %s: unexpected forward phase %s", t.name, *ph))
	}
}

// scheduleNext pops the queue head after `after` and completes it.
func (t *ATTarget) scheduleNext(after sim.Time) {
	ev := t.k.NewEvent(t.name + ".process")
	t.k.MethodNoInit(t.name+".worker", func() {
		p := t.queue[0]
		t.queue = t.queue[1:]
		var lat sim.Time
		t.inner.BTransport(p, &lat)
		// Response travels back after the target's internal latency.
		done := t.k.NewEvent(t.name + ".resp")
		t.k.MethodNoInit(t.name+".responder", func() {
			ph := PhaseBeginResp
			var d sim.Time
			t.bw.NBTransportBw(p, &ph, &d)
			if len(t.queue) > 0 {
				t.scheduleNext(0)
			} else {
				t.busy = false
			}
		}, done)
		done.Notify(lat + 1) // +1 ps keeps response strictly after request
	}, ev)
	ev.Notify(after + 1)
}

// ATRequester is a blocking convenience wrapper for initiators using
// the AT protocol from a thread process: Transact sends BEGIN_REQ and
// suspends until BEGIN_RESP arrives on the backward path.
type ATRequester struct {
	k      *sim.Kernel
	name   string
	target NBTarget

	respEv   *sim.Event
	inFlight map[*Payload]bool
}

// NewATRequester creates a requester; bind it to the target with Bind
// and pass it as the target's backward interface.
func NewATRequester(k *sim.Kernel, name string) *ATRequester {
	return &ATRequester{
		k: k, name: name,
		respEv:   k.NewEvent(name + ".resp"),
		inFlight: make(map[*Payload]bool),
	}
}

// Bind connects the requester to its AT target.
func (r *ATRequester) Bind(t NBTarget) { r.target = t }

// NBTransportBw implements NBInitiator.
func (r *ATRequester) NBTransportBw(p *Payload, ph *Phase, delay *sim.Time) Sync {
	if *ph != PhaseBeginResp {
		panic(fmt.Sprintf("tlm: %s: unexpected backward phase %s", r.name, *ph))
	}
	delete(r.inFlight, p)
	r.respEv.Notify(0)
	*ph = PhaseEndResp
	return SyncCompleted
}

// Transact runs one full four-phase transaction, blocking the calling
// thread until the response arrives.
func (r *ATRequester) Transact(ctx *sim.ThreadCtx, p *Payload) {
	ph := PhaseBeginReq
	var d sim.Time
	r.inFlight[p] = true
	st := r.target.NBTransportFw(p, &ph, &d)
	if st == SyncCompleted {
		delete(r.inFlight, p)
		return
	}
	for r.inFlight[p] {
		ctx.Wait(r.respEv)
	}
	ph = PhaseEndResp
	r.target.NBTransportFw(p, &ph, &d)
}
