package tlm

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Router is an address-decoding interconnect: incoming transactions are
// forwarded to the target whose address range contains the payload
// address, with a per-hop routing latency added. It models the
// communication architecture left "undefined and open for design space
// exploration" in the paper's TLM discussion — swap routing latency and
// mapping without touching initiators or targets.
type Router struct {
	name string
	// HopLatency is added to the annotated delay per routed transaction.
	HopLatency sim.Time

	ranges []mapRange
	hops   uint64
}

type mapRange struct {
	start, end uint64 // inclusive
	target     Target
	name       string
}

// NewRouter creates an empty router.
func NewRouter(name string) *Router {
	return &Router{name: name}
}

// Name reports the router instance name.
func (r *Router) Name() string { return r.name }

// Map binds [start, start+size) to a target. Overlapping ranges are a
// wiring bug and are rejected.
func (r *Router) Map(name string, start uint64, size uint64, t Target) error {
	if size == 0 {
		return fmt.Errorf("tlm: router %s: empty range for %s", r.name, name)
	}
	end := start + size - 1
	for _, mr := range r.ranges {
		if start <= mr.end && mr.start <= end {
			return fmt.Errorf("tlm: router %s: range %s [0x%x,0x%x] overlaps %s [0x%x,0x%x]",
				r.name, name, start, end, mr.name, mr.start, mr.end)
		}
	}
	r.ranges = append(r.ranges, mapRange{start: start, end: end, target: t, name: name})
	sort.Slice(r.ranges, func(i, j int) bool { return r.ranges[i].start < r.ranges[j].start })
	return nil
}

// MustMap is Map that panics on wiring errors (elaboration-time use).
func (r *Router) MustMap(name string, start uint64, size uint64, t Target) {
	if err := r.Map(name, start, size, t); err != nil {
		panic(err)
	}
}

// decode finds the target range for addr, or nil.
func (r *Router) decode(addr uint64) *mapRange {
	lo, hi := 0, len(r.ranges)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		mr := &r.ranges[mid]
		switch {
		case addr < mr.start:
			hi = mid - 1
		case addr > mr.end:
			lo = mid + 1
		default:
			return mr
		}
	}
	return nil
}

// BTransport implements Target by decoding and forwarding.
func (r *Router) BTransport(p *Payload, delay *sim.Time) {
	mr := r.decode(p.Address)
	if mr == nil {
		p.Response = RespAddressError
		return
	}
	r.hops++
	*delay += r.HopLatency
	mr.target.BTransport(p, delay)
}

// TransportDbg implements DebugTarget by forwarding without latency.
func (r *Router) TransportDbg(p *Payload) int {
	mr := r.decode(p.Address)
	if mr == nil {
		p.Response = RespAddressError
		return 0
	}
	if dt, ok := mr.target.(DebugTarget); ok {
		return dt.TransportDbg(p)
	}
	return 0
}

// GetDMIPtr implements DMITarget by forwarding; the router clamps the
// granted window to the mapped range so a DMI pointer never spans two
// targets.
func (r *Router) GetDMIPtr(p *Payload, dmi *DMIData) bool {
	mr := r.decode(p.Address)
	if mr == nil {
		return false
	}
	dt, ok := mr.target.(DMITarget)
	if !ok || !dt.GetDMIPtr(p, dmi) {
		return false
	}
	if dmi.StartAddr < mr.start {
		dmi.Ptr = dmi.Ptr[mr.start-dmi.StartAddr:]
		dmi.StartAddr = mr.start
	}
	if dmi.EndAddr > mr.end {
		dmi.Ptr = dmi.Ptr[:dmi.EndAddr-dmi.StartAddr+1-(dmi.EndAddr-mr.end)]
		dmi.EndAddr = mr.end
	}
	dmi.ReadLatency += r.HopLatency
	dmi.WriteLatency += r.HopLatency
	return true
}

// Hops reports how many transactions the router has forwarded.
func (r *Router) Hops() uint64 { return r.hops }
