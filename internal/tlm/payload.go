// Package tlm implements transaction-level modeling in the style of
// TLM-2.0 (IEEE 1666-2011): a generic payload, blocking and
// non-blocking transport interfaces, initiator/target sockets, an
// address-decoding router, a memory target, direct memory interface
// (DMI) and a quantum keeper for temporally decoupled loosely-timed
// simulation.
//
// The abstraction ladder this package provides — cycle-accurate,
// approximately-timed (AT, four-phase), loosely-timed (LT) and LT with
// temporal decoupling — is the subject of the paper's speed-up claim
// (Sec. 2.3) reproduced by experiment E1, and temporal decoupling's
// accuracy trade-off is the subject of experiment E6.
package tlm

import "fmt"

// Command selects the operation a generic payload requests.
type Command uint8

const (
	// CmdIgnore requests no data transfer (used for probe/debug hops).
	CmdIgnore Command = iota
	// CmdRead transfers data from target to initiator.
	CmdRead
	// CmdWrite transfers data from initiator to target.
	CmdWrite
)

// String names the command.
func (c Command) String() string {
	switch c {
	case CmdIgnore:
		return "ignore"
	case CmdRead:
		return "read"
	case CmdWrite:
		return "write"
	default:
		return fmt.Sprintf("Command(%d)", uint8(c))
	}
}

// Response is the completion status of a transaction.
type Response uint8

const (
	// RespIncomplete means no target has acted on the transaction yet.
	RespIncomplete Response = iota
	// RespOK means the transaction completed successfully.
	RespOK
	// RespAddressError means no target claims the address.
	RespAddressError
	// RespCommandError means the target cannot perform the command.
	RespCommandError
	// RespBurstError means the length or alignment is unsupported.
	RespBurstError
	// RespGenericError is any other failure.
	RespGenericError
)

// String names the response status.
func (r Response) String() string {
	switch r {
	case RespIncomplete:
		return "incomplete"
	case RespOK:
		return "ok"
	case RespAddressError:
		return "address-error"
	case RespCommandError:
		return "command-error"
	case RespBurstError:
		return "burst-error"
	case RespGenericError:
		return "generic-error"
	default:
		return fmt.Sprintf("Response(%d)", uint8(r))
	}
}

// OK reports whether the transaction completed successfully.
func (r Response) OK() bool { return r == RespOK }

// Payload is the generic payload: one memory-mapped bus transaction.
// Extensions carry tool-specific metadata (the fault package uses them
// to tag corrupted transactions for propagation tracing).
type Payload struct {
	Command    Command
	Address    uint64
	Data       []byte
	ByteEnable []byte // nil = all bytes enabled; 0x00 disables a byte lane
	Response   Response
	DMIAllowed bool // hint set by targets: initiator may request DMI

	ext map[string]any
}

// NewRead builds a read payload for n bytes at addr.
func NewRead(addr uint64, n int) *Payload {
	return &Payload{Command: CmdRead, Address: addr, Data: make([]byte, n)}
}

// NewWrite builds a write payload carrying data at addr. The data slice
// is referenced, not copied.
func NewWrite(addr uint64, data []byte) *Payload {
	return &Payload{Command: CmdWrite, Address: addr, Data: data}
}

// SetExtension attaches tool metadata under a key.
func (p *Payload) SetExtension(key string, v any) {
	if p.ext == nil {
		p.ext = make(map[string]any)
	}
	p.ext[key] = v
}

// Extension retrieves tool metadata; ok is false when absent.
func (p *Payload) Extension(key string) (v any, ok bool) {
	v, ok = p.ext[key]
	return v, ok
}

// ClearExtension removes tool metadata under a key.
func (p *Payload) ClearExtension(key string) {
	delete(p.ext, key)
}

// EnabledByte reports whether byte lane i participates in the transfer.
func (p *Payload) EnabledByte(i int) bool {
	if p.ByteEnable == nil {
		return true
	}
	return p.ByteEnable[i%len(p.ByteEnable)] != 0
}

// String renders a compact transaction summary for logs.
func (p *Payload) String() string {
	return fmt.Sprintf("%s @0x%x len=%d %s", p.Command, p.Address, len(p.Data), p.Response)
}
