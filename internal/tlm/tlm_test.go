package tlm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPayloadBuilders(t *testing.T) {
	r := NewRead(0x100, 8)
	if r.Command != CmdRead || r.Address != 0x100 || len(r.Data) != 8 {
		t.Errorf("NewRead = %+v", r)
	}
	w := NewWrite(0x200, []byte{1, 2})
	if w.Command != CmdWrite || w.Address != 0x200 || len(w.Data) != 2 {
		t.Errorf("NewWrite = %+v", w)
	}
	if r.Response != RespIncomplete {
		t.Errorf("fresh payload response = %v", r.Response)
	}
}

func TestPayloadExtensions(t *testing.T) {
	p := NewRead(0, 1)
	if _, ok := p.Extension("fault"); ok {
		t.Error("extension present on fresh payload")
	}
	p.SetExtension("fault", 42)
	v, ok := p.Extension("fault")
	if !ok || v.(int) != 42 {
		t.Errorf("Extension = %v, %v", v, ok)
	}
	p.ClearExtension("fault")
	if _, ok := p.Extension("fault"); ok {
		t.Error("extension survives ClearExtension")
	}
}

func TestPayloadByteEnable(t *testing.T) {
	p := NewWrite(0, []byte{1, 2, 3, 4})
	p.ByteEnable = []byte{0xff, 0x00}
	want := []bool{true, false, true, false}
	for i, w := range want {
		if p.EnabledByte(i) != w {
			t.Errorf("EnabledByte(%d) = %v, want %v", i, p.EnabledByte(i), w)
		}
	}
}

func TestCommandResponseStrings(t *testing.T) {
	if CmdRead.String() != "read" || CmdWrite.String() != "write" || CmdIgnore.String() != "ignore" {
		t.Error("command strings wrong")
	}
	if !RespOK.OK() || RespAddressError.OK() {
		t.Error("Response.OK wrong")
	}
	if RespAddressError.String() != "address-error" {
		t.Errorf("resp string = %s", RespAddressError)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory("ram", 0x1000, 256)
	m.WriteLatency = sim.NS(10)
	m.ReadLatency = sim.NS(5)
	var delay sim.Time
	p := NewWrite(0x1010, []byte{0xde, 0xad, 0xbe, 0xef})
	m.BTransport(p, &delay)
	if !p.Response.OK() {
		t.Fatalf("write resp = %v", p.Response)
	}
	if delay != sim.NS(10) {
		t.Errorf("write delay = %v", delay)
	}
	q := NewRead(0x1010, 4)
	m.BTransport(q, &delay)
	if !q.Response.OK() || !bytes.Equal(q.Data, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("read = %v %x", q.Response, q.Data)
	}
	if delay != sim.NS(15) {
		t.Errorf("accumulated delay = %v", delay)
	}
	reads, writes := m.Stats()
	if reads != 1 || writes != 1 {
		t.Errorf("stats = %d, %d", reads, writes)
	}
}

func TestMemoryAddressError(t *testing.T) {
	m := NewMemory("ram", 0x1000, 16)
	var d sim.Time
	for _, addr := range []uint64{0x0fff, 0x100d} { // below base; straddles end
		p := NewRead(addr, 4)
		m.BTransport(p, &d)
		if p.Response != RespAddressError {
			t.Errorf("read @0x%x resp = %v, want address-error", addr, p.Response)
		}
	}
}

func TestMemoryByteEnable(t *testing.T) {
	m := NewMemory("ram", 0, 8)
	m.Poke(0, []byte{1, 2, 3, 4})
	var d sim.Time
	p := NewWrite(0, []byte{9, 9, 9, 9})
	p.ByteEnable = []byte{0x00, 0xff}
	m.BTransport(p, &d)
	if got := m.Peek(0, 4); !bytes.Equal(got, []byte{1, 9, 3, 9}) {
		t.Errorf("after masked write: %v", got)
	}
}

func TestMemoryFlipBit(t *testing.T) {
	m := NewMemory("ram", 0x100, 16)
	m.Poke(0x104, []byte{0b0000_1000})
	if err := m.FlipBit(0x104, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(0x104, 1)[0]; got != 0 {
		t.Errorf("after flip: %#b", got)
	}
	if err := m.FlipBit(0x200, 0); err == nil {
		t.Error("FlipBit outside range succeeded")
	}
	if err := m.FlipBit(0x104, 8); err == nil {
		t.Error("FlipBit bit 8 succeeded")
	}
}

func TestMemoryStuckAt(t *testing.T) {
	m := NewMemory("ram", 0, 16)
	if err := m.StuckAt(5, 0, true); err != nil {
		t.Fatal(err)
	}
	var d sim.Time
	p := NewWrite(5, []byte{0x00})
	m.BTransport(p, &d)
	q := NewRead(5, 1)
	m.BTransport(q, &d)
	if q.Data[0] != 0x01 {
		t.Errorf("stuck-at-1 read = %#x, want 0x01", q.Data[0])
	}
	// Underlying storage holds the written value; the defect is read-side.
	if m.data[5] != 0x00 {
		t.Errorf("underlying cell = %#x, want 0", m.data[5])
	}
	m.ClearFaults()
	q2 := NewRead(5, 1)
	m.BTransport(q2, &d)
	if q2.Data[0] != 0x00 {
		t.Errorf("after ClearFaults read = %#x", q2.Data[0])
	}
}

func TestMemoryStuckAtZero(t *testing.T) {
	m := NewMemory("ram", 0, 4)
	m.Poke(1, []byte{0xff})
	if err := m.StuckAt(1, 4, false); err != nil {
		t.Fatal(err)
	}
	var d sim.Time
	q := NewRead(1, 1)
	m.BTransport(q, &d)
	if q.Data[0] != 0xef {
		t.Errorf("stuck-at-0 read = %#x, want 0xef", q.Data[0])
	}
}

func TestMemoryTransportDbg(t *testing.T) {
	m := NewMemory("ram", 0, 16)
	p := NewWrite(4, []byte{7, 8})
	if n := m.TransportDbg(p); n != 2 {
		t.Errorf("dbg write n = %d", n)
	}
	q := NewRead(4, 2)
	if n := m.TransportDbg(q); n != 2 || !bytes.Equal(q.Data, []byte{7, 8}) {
		t.Errorf("dbg read = %d %v", n, q.Data)
	}
}

func TestMemoryDMI(t *testing.T) {
	m := NewMemory("ram", 0x1000, 64)
	m.AllowDMI = true
	var dmi DMIData
	p := NewRead(0x1004, 4)
	if !m.GetDMIPtr(p, &dmi) {
		t.Fatal("DMI denied")
	}
	if dmi.StartAddr != 0x1000 || dmi.EndAddr != 0x103f || !dmi.ReadAllowed || !dmi.WriteAllowed {
		t.Errorf("dmi = %+v", dmi)
	}
	if !dmi.Contains(0x1000) || !dmi.Contains(0x103f) || dmi.Contains(0x1040) {
		t.Error("Contains wrong")
	}
	// Stuck-at faults must revoke DMI eligibility.
	if err := m.StuckAt(0x1000, 0, true); err != nil {
		t.Fatal(err)
	}
	if m.GetDMIPtr(p, &dmi) {
		t.Error("DMI granted while stuck-at fault active")
	}
}

func TestSocketBinding(t *testing.T) {
	s := NewInitiatorSocket("cpu.data")
	if s.Bound() {
		t.Error("fresh socket bound")
	}
	m := NewMemory("ram", 0, 16)
	s.Bind(m)
	if !s.Bound() {
		t.Error("socket not bound after Bind")
	}
	defer func() {
		if recover() == nil {
			t.Error("double Bind did not panic")
		}
	}()
	s.Bind(m)
}

func TestSocketHelpers(t *testing.T) {
	s := NewInitiatorSocket("init")
	m := NewMemory("ram", 0, 64)
	s.Bind(m)
	var d sim.Time
	if resp := s.Write32(0x10, 0xdeadbeef, &d); !resp.OK() {
		t.Fatalf("Write32 resp = %v", resp)
	}
	v, resp := s.Read32(0x10, &d)
	if !resp.OK() || v != 0xdeadbeef {
		t.Errorf("Read32 = %#x, %v", v, resp)
	}
	data, resp := s.Read(0x10, 2, &d)
	if !resp.OK() || !bytes.Equal(data, []byte{0xef, 0xbe}) {
		t.Errorf("Read = %x, %v", data, resp)
	}
}

func TestTargetFunc(t *testing.T) {
	called := false
	var tgt Target = TargetFunc(func(p *Payload, delay *sim.Time) {
		called = true
		p.Response = RespOK
	})
	var d sim.Time
	p := NewRead(0, 1)
	tgt.BTransport(p, &d)
	if !called || !p.Response.OK() {
		t.Error("TargetFunc not invoked")
	}
}

func TestRouterDecode(t *testing.T) {
	r := NewRouter("bus")
	r.HopLatency = sim.NS(2)
	ram := NewMemory("ram", 0x0000, 0x100)
	rom := NewMemory("rom", 0x8000, 0x100)
	r.MustMap("ram", 0x0000, 0x100, ram)
	r.MustMap("rom", 0x8000, 0x100, rom)

	var d sim.Time
	p := NewWrite(0x8010, []byte{5})
	r.BTransport(p, &d)
	if !p.Response.OK() {
		t.Fatalf("routed write resp = %v", p.Response)
	}
	if d != sim.NS(2) {
		t.Errorf("hop latency = %v", d)
	}
	if rom.Peek(0x8010, 1)[0] != 5 {
		t.Error("write routed to wrong target")
	}
	q := NewRead(0x4000, 1)
	r.BTransport(q, &d)
	if q.Response != RespAddressError {
		t.Errorf("unmapped resp = %v", q.Response)
	}
	if r.Hops() != 1 {
		t.Errorf("hops = %d, want 1 (unmapped not counted)", r.Hops())
	}
}

func TestRouterOverlapRejected(t *testing.T) {
	r := NewRouter("bus")
	m := NewMemory("m", 0, 0x200)
	if err := r.Map("a", 0x000, 0x100, m); err != nil {
		t.Fatal(err)
	}
	if err := r.Map("b", 0x0ff, 0x100, m); err == nil {
		t.Error("overlapping Map accepted")
	}
	if err := r.Map("c", 0, 0, m); err == nil {
		t.Error("empty Map accepted")
	}
}

func TestRouterDbgAndDMI(t *testing.T) {
	r := NewRouter("bus")
	r.HopLatency = sim.NS(1)
	ram := NewMemory("ram", 0x1000, 64)
	ram.AllowDMI = true
	r.MustMap("ram", 0x1000, 64, ram)
	p := NewWrite(0x1008, []byte{0xaa})
	if n := r.TransportDbg(p); n != 1 {
		t.Errorf("routed dbg n = %d", n)
	}
	var dmi DMIData
	q := NewRead(0x1008, 1)
	if !r.GetDMIPtr(q, &dmi) {
		t.Fatal("routed DMI denied")
	}
	if dmi.ReadLatency != sim.NS(1) {
		t.Errorf("DMI latency missing hop: %v", dmi.ReadLatency)
	}
	if dmi.Ptr[8] != 0xaa {
		t.Error("DMI window misaligned")
	}
}

func TestQuantumKeeper(t *testing.T) {
	k := sim.NewKernel()
	var syncTimes []sim.Time
	k.Thread("lt", func(c *sim.ThreadCtx) {
		qk := NewQuantumKeeper(c, sim.NS(100))
		for i := 0; i < 10; i++ {
			qk.Inc(sim.NS(30))
			if qk.SyncIfNeeded() {
				syncTimes = append(syncTimes, c.Now())
			}
		}
		qk.Sync()
		syncTimes = append(syncTimes, c.Now())
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	// 10 * 30ns = 300ns total, quantum 100ns: syncs at 120, 240, 300.
	want := []sim.Time{sim.NS(120), sim.NS(240), sim.NS(300)}
	if len(syncTimes) != len(want) {
		t.Fatalf("syncTimes = %v", syncTimes)
	}
	for i := range want {
		if syncTimes[i] != want[i] {
			t.Errorf("sync %d at %v, want %v", i, syncTimes[i], want[i])
		}
	}
}

func TestQuantumKeeperCurrentTime(t *testing.T) {
	k := sim.NewKernel()
	var current sim.Time
	k.Thread("lt", func(c *sim.ThreadCtx) {
		qk := NewQuantumKeeper(c, sim.US(1))
		c.WaitTime(sim.NS(50))
		qk.Inc(sim.NS(7))
		current = qk.CurrentTime()
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if current != sim.NS(57) {
		t.Errorf("CurrentTime = %v, want 57 ns", current)
	}
}

func TestATRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	mem := NewMemory("ram", 0, 64)
	mem.ReadLatency = sim.NS(20)
	mem.WriteLatency = sim.NS(10)
	req := NewATRequester(k, "cpu")
	at := NewATTarget(k, "ram.at", mem, req)
	req.Bind(at)

	var readBack uint32
	var doneAt sim.Time
	k.Thread("cpu", func(c *sim.ThreadCtx) {
		w := NewWrite(0x10, []byte{0x34, 0x12, 0, 0})
		req.Transact(c, w)
		if !w.Response.OK() {
			t.Errorf("AT write resp = %v", w.Response)
		}
		r := NewRead(0x10, 4)
		req.Transact(c, r)
		if !r.Response.OK() {
			t.Errorf("AT read resp = %v", r.Response)
		}
		readBack = uint32(r.Data[0]) | uint32(r.Data[1])<<8
		doneAt = c.Now()
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if readBack != 0x1234 {
		t.Errorf("readBack = %#x", readBack)
	}
	// Both transactions consumed scheduled kernel time >= their latencies.
	if doneAt < sim.NS(30) {
		t.Errorf("AT round trip finished at %v, want >= 30 ns", doneAt)
	}
}

func TestATQueuesBackToBack(t *testing.T) {
	k := sim.NewKernel()
	mem := NewMemory("ram", 0, 64)
	mem.WriteLatency = sim.NS(10)
	req := NewATRequester(k, "cpu")
	at := NewATTarget(k, "ram.at", mem, req)
	req.Bind(at)
	done := 0
	k.Thread("cpu", func(c *sim.ThreadCtx) {
		for i := 0; i < 5; i++ {
			w := NewWrite(uint64(i), []byte{byte(i)})
			req.Transact(c, w)
			if w.Response.OK() {
				done++
			}
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if done != 5 {
		t.Errorf("completed %d/5 transactions", done)
	}
	for i := 0; i < 5; i++ {
		if mem.Peek(uint64(i), 1)[0] != byte(i) {
			t.Errorf("mem[%d] = %d", i, mem.Peek(uint64(i), 1)[0])
		}
	}
}

func TestPhaseSyncStrings(t *testing.T) {
	if PhaseBeginReq.String() != "BEGIN_REQ" || PhaseEndResp.String() != "END_RESP" {
		t.Error("phase strings wrong")
	}
}

// Property: memory write-then-read returns the written bytes for any
// in-range address/data, and out-of-range always yields address-error.
func TestPropertyMemoryRoundTrip(t *testing.T) {
	m := NewMemory("ram", 0x100, 512)
	f := func(off uint16, val []byte) bool {
		if len(val) == 0 {
			return true
		}
		if len(val) > 32 {
			val = val[:32]
		}
		addr := 0x100 + uint64(off)%512
		var d sim.Time
		w := NewWrite(addr, val)
		m.BTransport(w, &d)
		r := NewRead(addr, len(val))
		m.BTransport(r, &d)
		inRange := addr-0x100+uint64(len(val)) <= 512
		if !inRange {
			return w.Response == RespAddressError && r.Response == RespAddressError
		}
		return w.Response.OK() && r.Response.OK() && bytes.Equal(r.Data, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stuck-at fault forces the bit on every read regardless of
// writes, and ClearFaults restores write-through behaviour.
func TestPropertyStuckAtDominates(t *testing.T) {
	f := func(bit uint8, value bool, writes []byte) bool {
		m := NewMemory("ram", 0, 8)
		b := uint(bit % 8)
		if err := m.StuckAt(3, b, value); err != nil {
			return false
		}
		var d sim.Time
		for _, w := range writes {
			p := NewWrite(3, []byte{w})
			m.BTransport(p, &d)
			q := NewRead(3, 1)
			m.BTransport(q, &d)
			got := q.Data[0]>>b&1 == 1
			if got != value {
				return false
			}
		}
		m.ClearFaults()
		p := NewWrite(3, []byte{0xa5})
		m.BTransport(p, &d)
		q := NewRead(3, 1)
		m.BTransport(q, &d)
		return q.Data[0] == 0xa5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLTTransaction(b *testing.B) {
	m := NewMemory("ram", 0, 4096)
	m.ReadLatency = sim.NS(10)
	r := NewRouter("bus")
	r.MustMap("ram", 0, 4096, m)
	s := NewInitiatorSocket("cpu")
	s.Bind(r)
	var d sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewRead(uint64(i%4096), 1)
		s.BTransport(p, &d)
	}
}

func BenchmarkDMIAccess(b *testing.B) {
	m := NewMemory("ram", 0, 4096)
	m.AllowDMI = true
	var dmi DMIData
	if !m.GetDMIPtr(NewRead(0, 1), &dmi) {
		b.Fatal("DMI denied")
	}
	b.ResetTimer()
	var sum byte
	for i := 0; i < b.N; i++ {
		sum += dmi.Ptr[i%4096]
	}
	_ = sum
}
