package tlm

import (
	"fmt"
	"slices"

	"repro/internal/sim"
)

// Memory is a byte-addressable TLM memory target with per-beat access
// latencies, optional DMI, and backdoor access for fault injection:
// FlipBit models a single-event upset (SEU) in a memory cell, StuckAt
// models a permanent cell defect. Both are the canonical "erroneous
// data in arbitrary components, such as registers or memory cells"
// injections from Sec. 1 of the paper.
type Memory struct {
	name string
	base uint64
	data []byte

	// ReadLatency and WriteLatency are consumed per access beat
	// (one payload = one beat regardless of length, matching LT style).
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// AllowDMI lets initiators bypass transactions entirely.
	AllowDMI bool

	stuckMask map[uint64]stuck // addr -> per-bit stuck info

	reads, writes uint64
}

type stuck struct {
	mask  byte // bits that are stuck
	value byte // the value those bits are stuck at
}

// NewMemory creates a memory of the given size mapped at base.
func NewMemory(name string, base uint64, size int) *Memory {
	return &Memory{
		name: name, base: base, data: make([]byte, size),
		stuckMask: make(map[uint64]stuck),
	}
}

// Name reports the memory instance name.
func (m *Memory) Name() string { return m.name }

// Size reports the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Base reports the first mapped address.
func (m *Memory) Base() uint64 { return m.base }

// Stats reports the number of read and write transactions served.
func (m *Memory) Stats() (reads, writes uint64) { return m.reads, m.writes }

// contains reports whether the [addr, addr+n) range is fully mapped.
func (m *Memory) contains(addr uint64, n int) bool {
	return addr >= m.base && addr-m.base+uint64(n) <= uint64(len(m.data))
}

// applyStuck overlays permanent cell defects onto a read value.
func (m *Memory) applyStuck(off uint64, v byte) byte {
	if s, ok := m.stuckMask[off]; ok {
		v = v&^s.mask | s.value&s.mask
	}
	return v
}

// BTransport implements Target.
func (m *Memory) BTransport(p *Payload, delay *sim.Time) {
	if !m.contains(p.Address, len(p.Data)) {
		p.Response = RespAddressError
		return
	}
	off := p.Address - m.base
	switch p.Command {
	case CmdRead:
		m.reads++
		for i := range p.Data {
			if p.EnabledByte(i) {
				p.Data[i] = m.applyStuck(off+uint64(i), m.data[off+uint64(i)])
			}
		}
		*delay += m.ReadLatency
	case CmdWrite:
		m.writes++
		for i := range p.Data {
			if p.EnabledByte(i) {
				m.data[off+uint64(i)] = p.Data[i]
			}
		}
		*delay += m.WriteLatency
	case CmdIgnore:
		// No transfer.
	default:
		p.Response = RespCommandError
		return
	}
	p.DMIAllowed = m.AllowDMI && len(m.stuckMask) == 0
	p.Response = RespOK
}

// TransportDbg implements DebugTarget: zero-time backdoor access.
func (m *Memory) TransportDbg(p *Payload) int {
	if !m.contains(p.Address, len(p.Data)) {
		p.Response = RespAddressError
		return 0
	}
	off := p.Address - m.base
	switch p.Command {
	case CmdRead:
		for i := range p.Data {
			p.Data[i] = m.applyStuck(off+uint64(i), m.data[off+uint64(i)])
		}
	case CmdWrite:
		copy(m.data[off:], p.Data)
	}
	p.Response = RespOK
	return len(p.Data)
}

// GetDMIPtr implements DMITarget. DMI is denied while any stuck-at
// defect is active, because a raw pointer would bypass the defect
// overlay and hide the fault from the simulation.
func (m *Memory) GetDMIPtr(p *Payload, dmi *DMIData) bool {
	if !m.AllowDMI || len(m.stuckMask) > 0 || !m.contains(p.Address, 1) {
		return false
	}
	dmi.Ptr = m.data
	dmi.StartAddr = m.base
	dmi.EndAddr = m.base + uint64(len(m.data)) - 1
	dmi.ReadAllowed = true
	dmi.WriteAllowed = true
	dmi.ReadLatency = m.ReadLatency
	dmi.WriteLatency = m.WriteLatency
	return true
}

// FlipBit injects a single-event upset: bit (0-7) of the cell at the
// absolute address addr inverts. It returns an error when addr is
// unmapped.
func (m *Memory) FlipBit(addr uint64, bit uint) error {
	if !m.contains(addr, 1) || bit > 7 {
		return fmt.Errorf("tlm: FlipBit(0x%x, %d) outside %s", addr, bit, m.name)
	}
	m.data[addr-m.base] ^= 1 << bit
	return nil
}

// StuckAt injects a permanent cell defect: bit of the cell at addr
// reads as value until ClearFaults. Writes still update the underlying
// storage, so the defect is observable only on read — matching a
// stuck-at output fault.
func (m *Memory) StuckAt(addr uint64, bit uint, value bool) error {
	if !m.contains(addr, 1) || bit > 7 {
		return fmt.Errorf("tlm: StuckAt(0x%x, %d) outside %s", addr, bit, m.name)
	}
	off := addr - m.base
	s := m.stuckMask[off]
	s.mask |= 1 << bit
	if value {
		s.value |= 1 << bit
	} else {
		s.value &^= 1 << bit
	}
	m.stuckMask[off] = s
	return nil
}

// ClearFaults removes all stuck-at defects (bit flips are persistent
// state changes and are not reverted).
func (m *Memory) ClearFaults() {
	clear(m.stuckMask)
}

// Wipe returns the memory to its freshly constructed state — zeroed
// contents, no stuck-at defects, zeroed access statistics — without
// reallocating the backing store. Prototype Rearm implementations use
// it to re-seed memories between campaign runs.
func (m *Memory) Wipe() {
	clear(m.data)
	clear(m.stuckMask)
	m.reads = 0
	m.writes = 0
}

// Poke writes raw bytes without timing (test/loader backdoor).
func (m *Memory) Poke(addr uint64, data []byte) {
	copy(m.data[addr-m.base:], data)
}

// Peek reads raw bytes without timing or defect overlay.
func (m *Memory) Peek(addr uint64, n int) []byte {
	out := make([]byte, n)
	copy(out, m.data[addr-m.base:])
	return out
}

// MemoryState is an opaque deep copy of a Memory's mutable state —
// contents, stuck-at defects and access counters — captured by
// SnapshotState for golden-run checkpointing.
type MemoryState struct {
	data   []byte
	stuck  map[uint64]stuck
	reads  uint64
	writes uint64
}

// SnapshotState implements sim.Snapshottable.
func (m *Memory) SnapshotState() any {
	st := &MemoryState{
		data:   append([]byte(nil), m.data...),
		stuck:  make(map[uint64]stuck, len(m.stuckMask)),
		reads:  m.reads,
		writes: m.writes,
	}
	for k, v := range m.stuckMask {
		st.stuck[k] = v
	}
	return st
}

// SnapshotStateInto implements sim.StatePooler: SnapshotState reusing
// the buffers of a previous capture, so checkpoint trees can recycle
// node states allocation-free in steady state.
func (m *Memory) SnapshotStateInto(prev any) any {
	st, _ := prev.(*MemoryState)
	if st == nil {
		return m.SnapshotState()
	}
	st.data = append(st.data[:0], m.data...)
	clear(st.stuck)
	for k, v := range m.stuckMask {
		st.stuck[k] = v
	}
	st.reads = m.reads
	st.writes = m.writes
	return st
}

// HashState implements sim.Hashable. Contents and stuck-at defects
// determine every future read, and the access counters advance in
// lockstep between behaviorally identical runs (per-cycle transaction
// counts do not depend on data values), so all of it folds in. Defects
// hash in ascending address order — map iteration order must not leak
// into the digest.
func (m *Memory) HashState(h *sim.StateHash) {
	h.Bytes(m.data)
	h.Int(len(m.stuckMask))
	if len(m.stuckMask) > 0 {
		keys := make([]uint64, 0, len(m.stuckMask))
		for k := range m.stuckMask {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			s := m.stuckMask[k]
			h.U64(k)
			h.Byte(s.mask)
			h.Byte(s.value)
		}
	}
	h.U64(m.reads)
	h.U64(m.writes)
}

// RestoreState implements sim.Snapshottable, writing a SnapshotState
// capture back without aliasing it into the memory.
func (m *Memory) RestoreState(state any) {
	st := state.(*MemoryState)
	copy(m.data, st.data)
	clear(m.stuckMask)
	for k, v := range st.stuck {
		m.stuckMask[k] = v
	}
	m.reads = st.reads
	m.writes = st.writes
}
