package tlm

import (
	"fmt"

	"repro/internal/sim"
)

// Target is the blocking-transport interface a TLM target implements.
type Target interface {
	// BTransport executes the transaction, annotating consumed time
	// onto *delay (loosely-timed style: the caller's local time offset
	// advances; simulated time does not move inside the call).
	BTransport(p *Payload, delay *sim.Time)
}

// DebugTarget is optionally implemented by targets that support
// zero-time debug access (backdoor reads for monitors and injectors).
type DebugTarget interface {
	// TransportDbg performs the access without timing or side effects
	// and returns the number of bytes transferred.
	TransportDbg(p *Payload) int
}

// DMIData describes a direct memory interface grant: a host-memory
// window the initiator may access without transactions.
type DMIData struct {
	Ptr          []byte // backing storage for [StartAddr, EndAddr]
	StartAddr    uint64
	EndAddr      uint64
	ReadAllowed  bool
	WriteAllowed bool
	ReadLatency  sim.Time // per-beat latency to account during DMI use
	WriteLatency sim.Time
}

// Contains reports whether addr lies inside the granted window.
func (d *DMIData) Contains(addr uint64) bool {
	return addr >= d.StartAddr && addr <= d.EndAddr
}

// DMITarget is optionally implemented by targets that can grant DMI.
type DMITarget interface {
	// GetDMIPtr requests a DMI window covering p.Address. It returns
	// false when DMI is denied.
	GetDMIPtr(p *Payload, dmi *DMIData) bool
}

// InitiatorSocket is the initiator-side binding point. It forwards
// blocking transport calls to the bound target and offers convenience
// read/write helpers.
type InitiatorSocket struct {
	name   string
	target Target
}

// NewInitiatorSocket creates a named, unbound initiator socket.
func NewInitiatorSocket(name string) *InitiatorSocket {
	return &InitiatorSocket{name: name}
}

// Name reports the socket name.
func (s *InitiatorSocket) Name() string { return s.name }

// Bind connects the socket to a target. Binding twice is a wiring bug
// and panics during elaboration rather than corrupting a simulation.
func (s *InitiatorSocket) Bind(t Target) {
	if s.target != nil {
		panic(fmt.Sprintf("tlm: socket %q already bound", s.name))
	}
	s.target = t
}

// Bound reports whether the socket has a target.
func (s *InitiatorSocket) Bound() bool { return s.target != nil }

// BTransport forwards the transaction to the bound target.
func (s *InitiatorSocket) BTransport(p *Payload, delay *sim.Time) {
	if s.target == nil {
		panic(fmt.Sprintf("tlm: socket %q not bound", s.name))
	}
	s.target.BTransport(p, delay)
}

// TransportDbg forwards a debug access; it returns 0 when the bound
// target has no debug interface.
func (s *InitiatorSocket) TransportDbg(p *Payload) int {
	if dt, ok := s.target.(DebugTarget); ok {
		return dt.TransportDbg(p)
	}
	return 0
}

// GetDMIPtr forwards a DMI request; it returns false when the target
// cannot grant DMI.
func (s *InitiatorSocket) GetDMIPtr(p *Payload, dmi *DMIData) bool {
	if dt, ok := s.target.(DMITarget); ok {
		return dt.GetDMIPtr(p, dmi)
	}
	return false
}

// Read performs a blocking read of n bytes at addr and returns the data
// and response.
func (s *InitiatorSocket) Read(addr uint64, n int, delay *sim.Time) ([]byte, Response) {
	p := NewRead(addr, n)
	s.BTransport(p, delay)
	return p.Data, p.Response
}

// Write performs a blocking write of data at addr.
func (s *InitiatorSocket) Write(addr uint64, data []byte, delay *sim.Time) Response {
	p := NewWrite(addr, data)
	s.BTransport(p, delay)
	return p.Response
}

// Read32 reads a little-endian 32-bit word.
func (s *InitiatorSocket) Read32(addr uint64, delay *sim.Time) (uint32, Response) {
	data, resp := s.Read(addr, 4, delay)
	if !resp.OK() {
		return 0, resp
	}
	return uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24, resp
}

// Write32 writes a little-endian 32-bit word.
func (s *InitiatorSocket) Write32(addr uint64, v uint32, delay *sim.Time) Response {
	return s.Write(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}, delay)
}

// TargetFunc adapts a plain function to the Target interface.
type TargetFunc func(p *Payload, delay *sim.Time)

// BTransport implements Target.
func (f TargetFunc) BTransport(p *Payload, delay *sim.Time) { f(p, delay) }
