package tlm

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPayloadString(t *testing.T) {
	p := NewWrite(0x40, []byte{1, 2})
	p.Response = RespOK
	s := p.String()
	if !strings.Contains(s, "write") || !strings.Contains(s, "0x40") || !strings.Contains(s, "ok") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(CmdIgnore.String(), "ignore") {
		t.Error("cmd string")
	}
	if !strings.HasPrefix(Command(99).String(), "Command(") || !strings.HasPrefix(Response(99).String(), "Response(") {
		t.Error("unknown enum strings")
	}
	if RespCommandError.String() != "command-error" || RespBurstError.String() != "burst-error" ||
		RespGenericError.String() != "generic-error" || RespIncomplete.String() != "incomplete" {
		t.Error("response names")
	}
}

func TestMemoryIgnoreAndBadCommand(t *testing.T) {
	m := NewMemory("m", 0, 16)
	var d sim.Time
	p := &Payload{Command: CmdIgnore, Address: 0, Data: make([]byte, 1)}
	m.BTransport(p, &d)
	if !p.Response.OK() {
		t.Errorf("ignore resp = %v", p.Response)
	}
	q := &Payload{Command: Command(77), Address: 0, Data: make([]byte, 1)}
	m.BTransport(q, &d)
	if q.Response != RespCommandError {
		t.Errorf("bad command resp = %v", q.Response)
	}
}

func TestSocketDbgAndDMIOnPlainTarget(t *testing.T) {
	s := NewInitiatorSocket("s")
	s.Bind(TargetFunc(func(p *Payload, d *sim.Time) { p.Response = RespOK }))
	if n := s.TransportDbg(NewRead(0, 4)); n != 0 {
		t.Errorf("dbg on plain target = %d", n)
	}
	var dmi DMIData
	if s.GetDMIPtr(NewRead(0, 1), &dmi) {
		t.Error("DMI granted by plain target")
	}
}

func TestUnboundSocketPanics(t *testing.T) {
	s := NewInitiatorSocket("s")
	defer func() {
		if recover() == nil {
			t.Error("unbound BTransport did not panic")
		}
	}()
	var d sim.Time
	s.BTransport(NewRead(0, 1), &d)
}

func TestReadWriteErrorPropagation(t *testing.T) {
	m := NewMemory("m", 0x100, 16)
	s := NewInitiatorSocket("s")
	s.Bind(m)
	var d sim.Time
	if _, resp := s.Read32(0, &d); resp.OK() {
		t.Error("unmapped Read32 succeeded")
	}
	if resp := s.Write32(0, 1, &d); resp.OK() {
		t.Error("unmapped Write32 succeeded")
	}
}

func TestMemoryDMIDenied(t *testing.T) {
	m := NewMemory("m", 0, 16)
	var dmi DMIData
	if m.GetDMIPtr(NewRead(0, 1), &dmi) {
		t.Error("DMI granted with AllowDMI=false")
	}
	m.AllowDMI = true
	if m.GetDMIPtr(NewRead(0x100, 1), &dmi) {
		t.Error("DMI granted outside range")
	}
}

func TestRouterUnmappedDbgAndDMI(t *testing.T) {
	r := NewRouter("bus")
	m := NewMemory("m", 0, 16)
	m.AllowDMI = true
	r.MustMap("m", 0, 16, m)
	p := NewRead(0x100, 1)
	if n := r.TransportDbg(p); n != 0 || p.Response != RespAddressError {
		t.Errorf("dbg unmapped = %d, %v", n, p.Response)
	}
	var dmi DMIData
	if r.GetDMIPtr(NewRead(0x100, 1), &dmi) {
		t.Error("DMI granted for unmapped address")
	}
	// Router over a non-debug target.
	r2 := NewRouter("bus2")
	r2.MustMap("f", 0x40, 8, TargetFunc(func(p *Payload, d *sim.Time) { p.Response = RespOK }))
	if n := r2.TransportDbg(NewRead(0x42, 1)); n != 0 {
		t.Error("dbg through plain target")
	}
	if r2.GetDMIPtr(NewRead(0x42, 1), &dmi) {
		t.Error("DMI through plain target")
	}
}

func TestRouterMustMapPanics(t *testing.T) {
	r := NewRouter("bus")
	m := NewMemory("m", 0, 16)
	r.MustMap("a", 0, 16, m)
	defer func() {
		if recover() == nil {
			t.Error("overlapping MustMap did not panic")
		}
	}()
	r.MustMap("b", 8, 16, m)
}

func TestQuantumKeeperZeroQuantum(t *testing.T) {
	k := sim.NewKernel()
	syncs := uint64(0)
	k.Thread("t", func(ctx *sim.ThreadCtx) {
		qk := NewQuantumKeeper(ctx, 0)
		for i := 0; i < 5; i++ {
			qk.Inc(sim.NS(10))
			qk.SyncIfNeeded()
		}
		syncs = qk.Syncs()
		if qk.Quantum() != 0 {
			t.Error("quantum")
		}
		qk.SetQuantum(sim.US(1))
		if qk.Quantum() != sim.US(1) {
			t.Error("SetQuantum")
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if syncs != 5 {
		t.Errorf("zero quantum syncs = %d, want 5 (every Inc)", syncs)
	}
	if k.Now() != sim.NS(50) {
		t.Errorf("Now = %v", k.Now())
	}
}

func TestQuantumKeeperSyncOnEmpty(t *testing.T) {
	k := sim.NewKernel()
	k.Thread("t", func(ctx *sim.ThreadCtx) {
		qk := NewQuantumKeeper(ctx, sim.US(1))
		qk.Sync() // zero local time: no-op
		if qk.Syncs() != 0 {
			t.Error("empty Sync counted")
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
}

func TestATPhasePanicsOnProtocolViolation(t *testing.T) {
	k := sim.NewKernel()
	mem := NewMemory("m", 0, 16)
	req := NewATRequester(k, "cpu")
	at := NewATTarget(k, "m.at", mem, req)
	req.Bind(at)
	defer func() {
		if recover() == nil {
			t.Error("bad forward phase accepted")
		}
	}()
	ph := PhaseBeginResp // initiators never send BEGIN_RESP forward
	var d sim.Time
	at.NBTransportFw(NewRead(0, 1), &ph, &d)
}

func TestDMIContains(t *testing.T) {
	d := DMIData{StartAddr: 0x10, EndAddr: 0x1f}
	if !d.Contains(0x10) || !d.Contains(0x1f) || d.Contains(0xf) || d.Contains(0x20) {
		t.Error("Contains")
	}
}
