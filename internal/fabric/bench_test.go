package fabric

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// benchLatency models the per-scenario execution latency of a remote
// prototype in the "remote" regime: the wall-clock cost of driving a
// hardware-in-the-loop rig or a co-simulated prototype on another host,
// during which the local worker is idle, not computing.
const benchLatency = 3 * time.Millisecond

// BenchmarkCampaignDistributed is the PR 9 tentpole measurement: an
// E8-style injection-time sweep on the CAPS prototype (h=80ms, the
// exhaustive single-fault universe at 16 activation times), executed
// through the full coordinator+worker fabric — lease grants, heartbeat
// flushes over HTTP, binary shard journals on disk, incremental merge —
// with 1 local worker vs 2, in two regimes:
//
//   - sim: each scenario is the local CAPS kernel simulation. This is
//     pure CPU work, so the workers=2/workers=1 ratio tracks the host's
//     core count — on a single-core host it cannot exceed ~1×, and the
//     sub-benchmark exists to pin the fabric's overhead, not a speedup.
//   - remote: each scenario additionally carries benchLatency of
//     wall-clock execution latency, modeling a prototype that runs on a
//     HIL rig or a co-simulation host. Latency overlaps across workers
//     regardless of local core count; this is the regime distributed
//     campaigns exist for, and where the ≥1.7× two-worker throughput
//     claim is measured.
//
// Each iteration is one complete distributed campaign over 4 shards,
// cross-checked against the sequential tally. The runner is shared
// (its slot pool grows one kernel per concurrent worker), so the
// workers delta isolates the fabric, not kernel construction.
func BenchmarkCampaignDistributed(b *testing.B) {
	const horizonMS = 80
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), sim.MS(horizonMS))
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	// The E8 universe swept over 16 activation times. Descriptor names
	// encode only site/model, so stamp the activation time into the
	// scenario ID to keep the swept universe unambiguous.
	var scenarios []fault.Scenario
	for t := 2; t < horizonMS-14; t += 4 {
		for _, d := range runner.Universe(sim.MS(uint64(t))) {
			d.Name = fmt.Sprintf("%s@t%dms", d.Name, t)
			scenarios = append(scenarios, fault.Single(d))
		}
	}
	want, err := (&stressor.Campaign{Name: "ref", Run: runner.RunFunc()}).Execute(scenarios)
	if err != nil {
		b.Fatal(err)
	}

	regimes := []struct {
		name string
		run  stressor.RunFunc
	}{
		{"sim", runner.RunFunc()},
		{"remote", func(sc fault.Scenario) fault.Outcome {
			time.Sleep(benchLatency)
			return runner.RunFunc()(sc)
		}},
	}
	for _, regime := range regimes {
		res := resolver(scenarios, regime.run)
		for _, workers := range []int{1, 2} {
			b.Run(fmt.Sprintf("%s/workers=%d", regime.name, workers), func(b *testing.B) {
				dir := b.TempDir()
				b.ReportAllocs()
				b.ReportMetric(float64(len(scenarios)), "scenarios/op")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := NewCoordinator(CoordConfig{
						Campaign: "bench", Scenarios: scenarios, Shards: 4,
						DataDir:  filepath.Join(dir, fmt.Sprintf("i%d", i)),
						LeaseTTL: time.Minute, StealAfter: time.Hour,
					})
					if err != nil {
						b.Fatal(err)
					}
					srv := httptest.NewServer(c.Handler())
					ws := make([]*Worker, workers)
					for wi := range ws {
						w, err := NewWorker(WorkerConfig{
							Name: fmt.Sprintf("w%d", wi), Coordinator: srv.URL,
							Resolve: res, Heartbeat: 100 * time.Millisecond,
						})
						if err != nil {
							b.Fatal(err)
						}
						ws[wi] = w
					}
					errs := make(chan error, workers)
					for _, w := range ws {
						go func() { errs <- w.Run(context.Background()) }()
					}
					for range ws {
						if err := <-errs; err != nil {
							b.Fatal(err)
						}
					}
					got, done, err := c.Result()
					if err != nil || !done {
						b.Fatalf("done=%v err=%v", done, err)
					}
					if got.Tally.String() != want.Tally.String() {
						b.Fatalf("tally %s != reference %s", got.Tally, want.Tally)
					}
					srv.Close()
					c.Close()
				}
			})
		}
	}
}
