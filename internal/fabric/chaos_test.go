package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/stressor"
)

// chaosTimings are the real-clock knobs the chaos suite runs with:
// short enough that expiry and stealing land within a test, long
// enough that heartbeats always make the deadline under -race.
const (
	chaosTTL       = 250 * time.Millisecond
	chaosSteal     = 500 * time.Millisecond
	chaosHeartbeat = 20 * time.Millisecond
	chaosPoll      = 10 * time.Millisecond
)

// runWorkers starts each worker in a goroutine and waits for all of
// them (with a hang guard).
func runWorkers(t *testing.T, ctx context.Context, workers ...*Worker) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers did not finish within 30s")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", d)
		}
		time.Sleep(time.Millisecond)
	}
}

// sequentialBaseline runs the campaign unsharded, sequentially.
func sequentialBaseline(t *testing.T, name string, scenarios []fault.Scenario, run stressor.RunFunc, dedup, stop bool) *stressor.Result {
	t.Helper()
	res, err := (&stressor.Campaign{Name: name, Run: run, Dedup: dedup, StopOnFirst: stop}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// newChaosWorker builds a worker against srvURL with chaos timings.
func newChaosWorker(t *testing.T, name, srvURL string, res Resolver) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Name: name, Coordinator: srvURL, Resolve: res,
		Heartbeat: chaosHeartbeat, Poll: chaosPoll,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestDistributedMatchesSequential is the fabric's core determinism
// claim on the happy path: 2 workers × 4 shards produce a merged
// Result identical to the unsharded sequential run, for all
// dedup/stop-on-first combinations.
func TestDistributedMatchesSequential(t *testing.T) {
	scenarios := testScenarios(24)
	scenarios[13].Faults = scenarios[5].Faults // a dedup fold across shards
	run := testRun(map[int]fault.Classification{17: fault.SDC})
	for _, tc := range []struct{ dedup, stop bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		c, srv := startCoord(t, CoordConfig{
			Scenarios: scenarios, Shards: 4, Dedup: tc.dedup, StopOnFirst: tc.stop,
			LeaseTTL: chaosTTL, StealAfter: chaosSteal,
		})
		res := resolver(scenarios, run)
		runWorkers(t, context.Background(),
			newChaosWorker(t, "w1", srv.URL, res),
			newChaosWorker(t, "w2", srv.URL, res))
		got, done, err := c.Result()
		if err != nil || !done {
			t.Fatalf("dedup=%v stop=%v: done=%v err=%v", tc.dedup, tc.stop, done, err)
		}
		want := sequentialBaseline(t, "fab", scenarios, run, tc.dedup, tc.stop)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("dedup=%v stop=%v: distributed result differs:\n%+v\n%+v", tc.dedup, tc.stop, got, want)
		}
	}
}

// TestWorkerKillMidLease is the headline chaos test: a worker is
// killed partway through its lease (it goes silent without flushing
// its tail), the lease expires, the surviving worker steals the shard,
// resumes it from the last flushed entry, and the merged result is
// byte-identical to the sequential run.
func TestWorkerKillMidLease(t *testing.T) {
	scenarios := testScenarios(20)
	baseRun := testRun(map[int]fault.Classification{11: fault.DetectedSafe})
	c, srv := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 2,
		LeaseTTL: chaosTTL, StealAfter: chaosSteal,
	})

	var victim *Worker
	var runs atomic.Int32
	// The victim's run function kills its own worker after 3 scenarios,
	// stranding the rest of the lease; runs already journaled and
	// flushed by then form the resume prefix.
	killingRun := func(sc fault.Scenario) fault.Outcome {
		if runs.Add(1) == 3 {
			// Let at least one heartbeat carry the completed entries out
			// before going dark, so the recovery genuinely RESUMES.
			time.Sleep(3 * chaosHeartbeat)
			victim.Kill()
		}
		return baseRun(sc)
	}
	victim = newChaosWorker(t, "victim", srv.URL, resolver(scenarios, killingRun))
	survivor := newChaosWorker(t, "survivor", srv.URL, resolver(scenarios, baseRun))
	// Let the victim claim its lease first so the kill always lands
	// mid-campaign instead of racing the survivor for both shards.
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	var victimErr error
	go func() { defer wg.Done(); victimErr = victim.Run(ctx) }()
	waitFor(t, 10*time.Second, func() bool { return runs.Load() >= 1 })
	runWorkers(t, ctx, survivor)
	wg.Wait()
	if victimErr != nil {
		t.Fatalf("victim: %v", victimErr)
	}

	got, done, err := c.Result()
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	want := sequentialBaseline(t, "fab", scenarios, baseRun, false, false)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered result differs from sequential:\n%+v\n%+v", got, want)
	}
	if runs.Load() < 3 {
		t.Fatalf("victim ran %d scenarios, kill never triggered", runs.Load())
	}
}

// TestWorkerStallIsStolen covers the slow-worker path: the holder
// keeps heartbeating but blocks inside a scenario, so no entries flow
// for StealAfter; an idle worker steals the shard, re-runs it, and the
// merged result is still identical — the stalled holder's eventual
// flush is refused and it halts.
func TestWorkerStallIsStolen(t *testing.T) {
	scenarios := testScenarios(12)
	baseRun := testRun(nil)
	c, srv := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 2,
		LeaseTTL: chaosTTL, StealAfter: chaosSteal,
	})

	unblock := make(chan struct{})
	var stalled atomic.Bool
	stallingRun := func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s2" && stalled.CompareAndSwap(false, true) {
			<-unblock // stuck "forever" — until the test tears down
		}
		return baseRun(sc)
	}
	stall := newChaosWorker(t, "stall", srv.URL, resolver(scenarios, stallingRun))
	thief := newChaosWorker(t, "thief", srv.URL, resolver(scenarios, baseRun))

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); stall.Run(ctx) }()
	defer func() { close(unblock); wg.Wait() }()
	// Hold the thief back until the stall worker actually owns a lease —
	// otherwise the thief races through both shards and nothing stalls.
	waitFor(t, 10*time.Second, func() bool { return stalled.Load() })
	runWorkers(t, ctx, thief)

	got, done, err := c.Result()
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	want := sequentialBaseline(t, "fab", scenarios, baseRun, false, false)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stolen result differs from sequential:\n%+v\n%+v", got, want)
	}
	if !stalled.Load() {
		t.Fatal("stall never triggered")
	}
}

// TestEventsStream reads the NDJSON progress stream through a full
// run: progress lines must be monotonic and the final line must carry
// the merged tally.
func TestEventsStream(t *testing.T) {
	scenarios := testScenarios(10)
	run := testRun(map[int]fault.Classification{6: fault.SDC})
	c, srv := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 2,
		LeaseTTL: chaosTTL, StealAfter: chaosSteal,
	})
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan Event, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				events <- ev
			}
		}
	}()

	runWorkers(t, context.Background(), newChaosWorker(t, "w1", srv.URL, resolver(scenarios, run)))

	var last Event
	completed := -1
	for ev := range events {
		if ev.Completed < completed {
			t.Fatalf("progress went backwards: %d after %d", ev.Completed, completed)
		}
		completed = ev.Completed
		last = ev
	}
	if !last.Final || last.Type != "done" || last.Completed != 10 {
		t.Fatalf("final event = %+v", last)
	}
	want, _, _ := c.Result()
	if last.Tally != want.Tally.String() {
		t.Fatalf("final tally %q, want %q", last.Tally, want.Tally.String())
	}
}

// TestWorkerRejectsUniverseSkew pins the cross-check that stops a
// misconfigured worker before it poisons a campaign: a resolver
// producing a different universe than the coordinator merges must
// abort the worker at lease time.
func TestWorkerRejectsUniverseSkew(t *testing.T) {
	scenarios := testScenarios(6)
	_, srv := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 1,
		LeaseTTL: chaosTTL, StealAfter: chaosSteal,
	})
	skewed := testScenarios(6)
	skewed[2].Faults[0].Param = 0.5
	w := newChaosWorker(t, "skew", srv.URL, resolver(skewed, testRun(nil)))
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("worker accepted a skewed universe")
	}
}
