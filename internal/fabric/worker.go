package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/stressor"
)

// Resolved is a materialized lease: the scenario universe the opaque
// spec describes, and a campaign template carrying everything
// prototype-shaped — RunFunc, inner worker pool, checkpoint knobs.
// The fabric worker overwrites the identity fields (Name, Shard,
// Dedup, StopOnFirst, Journal, Resume, Halt) from the lease.
type Resolved struct {
	Scenarios []fault.Scenario
	Campaign  *stressor.Campaign
}

// Resolver turns a coordinator's opaque spec into runnable form. It is
// called once per granted lease; implementations should cache the
// expensive parts (kernels, slot pools) across calls.
type Resolver func(spec json.RawMessage) (*Resolved, error)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Name identifies this worker to the coordinator.
	Name string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Resolve materializes lease specs.
	Resolve Resolver
	// Heartbeat is the flush cadence while holding a lease. Default
	// (and maximum) is a third of the lease TTL.
	Heartbeat time.Duration
	// Poll is the retry interval when no lease is available. Defaults
	// to Heartbeat.
	Poll time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Log receives worker events.
	Log *slog.Logger
}

// Worker leases shards from a coordinator and executes them.
type Worker struct {
	cfg    WorkerConfig
	killed atomic.Bool

	mu  sync.Mutex
	buf []journal.Entry // completed entries awaiting flush
}

// NewWorker validates cfg.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("fabric: worker needs a name")
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fabric: worker needs a coordinator URL")
	}
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("fabric: worker needs a resolver")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Heartbeat
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	return &Worker{cfg: cfg}, nil
}

// Kill simulates a SIGKILL for chaos tests: the worker halts its
// current campaign, stops heartbeating and never flushes again — from
// the coordinator's side it simply goes silent mid-lease, exactly like
// a dead process, and the lease expires and moves on.
func (w *Worker) Kill() { w.killed.Store(true) }

func (w *Worker) logInfo(msg string, args ...any) {
	if w.cfg.Log != nil {
		w.cfg.Log.Info(msg, append([]any{"worker", w.cfg.Name}, args...)...)
	}
}

// post sends one JSON request and decodes the response into out (when
// non-nil). It returns the HTTP status and the response error body, if
// any.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode/100 != 2 {
		var ed errorDoc
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			return resp.StatusCode, fmt.Errorf("fabric: %s: %s", path, ed.Error)
		}
		return resp.StatusCode, fmt.Errorf("fabric: %s: HTTP %d", path, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric: %s: bad response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Run registers the worker and processes leases until the campaign
// completes, the context is cancelled, or the worker is killed.
func (w *Worker) Run(ctx context.Context) error {
	if _, err := w.post(ctx, "/workers", RegisterRequest{Worker: w.cfg.Name}, nil); err != nil {
		return err
	}
	for {
		if w.killed.Load() {
			return nil
		}
		var lease Lease
		if code, err := w.post(ctx, "/leases", LeaseRequest{Worker: w.cfg.Name}, &lease); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if code == 0 {
				// Transport failure against a coordinator we successfully
				// registered with: it has gone away — typically a -oneshot
				// coordinator that merged and exited while we were polling.
				// There is nothing left to work on.
				w.logInfo("coordinator gone", "err", err.Error())
				return nil
			}
			return err
		}
		switch lease.Status {
		case StatusDone:
			w.logInfo("campaign done")
			return nil
		case StatusWait:
			select {
			case <-time.After(w.cfg.Poll):
			case <-ctx.Done():
				return ctx.Err()
			}
		case StatusGranted:
			campaignDone, err := w.runLease(ctx, lease)
			if err != nil {
				return err
			}
			if campaignDone {
				// Our final flush completed the whole campaign; skip the
				// next poll — a -oneshot coordinator exits at this point.
				w.logInfo("campaign done")
				return nil
			}
		default:
			return fmt.Errorf("fabric: unknown lease status %q", lease.Status)
		}
	}
}

// runLease executes one granted shard through the campaign engine,
// streaming completed entries back on the heartbeat cadence. It
// reports whether its final flush completed the whole campaign.
func (w *Worker) runLease(ctx context.Context, lease Lease) (bool, error) {
	resolved, err := w.cfg.Resolve(lease.Spec)
	if err != nil {
		return false, fmt.Errorf("fabric: resolving lease spec: %w", err)
	}
	if len(resolved.Scenarios) != lease.Total {
		return false, fmt.Errorf("fabric: resolved %d scenarios, lease says %d", len(resolved.Scenarios), lease.Total)
	}
	if uh := stressor.UniverseHash(resolved.Scenarios); uh != lease.Universe {
		// The worker would run a different universe than the coordinator
		// merges: a version or configuration skew that must stop the
		// worker, not poison the campaign.
		return false, fmt.Errorf("fabric: resolved universe %s does not match lease universe %s", uh, lease.Universe)
	}
	w.logInfo("lease granted", "shard", lease.Shard, "attempt", lease.Attempt, "resume", len(lease.Entries))

	// Drop anything a previous revoked lease left unflushed: those
	// entries belong to a shard someone else owns now.
	w.mu.Lock()
	w.buf = nil
	w.mu.Unlock()

	shards := lease.Shards
	if shards < 1 {
		shards = 1
	}
	var resume *journal.Journal
	if len(lease.Entries) > 0 {
		resume = &journal.Journal{
			Header: journal.Header{
				FormatMarker: journal.Format, Campaign: lease.Campaign,
				Shard: lease.Shard, Shards: shards,
				Total: lease.Total, Universe: lease.Universe,
			},
			Entries: lease.Entries,
		}
	}

	var revoked, campaignDone atomic.Bool
	flushPath := fmt.Sprintf("/leases/%d/flush", lease.Shard)
	flush := func(done bool) {
		w.mu.Lock()
		entries := w.buf
		w.buf = nil
		w.mu.Unlock()
		if w.killed.Load() || revoked.Load() {
			return
		}
		var fr FlushResponse
		code, err := w.post(ctx, flushPath, FlushRequest{
			Worker: w.cfg.Name, Attempt: lease.Attempt, Entries: entries, Done: done,
		}, &fr)
		if err == nil && fr.CampaignDone {
			campaignDone.Store(true)
		}
		switch {
		case code == http.StatusConflict:
			// Superseded: someone stole the lease (or it expired and was
			// regranted). Halt; the thief re-runs whatever we did not get
			// flushed in time.
			w.logInfo("lease revoked", "shard", lease.Shard, "attempt", lease.Attempt)
			revoked.Store(true)
		case err != nil:
			// Transient failure: requeue and retry next heartbeat. The
			// lease survives as long as one flush lands within the TTL.
			w.mu.Lock()
			w.buf = append(entries, w.buf...)
			w.mu.Unlock()
			w.logInfo("flush failed", "shard", lease.Shard, "err", err.Error())
		}
	}

	c := *resolved.Campaign
	c.Name = lease.Campaign
	c.Dedup = lease.Dedup
	c.StopOnFirst = lease.StopOnFirst
	if shards > 1 {
		c.Shard = stressor.Shard{Index: lease.Shard, Count: shards}
	} else {
		c.Shard = stressor.Shard{}
	}
	c.Journal = &bufSink{w: w}
	c.Resume = resume
	c.Halt = func(int) bool { return w.killed.Load() || revoked.Load() }

	hb := w.cfg.Heartbeat
	if ttl := time.Duration(lease.TTLMillis) * time.Millisecond; ttl > 0 && hb > ttl/3 {
		hb = ttl / 3
	}
	stop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				flush(false)
			case <-stop:
				return
			}
		}
	}()

	_, err = c.Execute(resolved.Scenarios)
	close(stop)
	hbDone.Wait()
	if err != nil {
		return false, fmt.Errorf("fabric: shard %d: %w", lease.Shard, err)
	}
	if w.killed.Load() || revoked.Load() {
		// Killed: go silent. Revoked: the thief owns the shard now.
		return false, nil
	}
	flush(true)
	w.logInfo("lease done", "shard", lease.Shard, "attempt", lease.Attempt)
	return campaignDone.Load(), nil
}

// bufSink is the engine's JournalSink: completed entries accumulate in
// the worker's buffer until the next heartbeat flush.
type bufSink struct{ w *Worker }

func (s *bufSink) Append(e journal.Entry) error {
	s.w.mu.Lock()
	s.w.buf = append(s.w.buf, e)
	s.w.mu.Unlock()
	return nil
}
