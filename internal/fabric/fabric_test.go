package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/stressor"
)

// testScenarios builds n scenarios with distinct fault content (dedup
// would fold identical content).
func testScenarios(n int) []fault.Scenario {
	out := make([]fault.Scenario, n)
	for i := range out {
		out[i] = fault.Single(fault.Descriptor{
			Name: fmt.Sprintf("s%d", i), Model: fault.BitFlip, Target: "m", Bit: uint(i),
		})
	}
	return out
}

// testRun maps scenario si to failures[i] (default Masked), purely.
func testRun(failures map[int]fault.Classification) stressor.RunFunc {
	return func(sc fault.Scenario) fault.Outcome {
		var i int
		fmt.Sscanf(sc.ID, "s%d", &i)
		cls := fault.Masked
		if c, ok := failures[i]; ok {
			cls = c
		}
		return fault.Outcome{Scenario: sc, Class: cls, Detail: "ran " + sc.ID}
	}
}

// fakeClock is a mutex-guarded manual clock for deterministic lease
// expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// startCoord builds a coordinator with the given config, applying test
// defaults, and serves it over httptest.
func startCoord(t *testing.T, cfg CoordConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Campaign == "" {
		cfg.Campaign = "fab"
	}
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { c.Close() })
	return c, srv
}

// postJSON posts v and returns the status code and raw response body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// lease requests a lease for worker and decodes it.
func lease(t *testing.T, base, worker string) Lease {
	t.Helper()
	code, data := postJSON(t, base+"/leases", LeaseRequest{Worker: worker})
	if code != http.StatusOK {
		t.Fatalf("lease: HTTP %d: %s", code, data)
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		t.Fatal(err)
	}
	return l
}

// flush posts a flush request and returns the status code.
func flush(t *testing.T, base string, shard int, req FlushRequest) int {
	t.Helper()
	code, _ := postJSON(t, fmt.Sprintf("%s/leases/%d/flush", base, shard), req)
	return code
}

// resolver builds a Resolver returning fresh campaign templates over
// the given scenarios and run function.
func resolver(scenarios []fault.Scenario, run stressor.RunFunc) Resolver {
	return func(json.RawMessage) (*Resolved, error) {
		return &Resolved{
			Scenarios: scenarios,
			Campaign:  &stressor.Campaign{Run: run},
		}, nil
	}
}
