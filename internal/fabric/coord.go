package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/stressor"
)

// CoordConfig configures a Coordinator.
type CoordConfig struct {
	// Campaign names the campaign (journal headers, summaries).
	Campaign string
	// Spec is the opaque campaign description handed to workers, which
	// materialize it through their Resolver. The coordinator never
	// interprets it; it only requires that resolving it reproduces
	// Scenarios (enforced via the universe hash in every lease).
	Spec json.RawMessage
	// Scenarios is the full, pre-dedup scenario universe — the
	// coordinator's side of the determinism contract, used for entry
	// validation, progress accounting and the final merge.
	Scenarios []fault.Scenario
	// Shards is the partition count (>= 1). More shards than workers is
	// normal: idle workers lease the next pending shard, which is what
	// load-balances heterogeneous machines.
	Shards int
	// Dedup and StopOnFirst mirror the engine knobs; every worker runs
	// its shard with exactly these settings.
	Dedup       bool
	StopOnFirst bool
	// DataDir holds the per-shard journals (shard-N.journal). Journals
	// found there at startup are adopted, so a restarted coordinator
	// resumes its campaign instead of rerunning it.
	DataDir string
	// Codec selects the shard journal encoding (default Binary).
	Codec journal.Codec
	// LeaseTTL is the heartbeat deadline: a lease not flushed within it
	// is considered dead and returns to the pool. Default 10s.
	LeaseTTL time.Duration
	// StealAfter is the no-progress window after which an idle worker
	// may steal a still-heartbeating lease (stuck or pathologically
	// slow holder). Default 3×LeaseTTL.
	StealAfter time.Duration
	// Now is the clock (injectable for deterministic expiry tests).
	Now func() time.Time
	// Text optionally renders the merged result for GET /result?format=text.
	Text func(*stressor.Result) string
	// Log receives coordinator events.
	Log *slog.Logger
}

type shardState struct {
	state    string // "pending" | "leased" | "done"
	worker   string
	attempt  int
	deadline time.Time // lease expiry, extended by every flush
	progress time.Time // last time recorded grew (steal decisions)
	entries  map[int]journal.Entry
	order    []int // recorded indices in arrival order (lease replay)
	w        *journal.Writer
	owned    int
}

// Coordinator runs the lease/flush/merge protocol for one campaign.
type Coordinator struct {
	cfg      CoordConfig
	universe string

	done chan struct{} // closed at finalization

	mu        sync.Mutex
	shards    []*shardState
	workers   map[string]bool
	closed    bool
	finalized bool
	result    *stressor.Result
	mergeErr  error
	waiters   []chan struct{}
	total     int // unique-run positions across all shards
}

// NewCoordinator validates cfg, opens (or adopts) the shard journals
// and returns a coordinator ready to serve.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Campaign == "" {
		cfg.Campaign = "fabric"
	}
	if len(cfg.Scenarios) == 0 {
		return nil, fmt.Errorf("fabric: coordinator needs a scenario universe")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fabric: shards %d, want >= 1", cfg.Shards)
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("fabric: coordinator needs a data directory")
	}
	if cfg.Codec == "" {
		cfg.Codec = journal.Binary
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = 3 * cfg.LeaseTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	for _, sc := range cfg.Scenarios {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("fabric: %w", err)
		}
	}
	c := &Coordinator{
		cfg:      cfg,
		universe: stressor.UniverseHash(cfg.Scenarios),
		workers:  map[string]bool{},
		done:     make(chan struct{}),
	}
	c.total = len(stressor.OwnedIndices(cfg.Scenarios, cfg.Dedup, stressor.Shard{}))
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shardState{
			state:   "pending",
			entries: map[int]journal.Entry{},
			owned:   len(stressor.OwnedIndices(cfg.Scenarios, cfg.Dedup, c.shard(i))),
		}
		path := c.journalPath(i)
		header := c.header(i)
		if _, statErr := os.Stat(path); statErr == nil {
			// A previous coordinator ran here: adopt the journal (trimming
			// any torn tail) so the campaign resumes from its last flush.
			j, w, err := journal.AppendTo(path, header)
			if err != nil {
				return nil, fmt.Errorf("fabric: adopting shard %d journal: %w", i, err)
			}
			s.w = w
			for _, e := range j.Entries {
				if _, ok := s.entries[e.Index]; !ok {
					s.entries[e.Index] = e
					s.order = append(s.order, e.Index)
				}
			}
			if len(s.entries) >= s.owned {
				s.state = "done"
			}
		} else {
			w, err := journal.CreateCodec(path, header, cfg.Codec)
			if err != nil {
				return nil, fmt.Errorf("fabric: creating shard %d journal: %w", i, err)
			}
			s.w = w
		}
		c.shards = append(c.shards, s)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allDoneLocked() {
		c.finalizeLocked()
	}
	return c, nil
}

func (c *Coordinator) shard(i int) stressor.Shard {
	if c.cfg.Shards <= 1 {
		return stressor.Shard{}
	}
	return stressor.Shard{Index: i, Count: c.cfg.Shards}
}

func (c *Coordinator) journalPath(i int) string {
	return filepath.Join(c.cfg.DataDir, fmt.Sprintf("shard-%d.journal", i))
}

func (c *Coordinator) header(i int) journal.Header {
	return journal.Header{
		Campaign: c.cfg.Campaign, Shard: i, Shards: c.cfg.Shards,
		Total: len(c.cfg.Scenarios), Universe: c.universe,
	}
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /workers", c.handleRegister)
	mux.HandleFunc("POST /leases", c.handleLease)
	mux.HandleFunc("POST /leases/{shard}/flush", c.handleFlush)
	mux.HandleFunc("GET /status", c.handleStatus)
	mux.HandleFunc("GET /result", c.handleResult)
	mux.HandleFunc("GET /events", c.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// readBody decodes a small JSON request body strictly.
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<22))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "body too large or unreadable: %v", err)
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (c *Coordinator) logInfo(msg string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log.Info(msg, args...)
	}
}

// broadcastLocked wakes every /events streamer.
func (c *Coordinator) broadcastLocked() {
	for _, ch := range c.waiters {
		close(ch)
	}
	c.waiters = nil
}

// Done returns a channel closed when the campaign has finalized (all
// shards complete and the merge attempted — check Result for the
// outcome). It closes even when the merge fails.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// sweepLocked expires dead leases: a shard whose deadline has passed
// without a flush returns to the pool, entries intact — the next lease
// resumes it from the last flushed entry.
func (c *Coordinator) sweepLocked(now time.Time) {
	for i, s := range c.shards {
		if s.state == "leased" && now.After(s.deadline) {
			c.logInfo("lease expired", "shard", i, "worker", s.worker, "recorded", len(s.entries))
			s.state = "pending"
			s.worker = ""
		}
	}
}

func (c *Coordinator) allDoneLocked() bool {
	for _, s := range c.shards {
		if s.state != "done" {
			return false
		}
	}
	return true
}

// finalizeLocked closes the shard journals, re-reads them from disk
// and merges — the merged Result is what the unsharded sequential run
// would have produced, byte for byte.
func (c *Coordinator) finalizeLocked() {
	if c.finalized {
		return
	}
	c.finalized = true
	defer close(c.done)
	js := make([]*journal.Journal, 0, len(c.shards))
	for i, s := range c.shards {
		if err := s.w.Close(); err != nil {
			c.mergeErr = fmt.Errorf("fabric: closing shard %d journal: %w", i, err)
			c.broadcastLocked()
			return
		}
		j, err := journal.Read(c.journalPath(i))
		if err != nil {
			c.mergeErr = err
			c.broadcastLocked()
			return
		}
		js = append(js, j)
	}
	spec := stressor.MergeSpec{Dedup: c.cfg.Dedup, StopOnFirst: c.cfg.StopOnFirst}
	c.result, c.mergeErr = stressor.Merge(spec, c.cfg.Scenarios, js)
	if c.mergeErr == nil {
		c.logInfo("campaign merged", "campaign", c.cfg.Campaign, "outcomes", len(c.result.Outcomes))
	}
	c.broadcastLocked()
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "worker name required")
		return
	}
	c.mu.Lock()
	c.workers[req.Worker] = true
	c.mu.Unlock()
	c.logInfo("worker registered", "worker", req.Worker)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "worker name required")
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[req.Worker] = true
	c.sweepLocked(now)

	grant := func(i int, s *shardState, how string) {
		s.state = "leased"
		s.worker = req.Worker
		s.attempt++
		s.deadline = now.Add(c.cfg.LeaseTTL)
		s.progress = now
		c.logInfo("lease "+how, "shard", i, "worker", req.Worker, "attempt", s.attempt, "resume", len(s.entries))
		entries := make([]journal.Entry, 0, len(s.order))
		for _, idx := range s.order {
			entries = append(entries, s.entries[idx])
		}
		writeJSON(w, http.StatusOK, Lease{
			Status: StatusGranted, Campaign: c.cfg.Campaign,
			Shard: i, Shards: c.cfg.Shards, Attempt: s.attempt,
			Total: len(c.cfg.Scenarios), Universe: c.universe,
			Dedup: c.cfg.Dedup, StopOnFirst: c.cfg.StopOnFirst,
			TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
			Spec:      c.cfg.Spec, Entries: entries,
		})
	}
	for i, s := range c.shards {
		if s.state == "pending" {
			grant(i, s, "granted")
			return
		}
	}
	// Nothing pending: steal from a holder that is heartbeating but has
	// recorded nothing new for StealAfter. The superseded attempt keeps
	// running until its next flush is answered 409 — its entries are
	// deterministic duplicates of the thief's, folded on arrival.
	for i, s := range c.shards {
		if s.state == "leased" && s.worker != req.Worker && now.Sub(s.progress) >= c.cfg.StealAfter {
			c.logInfo("lease stolen", "shard", i, "from", s.worker, "by", req.Worker)
			grant(i, s, "stolen")
			return
		}
	}
	if c.allDoneLocked() {
		writeJSON(w, http.StatusOK, Lease{Status: StatusDone})
		return
	}
	writeJSON(w, http.StatusOK, Lease{Status: StatusWait})
}

func (c *Coordinator) handleFlush(w http.ResponseWriter, r *http.Request) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || shard < 0 || shard >= c.cfg.Shards {
		writeErr(w, http.StatusBadRequest, "bad shard %q", r.PathValue("shard"))
		return
	}
	var req FlushRequest
	if !readBody(w, r, &req) {
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.shards[shard]
	if s.worker != req.Worker || s.attempt != req.Attempt || s.state == "pending" {
		// An expired or superseded lease: the holder must stop. Its
		// already-flushed entries stay — they are the resume prefix of
		// whoever holds the lease now.
		writeErr(w, http.StatusConflict, "lease revoked (shard %d held by %q attempt %d)", shard, s.worker, s.attempt)
		return
	}
	if s.state == "leased" {
		s.deadline = now.Add(c.cfg.LeaseTTL)
	}
	grew := false
	for _, e := range req.Entries {
		if e.Index < 0 || e.Index >= len(c.cfg.Scenarios) {
			writeErr(w, http.StatusBadRequest, "entry index %d out of range", e.Index)
			return
		}
		if c.cfg.Scenarios[e.Index].ID != e.ID {
			writeErr(w, http.StatusBadRequest, "entry %d is scenario %q, universe has %q", e.Index, e.ID, c.cfg.Scenarios[e.Index].ID)
			return
		}
		if prev, ok := s.entries[e.Index]; ok {
			if prev != e {
				// Two attempts disagreeing about one scenario means the
				// prototype is nondeterministic — the one condition the
				// whole fabric is built never to paper over.
				writeErr(w, http.StatusConflict, "entry %d recorded twice with different outcomes (%+v vs %+v)", e.Index, prev, e)
				return
			}
			continue
		}
		if err := s.w.Append(e); err != nil {
			writeErr(w, http.StatusInternalServerError, "journal append: %v", err)
			return
		}
		s.entries[e.Index] = e
		s.order = append(s.order, e.Index)
		grew = true
	}
	if grew {
		s.progress = now
	}
	if req.Done && s.state != "done" {
		s.state = "done"
		c.logInfo("shard done", "shard", shard, "worker", req.Worker, "recorded", len(s.entries))
		if c.allDoneLocked() {
			c.finalizeLocked()
		}
	}
	if grew || req.Done {
		c.broadcastLocked()
	}
	writeJSON(w, http.StatusOK, FlushResponse{OK: true, Recorded: len(s.entries), CampaignDone: c.finalized})
}

// statusLocked snapshots progress for /status and /events.
func (c *Coordinator) statusLocked() StatusDoc {
	doc := StatusDoc{Campaign: c.cfg.Campaign, Total: c.total, Done: c.finalized}
	for i, s := range c.shards {
		doc.Shards = append(doc.Shards, ShardStatus{
			Shard: i, State: s.state, Worker: s.worker, Attempt: s.attempt,
			Recorded: len(s.entries), Owned: s.owned,
		})
		doc.Completed += len(s.entries)
	}
	for name := range c.workers {
		doc.Workers = append(doc.Workers, name)
	}
	sort.Strings(doc.Workers)
	if c.mergeErr != nil {
		doc.MergeError = c.mergeErr.Error()
	}
	return doc
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.sweepLocked(c.cfg.Now())
	doc := c.statusLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	res, err, done := c.result, c.mergeErr, c.finalized
	c.mu.Unlock()
	switch {
	case !done:
		writeErr(w, http.StatusNotFound, "campaign still running")
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "merge failed: %v", err)
	case r.URL.Query().Get("format") == "text" && c.cfg.Text != nil:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, c.cfg.Text(res))
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"campaign": res.Name,
			"tally":    res.Tally.String(),
			"outcomes": len(res.Outcomes),
			"dedup":    res.DedupSavedRuns,
		})
	}
}

// handleEvents streams NDJSON progress: one line per state change,
// then a final line once the campaign merges (or fails to).
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		c.mu.Lock()
		doc := c.statusLocked()
		var wait chan struct{}
		if !c.finalized {
			wait = make(chan struct{})
			c.waiters = append(c.waiters, wait)
		}
		res, mergeErr := c.result, c.mergeErr
		c.mu.Unlock()

		ev := Event{Type: "progress", Completed: doc.Completed, Total: doc.Total}
		for _, s := range doc.Shards {
			if s.State == "done" {
				ev.ShardsDone++
			}
		}
		if doc.Done {
			ev.Final = true
			if mergeErr != nil {
				ev.Type, ev.Error = "error", mergeErr.Error()
			} else {
				ev.Type, ev.Tally = "done", res.Tally.String()
			}
		}
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ev.Final {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// Result returns the merged campaign result once every shard is done
// (nil, false while running; the error reports a failed merge).
func (c *Coordinator) Result() (*stressor.Result, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finalized {
		return nil, false, nil
	}
	return c.result, true, c.mergeErr
}

// Close releases the shard journal writers (no-op after finalize).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finalized || c.closed {
		return nil
	}
	c.closed = true
	var first error
	for _, s := range c.shards {
		if err := s.w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
