package fabric

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/stressor"
)

// entryFor builds the journal entry the engine would record for
// scenario index i under testRun semantics.
func entryFor(scenarios []fault.Scenario, i int, cls fault.Classification) journal.Entry {
	return journal.Entry{Index: i, ID: scenarios[i].ID, Class: cls.String(), Detail: "ran " + scenarios[i].ID}
}

// TestLeaseExpiryHandsShardOn is the heartbeat-deadline contract: a
// worker that leases a shard, flushes part of it and goes silent loses
// the lease at the TTL; the next worker receives the same shard WITH
// the flushed entries as its resume prefix, and the dead worker's
// late flush is refused.
func TestLeaseExpiryHandsShardOn(t *testing.T) {
	scenarios := testScenarios(8)
	clock := newFakeClock()
	_, srv := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 2,
		LeaseTTL: 10 * time.Second, Now: clock.Now,
	})

	l1 := lease(t, srv.URL, "w1")
	if l1.Status != StatusGranted || l1.Attempt != 1 {
		t.Fatalf("first lease = %+v", l1)
	}
	recorded := []journal.Entry{
		entryFor(scenarios, l1.Shard, fault.Masked),
		entryFor(scenarios, l1.Shard+2, fault.Masked),
	}
	if code := flush(t, srv.URL, l1.Shard, FlushRequest{Worker: "w1", Attempt: l1.Attempt, Entries: recorded}); code != http.StatusOK {
		t.Fatalf("flush: HTTP %d", code)
	}

	// w1 goes silent; w2 takes the other shard meanwhile.
	l2 := lease(t, srv.URL, "w2")
	if l2.Status != StatusGranted || l2.Shard == l1.Shard {
		t.Fatalf("second lease = %+v", l2)
	}
	// Before the TTL, the silent lease is not up for grabs.
	if l := lease(t, srv.URL, "w3"); l.Status != StatusWait {
		t.Fatalf("pre-expiry lease = %+v", l)
	}
	clock.Advance(11 * time.Second)
	l3 := lease(t, srv.URL, "w3")
	if l3.Status != StatusGranted || l3.Shard != l1.Shard || l3.Attempt != 2 {
		t.Fatalf("post-expiry lease = %+v", l3)
	}
	if !reflect.DeepEqual(l3.Entries, recorded) {
		t.Fatalf("resume entries = %+v, want %+v", l3.Entries, recorded)
	}
	// The dead worker's flush is answered 409: its lease is gone.
	if code := flush(t, srv.URL, l1.Shard, FlushRequest{Worker: "w1", Attempt: l1.Attempt}); code != http.StatusConflict {
		t.Fatalf("stale flush: HTTP %d, want 409", code)
	}
}

// TestLeaseStealFromStalledHolder is the work-stealing contract: a
// holder that keeps heartbeating but records no new entries for
// StealAfter loses the shard to an idle worker, even though its lease
// never expired.
func TestLeaseStealFromStalledHolder(t *testing.T) {
	scenarios := testScenarios(4)
	clock := newFakeClock()
	_, srv := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 1,
		LeaseTTL: 10 * time.Second, StealAfter: 25 * time.Second, Now: clock.Now,
	})
	l1 := lease(t, srv.URL, "w1")
	if l1.Status != StatusGranted {
		t.Fatalf("lease = %+v", l1)
	}
	// Heartbeat every 5s without progress: the lease stays alive, so an
	// idle worker waits... until StealAfter elapses.
	for i := 0; i < 4; i++ {
		clock.Advance(5 * time.Second)
		if code := flush(t, srv.URL, 0, FlushRequest{Worker: "w1", Attempt: 1}); code != http.StatusOK {
			t.Fatalf("heartbeat %d: HTTP %d", i, code)
		}
		if i < 1 {
			if l := lease(t, srv.URL, "w2"); l.Status != StatusWait {
				t.Fatalf("heartbeat %d: idle worker got %+v", i, l)
			}
		}
	}
	// 20s elapsed, still heartbeating: not stealable yet at <25s.
	if l := lease(t, srv.URL, "w2"); l.Status != StatusWait {
		t.Fatalf("pre-steal lease = %+v", l)
	}
	clock.Advance(5 * time.Second)
	l2 := lease(t, srv.URL, "w2")
	if l2.Status != StatusGranted || l2.Shard != 0 || l2.Attempt != 2 {
		t.Fatalf("steal = %+v", l2)
	}
	// The stalled holder's next flush — even one finally carrying an
	// entry — is refused; the identical entry from the thief lands.
	e := entryFor(scenarios, 1, fault.Masked)
	if code := flush(t, srv.URL, 0, FlushRequest{Worker: "w1", Attempt: 1, Entries: []journal.Entry{e}}); code != http.StatusConflict {
		t.Fatalf("superseded flush: HTTP %d, want 409", code)
	}
	if code := flush(t, srv.URL, 0, FlushRequest{Worker: "w2", Attempt: 2, Entries: []journal.Entry{e}}); code != http.StatusOK {
		t.Fatalf("thief flush: HTTP %d", code)
	}
	// A worker's OWN slow lease is not stolen back from it on its next
	// lease request — stealing requires a different requester.
	if l := lease(t, srv.URL, "w2"); l.Status != StatusWait {
		t.Fatalf("self-steal = %+v", l)
	}
}

// TestFlushValidation pins the coordinator's entry checks: range, ID
// match against the universe, and the duplicate policy — identical
// duplicates fold silently (work-stealing makes them normal),
// conflicting duplicates are a 409 because they prove nondeterminism.
func TestFlushValidation(t *testing.T) {
	scenarios := testScenarios(4)
	clock := newFakeClock()
	_, srv := startCoord(t, CoordConfig{Scenarios: scenarios, Shards: 1, Now: clock.Now})
	l := lease(t, srv.URL, "w1")
	req := func(entries ...journal.Entry) FlushRequest {
		return FlushRequest{Worker: "w1", Attempt: l.Attempt, Entries: entries}
	}
	good := entryFor(scenarios, 1, fault.Masked)
	if code := flush(t, srv.URL, 0, req(good)); code != http.StatusOK {
		t.Fatalf("good entry: HTTP %d", code)
	}
	if code := flush(t, srv.URL, 0, req(good)); code != http.StatusOK {
		t.Fatalf("identical duplicate: HTTP %d", code)
	}
	conflicting := good
	conflicting.Class = fault.SDC.String()
	if code := flush(t, srv.URL, 0, req(conflicting)); code != http.StatusConflict {
		t.Fatalf("conflicting duplicate: HTTP %d, want 409", code)
	}
	if code := flush(t, srv.URL, 0, req(journal.Entry{Index: 99, ID: "s99", Class: "masked"})); code != http.StatusBadRequest {
		t.Fatalf("out-of-range index: HTTP %d, want 400", code)
	}
	if code := flush(t, srv.URL, 0, req(journal.Entry{Index: 2, ID: "wrong", Class: "masked"})); code != http.StatusBadRequest {
		t.Fatalf("ID mismatch: HTTP %d, want 400", code)
	}
	if code := flush(t, srv.URL, 9, req()); code != http.StatusBadRequest {
		t.Fatalf("bad shard: HTTP %d, want 400", code)
	}
}

// TestCoordinatorRestartResume kills the coordinator (not the workers)
// mid-campaign: a new coordinator over the same data directory adopts
// the shard journals and the campaign finishes from where it stood,
// producing the sequential result.
func TestCoordinatorRestartResume(t *testing.T) {
	scenarios := testScenarios(9)
	run := testRun(map[int]fault.Classification{4: fault.SDC})
	dir := t.TempDir()
	clock := newFakeClock()

	c1, srv1 := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 3, DataDir: dir, Now: clock.Now,
	})
	// Complete shard 0 fully; flush half of shard 1; leave shard 2
	// untouched. Then "crash" the coordinator.
	l0 := lease(t, srv1.URL, "w1")
	for _, i := range []int{0, 3, 6} {
		if code := flush(t, srv1.URL, l0.Shard, FlushRequest{Worker: "w1", Attempt: l0.Attempt, Entries: []journal.Entry{entryFor(scenarios, i, fault.Masked)}}); code != http.StatusOK {
			t.Fatalf("flush %d: HTTP %d", i, code)
		}
	}
	if code := flush(t, srv1.URL, l0.Shard, FlushRequest{Worker: "w1", Attempt: l0.Attempt, Done: true}); code != http.StatusOK {
		t.Fatal("done flush failed")
	}
	l1 := lease(t, srv1.URL, "w1")
	if l1.Shard != 1 {
		t.Fatalf("second lease shard = %d", l1.Shard)
	}
	if code := flush(t, srv1.URL, 1, FlushRequest{Worker: "w1", Attempt: l1.Attempt, Entries: []journal.Entry{entryFor(scenarios, 4, fault.SDC)}}); code != http.StatusOK {
		t.Fatal("partial flush failed")
	}
	srv1.Close()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// The new coordinator sees shard 0 complete, shard 1 half-recorded.
	c2, srv2 := startCoord(t, CoordConfig{
		Scenarios: scenarios, Shards: 3, DataDir: dir, Now: clock.Now,
	})
	l := lease(t, srv2.URL, "w2")
	if l.Status != StatusGranted || l.Shard != 1 {
		t.Fatalf("post-restart lease = %+v", l)
	}
	if len(l.Entries) != 1 || l.Entries[0].Index != 4 {
		t.Fatalf("post-restart resume entries = %+v", l.Entries)
	}
	// Finish shards 1 and 2 and compare against the sequential run.
	for _, i := range []int{1, 7} {
		flush(t, srv2.URL, 1, FlushRequest{Worker: "w2", Attempt: l.Attempt, Entries: []journal.Entry{entryFor(scenarios, i, fault.Masked)}})
	}
	flush(t, srv2.URL, 1, FlushRequest{Worker: "w2", Attempt: l.Attempt, Done: true})
	l = lease(t, srv2.URL, "w2")
	if l.Shard != 2 {
		t.Fatalf("final lease = %+v", l)
	}
	for _, i := range []int{2, 5, 8} {
		flush(t, srv2.URL, 2, FlushRequest{Worker: "w2", Attempt: l.Attempt, Entries: []journal.Entry{entryFor(scenarios, i, fault.Masked)}})
	}
	flush(t, srv2.URL, 2, FlushRequest{Worker: "w2", Attempt: l.Attempt, Done: true})

	res, done, err := c2.Result()
	if err != nil || !done {
		t.Fatalf("Result: done=%v err=%v", done, err)
	}
	want, err := (&stressor.Campaign{Name: "fab", Run: run}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("merged result differs from sequential:\n%+v\n%+v", res, want)
	}
	if l := lease(t, srv2.URL, "w2"); l.Status != StatusDone {
		t.Fatalf("lease after completion = %+v", l)
	}
}

// TestStatusDoc sanity-checks the progress surface.
func TestStatusDoc(t *testing.T) {
	scenarios := testScenarios(6)
	clock := newFakeClock()
	_, srv := startCoord(t, CoordConfig{Scenarios: scenarios, Shards: 2, Now: clock.Now})
	l := lease(t, srv.URL, "w1")
	flush(t, srv.URL, l.Shard, FlushRequest{Worker: "w1", Attempt: l.Attempt, Entries: []journal.Entry{entryFor(scenarios, l.Shard, fault.Masked)}})
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 6 || doc.Completed != 1 || doc.Done || len(doc.Shards) != 2 {
		t.Fatalf("status = %+v", doc)
	}
	if doc.Shards[l.Shard].State != "leased" || doc.Shards[l.Shard].Worker != "w1" || doc.Shards[l.Shard].Owned != 3 {
		t.Fatalf("shard status = %+v", doc.Shards[l.Shard])
	}
	if len(doc.Workers) != 1 || doc.Workers[0] != "w1" {
		t.Fatalf("workers = %v", doc.Workers)
	}
	// /result is a 404 while running.
	if resp, _ := http.Get(srv.URL + "/result"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/result mid-campaign: HTTP %d", resp.StatusCode)
	}
}
