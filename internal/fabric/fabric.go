// Package fabric distributes a fault-injection campaign across
// machines: one coordinator partitions the scenario universe into
// shard leases and N workers execute them, streaming journal entries
// back over HTTP. The protocol is leases-over-journals:
//
//   - A worker POSTs /leases and receives one shard to run, together
//     with every entry already recorded for it — the lease IS a resume
//     journal, so whoever picks a shard up continues from its last
//     flushed entry, never from scratch.
//   - The worker runs the shard through the ordinary stressor.Campaign
//     engine and flushes completed entries to
//     POST /leases/{shard}/flush on a heartbeat cadence. Each flush
//     extends the lease deadline.
//   - A lease whose deadline passes (the worker died) returns to the
//     pool; a lease whose holder keeps heartbeating but records no new
//     entries for StealAfter (the worker is stuck or pathologically
//     slow) can be stolen by an idle worker. Stealing bumps the
//     attempt counter: flushes from the superseded holder are answered
//     409 and it halts.
//   - When every shard is done the coordinator merges the shard
//     journals with stressor.Merge into the Result the unsharded
//     sequential run would have produced, byte for byte.
//
// Work-stealing is determinism-safe because scenario outcomes are
// deterministic: a stale holder and the thief can only ever record
// identical entries for the same index, the coordinator dedups them by
// index, and stressor.Merge independently refuses conflicting
// duplicates — a nondeterministic prototype fails loudly instead of
// merging silently.
//
// Everything is stdlib HTTP/JSON. The coordinator keeps no background
// timers: lease expiry is swept inside request handlers against an
// injectable clock, which is what makes the chaos tests deterministic.
package fabric

import (
	"encoding/json"

	"repro/internal/journal"
)

// Lease statuses returned by POST /leases.
const (
	// StatusGranted carries a shard to run.
	StatusGranted = "granted"
	// StatusWait means every shard is currently leased and progressing;
	// poll again.
	StatusWait = "wait"
	// StatusDone means the campaign is complete; the worker can exit.
	StatusDone = "done"
)

// RegisterRequest is the body of POST /workers.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// LeaseRequest is the body of POST /leases.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is the response of POST /leases. With StatusGranted it fully
// describes one shard assignment: the campaign identity the worker
// must reproduce (and cross-check via the universe hash), the opaque
// spec its resolver materializes scenarios from, and the entries
// already recorded for the shard, which the worker replays as a resume
// journal.
type Lease struct {
	Status      string          `json:"status"`
	Campaign    string          `json:"campaign,omitempty"`
	Shard       int             `json:"shard"`
	Shards      int             `json:"shards,omitempty"`
	Attempt     int             `json:"attempt,omitempty"`
	Total       int             `json:"total,omitempty"`
	Universe    string          `json:"universe,omitempty"`
	Dedup       bool            `json:"dedup,omitempty"`
	StopOnFirst bool            `json:"stop_on_first,omitempty"`
	// TTLMillis tells the worker how often it must flush to keep the
	// lease (it flushes at a fraction of this).
	TTLMillis int64           `json:"ttl_ms,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Entries   []journal.Entry `json:"entries,omitempty"`
}

// FlushRequest is the body of POST /leases/{shard}/flush: a heartbeat
// carrying zero or more newly completed entries. Done marks the shard
// finished.
type FlushRequest struct {
	Worker  string          `json:"worker"`
	Attempt int             `json:"attempt"`
	Entries []journal.Entry `json:"entries,omitempty"`
	Done    bool            `json:"done,omitempty"`
}

// FlushResponse acknowledges a flush.
type FlushResponse struct {
	OK bool `json:"ok"`
	// Recorded is the shard's total recorded-entry count after this
	// flush (duplicates folded).
	Recorded int `json:"recorded"`
	// CampaignDone reports that this flush completed the whole campaign:
	// the worker can exit without polling for another lease (a -oneshot
	// coordinator may be gone by then).
	CampaignDone bool `json:"campaign_done,omitempty"`
}

// ShardStatus is one shard's row in GET /status.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"` // pending | leased | done
	Worker   string `json:"worker,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Recorded int    `json:"recorded"`
	Owned    int    `json:"owned"`
}

// StatusDoc is the response of GET /status.
type StatusDoc struct {
	Campaign  string        `json:"campaign"`
	Shards    []ShardStatus `json:"shards"`
	Completed int           `json:"completed"`
	Total     int           `json:"total"`
	Workers   []string      `json:"workers,omitempty"`
	Done      bool          `json:"done"`
	// MergeError reports a failed final merge (conflicting duplicate
	// entries, incomplete coverage) — the distributed analogue of a
	// campaign crash.
	MergeError string `json:"merge_error,omitempty"`
}

// Event is one NDJSON line of GET /events: incremental merged progress
// while shards execute, then a final line when the campaign merges.
type Event struct {
	Type       string `json:"type"` // progress | done | error
	Completed  int    `json:"completed"`
	Total      int    `json:"total"`
	ShardsDone int    `json:"shards_done"`
	Tally      string `json:"tally,omitempty"`
	Error      string `json:"error,omitempty"`
	Final      bool   `json:"final,omitempty"`
}

// errorDoc is the structured error body every non-2xx response carries.
type errorDoc struct {
	Error string `json:"error"`
}
