package can

import (
	"fmt"

	"repro/internal/sim"
)

// NodeState is the CAN fault-confinement state.
type NodeState uint8

const (
	// ErrorActive is the healthy state (TEC/REC <= 127).
	ErrorActive NodeState = iota
	// ErrorPassive throttles error signalling (TEC or REC > 127).
	ErrorPassive
	// BusOff removes the node from the bus (TEC > 255).
	BusOff
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("NodeState(%d)", uint8(s))
	}
}

// Node is one CAN controller attached to a bus.
type Node struct {
	name string
	bus  *Bus
	// OnReceive delivers accepted frames (all IDs; filtering is the
	// application's concern).
	OnReceive func(f Frame, at sim.Time)

	tec, rec int
	state    NodeState
	queue    []Frame

	sent, received, errorsSeen uint64
	// Babbling makes the node continuously transmit highest-priority
	// junk frames (the babbling-idiot fault).
	Babbling bool
}

// Name reports the node name.
func (n *Node) Name() string { return n.name }

// State reports the fault-confinement state.
func (n *Node) State() NodeState { return n.state }

// Counters reports the transmit and receive error counters.
func (n *Node) Counters() (tec, rec int) { return n.tec, n.rec }

// Stats reports frames sent, received and error frames observed.
func (n *Node) Stats() (sent, received, errors uint64) {
	return n.sent, n.received, n.errorsSeen
}

// Send queues a frame for transmission. Bus-off nodes drop it.
func (n *Node) Send(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if n.state == BusOff {
		return fmt.Errorf("can: node %s is bus-off", n.name)
	}
	n.queue = append(n.queue, f.clone())
	n.bus.kick()
	return nil
}

// Pending reports queued frames.
func (n *Node) Pending() int { return len(n.queue) }

// bumpTxError applies the transmit-error penalty (+8 per the spec)
// and updates the state machine.
func (n *Node) bumpTxError() {
	n.tec += 8
	n.updateState()
}

// bumpRxError applies the receive-error penalty (+1).
func (n *Node) bumpRxError() {
	n.rec++
	n.errorsSeen++
	n.updateState()
}

// decay rewards successful traffic (spec: -1 per success).
func (n *Node) decayTx() {
	if n.tec > 0 {
		n.tec--
	}
	n.updateState()
}

func (n *Node) decayRx() {
	if n.rec > 0 {
		n.rec--
	}
	n.updateState()
}

func (n *Node) updateState() {
	switch {
	case n.tec > 255:
		if n.state != BusOff {
			n.state = BusOff
			n.queue = nil
		}
	case n.tec > 127 || n.rec > 127:
		if n.state != BusOff {
			n.state = ErrorPassive
		}
	default:
		if n.state != BusOff {
			n.state = ErrorActive
		}
	}
}

// TxRecord is one completed bus transaction in the log.
type TxRecord struct {
	At        sim.Time
	Node      string
	Frame     Frame
	Corrupted bool
	Dropped   bool
}

// Bus is the shared medium.
type Bus struct {
	k    *sim.Kernel
	name string
	// BitTime is the duration of one bit (500 kbit/s default).
	BitTime sim.Time
	// MaxRetries bounds automatic retransmission per frame.
	MaxRetries int

	nodes []*Node
	busy  bool
	wake  *sim.Event
	log   []TxRecord

	// in-flight transmission, completed by the persistent txdone
	// process (one event + one method for the bus's lifetime, not one
	// pair per arbitration round — the CAN hot path must not grow the
	// kernel's process table per frame).
	txdone   *sim.Event
	txWinner *Node
	txFrame  Frame
	// cont is the contenders scratch buffer, reused per round.
	cont []*Node

	// elaboration names and bound methods, computed once in NewBus so
	// Rearm re-elaborates without re-deriving them (string concat and
	// method-value creation both allocate).
	wakeName, arbName, doneName, compName string
	arbFn, compFn                         func()

	// fault injection
	corruptNext  int // corrupt the next n frames in transit
	dropNext     int // silently drop the next n frames
	retriesLeft  map[*Node]int
	babbleFrame  Frame
	arbitrations uint64
}

// NewBus creates a bus on the kernel at 500 kbit/s.
func NewBus(k *sim.Kernel, name string) *Bus {
	b := &Bus{
		k:           k,
		name:        name,
		BitTime:     sim.US(2),
		MaxRetries:  8,
		retriesLeft: make(map[*Node]int),
		babbleFrame: Frame{ID: 0, Data: []byte{0}},
		wakeName:    name + ".wake",
		arbName:     name + ".arbitrate",
		doneName:    name + ".txdone",
		compName:    name + ".complete",
	}
	b.arbFn = b.arbitrate
	b.compFn = b.completePending
	b.elaborate(k)
	return b
}

// elaborate registers the bus's event and process quartet on the
// kernel, in the fixed order both NewBus and Rearm rely on.
func (b *Bus) elaborate(k *sim.Kernel) {
	b.wake = k.NewEvent(b.wakeName)
	k.MethodNoInit(b.arbName, b.arbFn, b.wake)
	b.txdone = k.NewEvent(b.doneName)
	k.MethodNoInit(b.compName, b.compFn, b.txdone)
}

// Rearm re-elaborates the bus onto a freshly Reset kernel and clears
// all traffic, error-counter and fault state, following the
// sim.Rearmable convention. The wake event and arbitration process are
// re-created first thing, so a prototype that calls Rearm at the same
// point Build called NewBus preserves the original process ordering.
func (b *Bus) Rearm(k *sim.Kernel) {
	b.k = k
	b.elaborate(k)
	b.txWinner = nil
	b.txFrame = Frame{}
	b.busy = false
	b.log = b.log[:0]
	b.corruptNext = 0
	b.dropNext = 0
	clear(b.retriesLeft)
	b.arbitrations = 0
	for _, n := range b.nodes {
		n.tec, n.rec = 0, 0
		n.state = ErrorActive
		n.queue = n.queue[:0]
		n.sent, n.received, n.errorsSeen = 0, 0, 0
		n.Babbling = false
	}
}

// Attach creates a node on the bus.
func (b *Bus) Attach(name string) *Node {
	n := &Node{name: name, bus: b}
	b.nodes = append(b.nodes, n)
	return n
}

// CorruptNextFrames makes the next n frames arrive with a flipped
// payload bit (detected by CRC at the receivers).
func (b *Bus) CorruptNextFrames(n int) { b.corruptNext += n }

// DropNextFrames makes the next n frames vanish in transit (the
// omission fault; receivers see nothing, the sender believes it sent).
func (b *Bus) DropNextFrames(n int) { b.dropNext += n }

// Log returns the completed transaction records.
func (b *Bus) Log() []TxRecord { return b.log }

// Arbitrations reports how many arbitration rounds were resolved.
func (b *Bus) Arbitrations() uint64 { return b.arbitrations }

// kick schedules an arbitration round.
func (b *Bus) kick() {
	if !b.busy {
		b.wake.Notify(0)
	}
}

// contenders lists nodes with traffic, including babbling ones. The
// returned slice is the bus's scratch buffer, valid until the next
// round.
func (b *Bus) contenders() []*Node {
	out := b.cont[:0]
	for _, n := range b.nodes {
		if n.state == BusOff {
			continue
		}
		if n.Babbling && len(n.queue) == 0 {
			n.queue = append(n.queue, b.babbleFrame.clone())
		}
		if len(n.queue) > 0 {
			out = append(out, n)
		}
	}
	b.cont = out
	return out
}

// arbitrate resolves one arbitration round and schedules the winning
// frame's completion.
func (b *Bus) arbitrate() {
	if b.busy {
		return
	}
	cont := b.contenders()
	if len(cont) == 0 {
		return
	}
	b.arbitrations++
	// Lowest ID wins; ties resolve by attachment order (real CAN
	// cannot have ID ties on a correct network). Stable insertion sort:
	// the slice holds a handful of nodes and, unlike sort.SliceStable,
	// this allocates nothing on the per-frame hot path.
	for i := 1; i < len(cont); i++ {
		n := cont[i]
		j := i - 1
		for j >= 0 && cont[j].queue[0].ID > n.queue[0].ID {
			cont[j+1] = cont[j]
			j--
		}
		cont[j+1] = n
	}
	winner := cont[0]
	frame := winner.queue[0]
	b.busy = true
	dur := sim.Time(frame.Bits()) * b.BitTime
	b.txWinner = winner
	b.txFrame = frame
	b.txdone.Notify(dur)
}

// completePending runs when the in-flight frame's transmission time
// elapses.
func (b *Bus) completePending() {
	w, f := b.txWinner, b.txFrame
	if w == nil {
		return
	}
	b.txWinner = nil
	b.txFrame = Frame{}
	b.complete(w, f)
}

// complete finishes a transmission: apply channel faults, deliver or
// signal errors, then re-arm arbitration.
func (b *Bus) complete(sender *Node, frame Frame) {
	b.busy = false
	now := b.k.Now()

	switch {
	case b.dropNext > 0:
		b.dropNext--
		// Omission: the frame is gone. The sender still dequeues (a
		// transceiver-level fault invisible to the controller).
		sender.queue = sender.queue[1:]
		sender.sent++
		b.log = append(b.log, TxRecord{At: now, Node: sender.name, Frame: frame, Dropped: true})
	case b.corruptNext > 0:
		b.corruptNext--
		corrupted := frame.clone()
		if len(corrupted.Data) > 0 {
			corrupted.Data[0] ^= 0x01
		} else {
			corrupted.ID ^= 0x1
		}
		// Receivers detect the CRC mismatch and signal an error frame:
		// the sender's TEC jumps, receivers' REC tick up, and the
		// frame is retransmitted unless the retry budget is exhausted.
		for _, n := range b.nodes {
			if n != sender && n.state != BusOff {
				n.bumpRxError()
			}
		}
		sender.bumpTxError()
		b.log = append(b.log, TxRecord{At: now, Node: sender.name, Frame: corrupted, Corrupted: true})
		if _, ok := b.retriesLeft[sender]; !ok {
			b.retriesLeft[sender] = b.MaxRetries
		}
		b.retriesLeft[sender]--
		if b.retriesLeft[sender] <= 0 || sender.state == BusOff {
			// Give up on this frame.
			if len(sender.queue) > 0 {
				sender.queue = sender.queue[1:]
			}
			delete(b.retriesLeft, sender)
		}
	default:
		// Clean delivery.
		sender.queue = sender.queue[1:]
		sender.sent++
		sender.decayTx()
		delete(b.retriesLeft, sender)
		for _, n := range b.nodes {
			if n == sender || n.state == BusOff {
				continue
			}
			n.received++
			n.decayRx()
			if n.OnReceive != nil {
				n.OnReceive(frame.clone(), now)
			}
		}
		b.log = append(b.log, TxRecord{At: now, Node: sender.name, Frame: frame})
	}
	b.kick()
}

// nodeState is one node's mutable state inside a BusState.
type nodeState struct {
	tec, rec int
	state    NodeState
	queue    []Frame
	sent     uint64
	received uint64
	errors   uint64
	babbling bool
}

// BusState is an opaque deep copy of the bus's mutable state — traffic
// queues, error counters, the in-flight transmission, the transaction
// log and the channel-fault budgets — captured by SnapshotState for
// golden-run checkpointing. Queued frames are copied by value; their
// payload slices are never mutated after Send clones them, so sharing
// the byte arrays between the capture and the live bus is safe.
type BusState struct {
	busy        bool
	txWinner    int // index into nodes, -1 when no frame is in flight
	txFrame     Frame
	log         []TxRecord
	corruptNext int
	dropNext    int
	retriesLeft map[int]int // by node index
	arbs        uint64
	nodes       []nodeState
}

// SnapshotState implements sim.Snapshottable. Pair it with the
// kernel's own Snapshot: the pending txdone/wake notifications live in
// the kernel checkpoint, this captures everything else.
func (b *Bus) SnapshotState() any {
	st := &BusState{
		busy:        b.busy,
		txWinner:    -1,
		txFrame:     b.txFrame,
		log:         append([]TxRecord(nil), b.log...),
		corruptNext: b.corruptNext,
		dropNext:    b.dropNext,
		retriesLeft: make(map[int]int, len(b.retriesLeft)),
		arbs:        b.arbitrations,
		nodes:       make([]nodeState, len(b.nodes)),
	}
	for i, n := range b.nodes {
		if n == b.txWinner {
			st.txWinner = i
		}
		if left, ok := b.retriesLeft[n]; ok {
			st.retriesLeft[i] = left
		}
		st.nodes[i] = nodeState{
			tec: n.tec, rec: n.rec, state: n.state,
			queue: append([]Frame(nil), n.queue...),
			sent:  n.sent, received: n.received, errors: n.errorsSeen,
			babbling: n.Babbling,
		}
	}
	return st
}

// SnapshotStateInto implements sim.StatePooler: SnapshotState reusing
// the buffers of a previous capture (log, queues, retry map), so
// checkpoint trees fork allocation-free in steady state.
func (b *Bus) SnapshotStateInto(prev any) any {
	st, _ := prev.(*BusState)
	if st == nil {
		return b.SnapshotState()
	}
	st.busy = b.busy
	st.txWinner = -1
	st.txFrame = b.txFrame
	st.log = append(st.log[:0], b.log...)
	st.corruptNext = b.corruptNext
	st.dropNext = b.dropNext
	clear(st.retriesLeft)
	st.arbs = b.arbitrations
	if cap(st.nodes) < len(b.nodes) {
		st.nodes = make([]nodeState, len(b.nodes))
	}
	st.nodes = st.nodes[:len(b.nodes)]
	for i, n := range b.nodes {
		if n == b.txWinner {
			st.txWinner = i
		}
		if left, ok := b.retriesLeft[n]; ok {
			st.retriesLeft[i] = left
		}
		ns := &st.nodes[i]
		ns.tec, ns.rec, ns.state = n.tec, n.rec, n.state
		ns.queue = append(ns.queue[:0], n.queue...)
		ns.sent, ns.received, ns.errors = n.sent, n.received, n.errorsSeen
		ns.babbling = n.Babbling
	}
	return st
}

// HashState implements sim.Hashable, folding the bus state that can
// influence future traffic or deliveries: the in-flight transmission,
// channel-fault budgets, retry budgets, and each node's error
// counters, confinement state, queue and babbling flag. The
// transaction log, arbitration count and per-node sent/received/error
// statistics are diagnostics nothing behavioral reads back — including
// them would keep transient bus faults from ever converging.
func (b *Bus) HashState(h *sim.StateHash) {
	h.Bool(b.busy)
	wi := -1
	for i, n := range b.nodes {
		if n == b.txWinner {
			wi = i
		}
	}
	h.Int(wi)
	hashFrame(h, b.txFrame)
	h.Int(b.corruptNext)
	h.Int(b.dropNext)
	for _, n := range b.nodes {
		left, ok := b.retriesLeft[n]
		h.Bool(ok)
		if ok {
			h.Int(left)
		}
		h.Int(n.tec)
		h.Int(n.rec)
		h.Byte(byte(n.state))
		h.Int(len(n.queue))
		for _, f := range n.queue {
			hashFrame(h, f)
		}
		h.Bool(n.Babbling)
	}
}

// hashFrame folds one frame.
func hashFrame(h *sim.StateHash, f Frame) {
	h.U32(uint32(f.ID))
	h.Bytes(f.Data)
}

// RestoreState implements sim.Snapshottable, writing a SnapshotState
// capture back into the live bus and nodes without aliasing it.
func (b *Bus) RestoreState(state any) {
	st := state.(*BusState)
	b.busy = st.busy
	b.txWinner = nil
	if st.txWinner >= 0 {
		b.txWinner = b.nodes[st.txWinner]
	}
	b.txFrame = st.txFrame
	b.log = append(b.log[:0], st.log...)
	b.corruptNext = st.corruptNext
	b.dropNext = st.dropNext
	clear(b.retriesLeft)
	for i, left := range st.retriesLeft {
		b.retriesLeft[b.nodes[i]] = left
	}
	b.arbitrations = st.arbs
	for i, n := range b.nodes {
		ns := st.nodes[i]
		n.tec, n.rec, n.state = ns.tec, ns.rec, ns.state
		n.queue = append(n.queue[:0], ns.queue...)
		n.sent, n.received, n.errorsSeen = ns.sent, ns.received, ns.errors
		n.Babbling = ns.babbling
	}
}
