// Package can models a CAN 2.0A network at message level with the
// protocol behaviours that matter for safety evaluation: identifier-
// based arbitration (lowest ID wins, losers retry), CRC-15 protection
// with error-frame signalling, transmit/receive error counters with
// the error-active → error-passive → bus-off fault-confinement state
// machine, automatic retransmission, and injectable channel faults
// (corruption, omission, babbling-idiot nodes).
//
// This is the "interconnection network" substrate of the paper's
// Sec. 3.4 system picture and carries the sensor→airbag traffic of
// the CAPS case study. Message-level granularity (one event per
// frame, not per bit) is the documented abstraction: it preserves
// arbitration order, bandwidth occupancy and error confinement while
// staying fast enough for campaigns.
package can

import "fmt"

// MaxData is the CAN 2.0A payload limit.
const MaxData = 8

// Frame is one CAN data frame.
type Frame struct {
	// ID is the 11-bit identifier; lower wins arbitration.
	ID uint16
	// Data is the payload (0..8 bytes).
	Data []byte
}

// Validate checks identifier and payload ranges.
func (f Frame) Validate() error {
	if f.ID > 0x7ff {
		return fmt.Errorf("can: ID %#x exceeds 11 bits", f.ID)
	}
	if len(f.Data) > MaxData {
		return fmt.Errorf("can: payload %d exceeds %d bytes", len(f.Data), MaxData)
	}
	return nil
}

// String renders the frame.
func (f Frame) String() string {
	return fmt.Sprintf("id=%#03x data=% x", f.ID, f.Data)
}

// CRC computes the CAN CRC-15 (polynomial 0x4599) over the frame's
// identifier, length and payload bits.
func (f Frame) CRC() uint16 {
	const poly = 0x4599
	crc := uint16(0)
	feed := func(bit uint16) {
		in := bit ^ crc>>14&1
		crc = crc << 1 & 0x7fff
		if in == 1 {
			crc ^= poly
		}
	}
	for i := 10; i >= 0; i-- {
		feed(f.ID >> uint(i) & 1)
	}
	dlc := uint16(len(f.Data))
	for i := 3; i >= 0; i-- {
		feed(dlc >> uint(i) & 1)
	}
	for _, b := range f.Data {
		for i := 7; i >= 0; i-- {
			feed(uint16(b) >> uint(i) & 1)
		}
	}
	return crc
}

// Bits approximates the frame's wire length in bits: SOF + arbitration
// (12) + control (6) + data + CRC (16) + ACK/EOF/IFS (13), plus the
// worst-case stuffing estimate of one stuff bit per five payload-
// carrying bits.
func (f Frame) Bits() int {
	base := 1 + 12 + 6 + 8*len(f.Data) + 16 + 13
	stuffable := 34 + 8*len(f.Data)
	return base + stuffable/5
}

// clone deep-copies the frame so in-flight corruption cannot alias the
// sender's buffer.
func (f Frame) clone() Frame {
	d := make([]byte, len(f.Data))
	copy(d, f.Data)
	return Frame{ID: f.ID, Data: d}
}
