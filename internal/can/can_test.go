package can

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFrameValidate(t *testing.T) {
	if err := (Frame{ID: 0x123, Data: []byte{1, 2, 3}}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Frame{ID: 0x800}).Validate(); err == nil {
		t.Error("12-bit ID accepted")
	}
	if err := (Frame{ID: 1, Data: make([]byte, 9)}).Validate(); err == nil {
		t.Error("9-byte payload accepted")
	}
}

func TestCRCProperties(t *testing.T) {
	f := Frame{ID: 0x123, Data: []byte{0xde, 0xad}}
	c1 := f.CRC()
	if c1 > 0x7fff {
		t.Errorf("CRC %#x exceeds 15 bits", c1)
	}
	// Any single payload bit flip changes the CRC.
	g := f.clone()
	g.Data[0] ^= 0x01
	if g.CRC() == c1 {
		t.Error("payload flip not reflected in CRC")
	}
	// ID flip too.
	h := f.clone()
	h.ID ^= 0x100
	if h.CRC() == c1 {
		t.Error("ID flip not reflected in CRC")
	}
}

func TestFrameBits(t *testing.T) {
	empty := Frame{ID: 1}
	full := Frame{ID: 1, Data: make([]byte, 8)}
	if empty.Bits() >= full.Bits() {
		t.Error("bits not monotone in payload")
	}
	if empty.Bits() < 44 || full.Bits() > 140 {
		t.Errorf("bits out of plausible range: %d, %d", empty.Bits(), full.Bits())
	}
}

func busFixture(t *testing.T) (*sim.Kernel, *Bus) {
	t.Helper()
	k := sim.NewKernel()
	return k, NewBus(k, "can0")
}

func TestCleanDelivery(t *testing.T) {
	k, b := busFixture(t)
	tx := b.Attach("sensor")
	rx := b.Attach("airbag")
	var got []Frame
	var at []sim.Time
	rx.OnReceive = func(f Frame, now sim.Time) {
		got = append(got, f)
		at = append(at, now)
	}
	if err := tx.Send(Frame{ID: 0x100, Data: []byte{42}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Data[0] != 42 {
		t.Fatalf("got = %v", got)
	}
	// Duration: frame bits * 2us.
	wantAt := sim.Time(Frame{ID: 0x100, Data: []byte{42}}.Bits()) * sim.US(2)
	if at[0] != wantAt {
		t.Errorf("delivered at %v, want %v", at[0], wantAt)
	}
	sent, _, _ := tx.Stats()
	_, received, _ := rx.Stats()
	if sent != 1 || received != 1 {
		t.Errorf("stats: sent %d, received %d", sent, received)
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	k, b := busFixture(t)
	hi := b.Attach("high-prio")
	lo := b.Attach("low-prio")
	mon := b.Attach("monitor")
	var order []uint16
	mon.OnReceive = func(f Frame, _ sim.Time) { order = append(order, f.ID) }
	// Queue in reverse priority order; both contend at time 0.
	if err := lo.Send(Frame{ID: 0x400, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := hi.Send(Frame{ID: 0x010, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0x010 || order[1] != 0x400 {
		t.Errorf("order = %v, want high priority first", order)
	}
}

func TestCorruptionTriggersRetransmit(t *testing.T) {
	k, b := busFixture(t)
	tx := b.Attach("tx")
	rx := b.Attach("rx")
	var got []Frame
	rx.OnReceive = func(f Frame, _ sim.Time) { got = append(got, f) }
	b.CorruptNextFrames(1)
	if err := tx.Send(Frame{ID: 0x50, Data: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	// First attempt corrupted (no delivery), retransmission clean.
	if len(got) != 1 || got[0].Data[0] != 7 {
		t.Fatalf("got = %v", got)
	}
	tec, _ := tx.Counters()
	// +8 for the error, -1 for the successful retransmit.
	if tec != 7 {
		t.Errorf("TEC = %d, want 7", tec)
	}
	_, rec := rx.Counters()
	if rec != 0 { // +1 then -1
		t.Errorf("REC = %d, want 0", rec)
	}
	// The log shows both attempts.
	log := b.Log()
	if len(log) != 2 || !log[0].Corrupted || log[1].Corrupted {
		t.Errorf("log = %+v", log)
	}
}

func TestOmissionFault(t *testing.T) {
	k, b := busFixture(t)
	tx := b.Attach("tx")
	rx := b.Attach("rx")
	delivered := 0
	rx.OnReceive = func(Frame, sim.Time) { delivered++ }
	b.DropNextFrames(1)
	if err := tx.Send(Frame{ID: 0x7, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(Frame{ID: 0x7, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (first dropped silently)", delivered)
	}
}

func TestBusOffAfterPersistentErrors(t *testing.T) {
	k, b := busFixture(t)
	b.MaxRetries = 1000 // keep retrying the same frame
	tx := b.Attach("tx")
	b.Attach("rx")
	b.CorruptNextFrames(40) // 40 * +8 = 320 > 255
	if err := tx.Send(Frame{ID: 0x1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if tx.State() != BusOff {
		tec, _ := tx.Counters()
		t.Errorf("state = %s (TEC %d), want bus-off", tx.State(), tec)
	}
	// Bus-off nodes refuse further traffic.
	if err := tx.Send(Frame{ID: 0x2}); err == nil {
		t.Error("bus-off node accepted a frame")
	}
}

func TestErrorPassiveTransition(t *testing.T) {
	k, b := busFixture(t)
	b.MaxRetries = 17 // 17 corruptions: TEC ~ 16*8 = 128 + ... > 127
	tx := b.Attach("tx")
	b.Attach("rx")
	b.CorruptNextFrames(17)
	if err := tx.Send(Frame{ID: 0x1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if tx.State() == ErrorActive {
		tec, _ := tx.Counters()
		t.Errorf("state = error-active (TEC %d) after 17 errors", tec)
	}
}

func TestBabblingIdiotStarvesBus(t *testing.T) {
	k, b := busFixture(t)
	babbler := b.Attach("babbler")
	victim := b.Attach("victim")
	mon := b.Attach("monitor")
	babbler.Babbling = true
	victimDelivered := 0
	mon.OnReceive = func(f Frame, _ sim.Time) {
		if f.ID == 0x300 {
			victimDelivered++
		}
	}
	if err := victim.Send(Frame{ID: 0x300, Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	b.kick()
	if err := k.Run(sim.MS(20)); err != nil {
		t.Fatal(err)
	}
	// The babbler's ID 0 always wins: the victim frame never goes out.
	if victimDelivered != 0 {
		t.Errorf("victim frame delivered %d times under babbling idiot", victimDelivered)
	}
	if b.Arbitrations() < 10 {
		t.Errorf("arbitrations = %d; babbler should dominate the bus", b.Arbitrations())
	}
	k.Shutdown()
}

func TestStateStrings(t *testing.T) {
	if ErrorActive.String() != "error-active" || BusOff.String() != "bus-off" || ErrorPassive.String() != "error-passive" {
		t.Error("state strings")
	}
}

// Property: CRC detects any single-bit payload corruption for random
// frames.
func TestPropertyCRCDetectsSingleBit(t *testing.T) {
	f := func(id uint16, data []byte, bitSel uint16) bool {
		if len(data) > 8 {
			data = data[:8]
		}
		if len(data) == 0 {
			return true
		}
		fr := Frame{ID: id & 0x7ff, Data: data}
		orig := fr.CRC()
		byteIdx := int(bitSel) % len(data)
		bit := uint(bitSel/8) % 8
		fr.Data[byteIdx] ^= 1 << bit
		return fr.CRC() != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a clean channel every queued frame is delivered to
// every other node exactly once, in ID order per arbitration round.
func TestPropertyCleanBusDeliversAll(t *testing.T) {
	f := func(ids []uint16) bool {
		if len(ids) == 0 || len(ids) > 20 {
			return true
		}
		seen := map[uint16]bool{}
		var unique []uint16
		for _, id := range ids {
			id &= 0x7ff
			if !seen[id] {
				seen[id] = true
				unique = append(unique, id)
			}
		}
		k := sim.NewKernel()
		b := NewBus(k, "can0")
		tx := b.Attach("tx")
		rx := b.Attach("rx")
		got := 0
		rx.OnReceive = func(Frame, sim.Time) { got++ }
		for _, id := range unique {
			if err := tx.Send(Frame{ID: id, Data: []byte{byte(id)}}); err != nil {
				return false
			}
		}
		if err := k.Run(sim.TimeMax); err != nil {
			return false
		}
		return got == len(unique)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBusThroughput(b *testing.B) {
	k := sim.NewKernel()
	bus := NewBus(k, "can0")
	tx := bus.Attach("tx")
	bus.Attach("rx")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(Frame{ID: uint16(i) & 0x7ff, Data: []byte{byte(i)}}); err != nil {
			b.Fatal(err)
		}
		if err := k.Run(sim.TimeMax); err != nil {
			b.Fatal(err)
		}
	}
}
