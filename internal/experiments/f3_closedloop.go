package experiments

import (
	"fmt"

	"repro/internal/caps"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "F3", Title: "Fig. 3: error-effect simulation closed loop (executable)", Run: runF3})
}

// runF3 executes the paper's Fig. 3 loop: the stressor injects error
// scenarios into the virtual prototype, the monitor classifies the
// outcome, the fault-space coverage model absorbs the result, and the
// remaining coverage holes drive the next scenarios — iterating until
// coverage closure. The loop's own progress is the experiment output.
func runF3() (*Result, error) {
	horizon := sim.MS(60)
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		return nil, err
	}
	universe := runner.Universe(sim.MS(10))

	// Declare the fault space from the universe.
	fs := coverage.NewFaultSpace(nil, nil)
	byCell := map[coverage.SiteModelKey]fault.Descriptor{}
	for _, d := range universe {
		fs.Declare(d.Target, d.Model.String())
		byCell[coverage.SiteModelKey{Site: d.Target, Model: d.Model.String()}] = d
	}

	t := &report.Table{
		Title:   "F3: coverage-closure loop over the CAPS fault space",
		Columns: []string{"iteration", "scenarios run", "coverage", "open holes", "worst site severity"},
	}

	const perIteration = 5
	iterations := 0
	totalRuns := 0
	loopDone := Phase("F3", "closure-loop")
	for fs.Coverage() < 1 {
		iterations++
		holes := fs.Holes()
		n := perIteration
		if n > len(holes) {
			n = len(holes)
		}
		for _, hole := range holes[:n] {
			d := byCell[hole]
			o := runner.RunScenario(fault.Single(d))
			fs.Record(d.Target, d.Model.String(), o.Class.Severity())
			totalRuns++
		}
		worst := 0
		if ws := fs.WorstBySite(); len(ws) > 0 {
			worst = ws[0].Severity
		}
		t.AddRow(iterations, totalRuns, fmt.Sprintf("%.0f%%", fs.Coverage()*100), len(fs.Holes()), worst)
		if iterations > 100 {
			return nil, fmt.Errorf("F3: loop did not converge")
		}
	}
	loopDone()

	ws := fs.WorstBySite()
	wt := &report.Table{
		Title:   "F3a: weak-spot ranking produced by the loop",
		Columns: []string{"site", "worst severity"},
	}
	for _, w := range ws {
		wt.AddRow(w.Site, w.Severity)
	}

	holds := fs.Coverage() == 1 && totalRuns == len(universe) && iterations > 1
	return &Result{
		ID:         "F3",
		Title:      "Fig. 3 as an executable closed loop",
		Claim:      "intelligent coverage models measure the completeness of the error effect simulation and steer injection toward coverage closure (Sec. 3.4, Fig. 3)",
		Tables:     []*report.Table{t, wt},
		ShapeHolds: holds,
		ShapeDetail: fmt.Sprintf(
			"loop reached 100%% fault-space coverage in %d iterations and %d runs (one per declared cell), emitting the weak-spot ranking",
			iterations, totalRuns),
	}, nil
}
