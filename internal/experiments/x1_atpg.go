package experiments

import (
	"fmt"

	"repro/internal/mdl"
	"repro/internal/mutation"
	"repro/internal/report"
	"repro/internal/symex"
)

func init() {
	register(Experiment{ID: "X1", Title: "Concolic test generation closes mutation-score gaps (extension)", Run: runX1})
}

// runX1 is an extension experiment beyond the paper's explicit claims:
// it connects two of the paper's research directions — mutation-based
// testbench qualification (Sec. 2.4, [20]: "Mutation testing results
// can be applied for automatic test pattern generation") and symbolic
// execution for stimulus generation (Sec. 3.4, [41, 42]) — by using
// concolic exploration to kill the mutants a weak suite leaves alive.
func runX1() (*Result, error) {
	models := []struct {
		name string
		src  string
		fn   string
		weak []mutation.Test
		seed []int64
	}{
		{
			name: "limiter", src: e3Model, fn: "limiter",
			weak: []mutation.Test{{Fn: "limiter", Args: []int64{200, 100, 10}}},
			seed: []int64{0, 0, 0},
		},
		{
			name: "magic-guard", fn: "check",
			src: `
func check(code, value) {
  if code == 4711 {
    if value > 250 {
      return 2
    }
    return 1
  }
  return 0
}`,
			weak: []mutation.Test{{Fn: "check", Args: []int64{0, 0}}},
			seed: []int64{0, 0},
		},
	}

	t := &report.Table{
		Title:   "X1: mutation score before/after concolic test generation",
		Columns: []string{"model", "mutants", "weak score", "generated tests", "final score", "survivors left"},
	}
	allImproved := true
	for _, m := range models {
		done := Phase("X1", "model:"+m.name)
		p, err := mdl.Parse(m.src)
		if err != nil {
			return nil, fmt.Errorf("X1 %s: %w", m.name, err)
		}
		before, err := mutation.Qualify(p, m.weak)
		if err != nil {
			return nil, fmt.Errorf("X1 %s: %w", m.name, err)
		}
		suite, after, err := symex.ExtendSuite(p, m.fn, m.weak, m.seed, 500)
		if err != nil {
			return nil, fmt.Errorf("X1 %s: %w", m.name, err)
		}
		if after.Score <= before.Score {
			allImproved = false
		}
		t.AddRow(m.name, before.Total,
			fmt.Sprintf("%.0f%%", before.Score*100),
			len(suite)-len(m.weak),
			fmt.Sprintf("%.0f%%", after.Score*100),
			len(after.Survivors()))
		done()
	}

	return &Result{
		ID:         "X1",
		Title:      "Concolic test generation closes mutation-score gaps",
		Claim:      "mutation results can drive automatic test generation [20]; symbolic execution generates the stimuli [41,42] (extension combining Sec. 2.4 and Sec. 3.4)",
		Tables:     []*report.Table{t},
		ShapeHolds: allImproved,
		ShapeDetail: fmt.Sprintf(
			"concolic ATPG improved the mutation score on all %d models without manual vectors",
			len(models)),
	}, nil
}
