package experiments

import (
	"fmt"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/stressor"
)

func init() {
	register(Experiment{ID: "E8", Title: "Exhaustive single-fault campaign and FMEDA on CAPS", Run: runE8})
}

// runE8 is the headline reproduction: the paper's one concrete safety
// requirement — "it must be absolutely guaranteed that the failure of
// any system component does not trigger the airbag in normal
// operation" (Sec. 1) — checked by exhaustive single-fault injection
// over the CAPS virtual prototype, with the safety mechanisms enabled
// and disabled, folded into an FMEDA whose diagnostic coverage comes
// from the campaign itself.
func runE8() (*Result, error) {
	horizon := sim.MS(80)

	runCampaign := func(cfg caps.Config, name string) (*stressor.Result, []fault.Descriptor, error) {
		done := Phase("E8", "campaign:"+name)
		defer done()
		runner, err := caps.NewRunner(cfg, caps.NormalDriving(), horizon)
		if err != nil {
			return nil, nil, err
		}
		universe := runner.Universe(sim.MS(10))
		var scenarios []fault.Scenario
		for _, d := range universe {
			scenarios = append(scenarios, fault.Single(d))
		}
		c := &stressor.Campaign{Name: name, Run: runner.RunFunc(), Workers: CampaignWorkers}
		if CampaignCheckpoints {
			c.Checkpoints = true
			c.Checkpointer = runner
		}
		instrumentCampaign(c)
		res, err := c.Execute(scenarios)
		return res, universe, err
	}

	prot, protU, err := runCampaign(caps.Protected(), "protected")
	if err != nil {
		return nil, err
	}
	unprot, unprotU, err := runCampaign(caps.Unprotected(), "unprotected")
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "E8: exhaustive single-fault campaign, normal driving (goal G1)",
		Columns: []string{"configuration", "faults", "no-effect", "masked", "latent", "detected-safe", "sdc", "safety-critical"},
	}
	addTally := func(name string, n int, tally fault.Tally) {
		t.AddRow(name, n, tally[fault.NoEffect], tally[fault.Masked], tally[fault.Latent],
			tally[fault.DetectedSafe], tally[fault.SDC], tally[fault.SafetyCritical])
	}
	addTally("protected", len(protU), prot.Tally)
	addTally("unprotected", len(unprotU), unprot.Tally)

	// FMEDA: one failure mode per descriptor, 100 FIT each; diagnostic
	// coverage measured from the campaign (detected-safe = covered,
	// masked/no-effect = safe by architecture, failures = uncovered).
	worksheet := func(res *stressor.Result) *safety.FMEDAResult {
		var modes []safety.FailureMode
		for _, o := range res.Outcomes {
			m := safety.FailureMode{
				Component: o.Scenario.Faults[0].Target,
				Mode:      o.Scenario.Faults[0].Model.String(),
				RateFIT:   100,
			}
			switch o.Class {
			case fault.NoEffect, fault.Masked:
				m.SafeFraction = 1
			case fault.DetectedSafe:
				m.DiagnosticCoverage = 1
				m.LatentCoverage = 1
			case fault.Latent:
				m.DiagnosticCoverage = 1
				m.LatentCoverage = 0
			default: // SDC, timing, safety-critical: dangerous undetected
			}
			modes = append(modes, m)
		}
		r, err := safety.EvaluateFMEDA(modes)
		if err != nil {
			panic(err) // modes are constructed in-range
		}
		return r
	}
	fmedaDone := Phase("E8", "fmeda")
	fProt := worksheet(prot)
	fUnprot := worksheet(unprot)
	fmedaDone()

	ft := &report.Table{
		Title:   "E8a: FMEDA metrics with campaign-measured diagnostic coverage",
		Note:    "uniform 100 FIT per failure mode; see DESIGN.md for the simplified metric definitions",
		Columns: []string{"configuration", "SPFM", "LFM", "PMHF (/h)", "ASIL"},
	}
	ft.AddRow("protected", fmt.Sprintf("%.1f%%", fProt.SPFM*100), fmt.Sprintf("%.1f%%", fProt.LFM*100),
		fmt.Sprintf("%.2g", fProt.PMHF), fProt.ASIL().String())
	ft.AddRow("unprotected", fmt.Sprintf("%.1f%%", fUnprot.SPFM*100), fmt.Sprintf("%.1f%%", fUnprot.LFM*100),
		fmt.Sprintf("%.2g", fUnprot.PMHF), fUnprot.ASIL().String())

	protClean := prot.Tally[fault.SafetyCritical] == 0
	unprotDirty := unprot.Tally[fault.SafetyCritical] > 0
	spfmBetter := fProt.SPFM > fUnprot.SPFM

	return &Result{
		ID:         "E8",
		Title:      "Exhaustive single-fault campaign and FMEDA on CAPS",
		Claim:      "it must be absolutely guaranteed that the failure of any system component does not trigger the airbag in normal operation (Sec. 1)",
		Tables:     []*report.Table{t, ft},
		ShapeHolds: protClean && unprotDirty && spfmBetter,
		ShapeDetail: fmt.Sprintf(
			"protected: %d/%d safety-critical outcomes; unprotected: %d; SPFM %.1f%% vs %.1f%%",
			prot.Tally[fault.SafetyCritical], len(protU), unprot.Tally[fault.SafetyCritical],
			fProt.SPFM*100, fUnprot.SPFM*100),
	}, nil
}
