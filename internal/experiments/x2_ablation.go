package experiments

import (
	"fmt"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stressor"
)

func init() {
	register(Experiment{ID: "X2", Title: "Safety-mechanism ablation on CAPS (extension)", Run: runX2})
}

// runX2 is the ablation study DESIGN.md §4 calls for: starting from
// the fully protected CAPS system, each safety mechanism is disabled
// one at a time and the exhaustive single-fault campaign re-runs.
// The delta in outcome tallies attributes protection to mechanisms —
// the "what-if analysis of the system when errors are present" that
// Sec. 3.4 names as the core VP capability.
func runX2() (*Result, error) {
	horizon := sim.MS(80)

	type variant struct {
		name   string
		mutate func(*caps.Config)
	}
	variants := []variant{
		{"full protection", func(*caps.Config) {}},
		{"- plausibility", func(c *caps.Config) { c.Plausibility = false }},
		{"- calib CRC", func(c *caps.Config) { c.CalibCRC = false }},
		{"- threshold redundancy", func(c *caps.Config) { c.ThresholdRedundant = false }},
		{"- frame watchdog", func(c *caps.Config) { c.FrameWatchdog = false }},
		{"- debounce (1 frame)", func(c *caps.Config) { c.Debounce = 1 }},
	}

	t := &report.Table{
		Title:   "X2: exhaustive single-fault campaign per ablated mechanism (normal driving)",
		Columns: []string{"configuration", "detected-safe", "latent", "sdc", "safety-critical"},
	}
	baseline := -1
	worstCritical := 0
	anyDegradation := false
	for i, v := range variants {
		done := Phase("X2", "campaign:"+v.name)
		cfg := caps.Protected()
		v.mutate(&cfg)
		runner, err := caps.NewRunner(cfg, caps.NormalDriving(), horizon)
		if err != nil {
			return nil, fmt.Errorf("X2 %s: %w", v.name, err)
		}
		var scenarios []fault.Scenario
		for _, d := range runner.Universe(sim.MS(10)) {
			scenarios = append(scenarios, fault.Single(d))
		}
		c := &stressor.Campaign{Name: v.name, Run: runner.RunFunc(), Workers: CampaignWorkers}
		if CampaignCheckpoints {
			c.Checkpoints = true
			c.Checkpointer = runner
		}
		instrumentCampaign(c)
		res, err := c.Execute(scenarios)
		done()
		if err != nil {
			return nil, fmt.Errorf("X2 %s: %w", v.name, err)
		}
		tally := res.Tally
		t.AddRow(v.name, tally[fault.DetectedSafe], tally[fault.Latent], tally[fault.SDC], tally[fault.SafetyCritical])
		crit := tally[fault.SafetyCritical]
		if i == 0 {
			baseline = crit
		} else {
			if crit > worstCritical {
				worstCritical = crit
			}
			// Any single-mechanism removal must degrade at least one
			// outcome class (more critical, more SDC or fewer detected).
			if crit > baseline || tally[fault.SDC] > 1 || tally[fault.DetectedSafe] < 12 {
				anyDegradation = true
			}
		}
	}

	holds := baseline == 0 && worstCritical > 0 && anyDegradation
	return &Result{
		ID:         "X2",
		Title:      "Safety-mechanism ablation on CAPS",
		Claim:      "VPs enable what-if analysis of the system when errors are present (Sec. 3.4) — here: which mechanism prevents which failure",
		Tables:     []*report.Table{t},
		ShapeHolds: holds,
		ShapeDetail: fmt.Sprintf(
			"full protection: %d critical outcomes; removing a single mechanism raises the worst case to %d — each mechanism is load-bearing",
			baseline, worstCritical),
	}, nil
}
