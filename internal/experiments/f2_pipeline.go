package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/missionprofile"
	"repro/internal/report"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "F2", Title: "Fig. 2: system validation with mission profiles (executable)", Run: runF2})
}

// runF2 executes the paper's Fig. 2 flow end to end: an OEM mission
// profile is formalized, refined down the supply chain (OEM → Tier-1
// → semiconductor), fault/error descriptions are derived per level,
// scheduled into stressor scenarios and actually injected into the
// CAPS prototype. Each stage's artifact becomes a table row, making
// the conceptual figure a runnable pipeline.
func runF2() (*Result, error) {
	// Stage 1: formalize the OEM profile.
	refineDone := Phase("F2", "formalize-refine")
	oem := missionprofile.VehicleUnderhood("vehicle-front")
	if err := oem.Validate(); err != nil {
		return nil, err
	}
	// Stage 2: refine to the Tier-1 sensor cluster and on to the
	// semiconductor component.
	tier1, err := oem.Refine("caps-sensor-cluster", []missionprofile.TransferRule{
		{Kind: missionprofile.Vibration, Factor: 1.5},
		{Kind: missionprofile.Temperature, Factor: 1, Offset: -15},
	})
	if err != nil {
		return nil, err
	}
	semi, err := tier1.Refine("airbag-asic", []missionprofile.TransferRule{
		{Kind: missionprofile.Temperature, Factor: 1, Offset: 10}, // self-heating
		{Kind: missionprofile.Vibration, Factor: 0.8},             // board damping
	})
	if err != nil {
		return nil, err
	}

	pt := &report.Table{
		Title:   "F2a: mission profile refinement down the supply chain",
		Columns: []string{"level", "component", "vibration max (g)", "temperature max (degC)"},
	}
	for _, p := range []*missionprofile.Profile{oem, tier1, semi} {
		v, _ := p.Stress(missionprofile.Vibration)
		tp, _ := p.Stress(missionprofile.Temperature)
		pt.AddRow(p.Level.String(), p.Component, v.Max, tp.Max)
	}

	refineDone()

	// Stage 3: derive fault descriptions at the Tier-1 level against
	// the prototype's injection sites.
	deriveDone := Phase("F2", "derive")
	horizon := sim.MS(60)
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		return nil, err
	}
	derived, err := missionprofile.Derive(tier1, missionprofile.DefaultRules(), runner.Sites())
	if err != nil {
		return nil, err
	}
	deriveDone()
	dt := &report.Table{
		Title:   "F2b: derived fault/error descriptions (formalized stressor input)",
		Columns: []string{"descriptor", "stress", "model", "class", "FIT"},
	}
	for _, d := range derived {
		dt.AddRow(d.Descriptor.Name, d.Rule.Stress.String(), d.Descriptor.Model.String(),
			d.Descriptor.Class.String(), d.Descriptor.Rate)
	}

	// Stage 4: schedule into operating states and run the stressor.
	injectDone := Phase("F2", "schedule-inject")
	scenarios := missionprofile.Schedule(tier1, derived, horizon-sim.MS(5), rand.New(rand.NewSource(3)))
	tally := make(fault.Tally)
	for _, sc := range scenarios {
		o := runner.RunScenario(sc)
		tally.Add(o)
	}
	injectDone()
	st := &report.Table{
		Title:   "F2c: stressor campaign outcome (protected CAPS)",
		Columns: []string{"scenarios", "outcome tally"},
	}
	st.AddRow(len(scenarios), tally.String())

	holds := len(derived) > 0 && len(scenarios) == len(derived) && tally.Total() == len(scenarios) &&
		tally[fault.SafetyCritical] == 0
	return &Result{
		ID:         "F2",
		Title:      "Fig. 2 as an executable pipeline",
		Claim:      "mission profiles flow from the OEM down to the semiconductor manufacturer and parameterize the error-effect stressors (Sec. 3.2, Fig. 2)",
		Tables:     []*report.Table{pt, dt, st},
		ShapeHolds: holds,
		ShapeDetail: fmt.Sprintf(
			"pipeline produced %d derived descriptions, scheduled and injected all of them; protected system survived with tally %s",
			len(derived), tally),
	}, nil
}
