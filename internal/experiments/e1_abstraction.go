package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/tlm"
)

func init() {
	register(Experiment{ID: "E1", Title: "Communication abstraction ladder speed-up", Run: runE1})
}

// E1Items is the workload size (transactions per level).
var E1Items = 2000

// e1Level runs the workload at one abstraction level and reports
// wall-clock and kernel statistics.
type e1Level struct {
	name     string
	wall     time.Duration
	deltas   uint64
	timeSpts uint64
}

// runE1 pushes the same read-modify-write workload through five
// modelling styles of the same CPU↔memory interaction: gate-level
// event simulation, cycle-accurate, approximately-timed (four-phase),
// loosely-timed, and loosely-timed with temporal decoupling.
//
// Paper anchor (Sec. 2.3): "the different communication abstraction
// levels allow significant speed-up for system-level models
// simulation, a crucial advantage on early safety assurance of large
// VPs."
func runE1() (*Result, error) {
	n := E1Items
	levels := []struct {
		name string
		run  func(n int) (sim.Stats, error)
	}{
		{"gate-level", e1Gate},
		{"cycle-accurate", e1CycleAccurate},
		{"approximately-timed", e1AT},
		{"loosely-timed", e1LT},
		{"LT+temporal-decoupling", e1LTTD},
	}
	var rows []e1Level
	for _, l := range levels {
		done := Phase("E1", l.name)
		start := time.Now()
		st, err := l.run(n)
		done()
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", l.name, err)
		}
		rows = append(rows, e1Level{name: l.name, wall: time.Since(start), deltas: st.DeltaCycles, timeSpts: st.TimeSteps})
	}

	t := &report.Table{
		Title:   "E1: same workload across abstraction levels",
		Note:    fmt.Sprintf("%d transactions per level; speedup relative to gate level", n),
		Columns: []string{"level", "wall", "ns/txn", "delta-cycles", "time-steps", "speedup"},
	}
	base := rows[0].wall
	monotone := true
	for i, r := range rows {
		speedup := float64(base) / float64(r.wall)
		t.AddRow(r.name, r.wall.Round(time.Microsecond), float64(r.wall.Nanoseconds())/float64(n), r.deltas, r.timeSpts, fmt.Sprintf("%.1fx", speedup))
		if i > 0 && r.deltas > rows[i-1].deltas {
			monotone = false
		}
	}
	ltSpeedup := float64(base) / float64(rows[3].wall)
	tdFaster := rows[4].wall <= rows[3].wall

	return &Result{
		ID:         "E1",
		Title:      "Communication abstraction ladder speed-up",
		Claim:      "different communication abstraction levels allow significant speed-up (Sec. 2.3)",
		Tables:     []*report.Table{t},
		ShapeHolds: monotone && ltSpeedup > 2 && tdFaster,
		ShapeDetail: fmt.Sprintf(
			"scheduling work monotone decreasing up the ladder: %v; LT %.1fx faster than gate level; decoupling faster than plain LT: %v",
			monotone, ltSpeedup, tdFaster),
	}, nil
}

// e1Gate computes each item on a gate-level ALU simulated as kernel
// processes (one method process per gate).
func e1Gate(n int) (sim.Stats, error) {
	alu := rtl.NewALU(8)
	k := sim.NewKernel()
	kc := rtl.BindKernel(k, alu.Circuit)
	var err error
	k.Thread("tb", func(ctx *sim.ThreadCtx) {
		for i := 0; i < n; i++ {
			kc.DriveBus(alu.A, uint64(i)&0xff)
			kc.DriveBus(alu.B, uint64(i>>3)&0xff)
			kc.DriveBus(alu.Op, uint64(i)%8)
			ctx.WaitTime(sim.NS(10))
			if _, ok := kc.ReadBus(alu.Y); !ok {
				err = fmt.Errorf("unknown output at item %d", i)
				return
			}
		}
	})
	if e := k.Run(sim.TimeMax); e != nil {
		return sim.Stats{}, e
	}
	k.Shutdown()
	return k.Stats(), err
}

// e1CycleAccurate models each transaction as its individual bus
// cycles: four kernel time steps per access.
func e1CycleAccurate(n int) (sim.Stats, error) {
	k := sim.NewKernel()
	mem := tlm.NewMemory("ram", 0, 4096)
	sock := tlm.NewInitiatorSocket("cpu")
	sock.Bind(mem)
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		for i := 0; i < n; i++ {
			// Address, data, access, response phases: one clock each.
			for c := 0; c < 4; c++ {
				ctx.WaitTime(sim.NS(10))
			}
			var d sim.Time
			sock.Write32(uint64(i*4%4096), uint32(i), &d)
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		return sim.Stats{}, err
	}
	k.Shutdown()
	return k.Stats(), nil
}

// e1AT uses the four-phase non-blocking protocol (a few kernel events
// per transaction).
func e1AT(n int) (sim.Stats, error) {
	k := sim.NewKernel()
	mem := tlm.NewMemory("ram", 0, 4096)
	mem.WriteLatency = sim.NS(30)
	req := tlm.NewATRequester(k, "cpu")
	at := tlm.NewATTarget(k, "ram.at", mem, req)
	req.Bind(at)
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		for i := 0; i < n; i++ {
			p := tlm.NewWrite(uint64(i*4%4096), []byte{byte(i), 0, 0, 0})
			req.Transact(ctx, p)
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		return sim.Stats{}, err
	}
	k.Shutdown()
	return k.Stats(), nil
}

// e1LT uses blocking transport with one kernel wait per transaction.
func e1LT(n int) (sim.Stats, error) {
	k := sim.NewKernel()
	mem := tlm.NewMemory("ram", 0, 4096)
	mem.WriteLatency = sim.NS(40)
	sock := tlm.NewInitiatorSocket("cpu")
	sock.Bind(mem)
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		for i := 0; i < n; i++ {
			var d sim.Time
			sock.Write32(uint64(i*4%4096), uint32(i), &d)
			ctx.WaitTime(d)
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		return sim.Stats{}, err
	}
	k.Shutdown()
	return k.Stats(), nil
}

// e1LTTD adds a quantum keeper: the thread yields to the kernel only
// once per 100 transactions.
func e1LTTD(n int) (sim.Stats, error) {
	k := sim.NewKernel()
	mem := tlm.NewMemory("ram", 0, 4096)
	mem.WriteLatency = sim.NS(40)
	sock := tlm.NewInitiatorSocket("cpu")
	sock.Bind(mem)
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, sim.NS(40)*100)
		for i := 0; i < n; i++ {
			var d sim.Time
			sock.Write32(uint64(i*4%4096), uint32(i), &d)
			qk.Inc(d)
			qk.SyncIfNeeded()
		}
		qk.Sync()
	})
	if err := k.Run(sim.TimeMax); err != nil {
		return sim.Stats{}, err
	}
	k.Shutdown()
	return k.Stats(), nil
}
