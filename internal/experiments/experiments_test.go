package experiments

import (
	"strings"
	"testing"
)

// The experiment suite is the reproduction: every registered
// experiment must run and its claimed shape must hold. One test per
// experiment keeps failures attributable.

func runAndCheck(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if !res.ShapeHolds {
		t.Errorf("%s shape violated: %s", id, res.ShapeDetail)
	}
	if len(res.Tables) == 0 || res.Claim == "" {
		t.Errorf("%s result incomplete", id)
	}
	out := res.Render()
	if !strings.Contains(out, id+":") || !strings.Contains(out, "Claim:") {
		t.Errorf("%s render incomplete:\n%s", id, out)
	}
	t.Logf("\n%s", out)
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "F2", "F3", "X1", "X2", "X3"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, ok := Get("E1"); !ok {
		t.Error("Get(E1) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
}

func TestE1AbstractionLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	old := E1Items
	E1Items = 500
	defer func() { E1Items = old }()
	runAndCheck(t, "E1")
}

func TestE2CrossLayer(t *testing.T)         { runAndCheck(t, "E2") }
func TestE3MutationVsCoverage(t *testing.T) { runAndCheck(t, "E3") }

func TestE4MonteCarloVsGuided(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	oldB, oldS := E4Budget, E4Seeds
	E4Budget, E4Seeds = 250, 3
	defer func() { E4Budget, E4Seeds = oldB, oldS }()
	runAndCheck(t, "E4")
}

func TestE5MissionProfile(t *testing.T) {
	oldR := E5Runs
	E5Runs = 40
	defer func() { E5Runs = oldR }()
	runAndCheck(t, "E5")
}

func TestE6QuantumSweep(t *testing.T) { runAndCheck(t, "E6") }

func TestE7SimFTA(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, "E7")
}

func TestE8SingleFaultCAPS(t *testing.T)        { runAndCheck(t, "E8") }
func TestE9MutationSchemata(t *testing.T)       { runAndCheck(t, "E9") }
func TestF2MissionProfilePipeline(t *testing.T) { runAndCheck(t, "F2") }
func TestF3ClosedLoop(t *testing.T)             { runAndCheck(t, "F3") }
func TestX1ConcolicATPG(t *testing.T)           { runAndCheck(t, "X1") }
func TestX2MechanismAblation(t *testing.T)      { runAndCheck(t, "X2") }
func TestX3FaultSimAcceleration(t *testing.T)   { runAndCheck(t, "X3") }
