package experiments

import (
	"fmt"
	"time"

	"repro/internal/mdl"
	"repro/internal/mutation"
	"repro/internal/report"
)

func init() {
	register(Experiment{ID: "E9", Title: "Mutation schemata vs rebuild-per-mutant", Run: runE9})
}

// E9Repeats stabilizes the wall-clock comparison.
var E9Repeats = 5

// runE9 measures the cost of qualifying the same testbench with
// mutation schemata (parse once, select the live mutant by flag)
// versus the naive flow that rebuilds — here, re-parses — the model
// for every mutant.
//
// Paper anchor (Sec. 2.4): "current research mainly addresses
// techniques to improve mutation-based testing efficiency ... such as
// mutation schema [21]".
func runE9() (*Result, error) {
	models := []struct {
		name string
		src  string
	}{
		{"limiter", e3Model},
		{"airbag-decision", `
func severity(accel, speed) {
  return accel * 2 + speed
}
func fire(accel, speed, armed) {
  let s = severity(accel, speed)
  if (s > 100) && (accel > 40) && (armed != 0) {
    return 1
  }
  return 0
}`},
		{"interpolator", `
func lerp(a, b, t) {
  return a + (b - a) * t / 100
}
func lookup(x) {
  if x < 10 {
    return lerp(0, 5, x * 10)
  }
  if x < 50 {
    return lerp(5, 40, (x - 10) * 100 / 40)
  }
  if x < 90 {
    return lerp(40, 95, (x - 50) * 100 / 40)
  }
  return 100
}`},
	}

	t := &report.Table{
		Title:   "E9: testbench qualification cost, schemata vs rebuild-per-mutant",
		Note:    fmt.Sprintf("minimum of %d repetitions; identical verdicts checked per run", E9Repeats),
		Columns: []string{"model", "mutants", "schemata", "rebuild", "speedup"},
	}

	allFaster := true
	var worstSpeedup float64 = 1e9
	for _, m := range models {
		done := Phase("E9", "model:"+m.name)
		p, err := mdl.Parse(m.src)
		if err != nil {
			return nil, fmt.Errorf("E9 %s: %w", m.name, err)
		}
		tests := e9Suite(m.name)
		// Minimum-of-N timing: the minimum is the noise-resistant
		// statistic for microsecond-scale measurements (scheduler and
		// GC interference only ever add time).
		schemata, rebuild := time.Duration(1<<62), time.Duration(1<<62)
		var total int
		for rep := 0; rep < E9Repeats; rep++ {
			s0 := time.Now()
			a, err := mutation.Qualify(p, tests)
			if err != nil {
				return nil, fmt.Errorf("E9 %s schemata: %w", m.name, err)
			}
			if d := time.Since(s0); d < schemata {
				schemata = d
			}
			s1 := time.Now()
			b, err := mutation.QualifyReparse(p, tests)
			if err != nil {
				return nil, fmt.Errorf("E9 %s rebuild: %w", m.name, err)
			}
			if d := time.Since(s1); d < rebuild {
				rebuild = d
			}
			if a.Killed != b.Killed || a.Total != b.Total {
				return nil, fmt.Errorf("E9 %s: schemata and rebuild verdicts differ", m.name)
			}
			total = a.Total
		}
		speedup := float64(rebuild) / float64(schemata)
		if speedup < worstSpeedup {
			worstSpeedup = speedup
		}
		if speedup <= 1 {
			allFaster = false
		}
		t.AddRow(m.name, total,
			schemata.Round(time.Microsecond),
			rebuild.Round(time.Microsecond),
			fmt.Sprintf("%.1fx", speedup))
		done()
	}

	return &Result{
		ID:         "E9",
		Title:      "Mutation schemata vs rebuild-per-mutant",
		Claim:      "mutation schema and related techniques improve mutation-based testing efficiency (Sec. 2.4, [21])",
		Tables:     []*report.Table{t},
		ShapeHolds: allFaster && worstSpeedup > 1.5,
		ShapeDetail: fmt.Sprintf(
			"schemata faster on every model (worst speedup %.1fx) with identical kill verdicts",
			worstSpeedup),
	}, nil
}

// e9Suite supplies a per-model test suite.
func e9Suite(model string) []mutation.Test {
	switch model {
	case "limiter":
		return []mutation.Test{
			{Fn: "limiter", Args: []int64{200, 100, 10}},
			{Fn: "limiter", Args: []int64{110, 100, 10}},
			{Fn: "limiter", Args: []int64{111, 100, 10}},
			{Fn: "clamp", Args: []int64{-1, 0, 100}},
			{Fn: "clamp", Args: []int64{101, 0, 100}},
		}
	case "airbag-decision":
		return []mutation.Test{
			{Fn: "fire", Args: []int64{60, 50, 1}},
			{Fn: "fire", Args: []int64{60, 50, 0}},
			{Fn: "fire", Args: []int64{41, 20, 1}},
			{Fn: "fire", Args: []int64{40, 120, 1}},
			{Fn: "fire", Args: []int64{10, 10, 1}},
		}
	default:
		return []mutation.Test{
			{Fn: "lookup", Args: []int64{5}},
			{Fn: "lookup", Args: []int64{9}},
			{Fn: "lookup", Args: []int64{10}},
			{Fn: "lookup", Args: []int64{30}},
			{Fn: "lookup", Args: []int64{49}},
			{Fn: "lookup", Args: []int64{70}},
			{Fn: "lookup", Args: []int64{95}},
		}
	}
}
