package experiments

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/safety"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E7", Title: "Fault-tree synthesis from error-effect simulation", Run: runE7})
}

// runE7 derives the fault tree of the unprotected CAPS system's G1
// hazard (inadvertent deployment) purely from simulation outcomes —
// single faults plus all pairs over the dangerous sites — and checks
// it against an analytic tree built from design knowledge.
//
// Paper anchor (Sec. 2.1, [8]): "an approach to implicitly support
// the FTA with an error effect simulation"; the framework must offer
// "methods for creating FTs from the simulation results".
func runE7() (*Result, error) {
	runner, err := caps.NewRunner(caps.Unprotected(), caps.NormalDriving(), sim.MS(60))
	if err != nil {
		return nil, err
	}
	universe := runner.Universe(sim.MS(5))

	// Campaign: all singles, then all unordered pairs (the system has
	// no triple-point protection left to defeat, so pairs complete the
	// cut-set search for this DUT).
	campaignDone := Phase("E7", "campaign")
	var outcomes []fault.Outcome
	for _, d := range universe {
		outcomes = append(outcomes, runner.RunScenario(fault.Single(d)))
	}
	for i := 0; i < len(universe); i++ {
		for j := i + 1; j < len(universe); j++ {
			a, b := universe[i], universe[j]
			if a.Target == b.Target {
				continue // same-site pairs add nothing over singles here
			}
			sc := fault.Scenario{ID: a.Name + "+" + b.Name, Faults: []fault.Descriptor{a, b}}
			outcomes = append(outcomes, runner.RunScenario(sc))
		}
	}
	campaignDone()

	// Event probabilities: uniform per-mission basic-event probability
	// (absolute rates are not the point; structure is).
	const p = 0.001
	probs := map[string]float64{}
	for _, d := range universe {
		probs[analysis.EventKey(d)] = p
	}
	isG1 := func(c fault.Classification) bool { return c == fault.SafetyCritical }
	synthDone := Phase("E7", "synthesize")
	synth := analysis.SynthesizeFaultTree("G1-inadvertent-deployment", outcomes, isG1, probs, p)
	synthDone()

	// Analytic tree from design knowledge of the unprotected system:
	// any single fault forcing the (only) sensor to the rail fires the
	// airbag, as does a firing threshold collapsed to zero.
	analytic := safety.Or("G1-analytic",
		safety.BasicEvent("caps.accel0.harness/stuck-at-1", p),
		safety.BasicEvent("caps.accel0.harness/short-to-supply", p),
		safety.BasicEvent("caps.airbag.threshold/stuck-at-0", p),
	)

	synthMCS := synth.MinimalCutSets()
	analyticMCS := analytic.MinimalCutSets()
	pSynth, err := synth.TopEventProbability()
	if err != nil {
		return nil, err
	}
	pAnalytic, err := analytic.TopEventProbability()
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "E7: simulation-synthesized vs analytic fault tree (G1, unprotected CAPS)",
		Columns: []string{"metric", "synthesized", "analytic"},
	}
	t.AddRow("minimal cut sets", len(synthMCS), len(analyticMCS))
	t.AddRow("top-event probability", fmt.Sprintf("%.6g", pSynth), fmt.Sprintf("%.6g", pAnalytic))

	mt := &report.Table{
		Title:   "E7a: synthesized minimal cut sets",
		Columns: []string{"#", "cut set", "order"},
	}
	for i, cs := range synthMCS {
		mt.AddRow(i+1, fmt.Sprint([]string(cs)), len(cs))
	}

	sameMCS := cutSetsEqual(synthMCS, analyticMCS)
	probsAgree := math.Abs(pSynth-pAnalytic) < 1e-12

	return &Result{
		ID:         "E7",
		Title:      "Fault-tree synthesis from error-effect simulation",
		Claim:      "error-effect simulation can implicitly support the FTA — fault trees fall out of simulation results (Sec. 2.1, [8])",
		Tables:     []*report.Table{t, mt},
		ShapeHolds: sameMCS && probsAgree,
		ShapeDetail: fmt.Sprintf(
			"synthesized tree has identical minimal cut sets to the analytic tree: %v; top-event probabilities agree: %v",
			sameMCS, probsAgree),
	}, nil
}

func cutSetsEqual(a, b []safety.CutSet) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(cs safety.CutSet) string {
		out := ""
		for _, e := range cs {
			out += e + "|"
		}
		return out
	}
	have := map[string]bool{}
	for _, cs := range a {
		have[key(cs)] = true
	}
	for _, cs := range b {
		if !have[key(cs)] {
			return false
		}
	}
	return true
}
