package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/rtl"
)

func init() {
	register(Experiment{ID: "X3", Title: "Bit-parallel fault-simulation acceleration (extension)", Run: runX3})
}

// runX3 quantifies the gate-level acceleration need of Sec. 2.2
// ("simulation at the gate and RTL is usually too slow, so that
// acceleration techniques are required") with the software member of
// the acceleration family: PPSFP bit-parallel stuck-at fault grading,
// compared against the serial four-state reference on the same fault
// list and pattern set. FPGA emulation — the paper's hardware option —
// is substituted by this engine per DESIGN.md.
func runX3() (*Result, error) {
	alu := rtl.NewALU(8)

	// 64 deterministic patterns, both encodings.
	parallel := map[rtl.Net]uint64{}
	var serial []map[rtl.Net]rtl.Logic
	for pi := 0; pi < 64; pi++ {
		a := uint64(pi*7+1) & 0xff
		b := uint64(pi*29+11) & 0xff
		op := uint64(pi) % 8
		pat := map[rtl.Net]rtl.Logic{}
		fill := func(bus []rtl.Net, v uint64) {
			for bit, n := range bus {
				on := v>>uint(bit)&1 == 1
				pat[n] = rtl.FromBool(on)
				if on {
					parallel[n] |= 1 << uint(pi)
				}
			}
		}
		fill(alu.A, a)
		fill(alu.B, b)
		fill(alu.Op, op)
		serial = append(serial, pat)
	}
	var nets []rtl.Net
	for n := 0; n < alu.Circuit.NumNets(); n += 3 {
		nets = append(nets, rtl.Net(n))
	}

	serialDone := Phase("X3", "serial")
	sStart := time.Now()
	sRes, err := rtl.SerialFaultGrade(alu.Circuit, nets, serial)
	serialDone()
	if err != nil {
		return nil, err
	}
	sWall := time.Since(sStart)

	pe, err := rtl.NewParallelEvaluator(alu.Circuit)
	if err != nil {
		return nil, err
	}
	parallelDone := Phase("X3", "bit-parallel")
	pStart := time.Now()
	pRes := pe.FaultGrade(nets, parallel)
	pWall := time.Since(pStart)
	parallelDone()

	t := &report.Table{
		Title:   "X3: stuck-at fault grading, serial four-state vs bit-parallel (PPSFP)",
		Note:    fmt.Sprintf("%d faults x 64 patterns on the 8-bit ALU (%d gates)", sRes.Faults, alu.Circuit.NumGates()),
		Columns: []string{"engine", "faults", "detected", "coverage", "gate evals", "wall"},
	}
	t.AddRow("serial four-state", sRes.Faults, sRes.Detected,
		fmt.Sprintf("%.1f%%", sRes.Coverage()*100), sRes.GateEvals, sWall.Round(time.Microsecond))
	t.AddRow("bit-parallel", pRes.Faults, pRes.Detected,
		fmt.Sprintf("%.1f%%", pRes.Coverage()*100), pRes.GateEvals, pWall.Round(time.Microsecond))

	same := sRes.Faults == pRes.Faults && sRes.Detected == pRes.Detected
	evalSpeedup := float64(sRes.GateEvals) / float64(pRes.GateEvals)
	holds := same && evalSpeedup > 5

	return &Result{
		ID:         "X3",
		Title:      "Bit-parallel fault-simulation acceleration",
		Claim:      "gate-level simulation is too slow for fault campaigns without acceleration techniques (Sec. 2.2)",
		Tables:     []*report.Table{t},
		ShapeHolds: holds,
		ShapeDetail: fmt.Sprintf(
			"identical detection verdicts (%v) at %.0fx fewer gate evaluations",
			same, evalSpeedup),
	}, nil
}
