package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/missionprofile"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E5", Title: "Mission-profile-derived stressors vs uniform random", Run: runE5})
}

// E5Runs is the campaign size per approach.
var E5Runs = 60

// runE5 compares two ways of choosing what to inject into the CAPS
// prototype: descriptors derived from the vehicle's mission profile
// (vibration → harness wiring faults, temperature → memory upsets,
// EMI → bus corruption, weighted into stressful operating states)
// versus uniform random sampling over the raw fault universe. The
// profile-driven campaign concentrates on environmentally plausible
// faults and exposes the mechanisms that handle them.
//
// Paper anchor (Sec. 3.2): "Mission Profiles are a promising approach
// for recognizing malfunction of a system or its components", and the
// derivation example: "Based on this vibration load, a probability of
// errors due to wiring, such as open load or short to ground, should
// be derived."
func runE5() (*Result, error) {
	horizon := sim.MS(60)
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		return nil, err
	}
	sites := runner.Sites()

	// Mission-profile pipeline (Fig. 2): OEM profile -> refine to the
	// sensor cluster -> derive fault descriptions -> schedule into
	// operating states.
	deriveDone := Phase("E5", "derive")
	oem := missionprofile.VehicleUnderhood("vehicle")
	tier1, err := oem.Refine("sensor-cluster", []missionprofile.TransferRule{
		{Kind: missionprofile.Vibration, Factor: 1.5}, // firewall mounting point
	})
	if err != nil {
		return nil, err
	}
	derived, err := missionprofile.Derive(tier1, missionprofile.DefaultRules(), sites)
	if err != nil {
		return nil, err
	}
	// Replicate derived faults to fill the campaign budget.
	var pool []missionprofile.Derived
	for len(pool) < E5Runs {
		pool = append(pool, derived...)
	}
	pool = pool[:E5Runs]
	mpScenarios := missionprofile.Schedule(tier1, pool, horizon-sim.MS(10), rand.New(rand.NewSource(11)))
	deriveDone()

	// Uniform baseline: random single faults over the raw universe.
	universe := runner.Universe(0)
	mc := scenario.NewMonteCarlo(universe, E5Runs, rand.New(rand.NewSource(11)))
	mc.Window = horizon - sim.MS(10)

	classifyAll := func(scs []fault.Scenario) (tally fault.Tally, harnessShare float64, detections map[string]int) {
		tally = make(fault.Tally)
		detections = map[string]int{}
		harness := 0
		for _, sc := range scs {
			o := runner.RunScenario(sc)
			tally.Add(o)
			for _, d := range sc.Faults {
				if strings.Contains(d.Target, "harness") {
					harness++
				}
			}
			if o.Class == fault.DetectedSafe && o.Detail != "" {
				detections[o.Detail]++
			}
		}
		return tally, float64(harness) / float64(len(scs)), detections
	}

	mpDone := Phase("E5", "profile-campaign")
	mpTally, mpHarness, mpDet := classifyAll(mpScenarios)
	mpDone()
	var mcScenarios []fault.Scenario
	for {
		sc, ok := mc.Next()
		if !ok {
			break
		}
		mcScenarios = append(mcScenarios, sc)
	}
	mcDone := Phase("E5", "uniform-campaign")
	mcTally, mcHarness, mcDet := classifyAll(mcScenarios)
	mcDone()

	t := &report.Table{
		Title:   "E5: mission-profile-derived vs uniform random campaigns (protected CAPS)",
		Note:    fmt.Sprintf("%d runs each; harness share = fraction of injections on wiring-harness sites", E5Runs),
		Columns: []string{"campaign", "runs", "harness share", "detected-safe", "masked", "sdc", "distinct mechanisms exercised"},
	}
	t.AddRow("mission-profile", len(mpScenarios), fmt.Sprintf("%.0f%%", mpHarness*100),
		mpTally[fault.DetectedSafe], mpTally[fault.Masked], mpTally[fault.SDC], len(mpDet))
	t.AddRow("uniform-random", len(mcScenarios), fmt.Sprintf("%.0f%%", mcHarness*100),
		mcTally[fault.DetectedSafe], mcTally[fault.Masked], mcTally[fault.SDC], len(mcDet))

	// Derivation audit table (the Fig. 2 artifact).
	dt := &report.Table{
		Title:   "E5a: fault descriptions derived from the Tier-1 mission profile",
		Columns: []string{"descriptor", "model", "class", "FIT"},
	}
	for _, d := range derived {
		dt.AddRow(d.Descriptor.Name, d.Descriptor.Model.String(), d.Descriptor.Class.String(), d.Descriptor.Rate)
	}

	holds := mpHarness > mcHarness && len(derived) > 0
	return &Result{
		ID:         "E5",
		Title:      "Mission-profile-derived stressors vs uniform random",
		Claim:      "mission profiles let stressors target the faults the environment actually provokes (Sec. 3.2, Fig. 2)",
		Tables:     []*report.Table{t, dt},
		ShapeHolds: holds,
		ShapeDetail: fmt.Sprintf(
			"profile campaign concentrates %.0f%% of injections on vibration-exposed harness sites vs %.0f%% for uniform sampling, from %d derived descriptors",
			mpHarness*100, mcHarness*100, len(derived)),
	}, nil
}
