package experiments

import (
	"fmt"

	"repro/internal/mdl"
	"repro/internal/mutation"
	"repro/internal/report"
)

func init() {
	register(Experiment{ID: "E3", Title: "Mutation score vs structural coverage", Run: runE3})
}

// e3Model is the DUT: a speed limiter with clamping — small enough to
// reach 100% statement coverage trivially, rich enough in boundaries
// that weak suites miss most mutants.
const e3Model = `
func clamp(x, lo, hi) {
  if x < lo {
    return lo
  }
  if x > hi {
    return hi
  }
  return x
}

func limiter(speed, limit, hysteresis) {
  let brake = 0
  if speed > limit + hysteresis {
    brake = speed - limit
  }
  return clamp(brake, 0, 100)
}
`

// runE3 qualifies three testbenches of increasing strength against the
// same model and reports statement coverage next to mutation score.
//
// Paper anchor (Sec. 2.4): "the mutation score ... provides an
// advanced metric to assess a testbench's quality compared with
// coverage based metrics."
func runE3() (*Result, error) {
	p, err := mdl.Parse(e3Model)
	if err != nil {
		return nil, err
	}

	suites := []struct {
		name  string
		tests []mutation.Test
	}{
		{"minimal (1 vector)", []mutation.Test{
			{Fn: "limiter", Args: []int64{200, 100, 10}},
		}},
		{"statement-covering", []mutation.Test{
			{Fn: "limiter", Args: []int64{250, 100, 10}}, // brake path + hi clamp
			{Fn: "limiter", Args: []int64{120, 100, 10}}, // brake path, mid clamp
			{Fn: "limiter", Args: []int64{50, 100, 10}},  // no-brake path
			{Fn: "clamp", Args: []int64{-5, 0, 100}},     // lo clamp
		}},
		{"boundary-strong", []mutation.Test{
			{Fn: "limiter", Args: []int64{200, 100, 10}},
			{Fn: "limiter", Args: []int64{50, 100, 10}},
			{Fn: "limiter", Args: []int64{110, 100, 10}}, // exactly limit+hyst
			{Fn: "limiter", Args: []int64{111, 100, 10}}, // just above
			{Fn: "limiter", Args: []int64{109, 100, 10}}, // just below
			{Fn: "limiter", Args: []int64{0, 100, 10}},
			{Fn: "limiter", Args: []int64{100, 0, 0}},
			{Fn: "clamp", Args: []int64{-5, 0, 100}},
			{Fn: "clamp", Args: []int64{-1, 0, 100}},
			{Fn: "clamp", Args: []int64{0, 0, 100}},
			{Fn: "clamp", Args: []int64{1, 0, 100}},
			{Fn: "clamp", Args: []int64{99, 0, 100}},
			{Fn: "clamp", Args: []int64{100, 0, 100}},
			{Fn: "clamp", Args: []int64{101, 0, 100}},
		}},
	}

	t := &report.Table{
		Title:   "E3: testbench quality — structural coverage vs mutation score",
		Columns: []string{"suite", "tests", "stmt coverage", "mutation score", "survivors"},
	}
	var covs, scores []float64
	for _, s := range suites {
		done := Phase("E3", "qualify:"+s.name)
		rep, err := mutation.Qualify(p, s.tests)
		done()
		if err != nil {
			return nil, fmt.Errorf("E3 %s: %w", s.name, err)
		}
		covs = append(covs, rep.StatementCoverage)
		scores = append(scores, rep.Score)
		t.AddRow(s.name, len(s.tests),
			fmt.Sprintf("%.0f%%", rep.StatementCoverage*100),
			fmt.Sprintf("%.0f%%", rep.Score*100),
			len(rep.Survivors()))
	}

	// Shape: coverage saturates between suite 2 and 3 (equal), while
	// the mutation score still discriminates (strictly increasing).
	covSaturates := covs[1] == covs[2] && covs[1] >= 0.99
	scoreDiscriminates := scores[0] < scores[1] && scores[1] < scores[2]

	return &Result{
		ID:         "E3",
		Title:      "Mutation score vs structural coverage",
		Claim:      "the mutation score provides an advanced metric to assess a testbench's quality compared with coverage based metrics (Sec. 2.4)",
		Tables:     []*report.Table{t},
		ShapeHolds: covSaturates && scoreDiscriminates,
		ShapeDetail: fmt.Sprintf(
			"statement coverage saturates at %.0f%% for both non-minimal suites while mutation score still rises %.0f%% -> %.0f%% -> %.0f%%",
			covs[1]*100, scores[0]*100, scores[1]*100, scores[2]*100),
	}, nil
}
