package experiments

import (
	"fmt"
	"time"

	"repro/internal/ecu"
	"repro/internal/report"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E6", Title: "Temporal decoupling quantum sweep", Run: runE6})
}

// runE6 sweeps the temporal-decoupling quantum of an ECU task set
// with an injected delay fault ("the right value at the wrong time").
// The true deadline misses are quantum-independent; what an external
// kernel-time monitor *observes* degrades as the quantum grows, while
// the kernel does less scheduling work.
//
// Paper anchor (Sec. 3.4): temporal decoupling is needed for speed,
// but "with the guarantee that the error effect is simulated
// correctly in terms of functionality and time" — a guarantee naive
// decoupling does not give.
func runE6() (*Result, error) {
	horizon := sim.MS(200)
	quanta := []sim.Time{0, sim.US(100), sim.US(500), sim.MS(1), sim.MS(5), sim.MS(20)}

	t := &report.Table{
		Title:   "E6: quantum sweep on a 3-task ECU workload with an injected delay fault",
		Note:    "true misses from decoupled-local time; observed misses are what a kernel-time monitor sees",
		Columns: []string{"quantum", "kernel time-steps", "wall", "true deadline misses", "observed misses", "detection"},
	}

	type row struct {
		quantum   sim.Time
		timeSteps uint64
		trueM     int
		obsM      int
	}
	var rows []row
	for _, q := range quanta {
		done := Phase("E6", fmt.Sprintf("quantum=%v", q))
		k := sim.NewKernel()
		s := ecu.NewScheduler(k, horizon)
		s.Quantum = q
		// Three periodic tasks; the control task carries a delay fault
		// that pushes it past its deadline.
		if err := s.Add(&ecu.Task{Name: "control", Period: sim.MS(2), Deadline: sim.US(900), WCET: sim.US(400), ExtraDelay: sim.US(600)}); err != nil {
			return nil, err
		}
		if err := s.Add(&ecu.Task{Name: "diagnosis", Period: sim.MS(5), WCET: sim.US(800)}); err != nil {
			return nil, err
		}
		if err := s.Add(&ecu.Task{Name: "comms", Period: sim.MS(1), WCET: sim.US(100)}); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := s.Run(); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		k.Shutdown()
		st := k.Stats()
		det := "100%"
		if s.Misses() > 0 {
			det = fmt.Sprintf("%.0f%%", 100*float64(s.ObservedMisses())/float64(s.Misses()))
		}
		t.AddRow(q, st.TimeSteps, wall.Round(time.Microsecond), s.Misses(), s.ObservedMisses(), det)
		rows = append(rows, row{quantum: q, timeSteps: st.TimeSteps, trueM: s.Misses(), obsM: s.ObservedMisses()})
		done()
	}

	// Shape checks: (1) true misses constant, (2) kernel work shrinks
	// with quantum, (3) observation degrades at large quanta while
	// exact at quantum 0.
	trueConstant := true
	for _, r := range rows {
		if r.trueM != rows[0].trueM {
			trueConstant = false
		}
	}
	workShrinks := rows[len(rows)-1].timeSteps < rows[0].timeSteps
	exactAtZero := rows[0].obsM == rows[0].trueM && rows[0].trueM > 0
	degrades := rows[len(rows)-1].obsM < rows[len(rows)-1].trueM

	return &Result{
		ID:         "E6",
		Title:      "Temporal decoupling quantum sweep",
		Claim:      "temporal decoupling buys simulation speed but must keep the error effect correct in time — naive decoupling loses timing-error observability (Sec. 3.4)",
		Tables:     []*report.Table{t},
		ShapeHolds: trueConstant && workShrinks && exactAtZero && degrades,
		ShapeDetail: fmt.Sprintf(
			"true misses constant (%d); kernel time-steps %d -> %d across sweep; observation exact at quantum 0 and degraded to %d/%d at the largest quantum",
			rows[0].trueM, rows[0].timeSteps, rows[len(rows)-1].timeSteps, rows[len(rows)-1].obsM, rows[len(rows)-1].trueM),
	}, nil
}
