package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestPhaseAttribution: with sinks attached, an experiment records its
// phases into exp.phase_ns, emits experiment-category trace spans and
// gets a wall-clock attribution table appended to its result.
func TestPhaseAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTraceRecorder()
	Instrument(reg, tr)
	defer Instrument(nil, nil)

	res := runAndCheck(t, "E6")

	last := res.Tables[len(res.Tables)-1]
	if !strings.Contains(last.Title, "attribution") {
		t.Errorf("last table is %q, want the attribution table", last.Title)
	}
	if len(last.Rows) < 2 {
		t.Errorf("attribution table has %d rows, want per-quantum phases + total", len(last.Rows))
	}

	phases := map[string]bool{}
	for _, m := range reg.Snapshot() {
		if m.Name == "exp.phase_ns" && m.Label("exp") == "E6" {
			phases[m.Label("phase")] = true
			if m.Count == 0 {
				t.Errorf("phase %q recorded no observation", m.Label("phase"))
			}
		}
	}
	if !phases["total"] || !phases["quantum=0 s"] {
		t.Errorf("phases recorded = %v, want at least total and quantum=0 s", phases)
	}
	if tr.Len() == 0 {
		t.Error("trace recorder captured no spans")
	}
}

// TestAttributionTableUninstrumented: without sinks the harness stays
// on the zero-cost path — no table, no metrics.
func TestAttributionTableUninstrumented(t *testing.T) {
	if Metrics != nil || Trace != nil {
		t.Fatal("harness unexpectedly instrumented")
	}
	if tb := AttributionTable("E6"); tb != nil {
		t.Errorf("AttributionTable = %+v, want nil when uninstrumented", tb)
	}
	res := runAndCheck(t, "X3")
	for _, tb := range res.Tables {
		if strings.Contains(tb.Title, "attribution") {
			t.Errorf("uninstrumented run produced attribution table %q", tb.Title)
		}
	}
}
