package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/rtl"
)

func init() {
	register(Experiment{ID: "E2", Title: "Cross-layer injection divergence (gate vs TLM)", Run: runE2})
}

// E2Vectors is the stimulus count per fault.
var E2Vectors = 64

// runE2 injects matched stuck-at faults into the same ALU at two
// abstraction levels and compares outcome classifications.
//
// Gate level: the fault goes on the actual internal net. Behavioural
// (TLM) level: the model has no internal nets, so the injection is
// approximated at architectural granularity — the fault is mapped to
// the primary output bit that the faulty net feeds (the standard
// cone-of-influence approximation high-level fault models use).
//
// Paper anchor (Sec. 3.4, citing [40]): "error injection at high
// level of abstraction may result in different results than injecting
// errors at the gate level".
func runE2() (*Result, error) {
	alu := rtl.NewALU(8)
	ev, err := rtl.NewEvaluator(alu.Circuit)
	if err != nil {
		return nil, err
	}
	cone := outputCones(alu)

	// Stimuli: a deterministic mix of vectors.
	type vec struct{ a, b, op uint64 }
	var vecs []vec
	for i := 0; i < E2Vectors; i++ {
		vecs = append(vecs, vec{
			a:  uint64(i*37+11) & 0xff,
			b:  uint64(i*91+3) & 0xff,
			op: uint64(i) % 8,
		})
	}
	goldenDone := Phase("E2", "golden")
	golden := make([]uint64, len(vecs))
	for i, v := range vecs {
		ev.SetBus(alu.A, v.a)
		ev.SetBus(alu.B, v.b)
		ev.SetBus(alu.Op, v.op)
		ev.Eval()
		y, _ := ev.BusValue(alu.Y)
		golden[i] = y
	}
	goldenDone()

	// Fault list: stuck-at-0 and stuck-at-1 on every 7th internal net
	// (sampling keeps the experiment fast while covering the cone mix).
	type faultRec struct {
		net  rtl.Net
		sa1  bool
		gate string // classification at gate level
		high string // classification at behavioural level
	}
	var faults []faultRec
	for n := 0; n < alu.Circuit.NumNets(); n += 7 {
		faults = append(faults, faultRec{net: rtl.Net(n), sa1: false})
		faults = append(faults, faultRec{net: rtl.Net(n), sa1: true})
	}

	classify := func(observedDiff bool) string {
		if observedDiff {
			return "observed"
		}
		return "masked"
	}

	classifyDone := Phase("E2", "inject-classify")
	for fi := range faults {
		f := &faults[fi]
		kind := rtl.FaultStuckAt0
		if f.sa1 {
			kind = rtl.FaultStuckAt1
		}
		// Gate level: exact net injection.
		gateDiff := false
		ev.ClearFaults()
		ev.InjectFault(f.net, kind)
		for i, v := range vecs {
			ev.SetBus(alu.A, v.a)
			ev.SetBus(alu.B, v.b)
			ev.SetBus(alu.Op, v.op)
			ev.Eval()
			y, ok := ev.BusValue(alu.Y)
			if !ok || y != golden[i] {
				gateDiff = true
				break
			}
		}
		ev.ClearFaults()
		f.gate = classify(gateDiff)

		// Behavioural level: stuck bit on the output the net feeds.
		bits := cone[f.net]
		highDiff := false
		for i, v := range vecs {
			y, _, _ := rtl.ALUGolden(rtl.ALUOp(v.op), v.a, v.b, 8)
			for _, bit := range bits {
				if f.sa1 {
					y |= 1 << uint(bit)
				} else {
					y &^= 1 << uint(bit)
				}
			}
			if y != golden[i] {
				highDiff = true
				break
			}
		}
		f.high = classify(highDiff)
	}
	classifyDone()

	agree, gateMaskedOnly, highMaskedOnly := 0, 0, 0
	for _, f := range faults {
		switch {
		case f.gate == f.high:
			agree++
		case f.gate == "masked":
			gateMaskedOnly++
		default:
			highMaskedOnly++
		}
	}
	total := len(faults)
	divergence := float64(total-agree) / float64(total)

	t := &report.Table{
		Title:   "E2: matched stuck-at faults, gate level vs behavioural level",
		Note:    fmt.Sprintf("%d faults x %d vectors; 'observed' = output differs from golden", total, len(vecs)),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("faults injected", total)
	t.AddRow("classifications agree", agree)
	t.AddRow("gate masked, high-level observed", gateMaskedOnly)
	t.AddRow("gate observed, high-level masked", highMaskedOnly)
	t.AddRow("divergence", fmt.Sprintf("%.1f%%", divergence*100))

	return &Result{
		ID:         "E2",
		Title:      "Cross-layer injection divergence",
		Claim:      "error injection at high level of abstraction may result in different results than injecting at gate level (Sec. 3.4, [40])",
		Tables:     []*report.Table{t},
		ShapeHolds: divergence > 0 && gateMaskedOnly > 0,
		ShapeDetail: fmt.Sprintf(
			"divergence %.1f%% > 0; %d faults masked by downstream gate logic that the high-level approximation reports as failures (the over-estimation [40] describes)",
			divergence*100, gateMaskedOnly),
	}, nil
}

// outputCones maps every net to the primary output bit indices its
// value can reach (forward reachability over the netlist).
func outputCones(alu *rtl.ALU) map[rtl.Net][]int {
	c := alu.Circuit
	// consumers: net -> gates reading it.
	consumers := map[rtl.Net][]int{}
	for gi, g := range c.Gates() {
		for _, in := range g.In {
			consumers[in] = append(consumers[in], gi)
		}
	}
	outBit := map[rtl.Net]int{}
	for i, n := range alu.Y {
		outBit[n] = i
	}
	cone := make(map[rtl.Net][]int, c.NumNets())
	for n := 0; n < c.NumNets(); n++ {
		start := rtl.Net(n)
		seen := map[rtl.Net]bool{start: true}
		stack := []rtl.Net{start}
		bits := map[int]bool{}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if b, ok := outBit[cur]; ok {
				bits[b] = true
			}
			for _, gi := range consumers[cur] {
				out := c.Gates()[gi].Out
				if !seen[out] {
					seen[out] = true
					stack = append(stack, out)
				}
			}
		}
		var list []int
		for b := range bits {
			list = append(list, b)
		}
		if len(list) > 1 {
			// Architectural fault models are single-location: keep the
			// lowest-numbered bit (deterministic choice).
			min := list[0]
			for _, b := range list {
				if b < min {
					min = b
				}
			}
			list = []int{min}
		}
		cone[start] = list
	}
	return cone
}
