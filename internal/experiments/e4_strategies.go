package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "E4", Title: "Monte Carlo vs weak-spot-guided injection", Run: runE4})
}

// E4Budget is the per-strategy run budget; E4Seeds the Monte-Carlo
// seed count.
var (
	E4Budget = 300
	E4Seeds  = 5
)

// runE4 searches for the safety-critical error effect of the fully
// protected CAPS system. Every single fault is handled by a
// mechanism; only specific dual-point faults (e.g. a common-cause
// short-to-supply on both redundant sensors) defeat the plausibility
// check and fire the airbag. Monte Carlo samples random fault pairs;
// the guided strategy sweeps singles to rank weak spots, then
// concentrates pair scenarios on them.
//
// Paper anchor (Sec. 3.4): "Standard Monte-Carlo techniques may fail
// to identify the critical error effects leading to system failure
// because failure probabilities are extremely low. ... a systematic
// approach is required that stresses the system at its possible weak
// spots."
func runE4() (*Result, error) {
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), sim.MS(60))
	if err != nil {
		return nil, err
	}
	universe := runner.Universe(sim.MS(5))
	run := runner.RunFunc()

	// Monte Carlo samples the *full* fault space, which includes the
	// occurrence-time dimension: faults are transient windows placed
	// uniformly over the mission. The critical effect needs both
	// sensor faults active simultaneously for two fusion cycles, so a
	// random placement rarely aligns — exactly the rare-event
	// blindness the paper describes. The guided strategy is the
	// systematic counterpart: it fixes worst-case (permanent-from-
	// start) activation and concentrates on weak-spot pairs.
	mcUniverse := make([]fault.Descriptor, len(universe))
	for i, d := range universe {
		d.Class = fault.Transient
		d.Duration = sim.MS(5)
		mcUniverse[i] = d
	}

	t := &report.Table{
		Title:   "E4: runs to first safety-critical failure (protected CAPS, dual-point fault space)",
		Note:    fmt.Sprintf("budget %d runs per strategy; universe %d single faults", E4Budget, len(universe)),
		Columns: []string{"strategy", "seed", "runs-to-first-critical", "criticals-found", "runs-used"},
	}

	// Monte Carlo, several seeds.
	mcDone := Phase("E4", "monte-carlo")
	mcFirst := make([]int, 0, E4Seeds)
	for seed := int64(1); seed <= int64(E4Seeds); seed++ {
		mc := scenario.NewMonteCarlo(mcUniverse, E4Budget, rand.New(rand.NewSource(seed)))
		mc.MultiFault = 2
		mc.Window = sim.MS(40)
		outcomes := scenario.Drive(mc, run)
		first := firstCritical(outcomes)
		fails := countCritical(outcomes)
		firstStr := "never"
		if first > 0 {
			firstStr = fmt.Sprint(first)
		}
		t.AddRow("monte-carlo", seed, firstStr, fails, len(outcomes))
		if first == 0 {
			first = E4Budget + 1 // censored
		}
		mcFirst = append(mcFirst, first)
	}
	mcDone()

	// Guided.
	guidedDone := Phase("E4", "weak-spot-guided")
	g := scenario.NewGuided(universe, E4Budget)
	outcomes := scenario.Drive(g, run)
	guidedDone()
	gFirst := firstCritical(outcomes)
	gFails := countCritical(outcomes)
	gFirstStr := "never"
	if gFirst > 0 {
		gFirstStr = fmt.Sprint(gFirst)
	}
	t.AddRow("weak-spot-guided", "-", gFirstStr, gFails, len(outcomes))

	// Shape: guided finds a critical failure; its first-failure index
	// beats the Monte-Carlo median.
	median := medianInt(mcFirst)
	holds := gFirst > 0 && gFirst < median

	return &Result{
		ID:         "E4",
		Title:      "Monte Carlo vs weak-spot-guided injection",
		Claim:      "standard Monte-Carlo may fail to identify critical error effects; a systematic approach must stress the system at its weak spots (Sec. 3.4)",
		Tables:     []*report.Table{t},
		ShapeHolds: holds,
		ShapeDetail: fmt.Sprintf(
			"guided finds the critical dual-point failure after %s runs vs Monte-Carlo median %d (budget %d, censored counted as budget+1)",
			gFirstStr, median, E4Budget),
	}, nil
}

// firstCritical is the 1-based index of the first safety-goal
// violation (SDC and timing failures are easier to hit and are not
// what this search is about), or 0 when none occurred.
func firstCritical(outcomes []fault.Outcome) int {
	for i, o := range outcomes {
		if o.Class == fault.SafetyCritical {
			return i + 1
		}
	}
	return 0
}

func countCritical(outcomes []fault.Outcome) int {
	n := 0
	for _, o := range outcomes {
		if o.Class == fault.SafetyCritical {
			n++
		}
	}
	return n
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
