// Package experiments implements the reproduction harness: one
// runnable experiment per quantitative claim of the paper (E1..E9)
// plus executable renditions of its two methodology figures (F2, F3).
// DESIGN.md §3 maps each experiment to its paper anchor; EXPERIMENTS.md
// records paper-vs-measured. Every experiment returns text tables and
// a Check result verifying the claim's *shape* (who wins, what
// saturates, what degrades), not absolute numbers.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/report"
	"repro/internal/stressor"
)

// CampaignWorkers sizes the worker pool of the campaign-heavy
// experiments (E8, X2): 0 forces sequential execution, N > 0 a pool
// of N, and the stressor.WorkersAuto default one worker per CPU.
// Campaign results are deterministic for every setting, so this knob
// only trades wall-clock time.
var CampaignWorkers = stressor.WorkersAuto

// Result is one experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Claim  string // the paper sentence being reproduced
	Tables []*report.Table
	// ShapeHolds reports whether the claimed qualitative shape was
	// observed; ShapeDetail explains.
	ShapeHolds  bool
	ShapeDetail string
}

// Render prints the full result.
func (r *Result) Render() string {
	out := fmt.Sprintf("### %s: %s\nClaim: %s\n\n", r.ID, r.Title, r.Claim)
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	status := "HOLDS"
	if !r.ShapeHolds {
		status = "VIOLATED"
	}
	out += fmt.Sprintf("Shape %s: %s\n", status, r.ShapeDetail)
	return out
}

// Experiment is a registered runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Get looks up an experiment by ID (e.g. "E1", "F3").
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All lists experiments in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
