// Package experiments implements the reproduction harness: one
// runnable experiment per quantitative claim of the paper (E1..E9)
// plus executable renditions of its two methodology figures (F2, F3).
// DESIGN.md §3 maps each experiment to its paper anchor; EXPERIMENTS.md
// records paper-vs-measured. Every experiment returns text tables and
// a Check result verifying the claim's *shape* (who wins, what
// saturates, what degrades), not absolute numbers.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/stressor"
)

// CampaignWorkers sizes the worker pool of the campaign-heavy
// experiments (E8, X2): 0 forces sequential execution, N > 0 a pool
// of N, and the stressor.WorkersAuto default one worker per CPU.
// Campaign results are deterministic for every setting, so this knob
// only trades wall-clock time.
var CampaignWorkers = stressor.WorkersAuto

// CampaignCheckpoints switches the campaign-heavy experiments (E8,
// X2) to golden-run checkpointing: each worker snapshots the fault-
// free prefix once per injection instant and restores it instead of
// re-simulating. Results are byte-identical either way; the knob only
// trades wall-clock time (see BenchmarkCampaignCheckpointed).
var CampaignCheckpoints = false

// Metrics and Trace are the harness-wide observability sinks. Both
// are nil by default (experiments run uninstrumented); the vpsafety
// CLI attaches them via Instrument. All obs types are nil-safe, so
// experiment code calls Phase and instrumentCampaign unconditionally.
var (
	Metrics *obs.Registry
	Trace   *obs.TraceRecorder
	// CampaignProgress, when set, streams live progress from the
	// campaign-heavy experiments (E8, X2).
	CampaignProgress obs.ProgressFunc
)

// Instrument attaches observability sinks to the experiment harness.
// Call before running experiments; pass nils to detach.
func Instrument(reg *obs.Registry, tr *obs.TraceRecorder) {
	Metrics = reg
	Trace = tr
}

// Phase marks a named wall-clock phase of an experiment. It returns
// the closer, so the idiomatic call is
//
//	done := Phase("E8", "campaign:protected")
//	... work ...
//	done()
//
// Each phase records into the exp.phase_ns{exp=,phase=} histogram and
// emits an "experiment"-category trace span. With no sinks attached
// the only cost is two time.Now calls.
func Phase(exp, name string) func() {
	sp := Trace.Begin("experiment", exp+"/"+name, 0)
	start := time.Now()
	return func() {
		Metrics.Histogram("exp.phase_ns", obs.L("exp", exp), obs.L("phase", name)).
			Observe(uint64(time.Since(start)))
		sp.End()
	}
}

// AttributionTable builds the wall-clock attribution table of one
// experiment from the phase histograms accumulated so far, or nil
// when the harness is uninstrumented or the experiment has not run.
func AttributionTable(id string) *report.Table {
	if Metrics == nil {
		return nil
	}
	var ms []obs.Metric
	for _, m := range Metrics.Snapshot() {
		if m.Name == "exp.phase_ns" && m.Label("exp") == id {
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return nil
	}
	return report.MetricsTable(fmt.Sprintf("%s: wall-clock attribution by phase", id), ms)
}

// instrumentCampaign points a stressor campaign at the harness sinks.
// All fields are nil when the harness is uninstrumented, which leaves
// the campaign on its zero-overhead path.
func instrumentCampaign(c *stressor.Campaign) {
	c.Metrics = Metrics
	c.Trace = Trace
	c.Progress = CampaignProgress
}

// Result is one experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Claim  string // the paper sentence being reproduced
	Tables []*report.Table
	// ShapeHolds reports whether the claimed qualitative shape was
	// observed; ShapeDetail explains.
	ShapeHolds  bool
	ShapeDetail string
}

// Render prints the full result.
func (r *Result) Render() string {
	out := fmt.Sprintf("### %s: %s\nClaim: %s\n\n", r.ID, r.Title, r.Claim)
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	status := "HOLDS"
	if !r.ShapeHolds {
		status = "VIOLATED"
	}
	out += fmt.Sprintf("Shape %s: %s\n", status, r.ShapeDetail)
	return out
}

// Experiment is a registered runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

var registry = map[string]Experiment{}

// register wraps every experiment's Run with a "total" phase and, when
// the harness is instrumented, appends the per-phase wall-clock
// attribution table to the result.
func register(e Experiment) {
	run := e.Run
	e.Run = func() (*Result, error) {
		done := Phase(e.ID, "total")
		res, err := run()
		done()
		if err == nil && res != nil {
			if t := AttributionTable(e.ID); t != nil {
				res.Tables = append(res.Tables, t)
			}
		}
		return res, err
	}
	registry[e.ID] = e
}

// Get looks up an experiment by ID (e.g. "E1", "F3").
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All lists experiments in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
