package clitest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The capsim campaign command line every daemon test mirrors: the
// E2E spec {"campaign":"e2e","universe":{"kind":"caps-single-fault",
// "horizon":"30ms"},"workers":2} must produce byte-identical text.
var capsimCampaignArgs = []string{"-campaign", "e2e", "-horizon", "30ms", "-workers", "2"}

// goldenCampaign is the goldenfile shared by the capsim CLI and the
// capsimd daemon result tests.
const goldenCampaign = "capsim_campaign"

func TestCapsimScenarioGolden(t *testing.T) {
	r := Run(t, nil, Binary(t, "capsim"), "-faults", "open @caps.accel0.harness from 5ms")
	if r.Code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, "capsim_scenario", r.Stdout)
}

func TestCapsimSitesGolden(t *testing.T) {
	r := Run(t, nil, Binary(t, "capsim"), "-sites")
	if r.Code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, "capsim_sites", r.Stdout)
}

func TestCapsimCampaignGolden(t *testing.T) {
	r := Run(t, nil, Binary(t, "capsim"), capsimCampaignArgs...)
	if r.Code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, goldenCampaign, r.Stdout)
}

// TestCapsimCampaignModesIdentical pins the engine's core promise at
// the CLI surface: checkpointed, checkpoint-tree, early-exit and
// journaled executions of the same campaign print the same bytes
// (against the same golden) as the plain run.
func TestCapsimCampaignModesIdentical(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "run.jsonl")
	for _, extra := range [][]string{
		{"-checkpoints"},
		{"-checkpoint-tree"},
		{"-checkpoint-tree", "-early-exit"},
		{"-early-exit", "-hash-stride", "5ms"},
		{"-journal", jpath},
	} {
		r := Run(t, nil, Binary(t, "capsim"), append(append([]string{}, capsimCampaignArgs...), extra...)...)
		if r.Code != 0 {
			t.Fatalf("capsim %v: exit %d, stderr:\n%s", extra, r.Code, r.Stderr)
		}
		Golden(t, goldenCampaign, r.Stdout)
	}
}

// TestCampmergeGolden runs the campaign as two shard subprocesses and
// merges the journals: the shard tallies must reassemble into the
// goldenfiled merge summary.
func TestCampmergeGolden(t *testing.T) {
	dir := t.TempDir()
	capsim := Binary(t, "capsim")
	var journals []string
	for _, shard := range []string{"0/2", "1/2"} {
		jpath := filepath.Join(dir, "shard"+shard[:1]+".jsonl")
		journals = append(journals, jpath)
		args := append(append([]string{}, capsimCampaignArgs...), "-shard", shard, "-journal", jpath)
		if r := Run(t, nil, capsim, args...); r.Code != 0 {
			t.Fatalf("capsim -shard %s: exit %d, stderr:\n%s", shard, r.Code, r.Stderr)
		}
	}
	r := Run(t, nil, Binary(t, "campmerge"), append([]string{"-horizon", "30ms"}, journals...)...)
	if r.Code != 0 {
		t.Fatalf("campmerge: exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, "campmerge", r.Stdout)
}

func TestMutateDemoGolden(t *testing.T) {
	r := Run(t, nil, Binary(t, "mutate"), "-demo")
	if r.Code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, "mutate_demo", r.Stdout)

	// The parallel path must print the identical report.
	rp := Run(t, nil, Binary(t, "mutate"), "-demo", "-workers", "-1")
	if rp.Stdout != r.Stdout {
		t.Errorf("mutate -demo -workers -1 diverges from the sequential output")
	}
}

func TestVpsafetyGolden(t *testing.T) {
	r := Run(t, nil, Binary(t, "vpsafety"), "-exp", "E7")
	if r.Code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, "vpsafety_e7", r.Stdout)
}

// TestCapsimJournalFailureExitsNonZero pins the exit-code contract: a
// campaign whose journal stops persisting mid-run must exit non-zero
// — success over an unresumable, unmergeable journal is a lie. The
// CAPSIM_FAIL_JOURNAL_AFTER knob injects the write failure after N
// appends, modeling a volume that fills up mid-campaign.
func TestCapsimJournalFailureExitsNonZero(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "run.jsonl")
	args := append(append([]string{}, capsimCampaignArgs...), "-journal", jpath)
	r := Run(t, []string{"CAPSIM_FAIL_JOURNAL_AFTER=3"}, Binary(t, "capsim"), args...)
	if r.Code == 0 {
		t.Fatalf("capsim exited 0 with a failing journal; stdout:\n%s", r.Stdout)
	}
	if !strings.Contains(r.Stderr, "injected write failure") {
		t.Errorf("stderr lacks the journal failure cause:\n%s", r.Stderr)
	}
	// The journal keeps the appends that succeeded: header + 3 entries.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimRight(string(data), "\n"), "\n")); n != 4 {
		t.Errorf("journal has %d lines, want 4 (header + 3 outcomes)", n)
	}
}
