package clitest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bigSpec builds an inline-universe spec large enough (~2-3s of wall
// clock) that a SIGTERM reliably lands mid-campaign.
func bigSpec(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"campaign":"big","universe":{"kind":"inline","horizon":"10s","scenarios":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":"s%04d","faults":"open @caps.accel0.harness from %dus"}`, i, 100+i)
	}
	sb.WriteString(`]}}`)
	return sb.String()
}

// TestDaemonSigtermResumesToIdenticalResult is the kill/restart leg
// of the lifecycle matrix: SIGTERM mid-campaign stops the daemon with
// a partially-journaled pending run; a fresh daemon over the same
// data directory resumes it and completes to the byte-identical text
// result an uninterrupted daemon produces.
func TestDaemonSigtermResumesToIdenticalResult(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second daemon lifecycle test")
	}
	const scenarios = 300
	spec := bigSpec(scenarios)

	// Reference: the same spec, uninterrupted, in its own store.
	ref := StartDaemon(t, t.TempDir())
	if status, body := Post(t, ref.URL+"/runs", spec); status != http.StatusAccepted {
		t.Fatalf("reference POST = %d; body: %s", status, body)
	}
	WaitRunState(t, ref.URL, "r000001", "done", 120*time.Second)
	_, refText := Get(t, ref.URL+"/runs/r000001/result?format=text")

	// Victim daemon: SIGTERM once the event stream proves the campaign
	// is mid-flight (a progress event with completed < total).
	dataDir := t.TempDir()
	victim := StartDaemon(t, dataDir)
	if status, body := Post(t, victim.URL+"/runs", spec); status != http.StatusAccepted {
		t.Fatalf("victim POST = %d; body: %s", status, body)
	}
	resp, err := http.Get(victim.URL + "/runs/r000001/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	fired := false
	for sc.Scan() {
		var e struct {
			Type      string `json:"type"`
			State     string `json:"state"`
			Completed int    `json:"completed"`
			Total     int    `json:"total"`
			Final     bool   `json:"final"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.Type == "progress" && e.Completed > 0 && e.Completed < e.Total && !fired {
			fired = true
			victim.Signal(syscall.SIGTERM)
		}
		if e.Final {
			if !fired {
				t.Fatalf("run reached terminal state %q before any mid-flight progress event", e.State)
			}
			if e.State != "interrupted" {
				t.Fatalf("final event after SIGTERM is %q, want interrupted", e.State)
			}
			break
		}
	}
	resp.Body.Close()
	if !fired {
		t.Fatal("event stream ended without a mid-flight progress event")
	}
	victim.WaitExit(15 * time.Second)

	// The journal is partial: the header plus some, but not all,
	// outcomes.
	jdata, err := os.ReadFile(filepath.Join(dataDir, "runs", "r000001", "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := len(strings.Split(strings.TrimRight(string(jdata), "\n"), "\n"))
	if lines < 2 || lines >= scenarios+1 {
		t.Fatalf("journal has %d lines after SIGTERM, want partial (2..%d)", lines, scenarios)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "runs", "r000001", "result.json")); err == nil {
		t.Fatal("interrupted run has a result.json; it must stay pending")
	}

	// Restart over the same store: the pending run is requeued,
	// resumed from its journal, and completes.
	revived := StartDaemon(t, dataDir)
	WaitRunState(t, revived.URL, "r000001", "done", 120*time.Second)
	_, text := Get(t, revived.URL+"/runs/r000001/result?format=text")
	if text != refText {
		t.Errorf("resumed result diverges from the uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s", text, refText)
	}

	// The metrics prove the resume skipped journaled work: the revived
	// daemon executed strictly fewer scenarios than the universe holds.
	status, mbody := Get(t, revived.URL+"/runs/r000001/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET metrics = %d", status)
	}
	var m struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(mbody), &m); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	skipped := m.Counters["campaign.resumed_skips{campaign=big}"]
	if skipped == 0 || skipped >= scenarios {
		t.Errorf("resumed daemon skipped %d journaled scenarios, want 1..%d", skipped, scenarios-1)
	}
}
