package clitest

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// e2eSpec mirrors capsimCampaignArgs knob for knob; the daemon must
// turn it into the byte-identical campaign.
const e2eSpec = `{"campaign":"e2e","universe":{"kind":"caps-single-fault","horizon":"30ms"},"workers":2}`

// TestDaemonResultMatchesCapsimGolden is the acceptance pin of the
// campaign service: submitting a spec over HTTP and asking for the
// text result must produce exactly the bytes the equivalent capsim
// command line prints — both sides assert the same goldenfile.
func TestDaemonResultMatchesCapsimGolden(t *testing.T) {
	d := StartDaemon(t, t.TempDir())
	Golden(t, "capsimd_ready", d.Ready+"\n")

	status, body := Post(t, d.URL+"/runs", e2eSpec)
	if status != http.StatusAccepted {
		t.Fatalf("POST /runs = %d, want 202; body: %s", status, body)
	}
	Golden(t, "daemon_submit", body)

	final := WaitRunState(t, d.URL, "r000001", "done", 60*time.Second)
	Golden(t, "daemon_run_done", final)

	status, text := Get(t, d.URL+"/runs/r000001/result?format=text")
	if status != http.StatusOK {
		t.Fatalf("GET result?format=text = %d; body: %s", status, text)
	}
	Golden(t, goldenCampaign, text)

	status, doc := Get(t, d.URL+"/runs/r000001/result")
	if status != http.StatusOK {
		t.Fatalf("GET result = %d", status)
	}
	Golden(t, "daemon_result_json", doc)

	// The event stream of a finished run is its retained terminal
	// state, exactly one line.
	lines := StreamEvents(t, d.URL, "r000001", 10*time.Second)
	Golden(t, "daemon_events_done", strings.Join(lines, "\n")+"\n")

	// A second submission of the same spec rides the warm runner and
	// must land on the identical text result.
	status, body = Post(t, d.URL+"/runs", e2eSpec)
	if status != http.StatusAccepted {
		t.Fatalf("second POST /runs = %d; body: %s", status, body)
	}
	WaitRunState(t, d.URL, "r000002", "done", 60*time.Second)
	if _, text2 := Get(t, d.URL+"/runs/r000002/result?format=text"); text2 != text {
		t.Errorf("warm-runner rerun diverges from the first run's text result")
	}
}

// TestDaemonRejectsMalformedSpecs pins the error surface: malformed
// or out-of-range specs are structured 400s with stable bodies, and
// unknown runs are 404s — never panics, never empty replies.
func TestDaemonRejectsMalformedSpecs(t *testing.T) {
	d := StartDaemon(t, t.TempDir())
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"daemon_err_badjson", `not json`, http.StatusBadRequest},
		{"daemon_err_unknown_field", `{"wat":1}`, http.StatusBadRequest},
		{"daemon_err_workers", `{"universe":{},"workers":2000}`, http.StatusBadRequest},
		{"daemon_err_kind", `{"universe":{"kind":"exotic"}}`, http.StatusBadRequest},
		{"daemon_err_trailing", `{"universe":{}} {"universe":{}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := Post(t, d.URL+"/runs", tc.body)
			if status != tc.status {
				t.Fatalf("POST %q = %d, want %d; body: %s", tc.body, status, tc.status, body)
			}
			if !strings.Contains(body, `"error"`) {
				t.Fatalf("error body is not structured JSON: %s", body)
			}
			Golden(t, tc.name, body)
		})
	}

	status, body := Get(t, d.URL+"/runs/r000099")
	if status != http.StatusNotFound {
		t.Fatalf("GET unknown run = %d; body: %s", status, body)
	}
	Golden(t, "daemon_err_unknown_run", body)

	// After all that abuse the daemon is still alive and healthy.
	if status, _ := Get(t, d.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz = %d after malformed submissions", status)
	}
}
