// Package clitest is the goldenfile end-to-end harness for every CLI
// surface of the repository. It builds the real command binaries once
// per test process, drives them as subprocesses — arguments, stdin,
// environment, signals — and compares their output byte-for-byte
// against committed goldenfiles under testdata/golden/.
//
// The same harness drives capsimd over HTTP, which is how the
// daemon's headline property is pinned: the text result a campaign
// spec produces through POST /runs must be byte-identical to the
// stdout of the equivalent capsim command line, i.e. both flows
// assert against the *same* goldenfile.
//
// Run with -update to regenerate the goldenfiles from current output:
//
//	go test ./internal/clitest -update
package clitest

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite goldenfiles under testdata/golden/ with current output")

// Main is the package's TestMain body: it creates the shared binary
// directory, runs the tests, and cleans up. Kept here so every test
// file stays declarative.
func Main(m *testing.M) int {
	dir, err := os.MkdirTemp("", "clitest-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(dir)
	binDir = dir
	return m.Run()
}

var (
	binDir  string
	buildMu sync.Mutex
	built   = map[string]string{}
)

// Binary builds (once per test process) and returns the path of the
// named command under cmd/. The build runs through the ordinary `go
// build` cache, so repeated test invocations pay link time only.
func Binary(t testing.TB, name string) string {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if path, ok := built[name]; ok {
		return path
	}
	path := filepath.Join(binDir, name)
	cmd := exec.Command("go", "build", "-o", path, "repro/cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/%s: %v\n%s", name, err, out)
	}
	built[name] = path
	return path
}

// Result is one finished subprocess invocation.
type Result struct {
	Stdout string
	Stderr string
	Code   int
}

// Run executes a binary to completion. env entries (KEY=VALUE) are
// appended to the inherited environment. A failure to even start the
// process fails the test; a non-zero exit is returned, not fatal —
// exit codes are part of the contract under test.
func Run(t testing.TB, env []string, bin string, args ...string) Result {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	res := Result{Stdout: stdout.String(), Stderr: stderr.String()}
	if err != nil {
		var exit *exec.ExitError
		if !errorsAs(err, &exit) {
			t.Fatalf("running %s %s: %v", bin, strings.Join(args, " "), err)
		}
		res.Code = exit.ExitCode()
	}
	return res
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*target = e
	}
	return ok
}

// Golden compares got against testdata/golden/<name>.golden,
// rewriting the file under -update. The diff output points at the
// first divergent line so a broken CLI surface reads like a failed
// code review, not a wall of bytes.
func Golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldenfile %s (regenerate with `go test ./internal/clitest -update`): %v", path, err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("%s: first divergence at line %d:\n  got:  %q\n  want: %q\n--- full output ---\n%s", path, i+1, g, w, got)
		}
	}
	t.Fatalf("%s: output differs from golden (got %d bytes, want %d)", path, len(got), len(want))
}

// Normalization rules: the harness compares real subprocess output,
// so everything environmental — ephemeral ports, per-test temp paths,
// wall-clock rates — is rewritten to a stable placeholder before the
// goldenfile comparison.
var (
	portPat = regexp.MustCompile(`127\.0\.0\.1:\d+`)
	tmpPat  = regexp.MustCompile(`(/[^\s"'),]*(?:clitest|Test|tmp)[^\s"'),]*)+`)
	ratePat = regexp.MustCompile(`"runs_per_sec":[0-9.eE+-]+`)
	etaPat  = regexp.MustCompile(`"eta_ms":\d+`)
)

// Normalize rewrites environmental noise in s: listen ports become
// 127.0.0.1:PORT, temp paths become TMPDIR, and wall-clock progress
// rates become fixed placeholders.
func Normalize(s string) string {
	s = portPat.ReplaceAllString(s, "127.0.0.1:PORT")
	s = tmpPat.ReplaceAllString(s, "TMPDIR")
	s = ratePat.ReplaceAllString(s, `"runs_per_sec":0`)
	s = etaPat.ReplaceAllString(s, `"eta_ms":0`)
	return s
}

// promSamplePat matches one Prometheus exposition sample line,
// capturing everything up to the value.
var promSamplePat = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) \S+$`)

// NormalizeMetrics rewrites every sample value in a Prometheus text
// exposition to the placeholder V, leaving names, labels, and TYPE
// comments intact — the goldenfile then pins the document's *shape*
// (which families and series exist, in which order) without pinning
// wall-clock-dependent values.
func NormalizeMetrics(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines[i] = promSamplePat.ReplaceAllString(l, "$1 V")
	}
	return strings.Join(lines, "\n")
}

// lockedBuffer is a goroutine-safe bytes.Buffer for capturing a live
// subprocess's stderr while the test concurrently inspects it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *lockedBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *lockedBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

// Daemon is a live capsimd subprocess started by StartDaemon.
type Daemon struct {
	t       testing.TB
	cmd     *exec.Cmd
	waitErr chan error
	stderr  *lockedBuffer

	linesMu sync.Mutex
	lines   []string // every stdout line seen so far

	// URL is the daemon's base URL (http://127.0.0.1:<port>).
	URL string
	// Ready is the normalized readiness line the daemon printed.
	Ready string
}

var (
	readyPat = regexp.MustCompile(`^capsimd listening on (http://[^ ]+) `)
	debugPat = regexp.MustCompile(`^capsimd debug listening on (http://[^ ]+)$`)
)

// StartDaemon launches capsimd on an ephemeral port over dataDir and
// waits for its readiness line. Stderr (structured logs, flight
// dumps) is captured; read it with Stderr/WaitStderr. The daemon is
// SIGKILLed at test cleanup if the test did not stop it itself.
func StartDaemon(t testing.TB, dataDir string, extraArgs ...string) *Daemon {
	t.Helper()
	bin := Binary(t, "capsimd")
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dataDir, "-quiet"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d := &Daemon{t: t, cmd: cmd, waitErr: make(chan error, 1), stderr: &lockedBuffer{}}
	cmd.Stderr = d.stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting capsimd: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.waitErr
	})

	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 16)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			d.linesMu.Lock()
			d.lines = append(d.lines, line)
			d.linesMu.Unlock()
			select {
			case lineCh <- line:
			default:
			}
		}
	}()
	go func() { d.waitErr <- cmd.Wait() }()
	deadline := time.After(30 * time.Second)
	// Scan past auxiliary lines (e.g. the -debug-addr readiness) until
	// the main handshake appears.
	for d.URL == "" {
		select {
		case line := <-lineCh:
			if m := readyPat.FindStringSubmatch(line); m != nil {
				d.URL = m[1]
				d.Ready = Normalize(line)
			}
		case err := <-d.waitErr:
			d.waitErr <- err
			t.Fatalf("capsimd exited before becoming ready; stderr:\n%s\nerr: %v", d.stderr.String(), err)
		case <-deadline:
			t.Fatal("capsimd readiness line timed out")
		}
	}
	return d
}

// DebugURL returns the -debug-addr pprof base URL the daemon
// announced, or "" when it runs without one.
func (d *Daemon) DebugURL() string {
	d.linesMu.Lock()
	defer d.linesMu.Unlock()
	for _, l := range d.lines {
		if m := debugPat.FindStringSubmatch(l); m != nil {
			return m[1]
		}
	}
	return ""
}

// Stderr returns everything the daemon has written to stderr so far.
func (d *Daemon) Stderr() string { return d.stderr.String() }

// WaitStderr polls the daemon's stderr until it contains substr.
func (d *Daemon) WaitStderr(substr string, timeout time.Duration) string {
	d.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		out := d.stderr.String()
		if strings.Contains(out, substr) {
			return out
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("daemon stderr never contained %q; stderr:\n%s", substr, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Signal delivers sig (e.g. SIGTERM) to the daemon.
func (d *Daemon) Signal(sig syscall.Signal) {
	d.t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		d.t.Fatalf("signaling capsimd: %v", err)
	}
}

// WaitExit blocks until the daemon process exits.
func (d *Daemon) WaitExit(timeout time.Duration) {
	d.t.Helper()
	select {
	case err := <-d.waitErr:
		d.waitErr <- err
	case <-time.After(timeout):
		d.t.Fatal("capsimd did not exit in time")
	}
}

// HTTP helpers. The harness asserts on raw bodies, so these return
// status and bytes, never decoded structures.

// Get fetches an URL and returns (status, body).
func Get(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// Post sends body to an URL and returns (status, response body).
func Post(t testing.TB, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(data)
}

// WaitRunState polls a run until it reaches want (done/failed) or the
// timeout elapses, returning the final GET /runs/{id} body.
func WaitRunState(t testing.TB, base, id, want string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		status, body := Get(t, base+"/runs/"+id)
		if status == http.StatusOK && strings.Contains(body, `"state":"`+want+`"`) {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s did not reach state %q in %v; last body: %s", id, want, timeout, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// StreamEvents reads the NDJSON /events stream of a run until its
// final event (or timeout) and returns the raw lines.
func StreamEvents(t testing.TB, base, id string, timeout time.Duration) []string {
	t.Helper()
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/runs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}
