package clitest

import (
	"os"
	"testing"
)

func TestMain(m *testing.M) {
	os.Exit(Main(m))
}
