package clitest

import (
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// telemetrySpec is a fast inline campaign for the telemetry E2E tests.
const telemetrySpec = `{"campaign":"tele","universe":{"kind":"inline","horizon":"2ms","scenarios":[` +
	`{"id":"a","faults":"open @caps.accel0.harness from 100us"},` +
	`{"id":"b","faults":"omission @caps.can.bus from 200us"}]}}`

// TestDaemonMetricsGolden pins the shape of the GET /metrics
// Prometheus exposition: which families exist, their TYPE lines, and
// the full (deterministic) series set, with wall-clock values
// normalized away. A new daemon metric shows up as a golden diff, not
// silently.
func TestDaemonMetricsGolden(t *testing.T) {
	d := StartDaemon(t, t.TempDir())
	if status, body := Post(t, d.URL+"/runs", telemetrySpec); status != http.StatusAccepted {
		t.Fatalf("POST /runs = %d; body: %s", status, body)
	}
	WaitRunState(t, d.URL, "r000001", "done", 60*time.Second)

	status, doc := Get(t, d.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d", status)
	}
	Golden(t, "daemon_metrics", NormalizeMetrics(doc))
}

// TestDaemonTraceEndpoints drives the run-trace surface end to end:
// a malformed request (trace of an untraced run) is a stable 400, and
// a "trace": true run serves a loadable Chrome trace document after
// completion.
func TestDaemonTraceEndpoints(t *testing.T) {
	d := StartDaemon(t, t.TempDir())

	// r000001: no tracing requested — asking for its trace is a 400
	// whose body is part of the error-surface contract.
	if status, body := Post(t, d.URL+"/runs", telemetrySpec); status != http.StatusAccepted {
		t.Fatalf("POST /runs = %d; body: %s", status, body)
	}
	WaitRunState(t, d.URL, "r000001", "done", 60*time.Second)
	status, body := Get(t, d.URL+"/runs/r000001/trace")
	if status != http.StatusBadRequest {
		t.Fatalf("GET /trace on untraced run = %d, want 400; body: %s", status, body)
	}
	Golden(t, "daemon_err_trace_400", body)

	// r000002: traced run — the downloaded document is valid Chrome
	// trace-event JSON.
	traced := strings.Replace(telemetrySpec, `"campaign":"tele"`, `"campaign":"tele","trace":true`, 1)
	if status, body := Post(t, d.URL+"/runs", traced); status != http.StatusAccepted {
		t.Fatalf("POST traced = %d; body: %s", status, body)
	}
	WaitRunState(t, d.URL, "r000002", "done", 60*time.Second)
	status, body = Get(t, d.URL+"/runs/r000002/trace")
	if status != http.StatusOK {
		t.Fatalf("GET /trace = %d; body: %s", status, body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 || doc.Unit != "ms" {
		t.Fatalf("trace document: %d events, unit %q", len(doc.TraceEvents), doc.Unit)
	}
}

// TestDaemonSigquitFlightDump is the flight-recorder lifecycle pin:
// SIGQUIT makes the daemon dump its ring to stderr and KEEP SERVING;
// SIGTERM afterwards still shuts it down cleanly.
func TestDaemonSigquitFlightDump(t *testing.T) {
	d := StartDaemon(t, t.TempDir())
	if status, body := Post(t, d.URL+"/runs", telemetrySpec); status != http.StatusAccepted {
		t.Fatalf("POST /runs = %d; body: %s", status, body)
	}
	WaitRunState(t, d.URL, "r000001", "done", 60*time.Second)

	d.Signal(syscall.SIGQUIT)
	out := d.WaitStderr("campaignd flight dump (SIGQUIT):", 10*time.Second)
	for _, mark := range []string{"run.submit", "run.start", "run.done"} {
		if !strings.Contains(out, mark) {
			t.Fatalf("flight dump missing %q:\n%s", mark, out)
		}
	}
	// The daemon survived the dump.
	if status, _ := Get(t, d.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("daemon not healthy after SIGQUIT: %d", status)
	}
	d.Signal(syscall.SIGTERM)
	d.WaitExit(15 * time.Second)
}

// TestDaemonPprof smoke-tests the -debug-addr listener: pprof serves
// on its own port, isolated from the API.
func TestDaemonPprof(t *testing.T) {
	d := StartDaemon(t, t.TempDir(), "-debug-addr", "127.0.0.1:0")
	debug := d.DebugURL()
	if debug == "" {
		t.Fatal("daemon announced no debug listener")
	}
	if status, body := Get(t, debug+"/debug/pprof/cmdline"); status != http.StatusOK || !strings.Contains(body, "capsimd") {
		t.Fatalf("pprof cmdline = %d: %q", status, body)
	}
	// The API listener does not serve pprof.
	if status, _ := Get(t, d.URL+"/debug/pprof/cmdline"); status == http.StatusOK {
		t.Fatal("pprof leaked onto the API listener")
	}
}

// TestCapsimLogFormatJSON checks the CLI's structured-log surface:
// -log-format json writes one JSON object per line to stderr with the
// campaign lifecycle events, while stdout (the goldenfiled summary)
// stays untouched; a bogus format is a usage error.
func TestCapsimLogFormatJSON(t *testing.T) {
	args := append(append([]string{}, capsimCampaignArgs...), "-log-format", "json")
	r := Run(t, nil, Binary(t, "capsim"), args...)
	if r.Code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, goldenCampaign, r.Stdout)
	var sawStart, sawDone bool
	for _, line := range strings.Split(strings.TrimSpace(r.Stderr), "\n") {
		var rec struct {
			Msg      string `json:"msg"`
			Campaign string `json:"campaign"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q (%v)", line, err)
		}
		if rec.Campaign != "e2e" {
			t.Fatalf("log line without campaign attr: %q", line)
		}
		sawStart = sawStart || rec.Msg == "campaign start"
		sawDone = sawDone || rec.Msg == "campaign done"
	}
	if !sawStart || !sawDone {
		t.Fatalf("lifecycle events missing (start=%v done=%v):\n%s", sawStart, sawDone, r.Stderr)
	}

	if r := Run(t, nil, Binary(t, "capsim"), "-campaign", "-log-format", "yaml"); r.Code != 2 {
		t.Fatalf("bogus -log-format exited %d, want 2; stderr:\n%s", r.Code, r.Stderr)
	}
}
