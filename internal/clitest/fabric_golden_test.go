package clitest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// fabricSpec is the spec JSON the fabric tests feed capsim-coord: the
// same campaign as capsimCampaignArgs, so the coordinator's -oneshot
// summary asserts against the very goldenfile the capsim CLI and the
// capsimd daemon already share.
const fabricSpec = `{"campaign":"e2e","universe":{"kind":"caps-single-fault","horizon":"30ms"},"workers":2}`

var coordReadyPat = regexp.MustCompile(`^capsim-coord listening on (http://[^ ]+) `)

// coordProc is a live capsim-coord subprocess.
type coordProc struct {
	t       *testing.T
	cmd     *exec.Cmd
	waitErr chan error
	stdout  *lockedBuffer
	stderr  *lockedBuffer

	// URL is the coordinator's base URL parsed from the readiness line.
	URL string
}

// startCoord launches capsim-coord on an ephemeral port with the given
// spec JSON and waits for its readiness handshake line. The process is
// SIGKILLed at cleanup if the test did not wait for it to exit.
func startCoord(t *testing.T, spec string, extraArgs ...string) *coordProc {
	t.Helper()
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-addr", "127.0.0.1:0", "-spec", specPath, "-quiet"}, extraArgs...)
	cmd := exec.Command(Binary(t, "capsim-coord"), args...)
	c := &coordProc{t: t, cmd: cmd, waitErr: make(chan error, 1), stdout: &lockedBuffer{}, stderr: &lockedBuffer{}}
	cmd.Stdout, cmd.Stderr = c.stdout, c.stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting capsim-coord: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-c.waitErr
	})
	go func() { c.waitErr <- cmd.Wait() }()

	deadline := time.Now().Add(30 * time.Second)
	for c.URL == "" {
		line, _, _ := strings.Cut(c.stdout.String(), "\n")
		if m := coordReadyPat.FindStringSubmatch(line); m != nil {
			c.URL = m[1]
			break
		}
		select {
		case err := <-c.waitErr:
			c.waitErr <- err
			t.Fatalf("capsim-coord exited before becoming ready; stderr:\n%s\nerr: %v", c.stderr.String(), err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("capsim-coord readiness line timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c
}

// waitExit blocks until the coordinator exits and returns its stdout
// split into the readiness line and everything after it (for a
// -oneshot coordinator, the campaign summary block).
func (c *coordProc) waitExit(timeout time.Duration) (ready, rest string) {
	c.t.Helper()
	select {
	case err := <-c.waitErr:
		c.waitErr <- err
		if err != nil {
			c.t.Fatalf("capsim-coord exited with error: %v\nstderr:\n%s", err, c.stderr.String())
		}
	case <-time.After(timeout):
		c.t.Fatalf("capsim-coord did not exit in time; stdout so far:\n%s", c.stdout.String())
	}
	out := c.stdout.String()
	i := strings.Index(out, "\n")
	if i < 0 {
		c.t.Fatalf("capsim-coord stdout has no readiness line: %q", out)
	}
	return out[:i], out[i+1:]
}

// TestFabricPairGolden is the distributed-campaign headline pinned at
// the process level: a capsim-coord -oneshot coordinator fed two real
// capsim-worker subprocesses over HTTP must print the byte-identical
// summary block that `capsim -campaign e2e ...` prints — the same
// goldenfile the CLI and the daemon already assert against.
func TestFabricPairGolden(t *testing.T) {
	coord := startCoord(t, fabricSpec, "-oneshot", "-shards", "4", "-data", t.TempDir())
	worker := Binary(t, "capsim-worker")

	var wg sync.WaitGroup
	results := make([]Result, 2)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = Run(t, nil, worker,
				"-coord", coord.URL, "-name", fmt.Sprintf("w%d", i+1), "-heartbeat", "50ms", "-quiet")
		}()
	}
	wg.Wait()
	for i, r := range results {
		if r.Code != 0 {
			t.Fatalf("worker w%d: exit %d\nstdout:\n%s\nstderr:\n%s", i+1, r.Code, r.Stdout, r.Stderr)
		}
		Golden(t, "fabric_worker", Normalize(strings.ReplaceAll(r.Stdout, fmt.Sprintf("w%d", i+1), "W")))
	}

	ready, summary := coord.waitExit(30 * time.Second)
	Golden(t, "fabric_coord_ready", Normalize(ready)+"\n")
	Golden(t, goldenCampaign, summary)
}

// TestFabricWorkerKillResumeGolden kills a real worker process with
// SIGKILL mid-lease and proves the campaign still completes with the
// goldenfiled summary: the stalled worker's lease expires, the second
// worker is granted the shard *with the outcomes already flushed*, and
// resumes instead of restarting.
func TestFabricWorkerKillResumeGolden(t *testing.T) {
	coord := startCoord(t, fabricSpec, "-oneshot", "-shards", "2", "-data", t.TempDir(),
		"-lease-ttl", "500ms")
	worker := Binary(t, "capsim-worker")

	// Worker 1 stalls forever inside its third scenario; the campaign's
	// other worker goroutine keeps completing scenarios and the heartbeat
	// keeps flushing them, but the stalled scenario pins the lease short
	// of done — so outcomes reach the coordinator and then progress stops.
	w1 := exec.Command(worker, "-coord", coord.URL, "-name", "w1", "-heartbeat", "50ms", "-quiet")
	w1.Env = append(os.Environ(), "CAPSIM_WORKER_STALL_AFTER=3")
	if err := w1.Start(); err != nil {
		t.Fatalf("starting worker w1: %v", err)
	}
	w1Exit := make(chan error, 1)
	go func() { w1Exit <- w1.Wait() }()
	t.Cleanup(func() {
		w1.Process.Kill()
		<-w1Exit
	})

	// Wait until the coordinator has recorded at least one of w1's
	// flushed outcomes, then SIGKILL the stalled process — a real worker
	// death, not a cooperative shutdown.
	flushedPat := regexp.MustCompile(`"recorded":[1-9]`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := Get(t, coord.URL+"/status")
		if flushedPat.MatchString(body) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never recorded w1's flushed outcomes; status: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	w1.Process.Kill()
	w1Exit <- <-w1Exit // keep the exit buffered for the Cleanup receive

	// Worker 2 finishes the campaign: its own shard immediately, w1's
	// shard once the lease TTL expires. Logs stay on so the test can
	// prove the regrant really resumed from flushed entries.
	r := Run(t, nil, worker, "-coord", coord.URL, "-name", "w2", "-heartbeat", "50ms")
	if r.Code != 0 {
		t.Fatalf("worker w2: exit %d\nstdout:\n%s\nstderr:\n%s", r.Code, r.Stdout, r.Stderr)
	}
	if !regexp.MustCompile(`msg="lease granted".*resume=[1-9]`).MatchString(r.Stderr) {
		t.Errorf("w2 was never granted a lease with resume entries — shard restarted instead of resumed?\nstderr:\n%s", r.Stderr)
	}
	Golden(t, "fabric_worker", Normalize(strings.ReplaceAll(r.Stdout, "w2", "W")))

	_, summary := coord.waitExit(30 * time.Second)
	Golden(t, goldenCampaign, summary)
}

// TestCampmergeMixedCodecsGolden shards the campaign across the two
// journal encodings — shard 0 in the compact binary framing, shard 1
// in JSONL — and merges them with campmerge: the sniffing makes mixed
// fleets mergeable, and the summary is the same goldenfile the
// all-JSONL merge test asserts against.
func TestCampmergeMixedCodecsGolden(t *testing.T) {
	dir := t.TempDir()
	capsim := Binary(t, "capsim")
	journals := []string{filepath.Join(dir, "shard0.bin"), filepath.Join(dir, "shard1.jsonl")}
	for i, extra := range [][]string{
		{"-shard", "0/2", "-journal", journals[0], "-journal-codec", "binary"},
		{"-shard", "1/2", "-journal", journals[1]},
	} {
		args := append(append([]string{}, capsimCampaignArgs...), extra...)
		if r := Run(t, nil, capsim, args...); r.Code != 0 {
			t.Fatalf("capsim shard %d: exit %d, stderr:\n%s", i, r.Code, r.Stderr)
		}
	}
	r := Run(t, nil, Binary(t, "campmerge"), append([]string{"-horizon", "30ms"}, journals...)...)
	if r.Code != 0 {
		t.Fatalf("campmerge: exit %d, stderr:\n%s", r.Code, r.Stderr)
	}
	Golden(t, "campmerge", r.Stdout)
}
