package fault

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/tlm"
)

func TestDescriptorValidate(t *testing.T) {
	good := Descriptor{Name: "f1", Model: StuckAt0, Target: "x"}
	if err := good.Validate(); err != nil {
		t.Errorf("good descriptor rejected: %v", err)
	}
	cases := []Descriptor{
		{Model: StuckAt0, Target: "x"},                                        // no name
		{Name: "f", Model: StuckAt0},                                          // no target
		{Name: "f", Target: "x", Class: Transient},                            // zero duration
		{Name: "f", Target: "x", Class: Intermittent, Duration: 5, Period: 5}, // period<=duration
		{Name: "f", Target: "x", Bit: 64},                                     // bit range
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, d)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := Scenario{ID: "s", Faults: []Descriptor{{Name: "f", Model: BitFlip, Target: "m"}}}
	if err := sc.Validate(); err != nil {
		t.Errorf("good scenario rejected: %v", err)
	}
	if err := (Scenario{}).Validate(); err == nil {
		t.Error("scenario without ID accepted")
	}
	bad := Scenario{ID: "s", Faults: []Descriptor{{Name: "", Target: "m"}}}
	if err := bad.Validate(); err == nil {
		t.Error("scenario with bad fault accepted")
	}
	single := Single(Descriptor{Name: "f9", Target: "t"})
	if single.ID != "f9" || len(single.Faults) != 1 {
		t.Errorf("Single = %+v", single)
	}
}

func TestStringers(t *testing.T) {
	if StuckAt1.String() != "stuck-at-1" || Babbling.String() != "babbling" {
		t.Error("model strings")
	}
	if Permanent.String() != "permanent" || Intermittent.String() != "intermittent" {
		t.Error("class strings")
	}
	if DigitalHW.String() != "digital-hw" || Communication.String() != "communication" {
		t.Error("domain strings")
	}
	d := Descriptor{Name: "f", Model: Open, Class: Transient, Target: "net3", Start: sim.NS(5), Duration: sim.NS(1)}
	if got := d.String(); !strings.Contains(got, "transient open on net3") {
		t.Errorf("descriptor string = %q", got)
	}
}

func TestClassificationOrder(t *testing.T) {
	order := []Classification{NoEffect, Masked, DetectedSafe, Latent, SDC, TimingViolation, SafetyCritical}
	for i := 1; i < len(order); i++ {
		if order[i].Severity() <= order[i-1].Severity() {
			t.Errorf("severity(%s) <= severity(%s)", order[i], order[i-1])
		}
	}
	if !SDC.IsFailure() || !SafetyCritical.IsFailure() || !TimingViolation.IsFailure() {
		t.Error("IsFailure wrong")
	}
	if DetectedSafe.IsFailure() || Masked.IsFailure() {
		t.Error("non-failures flagged")
	}
	if !Latent.IsDangerous() || Masked.IsDangerous() {
		t.Error("IsDangerous wrong")
	}
}

func TestTally(t *testing.T) {
	tally := make(Tally)
	tally.Add(Outcome{Class: Masked})
	tally.Add(Outcome{Class: Masked})
	tally.Add(Outcome{Class: SDC})
	if tally.Total() != 3 || tally.Failures() != 1 {
		t.Errorf("tally = %v", tally)
	}
	s := tally.String()
	if !strings.Contains(s, "masked=2") || !strings.Contains(s, "sdc=1") {
		t.Errorf("tally string = %q", s)
	}
	if (make(Tally)).String() != "empty" {
		t.Error("empty tally string")
	}
}

func TestFuncInjectorSupports(t *testing.T) {
	var injected, reverted bool
	inj := &FuncInjector{
		SiteName: "s",
		Models:   []Model{StuckAt0},
		InjectFn: func(d Descriptor) error { injected = true; return nil },
		RevertFn: func(d Descriptor) error { reverted = true; return nil },
	}
	if !inj.Supports(StuckAt0) || inj.Supports(BitFlip) {
		t.Error("Supports wrong")
	}
	if err := inj.Inject(Descriptor{Name: "f", Target: "s", Model: BitFlip}); err == nil {
		t.Error("unsupported model injected")
	}
	if err := inj.Inject(Descriptor{Name: "f", Target: "s", Model: StuckAt0}); err != nil || !injected {
		t.Error("supported model failed")
	}
	if err := inj.Revert(Descriptor{}); err != nil || !reverted {
		t.Error("revert failed")
	}
	nilRevert := &FuncInjector{SiteName: "x", InjectFn: func(Descriptor) error { return nil }}
	if err := nilRevert.Revert(Descriptor{}); err != nil {
		t.Error("nil RevertFn should no-op")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	mk := func(site string) Injector {
		return &FuncInjector{SiteName: site, Models: []Model{StuckAt0},
			InjectFn: func(Descriptor) error { return nil }}
	}
	if err := r.Register(mk("b")); err != nil {
		t.Fatal(err)
	}
	r.MustRegister(mk("a"))
	if err := r.Register(mk("a")); err == nil {
		t.Error("duplicate site accepted")
	}
	if got := r.Sites(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Sites = %v", got)
	}
	if _, ok := r.Lookup("a"); !ok {
		t.Error("Lookup failed")
	}
	if err := r.Inject(Descriptor{Name: "f", Target: "zz", Model: StuckAt0}); err == nil {
		t.Error("unknown site injected")
	}
	if err := r.Revert(Descriptor{Name: "f", Target: "zz"}); err == nil {
		t.Error("unknown site reverted")
	}
	if err := r.Inject(Descriptor{Name: "f", Target: "a", Model: StuckAt0}); err != nil {
		t.Error(err)
	}
}

func TestUniverse(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&FuncInjector{SiteName: "net1", Models: []Model{StuckAt0, StuckAt1},
		InjectFn: func(Descriptor) error { return nil }})
	r.MustRegister(&FuncInjector{SiteName: "mem", Models: []Model{BitFlip},
		InjectFn: func(Descriptor) error { return nil }})
	u := r.Universe([]Model{StuckAt0, StuckAt1, BitFlip}, Permanent, sim.NS(10), 0, 0)
	if len(u) != 3 {
		t.Fatalf("universe size = %d, want 3", len(u))
	}
	names := map[string]bool{}
	for _, d := range u {
		names[d.Name] = true
		if err := d.Validate(); err != nil {
			t.Errorf("universe descriptor invalid: %v", err)
		}
		if d.Start != sim.NS(10) {
			t.Errorf("start = %v", d.Start)
		}
	}
	for _, want := range []string{"mem/bit-flip", "net1/stuck-at-0", "net1/stuck-at-1"} {
		if !names[want] {
			t.Errorf("universe missing %s (have %v)", want, names)
		}
	}
}

func TestMemoryInjectorAdapter(t *testing.T) {
	m := tlm.NewMemory("ram", 0x100, 64)
	m.Poke(0x104, []byte{0x00})
	inj := MemoryInjector("ecu.ram", m)
	if inj.Site() != "ecu.ram" {
		t.Error("site wrong")
	}
	if err := inj.Inject(Descriptor{Name: "seu", Model: BitFlip, Target: "ecu.ram", Address: 0x104, Bit: 2}); err != nil {
		t.Fatal(err)
	}
	if m.Peek(0x104, 1)[0] != 0x04 {
		t.Errorf("flip result = %#x", m.Peek(0x104, 1)[0])
	}
	if err := inj.Inject(Descriptor{Name: "sa", Model: StuckAt1, Target: "ecu.ram", Address: 0x105, Bit: 0}); err != nil {
		t.Fatal(err)
	}
	var d sim.Time
	p := tlm.NewRead(0x105, 1)
	m.BTransport(p, &d)
	if p.Data[0]&1 != 1 {
		t.Error("stuck-at via adapter not visible")
	}
	if err := inj.Revert(Descriptor{Model: StuckAt1}); err != nil {
		t.Fatal(err)
	}
	q := tlm.NewRead(0x105, 1)
	m.BTransport(q, &d)
	if q.Data[0]&1 != 0 {
		t.Error("revert did not clear stuck-at")
	}
	if err := inj.Inject(Descriptor{Name: "x", Model: Open, Target: "ecu.ram"}); err == nil {
		t.Error("unsupported model on memory accepted")
	}
}

func TestNetInjectorAdapter(t *testing.T) {
	c := rtl.NewCircuit("c")
	a := c.Input("a")
	y := c.Buf(a)
	c.Output("y", y)
	e, err := rtl.NewEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	inj := NetInjector("c.mid", e, y)
	for _, tc := range []struct {
		m    Model
		want rtl.Logic
	}{
		{StuckAt0, rtl.L0}, {ShortToGround, rtl.L0},
		{StuckAt1, rtl.L1}, {ShortToSupply, rtl.L1},
		{Open, rtl.LX},
	} {
		if err := inj.Inject(Descriptor{Name: "f", Model: tc.m, Target: "c.mid"}); err != nil {
			t.Fatal(err)
		}
		e.SetInputNet(a, rtl.L1)
		e.Eval()
		if got := e.Value(y); got != tc.want {
			t.Errorf("%s: y = %s, want %s", tc.m, got, tc.want)
		}
		if err := inj.Revert(Descriptor{}); err != nil {
			t.Fatal(err)
		}
	}
	e.SetInputNet(a, rtl.L1)
	e.Eval()
	if got := e.Value(y); got != rtl.L1 {
		t.Errorf("after revert: y = %s", got)
	}
}

func TestSignalInjectorAdapter(t *testing.T) {
	k := sim.NewKernel()
	s := sim.NewSignal(k, "sig", 5.0)
	inj := SignalInjector("top.sig", s, 0.0, 12.0)
	if err := inj.Inject(Descriptor{Name: "f", Model: ShortToSupply, Target: "top.sig"}); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 12.0 {
		t.Errorf("forced = %v", s.Read())
	}
	if err := inj.Inject(Descriptor{Name: "f", Model: StuckAt0, Target: "top.sig"}); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 0.0 {
		t.Errorf("forced low = %v", s.Read())
	}
	if err := inj.Revert(Descriptor{}); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 5.0 {
		t.Errorf("released = %v", s.Read())
	}
	if err := inj.Inject(Descriptor{Name: "f", Model: Delay, Target: "top.sig"}); err == nil {
		t.Error("unsupported model accepted")
	}
}

type fakeAnalog struct {
	offset, override float64
}

func (f *fakeAnalog) SetDisturbance(offset, override float64) {
	f.offset, f.override = offset, override
}

func TestAnalogInjectorAdapter(t *testing.T) {
	v := &fakeAnalog{override: math.NaN()}
	inj := AnalogInjector("sensor.out", v, 0.0, 5.0)
	if err := inj.Inject(Descriptor{Name: "drift", Model: ValueOffset, Target: "sensor.out", Param: 0.3}); err != nil {
		t.Fatal(err)
	}
	if v.offset != 0.3 || !math.IsNaN(v.override) {
		t.Errorf("offset fault: %+v", v)
	}
	if err := inj.Inject(Descriptor{Name: "stg", Model: ShortToGround, Target: "sensor.out"}); err != nil {
		t.Fatal(err)
	}
	if v.override != 0.0 {
		t.Errorf("short to ground: %+v", v)
	}
	if err := inj.Inject(Descriptor{Name: "sts", Model: ShortToSupply, Target: "sensor.out"}); err != nil {
		t.Fatal(err)
	}
	if v.override != 5.0 {
		t.Errorf("short to supply: %+v", v)
	}
	if err := inj.Inject(Descriptor{Name: "open", Model: Open, Target: "sensor.out"}); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v.override, 1) {
		t.Errorf("open: %+v", v)
	}
	if err := inj.Revert(Descriptor{}); err != nil {
		t.Fatal(err)
	}
	if v.offset != 0 || !math.IsNaN(v.override) {
		t.Errorf("revert: %+v", v)
	}
}

// Property: Universe descriptors are unique by name and all validate.
func TestPropertyUniverseUnique(t *testing.T) {
	f := func(nSites uint8, modelSel uint8) bool {
		r := NewRegistry()
		n := int(nSites%10) + 1
		for i := 0; i < n; i++ {
			site := string(rune('a' + i))
			r.MustRegister(&FuncInjector{SiteName: site,
				Models:   []Model{StuckAt0, StuckAt1, BitFlip, Open},
				InjectFn: func(Descriptor) error { return nil }})
		}
		models := []Model{StuckAt0, StuckAt1, BitFlip, Open}[:modelSel%4+1]
		u := r.Universe(models, Permanent, 0, 0, 0)
		seen := map[string]bool{}
		for _, d := range u {
			if seen[d.Name] || d.Validate() != nil {
				return false
			}
			seen[d.Name] = true
		}
		return len(u) == n*len(models)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
