package fault

import (
	"testing"

	"repro/internal/sim"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"7ps", sim.PS(7)},
		{"500ns", sim.NS(500)},
		{"200us", sim.US(200)},
		{"10ms", sim.MS(10)},
		{"3s", sim.Sec(3)},
		{"1.5ms", sim.US(1500)},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "10", "ms", "-3ms", "x10ms", "10 ms"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func TestParseDescriptorPermanent(t *testing.T) {
	d, err := ParseDescriptor("stuck-at-1 @caps.accel0.harness from 10ms")
	if err != nil {
		t.Fatal(err)
	}
	if d.Model != StuckAt1 || d.Target != "caps.accel0.harness" ||
		d.Class != Permanent || d.Start != sim.MS(10) {
		t.Errorf("d = %+v", d)
	}
}

func TestParseDescriptorTransientAndIntermittent(t *testing.T) {
	d, err := ParseDescriptor("open @s from 5ms for 200us")
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != Transient || d.Duration != sim.US(200) {
		t.Errorf("d = %+v", d)
	}
	d, err = ParseDescriptor("open @s from 5ms for 200us every 2ms")
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != Intermittent || d.Period != sim.MS(2) {
		t.Errorf("d = %+v", d)
	}
}

func TestParseDescriptorFields(t *testing.T) {
	d, err := ParseDescriptor("bit-flip @ecu.mem addr 0x1004 bit 3 param 0.5 from 2ms")
	if err != nil {
		t.Fatal(err)
	}
	if d.Address != 0x1004 || d.Bit != 3 || d.Param != 0.5 {
		t.Errorf("d = %+v", d)
	}
}

func TestParseDescriptorErrors(t *testing.T) {
	bad := []string{
		"",
		"stuck-at-1",
		"frobnicate @s",
		"stuck-at-1 site",
		"stuck-at-1 @",
		"stuck-at-1 @s bit",
		"stuck-at-1 @s bit 99",
		"stuck-at-1 @s addr zz",
		"stuck-at-1 @s wibble 3",
		"stuck-at-1 @s every 2ms", // every without for
		"stuck-at-1 @s from xx",
	}
	for _, s := range bad {
		if _, err := ParseDescriptor(s); err == nil {
			t.Errorf("ParseDescriptor(%q) accepted", s)
		}
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("dual", "short-to-supply @a from 1ms; short-to-supply @b from 1ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 2 || sc.ID != "dual" {
		t.Fatalf("sc = %+v", sc)
	}
	if sc.Faults[0].Name == sc.Faults[1].Name {
		t.Error("fault names not unique")
	}
	if err := sc.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := ParseScenario("empty", " ; "); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := ParseScenario("bad", "nope @x"); err == nil {
		t.Error("bad chunk accepted")
	}
}

// Round trip: every model name parses back to its model.
func TestParseAllModelNames(t *testing.T) {
	for m, name := range modelNames {
		src := name + " @site from 1ms"
		if m == BitFlip || m == Delay {
			src += " for 1ms" // keep validation happy for any class rules
		}
		d, err := ParseDescriptor(src)
		if err != nil {
			t.Errorf("model %s: %v", name, err)
			continue
		}
		if d.Model != m {
			t.Errorf("model %s parsed as %s", name, d.Model)
		}
	}
}
