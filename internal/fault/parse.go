package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ParseDescriptor parses the textual fault description syntax used by
// the command-line tools — a formalized, human-writable rendition of
// the Sec. 3.3 fault/error description:
//
//	<model> @<site> [bit N] [addr X] [param F] [from D] [for D] [every D]
//
// where D is a duration like "10ms", "50us", "3s" and model is one of
// the Model names ("stuck-at-1", "bit-flip", "open", ...). "for"
// makes the fault transient; "every" (with "for") makes it
// intermittent; otherwise it is permanent. Examples:
//
//	stuck-at-1 @caps.accel0.harness from 10ms
//	bit-flip @ecu.mem addr 0x1004 bit 3 from 2ms
//	open @caps.accel1.harness from 5ms for 200us every 2ms
func ParseDescriptor(s string) (Descriptor, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return Descriptor{}, fmt.Errorf("fault: parse %q: want '<model> @<site> ...'", s)
	}
	var d Descriptor
	model, ok := modelByName(fields[0])
	if !ok {
		return Descriptor{}, fmt.Errorf("fault: parse %q: unknown model %q", s, fields[0])
	}
	d.Model = model
	if !strings.HasPrefix(fields[1], "@") || len(fields[1]) < 2 {
		return Descriptor{}, fmt.Errorf("fault: parse %q: second token must be @<site>", s)
	}
	d.Target = fields[1][1:]
	d.Name = fields[0] + "@" + d.Target

	i := 2
	var hasFor, hasEvery bool
	for i < len(fields) {
		key := fields[i]
		if i+1 >= len(fields) {
			return Descriptor{}, fmt.Errorf("fault: parse %q: %q needs a value", s, key)
		}
		val := fields[i+1]
		i += 2
		switch key {
		case "bit":
			n, err := strconv.ParseUint(val, 0, 8)
			if err != nil || n > 63 {
				return Descriptor{}, fmt.Errorf("fault: parse %q: bad bit %q", s, val)
			}
			d.Bit = uint(n)
		case "addr":
			n, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fault: parse %q: bad addr %q", s, val)
			}
			d.Address = n
		case "param":
			// NaN is rejected: a NaN parameter poisons descriptor
			// equality (dedup keys, journal replay cross-checks).
			// Infinities are fine — they round-trip and model open
			// lines.
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) {
				return Descriptor{}, fmt.Errorf("fault: parse %q: bad param %q", s, val)
			}
			d.Param = f
		case "from":
			t, err := ParseDuration(val)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fault: parse %q: %v", s, err)
			}
			d.Start = t
		case "for":
			t, err := ParseDuration(val)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fault: parse %q: %v", s, err)
			}
			d.Duration = t
			hasFor = true
		case "every":
			t, err := ParseDuration(val)
			if err != nil {
				return Descriptor{}, fmt.Errorf("fault: parse %q: %v", s, err)
			}
			d.Period = t
			hasEvery = true
		default:
			return Descriptor{}, fmt.Errorf("fault: parse %q: unknown keyword %q", s, key)
		}
	}
	switch {
	case hasEvery && hasFor:
		d.Class = Intermittent
	case hasEvery:
		return Descriptor{}, fmt.Errorf("fault: parse %q: 'every' requires 'for'", s)
	case hasFor:
		d.Class = Transient
	default:
		d.Class = Permanent
	}
	if err := d.Validate(); err != nil {
		return Descriptor{}, err
	}
	return d, nil
}

// Syntax renders the descriptor in the ParseDescriptor syntax, the
// inverse direction of the parser: for any descriptor ParseDescriptor
// produced, ParseDescriptor(d.Syntax()) reproduces it exactly. The
// FuzzDescriptor target pins this round-trip down.
func (d Descriptor) Syntax() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s @%s", d.Model, d.Target)
	if d.Bit != 0 {
		fmt.Fprintf(&b, " bit %d", d.Bit)
	}
	if d.Address != 0 {
		fmt.Fprintf(&b, " addr %#x", d.Address)
	}
	if d.Param != 0 {
		fmt.Fprintf(&b, " param %s", strconv.FormatFloat(d.Param, 'g', -1, 64))
	}
	if d.Start != 0 {
		fmt.Fprintf(&b, " from %dps", uint64(d.Start))
	}
	switch d.Class {
	case Transient:
		fmt.Fprintf(&b, " for %dps", uint64(d.Duration))
	case Intermittent:
		fmt.Fprintf(&b, " for %dps every %dps", uint64(d.Duration), uint64(d.Period))
	}
	return b.String()
}

// ParseScenario parses a semicolon-separated list of fault
// descriptions into one scenario.
func ParseScenario(id, s string) (Scenario, error) {
	sc := Scenario{ID: id}
	for _, chunk := range strings.Split(s, ";") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		d, err := ParseDescriptor(chunk)
		if err != nil {
			return Scenario{}, err
		}
		d.Name = fmt.Sprintf("%s#%d", d.Name, len(sc.Faults))
		sc.Faults = append(sc.Faults, d)
	}
	if len(sc.Faults) == 0 {
		return Scenario{}, fmt.Errorf("fault: scenario %q is empty", id)
	}
	return sc, nil
}

// ParseDuration parses "10ms", "200us", "3s", "500ns", "7ps" into
// simulated time.
func ParseDuration(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		unit   sim.Time
	}{
		{"ps", sim.Picosecond}, {"ns", sim.Nanosecond}, {"us", sim.Microsecond},
		{"ms", sim.Millisecond}, {"s", sim.Second},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			num := strings.TrimSuffix(s, u.suffix)
			if num == "" {
				continue
			}
			// Two-letter suffixes are tried before "s", so "10ms"
			// never reaches the "s" arm with num "10m"; a malformed
			// numeral simply fails ParseFloat below.
			// Reject NaN and anything whose picosecond value would
			// overflow the float→uint64 conversion (implementation-
			// specific past 2^63); 2^62 ps is ~53 days of simulated
			// time, far beyond any horizon.
			n, err := strconv.ParseFloat(num, 64)
			if err != nil || math.IsNaN(n) || n < 0 || n > float64(uint64(1)<<62)/float64(u.unit) {
				return 0, fmt.Errorf("fault: bad duration %q", s)
			}
			return sim.Time(n * float64(u.unit)), nil
		}
	}
	return 0, fmt.Errorf("fault: bad duration %q (want e.g. 10ms, 200us)", s)
}

// modelByName resolves a model name (as printed by Model.String).
func modelByName(name string) (Model, bool) {
	for m, s := range modelNames {
		if s == name {
			return m, true
		}
	}
	return 0, false
}
