package fault

import "testing"

// FuzzDescriptor is the parser/printer round-trip contract: any
// descriptor ParseDescriptor accepts must survive Syntax→ParseDescriptor
// unchanged (struct equality), and must pass Validate. A violation
// means journals, dedup keys or command-line replays could silently
// drift from the campaign that produced them.
func FuzzDescriptor(f *testing.F) {
	seeds := []string{
		"stuck-at-1 @caps.accel0.harness from 10ms",
		"bit-flip @ecu.mem addr 0x1004 bit 3 from 2ms",
		"open @caps.accel1.harness from 5ms for 200us every 2ms",
		"value-offset @caps.accel0.out param 0.5 from 1ms",
		"delay @ecu.bus param 1500 from 7us for 3us",
		"short-to-ground @x param +Inf",
		"stuck-at-0 @a bit 63 addr 0xffffffffffffffff from 4611686018427387ps",
		"babbling @net.can0 for 1ps every 2ps",
		"value-noise @s param -0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 4096 {
			return
		}
		d, err := ParseDescriptor(s)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("parse accepted invalid descriptor %+v from %q: %v", d, s, err)
		}
		syn := d.Syntax()
		d2, err := ParseDescriptor(syn)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", syn, s, err)
		}
		if d != d2 {
			t.Fatalf("round-trip changed descriptor:\n in: %q\nsyn: %q\n d1: %+v\n d2: %+v", s, syn, d, d2)
		}
	})
}
