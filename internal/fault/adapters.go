package fault

import (
	"fmt"
	"math"

	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/tlm"
)

// MemoryInjector serves bit-level faults on a tlm.Memory: BitFlip uses
// the SEU backdoor, StuckAt0/1 install permanent cell defects.
func MemoryInjector(site string, m *tlm.Memory) Injector {
	return &FuncInjector{
		SiteName: site,
		Models:   []Model{BitFlip, StuckAt0, StuckAt1},
		InjectFn: func(d Descriptor) error {
			switch d.Model {
			case BitFlip:
				return m.FlipBit(d.Address, d.Bit)
			case StuckAt0:
				return m.StuckAt(d.Address, d.Bit, false)
			case StuckAt1:
				return m.StuckAt(d.Address, d.Bit, true)
			default:
				return fmt.Errorf("fault: %s on memory site %s", d.Model, site)
			}
		},
		RevertFn: func(d Descriptor) error {
			switch d.Model {
			case StuckAt0, StuckAt1:
				m.ClearFaults()
			case BitFlip:
				// A flip is a state change, not a persistent fault —
				// nothing to revert.
			}
			return nil
		},
	}
}

// NetInjector serves stuck-at/open faults on one net of an rtl
// evaluator.
func NetInjector(site string, e *rtl.Evaluator, n rtl.Net) Injector {
	return &FuncInjector{
		SiteName: site,
		Models:   []Model{StuckAt0, StuckAt1, Open, ShortToGround, ShortToSupply},
		InjectFn: func(d Descriptor) error {
			switch d.Model {
			case StuckAt0, ShortToGround:
				e.InjectFault(n, rtl.FaultStuckAt0)
			case StuckAt1, ShortToSupply:
				e.InjectFault(n, rtl.FaultStuckAt1)
			case Open:
				e.InjectFault(n, rtl.FaultOpen)
			default:
				return fmt.Errorf("fault: %s on net site %s", d.Model, site)
			}
			return nil
		},
		RevertFn: func(d Descriptor) error {
			e.ClearFaults()
			return nil
		},
	}
}

// SignalInjector serves stuck/short faults on a kernel signal via
// Force/Release — the saboteur pattern. lowVal and highVal are the
// forced values for the 0/1 rails of the signal's value type.
func SignalInjector[T comparable](site string, s *sim.Signal[T], lowVal, highVal T) Injector {
	return &FuncInjector{
		SiteName: site,
		Models:   []Model{StuckAt0, StuckAt1, ShortToGround, ShortToSupply},
		InjectFn: func(d Descriptor) error {
			switch d.Model {
			case StuckAt0, ShortToGround:
				s.Force(lowVal)
			case StuckAt1, ShortToSupply:
				s.Force(highVal)
			default:
				return fmt.Errorf("fault: %s on signal site %s", d.Model, site)
			}
			return nil
		},
		RevertFn: func(d Descriptor) error {
			s.Release()
			return nil
		},
	}
}

// AnalogValue is implemented by models exposing a perturbable analog
// quantity (sensor outputs, supply rails).
type AnalogValue interface {
	// SetDisturbance installs an additive offset and a hard override.
	// NaN for override means "no override" (offset applies);
	// offset 0 and NaN override means fault-free.
	SetDisturbance(offset float64, override float64)
}

// AnalogInjector serves analog faults (offset, shorts, open) on an
// AnalogValue site. Shorts override the value to the given rail
// levels; open overrides to NaN handled by the model as "no signal".
func AnalogInjector(site string, v AnalogValue, groundLevel, supplyLevel float64) Injector {
	return &FuncInjector{
		SiteName: site,
		Models:   []Model{ValueOffset, ShortToGround, ShortToSupply, Open, StuckAt0, StuckAt1},
		InjectFn: func(d Descriptor) error {
			switch d.Model {
			case ValueOffset:
				v.SetDisturbance(d.Param, math.NaN())
			case ShortToGround, StuckAt0:
				v.SetDisturbance(0, groundLevel)
			case ShortToSupply, StuckAt1:
				v.SetDisturbance(0, supplyLevel)
			case Open:
				v.SetDisturbance(0, math.Inf(1)) // sentinel: line floating
			default:
				return fmt.Errorf("fault: %s on analog site %s", d.Model, site)
			}
			return nil
		},
		RevertFn: func(d Descriptor) error {
			v.SetDisturbance(0, math.NaN())
			return nil
		},
	}
}
