package fault

import "fmt"

// Classification is the outcome of one fault-injected simulation run,
// following the fault→error→failure chain: a fault may never activate,
// activate but be masked, be caught by a safety mechanism, corrupt an
// output silently, break timing, or violate a safety goal outright.
// DESIGN.md §5 defines the exact semantics; every campaign in this
// repository reports these classes.
type Classification uint8

const (
	// NoEffect: the fault was never activated (site not exercised).
	NoEffect Classification = iota
	// Masked: activated, but the error never reached an observed
	// output (logical/architectural masking).
	Masked
	// Latent: an error is stored in state but has not become visible.
	Latent
	// DetectedSafe: a safety mechanism detected and handled the error;
	// the system reached or stayed in a safe state.
	DetectedSafe
	// SDC: silent data corruption — a wrong value at an observed
	// output with no detection.
	SDC
	// TimingViolation: correct values, but a deadline was missed
	// ("the right value at the wrong time can still be an error").
	TimingViolation
	// SafetyCritical: a stated safety goal was violated (e.g.
	// inadvertent airbag deployment).
	SafetyCritical
	// Timeout: the simulation run itself exceeded its wall-clock
	// budget and was abandoned — an infrastructure outcome, not a DUT
	// classification. A campaign records it and continues
	// (StopOnFirst ignores it), but Severity ranks it worst: a run
	// that could not be classified must be treated conservatively.
	Timeout
)

var classificationNames = [...]string{
	NoEffect:        "no-effect",
	Masked:          "masked",
	Latent:          "latent",
	DetectedSafe:    "detected-safe",
	SDC:             "sdc",
	TimingViolation: "timing-violation",
	SafetyCritical:  "safety-critical",
	Timeout:         "timeout",
}

// ParseClassification resolves a classification name as printed by
// String — the journal's on-disk outcome encoding.
func ParseClassification(name string) (Classification, bool) {
	for c, s := range classificationNames {
		if s == name {
			return Classification(c), true
		}
	}
	return 0, false
}

// String names the classification.
func (c Classification) String() string {
	if int(c) < len(classificationNames) {
		return classificationNames[c]
	}
	return fmt.Sprintf("Classification(%d)", uint8(c))
}

// Severity orders classifications by how bad they are for the safety
// case (higher is worse). DetectedSafe ranks below Latent: a detected
// and handled error is the design working as intended.
func (c Classification) Severity() int {
	switch c {
	case NoEffect:
		return 0
	case Masked:
		return 1
	case DetectedSafe:
		return 2
	case Latent:
		return 3
	case SDC:
		return 4
	case TimingViolation:
		return 5
	case SafetyCritical:
		return 6
	case Timeout:
		return 7
	default:
		return -1
	}
}

// IsFailure reports whether the run ended in an unhandled failure
// (SDC, timing violation or safety-goal violation).
func (c Classification) IsFailure() bool {
	return c == SDC || c == TimingViolation || c == SafetyCritical
}

// IsDangerous reports whether the fault outcome counts as dangerous
// for FMEDA purposes (failures plus latent errors).
func (c Classification) IsDangerous() bool {
	return c.IsFailure() || c == Latent
}

// Outcome is the record of one injected scenario.
type Outcome struct {
	// Scenario is the injected fault set.
	Scenario Scenario
	// Class is the resulting classification.
	Class Classification
	// Detail is a human-readable explanation (first detection site,
	// mismatching output, violated goal).
	Detail string
	// Signature is the outcome's 64-bit equivalence-class fingerprint:
	// the final-state digest of the run (sim.StateSignature at the
	// horizon) folded with the classification. Zero means "not
	// computed" — plain RunFuncs leave it unset; the signature-aware
	// runners and the adaptive campaign engine populate it. Two
	// outcomes with equal non-zero signatures are behaviorally
	// equivalent: same classification, same final state.
	Signature uint64
}

// Tally counts outcomes per classification — the row format of most
// experiment tables.
type Tally map[Classification]int

// Add increments the count for an outcome's class.
func (t Tally) Add(o Outcome) { t[o.Class]++ }

// Total sums all counts.
func (t Tally) Total() int {
	n := 0
	for _, v := range t {
		n += v
	}
	return n
}

// Failures sums the unhandled-failure classes.
func (t Tally) Failures() int {
	return t[SDC] + t[TimingViolation] + t[SafetyCritical]
}

// String renders the tally in severity order.
func (t Tally) String() string {
	out := ""
	for c := NoEffect; c <= Timeout; c++ {
		if n, ok := t[c]; ok && n > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", c, n)
		}
	}
	if out == "" {
		return "empty"
	}
	return out
}
