package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Injector executes fault descriptors at one injection site. The
// paper's requirement (Sec. 3.3): injectors "provide an interface to
// change the stimuli in the testbench or modify the state or state
// transitions at different positions in the DUT" while "the design
// should not be changed" — implementations wrap Force/Release hooks,
// memory backdoors or stimulus filters rather than editing models.
type Injector interface {
	// Site is the hierarchical injection-site name this injector
	// serves.
	Site() string
	// Supports reports whether the injector can realize the model.
	Supports(m Model) bool
	// Inject activates the fault described by d.
	Inject(d Descriptor) error
	// Revert deactivates the fault (end of a transient window).
	// Reverting an inactive fault is a no-op.
	Revert(d Descriptor) error
}

// FuncInjector adapts closures to the Injector interface.
type FuncInjector struct {
	SiteName string
	Models   []Model
	InjectFn func(d Descriptor) error
	RevertFn func(d Descriptor) error
}

// Site implements Injector.
func (f *FuncInjector) Site() string { return f.SiteName }

// Supports implements Injector.
func (f *FuncInjector) Supports(m Model) bool {
	for _, s := range f.Models {
		if s == m {
			return true
		}
	}
	return false
}

// Inject implements Injector.
func (f *FuncInjector) Inject(d Descriptor) error {
	if !f.Supports(d.Model) {
		return fmt.Errorf("fault: site %s does not support %s", f.SiteName, d.Model)
	}
	return f.InjectFn(d)
}

// Revert implements Injector.
func (f *FuncInjector) Revert(d Descriptor) error {
	if f.RevertFn == nil {
		return nil
	}
	return f.RevertFn(d)
}

// Registry resolves descriptor targets to injectors — the wiring the
// stressor uses. Sites are unique; registering a duplicate site is an
// elaboration bug.
type Registry struct {
	sites map[string]Injector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{sites: make(map[string]Injector)}
}

// Register adds an injector.
func (r *Registry) Register(inj Injector) error {
	site := inj.Site()
	if _, dup := r.sites[site]; dup {
		return fmt.Errorf("fault: duplicate injection site %q", site)
	}
	r.sites[site] = inj
	return nil
}

// MustRegister is Register that panics (elaboration-time use).
func (r *Registry) MustRegister(inj Injector) {
	if err := r.Register(inj); err != nil {
		panic(err)
	}
}

// Lookup resolves a site name.
func (r *Registry) Lookup(site string) (Injector, bool) {
	inj, ok := r.sites[site]
	return inj, ok
}

// Sites lists registered site names, sorted (deterministic fault-space
// enumeration).
func (r *Registry) Sites() []string {
	out := make([]string, 0, len(r.sites))
	for s := range r.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Inject resolves and executes a descriptor.
func (r *Registry) Inject(d Descriptor) error {
	inj, ok := r.sites[d.Target]
	if !ok {
		return fmt.Errorf("fault: no injector for site %q (fault %s)", d.Target, d.Name)
	}
	return inj.Inject(d)
}

// Revert resolves and deactivates a descriptor.
func (r *Registry) Revert(d Descriptor) error {
	inj, ok := r.sites[d.Target]
	if !ok {
		return fmt.Errorf("fault: no injector for site %q (fault %s)", d.Target, d.Name)
	}
	return inj.Revert(d)
}

// Universe enumerates the full single-fault space over the registry:
// for every site, every supported model from the given list, one
// descriptor. It is the exhaustive fault list of experiment E8.
func (r *Registry) Universe(models []Model, class Class, start, duration, period sim.Time) []Descriptor {
	var out []Descriptor
	for _, site := range r.Sites() {
		inj := r.sites[site]
		for _, m := range models {
			if !inj.Supports(m) {
				continue
			}
			out = append(out, Descriptor{
				Name:     fmt.Sprintf("%s/%s", site, m),
				Model:    m,
				Class:    class,
				Target:   site,
				Start:    start,
				Duration: duration,
				Period:   period,
			})
		}
	}
	return out
}
