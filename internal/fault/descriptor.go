// Package fault defines the formal fault/error description the paper
// calls for in Sec. 3.3 ("these fault models should be available in a
// formalized form to enable automatic configuration/generation of the
// error injectors") plus the injector interfaces that realize them and
// the fault→error→failure outcome classification used throughout the
// repository.
//
// A Descriptor is a machine-readable fault: what physical/logical
// effect (Model), its persistence (Class), which system domain it
// lives in (Domain), where to inject it (Target, a hierarchical
// injection-site name resolved through a Registry), and when
// (Start/Duration). Mission profiles derive Descriptors from
// environmental stresses; the stressor schedules them; injectors
// execute them.
package fault

import (
	"fmt"

	"repro/internal/sim"
)

// Model enumerates fault models across abstraction levels — the ASIC
// fabrication-test models (stuck-at, open, short) the paper notes are
// available at low level, plus the higher-level equivalents it says
// are missing and that this framework provides.
type Model uint8

const (
	// StuckAt0 forces the target to logic 0 / zero value.
	StuckAt0 Model = iota
	// StuckAt1 forces the target to logic 1 / all-ones value.
	StuckAt1
	// BitFlip inverts one stored bit once (single-event upset).
	BitFlip
	// Open disconnects a wire; the target reads as unknown/floating.
	Open
	// ShortToGround ties an (analog or digital) line to ground.
	ShortToGround
	// ShortToSupply ties a line to the supply rail.
	ShortToSupply
	// Delay adds latency to an operation without corrupting its value
	// ("the right value at the wrong time can still be an error").
	Delay
	// ValueOffset perturbs an analog quantity by Param (sensor drift).
	ValueOffset
	// ValueNoise adds bounded random noise of amplitude Param.
	ValueNoise
	// Omission drops a communication message entirely.
	Omission
	// Corruption alters the payload of a communication message.
	Corruption
	// Babbling makes a node transmit uncontrolledly (babbling idiot).
	Babbling
)

var modelNames = map[Model]string{
	StuckAt0: "stuck-at-0", StuckAt1: "stuck-at-1", BitFlip: "bit-flip",
	Open: "open", ShortToGround: "short-to-ground", ShortToSupply: "short-to-supply",
	Delay: "delay", ValueOffset: "value-offset", ValueNoise: "value-noise",
	Omission: "omission", Corruption: "corruption", Babbling: "babbling",
}

// String names the fault model.
func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// Class is the persistence class of a fault.
type Class uint8

const (
	// Permanent faults stay active from Start on (Duration ignored).
	Permanent Class = iota
	// Transient faults are active for one window [Start, Start+Duration).
	Transient
	// Intermittent faults toggle: active Duration, inactive Period-
	// Duration, repeating from Start.
	Intermittent
)

// String names the persistence class.
func (c Class) String() string {
	switch c {
	case Permanent:
		return "permanent"
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Domain is the system domain a fault lives in (Sec. 3.4: "errors
// affect various different domains, e.g., digital hardware, analog
// hardware and software").
type Domain uint8

const (
	// DigitalHW covers gates, registers, memories.
	DigitalHW Domain = iota
	// AnalogHW covers sensors, drivers, supplies, wiring harnesses.
	AnalogHW
	// Software covers task state, variables, control flow.
	Software
	// Communication covers buses and networks.
	Communication
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DigitalHW:
		return "digital-hw"
	case AnalogHW:
		return "analog-hw"
	case Software:
		return "software"
	case Communication:
		return "communication"
	default:
		return fmt.Sprintf("Domain(%d)", uint8(d))
	}
}

// Descriptor is one formalized fault/error: the unit the mission-
// profile derivation emits, the stressor schedules and an injector
// executes.
type Descriptor struct {
	// Name is a unique scenario-local identifier.
	Name string
	// Model is the fault effect.
	Model Model
	// Class is the persistence.
	Class Class
	// Domain is the affected system domain.
	Domain Domain
	// Target names the injection site, resolved via a Registry
	// (e.g. "caps.accel0.out" or "ecu.mem").
	Target string
	// Bit selects the affected bit for bit-level models.
	Bit uint
	// Address selects the affected cell for memory models.
	Address uint64
	// Param carries the model parameter: delay in picoseconds for
	// Delay, offset/amplitude for analog models.
	Param float64
	// Start is when the fault activates.
	Start sim.Time
	// Duration is the active window for Transient/Intermittent faults.
	Duration sim.Time
	// Period is the repeat interval for Intermittent faults.
	Period sim.Time
	// Rate is the assumed failure rate in FIT (failures per 1e9 h),
	// used by FMEDA weighting and probabilistic campaigns.
	Rate float64
}

// String renders a compact description.
func (d Descriptor) String() string {
	return fmt.Sprintf("%s: %s %s on %s @%s", d.Name, d.Class, d.Model, d.Target, d.Start)
}

// Validate reports structural problems with the descriptor.
func (d Descriptor) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("fault: descriptor without name")
	case d.Target == "":
		return fmt.Errorf("fault %s: no target", d.Name)
	case d.Class == Transient && d.Duration == 0:
		return fmt.Errorf("fault %s: transient with zero duration", d.Name)
	case d.Class == Intermittent && (d.Duration == 0 || d.Period <= d.Duration):
		return fmt.Errorf("fault %s: intermittent needs period > duration > 0", d.Name)
	case d.Bit > 63:
		return fmt.Errorf("fault %s: bit %d out of range", d.Name, d.Bit)
	}
	return nil
}

// Scenario is an ordered set of faults injected together in one
// simulation run. Single-fault scenarios dominate ISO 26262 single-
// point analysis; multi-fault scenarios cover latent/dual-point
// analysis.
type Scenario struct {
	// ID identifies the scenario within a campaign.
	ID string
	// Faults are the descriptors to inject.
	Faults []Descriptor
}

// Validate checks every contained descriptor.
func (s Scenario) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("fault: scenario without ID")
	}
	for _, d := range s.Faults {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.ID, err)
		}
	}
	return nil
}

// Single wraps one descriptor in a scenario named after it.
func Single(d Descriptor) Scenario {
	return Scenario{ID: d.Name, Faults: []Descriptor{d}}
}

// Singles wraps each descriptor of a universe in its own single-fault
// scenario — the standard shape of an exhaustive SEU campaign.
func Singles(ds []Descriptor) []Scenario {
	out := make([]Scenario, len(ds))
	for i, d := range ds {
		out[i] = Single(d)
	}
	return out
}
