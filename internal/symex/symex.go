// Package symex implements concolic (concrete + symbolic) execution
// for MDL models: it runs a function on concrete inputs while shadowing
// every value with a symbolic expression, collects the path condition,
// and generates new inputs by negating branch decisions and solving
// the resulting constraints (linear constraints exactly, everything
// else by directed fallback).
//
// This realizes the paper's Sec. 3.4 research challenge: "For errors
// that are hard to propagate, formal approaches such as symbolic
// execution [41, 42] might be necessary to generate stimuli to bypass
// the protection mechanisms", and reference [20]'s constraint-based
// automatic test generation from surviving mutants.
package symex

import (
	"fmt"

	"repro/internal/mdl"
)

// Sym is a symbolic expression over the function's inputs.
type Sym interface {
	sym()
	String() string
}

// SConst is a literal.
type SConst struct{ V int64 }

// SInput is the i-th function input.
type SInput struct {
	Name string
	Idx  int
}

// SBin is an operator application.
type SBin struct {
	Op   mdl.TokKind
	L, R Sym
}

// SUn is a unary operator application.
type SUn struct {
	Op mdl.TokKind
	X  Sym
}

func (*SConst) sym() {}
func (*SInput) sym() {}
func (*SBin) sym()   {}
func (*SUn) sym()    {}

// String renders the expression.
func (s *SConst) String() string { return fmt.Sprint(s.V) }

// String renders the expression.
func (s *SInput) String() string { return s.Name }

// String renders the expression.
func (s *SBin) String() string {
	return "(" + s.L.String() + " " + s.Op.String() + " " + s.R.String() + ")"
}

// String renders the expression.
func (s *SUn) String() string { return s.Op.String() + s.X.String() }

// Branch is one recorded path decision.
type Branch struct {
	// StmtID is the if/while statement taken.
	StmtID mdl.NodeID
	// Cond is the symbolic condition (of the un-negated source text).
	Cond Sym
	// Taken is the concrete direction.
	Taken bool
}

// PathResult is one concolic run.
type PathResult struct {
	Inputs   []int64
	Output   int64
	Err      error
	Branches []Branch
	// Covered lists executed statement IDs.
	Covered map[mdl.NodeID]bool
}

// value pairs a concrete value with its symbolic shadow.
type value struct {
	c int64
	s Sym
}

// interp is the concolic interpreter (mirrors mdl's semantics).
type interp struct {
	prog     *mdl.Program
	res      *PathResult
	steps    int
	maxSteps int
}

type runtimeErr struct{ error }

type returned struct{ v value }

func (returned) Error() string { return "return" }

// Run executes fn concolically on the given inputs.
func Run(p *mdl.Program, fn string, inputs []int64) (*PathResult, error) {
	f, ok := p.Funcs[fn]
	if !ok {
		return nil, fmt.Errorf("symex: no function %q", fn)
	}
	if len(inputs) != len(f.Params) {
		return nil, fmt.Errorf("symex: %s expects %d inputs, got %d", fn, len(f.Params), len(inputs))
	}
	res := &PathResult{Inputs: append([]int64(nil), inputs...), Covered: map[mdl.NodeID]bool{}}
	in := &interp{prog: p, res: res, maxSteps: mdl.DefaultMaxSteps}
	env := map[string]value{}
	for i, name := range f.Params {
		env[name] = value{c: inputs[i], s: &SInput{Name: name, Idx: i}}
	}
	out, err := in.runFunc(f, env)
	if err != nil {
		res.Err = err
	} else {
		res.Output = out.c
	}
	return res, nil
}

func (in *interp) tick() error {
	in.steps++
	if in.steps > in.maxSteps {
		return runtimeErr{fmt.Errorf("symex: step budget exceeded")}
	}
	return nil
}

func (in *interp) runFunc(f *mdl.Func, env map[string]value) (value, error) {
	err := in.block(f.Body, env)
	if r, ok := err.(returned); ok {
		return r.v, nil
	}
	if err != nil {
		return value{}, err
	}
	return value{c: 0, s: &SConst{V: 0}}, nil
}

func (in *interp) block(stmts []mdl.Stmt, env map[string]value) error {
	for _, s := range stmts {
		if err := in.stmt(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) stmt(s mdl.Stmt, env map[string]value) error {
	if err := in.tick(); err != nil {
		return err
	}
	in.res.Covered[s.ID()] = true
	switch st := s.(type) {
	case *mdl.Let:
		v, err := in.eval(st.E, env)
		if err != nil {
			return err
		}
		env[st.Name] = v
		return nil
	case *mdl.Assign:
		if _, ok := env[st.Name]; !ok {
			return runtimeErr{fmt.Errorf("symex: assignment to undeclared %q", st.Name)}
		}
		v, err := in.eval(st.E, env)
		if err != nil {
			return err
		}
		env[st.Name] = v
		return nil
	case *mdl.If:
		c, err := in.branch(st.NID, st.Cond, env)
		if err != nil {
			return err
		}
		if c {
			return in.block(st.Then, env)
		}
		return in.block(st.Else, env)
	case *mdl.While:
		for {
			c, err := in.branch(st.NID, st.Cond, env)
			if err != nil {
				return err
			}
			if !c {
				return nil
			}
			if err := in.block(st.Body, env); err != nil {
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
	case *mdl.Return:
		v, err := in.eval(st.E, env)
		if err != nil {
			return err
		}
		return returned{v: v}
	default:
		return runtimeErr{fmt.Errorf("symex: unknown statement %T", s)}
	}
}

// branch evaluates a condition and records the decision.
func (in *interp) branch(id mdl.NodeID, cond mdl.Expr, env map[string]value) (bool, error) {
	v, err := in.eval(cond, env)
	if err != nil {
		return false, err
	}
	taken := v.c != 0
	in.res.Branches = append(in.res.Branches, Branch{StmtID: id, Cond: v.s, Taken: taken})
	return taken, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (in *interp) eval(x mdl.Expr, env map[string]value) (value, error) {
	if err := in.tick(); err != nil {
		return value{}, err
	}
	switch ex := x.(type) {
	case *mdl.IntLit:
		return value{c: ex.Val, s: &SConst{V: ex.Val}}, nil
	case *mdl.BoolLit:
		return value{c: b2i(ex.Val), s: &SConst{V: b2i(ex.Val)}}, nil
	case *mdl.VarRef:
		v, ok := env[ex.Name]
		if !ok {
			return value{}, runtimeErr{fmt.Errorf("symex: undefined %q", ex.Name)}
		}
		return v, nil
	case *mdl.Unary:
		v, err := in.eval(ex.X, env)
		if err != nil {
			return value{}, err
		}
		switch ex.Op {
		case mdl.TokNot:
			return value{c: b2i(v.c == 0), s: &SUn{Op: mdl.TokNot, X: v.s}}, nil
		case mdl.TokMinus:
			return value{c: -v.c, s: &SUn{Op: mdl.TokMinus, X: v.s}}, nil
		}
		return value{}, runtimeErr{fmt.Errorf("symex: bad unary %s", ex.Op)}
	case *mdl.Call:
		f, ok := in.prog.Funcs[ex.Name]
		if !ok {
			return value{}, runtimeErr{fmt.Errorf("symex: no function %q", ex.Name)}
		}
		if len(ex.Args) != len(f.Params) {
			return value{}, runtimeErr{fmt.Errorf("symex: arity mismatch calling %q", ex.Name)}
		}
		callEnv := map[string]value{}
		for i, a := range ex.Args {
			v, err := in.eval(a, env)
			if err != nil {
				return value{}, err
			}
			callEnv[f.Params[i]] = v
		}
		return in.runFunc(f, callEnv)
	case *mdl.Binary:
		// Short-circuit logicals keep path conditions precise.
		if ex.Op == mdl.TokAndAnd || ex.Op == mdl.TokOrOr {
			l, err := in.eval(ex.L, env)
			if err != nil {
				return value{}, err
			}
			if ex.Op == mdl.TokAndAnd && l.c == 0 {
				return value{c: 0, s: &SBin{Op: ex.Op, L: l.s, R: &SConst{V: 0}}}, nil
			}
			if ex.Op == mdl.TokOrOr && l.c != 0 {
				return value{c: 1, s: &SBin{Op: ex.Op, L: l.s, R: &SConst{V: 1}}}, nil
			}
			r, err := in.eval(ex.R, env)
			if err != nil {
				return value{}, err
			}
			return value{c: b2i(r.c != 0), s: &SBin{Op: ex.Op, L: l.s, R: r.s}}, nil
		}
		l, err := in.eval(ex.L, env)
		if err != nil {
			return value{}, err
		}
		r, err := in.eval(ex.R, env)
		if err != nil {
			return value{}, err
		}
		var c int64
		switch ex.Op {
		case mdl.TokPlus:
			c = l.c + r.c
		case mdl.TokMinus:
			c = l.c - r.c
		case mdl.TokStar:
			c = l.c * r.c
		case mdl.TokSlash:
			if r.c == 0 {
				return value{}, runtimeErr{fmt.Errorf("symex: division by zero")}
			}
			c = l.c / r.c
		case mdl.TokPercent:
			if r.c == 0 {
				return value{}, runtimeErr{fmt.Errorf("symex: modulo by zero")}
			}
			c = l.c % r.c
		case mdl.TokLT:
			c = b2i(l.c < r.c)
		case mdl.TokLE:
			c = b2i(l.c <= r.c)
		case mdl.TokGT:
			c = b2i(l.c > r.c)
		case mdl.TokGE:
			c = b2i(l.c >= r.c)
		case mdl.TokEQ:
			c = b2i(l.c == r.c)
		case mdl.TokNE:
			c = b2i(l.c != r.c)
		default:
			return value{}, runtimeErr{fmt.Errorf("symex: bad op %s", ex.Op)}
		}
		return value{c: c, s: &SBin{Op: ex.Op, L: l.s, R: r.s}}, nil
	default:
		return value{}, runtimeErr{fmt.Errorf("symex: unknown expr %T", x)}
	}
}
