package symex

import (
	"fmt"
	"sort"

	"repro/internal/mdl"
	"repro/internal/mutation"
)

// Exploration is the result of a concolic search.
type Exploration struct {
	// Corpus is the deduplicated set of generated input vectors, in
	// discovery order (the seed first).
	Corpus [][]int64
	// Covered is the union of statement IDs executed.
	Covered map[mdl.NodeID]bool
	// Runs is the number of concolic executions performed.
	Runs int
}

// CoverageFraction reports covered statements over all statements of
// the program.
func (e *Exploration) CoverageFraction(p *mdl.Program) float64 {
	all := mdl.CollectStmtIDs(p)
	if len(all) == 0 {
		return 1
	}
	n := 0
	for _, id := range all {
		if e.Covered[id] {
			n++
		}
	}
	return float64(n) / float64(len(all))
}

// Explore runs generational concolic search from a seed input: each
// executed path contributes branch-negation candidates; candidates
// that verify symbolically are executed in turn, until the run budget
// is exhausted or no frontier remains. The search is deterministic.
func Explore(p *mdl.Program, fn string, seed []int64, budget int) (*Exploration, error) {
	ex := &Exploration{Covered: map[mdl.NodeID]bool{}}
	seen := map[string]bool{}
	key := func(in []int64) string { return fmt.Sprint(in) }

	queue := [][]int64{append([]int64(nil), seed...)}
	seen[key(seed)] = true

	for len(queue) > 0 && ex.Runs < budget {
		inputs := queue[0]
		queue = queue[1:]
		res, err := Run(p, fn, inputs)
		if err != nil {
			return nil, err
		}
		ex.Runs++
		ex.Corpus = append(ex.Corpus, inputs)
		for id := range res.Covered {
			ex.Covered[id] = true
		}
		// Generational expansion: negate every branch of the path.
		var children [][]int64
		for _, br := range res.Branches {
			children = append(children, solveBranch(br, inputs)...)
		}
		// Deterministic order.
		sort.Slice(children, func(i, j int) bool {
			return key(children[i]) < key(children[j])
		})
		for _, c := range children {
			k := key(c)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, c)
			}
		}
	}
	return ex, nil
}

// ExtendSuite uses concolic exploration to kill surviving mutants —
// the constraint-based automatic test generation of reference [20]:
// the corpus of path-splitting inputs is replayed against every
// surviving mutant, and any input whose mutant output differs from
// the golden output joins the suite.
func ExtendSuite(p *mdl.Program, fn string, tests []mutation.Test, seed []int64, budget int) ([]mutation.Test, *mutation.Report, error) {
	before, err := mutation.Qualify(p, tests)
	if err != nil {
		return nil, nil, err
	}
	if len(before.Survivors()) == 0 {
		return tests, before, nil
	}
	ex, err := Explore(p, fn, seed, budget)
	if err != nil {
		return nil, nil, err
	}

	golden := mdl.NewInterp(p)
	goldenOut := make([]int64, len(ex.Corpus))
	goldenErr := make([]bool, len(ex.Corpus))
	for i, in := range ex.Corpus {
		v, err := golden.Call(fn, in...)
		goldenOut[i] = v
		goldenErr[i] = err != nil
	}

	suite := append([]mutation.Test(nil), tests...)
	added := map[string]bool{}
	for _, m := range before.Survivors() {
		mi := mdl.NewInterp(p)
		mut := m.Mut
		mi.SetMutation(&mut)
		for i, in := range ex.Corpus {
			if goldenErr[i] {
				continue
			}
			v, err := mi.Call(fn, in...)
			if err == nil && v == goldenOut[i] {
				continue
			}
			k := fmt.Sprint(in)
			if !added[k] {
				added[k] = true
				suite = append(suite, mutation.Test{Fn: fn, Args: append([]int64(nil), in...)})
			}
			break
		}
	}
	after, err := mutation.Qualify(p, suite)
	if err != nil {
		return nil, nil, err
	}
	return suite, after, nil
}
