package symex

import (
	"testing"

	"repro/internal/mdl"
)

func TestEvalSymAllOps(t *testing.T) {
	x := &SInput{Name: "x", Idx: 0}
	seven := &SConst{V: 7}
	cases := []struct {
		op   mdl.TokKind
		want int64 // with x = 10
	}{
		{mdl.TokPlus, 17}, {mdl.TokMinus, 3}, {mdl.TokStar, 70},
		{mdl.TokSlash, 1}, {mdl.TokPercent, 3},
		{mdl.TokLT, 0}, {mdl.TokLE, 0}, {mdl.TokGT, 1}, {mdl.TokGE, 1},
		{mdl.TokEQ, 0}, {mdl.TokNE, 1},
		{mdl.TokAndAnd, 1}, {mdl.TokOrOr, 1},
	}
	for _, c := range cases {
		got, err := EvalSym(&SBin{Op: c.op, L: x, R: seven}, []int64{10})
		if err != nil || got != c.want {
			t.Errorf("x %s 7 = %d, %v; want %d", c.op, got, err, c.want)
		}
	}
	if _, err := EvalSym(&SBin{Op: mdl.TokSlash, L: x, R: &SConst{V: 0}}, []int64{1}); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := EvalSym(&SBin{Op: mdl.TokPercent, L: x, R: &SConst{V: 0}}, []int64{1}); err == nil {
		t.Error("modulo by zero accepted")
	}
	if v, _ := EvalSym(&SUn{Op: mdl.TokNot, X: &SConst{V: 0}}, nil); v != 1 {
		t.Error("not")
	}
	if v, _ := EvalSym(&SUn{Op: mdl.TokMinus, X: &SConst{V: 4}}, nil); v != -4 {
		t.Error("neg")
	}
	if _, err := EvalSym(&SInput{Idx: 5}, []int64{1}); err == nil {
		t.Error("out-of-range input accepted")
	}
}

func TestCandidatesLogicalDescent(t *testing.T) {
	// (x > 10) && (x < 20): flipping to true from x=0 must propose
	// values satisfying both; verification filters them.
	x := &SInput{Name: "x", Idx: 0}
	cond := &SBin{Op: mdl.TokAndAnd,
		L: &SBin{Op: mdl.TokGT, L: x, R: &SConst{V: 10}},
		R: &SBin{Op: mdl.TokLT, L: x, R: &SConst{V: 20}},
	}
	br := Branch{Cond: cond, Taken: false}
	sols := solveBranch(br, []int64{0})
	if len(sols) == 0 {
		t.Fatal("no verified solutions for conjunction")
	}
	for _, s := range sols {
		if s[0] <= 10 || s[0] >= 20 {
			t.Errorf("solution %v fails the conjunction", s)
		}
	}
}

func TestCandidatesNegation(t *testing.T) {
	x := &SInput{Name: "x", Idx: 0}
	cond := &SUn{Op: mdl.TokNot, X: &SBin{Op: mdl.TokEQ, L: x, R: &SConst{V: 5}}}
	// !(x==5) is true at x=0; flip to false needs x=5.
	br := Branch{Cond: cond, Taken: true}
	sols := solveBranch(br, []int64{0})
	found := false
	for _, s := range sols {
		if s[0] == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("negated equality not solved: %v", sols)
	}
}

func TestExploreThroughFunctionCalls(t *testing.T) {
	p := mdl.MustParse(`
func helper(v) {
  return v * 2 - 6
}
func f(x) {
  if helper(x) == 40 {
    return 1
  }
  return 0
}`)
	ex, err := Explore(p, "f", []int64{0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ex.CoverageFraction(p) != 1 {
		t.Errorf("coverage = %v; helper(x)==40 (x=23) not solved", ex.CoverageFraction(p))
	}
}

func TestExploreNonLinearFallsBackGracefully(t *testing.T) {
	// x*x == 49 is not linear: the solver can't flip it, but Explore
	// must terminate cleanly with partial coverage.
	p := mdl.MustParse(`
func f(x) {
  if x * x == 49 {
    return 1
  }
  return 0
}`)
	ex, err := Explore(p, "f", []int64{0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Runs == 0 || ex.CoverageFraction(p) == 0 {
		t.Error("exploration made no progress")
	}
}

func TestRunawayPathBudget(t *testing.T) {
	// A non-terminating function must surface the step budget as a
	// recorded path error, not hang.
	p := mdl.MustParse(`
func f(x) {
  while true {
    let y = 1
  }
  return 0
}`)
	res, err := Run(p, "f", []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Error("runaway loop produced no error")
	}
}
