package symex

import (
	"fmt"

	"repro/internal/mdl"
)

// EvalSym evaluates a symbolic expression against concrete inputs
// (candidate verification). It fails on division by zero.
func EvalSym(s Sym, inputs []int64) (int64, error) {
	switch e := s.(type) {
	case *SConst:
		return e.V, nil
	case *SInput:
		if e.Idx < 0 || e.Idx >= len(inputs) {
			return 0, fmt.Errorf("symex: input index %d out of range", e.Idx)
		}
		return inputs[e.Idx], nil
	case *SUn:
		v, err := EvalSym(e.X, inputs)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case mdl.TokNot:
			return b2i(v == 0), nil
		case mdl.TokMinus:
			return -v, nil
		}
		return 0, fmt.Errorf("symex: bad unary %s", e.Op)
	case *SBin:
		l, err := EvalSym(e.L, inputs)
		if err != nil {
			return 0, err
		}
		r, err := EvalSym(e.R, inputs)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case mdl.TokPlus:
			return l + r, nil
		case mdl.TokMinus:
			return l - r, nil
		case mdl.TokStar:
			return l * r, nil
		case mdl.TokSlash:
			if r == 0 {
				return 0, fmt.Errorf("symex: division by zero")
			}
			return l / r, nil
		case mdl.TokPercent:
			if r == 0 {
				return 0, fmt.Errorf("symex: modulo by zero")
			}
			return l % r, nil
		case mdl.TokLT:
			return b2i(l < r), nil
		case mdl.TokLE:
			return b2i(l <= r), nil
		case mdl.TokGT:
			return b2i(l > r), nil
		case mdl.TokGE:
			return b2i(l >= r), nil
		case mdl.TokEQ:
			return b2i(l == r), nil
		case mdl.TokNE:
			return b2i(l != r), nil
		case mdl.TokAndAnd:
			return b2i(l != 0 && r != 0), nil
		case mdl.TokOrOr:
			return b2i(l != 0 || r != 0), nil
		}
		return 0, fmt.Errorf("symex: bad op %s", e.Op)
	default:
		return 0, fmt.Errorf("symex: unknown sym %T", s)
	}
}

// linearize expresses s as a*x_free + b with every other input fixed
// to its value in inputs. ok is false when s is not linear in x_free
// (multiplication of two free terms, division/modulo by or of a free
// term, or a comparison/logical operator).
func linearize(s Sym, inputs []int64, free int) (a, b int64, ok bool) {
	switch e := s.(type) {
	case *SConst:
		return 0, e.V, true
	case *SInput:
		if e.Idx == free {
			return 1, 0, true
		}
		return 0, inputs[e.Idx], true
	case *SUn:
		if e.Op != mdl.TokMinus {
			return 0, 0, false
		}
		a, b, ok = linearize(e.X, inputs, free)
		return -a, -b, ok
	case *SBin:
		la, lb, lok := linearize(e.L, inputs, free)
		ra, rb, rok := linearize(e.R, inputs, free)
		if !lok || !rok {
			return 0, 0, false
		}
		switch e.Op {
		case mdl.TokPlus:
			return la + ra, lb + rb, true
		case mdl.TokMinus:
			return la - ra, lb - rb, true
		case mdl.TokStar:
			switch {
			case la == 0:
				return lb * ra, lb * rb, true
			case ra == 0:
				return la * rb, lb * rb, true
			default:
				return 0, 0, false // quadratic
			}
		case mdl.TokSlash, mdl.TokPercent:
			// Integer division is non-linear unless fully concrete.
			if la == 0 && ra == 0 && rb != 0 {
				if e.Op == mdl.TokSlash {
					return 0, lb / rb, true
				}
				return 0, lb % rb, true
			}
			return 0, 0, false
		default:
			return 0, 0, false
		}
	default:
		return 0, 0, false
	}
}

// candidates proposes values for input[free] that could make the
// condition evaluate to `want`. Proposals are verified by the caller
// with EvalSym, so over-approximation is fine.
func candidates(cond Sym, inputs []int64, free int, want bool) []int64 {
	switch e := cond.(type) {
	case *SUn:
		if e.Op == mdl.TokNot {
			return candidates(e.X, inputs, free, !want)
		}
	case *SBin:
		switch e.Op {
		case mdl.TokAndAnd, mdl.TokOrOr:
			// Try flipping either side; full verification happens later.
			out := candidates(e.L, inputs, free, want)
			out = append(out, candidates(e.R, inputs, free, want)...)
			return out
		case mdl.TokLT, mdl.TokLE, mdl.TokGT, mdl.TokGE, mdl.TokEQ, mdl.TokNE:
			// Normalize to d(x) = L - R REL 0.
			diff := &SBin{Op: mdl.TokMinus, L: e.L, R: e.R}
			a, b, ok := linearize(diff, inputs, free)
			if !ok || a == 0 {
				return nil
			}
			// Boundary where a*x + b == 0.
			root := -b / a
			// Offer the root and its neighbourhood: integer division
			// truncation and strict/non-strict boundaries are all
			// covered by candidate verification.
			return []int64{root - 1, root, root + 1}
		}
	}
	return nil
}

// solveBranch proposes full input vectors flipping the given branch,
// trying each input position as the free variable and verifying every
// candidate symbolically.
func solveBranch(br Branch, inputs []int64) [][]int64 {
	var out [][]int64
	want := !br.Taken
	for free := range inputs {
		for _, cand := range candidates(br.Cond, inputs, free, want) {
			next := append([]int64(nil), inputs...)
			next[free] = cand
			v, err := EvalSym(br.Cond, next)
			if err != nil {
				continue
			}
			if (v != 0) == want {
				out = append(out, next)
			}
		}
	}
	return out
}
