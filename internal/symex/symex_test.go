package symex

import (
	"testing"
	"testing/quick"

	"repro/internal/mdl"
	"repro/internal/mutation"
)

func TestRunRecordsPathAndOutput(t *testing.T) {
	p := mdl.MustParse(`
func f(x, y) {
  if x > 10 {
    return x + y
  }
  return 0
}`)
	res, err := Run(p, "f", []int64{20, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 25 {
		t.Errorf("output = %d", res.Output)
	}
	if len(res.Branches) != 1 || !res.Branches[0].Taken {
		t.Fatalf("branches = %+v", res.Branches)
	}
	if res.Branches[0].Cond.String() != "(x > 10)" {
		t.Errorf("cond = %s", res.Branches[0].Cond)
	}
}

func TestRunErrors(t *testing.T) {
	p := mdl.MustParse(`func f(x) { return 1 / x }`)
	res, err := Run(p, "f", []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Error("division by zero not recorded")
	}
	if _, err := Run(p, "nosuch", nil); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := Run(p, "f", []int64{1, 2}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestEvalSymMatchesInterpreter(t *testing.T) {
	p := mdl.MustParse(`
func f(a, b) {
  let x = a * 3 - b / 2
  if x > 7 && a != b {
    return x
  }
  return -x
}`)
	in := mdl.NewInterp(p)
	f := func(a, b int8) bool {
		args := []int64{int64(a), int64(b%100) | 1} // avoid div-by-zero interplay
		res, err := Run(p, "f", args)
		if err != nil || res.Err != nil {
			return res != nil && res.Err != nil // runtime error is fine if both agree
		}
		want, err := in.Call("f", args...)
		return err == nil && res.Output == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearize(t *testing.T) {
	// 3*x + 40 - y with y fixed to 4, free = x.
	s := &SBin{Op: mdl.TokMinus,
		L: &SBin{Op: mdl.TokPlus,
			L: &SBin{Op: mdl.TokStar, L: &SConst{V: 3}, R: &SInput{Name: "x", Idx: 0}},
			R: &SConst{V: 40}},
		R: &SInput{Name: "y", Idx: 1},
	}
	a, b, ok := linearize(s, []int64{0, 4}, 0)
	if !ok || a != 3 || b != 36 {
		t.Errorf("linearize = %d, %d, %v", a, b, ok)
	}
	// x*y is quadratic in either variable.
	q := &SBin{Op: mdl.TokStar, L: &SInput{Idx: 0}, R: &SInput{Idx: 1}}
	if _, _, ok := linearize(q, []int64{2, 3}, 0); ok {
		// x*y with y fixed IS linear (y is a constant 3 here).
		a, b, _ := linearize(q, []int64{2, 3}, 0)
		if a != 3 || b != 0 {
			t.Errorf("x*y with y fixed: %d, %d", a, b)
		}
	}
	// Division by a free variable is non-linear.
	d := &SBin{Op: mdl.TokSlash, L: &SConst{V: 10}, R: &SInput{Idx: 0}}
	if _, _, ok := linearize(d, []int64{2}, 0); ok {
		t.Error("10/x reported linear")
	}
}

func TestSolveBranchFlipsComparison(t *testing.T) {
	// Branch: (x > 100) taken=false at x=5. Flip should propose x
	// making it true.
	br := Branch{
		Cond:  &SBin{Op: mdl.TokGT, L: &SInput{Name: "x", Idx: 0}, R: &SConst{V: 100}},
		Taken: false,
	}
	sols := solveBranch(br, []int64{5})
	if len(sols) == 0 {
		t.Fatal("no solutions")
	}
	for _, s := range sols {
		if s[0] <= 100 {
			t.Errorf("solution %v does not flip the branch", s)
		}
	}
}

func TestExploreNeedleInHaystack(t *testing.T) {
	// The classic concolic demo: random testing essentially never
	// finds the magic constant; one branch negation does.
	p := mdl.MustParse(`
func f(x) {
  if x == 123456 {
    return 1
  }
  return 0
}`)
	ex, err := Explore(p, "f", []int64{0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ex.CoverageFraction(p) != 1 {
		t.Errorf("coverage = %v; the == branch was not solved", ex.CoverageFraction(p))
	}
	found := false
	for _, in := range ex.Corpus {
		if in[0] == 123456 {
			found = true
		}
	}
	if !found {
		t.Errorf("corpus %v missing the magic input", ex.Corpus)
	}
}

func TestExploreNestedBranches(t *testing.T) {
	p := mdl.MustParse(`
func f(a, b) {
  if a > 50 {
    if b < -10 {
      return 3
    }
    return 2
  }
  if a * 2 + b == 77 {
    return 1
  }
  return 0
}`)
	ex, err := Explore(p, "f", []int64{0, 0}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.CoverageFraction(p); got != 1 {
		t.Errorf("coverage = %v, corpus %v", got, ex.Corpus)
	}
}

func TestExploreLoopCondition(t *testing.T) {
	p := mdl.MustParse(`
func f(n) {
  let acc = 0
  let i = 0
  while i < n {
    acc = acc + i
    i = i + 1
  }
  if acc > 100 {
    return 1
  }
  return 0
}`)
	ex, err := Explore(p, "f", []int64{0}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.CoverageFraction(p); got != 1 {
		t.Errorf("coverage = %v (acc>100 needs n>=15)", got)
	}
}

func TestExploreBudgetRespected(t *testing.T) {
	p := mdl.MustParse(`
func f(x) {
  if x > 0 { return 1 }
  return 0
}`)
	ex, err := Explore(p, "f", []int64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Runs != 1 {
		t.Errorf("runs = %d", ex.Runs)
	}
}

func TestExtendSuiteKillsSurvivors(t *testing.T) {
	p := mdl.MustParse(`
func f(x, y) {
  let out = 0
  if x > 10 {
    out = x - y
  }
  if out > 90 {
    out = 90
  }
  return out
}`)
	// Weak suite: one vector; leaves many survivors.
	weak := []mutation.Test{{Fn: "f", Args: []int64{20, 5}}}
	before, err := mutation.Qualify(p, weak)
	if err != nil {
		t.Fatal(err)
	}
	suite, after, err := ExtendSuite(p, "f", weak, []int64{0, 0}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if after.Score <= before.Score {
		t.Errorf("score did not improve: %.2f -> %.2f", before.Score, after.Score)
	}
	if len(suite) <= len(weak) {
		t.Error("no tests added")
	}
	t.Logf("score %.2f -> %.2f with %d generated tests (survivors %d -> %d)",
		before.Score, after.Score, len(suite)-len(weak),
		len(before.Survivors()), len(after.Survivors()))
}

func TestExtendSuiteNoSurvivorsNoChange(t *testing.T) {
	p := mdl.MustParse(`func f(x) { return x + 1 }`)
	// x+1: mutants x-1, x*1(=x), const 1->2/0... a couple of vectors
	// kill them all.
	full := []mutation.Test{{Fn: "f", Args: []int64{5}}, {Fn: "f", Args: []int64{-3}}}
	rep, err := mutation.Qualify(p, full)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Survivors()) != 0 {
		t.Skip("model has survivors; adjust fixture")
	}
	suite, after, err := ExtendSuite(p, "f", full, []int64{0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != len(full) || after.Score != rep.Score {
		t.Error("suite changed despite no survivors")
	}
}

func TestSymStrings(t *testing.T) {
	s := &SBin{Op: mdl.TokPlus, L: &SUn{Op: mdl.TokMinus, X: &SInput{Name: "a", Idx: 0}}, R: &SConst{V: 7}}
	if s.String() != "(-a + 7)" {
		t.Errorf("String = %q", s.String())
	}
}
