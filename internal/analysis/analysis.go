// Package analysis implements the monitoring side of the error-effect
// simulation loop (Sec. 3.3: "methodologies for fault/error
// classification and fault-error-failure analysis are required at the
// monitoring side of the testbench"): golden-vs-faulty run
// classification into the fault→error→failure outcome classes, error
// propagation tracing, and synthesis of fault trees from campaign
// outcomes (the implicit FTA support of [8], reproduced by
// experiment E7).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/safety"
	"repro/internal/sim"
)

// Observation is what a monitor extracted from one simulation run.
// Outputs maps observed output names to canonical value strings; the
// classifier compares them against the golden run.
type Observation struct {
	// Outputs are the externally visible results.
	Outputs map[string]string
	// GoalViolated marks a stated safety-goal violation (worst class).
	GoalViolated bool
	// GoalDetail explains the violation.
	GoalDetail string
	// Detected marks safety-mechanism activation with a safe outcome.
	Detected bool
	// DetectedBy names the mechanisms that fired.
	DetectedBy []string
	// DeadlineMissed marks a timing requirement violation with
	// otherwise correct values.
	DeadlineMissed bool
	// LatentState marks corrupted internal state that has not become
	// visible (found by end-of-run state comparison).
	LatentState bool
	// Activated marks that the fault actually perturbed something
	// (injected into exercised logic).
	Activated bool
}

// Classify derives the outcome class of a faulty run relative to the
// golden run, in strict severity order.
func Classify(golden, faulty Observation) fault.Classification {
	switch {
	case faulty.GoalViolated:
		return fault.SafetyCritical
	case faulty.DeadlineMissed:
		return fault.TimingViolation
	case !outputsEqual(golden.Outputs, faulty.Outputs):
		if faulty.Detected {
			return fault.DetectedSafe
		}
		return fault.SDC
	case faulty.Detected:
		return fault.DetectedSafe
	case faulty.LatentState:
		return fault.Latent
	case faulty.Activated:
		return fault.Masked
	default:
		return fault.NoEffect
	}
}

func outputsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Describe renders a one-line outcome detail from an observation.
func Describe(o Observation) string {
	switch {
	case o.GoalViolated:
		return "goal violated: " + o.GoalDetail
	case o.DeadlineMissed:
		return "deadline missed"
	case o.Detected:
		return "detected by " + strings.Join(o.DetectedBy, ",")
	default:
		return ""
	}
}

// Hop is one step of an error propagation trace.
type Hop struct {
	At     sim.Time
	Site   string
	Detail string
}

// Trace records error propagation through the system — the "track the
// error propagation" capability the paper credits virtual prototypes
// with (Sec. 1). Model code calls Record at each place a corrupted
// value passes; the resulting hop sequence shows the path from fault
// to failure.
type Trace struct {
	hops []Hop
}

// Record appends a hop.
func (t *Trace) Record(at sim.Time, site, detail string) {
	t.hops = append(t.hops, Hop{At: at, Site: site, Detail: detail})
}

// Hops reports the propagation path in time order.
func (t *Trace) Hops() []Hop { return t.hops }

// Reset clears the trace, keeping the hop buffer's capacity for reuse
// across campaign runs.
func (t *Trace) Reset() { t.hops = t.hops[:0] }

// CopyFrom overwrites the trace with the hops of src, reusing the hop
// buffer's capacity. Checkpoint-restoring runners use it to rewind a
// prototype's live trace to its golden-prefix contents.
func (t *Trace) CopyFrom(src *Trace) {
	t.hops = append(t.hops[:0], src.hops...)
}

// Clone returns an independent copy of the trace. Runners that reuse a
// prototype across runs hand out clones so a returned trace is not
// overwritten by the next run.
func (t *Trace) Clone() *Trace {
	return &Trace{hops: append([]Hop(nil), t.hops...)}
}

// Len reports the number of hops.
func (t *Trace) Len() int { return len(t.hops) }

// String renders the path.
func (t *Trace) String() string {
	var b strings.Builder
	for i, h := range t.hops {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s@%s", h.Site, h.At)
		if h.Detail != "" {
			fmt.Fprintf(&b, "(%s)", h.Detail)
		}
	}
	return b.String()
}

// SitesVisited lists distinct sites on the path, in first-visit order.
func (t *Trace) SitesVisited() []string {
	seen := map[string]bool{}
	var out []string
	for _, h := range t.hops {
		if !seen[h.Site] {
			seen[h.Site] = true
			out = append(out, h.Site)
		}
	}
	return out
}

// SynthesizeFaultTree builds a fault tree from campaign outcomes: each
// scenario whose class matches the failure predicate contributes its
// fault set as a cut set; cut sets are minimized and assembled as an
// OR of ANDs over basic events named by fault target and model.
// probs supplies basic-event probabilities (per target/model key);
// missing entries default to defaultProb.
//
// This realizes the "implicit FTA support through error effect
// simulation" of reference [8]: the tree falls out of simulation
// rather than expert judgement, and experiment E7 checks it against
// the analytic tree.
func SynthesizeFaultTree(name string, outcomes []fault.Outcome, isFailure func(fault.Classification) bool, probs map[string]float64, defaultProb float64) *safety.Node {
	var raw []safety.CutSet
	events := map[string]float64{}
	for _, o := range outcomes {
		if !isFailure(o.Class) {
			continue
		}
		cs := make(safety.CutSet, 0, len(o.Scenario.Faults))
		seen := map[string]bool{}
		for _, d := range o.Scenario.Faults {
			key := EventKey(d)
			if seen[key] {
				continue
			}
			seen[key] = true
			cs = append(cs, key)
			p, ok := probs[key]
			if !ok {
				p = defaultProb
			}
			events[key] = p
		}
		sort.Strings(cs)
		raw = append(raw, cs)
	}
	mcs := safety.MinimizeCutSets(raw)
	children := make([]*safety.Node, 0, len(mcs))
	for i, cs := range mcs {
		if len(cs) == 1 {
			children = append(children, safety.BasicEvent(cs[0], events[cs[0]]))
			continue
		}
		leaves := make([]*safety.Node, 0, len(cs))
		for _, e := range cs {
			leaves = append(leaves, safety.BasicEvent(e, events[e]))
		}
		children = append(children, safety.And(fmt.Sprintf("%s-mcs%d", name, i), leaves...))
	}
	if len(children) == 0 {
		// No observed failure: an empty OR is invalid, so return a
		// never-occurring basic event.
		return safety.BasicEvent(name+"-no-failure-observed", 0)
	}
	return safety.Or(name, children...)
}

// EventKey names a descriptor's basic event in synthesized trees:
// scenario-instance suffixes (after '#' or '+') are stripped so the
// same physical fault maps to one event.
func EventKey(d fault.Descriptor) string {
	name := d.Name
	if i := strings.IndexAny(name, "#+"); i >= 0 {
		name = name[:i]
	}
	return name
}
