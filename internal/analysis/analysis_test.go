package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/safety"
	"repro/internal/sim"
)

func TestClassifyPriorities(t *testing.T) {
	golden := Observation{Outputs: map[string]string{"y": "1"}}
	cases := []struct {
		name string
		obs  Observation
		want fault.Classification
	}{
		{"goal beats everything", Observation{GoalViolated: true, DeadlineMissed: true, Detected: true, Activated: true}, fault.SafetyCritical},
		{"deadline beats sdc", Observation{DeadlineMissed: true, Outputs: map[string]string{"y": "2"}}, fault.TimingViolation},
		{"mismatch undetected is sdc", Observation{Outputs: map[string]string{"y": "2"}}, fault.SDC},
		{"mismatch detected is safe", Observation{Outputs: map[string]string{"y": "2"}, Detected: true}, fault.DetectedSafe},
		{"match detected is safe", Observation{Outputs: map[string]string{"y": "1"}, Detected: true}, fault.DetectedSafe},
		{"latent", Observation{Outputs: map[string]string{"y": "1"}, LatentState: true}, fault.Latent},
		{"masked", Observation{Outputs: map[string]string{"y": "1"}, Activated: true}, fault.Masked},
		{"no effect", Observation{Outputs: map[string]string{"y": "1"}}, fault.NoEffect},
	}
	for _, c := range cases {
		if got := Classify(golden, c.obs); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestClassifyOutputSets(t *testing.T) {
	golden := Observation{Outputs: map[string]string{"a": "1", "b": "2"}}
	missing := Observation{Outputs: map[string]string{"a": "1"}}
	if Classify(golden, missing) != fault.SDC {
		t.Error("missing output not a mismatch")
	}
	extra := Observation{Outputs: map[string]string{"a": "1", "b": "2", "c": "3"}}
	if Classify(golden, extra) != fault.SDC {
		t.Error("extra output not a mismatch")
	}
}

func TestDescribe(t *testing.T) {
	if got := Describe(Observation{GoalViolated: true, GoalDetail: "boom"}); !strings.Contains(got, "boom") {
		t.Errorf("Describe = %q", got)
	}
	if got := Describe(Observation{Detected: true, DetectedBy: []string{"ecc", "wd"}}); !strings.Contains(got, "ecc,wd") {
		t.Errorf("Describe = %q", got)
	}
	if Describe(Observation{}) != "" {
		t.Error("empty describe")
	}
}

func TestTrace(t *testing.T) {
	var tr Trace
	tr.Record(sim.NS(10), "sensor", "offset")
	tr.Record(sim.NS(20), "fusion", "wrong severity")
	tr.Record(sim.NS(30), "fusion", "frame sent")
	tr.Record(sim.NS(40), "airbag", "fired")
	if tr.Len() != 4 {
		t.Errorf("len = %d", tr.Len())
	}
	sites := tr.SitesVisited()
	if len(sites) != 3 || sites[0] != "sensor" || sites[2] != "airbag" {
		t.Errorf("sites = %v", sites)
	}
	s := tr.String()
	if !strings.Contains(s, "sensor@10 ns(offset) -> fusion@20 ns") {
		t.Errorf("trace string = %q", s)
	}
}

func outcome(class fault.Classification, faults ...string) fault.Outcome {
	sc := fault.Scenario{ID: strings.Join(faults, "+")}
	for _, f := range faults {
		sc.Faults = append(sc.Faults, fault.Descriptor{Name: f, Target: f})
	}
	return fault.Outcome{Scenario: sc, Class: class}
}

func TestSynthesizeFaultTree(t *testing.T) {
	outcomes := []fault.Outcome{
		outcome(fault.SafetyCritical, "a"),
		outcome(fault.Masked, "b"),
		outcome(fault.SafetyCritical, "b", "c"),
		outcome(fault.SafetyCritical, "a", "b"), // absorbed by {a}
		outcome(fault.SDC, "d"),
	}
	isFail := func(c fault.Classification) bool { return c == fault.SafetyCritical }
	probs := map[string]float64{"a": 0.1, "b": 0.2, "c": 0.3}
	tree := SynthesizeFaultTree("G1", outcomes, isFail, probs, 0.01)
	mcs := tree.MinimalCutSets()
	if len(mcs) != 2 {
		t.Fatalf("mcs = %v", mcs)
	}
	p, err := tree.TopEventProbability()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 + 0.2*0.3 - 0.1*0.2*0.3
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("P = %v, want %v", p, want)
	}
}

func TestSynthesizeNoFailures(t *testing.T) {
	tree := SynthesizeFaultTree("G1", []fault.Outcome{outcome(fault.Masked, "a")},
		func(c fault.Classification) bool { return c.IsFailure() }, nil, 0.1)
	p, err := tree.TopEventProbability()
	if err != nil || p != 0 {
		t.Errorf("no-failure tree P = %v, %v", p, err)
	}
}

func TestSynthesizeMatchesAnalytic(t *testing.T) {
	// Analytic model: top = s1 OR (s2 AND s3). Simulate its truth
	// table as campaign outcomes and check the synthesized tree agrees.
	analytic := safety.Or("top",
		safety.BasicEvent("s1", 0.05),
		safety.And("g", safety.BasicEvent("s2", 0.1), safety.BasicEvent("s3", 0.2)))
	var outcomes []fault.Outcome
	for mask := 1; mask < 8; mask++ {
		var faults []string
		for i, name := range []string{"s1", "s2", "s3"} {
			if mask>>uint(i)&1 == 1 {
				faults = append(faults, name)
			}
		}
		has := func(n string) bool {
			for _, f := range faults {
				if f == n {
					return true
				}
			}
			return false
		}
		class := fault.Masked
		if has("s1") || (has("s2") && has("s3")) {
			class = fault.SafetyCritical
		}
		outcomes = append(outcomes, outcome(class, faults...))
	}
	probs := map[string]float64{"s1": 0.05, "s2": 0.1, "s3": 0.2}
	synth := SynthesizeFaultTree("top", outcomes,
		func(c fault.Classification) bool { return c == fault.SafetyCritical }, probs, 0)
	pa, err := analytic.TopEventProbability()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := synth.TopEventProbability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa-ps) > 1e-12 {
		t.Errorf("synthesized P = %v, analytic P = %v", ps, pa)
	}
	if len(synth.MinimalCutSets()) != len(analytic.MinimalCutSets()) {
		t.Errorf("cut sets differ: %v vs %v", synth.MinimalCutSets(), analytic.MinimalCutSets())
	}
}

func TestEventKeyStripsInstanceSuffix(t *testing.T) {
	if EventKey(fault.Descriptor{Name: "site/model#1"}) != "site/model" {
		t.Error("# suffix not stripped")
	}
	if EventKey(fault.Descriptor{Name: "site/model+0"}) != "site/model" {
		t.Error("+ suffix not stripped")
	}
	if EventKey(fault.Descriptor{Name: "plain"}) != "plain" {
		t.Error("plain name mangled")
	}
}
