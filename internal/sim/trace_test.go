package sim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// traceModel builds the reference tracing model: a bool signal and an
// int signal driven by one thread at known times. Int values are
// chosen to render as 0/1 strings so the expected VCD vector changes
// are literal (the hashing fallback has its own test).
func traceModel(k *Kernel) (*Signal[bool], *Signal[int]) {
	b := NewSignal(k, "b", false)
	n := NewSignal(k, "n", 0)
	k.Thread("drv", func(c *ThreadCtx) {
		c.WaitTime(2)
		b.Write(true)
		n.Write(10)
		c.WaitTime(3)
		b.Write(false)
	})
	return b, n
}

// TestTracerGolden pins the exact VCD output: header ordering (vars
// sorted by name, base-94 codes in order), one timestamp per changed
// time point, scalar changes for width-1 vars and vector changes for
// wider ones, and change-only sampling (the #5 block has no n entry).
func TestTracerGolden(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	b, n := traceModel(k)
	// Register out of name order: the header must sort b before n.
	TraceSignal(tr, n)
	TraceSignal(tr, b)
	k.AttachTracer(tr)
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	golden := strings.Join([]string{
		"$timescale 1ps $end",
		"$scope module top $end",
		"$var wire 1 ! b $end",
		`$var wire 64 " n $end`,
		"$upscope $end",
		"$enddefinitions $end",
		"#0",
		"0!",
		`b0 "`,
		"#2",
		"1!",
		`b10 "`,
		"#5",
		"0!",
		"",
	}, "\n")
	if got := buf.String(); got != golden {
		t.Errorf("VCD mismatch\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestToBinary covers both renderings: 0/1/x/z strings pass through,
// anything else becomes a stable 64-bit hash.
func TestToBinary(t *testing.T) {
	for _, s := range []string{"0", "1", "01xz", "1100"} {
		if got := toBinary(s); got != s {
			t.Errorf("toBinary(%q) = %q, want passthrough", s, got)
		}
	}
	h := toBinary("hello")
	if len(h) != 64 || strings.Trim(h, "01") != "" {
		t.Errorf("hashed value %q is not a 64-bit binary string", h)
	}
	if toBinary("hello") != h {
		t.Error("hash not stable")
	}
	if toBinary("world") == h {
		t.Error("distinct values hashed identically")
	}
}

// failingWriter errors once its byte budget is exhausted.
type failingWriter struct {
	budget int
	wrote  bytes.Buffer
}

var errDiskFull = errors.New("disk full")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.wrote.Len()+len(p) > f.budget {
		return 0, errDiskFull
	}
	return f.wrote.Write(p)
}

// TestTracerWriteErrors: a failing writer must surface through Err —
// whether the header or a later sample hits it — and must stop all
// further output instead of silently truncating the dump.
func TestTracerWriteErrors(t *testing.T) {
	// Budgets: 0 and 40 fail inside the header; 124 fails at the first
	// scalar change, 140 at a vector change (the full dump is 150
	// bytes).
	for _, budget := range []int{0, 40, 124, 140} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			k := NewKernel()
			defer k.Shutdown()
			w := &failingWriter{budget: budget}
			tr := NewTracer(w)
			b, n := traceModel(k)
			TraceSignal(tr, b)
			TraceSignal(tr, n)
			k.AttachTracer(tr)
			if err := k.Run(10); err != nil {
				t.Fatal(err) // tracer errors must not break the simulation
			}
			if !errors.Is(tr.Err(), errDiskFull) {
				t.Fatalf("Err() = %v, want errDiskFull", tr.Err())
			}
			lenAtError := w.wrote.Len()
			// Another run must not emit a single further byte.
			k2 := NewKernel()
			defer k2.Shutdown()
			traceModel(k2)
			k2.AttachTracer(tr)
			if err := k2.Run(10); err != nil {
				t.Fatal(err)
			}
			if w.wrote.Len() != lenAtError {
				t.Errorf("tracer kept writing after error: %d -> %d bytes",
					lenAtError, w.wrote.Len())
			}
		})
	}
}
