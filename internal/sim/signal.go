package sim

// Signal is a primitive channel with SystemC sc_signal semantics: a
// Write during the evaluate phase becomes visible to readers only in
// the next delta cycle (request/update). This is what makes concurrent
// process communication race-free and fault campaigns deterministic.
//
// Signal additionally supports Force/Release, the injection hook used
// by saboteur-style fault injectors: while forced, the signal reports
// the forced value regardless of writes, and writes are remembered so
// Release restores the un-faulted behaviour.
type Signal[T comparable] struct {
	k    *Kernel
	name string

	cur     T
	next    T
	hasNext bool

	forced   bool
	forceVal T

	changed *Event
	writes  uint64
}

// NewSignal creates a named signal with an initial value.
func NewSignal[T comparable](k *Kernel, name string, init T) *Signal[T] {
	return &Signal[T]{k: k, name: name, cur: init, next: init}
}

// Name reports the signal name.
func (s *Signal[T]) Name() string { return s.name }

// Read returns the current (update-phase committed) value, or the
// forced value while a fault injector holds the signal.
func (s *Signal[T]) Read() T {
	if s.forced {
		return s.forceVal
	}
	return s.cur
}

// ReadDriven returns the driven value ignoring any force, used by
// monitors that want to observe the fault-free behaviour.
func (s *Signal[T]) ReadDriven() T { return s.cur }

// Write schedules v to become the signal value in the update phase of
// the current delta cycle. The last write in an evaluate phase wins.
func (s *Signal[T]) Write(v T) {
	s.writes++
	if !s.hasNext {
		s.hasNext = true
		s.k.DeferUpdate(s)
	}
	s.next = v
}

// update commits the pending write (update phase callback).
func (s *Signal[T]) update() {
	if !s.hasNext {
		return
	}
	s.hasNext = false
	if s.next == s.cur {
		return
	}
	s.cur = s.next
	if s.changed != nil && !s.forced {
		s.changed.notifyDelta()
	}
}

// Changed returns the value-changed event, creating it on first use.
// The event fires one delta cycle after a write that alters the value.
func (s *Signal[T]) Changed() *Event {
	if s.changed == nil {
		s.changed = s.k.NewEvent(s.name + ".changed")
	}
	return s.changed
}

// Force overrides the signal's observable value until Release. The
// value-changed event fires so sensitive processes react to the fault.
func (s *Signal[T]) Force(v T) {
	already := s.forced && s.forceVal == v
	s.forced = true
	s.forceVal = v
	if !already && s.changed != nil {
		s.changed.notifyDelta()
	}
}

// Release removes a Force. If the driven value differs from the forced
// one, the value-changed event fires.
func (s *Signal[T]) Release() {
	if !s.forced {
		return
	}
	was := s.forceVal
	s.forced = false
	if s.cur != was && s.changed != nil {
		s.changed.notifyDelta()
	}
}

// Forced reports whether a fault injector currently holds the signal.
func (s *Signal[T]) Forced() bool { return s.forced }

// WriteCount reports how many writes the signal has received; activity
// metrics use it to locate hot state for weak-spot analysis.
func (s *Signal[T]) WriteCount() uint64 { return s.writes }
