package sim

import (
	"fmt"
	"io"
	"sort"
)

// Tracer writes a Value Change Dump (VCD) of registered probes. Probes
// are sampled at the end of every delta cycle; only changes are
// emitted, so idle signals cost nothing in the output. The VCD output
// lets error-propagation traces from fault campaigns be inspected with
// standard waveform viewers.
type Tracer struct {
	w        io.Writer
	vars     []*traceVar
	started  bool
	lastTime Time
	haveTime bool
	err      error
}

type traceVar struct {
	name   string
	width  int
	sample func() string
	last   string
	code   string
}

// NewTracer creates a tracer emitting VCD to w with a 1 ps timescale.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// AttachTracer registers the tracer for end-of-delta sampling.
func (k *Kernel) AttachTracer(t *Tracer) {
	k.tracers = append(k.tracers, t)
}

// AddProbe registers a probe. width is the bit width used in the VCD
// declaration (1 emits scalar changes, >1 vector changes); sample must
// return the value as a binary string ("0", "1", "x", or "b0101"-style
// without the leading 'b').
func (t *Tracer) AddProbe(name string, width int, sample func() string) {
	if t.started {
		panic("sim: AddProbe after tracing started")
	}
	t.vars = append(t.vars, &traceVar{name: name, width: width, sample: sample})
}

// TraceSignal registers a probe on a signal using fmt %v rendering of
// its value as an ASCII "real" VCD variable is overkill; bool signals
// trace as scalars, everything else as a string variable.
func TraceSignal[T comparable](t *Tracer, s *Signal[T]) {
	var zero T
	if _, isBool := any(zero).(bool); isBool {
		t.AddProbe(s.Name(), 1, func() string {
			if any(s.Read()).(bool) {
				return "1"
			}
			return "0"
		})
		return
	}
	t.AddProbe(s.Name(), 64, func() string { return fmt.Sprintf("%v", s.Read()) })
}

func vcdCode(i int) string {
	// Printable identifier codes ! through ~ in a base-94 encoding.
	const lo, hi = 33, 126
	n := hi - lo + 1
	code := ""
	for {
		code += string(rune(lo + i%n))
		i /= n
		if i == 0 {
			return code
		}
	}
}

// writeHeader emits the VCD declarations. Like sampleDelta it stores
// the first write error so a full disk or closed pipe surfaces via Err
// instead of silently truncating the dump.
func (t *Tracer) writeHeader() {
	t.started = true
	if _, err := fmt.Fprintf(t.w, "$timescale 1ps $end\n$scope module top $end\n"); err != nil {
		t.err = err
		return
	}
	sort.SliceStable(t.vars, func(i, j int) bool { return t.vars[i].name < t.vars[j].name })
	for i, v := range t.vars {
		v.code = vcdCode(i)
		if _, err := fmt.Fprintf(t.w, "$var wire %d %s %s $end\n", v.width, v.code, v.name); err != nil {
			t.err = err
			return
		}
	}
	if _, err := fmt.Fprintf(t.w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		t.err = err
	}
}

// sampleDelta is called by the kernel at the end of every delta cycle.
func (t *Tracer) sampleDelta(now Time) {
	if t.err != nil {
		return
	}
	if !t.started {
		t.writeHeader()
		if t.err != nil {
			return
		}
	}
	wroteTime := t.haveTime && t.lastTime == now
	for _, v := range t.vars {
		s := v.sample()
		if s == v.last {
			continue
		}
		v.last = s
		if !wroteTime {
			if _, err := fmt.Fprintf(t.w, "#%d\n", uint64(now)); err != nil {
				t.err = err
				return
			}
			wroteTime = true
			t.haveTime = true
			t.lastTime = now
		}
		var err error
		if v.width == 1 {
			_, err = fmt.Fprintf(t.w, "%s%s\n", s, v.code)
		} else {
			_, err = fmt.Fprintf(t.w, "b%s %s\n", toBinary(s), v.code)
		}
		if err != nil {
			t.err = err
			return
		}
	}
}

// toBinary renders a sampled value as a VCD binary vector string. Values
// already consisting of 0/1/x/z pass through; anything else is hashed to
// its byte representation so arbitrary values remain traceable.
func toBinary(s string) string {
	ok := len(s) > 0
	for _, r := range s {
		if r != '0' && r != '1' && r != 'x' && r != 'z' {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	// Render as the binary of a 64-bit FNV-1a hash: stable, unique-ish.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%064b", h)
}

// Err reports the first write error encountered, if any.
func (t *Tracer) Err() error { return t.err }
