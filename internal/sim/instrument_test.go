package sim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// instrModel is a small deterministic workload: a timer-driven
// producer, a method sensitive to the produced signal, and a consumer
// thread — enough to exercise every instrumentation hook.
func instrModel(k *Kernel) func() string {
	n := NewSignal(k, "n", 0)
	sum := NewSignal(k, "sum", 0)
	k.Thread("producer", func(c *ThreadCtx) {
		for i := 1; i <= 50; i++ {
			n.Write(i)
			c.WaitTime(3)
		}
	})
	k.MethodNoInit("adder", func() {
		sum.Write(sum.Read() + n.Read())
	}, n.Changed())
	done := k.NewEvent("done")
	k.Thread("watch", func(c *ThreadCtx) {
		for n.Read() < 50 {
			c.Wait(n.Changed())
		}
		done.Notify(1)
	})
	return func() string {
		return fmt.Sprintf("now=%s n=%d sum=%d stats=%+v", k.Now(), n.Read(), sum.Read(), k.Stats())
	}
}

// runInstrModel runs the workload (optionally instrumented, optionally
// VCD-traced) and returns the final-state string.
func runInstrModel(t *testing.T, in *Instrument, vcd *bytes.Buffer) string {
	t.Helper()
	k := NewKernel()
	defer k.Shutdown()
	final := instrModel(k)
	if vcd != nil {
		tr := NewTracer(vcd)
		k.AttachTracer(tr)
	}
	if in != nil {
		k.SetInstrument(in)
	}
	// Two Run calls so flushInstr's delta accounting is exercised.
	if err := k.Run(60); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	return final()
}

// TestInstrumentPreservesResults is the determinism contract: an
// instrumented kernel must produce byte-identical simulation results —
// final state, kernel stats and VCD output — because instrumentation
// only observes wall-clock time, never simulated state.
func TestInstrumentPreservesResults(t *testing.T) {
	var vcdPlain, vcdInstr bytes.Buffer
	plain := runInstrModel(t, nil, &vcdPlain)
	reg := obs.NewRegistry()
	tr := obs.NewTraceRecorder()
	instr := runInstrModel(t, &Instrument{Metrics: reg, Trace: tr}, &vcdInstr)
	if plain != instr {
		t.Errorf("results diverged\nplain: %s\ninstr: %s", plain, instr)
	}
	if vcdPlain.String() != vcdInstr.String() {
		t.Error("VCD output diverged under instrumentation")
	}
}

// TestInstrumentMetrics checks what the hooks record: kernel counters
// matching Stats exactly (across multiple Run calls), per-process
// counters, depth histograms, and one trace span per Run call.
func TestInstrumentMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTraceRecorder()

	k := NewKernel()
	defer k.Shutdown()
	final := instrModel(k)
	k.SetInstrument(&Instrument{Metrics: reg, Trace: tr})
	if err := k.Run(60); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	_ = final()

	st := k.Stats()
	if got := reg.Counter("sim.delta_cycles").Value(); got != st.DeltaCycles {
		t.Errorf("sim.delta_cycles = %d, want %d", got, st.DeltaCycles)
	}
	if got := reg.Counter("sim.activations").Value(); got != st.Activations {
		t.Errorf("sim.activations = %d, want %d", got, st.Activations)
	}
	if got := reg.Counter("sim.time_steps").Value(); got != st.TimeSteps {
		t.Errorf("sim.time_steps = %d, want %d", got, st.TimeSteps)
	}

	// Per-process counters must sum to the kernel activation count.
	var perProc uint64
	for _, ps := range k.ProcStats() {
		got := reg.Counter("sim.proc.activations", obs.L("proc", ps.Name)).Value()
		if got != ps.Activations {
			t.Errorf("proc %s: counter %d != ProcStats %d", ps.Name, got, ps.Activations)
		}
		perProc += got
	}
	if perProc != st.Activations {
		t.Errorf("per-proc activations %d != kernel %d", perProc, st.Activations)
	}
	// The producer runs 50 loop iterations plus its initial activation.
	for _, ps := range k.ProcStats() {
		if ps.Name == "producer" && ps.Activations != 51 {
			t.Errorf("producer activations = %d, want 51", ps.Activations)
		}
	}

	if h := reg.Histogram("sim.deltas_per_step"); h.Count() == 0 || h.Min() < 1 {
		t.Errorf("deltas_per_step histogram empty or zero-valued: count=%d min=%d", h.Count(), h.Min())
	}
	if h := reg.Histogram("sim.runnable_depth"); h.Count() != st.DeltaCycles {
		t.Errorf("runnable_depth count = %d, want one per delta cycle (%d)", h.Count(), st.DeltaCycles)
	}
	if h := reg.Histogram("sim.event_queue_depth"); h.Count() != st.TimeSteps {
		t.Errorf("event_queue_depth count = %d, want one per time step (%d)", h.Count(), st.TimeSteps)
	}
	if reg.Counter("sim.run_ns").Value() == 0 {
		t.Error("sim.run_ns not recorded")
	}
	if tr.Len() != 2 {
		t.Errorf("trace has %d spans, want 2 (one per Run call)", tr.Len())
	}
}

// TestInstrumentAutoTID: kernels that don't pick a trace row get
// distinct auto-assigned ones.
func TestInstrumentAutoTID(t *testing.T) {
	a, b := &Instrument{}, &Instrument{}
	NewKernel().SetInstrument(a)
	NewKernel().SetInstrument(b)
	if a.TID == b.TID || a.TID < 1000 || b.TID < 1000 {
		t.Errorf("auto TIDs = %d, %d", a.TID, b.TID)
	}
	explicit := &Instrument{TID: 7}
	NewKernel().SetInstrument(explicit)
	if explicit.TID != 7 {
		t.Errorf("explicit TID overwritten: %d", explicit.TID)
	}
}
