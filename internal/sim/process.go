package sim

import (
	"fmt"
	"time"
)

type procState uint8

const (
	procWaiting procState = iota
	procRunnable
	procRunning
	procDone
)

type procKind uint8

const (
	methodProc procKind = iota
	threadProc
)

// errKilled is the panic sentinel used to unwind a thread process
// goroutine when the kernel shuts down.
type killedError struct{ name string }

func (e killedError) Error() string { return "sim: thread " + e.name + " killed" }

// Proc is a simulation process: either a method process (a callback
// re-invoked on each activation, like SC_METHOD) or a thread process
// (a goroutine with its own control flow that suspends via Wait, like
// SC_THREAD). The kernel runs at most one process at a time, in
// ascending creation order within each delta cycle, so simulations are
// fully deterministic.
type Proc struct {
	k    *Kernel
	name string
	id   int
	kind procKind

	state  procState
	fn     func()           // method body
	tfn    func(*ThreadCtx) // thread body
	static []*Event

	dynamicWait []*Event // events the thread currently waits on (any-of)
	waitCause   *Event   // which event resumed the last dynamic wait

	noInit bool

	// instrumentation accumulators, maintained only while an
	// Instrument is attached to the kernel (see instrument.go);
	// pub* record the portion already flushed to the registry.
	activations    uint64
	runNanos       int64
	pubActivations uint64
	pubRunNanos    int64

	// thread machinery: w is the worker goroutine currently hosting the
	// thread body, acquired from the kernel's pool on first activation
	// and returned when the body finishes or is killed.
	killed  bool
	w       *threadWorker
	ctx     *ThreadCtx
	timerEv *Event   // lazily created private event for timed waits
	waitSet []*Event // scratch buffer for WaitTimeout's event set

	// timerName caches the derived timer-event name for the process
	// name it was built from. Both survive recycle: a reset kernel
	// re-elaborating the same prototype hands each Proc the same role
	// (and name) again, so the concat happens once per pool slot, not
	// once per run.
	timerName    string
	timerNameFor string
}

// timerEvent lazily creates the process's private timed-wait event.
func (p *Proc) timerEvent() *Event {
	if p.timerEv == nil {
		if p.timerNameFor != p.name {
			p.timerNameFor = p.name
			p.timerName = p.name + ".timer"
		}
		p.timerEv = p.k.NewEvent(p.timerName)
	}
	return p.timerEv
}

// threadWorker is a pooled goroutine that hosts thread-process bodies
// one after another. The goroutine and its handshake channel pair are
// the expensive part of a thread process; decoupling them from Proc
// lets Kernel.Reset keep them warm in the kernel's pool, so a reused
// kernel re-elaborates threads without spawning goroutines — a cost the
// rebuild-per-run path necessarily pays on every fresh kernel.
type threadWorker struct {
	resume chan struct{}
	yield  chan struct{}
	p      *Proc // current assignment; set by the kernel before resume
	die    bool  // set by Shutdown before the final resume
}

// main is the worker goroutine: park, run one thread body to
// completion (or kill-unwind), hand control back, repeat.
func (w *threadWorker) main() {
	for {
		<-w.resume
		if w.die {
			return
		}
		w.runBody()
		w.yield <- struct{}{}
	}
}

// runBody executes the assigned thread body, converting panics into
// either a clean kill-unwind or a recorded thread panic.
func (w *threadWorker) runBody() {
	p := w.p
	defer func() {
		if r := recover(); r != nil {
			p.state = procDone
			if _, ok := r.(killedError); ok {
				return
			}
			// Re-panicking on the kernel's goroutine would lose the
			// stack; record and surface through the kernel instead.
			p.k.threadPanic = fmt.Errorf("sim: thread %q panicked: %v", p.name, r)
		}
	}()
	p.tfn(p.ctx)
	p.state = procDone
}

// acquireWorker pops a parked worker or spawns a fresh one.
func (k *Kernel) acquireWorker() *threadWorker {
	if n := len(k.workerPool); n > 0 {
		w := k.workerPool[n-1]
		k.workerPool[n-1] = nil
		k.workerPool = k.workerPool[:n-1]
		return w
	}
	w := &threadWorker{resume: make(chan struct{}), yield: make(chan struct{})}
	go w.main()
	return w
}

// releaseWorker parks a worker whose body has fully unwound.
func (k *Kernel) releaseWorker(w *threadWorker) {
	w.p = nil
	k.workerPool = append(k.workerPool, w)
}

// shutdownWorkers terminates every parked worker goroutine. Live
// (assigned) workers must have been released via kill first.
func (k *Kernel) shutdownWorkers() {
	for i, w := range k.workerPool {
		w.die = true
		w.resume <- struct{}{}
		k.workerPool[i] = nil
	}
	k.workerPool = k.workerPool[:0]
}

// allocProc returns a blank process bound to k with the next creation
// id, drawing from the free list populated by Reset when possible.
func (k *Kernel) allocProc(name string, kind procKind) *Proc {
	var p *Proc
	if n := len(k.procPool); n > 0 {
		p = k.procPool[n-1]
		k.procPool[n-1] = nil
		k.procPool = k.procPool[:n-1]
	} else {
		p = &Proc{}
	}
	p.k = k
	p.name = name
	p.id = len(k.procs)
	p.kind = kind
	return p
}

// recycle strips the process back to a reusable blank for the kernel
// free list. The ThreadCtx survives (it only references the Proc), and
// the worker goroutine has already been returned to the kernel's pool
// by kill or by the final activation, so p.w is nil here. Called by
// Kernel.Reset after the body (if any) has unwound.
func (p *Proc) recycle() {
	p.name = ""
	p.state = procWaiting
	p.fn = nil
	p.tfn = nil
	for i := range p.static {
		p.static[i] = nil
	}
	p.static = p.static[:0]
	for i := range p.dynamicWait {
		p.dynamicWait[i] = nil
	}
	p.dynamicWait = p.dynamicWait[:0]
	for i := range p.waitSet {
		p.waitSet[i] = nil
	}
	p.waitSet = p.waitSet[:0]
	p.waitCause = nil
	p.noInit = false
	p.activations = 0
	p.runNanos = 0
	p.pubActivations = 0
	p.pubRunNanos = 0
	p.killed = false
	p.timerEv = nil
}

// Name reports the process name.
func (p *Proc) Name() string { return p.name }

// Done reports whether a thread process body has returned. Method
// processes never report done.
func (p *Proc) Done() bool { return p.state == procDone }

// Method registers a method process: fn is invoked once at simulation
// start (unless NoInit was applied) and again whenever any event in its
// static sensitivity list fires. Method bodies must not block.
func (k *Kernel) Method(name string, fn func(), sensitivity ...*Event) *Proc {
	p := k.allocProc(name, methodProc)
	p.fn = fn
	p.attachStatic(sensitivity)
	k.procs = append(k.procs, p)
	k.enqueueInitial(p)
	return p
}

// MethodNoInit registers a method process that is not activated at
// simulation start; it runs only when its sensitivity list fires.
func (k *Kernel) MethodNoInit(name string, fn func(), sensitivity ...*Event) *Proc {
	p := k.allocProc(name, methodProc)
	p.fn = fn
	p.noInit = true
	p.attachStatic(sensitivity)
	k.procs = append(k.procs, p)
	return p
}

// Thread registers a thread process. The body runs on its own goroutine
// but the kernel resumes exactly one process at a time, so bodies need
// no locking against other processes. The body suspends itself with the
// ThreadCtx wait primitives; when it returns the process is done.
func (k *Kernel) Thread(name string, fn func(*ThreadCtx), sensitivity ...*Event) *Proc {
	p := k.allocProc(name, threadProc)
	p.tfn = fn
	p.attachStatic(sensitivity)
	if p.ctx == nil {
		p.ctx = &ThreadCtx{p: p}
	}
	k.procs = append(k.procs, p)
	k.enqueueInitial(p)
	return p
}

func (p *Proc) attachStatic(sensitivity []*Event) {
	// Copy rather than alias the variadic slice: a recycled process
	// keeps its buffer, so re-elaborating pooled procs (Rearm, or a
	// checkpoint session's respawn loop) is allocation-free in steady
	// state — and the caller's slice can never mutate the wiring.
	p.static = append(p.static[:0], sensitivity...)
	for _, e := range sensitivity {
		e.static = append(e.static, p)
	}
}

// dynamicFired resumes a dynamically waiting process because event e of
// its wait set fired.
func (p *Proc) dynamicFired(e *Event) {
	for _, other := range p.dynamicWait {
		if other != e {
			other.removeDynamic(p)
		}
	}
	// Truncate rather than nil so the wait-set buffer's capacity is
	// reused by the next Wait (zero allocations in steady state);
	// "dynamically waiting" is len(dynamicWait) > 0 everywhere.
	p.dynamicWait = p.dynamicWait[:0]
	p.waitCause = e
	p.k.makeRunnable(p)
}

// run executes one activation of the process during the evaluate phase.
func (p *Proc) run() {
	p.state = procRunning
	p.k.stats.Activations++
	instrumented := p.k.instr != nil
	var t0 time.Time
	if instrumented {
		p.activations++
		t0 = time.Now()
	}
	switch p.kind {
	case methodProc:
		p.fn()
		if p.state == procRunning {
			p.state = procWaiting
		}
	case threadProc:
		if p.w == nil {
			p.w = p.k.acquireWorker()
			p.w.p = p
		}
		p.w.resume <- struct{}{}
		<-p.w.yield
		if p.state == procDone {
			p.k.releaseWorker(p.w)
			p.w = nil
		}
	}
	if instrumented {
		p.runNanos += int64(time.Since(t0))
	}
}

// suspend parks the thread body until the kernel resumes it.
func (p *Proc) suspend() {
	p.state = procWaiting
	p.w.yield <- struct{}{}
	<-p.w.resume
	if p.killed {
		panic(killedError{p.name})
	}
}

// kill unwinds a started, parked thread body and parks its worker back
// in the kernel's pool.
func (p *Proc) kill() {
	if p.kind != threadProc || p.w == nil || p.state == procDone {
		return
	}
	p.killed = true
	p.w.resume <- struct{}{}
	<-p.w.yield
	p.k.releaseWorker(p.w)
	p.w = nil
}

// ThreadCtx is the API a thread process body uses to interact with the
// kernel: suspending on events and simulated time.
type ThreadCtx struct {
	p *Proc
}

// Kernel returns the kernel the thread runs on.
func (c *ThreadCtx) Kernel() *Kernel { return c.p.k }

// Now returns the current simulation time.
func (c *ThreadCtx) Now() Time { return c.p.k.now }

// Proc returns the process handle of this thread.
func (c *ThreadCtx) Proc() *Proc { return c.p }

// Wait suspends until any of the given events fires and returns the one
// that did. With no arguments it waits on the process's static
// sensitivity list.
func (c *ThreadCtx) Wait(events ...*Event) *Event {
	p := c.p
	if len(events) == 0 {
		events = p.static
		if len(events) == 0 {
			panic("sim: Wait() with no events and no static sensitivity in " + p.name)
		}
	}
	p.dynamicWait = append(p.dynamicWait[:0], events...)
	for _, e := range events {
		e.dynamic = append(e.dynamic, p)
	}
	p.waitCause = nil
	p.suspend()
	return p.waitCause
}

// WaitTime suspends for d of simulated time.
func (c *ThreadCtx) WaitTime(d Time) {
	p := c.p
	p.timerEvent().Notify(d)
	c.Wait(p.timerEv)
}

// WaitTimeout suspends until one of events fires or d elapses. It
// returns the fired event, or nil if the timeout won.
func (c *ThreadCtx) WaitTimeout(d Time, events ...*Event) *Event {
	p := c.p
	p.timerEvent().Notify(d)
	set := append(p.waitSet[:0], events...)
	set = append(set, p.timerEv)
	p.waitSet = set
	got := c.Wait(set...)
	if got == p.timerEv {
		return nil
	}
	p.timerEv.Cancel()
	return got
}

// WaitDelta suspends for exactly one delta cycle.
func (c *ThreadCtx) WaitDelta() {
	p := c.p
	p.timerEvent().Notify(0)
	c.Wait(p.timerEv)
}
