package sim

import (
	"fmt"
	"time"
)

type procState uint8

const (
	procWaiting procState = iota
	procRunnable
	procRunning
	procDone
)

type procKind uint8

const (
	methodProc procKind = iota
	threadProc
)

// errKilled is the panic sentinel used to unwind a thread process
// goroutine when the kernel shuts down.
type killedError struct{ name string }

func (e killedError) Error() string { return "sim: thread " + e.name + " killed" }

// Proc is a simulation process: either a method process (a callback
// re-invoked on each activation, like SC_METHOD) or a thread process
// (a goroutine with its own control flow that suspends via Wait, like
// SC_THREAD). The kernel runs at most one process at a time, in
// ascending creation order within each delta cycle, so simulations are
// fully deterministic.
type Proc struct {
	k    *Kernel
	name string
	id   int
	kind procKind

	state  procState
	fn     func()           // method body
	tfn    func(*ThreadCtx) // thread body
	static []*Event

	dynamicWait []*Event // events the thread currently waits on (any-of)
	waitCause   *Event   // which event resumed the last dynamic wait

	noInit bool

	// instrumentation accumulators, maintained only while an
	// Instrument is attached to the kernel (see instrument.go);
	// pub* record the portion already flushed to the registry.
	activations    uint64
	runNanos       int64
	pubActivations uint64
	pubRunNanos    int64

	// thread machinery
	started bool
	killed  bool
	resume  chan struct{}
	yield   chan struct{}
	ctx     *ThreadCtx
	timerEv *Event // lazily created private event for timed waits
}

// Name reports the process name.
func (p *Proc) Name() string { return p.name }

// Done reports whether a thread process body has returned. Method
// processes never report done.
func (p *Proc) Done() bool { return p.state == procDone }

// Method registers a method process: fn is invoked once at simulation
// start (unless NoInit was applied) and again whenever any event in its
// static sensitivity list fires. Method bodies must not block.
func (k *Kernel) Method(name string, fn func(), sensitivity ...*Event) *Proc {
	p := &Proc{k: k, name: name, id: len(k.procs), kind: methodProc, fn: fn}
	p.attachStatic(sensitivity)
	k.procs = append(k.procs, p)
	k.enqueueInitial(p)
	return p
}

// MethodNoInit registers a method process that is not activated at
// simulation start; it runs only when its sensitivity list fires.
func (k *Kernel) MethodNoInit(name string, fn func(), sensitivity ...*Event) *Proc {
	p := &Proc{k: k, name: name, id: len(k.procs), kind: methodProc, fn: fn, noInit: true}
	p.attachStatic(sensitivity)
	k.procs = append(k.procs, p)
	return p
}

// Thread registers a thread process. The body runs on its own goroutine
// but the kernel resumes exactly one process at a time, so bodies need
// no locking against other processes. The body suspends itself with the
// ThreadCtx wait primitives; when it returns the process is done.
func (k *Kernel) Thread(name string, fn func(*ThreadCtx), sensitivity ...*Event) *Proc {
	p := &Proc{
		k: k, name: name, id: len(k.procs), kind: threadProc, tfn: fn,
		resume: make(chan struct{}), yield: make(chan struct{}),
	}
	p.attachStatic(sensitivity)
	p.ctx = &ThreadCtx{p: p}
	k.procs = append(k.procs, p)
	k.enqueueInitial(p)
	return p
}

func (p *Proc) attachStatic(sensitivity []*Event) {
	p.static = sensitivity
	for _, e := range sensitivity {
		e.static = append(e.static, p)
	}
}

// dynamicFired resumes a dynamically waiting process because event e of
// its wait set fired.
func (p *Proc) dynamicFired(e *Event) {
	for _, other := range p.dynamicWait {
		if other != e {
			other.removeDynamic(p)
		}
	}
	p.dynamicWait = nil
	p.waitCause = e
	p.k.makeRunnable(p)
}

// run executes one activation of the process during the evaluate phase.
func (p *Proc) run() {
	p.state = procRunning
	p.k.stats.Activations++
	instrumented := p.k.instr != nil
	var t0 time.Time
	if instrumented {
		p.activations++
		t0 = time.Now()
	}
	switch p.kind {
	case methodProc:
		p.fn()
		if p.state == procRunning {
			p.state = procWaiting
		}
	case threadProc:
		if !p.started {
			p.started = true
			go p.threadMain()
		} else {
			p.resume <- struct{}{}
		}
		<-p.yield
	}
	if instrumented {
		p.runNanos += int64(time.Since(t0))
	}
}

func (p *Proc) threadMain() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedError); ok {
				p.state = procDone
				p.yield <- struct{}{}
				return
			}
			// Re-panic on the kernel's goroutine would lose the stack;
			// record and surface through the kernel instead.
			p.state = procDone
			p.k.threadPanic = fmt.Errorf("sim: thread %q panicked: %v", p.name, r)
			p.yield <- struct{}{}
			return
		}
	}()
	p.tfn(p.ctx)
	p.state = procDone
	p.yield <- struct{}{}
}

// suspend parks the thread goroutine until the kernel resumes it.
func (p *Proc) suspend() {
	p.state = procWaiting
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedError{p.name})
	}
}

// kill unwinds a started, parked thread goroutine.
func (p *Proc) kill() {
	if p.kind != threadProc || !p.started || p.state == procDone {
		return
	}
	p.killed = true
	p.resume <- struct{}{}
	<-p.yield
}

// ThreadCtx is the API a thread process body uses to interact with the
// kernel: suspending on events and simulated time.
type ThreadCtx struct {
	p *Proc
}

// Kernel returns the kernel the thread runs on.
func (c *ThreadCtx) Kernel() *Kernel { return c.p.k }

// Now returns the current simulation time.
func (c *ThreadCtx) Now() Time { return c.p.k.now }

// Proc returns the process handle of this thread.
func (c *ThreadCtx) Proc() *Proc { return c.p }

// Wait suspends until any of the given events fires and returns the one
// that did. With no arguments it waits on the process's static
// sensitivity list.
func (c *ThreadCtx) Wait(events ...*Event) *Event {
	p := c.p
	if len(events) == 0 {
		events = p.static
		if len(events) == 0 {
			panic("sim: Wait() with no events and no static sensitivity in " + p.name)
		}
	}
	p.dynamicWait = append(p.dynamicWait[:0], events...)
	for _, e := range events {
		e.dynamic = append(e.dynamic, p)
	}
	p.waitCause = nil
	p.suspend()
	return p.waitCause
}

// WaitTime suspends for d of simulated time.
func (c *ThreadCtx) WaitTime(d Time) {
	p := c.p
	if p.timerEv == nil {
		p.timerEv = p.k.NewEvent(p.name + ".timer")
	}
	p.timerEv.Notify(d)
	c.Wait(p.timerEv)
}

// WaitTimeout suspends until one of events fires or d elapses. It
// returns the fired event, or nil if the timeout won.
func (c *ThreadCtx) WaitTimeout(d Time, events ...*Event) *Event {
	p := c.p
	if p.timerEv == nil {
		p.timerEv = p.k.NewEvent(p.name + ".timer")
	}
	p.timerEv.Notify(d)
	set := make([]*Event, 0, len(events)+1)
	set = append(set, events...)
	set = append(set, p.timerEv)
	got := c.Wait(set...)
	if got == p.timerEv {
		return nil
	}
	p.timerEv.Cancel()
	return got
}

// WaitDelta suspends for exactly one delta cycle.
func (c *ThreadCtx) WaitDelta() {
	p := c.p
	if p.timerEv == nil {
		p.timerEv = p.k.NewEvent(p.name + ".timer")
	}
	p.timerEv.Notify(0)
	c.Wait(p.timerEv)
}
