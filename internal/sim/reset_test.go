package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

// pingModel elaborates a small two-event model with a method and a
// thread and returns the recorded activation log. The same function is
// used to verify that a Reset kernel reproduces the run of a fresh one.
func pingModel(k *Kernel, log *[]string) {
	ping := k.NewEvent("ping")
	pong := k.NewEvent("pong")
	k.MethodNoInit("echo", func() {
		*log = append(*log, "echo@"+k.Now().String())
		pong.Notify(NS(3))
	}, ping)
	k.Thread("driver", func(ctx *ThreadCtx) {
		for i := 0; i < 3; i++ {
			ping.Notify(NS(5))
			ctx.Wait(pong)
			*log = append(*log, "pong@"+ctx.Now().String())
		}
	})
}

func runPing(t *testing.T, k *Kernel) []string {
	t.Helper()
	var log []string
	pingModel(k, &log)
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if len(log) != 6 {
		t.Fatalf("model did not complete: %v", log)
	}
	return log
}

// TestResetReproducesFreshKernel: the core reuse guarantee — run,
// Reset, re-elaborate, run again must match a fresh kernel exactly,
// including the stats counters.
func TestResetReproducesFreshKernel(t *testing.T) {
	k := NewKernel()
	first := runPing(t, k)
	firstStats := k.Stats()
	for i := 0; i < 3; i++ {
		k.Reset()
		if k.Now() != 0 || k.Pending() || (k.Stats() != Stats{}) {
			t.Fatalf("Reset left state: now=%v pending=%v stats=%+v", k.Now(), k.Pending(), k.Stats())
		}
		again := runPing(t, k)
		if strings.Join(first, ",") != strings.Join(again, ",") {
			t.Fatalf("reset run %d diverged:\nfirst %v\nagain %v", i, first, again)
		}
		if k.Stats() != firstStats {
			t.Fatalf("reset run %d stats diverged: %+v vs %+v", i, k.Stats(), firstStats)
		}
	}
	k.Shutdown()
}

// TestResetAfterStop: a kernel stopped mid-run resets cleanly and the
// stopped flag does not leak into the next elaboration.
func TestResetAfterStop(t *testing.T) {
	k := NewKernel()
	tick := k.NewEvent("tick")
	n := 0
	k.MethodNoInit("ticker", func() {
		n++
		if n == 2 {
			k.Stop()
		}
		tick.Notify(NS(1))
	}, tick)
	tick.Notify(NS(1))
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if !k.Stopped() || n != 2 {
		t.Fatalf("Stop did not take: stopped=%v n=%d", k.Stopped(), n)
	}
	k.Reset()
	runPing(t, k)
	k.Shutdown()
}

// TestResetAfterDeltaOverflow: a kernel that died in a zero-delay loop
// (ErrDeltaOverflow) must come back clean.
func TestResetAfterDeltaOverflow(t *testing.T) {
	k := NewKernel()
	k.SetMaxDeltas(100)
	loop := k.NewEvent("loop")
	k.MethodNoInit("spin", func() { loop.Notify(0) }, loop)
	loop.Notify(0)
	if err := k.Run(NS(10)); !errors.Is(err, ErrDeltaOverflow) {
		t.Fatalf("want ErrDeltaOverflow, got %v", err)
	}
	k.Reset()
	runPing(t, k)
	k.Shutdown()
}

// TestResetWithLiveThreads: threads parked mid-wait (their goroutines
// alive, their waits never satisfied) are shut down by Reset and do
// not disturb the next run.
func TestResetWithLiveThreads(t *testing.T) {
	k := NewKernel()
	never := k.NewEvent("never")
	entered := false
	resumed := false
	k.Thread("parked", func(ctx *ThreadCtx) {
		entered = true
		ctx.Wait(never)
		resumed = true
	})
	if err := k.Run(US(1)); err != nil {
		t.Fatal(err)
	}
	if !entered || resumed {
		t.Fatalf("thread state unexpected: entered=%v resumed=%v", entered, resumed)
	}
	k.Reset()
	if resumed {
		t.Fatal("Reset resumed a parked thread instead of killing it")
	}
	runPing(t, k)
	k.Shutdown()
}

// TestResetDetachesTracers: tracers reference the dead elaboration's
// probes, so Reset must drop them — the next run must not sample old
// probes or grow the VCD.
func TestResetDetachesTracers(t *testing.T) {
	k := NewKernel()
	sig := NewSignal(k, "sig", 0)
	var vcd strings.Builder
	tr := NewTracer(&vcd)
	tr.AddProbe("sig", 1, func() string {
		if sig.Read() != 0 {
			return "1"
		}
		return "0"
	})
	k.AttachTracer(tr)
	k.Thread("wiggle", func(ctx *ThreadCtx) {
		sig.Write(1)
		ctx.WaitTime(NS(5))
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	before := vcd.Len()
	if before == 0 {
		t.Fatal("tracer recorded nothing")
	}
	k.Reset()
	runPing(t, k)
	if vcd.Len() != before {
		t.Fatalf("detached tracer still sampled after Reset: %d -> %d bytes", before, vcd.Len())
	}
	k.Shutdown()
}

// TestResetWithInstrument: the attached Instrument survives Reset and
// its published registry deltas restart from zero — the counters after
// two reset-separated identical runs are exactly twice one run's.
func TestResetWithInstrument(t *testing.T) {
	counterValue := func(reg *obs.Registry, name string) float64 {
		for _, m := range reg.Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		return -1
	}

	one := obs.NewRegistry()
	k1 := NewKernel()
	k1.SetInstrument(&Instrument{Metrics: one, TID: 1})
	runPing(t, k1)
	k1.Shutdown()
	single := counterValue(one, "sim.delta_cycles")
	if single <= 0 {
		t.Fatalf("no delta cycle count in single-run registry: %v", single)
	}

	reg := obs.NewRegistry()
	k := NewKernel()
	k.SetInstrument(&Instrument{Metrics: reg, TID: 1})
	runPing(t, k)
	k.Reset()
	runPing(t, k)
	k.Shutdown()
	if double := counterValue(reg, "sim.delta_cycles"); double != 2*single {
		// A reset instrument that fails to rewind its publication
		// watermark would underflow and publish garbage here.
		t.Fatalf("instrument deltas wrong across Reset: single=%v double=%v", single, double)
	}
}

// TestResetNoStaleTimedEntries: pending timed notifications scheduled
// before Reset must never fire after it.
func TestResetNoStaleTimedEntries(t *testing.T) {
	k := NewKernel()
	late := k.NewEvent("late")
	fired := false
	k.MethodNoInit("boom", func() { fired = true }, late)
	late.Notify(NS(100))
	if err := k.Run(NS(10)); err != nil {
		t.Fatal(err)
	}
	k.Reset()
	if k.Pending() {
		t.Fatal("timed entries survived Reset")
	}
	// Recycled Event objects must not resurrect the old notification.
	runPing(t, k)
	if err := k.Run(US(1)); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stale timed notification fired after Reset")
	}
	k.Shutdown()
}

// TestResetWhileRunningPanics documents the Reset contract.
func TestResetWhileRunningPanics(t *testing.T) {
	k := NewKernel()
	ev := k.NewEvent("ev")
	panicked := make(chan any, 1)
	k.MethodNoInit("resetter", func() {
		defer func() { panicked <- recover() }()
		k.Reset()
	}, ev)
	ev.Notify(NS(1))
	if err := k.Run(US(1)); err != nil {
		t.Fatal(err)
	}
	if r := <-panicked; r == nil {
		t.Fatal("Reset during Run did not panic")
	}
}

// TestNextEventTimeDuringEvaluate: querying the next event time from
// model code (inEvaluate) must be read-only — it skips a stale heap
// entry without popping it, and the later idle-time query compacts.
func TestNextEventTimeDuringEvaluate(t *testing.T) {
	k := NewKernel()
	victim := k.NewEvent("victim")
	probe := k.NewEvent("probe")
	var seen Time
	var heapLenDuring int
	k.MethodNoInit("observer", func() {
		// victim's 50ns entry is stale by now (displaced by the 10ns
		// notification below); the live minimum is 10ns.
		seen = k.NextEventTime()
		heapLenDuring = k.timed.Len()
	}, probe)
	k.MethodNoInit("sink", func() {}, victim)

	victim.Notify(NS(50)) // becomes stale
	victim.Notify(NS(10)) // displaces it
	probe.NotifyImmediate()
	lenBefore := k.timed.Len() // 2 entries: stale@50, live@10
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if seen != NS(10) {
		t.Fatalf("NextEventTime during evaluate = %v, want 10ns", seen)
	}
	if heapLenDuring != lenBefore {
		t.Fatalf("in-run NextEventTime mutated the heap: %d -> %d entries", lenBefore, heapLenDuring)
	}
	// Drain the live notification, leaving only the stale 50ns entry,
	// then verify the idle-time query compacts it away.
	if err := k.Run(NS(20)); err != nil {
		t.Fatal(err)
	}
	if got := k.NextEventTime(); got != TimeMax {
		t.Fatalf("idle NextEventTime = %v, want TimeMax", got)
	}
	if k.timed.Len() != 0 {
		t.Fatalf("idle NextEventTime left %d stale entries", k.timed.Len())
	}
}

// TestSteadyStateTimedSchedulingAllocs pins the allocation-lean event
// queue: once a kernel has warmed up, a self-retriggering timed event
// loop runs with zero allocations per Run.
func TestSteadyStateTimedSchedulingAllocs(t *testing.T) {
	k := NewKernel()
	tick := k.NewEvent("tick")
	count := 0
	k.MethodNoInit("ticker", func() {
		count++
		tick.Notify(NS(10))
	}, tick)
	tick.Notify(NS(10))
	// Warm up: first runs grow the queues to their high-water mark.
	if err := k.Run(US(1)); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := k.Run(NS(100)); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state timed scheduling allocates %.1f allocs/run, want 0", avg)
	}
	if count == 0 {
		t.Fatal("ticker never ran")
	}
}
