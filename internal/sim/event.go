package sim

// notifyKind ranks the three SystemC notification flavours. A pending
// notification may only be displaced by a "stronger" (earlier) one:
// immediate beats delta beats any timed, and an earlier timed beats a
// later timed.
type notifyKind uint8

const (
	notifyNone notifyKind = iota
	notifyTimed
	notifyDelta
	notifyImmediate
)

// Event is a synchronization primitive processes can wait on and that
// can be notified immediately, at the next delta cycle, or after a
// simulated-time delay. Events carry no value; signals layer a value on
// top via their value-changed event.
type Event struct {
	k    *Kernel
	name string
	// idx is the event's position in the kernel's creation-ordered
	// event list, assigned by NewEvent; checkpoints reference events by
	// this index (see snapshot.go).
	idx int

	// static are processes statically sensitive to this event.
	static []*Proc
	// dynamic are processes dynamically waiting on this event; cleared
	// when the event fires.
	dynamic []*Proc

	// pending tracks the strongest outstanding notification so weaker
	// ones can be discarded per IEEE 1666 rules.
	pending     notifyKind
	pendingTime Time
	pendingSeq  uint64
}

// Name reports the diagnostic name the event was created with.
func (e *Event) Name() string { return e.name }

// NewEvent creates a named event bound to the kernel. After a Reset,
// retired events are recycled from the kernel's free list (keeping
// their sensitivity-list capacity) so re-elaboration does not allocate
// in steady state.
func (k *Kernel) NewEvent(name string) *Event {
	var e *Event
	if n := len(k.eventPool); n > 0 {
		e = k.eventPool[n-1]
		k.eventPool[n-1] = nil
		k.eventPool = k.eventPool[:n-1]
		e.k = k
		e.name = name
	} else {
		e = &Event{k: k, name: name}
	}
	e.idx = len(k.events)
	k.events = append(k.events, e)
	return e
}

// recycle strips the event back to a reusable blank, keeping the
// capacity of its waiter lists. Called by Kernel.Reset.
func (e *Event) recycle() {
	e.name = ""
	for i := range e.static {
		e.static[i] = nil
	}
	e.static = e.static[:0]
	for i := range e.dynamic {
		e.dynamic[i] = nil
	}
	e.dynamic = e.dynamic[:0]
	e.pending = notifyNone
	e.pendingTime = 0
	e.pendingSeq = 0
}

// Notify schedules the event to fire after delay of simulated time.
// A zero delay is a delta notification: the event fires in the delta
// notification phase of the current time step, after the update phase.
// A pending weaker/later notification is cancelled, matching IEEE 1666.
func (e *Event) Notify(delay Time) {
	if delay == 0 {
		e.notifyDelta()
		return
	}
	at := e.k.now + delay
	switch e.pending {
	case notifyImmediate, notifyDelta:
		return // stronger notification already pending
	case notifyTimed:
		if e.pendingTime <= at {
			return // earlier timed notification already pending
		}
		// Later pending notification is displaced; the stale heap entry
		// is ignored at pop time via pendingSeq.
	}
	e.pending = notifyTimed
	e.pendingTime = at
	e.pendingSeq = e.k.scheduleTimed(e, at)
}

// notifyDelta schedules the event for the delta notification phase.
func (e *Event) notifyDelta() {
	if e.pending == notifyImmediate || e.pending == notifyDelta {
		return
	}
	e.pending = notifyDelta
	e.k.deltaQueue = append(e.k.deltaQueue, e)
}

// NotifyImmediate fires the event in the current evaluation phase:
// processes sensitive to it become runnable in the same delta cycle.
// Outside the evaluation phase it degrades to a delta notification.
func (e *Event) NotifyImmediate() {
	if !e.k.inEvaluate {
		e.notifyDelta()
		return
	}
	e.pending = notifyImmediate
	e.fire()
	e.pending = notifyNone
}

// Cancel withdraws any pending notification on the event.
func (e *Event) Cancel() {
	e.pending = notifyNone
}

// fire makes every process sensitive to the event runnable and clears
// dynamic waiters.
func (e *Event) fire() {
	for _, p := range e.static {
		if p.state == procWaiting && len(p.dynamicWait) == 0 {
			e.k.makeRunnable(p)
		}
	}
	if len(e.dynamic) > 0 {
		for _, p := range e.dynamic {
			p.dynamicFired(e)
		}
		e.dynamic = e.dynamic[:0]
	}
}

// removeDynamic drops p from the dynamic waiter list (used when a
// wait-with-timeout resumes through another member of its event set).
func (e *Event) removeDynamic(p *Proc) {
	for i, q := range e.dynamic {
		if q == p {
			e.dynamic = append(e.dynamic[:i], e.dynamic[i+1:]...)
			return
		}
	}
}
