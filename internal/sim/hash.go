package sim

import "math"

// Incremental state hashing for convergence detection: a faulty run
// that provably returns to the golden trajectory can stop simulating
// early and inherit the golden classification (the redundant-suffix
// insight of dynamic-slicing fault-injection accelerators). The hash
// must cover everything that can influence either future behavior or
// the final observation — model state via Hashable, scheduler state
// via Kernel.HashScheduler — and nothing that is pure diagnostics
// (propagation traces, activity counters), so that transient faults
// whose effects wash out still converge.

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// StateHash accumulates a 64-bit FNV-1a digest over typed state words.
// The zero value is NOT ready; use NewStateHash (or Reset). It is a
// value type — pass by pointer, read with Sum.
type StateHash struct {
	h uint64
}

// NewStateHash returns an initialized digest.
func NewStateHash() StateHash { return StateHash{h: fnvOffset64} }

// Reset reinitializes the digest.
func (s *StateHash) Reset() { s.h = fnvOffset64 }

// Sum reports the current digest value.
func (s *StateHash) Sum() uint64 { return s.h }

// Byte folds one byte.
func (s *StateHash) Byte(b byte) {
	s.h = (s.h ^ uint64(b)) * fnvPrime64
}

// U64 folds a 64-bit word, little-endian.
func (s *StateHash) U64(v uint64) {
	h := s.h
	h = (h ^ (v & 0xff)) * fnvPrime64
	h = (h ^ (v >> 8 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 16 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 24 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 32 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 40 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 48 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 56)) * fnvPrime64
	s.h = h
}

// U32 folds a 32-bit word.
func (s *StateHash) U32(v uint32) { s.U64(uint64(v)) }

// Int folds an int.
func (s *StateHash) Int(v int) { s.U64(uint64(int64(v))) }

// Bool folds a boolean.
func (s *StateHash) Bool(v bool) {
	if v {
		s.Byte(1)
	} else {
		s.Byte(0)
	}
}

// Time folds a simulated time.
func (s *StateHash) Time(t Time) { s.U64(uint64(t)) }

// F64 folds a float64 by its IEEE-754 bits. NaN payloads differ, so
// models using NaN sentinels should fold a presence bit instead.
func (s *StateHash) F64(v float64) { s.U64(math.Float64bits(v)) }

// Bytes folds a byte slice, length-prefixed so adjacent slices cannot
// alias into the same digest.
func (s *StateHash) Bytes(b []byte) {
	s.Int(len(b))
	h := s.h
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	s.h = h
}

// Str folds a string, length-prefixed.
func (s *StateHash) Str(v string) {
	s.Int(len(v))
	h := s.h
	for i := 0; i < len(v); i++ {
		h = (h ^ uint64(v[i])) * fnvPrime64
	}
	s.h = h
}

// StateSignature digests a model's final state into the 64-bit
// outcome signature the adaptive campaign plane is keyed by: two runs
// whose models report equal signatures ended in the same mutable
// state. Callers fold run-level verdicts (classification, detail) on
// top with MixSignature — the model digest alone deliberately excludes
// diagnostics, mirroring the Hashable contract.
func StateSignature(m Hashable) uint64 {
	h := NewStateHash()
	m.HashState(&h)
	return h.Sum()
}

// MixSignature folds extra words into a signature (classification
// bytes, detail hashes), never returning 0 so a computed signature is
// distinguishable from "not computed".
func MixSignature(sig uint64, words ...uint64) uint64 {
	h := StateHash{h: fnvOffset64}
	h.U64(sig)
	for _, w := range words {
		h.U64(w)
	}
	if s := h.Sum(); s != 0 {
		return s
	}
	return 1
}

// Hashable is the convention prototypes implement to support
// convergence early-exit, companion to Snapshottable: HashState folds
// every piece of mutable model state that can influence future
// behavior or the final observation into h. Pure diagnostics that
// nothing reads back — propagation traces, transaction logs — must be
// left out, or transient faults that leave a diagnostic residue but no
// behavioral one would never converge. Two models whose HashState
// digests are equal (and whose kernels' HashScheduler digests are
// equal) must produce byte-identical futures and observations.
type Hashable interface {
	HashState(h *StateHash)
}

// StatePooler is an optional extension of Snapshottable for
// allocation-conscious checkpointing: SnapshotStateInto behaves like
// SnapshotState but may reuse the buffers of prev (a value previously
// returned by SnapshotState/SnapshotStateInto of the same model type;
// nil means allocate fresh). Checkpoint trees recycle their node
// states through this, keeping steady-state forking allocation-free.
type StatePooler interface {
	SnapshotStateInto(prev any) any
}

// SnapshotModelState captures m's state through its pooled path when
// available, falling back to the plain SnapshotState.
func SnapshotModelState(m Snapshottable, prev any) any {
	if p, ok := m.(StatePooler); ok {
		return p.SnapshotStateInto(prev)
	}
	return m.SnapshotState()
}

// Elaborated reports how many events and processes the kernel
// currently holds. Convergence trajectories record these right after
// model elaboration so live-run hashes can be restricted to the model
// prefix, excluding the stressor's own event/process.
func (k *Kernel) Elaborated() (events, procs int) {
	return len(k.events), len(k.procs)
}

// HashScheduler folds the kernel's scheduler state into h, restricted
// to the first nEvents events and nProcs processes (pass the counts
// Elaborated reported on the golden kernel): the clock, every live
// pending notification of a retained event — ordered by (at, seq) but
// hashed as (at, event index), because absolute sequence numbers
// differ between runs that scheduled extra (stressor) notifications —
// and the retained processes' run states. The kernel must be quiescent
// (between Run calls); activity counters are deliberately excluded,
// they are diagnostics and differ between golden and faulty runs that
// behave identically after convergence.
func (k *Kernel) HashScheduler(h *StateHash, nEvents, nProcs int) {
	h.Time(k.now)

	// Collect live timed entries targeting retained events into the
	// kernel-owned scratch buffer (no allocation in steady state), sort
	// by (at, seq) — the deterministic firing order — then fold
	// (at, event index) pairs.
	scratch := k.hashScratch[:0]
	for _, te := range k.timed {
		if te.ev.idx < nEvents && te.ev.pending == notifyTimed && te.ev.pendingSeq == te.seq {
			scratch = append(scratch, cpTimed{at: te.at, seq: te.seq, ev: te.ev.idx})
		}
	}
	sortCpTimed(scratch)
	k.hashScratch = scratch
	h.Int(len(scratch))
	for _, te := range scratch {
		h.Time(te.at)
		h.Int(te.ev)
	}

	// Delta/immediate notifications cannot be pending on a quiescent
	// kernel, so the (at, index) list above fully determines every
	// retained event's notification state; only process run states
	// remain.
	for _, p := range k.procs[:nProcs] {
		h.Byte(byte(p.state))
	}
}
