package sim

import (
	"errors"
	"fmt"
	"time"
)

// DefaultMaxDeltas bounds the number of delta cycles the kernel will
// execute at a single time point before concluding the model contains a
// zero-delay combinational loop.
const DefaultMaxDeltas = 1_000_000

// ErrDeltaOverflow reports a (combinational) loop that never lets
// simulated time advance.
var ErrDeltaOverflow = errors.New("sim: delta cycle limit exceeded (zero-delay loop?)")

// Updater is implemented by primitive channels (signals) that defer
// their value change to the update phase of the delta cycle.
type Updater interface {
	update()
}

// Rearmable is the convention prototypes implement to support kernel
// reuse across campaign runs: after Kernel.Reset returns the kernel to
// its pre-elaboration state, Rearm must re-create the prototype's
// processes and events on the kernel in the exact order the original
// elaboration did (process ids are assigned by creation order and the
// evaluate phase runs in id order, so a different order changes the
// schedule) and re-seed all mutable model state to its post-build
// value. A re-armed prototype must be observationally identical to a
// freshly built one.
type Rearmable interface {
	Rearm(k *Kernel)
}

// timedEntry is one pending timed notification in the event queue.
type timedEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

func (e timedEntry) before(o timedEntry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// timedHeap is a binary min-heap ordered by (at, seq). The sift
// routines are hand-rolled rather than going through container/heap:
// the interface-based heap boxes every timedEntry into an `any` on
// Push and Pop, which costs one allocation per timed notification —
// the single hottest allocation in a fault campaign.
type timedHeap []timedEntry

func (h timedHeap) Len() int { return len(h) }

func (h *timedHeap) push(e timedEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *timedHeap) pop() timedEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = timedEntry{} // release the *Event reference in the vacated slot
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].before(s[l]) {
			m = r
		}
		if !s[m].before(s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Stats reports kernel activity counters, used by the abstraction-level
// benchmarks (experiment E1) to attribute cost to scheduling work.
type Stats struct {
	// DeltaCycles is the total number of evaluate/update rounds run.
	DeltaCycles uint64
	// Activations is the total number of process activations.
	Activations uint64
	// TimeSteps is the number of distinct time points visited.
	TimeSteps uint64
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use; all model code runs on the kernel's goroutine (or on
// thread-process goroutines that the kernel resumes one at a time).
type Kernel struct {
	now    Time
	procs  []*Proc
	events []*Event

	runnable   []*Proc
	deltaQueue []*Event
	timed      timedHeap
	seq        uint64

	// spare buffers recycled by the evaluate and delta notification
	// phases: each phase swaps its queue with the spare instead of
	// allocating a fresh slice per delta cycle.
	runnableSpare []*Proc
	deltaSpare    []*Event

	updateQueue []Updater

	inEvaluate bool
	running    bool
	stopped    bool
	maxDeltas  uint64

	stats       Stats
	threadPanic error

	tracers []*Tracer
	instr   *Instrument

	// gen counts elaboration generations: Reset bumps it, invalidating
	// every Checkpoint taken before (see snapshot.go).
	gen uint64

	// free lists recycling elaboration objects across Reset: NewEvent,
	// Method and Thread draw from these, so re-elaborating the same
	// prototype after Reset allocates nothing in steady state.
	eventPool []*Event
	procPool  []*Proc

	// hashScratch is HashScheduler's sorted-timed-entry buffer, reused
	// across calls so convergence checks stay allocation-free.
	hashScratch []cpTimed

	// workerPool parks idle thread-worker goroutines (see threadWorker
	// in process.go). Workers survive Reset, so a reused kernel resumes
	// thread processes on warm goroutines instead of paying go + channel
	// allocation per elaboration; Shutdown terminates them.
	workerPool []*threadWorker
}

// NewKernel creates an empty simulator.
func NewKernel() *Kernel {
	return &Kernel{maxDeltas: DefaultMaxDeltas}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Stats returns a copy of the kernel activity counters.
func (k *Kernel) Stats() Stats { return k.stats }

// SetMaxDeltas overrides the per-time-point delta cycle watchdog.
func (k *Kernel) SetMaxDeltas(n uint64) { k.maxDeltas = n }

// Stop makes the current Run call return after the ongoing delta cycle
// completes. Further Run calls resume the simulation.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop was called during the last Run.
func (k *Kernel) Stopped() bool { return k.stopped }

// scheduleTimed enqueues a timed notification and returns its sequence
// number for stale-entry detection.
func (k *Kernel) scheduleTimed(e *Event, at Time) uint64 {
	k.seq++
	k.timed.push(timedEntry{at: at, seq: k.seq, ev: e})
	return k.seq
}

// makeRunnable marks p for execution in the current (or next) evaluate
// phase.
func (k *Kernel) makeRunnable(p *Proc) {
	if p.state == procRunnable || p.state == procDone {
		return
	}
	p.state = procRunnable
	k.runnable = append(k.runnable, p)
}

// enqueueInitial schedules the initial activation of a newly created
// process.
func (k *Kernel) enqueueInitial(p *Proc) {
	k.makeRunnable(p)
}

// DeferUpdate registers an Updater to run in the update phase of the
// current delta cycle. Registering the same Updater twice in one delta
// cycle is the caller's responsibility to avoid (signals guard it).
func (k *Kernel) DeferUpdate(u Updater) {
	k.updateQueue = append(k.updateQueue, u)
}

// Run advances the simulation by d of simulated time (relative), or
// until no events remain, or until Stop is called, whichever comes
// first. Run(TimeMax) runs to event-queue exhaustion.
func (k *Kernel) Run(d Time) error {
	until := TimeMax
	if d != TimeMax && k.now <= TimeMax-d {
		until = k.now + d
	}
	return k.RunUntil(until)
}

// RunUntil advances the simulation up to and including absolute time
// `until`.
func (k *Kernel) RunUntil(until Time) error {
	if k.running {
		return errors.New("sim: RunUntil called re-entrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	if in := k.instr; in != nil {
		runStart := time.Now()
		startStats := k.stats
		sp := in.Trace.Begin("sim", "kernel.run", in.TID)
		defer func() {
			k.flushInstr(runStart)
			sp.Arg("delta_cycles", k.stats.DeltaCycles-startStats.DeltaCycles).
				Arg("activations", k.stats.Activations-startStats.Activations).
				Arg("time_steps", k.stats.TimeSteps-startStats.TimeSteps).
				Arg("sim_now", k.now.String()).End()
		}()
	}

	for {
		// One time point: delta cycles until quiescent.
		var deltasHere uint64
		for len(k.runnable) > 0 || len(k.deltaQueue) > 0 {
			if err := k.deltaCycle(); err != nil {
				return err
			}
			if k.threadPanic != nil {
				err := k.threadPanic
				k.threadPanic = nil
				return err
			}
			deltasHere++
			if deltasHere > k.maxDeltas {
				return fmt.Errorf("%w at %s", ErrDeltaOverflow, k.now)
			}
			if k.stopped {
				return nil
			}
		}
		if in := k.instr; in != nil && in.deltasPerStep != nil && deltasHere > 0 {
			in.deltasPerStep.Observe(deltasHere)
		}

		// Advance to the next timed notification.
		fired := false
		for k.timed.Len() > 0 {
			next := k.timed[0]
			if next.at > until {
				break
			}
			if fired && next.at != k.now {
				break // fire only one time point per outer iteration
			}
			k.timed.pop()
			e := next.ev
			if e.pending != notifyTimed || e.pendingSeq != next.seq {
				continue // stale entry displaced by a stronger notification
			}
			if !fired {
				k.now = next.at
				k.stats.TimeSteps++
				fired = true
				if in := k.instr; in != nil && in.eventQueueDepth != nil {
					in.eventQueueDepth.Observe(uint64(k.timed.Len() + 1))
				}
			}
			e.pending = notifyNone
			e.fire()
		}
		if !fired {
			// Nothing left within the horizon.
			if until != TimeMax && until > k.now {
				k.now = until
			}
			return nil
		}
	}
}

// sortRunnable orders a runnable batch by ascending process id.
// Insertion sort: batches are small (typically a handful of processes)
// and nearly sorted (processes usually become runnable in id order),
// and unlike sort.Slice it does not allocate a closure — the evaluate
// phase must stay allocation-free in steady state.
func sortRunnable(ps []*Proc) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && ps[j].id > p.id {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// deltaCycle runs one evaluate phase, one update phase and one delta
// notification phase.
func (k *Kernel) deltaCycle() error {
	k.stats.DeltaCycles++
	if in := k.instr; in != nil && in.runnableDepth != nil {
		in.runnableDepth.Observe(uint64(len(k.runnable) + len(k.deltaQueue)))
	}

	// Evaluate: run every runnable process in creation order. Processes
	// made runnable during the phase (immediate notification) run within
	// the same phase. The batch buffer and the live queue ping-pong via
	// the spare so no delta cycle allocates.
	k.inEvaluate = true
	for len(k.runnable) > 0 {
		batch := k.runnable
		k.runnable = k.runnableSpare[:0]
		sortRunnable(batch)
		for _, p := range batch {
			if p.state != procRunnable {
				continue
			}
			p.run()
			if k.threadPanic != nil {
				k.inEvaluate = false
				k.runnableSpare = batch[:0]
				return nil // surfaced by caller
			}
		}
		k.runnableSpare = batch[:0]
	}
	k.inEvaluate = false

	// Update: apply deferred primitive-channel updates.
	updates := k.updateQueue
	k.updateQueue = k.updateQueue[:0]
	for _, u := range updates {
		u.update()
	}

	// Delta notification: fire events notified with zero delay. Same
	// spare-buffer swap as the evaluate phase.
	dq := k.deltaQueue
	k.deltaQueue = k.deltaSpare[:0]
	for _, e := range dq {
		if e.pending != notifyDelta {
			continue
		}
		e.pending = notifyNone
		e.fire()
	}
	k.deltaSpare = dq[:0]

	for _, tr := range k.tracers {
		tr.sampleDelta(k.now)
	}
	return nil
}

// Pending reports whether any activity (runnable processes, delta
// notifications or timed notifications) remains.
func (k *Kernel) Pending() bool {
	return len(k.runnable) > 0 || len(k.deltaQueue) > 0 || k.timed.Len() > 0
}

// NextEventTime returns the absolute time of the earliest pending timed
// notification, or TimeMax when none is pending.
//
// Contract: while the kernel is running (in particular from model code
// during the evaluate phase) the query is strictly read-only — it scans
// past stale entries without popping them, because RunUntil's pop loop
// and Notify's displacement bookkeeping own the heap's structure at
// that point. Only when the kernel is idle between Run calls does it
// compact stale entries away so repeated idle queries stay cheap.
func (k *Kernel) NextEventTime() Time {
	if k.running || k.inEvaluate {
		best := TimeMax
		for _, te := range k.timed {
			if te.ev.pending == notifyTimed && te.ev.pendingSeq == te.seq && te.at < best {
				best = te.at
			}
		}
		return best
	}
	for k.timed.Len() > 0 {
		next := k.timed[0]
		if next.ev.pending == notifyTimed && next.ev.pendingSeq == next.seq {
			return next.at
		}
		k.timed.pop()
	}
	return TimeMax
}

// Shutdown kills every live thread-process goroutine. Call it when the
// simulation is finished to avoid leaking goroutines; the kernel must
// not be used afterwards. To reuse the kernel instead, call Reset.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		p.kill()
	}
	k.shutdownWorkers()
}

// Reset returns the kernel to its pristine pre-elaboration state so the
// same instance can host another elaboration + run, as if freshly
// created by NewKernel. Live thread bodies are unwound cleanly, but —
// unlike Shutdown — their worker goroutines are parked in the kernel's
// pool for the next elaboration, and all queues keep their capacity: a
// reset kernel is pre-sized to the previous run's high-water mark, and
// the retired Event and Proc objects are recycled through free lists,
// so a campaign that re-elaborates the same prototype per scenario
// settles into a zero-allocation steady state with no goroutine churn.
//
// What survives Reset: the max-delta limit, the attached Instrument
// (its per-run publication state restarts from zero so registry deltas
// stay correct), the free lists and the worker pool. What does not:
// tracers are detached (their probes reference the dead elaboration),
// and all events, processes, pending notifications, stats and the
// clock are discarded. Reset must not be called while Run is in
// progress.
func (k *Kernel) Reset() {
	if k.running {
		panic("sim: Reset called while the kernel is running")
	}
	for _, p := range k.procs {
		p.kill()
	}
	// Push retired objects in reverse creation order: the pools are
	// LIFO, so the next elaboration of the same prototype pops each
	// event and process back into its previous role — waiter-list
	// capacities and cached derived names line up exactly, which is
	// what makes re-elaboration allocation-free in steady state.
	for i := len(k.events) - 1; i >= 0; i-- {
		e := k.events[i]
		e.recycle()
		k.eventPool = append(k.eventPool, e)
		k.events[i] = nil
	}
	k.events = k.events[:0]
	for i := len(k.procs) - 1; i >= 0; i-- {
		p := k.procs[i]
		p.recycle()
		k.procPool = append(k.procPool, p)
		k.procs[i] = nil
	}
	k.procs = k.procs[:0]

	for i := range k.runnable {
		k.runnable[i] = nil
	}
	k.runnable = k.runnable[:0]
	for i := range k.deltaQueue {
		k.deltaQueue[i] = nil
	}
	k.deltaQueue = k.deltaQueue[:0]
	for i := range k.updateQueue {
		k.updateQueue[i] = nil
	}
	k.updateQueue = k.updateQueue[:0]
	for i := range k.timed {
		k.timed[i] = timedEntry{}
	}
	k.timed = k.timed[:0]

	k.now = 0
	k.seq = 0
	k.stats = Stats{}
	k.inEvaluate = false
	k.stopped = false
	k.threadPanic = nil
	k.gen++
	k.tracers = k.tracers[:0]
	if in := k.instr; in != nil {
		in.resetKernelState()
	}
}
