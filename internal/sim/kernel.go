package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"
)

// DefaultMaxDeltas bounds the number of delta cycles the kernel will
// execute at a single time point before concluding the model contains a
// zero-delay combinational loop.
const DefaultMaxDeltas = 1_000_000

// ErrDeltaOverflow reports a (combinational) loop that never lets
// simulated time advance.
var ErrDeltaOverflow = errors.New("sim: delta cycle limit exceeded (zero-delay loop?)")

// Updater is implemented by primitive channels (signals) that defer
// their value change to the update phase of the delta cycle.
type Updater interface {
	update()
}

// timedEntry is one pending timed notification in the event queue.
type timedEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

type timedHeap []timedEntry

func (h timedHeap) Len() int { return len(h) }
func (h timedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timedHeap) Push(x any)   { *h = append(*h, x.(timedEntry)) }
func (h *timedHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stats reports kernel activity counters, used by the abstraction-level
// benchmarks (experiment E1) to attribute cost to scheduling work.
type Stats struct {
	// DeltaCycles is the total number of evaluate/update rounds run.
	DeltaCycles uint64
	// Activations is the total number of process activations.
	Activations uint64
	// TimeSteps is the number of distinct time points visited.
	TimeSteps uint64
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use; all model code runs on the kernel's goroutine (or on
// thread-process goroutines that the kernel resumes one at a time).
type Kernel struct {
	now    Time
	procs  []*Proc
	events []*Event

	runnable   []*Proc
	deltaQueue []*Event
	timed      timedHeap
	seq        uint64

	updateQueue []Updater

	inEvaluate bool
	running    bool
	stopped    bool
	maxDeltas  uint64

	stats       Stats
	threadPanic error

	tracers []*Tracer
	instr   *Instrument
}

// NewKernel creates an empty simulator.
func NewKernel() *Kernel {
	return &Kernel{maxDeltas: DefaultMaxDeltas}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Stats returns a copy of the kernel activity counters.
func (k *Kernel) Stats() Stats { return k.stats }

// SetMaxDeltas overrides the per-time-point delta cycle watchdog.
func (k *Kernel) SetMaxDeltas(n uint64) { k.maxDeltas = n }

// Stop makes the current Run call return after the ongoing delta cycle
// completes. Further Run calls resume the simulation.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop was called during the last Run.
func (k *Kernel) Stopped() bool { return k.stopped }

// scheduleTimed enqueues a timed notification and returns its sequence
// number for stale-entry detection.
func (k *Kernel) scheduleTimed(e *Event, at Time) uint64 {
	k.seq++
	heap.Push(&k.timed, timedEntry{at: at, seq: k.seq, ev: e})
	return k.seq
}

// makeRunnable marks p for execution in the current (or next) evaluate
// phase.
func (k *Kernel) makeRunnable(p *Proc) {
	if p.state == procRunnable || p.state == procDone {
		return
	}
	p.state = procRunnable
	k.runnable = append(k.runnable, p)
}

// enqueueInitial schedules the initial activation of a newly created
// process.
func (k *Kernel) enqueueInitial(p *Proc) {
	k.makeRunnable(p)
}

// DeferUpdate registers an Updater to run in the update phase of the
// current delta cycle. Registering the same Updater twice in one delta
// cycle is the caller's responsibility to avoid (signals guard it).
func (k *Kernel) DeferUpdate(u Updater) {
	k.updateQueue = append(k.updateQueue, u)
}

// Run advances the simulation by d of simulated time (relative), or
// until no events remain, or until Stop is called, whichever comes
// first. Run(TimeMax) runs to event-queue exhaustion.
func (k *Kernel) Run(d Time) error {
	until := TimeMax
	if d != TimeMax && k.now <= TimeMax-d {
		until = k.now + d
	}
	return k.RunUntil(until)
}

// RunUntil advances the simulation up to and including absolute time
// `until`.
func (k *Kernel) RunUntil(until Time) error {
	if k.running {
		return errors.New("sim: RunUntil called re-entrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	if in := k.instr; in != nil {
		runStart := time.Now()
		startStats := k.stats
		sp := in.Trace.Begin("sim", "kernel.run", in.TID)
		defer func() {
			k.flushInstr(runStart)
			sp.Arg("delta_cycles", k.stats.DeltaCycles-startStats.DeltaCycles).
				Arg("activations", k.stats.Activations-startStats.Activations).
				Arg("time_steps", k.stats.TimeSteps-startStats.TimeSteps).
				Arg("sim_now", k.now.String()).End()
		}()
	}

	for {
		// One time point: delta cycles until quiescent.
		var deltasHere uint64
		for len(k.runnable) > 0 || len(k.deltaQueue) > 0 {
			if err := k.deltaCycle(); err != nil {
				return err
			}
			if k.threadPanic != nil {
				err := k.threadPanic
				k.threadPanic = nil
				return err
			}
			deltasHere++
			if deltasHere > k.maxDeltas {
				return fmt.Errorf("%w at %s", ErrDeltaOverflow, k.now)
			}
			if k.stopped {
				return nil
			}
		}
		if in := k.instr; in != nil && in.deltasPerStep != nil && deltasHere > 0 {
			in.deltasPerStep.Observe(deltasHere)
		}

		// Advance to the next timed notification.
		fired := false
		for k.timed.Len() > 0 {
			next := k.timed[0]
			if next.at > until {
				break
			}
			if fired && next.at != k.now {
				break // fire only one time point per outer iteration
			}
			heap.Pop(&k.timed)
			e := next.ev
			if e.pending != notifyTimed || e.pendingSeq != next.seq {
				continue // stale entry displaced by a stronger notification
			}
			if !fired {
				k.now = next.at
				k.stats.TimeSteps++
				fired = true
				if in := k.instr; in != nil && in.eventQueueDepth != nil {
					in.eventQueueDepth.Observe(uint64(k.timed.Len() + 1))
				}
			}
			e.pending = notifyNone
			e.fire()
		}
		if !fired {
			// Nothing left within the horizon.
			if until != TimeMax && until > k.now {
				k.now = until
			}
			return nil
		}
	}
}

// deltaCycle runs one evaluate phase, one update phase and one delta
// notification phase.
func (k *Kernel) deltaCycle() error {
	k.stats.DeltaCycles++
	if in := k.instr; in != nil && in.runnableDepth != nil {
		in.runnableDepth.Observe(uint64(len(k.runnable) + len(k.deltaQueue)))
	}

	// Evaluate: run every runnable process in creation order. Processes
	// made runnable during the phase (immediate notification) run within
	// the same phase.
	k.inEvaluate = true
	for len(k.runnable) > 0 {
		batch := k.runnable
		k.runnable = nil
		sort.Slice(batch, func(i, j int) bool { return batch[i].id < batch[j].id })
		for _, p := range batch {
			if p.state != procRunnable {
				continue
			}
			p.run()
			if k.threadPanic != nil {
				k.inEvaluate = false
				return nil // surfaced by caller
			}
		}
	}
	k.inEvaluate = false

	// Update: apply deferred primitive-channel updates.
	updates := k.updateQueue
	k.updateQueue = k.updateQueue[:0]
	for _, u := range updates {
		u.update()
	}

	// Delta notification: fire events notified with zero delay.
	dq := k.deltaQueue
	k.deltaQueue = nil
	for _, e := range dq {
		if e.pending != notifyDelta {
			continue
		}
		e.pending = notifyNone
		e.fire()
	}

	for _, tr := range k.tracers {
		tr.sampleDelta(k.now)
	}
	return nil
}

// Pending reports whether any activity (runnable processes, delta
// notifications or timed notifications) remains.
func (k *Kernel) Pending() bool {
	return len(k.runnable) > 0 || len(k.deltaQueue) > 0 || k.timed.Len() > 0
}

// NextEventTime returns the absolute time of the earliest pending timed
// notification, or TimeMax when none is pending. Stale heap entries make
// this an upper-bound-accurate but cheap query.
func (k *Kernel) NextEventTime() Time {
	for k.timed.Len() > 0 {
		next := k.timed[0]
		if next.ev.pending == notifyTimed && next.ev.pendingSeq == next.seq {
			return next.at
		}
		heap.Pop(&k.timed)
	}
	return TimeMax
}

// Shutdown kills every live thread-process goroutine. Call it when the
// simulation is finished to avoid leaking goroutines; the kernel must
// not be used afterwards.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		p.kill()
	}
}
