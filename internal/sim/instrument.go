package sim

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Instrument connects a kernel to the observability layer
// (internal/obs). Attaching one is strictly optional: every hot-path
// hook in the kernel is a single nil check away, so an uninstrumented
// kernel runs the exact same instruction sequence as before and
// simulation results are byte-identical either way (instrumentation
// only reads wall-clock time, never simulated state).
//
// Metrics recorded (per kernel, accumulated across Run calls):
//
//	sim.delta_cycles / sim.activations / sim.time_steps   counters
//	sim.run_ns                                            counter (wall clock inside RunUntil)
//	sim.proc.activations{proc=...}                        counter per process
//	sim.proc.run_ns{proc=...}                             counter per process
//	sim.runnable_depth                                    histogram (procs per delta cycle)
//	sim.deltas_per_step                                   histogram (delta cycles per time point)
//	sim.event_queue_depth                                 histogram (timed heap size per time point)
//
// When Trace is set, each RunUntil call records one span on its own
// trace row so concurrent campaign kernels stay distinguishable.
type Instrument struct {
	// Metrics receives the kernel counters and histograms; nil
	// disables metric recording.
	Metrics *obs.Registry
	// Trace receives one span per RunUntil call; nil disables spans.
	Trace *obs.TraceRecorder
	// TID is the trace row for this kernel's spans. 0 auto-assigns a
	// unique row (1000, 1001, ...) at attach time, keeping scenario
	// kernels apart from campaign worker rows.
	TID int

	// hot-path handles resolved once at attach time
	runnableDepth   *obs.Histogram
	deltasPerStep   *obs.Histogram
	eventQueueDepth *obs.Histogram

	// kernel counter values already published to Metrics, so repeated
	// Run calls add only deltas.
	published Stats
	runNanos  int64
}

// kernelTID hands out trace rows for auto-assigned kernel instruments;
// rows below 1000 are reserved for campaign workers.
var kernelTID atomic.Int64

// SetInstrument attaches in to the kernel (nil detaches). Attach
// before Run; the instrument is not shared between kernels.
func (k *Kernel) SetInstrument(in *Instrument) {
	k.instr = in
	if in == nil {
		return
	}
	if in.TID == 0 {
		in.TID = 1000 + int(kernelTID.Add(1))
	}
	if in.Metrics != nil {
		in.runnableDepth = in.Metrics.Histogram("sim.runnable_depth")
		in.deltasPerStep = in.Metrics.Histogram("sim.deltas_per_step")
		in.eventQueueDepth = in.Metrics.Histogram("sim.event_queue_depth")
	}
}

// resetKernelState clears the instrument's per-elaboration publication
// state when the kernel is Reset. The kernel counters restart from
// zero, so the already-published watermark must too — otherwise the
// next flush would compute uint64 deltas against the old (larger)
// totals and publish garbage. Registry totals themselves are
// cumulative across runs by design and are left untouched.
func (in *Instrument) resetKernelState() {
	in.published = Stats{}
	in.runNanos = 0
}

// ProcStat is one process's activity record, available on any kernel
// whose instrument had Metrics attached while it ran.
type ProcStat struct {
	Name        string
	Activations uint64
	RunTime     time.Duration
}

// ProcStats reports per-process activation counts and cumulative run
// time in creation order. Counts are zero unless an Instrument with
// Metrics was attached during the runs being measured.
func (k *Kernel) ProcStats() []ProcStat {
	out := make([]ProcStat, len(k.procs))
	for i, p := range k.procs {
		out[i] = ProcStat{Name: p.name, Activations: p.activations,
			RunTime: time.Duration(p.runNanos)}
	}
	return out
}

// flushInstr publishes the counters accumulated since the previous
// flush into the registry; called at the end of every RunUntil so
// long-running simulations stream rather than burst.
func (k *Kernel) flushInstr(runStart time.Time) {
	in := k.instr
	if in == nil || in.Metrics == nil {
		return
	}
	reg := in.Metrics
	if d := k.stats.DeltaCycles - in.published.DeltaCycles; d > 0 {
		reg.Counter("sim.delta_cycles").Add(d)
	}
	if d := k.stats.Activations - in.published.Activations; d > 0 {
		reg.Counter("sim.activations").Add(d)
	}
	if d := k.stats.TimeSteps - in.published.TimeSteps; d > 0 {
		reg.Counter("sim.time_steps").Add(d)
	}
	in.published = k.stats
	reg.Counter("sim.run_ns").Add(uint64(time.Since(runStart).Nanoseconds()))
	for _, p := range k.procs {
		if d := p.activations - p.pubActivations; d > 0 {
			reg.Counter("sim.proc.activations", obs.L("proc", p.name)).Add(d)
			p.pubActivations = p.activations
		}
		if d := p.runNanos - p.pubRunNanos; d > 0 {
			reg.Counter("sim.proc.run_ns", obs.L("proc", p.name)).Add(uint64(d))
			p.pubRunNanos = p.runNanos
		}
	}
}
