package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0 s"},
		{PS(7), "7 ps"},
		{NS(15), "15 ns"},
		{US(2), "2 us"},
		{MS(9), "9 ms"},
		{Sec(3), "3 s"},
		{TimeMax, "t-max"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Sec(1).Seconds() != 1.0 {
		t.Errorf("Sec(1).Seconds() = %v", Sec(1).Seconds())
	}
	if NS(1).Nanoseconds() != 1.0 {
		t.Errorf("NS(1).Nanoseconds() = %v", NS(1).Nanoseconds())
	}
	if MS(1) != US(1000) || US(1) != NS(1000) || NS(1) != PS(1000) {
		t.Error("unit ladder inconsistent")
	}
}

func TestTimedNotification(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var firedAt []Time
	k.MethodNoInit("watch", func() { firedAt = append(firedAt, k.Now()) }, e)
	e.Notify(NS(10))
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if len(firedAt) != 1 || firedAt[0] != NS(10) {
		t.Fatalf("firedAt = %v, want [10 ns]", firedAt)
	}
	if k.Now() != NS(10) {
		t.Fatalf("Now() = %v, want 10 ns", k.Now())
	}
}

func TestNotifyOverrideRules(t *testing.T) {
	// An earlier timed notification displaces a later pending one.
	k := NewKernel()
	e := k.NewEvent("e")
	var fired []Time
	k.MethodNoInit("watch", func() { fired = append(fired, k.Now()) }, e)
	e.Notify(NS(100))
	e.Notify(NS(5))  // displaces the 100ns one
	e.Notify(NS(50)) // ignored: 5ns is earlier
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != NS(5) {
		t.Fatalf("fired = %v, want [5 ns]", fired)
	}
}

func TestDeltaBeatsTimed(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	n := 0
	k.MethodNoInit("watch", func() { n++ }, e)
	e.Notify(NS(10))
	e.Notify(0) // delta displaces timed
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
	if k.Now() != 0 {
		t.Fatalf("event should have fired at time 0 (delta), Now=%v", k.Now())
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	n := 0
	k.MethodNoInit("watch", func() { n++ }, e)
	e.Notify(NS(10))
	e.Cancel()
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("cancelled event fired %d times", n)
	}
}

func TestMethodInitialActivation(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Method("init", func() { ran++ })
	noInit := 0
	k.MethodNoInit("noinit", func() { noInit++ })
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("Method ran %d times at init, want 1", ran)
	}
	if noInit != 0 {
		t.Errorf("MethodNoInit ran %d times at init, want 0", noInit)
	}
}

func TestSignalDeltaSemantics(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	var seenDuringWrite int
	k.Method("writer", func() {
		s.Write(42)
		seenDuringWrite = s.Read() // must still be old value
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if seenDuringWrite != 0 {
		t.Errorf("read-after-write in same evaluate phase = %d, want 0", seenDuringWrite)
	}
	if s.Read() != 42 {
		t.Errorf("committed value = %d, want 42", s.Read())
	}
}

func TestSignalLastWriteWins(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	k.Method("writer", func() {
		s.Write(1)
		s.Write(2)
		s.Write(3)
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 3 {
		t.Errorf("value = %d, want 3 (last write wins)", s.Read())
	}
}

func TestSignalChangedEvent(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	changes := 0
	k.MethodNoInit("mon", func() { changes++ }, s.Changed())
	k.Thread("drv", func(c *ThreadCtx) {
		s.Write(1)
		c.WaitTime(NS(1))
		s.Write(1) // no change: event must not fire
		c.WaitTime(NS(1))
		s.Write(2)
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if changes != 2 {
		t.Errorf("changed fired %d times, want 2", changes)
	}
}

func TestSignalForceRelease(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 10)
	s.Force(99)
	if s.Read() != 99 {
		t.Errorf("forced Read = %d, want 99", s.Read())
	}
	if s.ReadDriven() != 10 {
		t.Errorf("ReadDriven = %d, want 10", s.ReadDriven())
	}
	if !s.Forced() {
		t.Error("Forced() = false")
	}
	// Writes while forced still commit to the driven value.
	k.Method("w", func() { s.Write(20) })
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 99 {
		t.Errorf("forced Read after write = %d, want 99", s.Read())
	}
	s.Release()
	if s.Read() != 20 {
		t.Errorf("released Read = %d, want 20 (driven)", s.Read())
	}
}

func TestForceFiresChanged(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", false)
	n := 0
	k.MethodNoInit("mon", func() { n++ }, s.Changed())
	k.Thread("inj", func(c *ThreadCtx) {
		c.WaitTime(NS(5))
		s.Force(true)
		c.WaitTime(NS(5))
		s.Release()
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if n != 2 {
		t.Errorf("changed fired %d times across force/release, want 2", n)
	}
}

func TestThreadWaitTime(t *testing.T) {
	k := NewKernel()
	var at []Time
	k.Thread("t", func(c *ThreadCtx) {
		for i := 0; i < 3; i++ {
			c.WaitTime(NS(10))
			at = append(at, c.Now())
		}
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	want := []Time{NS(10), NS(20), NS(30)}
	if len(at) != 3 {
		t.Fatalf("at = %v", at)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("at[%d] = %v, want %v", i, at[i], want[i])
		}
	}
}

func TestThreadWaitAnyOf(t *testing.T) {
	k := NewKernel()
	a := k.NewEvent("a")
	b := k.NewEvent("b")
	var cause string
	k.Thread("t", func(c *ThreadCtx) {
		got := c.Wait(a, b)
		cause = got.Name()
	})
	k.Thread("kick", func(c *ThreadCtx) {
		c.WaitTime(NS(1))
		b.Notify(0)
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if cause != "b" {
		t.Errorf("wait cause = %q, want b", cause)
	}
}

func TestThreadWaitTimeout(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var timedOut, gotEvent bool
	k.Thread("t", func(c *ThreadCtx) {
		if c.WaitTimeout(NS(5), e) == nil {
			timedOut = true
		}
		e.Notify(NS(2))
		if got := c.WaitTimeout(NS(100), e); got == e {
			gotEvent = true
		}
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("first wait should have timed out")
	}
	if !gotEvent {
		t.Error("second wait should have caught the event")
	}
}

func TestStaticSensitivityThread(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	hits := 0
	k.Thread("t", func(c *ThreadCtx) {
		for {
			c.Wait() // static list
			hits++
			if hits == 3 {
				return
			}
		}
	}, e)
	k.Thread("kick", func(c *ThreadCtx) {
		for i := 0; i < 3; i++ {
			c.WaitTime(NS(1))
			e.Notify(0)
		}
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if hits != 3 {
		t.Errorf("hits = %d, want 3", hits)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	// Two processes triggered by one event must always run in creation
	// order, giving reproducible campaigns.
	run := func() string {
		k := NewKernel()
		e := k.NewEvent("e")
		var order strings.Builder
		k.MethodNoInit("b-second", func() { order.WriteString("B") }, e)
		k.MethodNoInit("c-third", func() { order.WriteString("C") }, e)
		k.Thread("kick", func(c *ThreadCtx) {
			for i := 0; i < 4; i++ {
				c.WaitTime(NS(1))
				e.Notify(0)
			}
		})
		if err := k.Run(TimeMax); err != nil {
			t.Fatal(err)
		}
		return order.String()
	}
	want := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != want {
			t.Fatalf("run %d ordering %q differs from %q", i, got, want)
		}
	}
	if want != "BCBCBCBC" {
		t.Fatalf("ordering = %q, want BCBCBCBC", want)
	}
}

func TestImmediateNotification(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	deltaAtFire := uint64(0)
	k.MethodNoInit("watch", func() { deltaAtFire = k.Stats().DeltaCycles }, e)
	k.Method("kick", func() { e.NotifyImmediate() })
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	// Immediate: watcher ran within the same delta cycle (count 0 before
	// the first deltaCycle increments at entry, so both saw cycle #1).
	if deltaAtFire != 1 {
		t.Errorf("watcher ran in delta %d, want 1 (same cycle as notifier)", deltaAtFire)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Thread("t", func(c *ThreadCtx) {
		for {
			c.WaitTime(NS(1))
			n++
			if n == 5 {
				c.Kernel().Stop()
			}
		}
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false")
	}
	if n != 5 {
		t.Errorf("iterations = %d, want 5", n)
	}
	k.Shutdown()
}

func TestDeltaOverflow(t *testing.T) {
	k := NewKernel()
	k.SetMaxDeltas(100)
	e := k.NewEvent("loop")
	k.MethodNoInit("spin", func() { e.Notify(0) }, e)
	e.Notify(0)
	err := k.Run(TimeMax)
	if err == nil {
		t.Fatal("expected delta overflow error")
	}
	if !strings.Contains(err.Error(), "delta cycle limit") {
		t.Errorf("err = %v", err)
	}
}

func TestRunHorizon(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	fired := false
	k.MethodNoInit("w", func() { fired = true }, e)
	e.Notify(NS(100))
	if err := k.Run(NS(50)); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if k.Now() != NS(50) {
		t.Errorf("Now = %v, want 50 ns", k.Now())
	}
	if err := k.Run(NS(50)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event at horizon boundary did not fire on resumed run")
	}
	if k.Now() != NS(100) {
		t.Errorf("Now = %v, want 100 ns", k.Now())
	}
}

func TestNextEventTime(t *testing.T) {
	k := NewKernel()
	e1 := k.NewEvent("e1")
	e2 := k.NewEvent("e2")
	k.MethodNoInit("w", func() {}, e1, e2)
	e1.Notify(NS(30))
	e2.Notify(NS(10))
	if got := k.NextEventTime(); got != NS(10) {
		t.Errorf("NextEventTime = %v, want 10 ns", got)
	}
	// Displace e2's notification: the stale heap entry must be skipped.
	e2.Cancel()
	if got := k.NextEventTime(); got != NS(30) {
		t.Errorf("NextEventTime after cancel = %v, want 30 ns", got)
	}
}

func TestThreadPanicSurfaces(t *testing.T) {
	k := NewKernel()
	k.Thread("boom", func(c *ThreadCtx) {
		c.WaitTime(NS(1))
		panic("kaboom")
	})
	err := k.Run(TimeMax)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want thread panic surfaced", err)
	}
}

func TestShutdownKillsThreads(t *testing.T) {
	k := NewKernel()
	p := k.Thread("forever", func(c *ThreadCtx) {
		for {
			c.WaitTime(NS(1))
		}
	})
	if err := k.Run(NS(10)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !p.Done() {
		t.Error("thread not done after Shutdown")
	}
}

func TestStatsCounters(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	k.MethodNoInit("w", func() {}, e)
	k.Thread("kick", func(c *ThreadCtx) {
		for i := 0; i < 3; i++ {
			c.WaitTime(NS(1))
			e.Notify(0)
		}
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.TimeSteps != 3 {
		t.Errorf("TimeSteps = %d, want 3", st.TimeSteps)
	}
	if st.Activations == 0 || st.DeltaCycles == 0 {
		t.Errorf("zero counters: %+v", st)
	}
}

func TestTracerVCD(t *testing.T) {
	k := NewKernel()
	var buf strings.Builder
	tr := NewTracer(&buf)
	s := NewSignal(k, "clk", false)
	TraceSignal(tr, s)
	k.AttachTracer(tr)
	k.Thread("drv", func(c *ThreadCtx) {
		for i := 0; i < 4; i++ {
			c.WaitTime(NS(5))
			s.Write(!s.Read())
		}
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	out := buf.String()
	for _, want := range []string{"$timescale 1ps $end", "$var wire 1 ! clk $end", "#5000", "1!", "0!"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
}

func TestTracerVectorProbe(t *testing.T) {
	k := NewKernel()
	var buf strings.Builder
	tr := NewTracer(&buf)
	val := "0000"
	tr.AddProbe("bus", 4, func() string { return val })
	k.AttachTracer(tr)
	k.Thread("drv", func(c *ThreadCtx) {
		c.WaitTime(NS(1))
		val = "1010"
		c.WaitTime(NS(1))
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "b1010 !") {
		t.Errorf("VCD missing vector change:\n%s", buf.String())
	}
}

func TestVCDCodeUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := vcdCode(i)
		if seen[c] {
			t.Fatalf("duplicate code %q at %d", c, i)
		}
		seen[c] = true
	}
}

// Property: however notifications interleave, simulation time never goes
// backwards and every fired event fires at-or-after its notify time.
func TestPropertyTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 64 {
			delays = delays[:64]
		}
		k := NewKernel()
		e := k.NewEvent("e")
		last := Time(0)
		ok := true
		k.MethodNoInit("w", func() {
			if k.Now() < last {
				ok = false
			}
			last = k.Now()
		}, e)
		k.Thread("driver", func(c *ThreadCtx) {
			for _, d := range delays {
				e.Notify(Time(d%97) * Nanosecond)
				c.WaitTime(Time(d%13+1) * Nanosecond)
			}
		})
		if err := k.Run(TimeMax); err != nil {
			return false
		}
		k.Shutdown()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a signal driven by arbitrary write sequences always reports
// the last committed write, and Force always wins while held.
func TestPropertySignalCommit(t *testing.T) {
	f := func(vals []int8, forceAt uint8) bool {
		if len(vals) == 0 {
			return true
		}
		k := NewKernel()
		s := NewSignal(k, "s", 0)
		k.Thread("drv", func(c *ThreadCtx) {
			for _, v := range vals {
				s.Write(int(v))
				c.WaitTime(NS(1))
			}
		})
		if err := k.Run(TimeMax); err != nil {
			return false
		}
		k.Shutdown()
		if s.Read() != int(vals[len(vals)-1]) {
			return false
		}
		s.Force(1000)
		defer s.Release()
		return s.Read() == 1000 && s.ReadDriven() == int(vals[len(vals)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelMethodActivation(b *testing.B) {
	k := NewKernel()
	e := k.NewEvent("e")
	k.MethodNoInit("m", func() {}, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Notify(NS(1))
		if err := k.Run(NS(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelThreadActivation(b *testing.B) {
	k := NewKernel()
	e := k.NewEvent("e")
	k.Thread("t", func(c *ThreadCtx) {
		for {
			c.Wait(e)
		}
	})
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Notify(NS(1))
		if err := k.Run(NS(1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkKernelProcessKinds quantifies the method-vs-thread ablation
// called out in DESIGN.md §4: method activations avoid the goroutine
// context switch.
func BenchmarkKernelProcessKinds(b *testing.B) {
	b.Run("method", BenchmarkKernelMethodActivation)
	b.Run("thread", BenchmarkKernelThreadActivation)
}

func TestWaitDelta(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	var sawOld, sawNew int
	k.Thread("t", func(c *ThreadCtx) {
		s.Write(42)
		sawOld = s.Read() // same evaluation phase: old value
		c.WaitDelta()
		sawNew = s.Read() // one delta later: committed
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if sawOld != 0 || sawNew != 42 {
		t.Errorf("sawOld=%d sawNew=%d", sawOld, sawNew)
	}
}

func TestPendingQuery(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	k.MethodNoInit("w", func() {}, e)
	if k.Pending() {
		t.Error("fresh kernel pending")
	}
	e.Notify(NS(5))
	if !k.Pending() {
		t.Error("timed notification not pending")
	}
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if k.Pending() {
		t.Error("drained kernel still pending")
	}
}

func TestRunReentrancyRejected(t *testing.T) {
	k := NewKernel()
	var innerErr error
	k.Method("m", func() {
		innerErr = k.Run(NS(1))
	})
	if err := k.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Error("re-entrant Run accepted")
	}
}
