package sim

import (
	"fmt"
	"strings"
	"testing"
)

// snapModel elaborates a small method-only model whose state is a pure
// function of simulated time: a ticker writing the clock into a signal
// every 7ns, and a kicker that occasionally displaces the pending tick
// to exercise timed-queue displacement across snapshot/restore.
func snapModel(k *Kernel, name string) *Signal[uint64] {
	sig := NewSignal(k, name+".sig", uint64(0))
	tick := k.NewEvent(name + ".tick")
	kick := k.NewEvent(name + ".kick")
	k.MethodNoInit(name+".ticker", func() {
		sig.Write(uint64(k.Now()))
		tick.Notify(NS(7))
		if k.Now()%NS(3) == 0 {
			kick.Notify(NS(2))
		}
	}, tick)
	k.MethodNoInit(name+".kicker", func() {
		tick.Notify(NS(1))
	}, kick)
	tick.Notify(NS(5))
	return sig
}

// TestSnapshotRejectsMidDelta: Snapshot from inside a process body —
// mid-delta-cycle — must fail with an error saying the kernel is
// running, never tear the evaluate/update phases apart.
func TestSnapshotRejectsMidDelta(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	ev := k.NewEvent("ev")
	var serr error
	k.MethodNoInit("snapper", func() { _, serr = k.Snapshot() }, ev)
	ev.Notify(NS(1))
	if err := k.Run(US(1)); err != nil {
		t.Fatal(err)
	}
	if serr == nil || !strings.Contains(serr.Error(), "running") {
		t.Fatalf("mid-delta Snapshot error = %v, want a 'running' rejection", serr)
	}
}

// TestSnapshotRejections: the remaining guard rails — pending delta
// activity, attached tracers, live thread processes — each refuse with
// a message naming the problem.
func TestSnapshotRejections(t *testing.T) {
	t.Run("non-quiescent", func(t *testing.T) {
		k := NewKernel()
		defer k.Shutdown()
		ev := k.NewEvent("ev")
		// Method (with init activation) leaves the process runnable
		// until the first Run — the kernel is not at a time boundary.
		k.Method("init", func() {}, ev)
		if _, err := k.Snapshot(); err == nil || !strings.Contains(err.Error(), "non-quiescent") {
			t.Fatalf("Snapshot of non-quiescent kernel: %v", err)
		}
	})
	t.Run("tracer attached", func(t *testing.T) {
		k := NewKernel()
		defer k.Shutdown()
		snapModel(k, "m")
		if err := k.Run(NS(50)); err != nil {
			t.Fatal(err)
		}
		k.AttachTracer(NewTracer(&strings.Builder{}))
		if _, err := k.Snapshot(); err == nil || !strings.Contains(err.Error(), "tracer") {
			t.Fatalf("Snapshot with attached tracer: %v", err)
		}
	})
	t.Run("live thread", func(t *testing.T) {
		k := NewKernel()
		defer k.Shutdown()
		never := k.NewEvent("never")
		k.Thread("parked", func(ctx *ThreadCtx) { ctx.Wait(never) })
		if err := k.Run(NS(10)); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Snapshot(); err == nil || !strings.Contains(err.Error(), "parked") {
			t.Fatalf("Snapshot with live thread: %v", err)
		}
	})
}

// TestSnapshotRestoreTrajectory is the core rewind guarantee: run the
// golden prefix, snapshot, simulate well past it, restore, simulate
// again — the second continuation must reproduce the first one's
// trajectory bit for bit, compared via golden VCD dumps of the model
// signal (fresh tracer per continuation; tracers are forward-only and
// Restore detaches them).
func TestSnapshotRestoreTrajectory(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	sig := snapModel(k, "m")
	if err := k.Run(NS(50)); err != nil {
		t.Fatal(err)
	}
	cp, err := k.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Now() != NS(50) {
		t.Fatalf("checkpoint time = %v, want 50ns", cp.Now())
	}
	continuation := func() (string, Stats) {
		var vcd strings.Builder
		tr := NewTracer(&vcd)
		tr.AddProbe("sig", 64, func() string { return fmt.Sprintf("%b", sig.Read()) })
		k.AttachTracer(tr)
		if err := k.RunUntil(NS(200)); err != nil {
			t.Fatal(err)
		}
		if tr.Err() != nil {
			t.Fatal(tr.Err())
		}
		return vcd.String(), k.Stats()
	}
	first, firstStats := continuation()
	if !strings.Contains(first, "#") {
		t.Fatalf("continuation traced nothing:\n%s", first)
	}
	for i := 0; i < 3; i++ {
		if err := k.Restore(cp); err != nil {
			t.Fatal(err)
		}
		if k.Now() != NS(50) {
			t.Fatalf("restore %d left clock at %v", i, k.Now())
		}
		again, againStats := continuation()
		if again != first {
			t.Fatalf("restore %d diverged from original trajectory\nfirst:\n%s\nagain:\n%s", i, first, again)
		}
		if againStats != firstStats {
			t.Fatalf("restore %d stats diverged: %+v vs %+v", i, againStats, firstStats)
		}
	}
}

// TestSnapshotRestoreRetiresPostSnapshotObjects: events and processes
// elaborated after the snapshot (the campaign stressor pattern) are
// retired by Restore and re-elaboration pops them back from the pools
// — the restore-respawn-run loop is allocation-free in steady state,
// so pooled events cannot leak across checkpoint cycles.
func TestSnapshotRestoreRetiresPostSnapshotObjects(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	snapModel(k, "m")
	if err := k.Run(NS(50)); err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	if err := k.SnapshotInto(&cp); err != nil {
		t.Fatal(err)
	}
	hits := 0
	fn := func() { hits++ }
	cycle := func() {
		ev := k.NewEvent("stressor.ev")
		k.MethodNoInit("stressor", fn, ev)
		ev.Notify(NS(10))
		if err := k.RunUntil(NS(200)); err != nil {
			t.Fatal(err)
		}
		if err := k.Restore(&cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cycle() // warm the pools to their high-water mark
	}
	events, procs := len(k.events), len(k.procs)
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("restore-respawn loop allocates %.1f allocs/run, want 0", avg)
	}
	if len(k.events) != events || len(k.procs) != procs {
		t.Fatalf("restore leaked objects: %d->%d events, %d->%d procs",
			events, len(k.events), procs, len(k.procs))
	}
	if hits == 0 {
		t.Fatal("respawned stressor never ran")
	}
	// Repeated snapshots through the same Checkpoint reuse its buffers.
	if avg := testing.AllocsPerRun(100, func() {
		if err := k.SnapshotInto(&cp); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("SnapshotInto allocates %.1f allocs/run in steady state, want 0", avg)
	}
}

// TestSnapshotResetInterplay: Reset invalidates earlier checkpoints (a
// restore must fail loudly, not resurrect a dead elaboration), and the
// reset kernel re-elaborates, runs and checkpoints cleanly — nothing a
// snapshot retained can wedge the pools.
func TestSnapshotResetInterplay(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	snapModel(k, "m")
	if err := k.Run(NS(50)); err != nil {
		t.Fatal(err)
	}
	cp, err := k.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	k.Reset()
	if err := k.Restore(cp); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("Restore of pre-Reset checkpoint: %v", err)
	}
	// The reset kernel must come back fully functional: re-elaborate,
	// run, snapshot, restore — all on recycled objects.
	sig := snapModel(k, "m")
	if err := k.Run(NS(50)); err != nil {
		t.Fatal(err)
	}
	cp2, err := k.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(NS(100)); err != nil {
		t.Fatal(err)
	}
	after := sig.Read()
	if err := k.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(NS(100)); err != nil {
		t.Fatal(err)
	}
	if sig.Read() != after {
		t.Fatalf("post-Reset checkpoint diverged: %d vs %d", sig.Read(), after)
	}

	// A checkpoint is bound to its kernel.
	other := NewKernel()
	defer other.Shutdown()
	if err := other.Restore(cp2); err == nil || !strings.Contains(err.Error(), "different kernel") {
		t.Fatalf("Restore on a different kernel: %v", err)
	}
}
