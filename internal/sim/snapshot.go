package sim

import (
	"errors"
	"fmt"
)

// Snapshottable is the convention prototypes implement to support
// golden-run checkpointing, mirroring Rearmable: SnapshotState returns
// an opaque deep copy of all mutable model state, and RestoreState
// writes a previously captured copy back into the live objects. The
// kernel's own Snapshot/Restore pair covers scheduler state (clock,
// event queue, process states); SnapshotState must cover everything
// else the model mutates during a run — memories, counters, queues,
// signal shadows — so that restoring both yields a simulation
// observationally identical to one that never ran past the snapshot
// point. RestoreState must not alias the saved state into the model:
// a checkpoint is restored many times, and a run after one restore
// must not be able to corrupt the next.
type Snapshottable interface {
	SnapshotState() any
	RestoreState(state any)
}

// cpTimed is one live timed notification captured by a checkpoint: the
// firing time, the displacement sequence number, and the index of the
// target event in the kernel's creation-ordered event list.
type cpTimed struct {
	at  Time
	seq uint64
	ev  int
}

// Checkpoint is an opaque kernel snapshot taken by Kernel.Snapshot and
// consumed by Kernel.Restore. It is bound to the kernel (and the
// elaboration generation) it was taken from; it captures the clock,
// the timed event queue, per-event pending notifications, per-process
// run states and the activity counters. Model-side state is the
// prototype's job via Snapshottable.
type Checkpoint struct {
	k   *Kernel
	gen uint64

	now   Time
	seq   uint64
	stats Stats

	nProcs  int
	nEvents int

	timed     []cpTimed   // live timed entries, sorted by (at, seq)
	staticLen []int       // per retained event: len(static) at snapshot
	states    []procState // per retained proc: run state at snapshot
}

// Now reports the simulated time the checkpoint was captured at.
func (cp *Checkpoint) Now() Time { return cp.now }

// ApproxBytes estimates the memory retained by the checkpoint's
// internal buffers — the quantity checkpoint trees budget their
// retained nodes against. Capacities (not lengths) are counted, since
// capacity is what the buffers actually pin.
func (cp *Checkpoint) ApproxBytes() int {
	const (
		timedSize = 24 // cpTimed: Time + uint64 + int
		headBytes = 96 // fixed fields
	)
	return headBytes + cap(cp.timed)*timedSize + cap(cp.staticLen)*8 + cap(cp.states)
}

// Snapshot captures the kernel's scheduler state so a later Restore
// can rewind the simulation to this exact point. The kernel must be
// quiescent: not inside Run (snapshotting mid-delta-cycle would tear
// the evaluate/update/notify phases apart), no runnable processes or
// pending delta activity (run to a time boundary first), no live
// thread processes (a goroutine stack cannot be copied — convert
// campaign-path threads to method processes), and no attached tracers
// (their probes observe only the forward run). Model state is NOT
// captured — pair this with the prototype's Snapshottable.
func (k *Kernel) Snapshot() (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := k.SnapshotInto(cp); err != nil {
		return nil, err
	}
	return cp, nil
}

// SnapshotInto is Snapshot writing into a caller-owned Checkpoint,
// reusing its internal buffers; repeated snapshots through the same
// Checkpoint are allocation-free in steady state.
func (k *Kernel) SnapshotInto(cp *Checkpoint) error {
	if k.running {
		return errors.New("sim: Snapshot called while the kernel is running (snapshots must be taken between Run calls, not mid-delta-cycle)")
	}
	if len(k.runnable) > 0 || len(k.deltaQueue) > 0 || len(k.updateQueue) > 0 {
		return errors.New("sim: Snapshot of a non-quiescent kernel (runnable processes or pending delta activity; run to a time boundary first)")
	}
	if len(k.tracers) > 0 {
		return errors.New("sim: Snapshot with attached tracers (tracers observe only the forward run; attach after restoring instead)")
	}
	if k.threadPanic != nil {
		return errors.New("sim: Snapshot after an unhandled thread panic")
	}
	for _, p := range k.procs {
		if p.kind == threadProc && p.state != procDone {
			return fmt.Errorf("sim: Snapshot with live thread process %q (goroutine stacks cannot be checkpointed; use method processes on the checkpoint path)", p.name)
		}
	}

	cp.k = k
	cp.gen = k.gen
	cp.now = k.now
	cp.seq = k.seq
	cp.stats = k.stats
	cp.nProcs = len(k.procs)
	cp.nEvents = len(k.events)

	cp.staticLen = cp.staticLen[:0]
	for _, e := range k.events {
		cp.staticLen = append(cp.staticLen, len(e.static))
	}
	cp.states = cp.states[:0]
	for _, p := range k.procs {
		cp.states = append(cp.states, p.state)
	}

	// Keep only live timed entries (an event's pendingSeq names the one
	// heap entry that still counts; the rest were displaced). Sorted by
	// (at, seq) the capture is itself a valid min-heap, so Restore can
	// install it verbatim.
	cp.timed = cp.timed[:0]
	for _, te := range k.timed {
		if te.ev.pending == notifyTimed && te.ev.pendingSeq == te.seq {
			cp.timed = append(cp.timed, cpTimed{at: te.at, seq: te.seq, ev: te.ev.idx})
		}
	}
	sortCpTimed(cp.timed)
	return nil
}

// sortCpTimed orders captured timed entries by (at, seq). Insertion
// sort: the heap is already nearly ordered and snapshots must not
// allocate (sort.Slice's closure would), mirroring sortRunnable.
func sortCpTimed(ts []cpTimed) {
	for i := 1; i < len(ts); i++ {
		e := ts[i]
		j := i - 1
		for j >= 0 && (ts[j].at > e.at || (ts[j].at == e.at && ts[j].seq > e.seq)) {
			ts[j+1] = ts[j]
			j--
		}
		ts[j+1] = e
	}
}

// Restore rewinds the kernel to the state captured by cp: the clock,
// the timed queue and every pending notification return to their
// snapshot values, and events/processes created after the snapshot
// (for example a stressor elaborated onto the golden prefix) are
// retired into the kernel's free lists in reverse creation order —
// re-elaborating the same objects after the restore pops them straight
// back out, so a restore-respawn-run campaign loop is allocation-free
// in steady state. Tracers attached since the snapshot are detached,
// exactly as Reset does.
//
// The checkpoint must come from this kernel and from the current
// elaboration generation: a Reset invalidates all earlier checkpoints
// (their event indices name objects of a dead elaboration). Restoring
// the same checkpoint repeatedly is valid — that is the campaign use.
func (k *Kernel) Restore(cp *Checkpoint) error {
	if k.running {
		return errors.New("sim: Restore called while the kernel is running")
	}
	if cp.k != k {
		return errors.New("sim: Restore of a checkpoint from a different kernel")
	}
	if cp.gen != k.gen {
		return errors.New("sim: Restore of a stale checkpoint (the kernel was Reset after it was taken)")
	}
	if len(k.procs) < cp.nProcs || len(k.events) < cp.nEvents {
		return errors.New("sim: Restore target has fewer processes or events than the checkpoint (wrong kernel state?)")
	}

	// Retire post-snapshot objects into the free lists, newest first,
	// mirroring Reset's LIFO discipline.
	for i := len(k.procs) - 1; i >= cp.nProcs; i-- {
		p := k.procs[i]
		p.kill()
		p.recycle()
		k.procPool = append(k.procPool, p)
		k.procs[i] = nil
	}
	k.procs = k.procs[:cp.nProcs]
	for i := len(k.events) - 1; i >= cp.nEvents; i-- {
		e := k.events[i]
		e.recycle()
		k.eventPool = append(k.eventPool, e)
		k.events[i] = nil
	}
	k.events = k.events[:cp.nEvents]

	// Drop all transient scheduler activity.
	for i := range k.runnable {
		k.runnable[i] = nil
	}
	k.runnable = k.runnable[:0]
	for i := range k.deltaQueue {
		k.deltaQueue[i] = nil
	}
	k.deltaQueue = k.deltaQueue[:0]
	for i := range k.updateQueue {
		k.updateQueue[i] = nil
	}
	k.updateQueue = k.updateQueue[:0]

	// Reset retained events to the snapshot: static waiter lists are
	// append-only, so truncating to the recorded length removes exactly
	// the post-snapshot attachments; dynamic waiter lists were empty at
	// snapshot time (only live threads wait dynamically, and Snapshot
	// rejects those).
	for i, e := range k.events {
		n := cp.staticLen[i]
		for j := n; j < len(e.static); j++ {
			e.static[j] = nil
		}
		e.static = e.static[:n]
		for j := range e.dynamic {
			e.dynamic[j] = nil
		}
		e.dynamic = e.dynamic[:0]
		e.pending = notifyNone
		e.pendingTime = 0
		e.pendingSeq = 0
	}

	// Reinstall the timed queue. The capture is (at, seq)-sorted, which
	// is a valid heap layout, so it drops in without sifting.
	for i := range k.timed {
		k.timed[i] = timedEntry{}
	}
	k.timed = k.timed[:0]
	for _, te := range cp.timed {
		e := k.events[te.ev]
		e.pending = notifyTimed
		e.pendingTime = te.at
		e.pendingSeq = te.seq
		k.timed = append(k.timed, timedEntry{at: te.at, seq: te.seq, ev: e})
	}

	for i, p := range k.procs {
		p.state = cp.states[i]
		for j := range p.dynamicWait {
			p.dynamicWait[j] = nil
		}
		p.dynamicWait = p.dynamicWait[:0]
		p.waitCause = nil
		if p.timerEv != nil && p.timerEv.idx >= cp.nEvents {
			// The lazily created timer event postdates the snapshot and
			// was just retired; the next timed wait re-creates it.
			p.timerEv = nil
		}
	}

	k.now = cp.now
	k.seq = cp.seq
	k.stats = cp.stats
	k.inEvaluate = false
	k.stopped = false
	k.threadPanic = nil
	k.tracers = k.tracers[:0]
	if in := k.instr; in != nil {
		// The kernel counters just moved backwards; rebase the published
		// watermark so the next flush publishes only post-restore work
		// instead of computing garbage uint64 deltas.
		in.published = k.stats
	}
	return nil
}
