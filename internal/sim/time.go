// Package sim implements a deterministic discrete-event simulation kernel
// with SystemC-like semantics: simulated time, events, delta cycles,
// method and thread processes, and request/update signals.
//
// The kernel is the substrate for every virtual prototype in this
// repository. It reproduces the scheduling model of IEEE 1666-2011
// (evaluate phase, update phase, delta notification phase, time advance)
// because error-effect simulation depends on those semantics: an injected
// error must become visible exactly one delta cycle after the write that
// carries it, and concurrent processes must interleave deterministically
// so fault campaigns are reproducible.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in (or duration of) simulated time, measured in
// picoseconds. A uint64 picosecond clock covers about 213 days of
// simulated time, far beyond any mission-profile scenario in this
// repository.
type Time uint64

// Duration constants expressed in the kernel's picosecond base unit.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// TimeMax is the largest representable simulation time. Running the
// kernel until TimeMax effectively means "run until no events remain".
const TimeMax Time = math.MaxUint64

// PS returns n picoseconds as a Time.
func PS(n uint64) Time { return Time(n) * Picosecond }

// NS returns n nanoseconds as a Time.
func NS(n uint64) Time { return Time(n) * Nanosecond }

// US returns n microseconds as a Time.
func US(n uint64) Time { return Time(n) * Microsecond }

// MS returns n milliseconds as a Time.
func MS(n uint64) Time { return Time(n) * Millisecond }

// Sec returns n seconds as a Time.
func Sec(n uint64) Time { return Time(n) * Second }

// Seconds reports the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds reports the time as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String renders the time with the largest unit that divides it evenly,
// e.g. "15 ns" or "2 us" or "7 ps".
func (t Time) String() string {
	switch {
	case t == TimeMax:
		return "t-max"
	case t == 0:
		return "0 s"
	case t%Second == 0:
		return fmt.Sprintf("%d s", uint64(t/Second))
	case t%Millisecond == 0:
		return fmt.Sprintf("%d ms", uint64(t/Millisecond))
	case t%Microsecond == 0:
		return fmt.Sprintf("%d us", uint64(t/Microsecond))
	case t%Nanosecond == 0:
		return fmt.Sprintf("%d ns", uint64(t/Nanosecond))
	default:
		return fmt.Sprintf("%d ps", uint64(t))
	}
}
