package campaignd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"repro/internal/stressor"
)

// Run states. The store derives terminal states from what is on disk
// — a run directory with a result is done, one with an error record
// failed, anything else is pending (queued, running, or interrupted;
// the scheduler overlays the live distinction). Deriving instead of
// recording means a crash can never leave a stale state file lying
// about a run.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Store is the daemon's durable run store: one directory per run
// under <dir>/runs holding the submitted spec, the campaign journal,
// and — once finished — the result or error document. The journal is
// the source of truth for an in-flight run: a daemon killed mid-run
// restarts, finds a pending run directory, and resumes the campaign
// from its journal to the byte-identical result.
type Store struct {
	dir string

	mu   sync.Mutex
	next int
}

var runIDPat = regexp.MustCompile(`^r\d{6}$`)

// OpenStore opens (creating if needed) the store under dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("campaignd: store: %w", err)
	}
	st := &Store{dir: dir}
	ids, err := st.List()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		var n int
		if _, err := fmt.Sscanf(id, "r%06d", &n); err == nil && n >= st.next {
			st.next = n + 1
		}
	}
	if st.next == 0 {
		st.next = 1
	}
	return st, nil
}

// List returns all run IDs in submission (and therefore FIFO) order.
func (st *Store) List() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(st.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("campaignd: store: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() && runIDPat.MatchString(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// NewRun allocates the next run ID and persists the spec.
func (st *Store) NewRun(rawSpec []byte) (string, error) {
	st.mu.Lock()
	id := fmt.Sprintf("r%06d", st.next)
	st.next++
	st.mu.Unlock()
	dir := st.RunDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("campaignd: store: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, "spec.json"), rawSpec); err != nil {
		return "", err
	}
	return id, nil
}

// RunDir returns the directory of run id.
func (st *Store) RunDir(id string) string { return filepath.Join(st.dir, "runs", id) }

// JournalPath returns the run's campaign journal path.
func (st *Store) JournalPath(id string) string { return filepath.Join(st.RunDir(id), "journal.jsonl") }

// resultPath / errorPath / metricsPath / tracePath locate the
// terminal documents.
func (st *Store) resultPath(id string) string  { return filepath.Join(st.RunDir(id), "result.json") }
func (st *Store) errorPath(id string) string   { return filepath.Join(st.RunDir(id), "error.json") }
func (st *Store) metricsPath(id string) string { return filepath.Join(st.RunDir(id), "metrics.json") }
func (st *Store) tracePath(id string) string   { return filepath.Join(st.RunDir(id), "trace.json") }

// ReadSpec loads and re-validates a run's spec.
func (st *Store) ReadSpec(id string) (*Spec, error) {
	if !runIDPat.MatchString(id) {
		return nil, fmt.Errorf("campaignd: bad run id %q", id)
	}
	data, err := os.ReadFile(filepath.Join(st.RunDir(id), "spec.json"))
	if err != nil {
		return nil, fmt.Errorf("campaignd: store: %w", err)
	}
	return ParseSpec(data)
}

// State derives the run's terminal-or-pending state from disk.
func (st *Store) State(id string) (string, error) {
	if !runIDPat.MatchString(id) {
		return "", fmt.Errorf("campaignd: bad run id %q", id)
	}
	if _, err := os.Stat(filepath.Join(st.RunDir(id), "spec.json")); err != nil {
		return "", fmt.Errorf("campaignd: unknown run %s", id)
	}
	if _, err := os.Stat(st.resultPath(id)); err == nil {
		return StateDone, nil
	}
	if _, err := os.Stat(st.errorPath(id)); err == nil {
		return StateFailed, nil
	}
	return StateQueued, nil
}

// ResultDoc is the durable, deterministic result of a completed run:
// no timestamps, no rates — the same campaign resumed across any
// number of daemon restarts serializes to the same bytes. Text is the
// capsim-identical summary block (Summary.Text).
type ResultDoc struct {
	ID                 string         `json:"id"`
	Campaign           string         `json:"campaign"`
	Scenarios          int            `json:"scenarios"`
	Tally              map[string]int `json:"tally"`
	Outcomes           []OutcomeDoc   `json:"outcomes"`
	RunsToFirstFailure int            `json:"runs_to_first_failure,omitempty"`
	PanicRecoveries    int            `json:"panic_recoveries,omitempty"`
	DedupSavedRuns     int            `json:"dedup_saved_runs,omitempty"`
	Text               string         `json:"text"`
}

// OutcomeDoc is one scenario outcome in a ResultDoc.
type OutcomeDoc struct {
	ID     string `json:"id"`
	Class  string `json:"class"`
	Detail string `json:"detail,omitempty"`
}

// BuildResultDoc converts a finished campaign into its durable form.
func BuildResultDoc(id string, scenarios int, res *stressor.Result, summary Summary) *ResultDoc {
	doc := &ResultDoc{
		ID: id, Campaign: res.Name, Scenarios: scenarios,
		Tally:              map[string]int{},
		Outcomes:           make([]OutcomeDoc, 0, len(res.Outcomes)),
		RunsToFirstFailure: res.RunsToFirstFailure,
		PanicRecoveries:    res.PanicRecoveries,
		DedupSavedRuns:     res.DedupSavedRuns,
		Text:               summary.Text(),
	}
	for class, n := range res.Tally {
		if n > 0 {
			doc.Tally[class.String()] = n
		}
	}
	for _, o := range res.Outcomes {
		doc.Outcomes = append(doc.Outcomes, OutcomeDoc{ID: o.Scenario.ID, Class: o.Class.String(), Detail: o.Detail})
	}
	return doc
}

// WriteResult persists a run's result document (atomically — a crash
// mid-write must not leave a half-result that State would report as
// done).
func (st *Store) WriteResult(id string, doc *ResultDoc) error {
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("campaignd: store: %w", err)
	}
	return writeFileAtomic(st.resultPath(id), append(data, '\n'))
}

// ReadResult loads a run's raw result bytes.
func (st *Store) ReadResult(id string) ([]byte, error) {
	if !runIDPat.MatchString(id) {
		return nil, fmt.Errorf("campaignd: bad run id %q", id)
	}
	return os.ReadFile(st.resultPath(id))
}

// errorDoc records a failed run.
type errorDoc struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// WriteRunError persists a run failure.
func (st *Store) WriteRunError(id, msg string) error {
	data, err := json.Marshal(errorDoc{ID: id, Error: msg})
	if err != nil {
		return err
	}
	return writeFileAtomic(st.errorPath(id), append(data, '\n'))
}

// ReadRunError loads a failed run's error message ("" when none).
func (st *Store) ReadRunError(id string) string {
	data, err := os.ReadFile(st.errorPath(id))
	if err != nil {
		return ""
	}
	var doc errorDoc
	if json.Unmarshal(data, &doc) != nil {
		return ""
	}
	return doc.Error
}

// WriteMetrics persists a run's final metrics snapshot (kept out of
// result.json on purpose: metrics carry wall-clock values, and the
// result must stay byte-deterministic).
func (st *Store) WriteMetrics(id string, data []byte) error {
	return writeFileAtomic(st.metricsPath(id), data)
}

// ReadMetrics loads a run's metrics snapshot.
func (st *Store) ReadMetrics(id string) ([]byte, error) {
	if !runIDPat.MatchString(id) {
		return nil, fmt.Errorf("campaignd: bad run id %q", id)
	}
	return os.ReadFile(st.metricsPath(id))
}

// WriteTrace persists a traced run's Chrome trace-event document
// (specs submitted with "trace": true).
func (st *Store) WriteTrace(id string, data []byte) error {
	return writeFileAtomic(st.tracePath(id), data)
}

// ReadTrace loads a run's trace document.
func (st *Store) ReadTrace(id string) ([]byte, error) {
	if !runIDPat.MatchString(id) {
		return nil, fmt.Errorf("campaignd: bad run id %q", id)
	}
	return os.ReadFile(st.tracePath(id))
}

// writeFileAtomic writes data to path via a same-directory temp file
// and rename, syncing before the rename so the visible file is never
// partial.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("campaignd: store: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if werr == nil {
		werr = serr
	}
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaignd: store: %w", werr)
	}
	return nil
}
