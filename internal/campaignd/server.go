package campaignd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Server is the capsimd HTTP API, stdlib only:
//
//	POST /runs                submit a campaign spec -> {"id": ...}
//	GET  /runs                list runs and states
//	GET  /runs/{id}           one run's state
//	GET  /runs/{id}/events    NDJSON stream: state + progress events
//	GET  /runs/{id}/result    completed result (?format=text for the
//	                          capsim-identical summary block)
//	GET  /runs/{id}/metrics   final metrics snapshot (obs.Registry);
//	                          ?live=1 reads the in-flight registry
//	GET  /runs/{id}/trace     Chrome trace-event timeline (specs
//	                          submitted with "trace": true)
//	GET  /metrics             daemon-wide live Prometheus exposition
//	GET  /debug/flight        flight-recorder ring (?format=text)
//	POST /merge               merge completed shard runs
//	GET  /healthz             liveness
//
// Every error is a structured JSON body {"error": "..."} with a
// meaningful status — malformed input is a 400, never a panic.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wires the API around a scheduler.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /runs", s.handleSubmit)
	s.mux.HandleFunc("POST /runs/{$}", s.handleSubmit)
	s.mux.HandleFunc("GET /runs", s.handleList)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /runs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /runs/{id}/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("POST /merge", s.handleMerge)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(data, '\n'))
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody reads a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return nil, false
	}
	return data, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	spec, err := ParseSpec(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.sched.Submit(spec, data)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": StateQueued})
}

// runStatus is the GET /runs and GET /runs/{id} payload.
type runStatus struct {
	ID        string `json:"id"`
	Campaign  string `json:"campaign"`
	State     string `json:"state"`
	Completed int    `json:"completed,omitempty"`
	Total     int    `json:"total,omitempty"`
	Failures  int    `json:"failures,omitempty"`
	Error     string `json:"error,omitempty"`
}

// status assembles a run's live view: the durable state from the
// store, overlaid with the live hub state (running/interrupted) and
// the last progress snapshot when the daemon holds one.
func (s *Server) status(id string) (runStatus, error) {
	state, err := s.sched.Store().State(id)
	if err != nil {
		return runStatus{}, err
	}
	st := runStatus{ID: id, State: state}
	if spec, err := s.sched.Store().ReadSpec(id); err == nil {
		st.Campaign = spec.Campaign
	}
	if state == StateFailed {
		st.Error = s.sched.Store().ReadRunError(id)
	}
	if h := s.sched.Hub(id); h != nil && state == StateQueued {
		if e := h.state(); e.State != "" {
			st.State = e.State
		}
	}
	return st, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids, err := s.sched.Store().List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]runStatus, 0, len(ids))
	for _, id := range ids {
		st, err := s.status(id)
		if err != nil {
			continue
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	st, err := s.status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, err := s.sched.Store().State(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(e Event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	h := s.sched.Hub(id)
	if h == nil {
		// No live hub: the run finished in a previous daemon process.
		// Synthesize its terminal state and end the stream.
		e := Event{Type: "state", Run: id, State: state, Final: true}
		if state == StateFailed {
			e.Error = s.sched.Store().ReadRunError(id)
		}
		emit(e)
		return
	}
	ch, cancel := h.subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if !emit(e) {
				return
			}
			if e.Final {
				return
			}
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, err := s.sched.Store().State(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if state != StateDone {
		writeErr(w, http.StatusNotFound, "run %s has no result yet (state %s)", id, state)
		return
	}
	data, err := s.sched.Store().ReadResult(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		var doc ResultDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			writeErr(w, http.StatusInternalServerError, "corrupt result: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, doc.Text)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.sched.Store().State(id); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	// ?live=1 snapshots the in-flight registry — counters move while
	// the campaign executes, before any terminal snapshot exists.
	if r.URL.Query().Get("live") == "1" {
		reg := s.sched.LiveMetrics(id)
		if reg == nil {
			writeErr(w, http.StatusNotFound, "run %s is not executing (no live metrics)", id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		reg.WriteJSON(w)
		return
	}
	data, err := s.sched.Store().ReadMetrics(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "run %s has no metrics snapshot", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleTrace serves a traced run's Chrome trace-event document: the
// live recorder while the run executes, the stored trace.json after.
// Runs submitted without "trace": true are a 400 — the client asked
// for evidence the daemon was never told to collect.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, err := s.sched.Store().State(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	spec, err := s.sched.Store().ReadSpec(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !spec.Trace {
		writeErr(w, http.StatusBadRequest, "run %s was not submitted with \"trace\": true", id)
		return
	}
	if tr := s.sched.LiveTrace(id); tr != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		tr.WriteJSON(w)
		return
	}
	data, err := s.sched.Store().ReadTrace(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "run %s has no trace yet (state %s)", id, state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleProm is the daemon-wide live telemetry scrape: the aggregate
// registry plus every in-flight run's registry, Prometheus text
// format.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sched.WriteProm(w)
}

// handleFlight dumps the flight-recorder ring: JSON by default,
// ?format=text for the same block SIGQUIT prints.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	f := s.sched.Flight()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  f.Total(),
		"events": f.Snapshot(),
	})
}

// MergeRequest is the POST /merge body: the campaign knobs the shard
// runs were submitted with, plus the completed run IDs to merge.
type MergeRequest struct {
	Campaign    string       `json:"campaign,omitempty"`
	Universe    UniverseSpec `json:"universe"`
	Dedup       bool         `json:"dedup,omitempty"`
	StopOnFirst bool         `json:"stop_on_first,omitempty"`
	Runs        []string     `json:"runs"`
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	var req MergeRequest
	if err := json.Unmarshal(data, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "campaignd: bad merge request: %v", err)
		return
	}
	if len(req.Runs) == 0 || len(req.Runs) > MaxShardCount {
		writeErr(w, http.StatusBadRequest, "campaignd: merge needs 1..%d runs", MaxShardCount)
		return
	}
	spec := &Spec{
		Campaign: req.Campaign, Universe: req.Universe,
		Dedup: req.Dedup, StopOnFirst: req.StopOnFirst,
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	doc, err := s.sched.MergeRuns(spec, req.Runs)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
