package campaignd

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// Config parameterizes a Scheduler.
type Config struct {
	// DataDir is the durable store root.
	DataDir string
	// QueueCap bounds the number of queued runs (default 256).
	QueueCap int
	// RunnerCacheCap bounds how many distinct warm prototype
	// configurations the daemon keeps alive (default 4, LRU-evicted).
	RunnerCacheCap int
	// ProgressInterval rate-limits the /events progress stream
	// (0 selects obs.DefaultProgressInterval, negative disables
	// limiting — used by tests).
	ProgressInterval time.Duration
	// Logger, when non-nil, receives structured operational logs
	// (run lifecycle, failures, flight dumps).
	Logger *slog.Logger
	// SlowScenario, when positive, marks any single scenario run at or
	// over this wall-clock budget in the flight recorder.
	SlowScenario time.Duration
	// FlightCap sizes the flight-recorder ring (default
	// obs.DefaultFlightCap).
	FlightCap int
	// FlightDump, when non-nil, receives the flight-recorder text dump
	// on executor panic and on DumpFlight (capsimd points it at
	// stderr for SIGQUIT forensics).
	FlightDump io.Writer
}

// Scheduler owns the daemon's run lifecycle: a FIFO queue fed by
// Submit (multi-tenant — any number of clients, strictly ordered), a
// single executor goroutine that runs one campaign at a time so
// concurrent submissions never interleave worker slots, and the warm
// runner cache that carries kernel/prototype slot pools and
// checkpoint sessions across runs. Durability is delegated to the
// Store: every campaign is journaled, so stopping the daemon (or
// crashing it) mid-run leaves a resumable run that the next
// Scheduler picks up on construction.
type Scheduler struct {
	cfg   Config
	store *Store
	cache *runnerCache

	queue  chan string
	stopCh chan struct{}
	done   chan struct{}
	halt   atomic.Bool

	mu   sync.Mutex // guards hubs, enq, and Submit's id-allocate+enqueue pairing
	hubs map[string]*hub
	enq  map[string]time.Time // run id -> enqueue instant (queue-wait metric)

	// Telemetry plane. agg is the daemon-wide aggregate registry served
	// at GET /metrics; live holds the in-flight run's registry (and
	// optional trace recorder) so mid-flight scrapes see the campaign
	// moving; flight is the black-box event ring.
	agg           *obs.Registry
	prom          *obs.PromEncoder
	flight        *obs.FlightRecorder
	queueDepth    *obs.Gauge
	queueWait     *obs.Histogram
	eventsDropped *obs.Counter

	liveMu    sync.Mutex
	liveReg   map[string]*obs.Registry
	liveTrace map[string]*obs.TraceRecorder
}

// NewScheduler opens the store under cfg.DataDir and re-queues every
// pending run found there — the crash-recovery path: an in-flight
// run's journal is picked up by the executor exactly as capsim
// -resume would pick it up.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.RunnerCacheCap <= 0 {
		cfg.RunnerCacheCap = 4
	}
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	agg := obs.NewRegistry()
	s := &Scheduler{
		cfg:       cfg,
		store:     store,
		cache:     &runnerCache{cap: cfg.RunnerCacheCap, entries: map[string]*cacheEntry{}},
		queue:     make(chan string, cfg.QueueCap),
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
		hubs:      map[string]*hub{},
		enq:       map[string]time.Time{},
		agg:       agg,
		prom:      obs.NewPromEncoder(),
		flight:    obs.NewFlightRecorder(cfg.FlightCap),
		liveReg:   map[string]*obs.Registry{},
		liveTrace: map[string]*obs.TraceRecorder{},
	}
	// Pre-register every daemon-wide family so the /metrics document has
	// a deterministic shape from the first scrape (goldenfile-able), not
	// one that grows as states are first reached.
	s.queueDepth = agg.Gauge("campaignd.queue_depth")
	s.queueWait = agg.Histogram("campaignd.queue_wait_ns")
	s.eventsDropped = agg.Counter("campaignd.events_dropped")
	s.cache.builds2 = agg.Counter("campaignd.runner_cache_builds")
	s.cache.hits2 = agg.Counter("campaignd.runner_cache_hits")
	for _, st := range []string{StateDone, StateFailed, "interrupted"} {
		agg.Counter("campaignd.runs", obs.L("state", st))
	}
	ids, err := store.List()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		state, err := store.State(id)
		if err != nil {
			continue
		}
		if state != StateQueued {
			continue
		}
		if len(s.queue) == cap(s.queue) {
			return nil, fmt.Errorf("campaignd: %d pending runs exceed the queue capacity %d", len(s.queue)+1, cfg.QueueCap)
		}
		s.hubs[id] = newHub(id, StateQueued, s.eventsDropped)
		s.enq[id] = time.Now()
		s.queue <- id
		s.flight.Record("run.requeue", id, "pending run from a previous daemon")
		s.logInfo("requeued pending run", "run", id)
	}
	s.queueDepth.Set(float64(len(s.queue)))
	return s, nil
}

// Start launches the executor goroutine.
func (s *Scheduler) Start() { go s.loop() }

// Store exposes the underlying run store (read paths of the server).
func (s *Scheduler) Store() *Store { return s.store }

// Submit persists a new run and enqueues it. rawSpec must be the
// bytes spec was parsed from; they are stored verbatim so a restart
// re-parses exactly what the client sent.
func (s *Scheduler) Submit(spec *Spec, rawSpec []byte) (string, error) {
	if s.halt.Load() {
		return "", fmt.Errorf("campaignd: daemon is shutting down")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == cap(s.queue) {
		return "", fmt.Errorf("campaignd: run queue is full (%d queued)", cap(s.queue))
	}
	id, err := s.store.NewRun(rawSpec)
	if err != nil {
		return "", err
	}
	s.hubs[id] = newHub(id, StateQueued, s.eventsDropped)
	s.enq[id] = time.Now()
	s.queue <- id
	s.queueDepth.Set(float64(len(s.queue)))
	s.flight.Record("run.submit", id, spec.Campaign)
	s.logInfo("queued run", "run", id, "campaign", spec.Campaign)
	return id, nil
}

// Stop halts the daemon gracefully: the in-flight campaign stops
// between scenarios (its journal stays resumable), queued runs stay
// queued on disk, and Stop returns once the executor has exited.
func (s *Scheduler) Stop() {
	if s.halt.Swap(true) {
		<-s.done
		return
	}
	close(s.stopCh)
	<-s.done
	s.cache.drain()
}

// Hub returns the live event hub for a run, or nil when the daemon
// holds none (terminal runs from a previous daemon process).
func (s *Scheduler) Hub(id string) *hub {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hubs[id]
}

// RunnerCacheStats reports warm-runner reuse across runs.
func (s *Scheduler) RunnerCacheStats() (builds, hits int64) {
	return s.cache.builds.Load(), s.cache.hits.Load()
}

// Flight exposes the daemon's flight recorder (the /debug/flight and
// SIGQUIT surface).
func (s *Scheduler) Flight() *obs.FlightRecorder { return s.flight }

// WriteProm renders the daemon's live telemetry — the aggregate
// registry plus every in-flight run's registry — in the Prometheus
// text exposition format (GET /metrics). The encoder caches rendered
// series, so steady-state scrapes do not allocate.
func (s *Scheduler) WriteProm(w io.Writer) error {
	regs := []*obs.Registry{s.agg}
	s.liveMu.Lock()
	for _, r := range s.liveReg {
		regs = append(regs, r)
	}
	s.liveMu.Unlock()
	return s.prom.Encode(w, regs...)
}

// LiveMetrics returns the in-flight registry of a running campaign, or
// nil once the run is terminal (GET /runs/{id}/metrics?live=1).
func (s *Scheduler) LiveMetrics(id string) *obs.Registry {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return s.liveReg[id]
}

// LiveTrace returns the in-flight trace recorder of a running
// traced campaign, or nil.
func (s *Scheduler) LiveTrace(id string) *obs.TraceRecorder {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return s.liveTrace[id]
}

// setLive installs (or, with nils, clears) a run's live telemetry.
func (s *Scheduler) setLive(id string, reg *obs.Registry, tr *obs.TraceRecorder) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if reg == nil {
		delete(s.liveReg, id)
	} else {
		s.liveReg[id] = reg
	}
	if tr == nil {
		delete(s.liveTrace, id)
	} else {
		s.liveTrace[id] = tr
	}
}

// DumpFlight writes the flight-recorder contents to cfg.FlightDump
// (no-op without one) — the SIGQUIT / executor-panic forensic path.
func (s *Scheduler) DumpFlight(reason string) {
	if s.cfg.FlightDump == nil {
		return
	}
	fmt.Fprintf(s.cfg.FlightDump, "campaignd flight dump (%s):\n", reason)
	if err := s.flight.WriteText(s.cfg.FlightDump); err != nil {
		s.logError("flight dump failed", "err", err)
	}
}

func (s *Scheduler) logInfo(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

func (s *Scheduler) logError(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Error(msg, args...)
	}
}

// loop is the executor: strictly FIFO, one campaign at a time.
func (s *Scheduler) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		select {
		case <-s.stopCh:
			return
		case id := <-s.queue:
			s.execute(id)
		}
	}
}

// publish fans an event out through the run's hub.
func (s *Scheduler) publish(e Event) {
	if h := s.Hub(e.Run); h != nil {
		h.publish(e)
	}
}

// execute runs one campaign end to end: warm runner lookup, scenario
// materialization, journal create-or-resume, Execute, result (or
// error) persistence. A daemon shutdown mid-campaign leaves the run
// pending with a valid journal; everything else ends terminal.
func (s *Scheduler) execute(id string) {
	// Queue-wait and depth: the run leaves the queue now.
	s.mu.Lock()
	if t0, ok := s.enq[id]; ok {
		delete(s.enq, id)
		s.queueWait.Observe(uint64(time.Since(t0)))
	}
	s.mu.Unlock()
	s.queueDepth.Set(float64(len(s.queue)))

	defer s.setLive(id, nil, nil)
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("internal error: %v", r)
			s.store.WriteRunError(id, msg)
			s.publish(Event{Type: "state", Run: id, State: StateFailed, Error: msg, Final: true})
			s.agg.Counter("campaignd.runs", obs.L("state", StateFailed)).Inc()
			s.flight.Recordf("executor.panic", id, "%v", r)
			s.logError("run panicked", "run", id, "panic", fmt.Sprint(r))
			s.DumpFlight("executor panic")
		}
	}()
	fail := func(err error) {
		msg := err.Error()
		if werr := s.store.WriteRunError(id, msg); werr != nil {
			s.logError("recording failure", "run", id, "err", werr)
		}
		s.publish(Event{Type: "state", Run: id, State: StateFailed, Error: msg, Final: true})
		s.agg.Counter("campaignd.runs", obs.L("state", StateFailed)).Inc()
		s.flight.Record("run.failed", id, msg)
		s.logError("run failed", "run", id, "err", msg)
	}

	spec, err := s.store.ReadSpec(id)
	if err != nil {
		fail(err)
		return
	}
	s.publish(Event{Type: "state", Run: id, State: StateRunning})
	s.flight.Record("run.start", id, spec.Campaign)
	ent, err := s.cache.get(spec)
	if err != nil {
		fail(err)
		return
	}
	scenarios, err := spec.Scenarios(ent.runner)
	if err != nil {
		fail(err)
		return
	}
	if spec.Adaptive {
		s.executeAdaptive(id, spec, ent, fail)
		return
	}

	shard := spec.ShardSpec()
	shards := shard.Count
	if shards < 1 {
		shards = 1
	}
	header := journal.Header{
		Campaign: spec.Campaign, Shard: shard.Index, Shards: shards,
		Total: len(scenarios), Universe: stressor.UniverseHash(scenarios),
	}
	var resume *journal.Journal
	var jw *journal.Writer
	jpath := s.store.JournalPath(id)
	if _, statErr := os.Stat(jpath); statErr == nil {
		if resume, jw, err = journal.AppendTo(jpath, header); err != nil {
			fail(err)
			return
		}
	} else if jw, err = journal.Create(jpath, header); err != nil {
		fail(err)
		return
	}

	reg := obs.NewRegistry()
	var tr *obs.TraceRecorder
	if spec.Trace {
		tr = obs.NewTraceRecorder()
	}
	// Expose the run's registry (and trace) while it executes: a
	// mid-flight GET /metrics or ?live=1 sees counters moving before
	// the run completes.
	s.setLive(id, reg, tr)
	var logger *slog.Logger
	if s.cfg.Logger != nil {
		logger = s.cfg.Logger.With("run", id)
	}
	var halted atomic.Bool
	c := &stressor.Campaign{
		Name: spec.Campaign, Run: ent.runner.RunFunc(),
		Workers: spec.Workers, Dedup: spec.Dedup, StopOnFirst: spec.StopOnFirst,
		Shard: shard, ScenarioTimeout: spec.Timeout(),
		Journal: jw, Resume: resume,
		Metrics: reg,
		Trace:   tr,
		Flight:  s.flight, SlowScenario: s.cfg.SlowScenario,
		Log: logger,
		Halt: func(int) bool {
			stop := s.halt.Load()
			if stop {
				halted.Store(true)
			}
			return stop
		},
		Progress: func(u obs.ProgressUpdate) {
			s.publish(Event{
				Type: "progress", Run: id,
				Completed: u.Completed, Total: u.Total, Failures: u.Failures,
				RunsPerSec: u.RunsPerSec, ETAMillis: u.ETA.Milliseconds(),
			})
		},
		ProgressInterval: s.cfg.ProgressInterval,
	}
	if spec.Checkpoints {
		c.Checkpoints = true
		c.Checkpointer = ent.pool
		c.CheckpointTree = spec.CheckpointTree
		c.EarlyExit = spec.EarlyExit
		c.HashStride = spec.Stride()
	}
	res, err := c.Execute(scenarios)
	if cerr := jw.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fail(err)
		return
	}
	if halted.Load() {
		// Shutdown landed mid-campaign: the journal holds everything
		// completed so far, the run stays pending, and the next daemon
		// resumes it to the byte-identical result.
		s.publish(Event{Type: "state", Run: id, State: "interrupted", Final: true})
		s.agg.Counter("campaignd.runs", obs.L("state", "interrupted")).Inc()
		s.flight.Recordf("run.interrupted", id, "%d outcomes journaled", len(res.Outcomes))
		s.logInfo("run interrupted by shutdown", "run", id, "journaled", len(res.Outcomes))
		return
	}

	doc := BuildResultDoc(id, len(scenarios), res, Summary{
		World: spec.Universe.World, Protected: !spec.Universe.Unprotected,
		Scenarios: len(scenarios), Workers: spec.Workers,
		Inline: spec.Inline(), Shard: shard, Result: res,
	})
	if err := s.store.WriteResult(id, doc); err != nil {
		fail(err)
		return
	}
	var mbuf bytes.Buffer
	if err := reg.WriteJSON(&mbuf); err == nil {
		if werr := s.store.WriteMetrics(id, mbuf.Bytes()); werr != nil {
			s.logError("writing metrics", "run", id, "err", werr)
		}
	}
	if tr != nil {
		var tbuf bytes.Buffer
		if err := tr.WriteJSON(&tbuf); err == nil {
			if werr := s.store.WriteTrace(id, tbuf.Bytes()); werr != nil {
				s.logError("writing trace", "run", id, "err", werr)
			}
		}
	}
	s.publish(Event{Type: "state", Run: id, State: StateDone, Final: true})
	s.agg.Counter("campaignd.runs", obs.L("state", StateDone)).Inc()
	s.flight.Recordf("run.done", id, "%s", res.Tally)
	s.logInfo("run done", "run", id, "tally", res.Tally.String())
}

// executeAdaptive is the adaptive leg of execute: the Novelty
// strategy over the spec's fault universe, driven through
// stressor.AdaptiveCampaign on the warm runner's signed RunFunc. The
// same durability contract holds — a daemon shutdown mid-loop leaves
// the adaptive journal resumable, and the restarted daemon replays it
// into an identically-seeded strategy for the byte-identical result.
func (s *Scheduler) executeAdaptive(id string, spec *Spec, ent *cacheEntry, fail func(error)) {
	universe := ent.runner.Universe(s.injectTime(spec))
	fingerprint := stressor.UniverseHash(fault.Singles(universe))
	src := scenario.NewNovelty(universe, 4*spec.NoveltyBudget, rand.New(rand.NewSource(spec.NoveltySeed)))
	src.Mutator().Window = spec.Horizon()

	header := journal.Header{
		Campaign: spec.Campaign, Shards: 1,
		Total: spec.NoveltyBudget, Universe: fingerprint, Adaptive: true,
	}
	var resume *journal.Journal
	var jw *journal.Writer
	var err error
	jpath := s.store.JournalPath(id)
	if _, statErr := os.Stat(jpath); statErr == nil {
		if resume, jw, err = journal.AppendTo(jpath, header); err != nil {
			fail(err)
			return
		}
	} else if jw, err = journal.Create(jpath, header); err != nil {
		fail(err)
		return
	}

	reg := obs.NewRegistry()
	s.setLive(id, reg, nil)
	var logger *slog.Logger
	if s.cfg.Logger != nil {
		logger = s.cfg.Logger.With("run", id)
	}
	var halted atomic.Bool
	c := &stressor.AdaptiveCampaign{
		Name: spec.Campaign, Run: ent.runner.SignedRunFunc(), Source: src,
		Workers: spec.Workers, MaxRuns: spec.NoveltyBudget, Prune: true,
		Journal: jw, Resume: resume, Fingerprint: fingerprint,
		Metrics: reg, Log: logger,
		Halt: func(int) bool {
			stop := s.halt.Load()
			if stop {
				halted.Store(true)
			}
			return stop
		},
	}
	ares, err := c.Execute()
	if cerr := jw.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fail(err)
		return
	}
	if halted.Load() {
		s.publish(Event{Type: "state", Run: id, State: "interrupted", Final: true})
		s.agg.Counter("campaignd.runs", obs.L("state", "interrupted")).Inc()
		s.flight.Recordf("run.interrupted", id, "%d outcomes journaled", len(ares.Outcomes))
		s.logInfo("run interrupted by shutdown", "run", id, "journaled", len(ares.Outcomes))
		return
	}

	res := ares.Result()
	doc := BuildResultDoc(id, ares.Proposed, res, Summary{
		World: spec.Universe.World, Protected: !spec.Universe.Unprotected,
		Scenarios: ares.Proposed, Workers: spec.Workers,
		Result: res,
	})
	if err := s.store.WriteResult(id, doc); err != nil {
		fail(err)
		return
	}
	var mbuf bytes.Buffer
	if err := reg.WriteJSON(&mbuf); err == nil {
		if werr := s.store.WriteMetrics(id, mbuf.Bytes()); werr != nil {
			s.logError("writing metrics", "run", id, "err", werr)
		}
	}
	s.publish(Event{Type: "state", Run: id, State: StateDone, Final: true})
	s.agg.Counter("campaignd.runs", obs.L("state", StateDone)).Inc()
	s.flight.Recordf("run.done", id, "%s", ares.Tally)
	s.logInfo("run done", "run", id, "tally", ares.Tally.String(),
		"unique_signatures", ares.UniqueSignatures, "pruned", ares.PrunedEquiv)
}

// injectTime exposes the parsed inject time to the adaptive path.
func (s *Scheduler) injectTime(spec *Spec) sim.Time { return spec.inject }

// MergeRuns reassembles the shard journals of the given completed
// runs into the result the unsharded campaign would have produced
// (the POST /merge path), via stressor.Merge. The universe is rebuilt
// from spec — which must carry the same prototype knobs the shards
// ran with — on a warm cached runner.
func (s *Scheduler) MergeRuns(spec *Spec, runIDs []string) (*ResultDoc, error) {
	if len(runIDs) == 0 {
		return nil, fmt.Errorf("campaignd: merge of zero runs")
	}
	js := make([]*journal.Journal, len(runIDs))
	for i, id := range runIDs {
		state, err := s.store.State(id)
		if err != nil {
			return nil, err
		}
		if state != StateDone {
			return nil, fmt.Errorf("campaignd: run %s is %s, not done — only completed runs merge", id, state)
		}
		if js[i], err = journal.Read(s.store.JournalPath(id)); err != nil {
			return nil, err
		}
	}
	ent, err := s.cache.get(spec)
	if err != nil {
		return nil, err
	}
	scenarios, err := spec.Scenarios(ent.runner)
	if err != nil {
		return nil, err
	}
	res, err := stressor.Merge(stressor.MergeSpec{
		StopOnFirst: spec.StopOnFirst, Dedup: spec.Dedup,
	}, scenarios, js)
	if err != nil {
		return nil, err
	}
	return BuildResultDoc("merge", len(scenarios), res, Summary{
		World: spec.Universe.World, Protected: !spec.Universe.Unprotected,
		Scenarios: len(scenarios), Workers: spec.Workers,
		Inline: spec.Inline(), Result: res,
	}), nil
}

// runnerCache keeps warm prototype runners keyed by Spec.RunnerKey.
// A hit hands back the same *caps.Runner — slot pools, golden
// observation and checkpoint session pool intact — so back-to-back
// runs pay zero re-elaboration. Bounded, LRU-evicted; eviction closes
// the runner and drains its session pool.
type runnerCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*cacheEntry
	tick    int64

	builds atomic.Int64
	hits   atomic.Int64
	// builds2/hits2 mirror the counters into the daemon's aggregate
	// registry (GET /metrics); nil outside a scheduler.
	builds2 *obs.Counter
	hits2   *obs.Counter
}

type cacheEntry struct {
	runner  *caps.Runner
	pool    *sessionPool
	lastUse int64
}

// get returns the warm entry for spec's prototype configuration,
// building (golden run included) on miss.
func (c *runnerCache) get(spec *Spec) (*cacheEntry, error) {
	key := spec.RunnerKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if ent, ok := c.entries[key]; ok {
		ent.lastUse = c.tick
		c.hits.Add(1)
		if c.hits2 != nil {
			c.hits2.Inc()
		}
		return ent, nil
	}
	if len(c.entries) >= c.cap {
		var lruKey string
		var lru *cacheEntry
		for k, e := range c.entries {
			if lru == nil || e.lastUse < lru.lastUse {
				lruKey, lru = k, e
			}
		}
		lru.pool.drain()
		lru.runner.Close()
		delete(c.entries, lruKey)
	}
	r, err := spec.BuildRunner()
	if err != nil {
		return nil, err
	}
	ent := &cacheEntry{runner: r, pool: &sessionPool{inner: r}, lastUse: c.tick}
	c.entries[key] = ent
	c.builds.Add(1)
	if c.builds2 != nil {
		c.builds2.Inc()
	}
	return ent, nil
}

// drain closes every cached runner (daemon shutdown).
func (c *runnerCache) drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		e.pool.drain()
		e.runner.Close()
		delete(c.entries, k)
	}
}

// sessionPool keeps golden-run checkpoint sessions alive across
// campaign runs. The campaign engine creates one session per worker
// and Closes it when the worker's stream ends; pooling intercepts
// that Close and parks the session — snapshot, simulated prefix and
// all — for the next run's workers, which amortizes prefix
// re-simulation across runs the way PR 5 amortized it across
// scenarios. Sessions the engine abandons (timeout, panic) are never
// Closed and therefore never re-enter the pool, preserving the
// engine's abandonment contract.
type sessionPool struct {
	inner stressor.Checkpointer

	mu   sync.Mutex
	free []stressor.CheckpointSession

	created atomic.Int64
	reused  atomic.Int64
}

// ForkTime delegates to the wrapped Checkpointer.
func (p *sessionPool) ForkTime(sc fault.Scenario) (sim.Time, bool) {
	return p.inner.ForkTime(sc)
}

// NewTreeSession implements stressor.TreeCheckpointer by delegating to
// the wrapped runner. Unlike plain sessions, tree sessions are not
// parked across runs: their metrics sink and trajectory are run-scoped
// (a parked session would keep publishing to a finished run's
// registry), and the expensive state — retained node buffers, golden
// trajectories — already lives in runner-level pools that survive the
// session. Close therefore really closes them, and abandonment
// recycling reaches the session directly.
func (p *sessionPool) NewTreeSession(cfg stressor.TreeConfig) stressor.CheckpointSession {
	tc, ok := p.inner.(stressor.TreeCheckpointer)
	if !ok {
		// Campaign validation type-checks the Checkpointer before any
		// run; the CAPS runner always implements TreeCheckpointer.
		panic(fmt.Sprintf("campaignd: %T does not implement TreeCheckpointer", p.inner))
	}
	p.created.Add(1)
	return tc.NewTreeSession(cfg)
}

// NewSession pops a parked session or creates a fresh one.
func (p *sessionPool) NewSession() stressor.CheckpointSession {
	p.mu.Lock()
	var sess stressor.CheckpointSession
	if n := len(p.free); n > 0 {
		sess = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if sess == nil {
		sess = p.inner.NewSession()
		p.created.Add(1)
	} else {
		p.reused.Add(1)
	}
	return &pooledSession{pool: p, CheckpointSession: sess}
}

// pooledSession parks the real session on Close instead of shutting
// it down.
type pooledSession struct {
	pool *sessionPool
	stressor.CheckpointSession
}

func (ps *pooledSession) Close() {
	p := ps.pool
	p.mu.Lock()
	p.free = append(p.free, ps.CheckpointSession)
	p.mu.Unlock()
}

// drain closes every parked session.
func (p *sessionPool) drain() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, s := range free {
		s.Close()
	}
}
