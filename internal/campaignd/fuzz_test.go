package campaignd

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzCampaignSpec throws arbitrary bytes at the spec decoder — the
// daemon's untrusted input surface. Invariants: ParseSpec never
// panics; an accepted spec has every parsed knob inside the decoder
// bounds; and an accepted spec survives a marshal/re-parse round trip
// (what the store does across a daemon restart).
func FuzzCampaignSpec(f *testing.F) {
	f.Add([]byte(`{"campaign":"e8","universe":{"kind":"caps-single-fault","horizon":"80ms"},"workers":-1}`))
	f.Add([]byte(`{"universe":{"kind":"inline","horizon":"1ms","scenarios":[{"id":"a","faults":"open @caps.accel0.harness from 100us"}]}}`))
	f.Add([]byte(`{"universe":{"kind":"caps-single-fault","inject":"5ms"},"shard":"0/4","dedup":true,"checkpoints":true}`))
	f.Add([]byte(`{"universe":{},"checkpoint_tree":true,"early_exit":true,"hash_stride":"5ms"}`))
	f.Add([]byte(`{"universe":{},"hash_stride":"5ms"}`))
	f.Add([]byte(`{"universe":{"horizon":"1ms"},"early_exit":true,"hash_stride":"2ms"}`))
	f.Add([]byte(`{"universe":{},"scenario_timeout":"2s","stop_on_first":true}`))
	f.Add([]byte(`{"workers":9999999}`))
	f.Add([]byte(`{"universe":{"kind":"inline","scenarios":[{"id":"a","faults":"gibberish"}]}}`))
	f.Add([]byte(`{"universe":{},"adaptive":true}`))
	f.Add([]byte(`{"universe":{},"adaptive":true,"novelty_budget":128,"novelty_seed":7}`))
	f.Add([]byte(`{"universe":{},"adaptive":true,"dedup":true}`))
	f.Add([]byte(`{"universe":{},"adaptive":true,"shard":"0/2"}`))
	f.Add([]byte(`{"universe":{},"novelty_budget":9}`))
	f.Add([]byte(`{"universe":{},"adaptive":true,"novelty_budget":99999999}`))
	f.Add([]byte(`{"universe":{"kind":"inline","scenarios":[{"id":"a","faults":"open @caps.accel0.harness from 1ms"}]},"adaptive":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"universe":{}} {"universe":{}}`))
	f.Add([]byte(`{"campaign":"` + strings.Repeat("й", 100) + `","universe":{}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted: the parsed knobs respect the documented bounds.
		if spec.Campaign == "" || len(spec.Campaign) > maxNameLen {
			t.Fatalf("accepted campaign name %q outside bounds", spec.Campaign)
		}
		if h := spec.Horizon(); h <= 0 || h > MaxHorizon {
			t.Fatalf("accepted horizon %d outside bounds", h)
		}
		if spec.Workers > MaxWorkers {
			t.Fatalf("accepted workers %d above cap", spec.Workers)
		}
		if d := spec.Timeout(); d < 0 || d > MaxScenarioTimeout {
			t.Fatalf("accepted scenario timeout %v outside bounds", d)
		}
		if sh := spec.ShardSpec(); sh.Count > MaxShardCount {
			t.Fatalf("accepted shard count %d above cap", sh.Count)
		}
		if n := len(spec.Universe.Scenarios); n > MaxInlineScenarios {
			t.Fatalf("accepted %d inline scenarios above cap", n)
		}
		if st := spec.Stride(); st > spec.Horizon() {
			t.Fatalf("accepted hash stride %d past horizon %d", st, spec.Horizon())
		}
		if (spec.CheckpointTree || spec.EarlyExit) && !spec.Checkpoints {
			t.Fatal("accepted tree/early-exit spec without checkpoints implied")
		}
		if spec.HashStride != "" && !spec.EarlyExit {
			t.Fatal("accepted hash_stride without early_exit")
		}
		if spec.Adaptive {
			if spec.NoveltyBudget < 1 || spec.NoveltyBudget > MaxNoveltyBudget {
				t.Fatalf("accepted novelty budget %d outside bounds", spec.NoveltyBudget)
			}
			if spec.Dedup || spec.Checkpoints || spec.StopOnFirst || spec.Trace ||
				spec.Shard != "" || spec.ScenarioTimeout != "" {
				t.Fatal("accepted adaptive spec combined with fixed-universe knobs")
			}
			if spec.Inline() {
				t.Fatal("accepted adaptive spec over an inline universe")
			}
		} else if spec.NoveltyBudget != 0 || spec.NoveltySeed != 0 {
			t.Fatal("accepted novelty knobs without adaptive")
		}
		// RunnerKey must be total on accepted specs.
		if spec.RunnerKey() == "" {
			t.Fatal("empty runner key for accepted spec")
		}
		// Round trip: the defaulted spec re-marshals to a spec the
		// decoder accepts again and parses identically.
		remarshaled, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal of accepted spec: %v", err)
		}
		again, err := ParseSpec(remarshaled)
		if err != nil {
			t.Fatalf("re-parse of marshaled spec %s: %v", remarshaled, err)
		}
		if again.RunnerKey() != spec.RunnerKey() || again.Horizon() != spec.Horizon() ||
			again.ShardSpec() != spec.ShardSpec() || again.Timeout() != spec.Timeout() ||
			again.Stride() != spec.Stride() || again.CheckpointTree != spec.CheckpointTree ||
			again.EarlyExit != spec.EarlyExit || again.Adaptive != spec.Adaptive ||
			again.NoveltyBudget != spec.NoveltyBudget || again.NoveltySeed != spec.NoveltySeed {
			t.Fatalf("round trip changed the spec: %s", remarshaled)
		}
	})
}
