package campaignd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// httpGet fetches url and returns status plus body.
func httpGet(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// promSampleLine matches one exposition sample, capturing its value.
var promSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})? (-?[0-9.e+E-]+|\+Inf|NaN)$`)

// checkPromShape validates every line of a /metrics document: TYPE
// comments with a known kind, or well-formed samples.
func checkPromShape(t testing.TB, doc string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(doc, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			kind := line[strings.LastIndexByte(line, ' ')+1:]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("bad TYPE line %q", line)
			}
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// promValue extracts the value of the first sample whose name{labels}
// prefix matches prefix, returning ok=false when the series is absent.
func promValue(doc, prefix string) (float64, bool) {
	for _, line := range strings.Split(doc, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestPromMidFlight is the headline telemetry assertion: a scrape of
// GET /metrics taken while a campaign executes shows that run's
// campaign_completed counter moving. The run's registry is only merged
// into the exposition while it is live, so observing the series at all
// proves the scrape happened mid-flight.
func TestPromMidFlight(t *testing.T) {
	sched, srv := newTestDaemon(t)
	id := submit(t, srv.URL, genInline("mid", 200, "10s"))

	deadline := time.After(120 * time.Second)
	caught := false
	for !caught {
		select {
		case <-deadline:
			t.Fatal("never caught the run mid-flight on /metrics")
		default:
		}
		code, doc := httpGet(t, srv.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("GET /metrics = %d", code)
		}
		checkPromShape(t, doc)
		v, ok := promValue(doc, `campaign_completed{campaign="mid"}`)
		if !ok || v <= 0 {
			continue
		}
		// Same-iteration cross-check: the per-run live registry endpoint
		// serves while the campaign executes. The run may have finished
		// between the two requests; retry the whole iteration if so.
		lcode, lbody := httpGet(t, srv.URL+"/runs/"+id+"/metrics?live=1")
		if lcode == http.StatusNotFound {
			continue
		}
		if lcode != http.StatusOK {
			t.Fatalf("GET ?live=1 = %d: %s", lcode, lbody)
		}
		var snap struct {
			Counters map[string]uint64 `json:"counters"`
		}
		if err := json.Unmarshal([]byte(lbody), &snap); err != nil {
			t.Fatalf("live metrics not JSON: %v", err)
		}
		if snap.Counters[`campaign.completed{campaign=mid}`] == 0 {
			t.Fatalf("live registry shows no completed runs: %s", lbody)
		}
		caught = true
	}
	waitFinal(t, sched, id, StateDone)

	// Terminal: the run's registry leaves the exposition; the daemon
	// aggregates remain, now recording the completion.
	_, doc := httpGet(t, srv.URL+"/metrics")
	checkPromShape(t, doc)
	if _, ok := promValue(doc, `campaign_completed{campaign="mid"}`); ok {
		t.Fatal("finished run still exposed on /metrics")
	}
	if v, ok := promValue(doc, `campaignd_runs{state="done"}`); !ok || v != 1 {
		t.Fatalf(`campaignd_runs{state="done"} = %v, %v; want 1`, v, ok)
	}
	if v, ok := promValue(doc, "campaignd_queue_wait_ns_count"); !ok || v < 1 {
		t.Fatalf("campaignd_queue_wait_ns_count = %v, %v; want >= 1", v, ok)
	}
	if _, ok := promValue(doc, "campaignd_queue_depth"); !ok {
		t.Fatal("campaignd_queue_depth missing from exposition")
	}
}

// TestHubSlowConsumerNeverBlocks pins the executor-isolation contract:
// publishing to a hub whose subscriber never reads must not block, and
// every dropped progress snapshot lands on the shared counter. State
// transitions survive even a full channel.
func TestHubSlowConsumerNeverBlocks(t *testing.T) {
	dropped := &obs.Counter{}
	h := newHub("r000001", StateQueued, dropped)
	ch, cancel := h.subscribe()
	defer cancel()

	const bursts = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < bursts; i++ {
			h.publish(Event{Type: "progress", Run: "r000001", Completed: i})
		}
		h.publish(Event{Type: "state", Run: "r000001", State: StateDone, Final: true})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish blocked on a slow consumer")
	}
	if dropped.Value() == 0 {
		t.Fatal("no progress events counted as dropped")
	}
	// Drain: the terminal state event must have survived the backlog.
	var final *Event
	for e := range ch {
		if e.Final {
			e := e
			final = &e
		}
	}
	if final == nil || final.State != StateDone {
		t.Fatalf("final state event lost; got %+v", final)
	}
	if got := h.state(); got.State != StateDone {
		t.Fatalf("retained state = %q, want done", got.State)
	}
}

// TestEventsDroppedMetric ties the hub drop counter to the daemon
// exposition: a stalled NDJSON reader shows up on
// campaignd.events_dropped.
func TestEventsDroppedMetric(t *testing.T) {
	sched, srv := newTestDaemon(t)
	id := submit(t, srv.URL, genInline("stall", 150, "10s"))

	// Subscribe and never read: the 64-slot buffer fills and
	// per-scenario progress events start dropping (ProgressInterval is
	// -1, so every completion publishes). The campaign itself must
	// finish unimpeded — that is the never-blocks contract.
	h := sched.Hub(id)
	if h == nil {
		t.Fatalf("run %s has no hub", id)
	}
	_, cancel := h.subscribe()
	defer cancel()

	waitFinal(t, sched, id, StateDone)
	if sched.eventsDropped.Value() == 0 {
		t.Fatal("stalled subscriber produced no events_dropped")
	}
	_, doc := httpGet(t, srv.URL+"/metrics")
	if v, ok := promValue(doc, "campaignd_events_dropped"); !ok || v == 0 {
		t.Fatalf("campaignd_events_dropped = %v, %v; want > 0", v, ok)
	}
}

// TestTraceLifecycle drives a "trace": true run to completion and
// downloads its Chrome trace; a run submitted without tracing is a 400.
func TestTraceLifecycle(t *testing.T) {
	sched, srv := newTestDaemon(t)
	traced := strings.Replace(tinySpec, `{"campaign":"tiny"`, `{"campaign":"tiny","trace":true`, 1)
	id := submit(t, srv.URL, traced)
	waitFinal(t, sched, id, StateDone)

	code, body := httpGet(t, srv.URL+"/runs/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d: %s", code, body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 || doc.Unit != "ms" {
		t.Fatalf("trace document empty or malformed: %d events, unit %q", len(doc.TraceEvents), doc.Unit)
	}

	// Untraced run: asking for its trace is a client error, not a 404.
	plain := submit(t, srv.URL, tinySpec)
	waitFinal(t, sched, plain, StateDone)
	code, body = httpGet(t, srv.URL+"/runs/"+plain+"/trace")
	if code != http.StatusBadRequest {
		t.Fatalf("GET /trace on untraced run = %d: %s", code, body)
	}
	if !strings.Contains(body, `\"trace\": true`) {
		t.Fatalf("400 body does not explain the fix: %s", body)
	}
	if code, _ := httpGet(t, srv.URL+"/runs/r999999/trace"); code != http.StatusNotFound {
		t.Fatalf("GET /trace on unknown run = %d, want 404", code)
	}
}

// TestFlightEndpoint checks the run lifecycle leaves the expected marks
// in the flight recorder, via both JSON and text renderings.
func TestFlightEndpoint(t *testing.T) {
	sched, srv := newTestDaemon(t)
	id := submit(t, srv.URL, tinySpec)
	waitFinal(t, sched, id, StateDone)

	code, body := httpGet(t, srv.URL+"/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/flight = %d", code)
	}
	var doc struct {
		Total  uint64            `json:"total"`
		Events []obs.FlightEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range doc.Events {
		kinds[e.Kind]++
		if e.Run != id {
			t.Fatalf("unexpected run %q in flight event %+v", e.Run, e)
		}
	}
	for _, want := range []string{"run.submit", "run.start", "run.done"} {
		if kinds[want] != 1 {
			t.Fatalf("flight kind %q seen %d times (events %v)", want, kinds[want], kinds)
		}
	}
	if doc.Total < 3 {
		t.Fatalf("flight total = %d, want >= 3", doc.Total)
	}

	code, text := httpGet(t, srv.URL+"/debug/flight?format=text")
	if code != http.StatusOK || !strings.Contains(text, "flight recorder") || !strings.Contains(text, "run.done") {
		t.Fatalf("text dump = %d: %s", code, text)
	}
}

// TestDumpFlight covers the SIGQUIT / panic forensic writer.
func TestDumpFlight(t *testing.T) {
	var buf bytes.Buffer
	sched, err := NewScheduler(Config{DataDir: t.TempDir(), FlightDump: &buf})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	defer sched.Stop()
	sched.Flight().Record("test.mark", "r000000", "hello")
	sched.DumpFlight("SIGQUIT")
	out := buf.String()
	if !strings.Contains(out, "campaignd flight dump (SIGQUIT):") || !strings.Contains(out, "test.mark") {
		t.Fatalf("dump missing header or event:\n%s", out)
	}
	// Without a sink the dump is a no-op, not a panic.
	s2, err := NewScheduler(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Stop()
	s2.DumpFlight("SIGQUIT")
}
