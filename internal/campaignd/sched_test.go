package campaignd

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// mustSpec parses a spec literal.
func mustSpec(t testing.TB, raw string) *Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// runToCompletion submits raw and blocks until the run's final event,
// returning the run ID.
func runToCompletion(t testing.TB, sched *Scheduler, raw string) string {
	t.Helper()
	id, err := sched.Submit(mustSpec(t, raw), []byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	waitHubFinal(t, sched, id, StateDone)
	return id
}

func waitHubFinal(t testing.TB, sched *Scheduler, id, want string) {
	t.Helper()
	ch, cancel := sched.Hub(id).subscribe()
	defer cancel()
	deadline := time.After(120 * time.Second)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatalf("run %s: hub closed without final event", id)
			}
			if e.Final {
				if e.State != want {
					t.Fatalf("run %s ended %q (%s), want %q", id, e.State, e.Error, want)
				}
				return
			}
		case <-deadline:
			t.Fatalf("run %s: no final event", id)
		}
	}
}

// TestSchedulerStopMidRunResumesByteIdentical is the in-process
// kill/restart leg: Stop() lands mid-campaign, the run stays pending
// with a partial journal, and a new scheduler over the same store
// resumes it to the byte-identical result an uninterrupted scheduler
// produces.
func TestSchedulerStopMidRunResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scheduler lifecycle test")
	}
	const n = 120
	raw := genInline("interrupt", n, "10s")

	// Reference result from an uninterrupted scheduler.
	refSched, err := NewScheduler(Config{DataDir: t.TempDir(), ProgressInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	refSched.Start()
	refID := runToCompletion(t, refSched, raw)
	refBytes, err := refSched.Store().ReadResult(refID)
	if err != nil {
		t.Fatal(err)
	}
	refSched.Stop()

	// Victim scheduler: Stop as soon as the first scenario completes.
	dir := t.TempDir()
	sched, err := NewScheduler(Config{DataDir: dir, ProgressInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	id, err := sched.Submit(mustSpec(t, raw), []byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := sched.Hub(id).subscribe()
	stopped := false
	for e := range ch {
		if e.Type == "progress" && e.Completed >= 1 && e.Completed < e.Total && !stopped {
			stopped = true
			go sched.Stop()
		}
		if e.Final {
			if !stopped {
				t.Fatalf("run finished (%q) before the test could stop it", e.State)
			}
			if e.State != "interrupted" {
				t.Fatalf("final state %q, want interrupted", e.State)
			}
			break
		}
	}
	cancel()
	sched.Stop() // idempotent; waits for the executor

	state, err := sched.Store().State(id)
	if err != nil {
		t.Fatal(err)
	}
	if state != StateQueued {
		t.Fatalf("interrupted run state = %q, want queued (pending)", state)
	}
	jdata, err := os.ReadFile(filepath.Join(dir, "runs", id, "journal.jsonl"))
	if err != nil {
		t.Fatalf("interrupted run has no journal: %v", err)
	}
	jlines := len(strings.Split(strings.TrimRight(string(jdata), "\n"), "\n"))
	if jlines < 2 || jlines >= n+1 {
		t.Fatalf("journal has %d lines, want a partial 2..%d", jlines, n)
	}

	// Restart: the pending run is requeued and resumed from the
	// journal.
	revived, err := NewScheduler(Config{DataDir: dir, ProgressInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	revived.Start()
	defer revived.Stop()
	waitHubFinal(t, revived, id, StateDone)
	gotBytes, err := revived.Store().ReadResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(refBytes) {
		t.Errorf("resumed result differs from the uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", gotBytes, refBytes)
	}

	// The journal grew to completion (header + every outcome): the
	// resume appended only the missing scenarios.
	jdata, err = os.ReadFile(filepath.Join(dir, "runs", id, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimRight(string(jdata), "\n"), "\n")); got != n+1 {
		t.Errorf("final journal has %d lines, want %d (header + %d outcomes)", got, n+1, n)
	}
}

// TestSchedulerResumeFromTruncatedJournal is the fully deterministic
// resume test: a run directory is crafted with a journal that holds
// only the first few outcomes of a completed reference run, and a
// fresh scheduler must finish the campaign, skip the recorded
// entries, and serialize the byte-identical result document.
func TestSchedulerResumeFromTruncatedJournal(t *testing.T) {
	raw := genInline("crafted", 24, "100ms")

	refSched, err := NewScheduler(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	refSched.Start()
	refID := runToCompletion(t, refSched, raw)
	refBytes, err := refSched.Store().ReadResult(refID)
	if err != nil {
		t.Fatal(err)
	}
	refJournal, err := os.ReadFile(refSched.Store().JournalPath(refID))
	if err != nil {
		t.Fatal(err)
	}
	refSched.Stop()

	// Craft an interrupted store: same spec, journal truncated to the
	// header plus the first 5 outcomes.
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := store.NewRun([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(refJournal), "\n")
	if len(lines) < 7 {
		t.Fatalf("reference journal too short: %d lines", len(lines))
	}
	if err := os.WriteFile(store.JournalPath(id), []byte(strings.Join(lines[:6], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	sched, err := NewScheduler(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	defer sched.Stop()
	waitHubFinal(t, sched, id, StateDone)
	gotBytes, err := sched.Store().ReadResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(refBytes) {
		t.Errorf("crafted-resume result differs from reference:\n--- resumed ---\n%s\n--- reference ---\n%s", gotBytes, refBytes)
	}

	// The metrics prove the replayed outcomes were skipped: only the
	// remaining 19 scenarios executed.
	mdata, err := sched.Store().ReadMetrics(id)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatalf("metrics document: %v", err)
	}
	if got := m.Counters["campaign.resumed_skips{campaign=crafted}"]; got != 5 {
		t.Errorf("resume skipped %d scenarios, want 5 (the journaled prefix)", got)
	}
}

// TestSchedulerWarmRunnerAndSessionReuse pins the cross-run
// amortization: back-to-back runs of the same prototype configuration
// share one warm runner (one build, then cache hits), and with
// checkpoints enabled the golden-run sessions park between campaigns
// and are reused instead of re-snapshotted.
func TestSchedulerWarmRunnerAndSessionReuse(t *testing.T) {
	sched, err := NewScheduler(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	defer sched.Stop()

	raw := `{"campaign":"warm","universe":{"kind":"caps-single-fault","horizon":"30ms"},"workers":2,"checkpoints":true}`
	first := runToCompletion(t, sched, raw)
	second := runToCompletion(t, sched, raw)

	builds, hits := sched.RunnerCacheStats()
	if builds != 1 || hits != 1 {
		t.Errorf("runner cache builds=%d hits=%d, want 1 build and 1 hit", builds, hits)
	}

	spec := mustSpec(t, raw)
	sched.cache.mu.Lock()
	ent := sched.cache.entries[spec.RunnerKey()]
	sched.cache.mu.Unlock()
	if ent == nil {
		t.Fatal("no cached runner entry after two runs")
	}
	created, reused := ent.pool.created.Load(), ent.pool.reused.Load()
	if created > 2 {
		t.Errorf("checkpoint sessions created = %d, want at most the worker count (2)", created)
	}
	if reused < 1 {
		t.Errorf("checkpoint sessions reused = %d, want >= 1 (second run must ride parked sessions)", reused)
	}

	// Warm reuse must not perturb results: both runs byte-identical
	// modulo the run ID.
	b1, err := sched.Store().ReadResult(first)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := sched.Store().ReadResult(second)
	if err != nil {
		t.Fatal(err)
	}
	s1 := strings.ReplaceAll(string(b1), `"id":"`+first+`"`, `"id":"r"`)
	s2 := strings.ReplaceAll(string(b2), `"id":"`+second+`"`, `"id":"r"`)
	if s1 != s2 {
		t.Error("warm-runner rerun produced a different result document")
	}
}

// TestSchedulerTreeEarlyExitResultIdentical is the daemon surface of
// the engine's byte-identity promise: a checkpoint-tree + early-exit
// spec must produce the identical result document (modulo run ID) to
// the plain spec of the same campaign.
func TestSchedulerTreeEarlyExitResultIdentical(t *testing.T) {
	sched, err := NewScheduler(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	defer sched.Stop()

	base := `"campaign":"tree","universe":{"kind":"caps-single-fault","horizon":"30ms","inject":"5ms"}`
	plain := runToCompletion(t, sched, `{`+base+`}`)
	tree := runToCompletion(t, sched, `{`+base+`,"checkpoint_tree":true,"early_exit":true,"hash_stride":"5ms"}`)

	b1, err := sched.Store().ReadResult(plain)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := sched.Store().ReadResult(tree)
	if err != nil {
		t.Fatal(err)
	}
	s1 := strings.ReplaceAll(string(b1), `"id":"`+plain+`"`, `"id":"r"`)
	s2 := strings.ReplaceAll(string(b2), `"id":"`+tree+`"`, `"id":"r"`)
	if s1 != s2 {
		t.Errorf("tree+early-exit run produced a different result document\nplain: %s\ntree:  %s", s1, s2)
	}
}

// TestRunnerCacheHitAllocs pins the allocation cost of the warm-path
// cache lookup: a hit must stay a map probe plus the key formatting,
// not a rebuild.
func TestRunnerCacheHitAllocs(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	cache := &runnerCache{cap: 2, entries: map[string]*cacheEntry{}}
	if _, err := cache.get(spec); err != nil {
		t.Fatal(err)
	}
	defer cache.drain()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cache.get(spec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("runner cache hit allocates %.0f times per lookup, want <= 8", allocs)
	}
}

// TestSchedulerAdaptiveRun drives an adaptive spec through the daemon:
// the run completes, its result doc carries every delivered proposal,
// and resubmitting the identical spec (same seed) on a warm runner
// reproduces the identical outcome stream — the daemon-level face of
// the adaptive determinism contract.
func TestSchedulerAdaptiveRun(t *testing.T) {
	raw := `{"campaign":"ad","universe":{"horizon":"30ms","inject":"5ms"},"adaptive":true,"novelty_budget":16,"novelty_seed":3,"workers":-1}`
	sched, err := NewScheduler(Config{DataDir: t.TempDir(), ProgressInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	defer sched.Stop()
	id1 := runToCompletion(t, sched, raw)
	id2 := runToCompletion(t, sched, raw)

	var docs [2]ResultDoc
	for i, id := range []string{id1, id2} {
		b, err := sched.Store().ReadResult(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if docs[0].Scenarios != 16 || len(docs[0].Outcomes) != 16 {
		t.Fatalf("adaptive run delivered %d/%d proposals, want 16", docs[0].Scenarios, len(docs[0].Outcomes))
	}
	docs[1].ID = docs[0].ID
	docs[1].Text = strings.Replace(docs[1].Text, id2, id1, 1)
	if !reflect.DeepEqual(docs[0], docs[1]) {
		t.Fatalf("identical adaptive specs diverged:\n%+v\n%+v", docs[0], docs[1])
	}
}
