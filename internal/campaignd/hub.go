package campaignd

import (
	"sync"

	"repro/internal/obs"
)

// Event is one NDJSON line on a run's /events stream: a state
// transition or a rate-limited progress snapshot lifted straight off
// the campaign's obs.ProgressMeter.
type Event struct {
	// Type is "state" or "progress".
	Type string `json:"type"`
	// Run is the run ID.
	Run string `json:"run"`
	// State (state events) is queued/running/done/failed/interrupted.
	State string `json:"state,omitempty"`
	// Error (state events) carries the failure message.
	Error string `json:"error,omitempty"`
	// Progress payload (progress events).
	Completed  int     `json:"completed,omitempty"`
	Total      int     `json:"total,omitempty"`
	Failures   int     `json:"failures,omitempty"`
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
	ETAMillis  int64   `json:"eta_ms,omitempty"`
	// Final marks the last event of the stream.
	Final bool `json:"final,omitempty"`
}

// hub fans a run's events out to any number of subscribers. The last
// state event is retained so late subscribers (including ones
// arriving after the run finished) immediately learn where the run
// stands. Progress events are lossy by design: a slow subscriber
// drops intermediate snapshots — counted on the daemon's
// campaignd.events_dropped metric — never state transitions. publish
// never blocks on a subscriber, so a stalled /events reader can never
// stall the executor.
type hub struct {
	mu      sync.Mutex
	last    Event // last state event published
	closed  bool
	subs    map[chan Event]struct{}
	dropped *obs.Counter // nil-safe: shared events-dropped counter
}

func newHub(id, state string, dropped *obs.Counter) *hub {
	if dropped == nil {
		dropped = &obs.Counter{}
	}
	return &hub{
		last:    Event{Type: "state", Run: id, State: state},
		subs:    make(map[chan Event]struct{}),
		dropped: dropped,
	}
}

// publish delivers e to every subscriber. State events update the
// retained snapshot and are delivered even to full subscriber
// channels (blocking briefly is acceptable; the channel is generously
// buffered and readers that vanished cancel via unsubscribe).
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if e.Type == "state" {
		h.last = e
	}
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			if e.Type == "state" {
				// Never drop a state transition: make room by evicting
				// the oldest buffered event.
				select {
				case <-ch:
					h.dropped.Inc()
				default:
				}
				select {
				case ch <- e:
				default:
				}
			} else {
				// Progress snapshot dropped on a full subscriber.
				h.dropped.Inc()
			}
		}
	}
	if e.Final {
		h.closed = true
		for ch := range h.subs {
			close(ch)
		}
		h.subs = nil
	}
}

// subscribe registers a new subscriber. The retained state event is
// delivered first; on an already-finished run the channel closes
// right after it. cancel is idempotent and safe after close.
func (h *hub) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	h.mu.Lock()
	ch <- h.last
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
}

// state returns the retained state event.
func (h *hub) state() Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}
